#!/usr/bin/env bash
# Builds everything, runs the full test suite and every benchmark, and
# records the outputs at the repository root (test_output.txt,
# bench_output.txt) — the artifacts EXPERIMENTS.md quotes.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "==== $(basename "$b") ====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done
