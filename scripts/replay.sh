#!/usr/bin/env bash
# Replay a failing chaos-harness seed under the validating build.
#
#   scripts/replay.sh <seed> [explorer flags...]
#
# Examples:
#   scripts/replay.sh 51                      # full schedule for seed 51
#   scripts/replay.sh 51 --ops=4              # minimized prefix
#   scripts/replay.sh 51 --ops=4 --verbose    # plus per-core debug dumps
#   scripts/replay.sh 7 --inject=skip-credit-charge
#   scripts/replay.sh 9 --fault=rail-flap     # force the flapping-rail
#                                             # profile (heartbeat death,
#                                             # epoch-fenced revival, drain)
#   scripts/replay.sh 3 --fault=peer-crash    # force the whole-node
#                                             # crash/rejoin profile
#                                             # (kPeerDead unwind, fence)
#
# Configures/builds a dedicated tree with -DNMAD_VALIDATE=ON so the
# compiled-in invariant checkers run on every progress tick during the
# replay, then invokes the explorer with the given seed. Exit status is
# the explorer's (0 = pass, 1 = oracle violation, 2 = usage).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 || ! $1 =~ ^[0-9]+$ ]]; then
  echo "usage: $0 <seed> [explorer flags...]" >&2
  exit 2
fi
SEED=$1
shift

BUILD_DIR=${BUILD_DIR:-build-validate}

cmake -B "$BUILD_DIR" -S . -DNMAD_VALIDATE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target explorer >/dev/null

exec "$BUILD_DIR/tests/explorer" --seed="$SEED" "$@"
