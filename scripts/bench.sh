#!/usr/bin/env bash
# Regenerates the machine-readable benchmark artifacts checked in at the
# repository root:
#
#   BENCH_fig2.json    — raw ping-pong, mean + p99/p999/max per
#                        (net, impl, size) row, virtual-clock timing
#                        (exactly reproducible run-to-run);
#   BENCH_micro.json   — engine hot-path micro-costs in real host
#                        nanoseconds (google-benchmark aggregate rows:
#                        mean/median/stddev plus p99/p999/max over
#                        repetitions — host-dependent, indicative only);
#   BENCH_ml_tail.json — ML-style traffic (ring-allreduce, PS incast)
#                        under the flapping-rail profile (spray vs split)
#                        AND the gray-rail profile (adaptive vs static
#                        election, rail 1 dropping 5% while beaconing),
#                        per-round tail quantiles on the virtual clock.
#
# Usage: scripts/bench.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
if [ ! -d "$BUILD" ]; then
  cmake -B "$BUILD" -S .
fi
cmake --build "$BUILD" -j --target fig2_pingpong micro_engine ml_tail

"$BUILD"/bench/fig2_pingpong --json=BENCH_fig2.json --iters=200

"$BUILD"/bench/micro_engine \
  --benchmark_repetitions=25 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out=BENCH_micro.json

"$BUILD"/bench/ml_tail --rounds=200 --json=BENCH_ml_tail.json 2>/dev/null

echo "artifacts: BENCH_fig2.json BENCH_micro.json BENCH_ml_tail.json"
