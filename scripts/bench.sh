#!/usr/bin/env bash
# Regenerates the machine-readable benchmark artifacts checked in at the
# repository root:
#
#   BENCH_fig2.json    — raw ping-pong, mean + p99/p999/max per
#                        (net, impl, size) row, virtual-clock timing
#                        (exactly reproducible run-to-run);
#   BENCH_wall.json    — the same ping-pong sweep on the wall clock:
#                        two Cores on WallClockRuntimes over the
#                        threaded shared-memory rail, real host
#                        microseconds (host-dependent, indicative only —
#                        its role is proving the engine runs unmodified
#                        on real time);
#   BENCH_fig3.json    — multi-segment ping-pong latency + MAD-MPI gain
#                        per (net, segments, impl, size) row;
#   BENCH_fig4.json    — indexed-datatype transfer time + gain per
#                        (net, impl, element-count) row;
#   BENCH_micro.json   — engine hot-path micro-costs in real host
#                        nanoseconds (google-benchmark aggregate rows:
#                        mean/median/stddev plus p99/p999/max over
#                        repetitions — host-dependent, indicative only);
#   BENCH_ml_tail.json — ML-style traffic (ring-allreduce, PS incast)
#                        under the flapping-rail profile (spray vs split)
#                        AND the gray-rail profile (adaptive vs static
#                        election, rail 1 dropping 5% while beaconing),
#                        per-round tail quantiles on the virtual clock;
#   BENCH_scale.json   — discrete-event core throughput: calendar queue
#                        vs the heap baseline at 4/64/1k-rank pending
#                        sets, plus the 1k-rank alltoall / 10k-flow
#                        incast / soak scenarios with their allocation
#                        counters (host events/sec — indicative only,
#                        but the speedup ratio is the acceptance gate).
#
# Usage: scripts/bench.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
if [ ! -d "$BUILD" ]; then
  cmake -B "$BUILD" -S .
fi
cmake --build "$BUILD" -j --target \
  fig2_pingpong fig2_wall fig3_multiseg fig4_datatype micro_engine ml_tail \
  scale

"$BUILD"/bench/fig2_pingpong --json=BENCH_fig2.json --iters=200
"$BUILD"/bench/fig2_wall --json=BENCH_wall.json --iters=100
"$BUILD"/bench/fig3_multiseg --json=BENCH_fig3.json
"$BUILD"/bench/fig4_datatype --json=BENCH_fig4.json

"$BUILD"/bench/micro_engine \
  --benchmark_repetitions=25 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out=BENCH_micro.json

"$BUILD"/bench/ml_tail --rounds=200 --json=BENCH_ml_tail.json 2>/dev/null

# The scale bench exits non-zero by itself if any scenario allocated
# during steady state; the python check below enforces the scheduler
# speedup floor at the 1k-rank pending set.
"$BUILD"/bench/scale --json=BENCH_scale.json
python3 - <<'PY'
import json
rows = json.load(open("BENCH_scale.json"))["rows"]
churn_1k = [r for r in rows
            if r["section"] == "queue_micro"
            and r["shape"] == "churn" and r["ranks_equiv"] == 1024]
assert churn_1k, "BENCH_scale.json is missing the 1k-rank churn row"
speedup = churn_1k[0]["speedup"]
assert speedup >= 5.0, \
    f"calendar queue speedup {speedup:.2f}x at 1k ranks is below the 5x floor"
print(f"scale gate: {speedup:.2f}x over the heap baseline at 1k ranks")
PY

echo "artifacts: BENCH_fig2.json BENCH_wall.json BENCH_fig3.json" \
     "BENCH_fig4.json BENCH_micro.json BENCH_ml_tail.json BENCH_scale.json"
