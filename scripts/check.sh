#!/usr/bin/env bash
# Tier-1 verification under sanitizers: configures a separate build tree
# with -DNMAD_SANITIZE=ON (ASan + UBSan, no recovery) and runs the full
# test suite through it. A clean pass means the reliability layer's
# timer/retransmit machinery holds up under memory and UB checking, not
# just functionally.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DNMAD_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
