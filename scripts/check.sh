#!/usr/bin/env bash
# Tier-1 verification under sanitizers: configures a separate build tree
# with -DNMAD_SANITIZE=ON (ASan + UBSan, no recovery) and runs the full
# test suite through it. A clean pass means the reliability layer's
# timer/retransmit machinery holds up under memory and UB checking, not
# just functionally. The suite includes the rail-lifecycle tests and the
# explorer's 200-schedule sweeps (default mix and --fault=rail-flap), so
# heartbeat death, epoch-fenced revival, and drain all run sanitized.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DNMAD_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
