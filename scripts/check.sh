#!/usr/bin/env bash
# Tier-1 verification under sanitizers: configures a separate build tree
# with -DNMAD_SANITIZE=ON (ASan + UBSan, no recovery) and runs the full
# test suite through it. A clean pass means the reliability layer's
# timer/retransmit machinery holds up under memory and UB checking, not
# just functionally. The suite includes the rail-lifecycle, spray and
# adaptive tests and the explorer's 200-schedule sweeps (default mix,
# --fault=rail-flap, --fault=spray-reorder, --fault=gray-rail and
# --fault=peer-crash), so heartbeat death, epoch-fenced revival, drain,
# spray reassembly/failover, gray-failure scoring/election, and the
# peer-crash lifecycle (kPeerDead unwind, incarnation fence, rejoin)
# all run sanitized.
set -euo pipefail
cd "$(dirname "$0")/.."

# ---------------------------------------------------------------------------
# Layer-seam lint: the three core layers (collect / schedule / transfer)
# talk only through layer_ifaces.hpp and the event bus. No layer may
# include another layer's header (or the façade), declare friends, or
# reach into the gate sub-struct another layer owns.
# ---------------------------------------------------------------------------
lint_fail=0
lint() { echo "seam lint: $*" >&2; lint_fail=1; }

COLLECT="src/nmad/core/collect_layer.hpp src/nmad/core/collect_layer.cpp"
SCHED="src/nmad/core/schedule_layer.hpp src/nmad/core/schedule_layer.cpp"
TRANSFER="src/nmad/core/transfer_engine.hpp src/nmad/core/transfer_engine.cpp"
LAYERS="$COLLECT $SCHED $TRANSFER"

# shellcheck disable=SC2086
if grep -nE '#include *"nmad/core/(collect_layer|schedule_layer|transfer_engine|core)\.hpp"' \
    $LAYERS | grep -v -e 'collect_layer.cpp:.*collect_layer.hpp' \
                      -e 'schedule_layer.cpp:.*schedule_layer.hpp' \
                      -e 'transfer_engine.cpp:.*transfer_engine.hpp'; then
  lint "a layer includes another layer's header (talk through layer_ifaces.hpp)"
fi
# shellcheck disable=SC2086
if grep -n 'friend' $LAYERS src/nmad/core/layer_ifaces.hpp; then
  lint "friend declarations are banned in layer files"
fi
# shellcheck disable=SC2086
if grep -n '\.sched\b\|sched\.window\|sched\.ready_bulk' $COLLECT; then
  lint "the collect layer reached into Gate::sched (ScheduleLayer owns it)"
fi
# shellcheck disable=SC2086
if grep -n '\.collect\b' $SCHED $TRANSFER; then
  lint "a layer reached into Gate::collect (CollectLayer owns it)"
fi
# shellcheck disable=SC2086
if grep -n '\.sched\b' $TRANSFER; then
  lint "the transfer layer reached into Gate::sched (ScheduleLayer owns it)"
fi
# Spray splits across the seam: reassembly state (spray_recv/spray_done)
# is collect-owned; the fragment cutter and suspect-rail re-issue are
# schedule-owned. Neither side may name the other's half.
# shellcheck disable=SC2086
if grep -n 'spray_recv\|spray_done' $SCHED $TRANSFER; then
  lint "spray reassembly state is collect-owned (Gate::collect.spray_recv)"
fi
# shellcheck disable=SC2086
if grep -n 'spray_job\|on_rail_suspect' $COLLECT $TRANSFER; then
  lint "spray send/failover is schedule-owned (ScheduleLayer::spray_job)"
fi
# The adaptive loop splits across the seam the same way: score
# accumulation (loss EWMA, latency digest, throughput window, the
# degraded state machine) is transfer-owned; what to DO about a score —
# electing stripe sets, evicting degraded rails, re-issuing in-flight
# fragments — is schedule-owned. Neither side may name the other's half.
# shellcheck disable=SC2086
if grep -n 'loss_ewma\|lat_ewma_us\|tp_est_\|win_tx_bytes_\|update_degraded' \
    $SCHED $COLLECT; then
  lint "rail score accumulation is transfer-owned (TransferEngine)"
fi
# shellcheck disable=SC2086
if grep -n 'on_rail_degraded\|degraded_evictions\|adaptive_elections' \
    $COLLECT $TRANSFER; then
  lint "degraded election policy is schedule-owned (ScheduleLayer)"
fi
# ---------------------------------------------------------------------------
# Runtime-seam lint: the engine core is clock-agnostic. Everything under
# src/nmad/core/ reaches time, timers, cpu charging and identity only
# through runtime::IRuntime (layer_ifaces' EngineContext.rt) — a simnet
# include there would quietly re-couple the engine to the simulator.
# ---------------------------------------------------------------------------
if grep -rn '#include *"simnet/' src/nmad/core/; then
  lint "src/nmad/core/ includes a simnet header (use nmad/runtime/ instead)"
fi
if grep -rn 'simnet::' src/nmad/core/; then
  lint "src/nmad/core/ names a simnet type (the core is runtime-agnostic)"
fi

if [ "$lint_fail" -ne 0 ]; then
  echo "seam lint failed" >&2
  exit 1
fi
echo "seam lint: OK"

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DNMAD_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Thread tier: the wall-clock stack (rings, timer wheel + pump thread,
# shm driver with its per-endpoint pump threads) rebuilt under TSan and
# run alone — the virtual-clock tests are single-threaded by design, so
# only the threaded targets pay the ~10x TSan tax.
TSAN_DIR=${TSAN_DIR:-build-tsan}
cmake -B "$TSAN_DIR" -S . -DNMAD_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j"$(nproc)" \
  --target test_ring test_timer_wheel test_wall_shm
ctest --test-dir "$TSAN_DIR" --output-on-failure -j"$(nproc)" \
  -R 'SpscRing|MpscRing|TimerWheel|WallClockRuntime|WallShm'
