/* nmad.h — C API for the NewMadeleine reproduction.
 *
 * A minimal, stable C89-compatible surface over the C++ engine for
 * bindings and C applications: build a simulated cluster, open gates,
 * post nonblocking sends/receives, wait, read the virtual clock.
 *
 *   nmad_cluster_t* c = nmad_cluster_create("mx", 2, "aggreg");
 *   nmad_request_t* r = nmad_irecv(c, 1, nmad_gate(c, 1, 0), 7, in, len);
 *   nmad_request_t* s = nmad_isend(c, 0, nmad_gate(c, 0, 1), 7, out, len);
 *   nmad_wait(c, r); nmad_wait(c, s);
 *   nmad_request_free(r); nmad_request_free(s);
 *   nmad_cluster_destroy(c);
 */
#ifndef NMAD_H_
#define NMAD_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct nmad_cluster nmad_cluster_t;
typedef struct nmad_request nmad_request_t;
typedef uint16_t nmad_gate_t;

/* Builds a simulated cluster: `net` is a NIC profile name ("mx", "gm",
 * "quadrics", "sci", "tcp"), `nodes` >= 2, `strategy` a registered
 * scheduling strategy ("default", "aggreg", "aggreg_extended",
 * "split_balance"). Returns NULL on bad arguments. */
nmad_cluster_t* nmad_cluster_create(const char* net, int nodes,
                                    const char* strategy);
void nmad_cluster_destroy(nmad_cluster_t* cluster);

/* Number of nodes in the cluster. */
int nmad_cluster_size(const nmad_cluster_t* cluster);

/* The gate on `from` leading to `to` (from != to). */
nmad_gate_t nmad_gate(nmad_cluster_t* cluster, int from, int to);

/* Nonblocking contiguous send/receive on behalf of `node`. The buffer
 * must stay valid until the request completes. Returns NULL on bad
 * arguments. */
nmad_request_t* nmad_isend(nmad_cluster_t* cluster, int node,
                           nmad_gate_t gate, uint64_t tag, const void* buf,
                           size_t len);
nmad_request_t* nmad_irecv(nmad_cluster_t* cluster, int node,
                           nmad_gate_t gate, uint64_t tag, void* buf,
                           size_t len);

/* 1 when complete, 0 otherwise. */
int nmad_test(const nmad_request_t* request);

/* Pumps the simulation until the request completes. Returns 0 on success,
 * non-zero when the request finished with an error (e.g. truncation). */
int nmad_wait(nmad_cluster_t* cluster, nmad_request_t* request);

/* Bytes received so far (receives only; sends report 0). */
size_t nmad_received_bytes(const nmad_request_t* request);

/* Releases a completed request. */
void nmad_request_free(nmad_request_t* request);

/* Virtual time in microseconds. */
double nmad_now_us(const nmad_cluster_t* cluster);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* NMAD_H_ */
