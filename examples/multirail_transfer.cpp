// Multi-rail bulk transfer: the paper's split_balance strategy (§4, §7).
//
// Moves an 8 MB block between two nodes that are connected by BOTH a
// Myri-10G rail and a Quadrics rail, first over each single rail, then
// with the split_balance strategy striping the rendezvous body across the
// two heterogeneous NICs proportionally to their bandwidth.
//
//   $ ./multirail_transfer
#include <cstdio>
#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace {

using namespace nmad;

constexpr size_t kBytes = 8u << 20;

struct Result {
  double us;
  uint64_t rail0_bytes;
  uint64_t rail1_bytes;
};

Result run(const std::string& strategy,
           std::vector<core::RailIndex> rails_to_use) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  options.core.strategy = strategy;
  api::Cluster cluster(std::move(options));

  // Open a dedicated second gate restricted to the requested rails? The
  // default gate uses all rails; rail restriction is expressed per-message
  // through pinning instead.
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<std::byte> src(kBytes), dst(kBytes);
  util::fill_pattern({src.data(), kBytes}, 1);

  core::SendHints hints;
  if (rails_to_use.size() == 1) hints.pinned_rail = rails_to_use[0];

  auto* recv = b.irecv(cluster.gate(1, 0), 1,
                       util::MutableBytes{dst.data(), kBytes});
  auto* send = a.isend(cluster.gate(0, 1), 1,
                       core::SourceLayout::contiguous({src.data(), kBytes}),
                       hints);
  const double t0 = cluster.now();
  cluster.wait(send);
  cluster.wait(recv);
  const double elapsed = cluster.now() - t0;

  if (!util::check_pattern({dst.data(), kBytes}, 1)) {
    std::fprintf(stderr, "payload corrupt!\n");
    std::exit(1);
  }
  Result r{elapsed,
           cluster.fabric().node(0).nic(0).counters().bytes_sent,
           cluster.fabric().node(0).nic(1).counters().bytes_sent};
  a.release(send);
  b.release(recv);
  return r;
}

}  // namespace

int main() {
  std::printf("transferring %zu MB between two nodes...\n\n", kBytes >> 20);

  const Result mx = run("aggreg", {0});
  std::printf("mx only        : %8.1f µs  (%.0f MB/s)\n", mx.us,
              static_cast<double>(kBytes) / mx.us);

  const Result quadrics = run("aggreg", {1});
  std::printf("quadrics only  : %8.1f µs  (%.0f MB/s)\n", quadrics.us,
              static_cast<double>(kBytes) / quadrics.us);

  const Result both = run("split_balance", {});
  std::printf("split_balance  : %8.1f µs  (%.0f MB/s)\n", both.us,
              static_cast<double>(kBytes) / both.us);
  std::printf("  rail traffic : mx %.1f MB, quadrics %.1f MB\n",
              both.rail0_bytes / 1048576.0, both.rail1_bytes / 1048576.0);

  const double speedup = mx.us / both.us;
  std::printf("\nspeedup over the fastest single rail: %.2fx\n", speedup);
  // Two rails must genuinely help (ideal would be ~1.7x for these NICs).
  return speedup > 1.2 ? 0 : 1;
}
