// A complete miniature application: multi-field 1-D Jacobi on N ranks.
//
// Each rank owns a slice of a 1-D rod and smooths kFields independent
// fields per sweep — the multi-variable structure of real stencil codes
// (CFD codes exchange velocity components, pressure, energy...). Every
// sweep exchanges one-cell halos per field with both neighbours, and
// every few sweeps takes a global residual with allreduce.
//
// The per-sweep traffic to each neighbour is kFields small messages: the
// multi-flow pattern of the paper's §2. MAD-MPI's window aggregates them
// into one packet per neighbour; the baselines send them one by one. The
// identical program runs on both stacks and must produce bit-identical
// numerics.
//
//   $ ./stencil_jacobi
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/stack.hpp"
#include "madmpi/collectives.hpp"

namespace {

using namespace nmad;
using mpi::Datatype;
using mpi::kCommWorld;

constexpr int kRanks = 4;
constexpr int kFields = 4;
constexpr int kCellsPerRank = 256;
constexpr int kSweeps = 40;
constexpr int kResidualEvery = 10;

struct RunResult {
  double residual;
  double comm_us;
};

RunResult run(baseline::StackImpl impl) {
  baseline::StackOptions options;
  options.impl = impl;
  options.nodes = kRanks;
  baseline::MpiStack stack(std::move(options));
  const Datatype dbl = Datatype::double_type();

  // u[r][f] is rank r's slice of field f, with ghost cells at both ends.
  // Field f's boundary temperature is 1.0 + f on the left, 0 on the right.
  std::vector<std::vector<std::vector<double>>> u(kRanks), next(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    u[r].assign(kFields, std::vector<double>(kCellsPerRank + 2, 0.0));
    next[r] = u[r];
    if (r == 0) {
      for (int f = 0; f < kFields; ++f) u[r][f][0] = 1.0 + f;
    }
  }

  double residual = 0.0;
  const double t0 = stack.now_us();

  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    // Halo exchange: kFields messages per neighbour per direction, posted
    // split-phase on every rank, then drained together.
    std::vector<mpi::Request*> reqs;
    for (int r = 0; r < kRanks; ++r) {
      mpi::Endpoint& ep = stack.ep(r);
      for (int f = 0; f < kFields; ++f) {
        const int tag_east = 2 * f;      // data moving toward rank+1
        const int tag_west = 2 * f + 1;  // data moving toward rank-1
        if (r > 0) {
          reqs.push_back(
              ep.irecv(&u[r][f][0], 1, dbl, r - 1, tag_east, kCommWorld));
          reqs.push_back(
              ep.isend(&u[r][f][1], 1, dbl, r - 1, tag_west, kCommWorld));
        }
        if (r < kRanks - 1) {
          reqs.push_back(ep.irecv(&u[r][f][kCellsPerRank + 1], 1, dbl,
                                  r + 1, tag_west, kCommWorld));
          reqs.push_back(ep.isend(&u[r][f][kCellsPerRank], 1, dbl, r + 1,
                                  tag_east, kCommWorld));
        }
      }
    }
    stack.ep(0).wait_all(reqs);
    for (auto* req : reqs) stack.ep(0).free_request(req);

    // Local sweep (computation is free in virtual time; only the
    // communication above advances the clock).
    double local_sq[kRanks] = {};
    for (int r = 0; r < kRanks; ++r) {
      for (int f = 0; f < kFields; ++f) {
        for (int i = 1; i <= kCellsPerRank; ++i) {
          next[r][f][i] = 0.5 * (u[r][f][i - 1] + u[r][f][i + 1]);
          const double d = next[r][f][i] - u[r][f][i];
          local_sq[r] += d * d;
        }
        std::swap(u[r][f], next[r][f]);
        if (r == 0) u[r][f][0] = 1.0 + f;  // re-pin boundary after swap
      }
    }

    if ((sweep + 1) % kResidualEvery == 0) {
      std::vector<double> global(kRanks, 0.0);
      std::vector<std::unique_ptr<mpi::CollectiveOp>> ops;
      for (int r = 0; r < kRanks; ++r) {
        ops.push_back(mpi::iallreduce(stack.ep(r), &local_sq[r], &global[r],
                                      1, dbl, mpi::sum_double(),
                                      kCommWorld));
      }
      for (auto& op : ops) op->wait();
      residual = std::sqrt(global[0]);
    }
  }

  return RunResult{residual, stack.now_us() - t0};
}

}  // namespace

int main() {
  std::printf("1-D Jacobi: %d ranks × %d cells × %d fields, %d sweeps, "
              "residual every %d\n\n",
              kRanks, kCellsPerRank, kFields, kSweeps, kResidualEvery);
  const RunResult mad = run(baseline::StackImpl::kMadMpi);
  const RunResult mpich = run(baseline::StackImpl::kMpich);

  std::printf("madmpi : residual %.12f, comm time %8.1f virtual µs\n",
              mad.residual, mad.comm_us);
  std::printf("mpich  : residual %.12f, comm time %8.1f virtual µs\n",
              mpich.residual, mpich.comm_us);

  if (mad.residual != mpich.residual) {
    std::fprintf(stderr, "numerical results diverge!\n");
    return 1;
  }
  std::printf("\nidentical numerics; MAD-MPI saved %.1f%% of comm time\n",
              (mpich.comm_us - mad.comm_us) / mpich.comm_us * 100.0);
  return mad.comm_us < mpich.comm_us ? 0 : 1;
}
