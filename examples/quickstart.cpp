// Quickstart: the smallest complete NewMadeleine program.
//
// Builds a two-node simulated cluster over a Myri-10G rail, sends one
// message made of two pieces (a header and a payload) with the
// incremental pack interface, and prints what the engine did.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "nmad/api/pack.hpp"
#include "nmad/api/session.hpp"
#include "util/buffer.hpp"

int main() {
  using namespace nmad;

  // One call builds the virtual world: two nodes, one MX/Myri-10G NIC
  // each, an engine per node, and a gate between them.
  api::Cluster cluster;

  core::Core& sender = cluster.core(0);
  core::Core& receiver = cluster.core(1);

  // Application data: a fixed header and a 4 KB body, anywhere in memory.
  struct Header {
    uint32_t id;
    uint32_t body_len;
  };
  Header header{7, 4096};
  std::vector<std::byte> body(4096);
  util::fill_pattern({body.data(), body.size()}, 2026);

  Header recv_header{};
  std::vector<std::byte> recv_body(4096);

  // Receiver: declare where the incoming pieces should land.
  api::UnpackHandle unpack(receiver, cluster.gate(1, 0), /*tag=*/1);
  unpack.unpack(&recv_header, sizeof recv_header);
  unpack.unpack(recv_body.data(), recv_body.size());
  core::RecvRequest* recv = unpack.end();

  // Sender: incrementally build the message, then submit. The engine is
  // free to aggregate, reorder or split the pieces behind the scenes.
  api::PackHandle pack(sender, cluster.gate(0, 1), /*tag=*/1);
  pack.pack(&header, sizeof header);
  pack.pack(body.data(), body.size());
  core::SendRequest* send = pack.end();

  // wait() pumps the discrete-event fabric until completion.
  cluster.wait(send);
  cluster.wait(recv);

  const bool intact =
      recv_header.id == 7 && recv_header.body_len == 4096 &&
      util::check_pattern({recv_body.data(), recv_body.size()}, 2026);

  std::printf("quickstart: delivered %zu bytes in %.2f virtual µs — %s\n",
              sizeof header + body.size(), cluster.now(),
              intact ? "payload intact" : "PAYLOAD CORRUPT");
  std::printf("engine stats: %llu packet(s), %llu chunk(s), strategy=%s\n",
              static_cast<unsigned long long>(sender.stats().packets_sent),
              static_cast<unsigned long long>(sender.stats().chunks_sent),
              std::string(sender.strategy_name()).c_str());

  sender.release(send);
  receiver.release(recv);
  return intact ? 0 : 1;
}
