// RPC over NewMadeleine: the multi-flow, dependency-aware workload the
// paper's introduction motivates (§2).
//
// A client issues several concurrent remote calls. Each call is one nmad
// message of two pieces: a small service descriptor (sent with HIGH
// priority — the receiver needs it early "for preparing the data areas to
// receive the service arguments") and a large argument blob. The engine
// aggregates descriptors from *different* calls into shared packets and
// moves big argument blobs through zero-copy rendezvous.
//
//   $ ./rpc_multiflow
#include <cstdio>
#include <map>
#include <vector>

#include "nmad/api/pack.hpp"
#include "nmad/api/session.hpp"
#include "util/buffer.hpp"

namespace {

using namespace nmad;

constexpr int kCalls = 6;
constexpr core::Tag kDescriptorTag = 100;  // + call id
constexpr core::Tag kArgsTag = 200;        // + call id

struct Descriptor {
  uint32_t service = 0;
  uint32_t args_len = 0;
};

}  // namespace

int main() {
  api::Cluster cluster;
  core::Core& client = cluster.core(0);
  core::Core& server = cluster.core(1);

  // Server posts descriptor receives up front (it cannot know argument
  // sizes yet — that is what the descriptor tells it).
  std::vector<Descriptor> incoming(kCalls);
  std::vector<core::Request*> desc_recvs;
  for (int c = 0; c < kCalls; ++c) {
    desc_recvs.push_back(server.irecv(
        cluster.gate(1, 0), kDescriptorTag + c,
        util::as_writable_bytes(&incoming[c], sizeof(Descriptor))));
  }

  // Client fires all calls back-to-back; argument sizes vary from eager
  // to rendezvous territory.
  std::vector<Descriptor> outgoing(kCalls);
  std::vector<std::vector<std::byte>> args(kCalls);
  std::vector<core::Request*> client_reqs;
  for (int c = 0; c < kCalls; ++c) {
    const size_t len = 1024u << c;  // 1K … 32K
    outgoing[c] = Descriptor{static_cast<uint32_t>(10 + c),
                             static_cast<uint32_t>(len)};
    args[c].resize(len);
    util::fill_pattern({args[c].data(), len}, 500 + c);

    api::PackHandle desc(client, cluster.gate(0, 1), kDescriptorTag + c);
    desc.set_priority(core::Priority::kHigh);
    desc.pack(&outgoing[c], sizeof(Descriptor));
    client_reqs.push_back(desc.end());

    api::PackHandle body(client, cluster.gate(0, 1), kArgsTag + c);
    body.pack(args[c].data(), len);
    client_reqs.push_back(body.end());
  }

  // Server: as each descriptor lands, allocate the argument area and post
  // the matching receive — the event-driven consumption pattern RPC
  // systems use.
  std::map<int, std::vector<std::byte>> arg_areas;
  std::vector<core::Request*> arg_recvs(kCalls, nullptr);
  int served = 0;
  for (int c = 0; c < kCalls; ++c) {
    cluster.wait(desc_recvs[c]);
    const Descriptor& d = incoming[c];
    arg_areas[c].resize(d.args_len);
    arg_recvs[c] = server.irecv(
        cluster.gate(1, 0), kArgsTag + c,
        util::MutableBytes{arg_areas[c].data(), d.args_len});
  }
  for (int c = 0; c < kCalls; ++c) {
    cluster.wait(arg_recvs[c]);
    const bool ok = util::check_pattern(
        {arg_areas[c].data(), arg_areas[c].size()}, 500 + c);
    std::printf("call %d: service=%u args=%zu bytes — %s (t=%.2f µs)\n", c,
                incoming[c].service, arg_areas[c].size(),
                ok ? "ok" : "CORRUPT", cluster.now());
    served += ok;
  }
  for (auto* r : client_reqs) cluster.wait(r);

  const auto& stats = client.stats();
  std::printf(
      "\n%d/%d calls served in %.2f virtual µs\n"
      "engine: %llu packets for %llu chunks (%llu aggregated), "
      "%llu rendezvous\n",
      served, kCalls, cluster.now(),
      static_cast<unsigned long long>(stats.packets_sent),
      static_cast<unsigned long long>(stats.chunks_sent),
      static_cast<unsigned long long>(stats.chunks_aggregated),
      static_cast<unsigned long long>(stats.rdv_started));

  for (auto* r : client_reqs) client.release(r);
  for (auto* r : desc_recvs) server.release(r);
  for (auto* r : arg_recvs) server.release(r);
  return served == kCalls ? 0 : 1;
}
