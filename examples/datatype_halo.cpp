// Halo exchange with MPI derived datatypes through MAD-MPI.
//
// A classic stencil-code pattern: each of two neighbouring ranks owns an
// N×N grid of doubles and exchanges its boundary column — a strided
// vector datatype, i.e. genuinely non-contiguous data. MAD-MPI submits
// each strided block to the engine directly (no pack/unpack), so the
// aggregation strategy coalesces the many small rows into few packets;
// the same program also runs against the MPICH-like baseline to show the
// pack-based cost difference.
//
//   $ ./datatype_halo
#include <cstdio>
#include <vector>

#include "baseline/stack.hpp"

namespace {

using namespace nmad;
using mpi::Datatype;
using mpi::kCommWorld;

constexpr int kN = 256;  // grid side

double run(const char* impl_name) {
  baseline::StackOptions options;
  baseline::StackImpl impl;
  if (!baseline::stack_impl_from_name(impl_name, &impl)) std::abort();
  options.impl = impl;
  baseline::MpiStack stack(std::move(options));
  mpi::Endpoint& left = stack.ep(0);
  mpi::Endpoint& right = stack.ep(1);

  // Row-major N×N grid; the boundary *column* is a vector type: N blocks
  // of one double, stride N doubles.
  const Datatype column =
      Datatype::vector(kN, 1, kN, Datatype::double_type());

  std::vector<double> grid_left(kN * kN), grid_right(kN * kN);
  for (int r = 0; r < kN; ++r) {
    grid_left[r * kN + (kN - 1)] = 1000.0 + r;  // left's east column
    grid_right[r * kN + 0] = 2000.0 + r;        // right's west column
  }

  const double t0 = stack.now_us();
  // Exchange: left's east column ↔ right's west column, into ghost
  // columns on the far side (column 0 on the right, column N-1 on left).
  auto* r_left = left.irecv(&grid_left[0], 1, column, 1, 1, kCommWorld);
  auto* r_right = right.irecv(&grid_right[kN - 1], 1, column, 0, 0,
                              kCommWorld);
  auto* s_left = left.isend(&grid_left[kN - 1], 1, column, 1, 0,
                            kCommWorld);
  auto* s_right = right.isend(&grid_right[0], 1, column, 0, 1, kCommWorld);
  left.wait(r_left);
  right.wait(r_right);
  left.wait(s_left);
  right.wait(s_right);
  const double elapsed = stack.now_us() - t0;

  // Verify the ghost columns.
  bool ok = true;
  for (int r = 0; r < kN; ++r) {
    ok &= grid_right[r * kN + (kN - 1)] == 1000.0 + r;
    ok &= grid_left[r * kN + 0] == 2000.0 + r;
  }
  if (!ok) {
    std::fprintf(stderr, "%s: halo corrupt!\n", impl_name);
    std::exit(1);
  }

  left.free_request(r_left);
  left.free_request(s_left);
  right.free_request(r_right);
  right.free_request(s_right);
  return elapsed;
}

}  // namespace

int main() {
  std::printf("halo exchange of one %d-double strided column, both ways\n\n",
              kN);
  const double t_mad = run("madmpi");
  const double t_mpich = run("mpich");
  const double t_ompi = run("openmpi");
  std::printf("madmpi : %8.2f virtual µs\n", t_mad);
  std::printf("mpich  : %8.2f virtual µs\n", t_mpich);
  std::printf("openmpi: %8.2f virtual µs\n", t_ompi);
  std::printf("\nMAD-MPI gain vs MPICH: %.0f%%\n",
              (t_mpich - t_mad) / t_mpich * 100.0);
  return 0;
}
