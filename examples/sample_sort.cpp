// Parallel sample sort on 4 ranks — a complete algorithm built from the
// MPI layer: local sort, splitter agreement via gather+bcast, bucket
// exchange via point-to-point (variable-size all-to-all), local merge.
//
// The bucket exchange fires 2×P×(P-1) messages of irregular sizes in one
// burst: exactly the "irregular and multi-flow communication schemes"
// the paper's introduction says classical MPIs leave unattended. The
// program verifies the global sort order on every stack.
//
//   $ ./sample_sort
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/stack.hpp"
#include "madmpi/collectives.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using mpi::Datatype;
using mpi::kCommWorld;

constexpr int kRanks = 4;
constexpr int kPerRank = 4096;

struct RunResult {
  bool sorted;
  double comm_us;
};

RunResult run(baseline::StackImpl impl) {
  baseline::StackOptions options;
  options.impl = impl;
  options.nodes = kRanks;
  baseline::MpiStack stack(std::move(options));
  const Datatype int_t = Datatype::int_type();

  // Each rank owns kPerRank random keys (deterministic seed per rank).
  std::vector<std::vector<int>> keys(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    util::Rng rng(1000 + r);
    keys[r].resize(kPerRank);
    for (int& k : keys[r]) {
      k = static_cast<int>(rng.next_below(1 << 20));
    }
    std::sort(keys[r].begin(), keys[r].end());  // local sort
  }

  const double t0 = stack.now_us();

  // 1. Splitter agreement: every rank contributes P-1 regular samples;
  //    rank 0 gathers, picks global splitters, broadcasts them.
  std::vector<std::vector<int>> samples(kRanks);
  std::vector<int> gathered((kRanks - 1) * kRanks);
  {
    std::vector<std::unique_ptr<mpi::CollectiveOp>> ops;
    for (int r = 0; r < kRanks; ++r) {
      samples[r].resize(kRanks - 1);
      for (int s = 0; s < kRanks - 1; ++s) {
        samples[r][s] = keys[r][(s + 1) * kPerRank / kRanks];
      }
      ops.push_back(mpi::igather(stack.ep(r), samples[r].data(),
                                 r == 0 ? gathered.data() : nullptr,
                                 kRanks - 1, int_t, 0, kCommWorld));
    }
    for (auto& op : ops) op->wait();
  }
  std::vector<std::vector<int>> splitters(kRanks,
                                          std::vector<int>(kRanks - 1));
  {
    std::sort(gathered.begin(), gathered.end());
    for (int s = 0; s < kRanks - 1; ++s) {
      splitters[0][s] = gathered[(s + 1) * (kRanks - 1)];
    }
    std::vector<std::unique_ptr<mpi::CollectiveOp>> ops;
    for (int r = 0; r < kRanks; ++r) {
      ops.push_back(mpi::ibcast(stack.ep(r), splitters[r].data(),
                                kRanks - 1, int_t, 0, kCommWorld));
    }
    for (auto& op : ops) op->wait();
  }

  // 2. Bucket exchange in a single phase: every rank sends, per peer, a
  //    count message immediately followed by the bucket itself (the
  //    descriptor+payload pattern of §2). Receivers post the bucket
  //    receive as soon as the matching count lands — early bucket bytes
  //    park in the unexpected queue and replay. NewMadeleine aggregates
  //    each peer's count with its bucket (and with other flows' control
  //    traffic); the baselines send everything one message at a time.
  std::vector<std::vector<std::vector<int>>> buckets(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    buckets[r].assign(kRanks, {});
    for (int k : keys[r]) {
      int dest = 0;
      while (dest < kRanks - 1 && k >= splitters[r][dest]) ++dest;
      buckets[r][dest].push_back(k);
    }
  }
  std::vector<std::vector<int>> incoming_count(
      kRanks, std::vector<int>(kRanks, 0));
  std::vector<std::vector<int>> counts(kRanks, std::vector<int>(kRanks, 0));
  std::vector<std::vector<std::vector<int>>> received(kRanks);
  {
    std::vector<std::vector<mpi::Request*>> count_recvs(
        kRanks, std::vector<mpi::Request*>(kRanks, nullptr));
    std::vector<mpi::Request*> others;
    for (int r = 0; r < kRanks; ++r) {
      received[r].assign(kRanks, {});
      for (int p = 0; p < kRanks; ++p) {
        if (p == r) continue;
        count_recvs[r][p] = stack.ep(r).irecv(&incoming_count[r][p], 1,
                                              int_t, p, 100, kCommWorld);
      }
    }
    for (int r = 0; r < kRanks; ++r) {
      for (int p = 0; p < kRanks; ++p) {
        if (p == r) continue;
        counts[r][p] = static_cast<int>(buckets[r][p].size());
        others.push_back(stack.ep(r).isend(&counts[r][p], 1, int_t, p,
                                           100, kCommWorld));
        if (!buckets[r][p].empty()) {
          others.push_back(stack.ep(r).isend(
              buckets[r][p].data(), static_cast<int>(buckets[r][p].size()),
              int_t, p, 200, kCommWorld));
        }
      }
    }
    // Consume counts as they land and immediately post the bucket recv.
    for (int r = 0; r < kRanks; ++r) {
      for (int p = 0; p < kRanks; ++p) {
        if (p == r) continue;
        stack.ep(r).wait(count_recvs[r][p]);
        stack.ep(r).free_request(count_recvs[r][p]);
        received[r][p].resize(incoming_count[r][p]);
        if (incoming_count[r][p] > 0) {
          others.push_back(stack.ep(r).irecv(received[r][p].data(),
                                             incoming_count[r][p], int_t,
                                             p, 200, kCommWorld));
        }
      }
    }
    stack.ep(0).wait_all(others);
    for (auto* req : others) stack.ep(0).free_request(req);
  }
  const double comm_us = stack.now_us() - t0;

  // 3. Local merge and global-order verification.
  bool sorted = true;
  int previous_max = -1;
  size_t total_keys = 0;
  for (int r = 0; r < kRanks; ++r) {
    std::vector<int> merged = std::move(buckets[r][r]);
    for (int p = 0; p < kRanks; ++p) {
      if (p == r) continue;
      merged.insert(merged.end(), received[r][p].begin(),
                    received[r][p].end());
    }
    std::sort(merged.begin(), merged.end());
    total_keys += merged.size();
    if (!merged.empty()) {
      sorted &= merged.front() >= previous_max;
      previous_max = merged.back();
    }
  }
  sorted &= total_keys == static_cast<size_t>(kRanks) * kPerRank;
  return RunResult{sorted, comm_us};
}

}  // namespace

int main() {
  std::printf("sample sort: %d ranks × %d keys\n\n", kRanks, kPerRank);
  const RunResult mad = run(baseline::StackImpl::kMadMpi);
  const RunResult mpich = run(baseline::StackImpl::kMpich);
  std::printf("madmpi : %s, comm %8.1f virtual µs\n",
              mad.sorted ? "globally sorted" : "SORT BROKEN", mad.comm_us);
  std::printf("mpich  : %s, comm %8.1f virtual µs\n",
              mpich.sorted ? "globally sorted" : "SORT BROKEN",
              mpich.comm_us);
  if (!mad.sorted || !mpich.sorted) return 1;
  const double delta =
      (mpich.comm_us - mad.comm_us) / mpich.comm_us * 100.0;
  std::printf("\ncommunication time delta: %+.1f%% for MAD-MPI\n", delta);
  std::printf(
      "(buckets are ~4 KB each — mostly one message per peer, so there is\n"
      " little to aggregate and the stacks land within a few percent;\n"
      " contrast with rpc_multiflow/stencil_jacobi where flows overlap)\n");
  // Parity is the expected outcome here; fail only on a real regression.
  return delta > -15.0 ? 0 : 1;
}
