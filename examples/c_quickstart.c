/* Quickstart for the C API: the quickstart.cpp program, in plain C.
 * Also serves as the compile-time proof that include/nmad.h is C-clean.
 *
 *   $ ./c_quickstart
 */
#include <stdio.h>
#include <string.h>

#include "nmad.h"

int main(void) {
  enum { kLen = 4096 };
  static char out[kLen];
  static char in[kLen];
  int i;
  for (i = 0; i < kLen; ++i) out[i] = (char)(i * 31 + 7);

  nmad_cluster_t* cluster = nmad_cluster_create("mx", 2, "aggreg");
  if (cluster == NULL) {
    fprintf(stderr, "cluster creation failed\n");
    return 1;
  }

  {
    nmad_request_t* recv =
        nmad_irecv(cluster, 1, nmad_gate(cluster, 1, 0), 7, in, kLen);
    nmad_request_t* send =
        nmad_isend(cluster, 0, nmad_gate(cluster, 0, 1), 7, out, kLen);
    if (nmad_wait(cluster, recv) != 0 || nmad_wait(cluster, send) != 0) {
      fprintf(stderr, "transfer failed\n");
      return 1;
    }
    if (nmad_received_bytes(recv) != kLen || memcmp(in, out, kLen) != 0) {
      fprintf(stderr, "payload corrupt\n");
      return 1;
    }
    nmad_request_free(recv);
    nmad_request_free(send);
  }

  printf("c_quickstart: %d bytes round in %.2f virtual us on a %d-node "
         "cluster\n",
         kLen, nmad_now_us(cluster), nmad_cluster_size(cluster));
  nmad_cluster_destroy(cluster);
  return 0;
}
