# Empty compiler generated dependencies file for test_asymmetric_rails.
# This may be replaced when dependencies are built.
