file(REMOVE_RECURSE
  "CMakeFiles/test_asymmetric_rails.dir/nmad/test_asymmetric_rails.cpp.o"
  "CMakeFiles/test_asymmetric_rails.dir/nmad/test_asymmetric_rails.cpp.o.d"
  "test_asymmetric_rails"
  "test_asymmetric_rails.pdb"
  "test_asymmetric_rails[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asymmetric_rails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
