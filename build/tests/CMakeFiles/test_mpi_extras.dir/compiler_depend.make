# Empty compiler generated dependencies file for test_mpi_extras.
# This may be replaced when dependencies are built.
