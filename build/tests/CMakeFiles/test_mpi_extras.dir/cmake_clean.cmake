file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_extras.dir/mpi/test_mpi_extras.cpp.o"
  "CMakeFiles/test_mpi_extras.dir/mpi/test_mpi_extras.cpp.o.d"
  "test_mpi_extras"
  "test_mpi_extras.pdb"
  "test_mpi_extras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
