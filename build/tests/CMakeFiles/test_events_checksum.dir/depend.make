# Empty dependencies file for test_events_checksum.
# This may be replaced when dependencies are built.
