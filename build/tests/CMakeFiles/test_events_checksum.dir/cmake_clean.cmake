file(REMOVE_RECURSE
  "CMakeFiles/test_events_checksum.dir/nmad/test_events_checksum.cpp.o"
  "CMakeFiles/test_events_checksum.dir/nmad/test_events_checksum.cpp.o.d"
  "test_events_checksum"
  "test_events_checksum.pdb"
  "test_events_checksum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_events_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
