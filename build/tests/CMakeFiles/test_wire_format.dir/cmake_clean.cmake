file(REMOVE_RECURSE
  "CMakeFiles/test_wire_format.dir/nmad/test_wire_format.cpp.o"
  "CMakeFiles/test_wire_format.dir/nmad/test_wire_format.cpp.o.d"
  "test_wire_format"
  "test_wire_format.pdb"
  "test_wire_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
