
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nmad/test_packet_builder.cpp" "tests/CMakeFiles/test_packet_builder.dir/nmad/test_packet_builder.cpp.o" "gcc" "tests/CMakeFiles/test_packet_builder.dir/nmad/test_packet_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/nmad_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/nmad_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/nmad_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/madmpi/CMakeFiles/nmad_madmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/nmad/CMakeFiles/nmad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/nmad_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nmad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
