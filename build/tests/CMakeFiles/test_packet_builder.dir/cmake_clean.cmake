file(REMOVE_RECURSE
  "CMakeFiles/test_packet_builder.dir/nmad/test_packet_builder.cpp.o"
  "CMakeFiles/test_packet_builder.dir/nmad/test_packet_builder.cpp.o.d"
  "test_packet_builder"
  "test_packet_builder.pdb"
  "test_packet_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
