# Empty compiler generated dependencies file for test_packet_builder.
# This may be replaced when dependencies are built.
