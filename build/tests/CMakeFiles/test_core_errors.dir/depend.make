# Empty dependencies file for test_core_errors.
# This may be replaced when dependencies are built.
