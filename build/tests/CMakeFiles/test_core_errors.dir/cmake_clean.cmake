file(REMOVE_RECURSE
  "CMakeFiles/test_core_errors.dir/nmad/test_core_errors.cpp.o"
  "CMakeFiles/test_core_errors.dir/nmad/test_core_errors.cpp.o.d"
  "test_core_errors"
  "test_core_errors.pdb"
  "test_core_errors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
