# Empty dependencies file for test_pack_api.
# This may be replaced when dependencies are built.
