file(REMOVE_RECURSE
  "CMakeFiles/test_pack_api.dir/nmad/test_pack_api.cpp.o"
  "CMakeFiles/test_pack_api.dir/nmad/test_pack_api.cpp.o.d"
  "test_pack_api"
  "test_pack_api.pdb"
  "test_pack_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pack_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
