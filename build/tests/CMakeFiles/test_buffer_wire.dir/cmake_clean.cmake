file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_wire.dir/util/test_buffer_wire.cpp.o"
  "CMakeFiles/test_buffer_wire.dir/util/test_buffer_wire.cpp.o.d"
  "test_buffer_wire"
  "test_buffer_wire.pdb"
  "test_buffer_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
