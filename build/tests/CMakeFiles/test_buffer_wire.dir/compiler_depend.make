# Empty compiler generated dependencies file for test_buffer_wire.
# This may be replaced when dependencies are built.
