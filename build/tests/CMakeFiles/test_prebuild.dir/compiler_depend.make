# Empty compiler generated dependencies file for test_prebuild.
# This may be replaced when dependencies are built.
