file(REMOVE_RECURSE
  "CMakeFiles/test_prebuild.dir/nmad/test_prebuild.cpp.o"
  "CMakeFiles/test_prebuild.dir/nmad/test_prebuild.cpp.o.d"
  "test_prebuild"
  "test_prebuild.pdb"
  "test_prebuild[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
