# Empty dependencies file for test_dynamic_strategy.
# This may be replaced when dependencies are built.
