file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_strategy.dir/nmad/test_dynamic_strategy.cpp.o"
  "CMakeFiles/test_dynamic_strategy.dir/nmad/test_dynamic_strategy.cpp.o.d"
  "test_dynamic_strategy"
  "test_dynamic_strategy.pdb"
  "test_dynamic_strategy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
