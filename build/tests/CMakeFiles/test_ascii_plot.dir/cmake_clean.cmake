file(REMOVE_RECURSE
  "CMakeFiles/test_ascii_plot.dir/util/test_ascii_plot.cpp.o"
  "CMakeFiles/test_ascii_plot.dir/util/test_ascii_plot.cpp.o.d"
  "test_ascii_plot"
  "test_ascii_plot.pdb"
  "test_ascii_plot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ascii_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
