# Empty dependencies file for test_engine_protocol.
# This may be replaced when dependencies are built.
