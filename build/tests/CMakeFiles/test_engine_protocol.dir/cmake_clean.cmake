file(REMOVE_RECURSE
  "CMakeFiles/test_engine_protocol.dir/nmad/test_engine_protocol.cpp.o"
  "CMakeFiles/test_engine_protocol.dir/nmad/test_engine_protocol.cpp.o.d"
  "test_engine_protocol"
  "test_engine_protocol.pdb"
  "test_engine_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
