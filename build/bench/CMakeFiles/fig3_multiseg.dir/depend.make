# Empty dependencies file for fig3_multiseg.
# This may be replaced when dependencies are built.
