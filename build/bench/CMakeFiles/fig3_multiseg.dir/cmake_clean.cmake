file(REMOVE_RECURSE
  "CMakeFiles/fig3_multiseg.dir/fig3_multiseg.cpp.o"
  "CMakeFiles/fig3_multiseg.dir/fig3_multiseg.cpp.o.d"
  "fig3_multiseg"
  "fig3_multiseg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_multiseg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
