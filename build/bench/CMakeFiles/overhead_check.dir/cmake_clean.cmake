file(REMOVE_RECURSE
  "CMakeFiles/overhead_check.dir/overhead_check.cpp.o"
  "CMakeFiles/overhead_check.dir/overhead_check.cpp.o.d"
  "overhead_check"
  "overhead_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
