# Empty compiler generated dependencies file for overhead_check.
# This may be replaced when dependencies are built.
