# Empty dependencies file for fig2_pingpong.
# This may be replaced when dependencies are built.
