file(REMOVE_RECURSE
  "CMakeFiles/fig2_pingpong.dir/fig2_pingpong.cpp.o"
  "CMakeFiles/fig2_pingpong.dir/fig2_pingpong.cpp.o.d"
  "fig2_pingpong"
  "fig2_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
