file(REMOVE_RECURSE
  "CMakeFiles/fig4_datatype.dir/fig4_datatype.cpp.o"
  "CMakeFiles/fig4_datatype.dir/fig4_datatype.cpp.o.d"
  "fig4_datatype"
  "fig4_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
