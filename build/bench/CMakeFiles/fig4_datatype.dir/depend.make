# Empty dependencies file for fig4_datatype.
# This may be replaced when dependencies are built.
