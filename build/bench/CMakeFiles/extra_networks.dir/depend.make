# Empty dependencies file for extra_networks.
# This may be replaced when dependencies are built.
