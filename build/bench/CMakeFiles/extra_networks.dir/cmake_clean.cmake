file(REMOVE_RECURSE
  "CMakeFiles/extra_networks.dir/extra_networks.cpp.o"
  "CMakeFiles/extra_networks.dir/extra_networks.cpp.o.d"
  "extra_networks"
  "extra_networks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
