file(REMOVE_RECURSE
  "../lib/libnmad_bench_common.a"
  "../lib/libnmad_bench_common.pdb"
  "CMakeFiles/nmad_bench_common.dir/common.cpp.o"
  "CMakeFiles/nmad_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
