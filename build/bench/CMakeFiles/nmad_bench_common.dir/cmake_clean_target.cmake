file(REMOVE_RECURSE
  "../lib/libnmad_bench_common.a"
)
