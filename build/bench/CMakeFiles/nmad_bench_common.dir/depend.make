# Empty dependencies file for nmad_bench_common.
# This may be replaced when dependencies are built.
