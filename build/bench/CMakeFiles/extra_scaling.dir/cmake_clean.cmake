file(REMOVE_RECURSE
  "CMakeFiles/extra_scaling.dir/extra_scaling.cpp.o"
  "CMakeFiles/extra_scaling.dir/extra_scaling.cpp.o.d"
  "extra_scaling"
  "extra_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
