# Empty dependencies file for extra_scaling.
# This may be replaced when dependencies are built.
