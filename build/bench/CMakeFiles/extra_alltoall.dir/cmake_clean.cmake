file(REMOVE_RECURSE
  "CMakeFiles/extra_alltoall.dir/extra_alltoall.cpp.o"
  "CMakeFiles/extra_alltoall.dir/extra_alltoall.cpp.o.d"
  "extra_alltoall"
  "extra_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
