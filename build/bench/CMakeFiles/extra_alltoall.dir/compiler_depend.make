# Empty compiler generated dependencies file for extra_alltoall.
# This may be replaced when dependencies are built.
