# Empty dependencies file for extra_alltoall.
# This may be replaced when dependencies are built.
