# Empty compiler generated dependencies file for nmad_capi.
# This may be replaced when dependencies are built.
