file(REMOVE_RECURSE
  "libnmad_capi.a"
)
