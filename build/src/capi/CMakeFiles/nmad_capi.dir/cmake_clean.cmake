file(REMOVE_RECURSE
  "CMakeFiles/nmad_capi.dir/nmad_c.cpp.o"
  "CMakeFiles/nmad_capi.dir/nmad_c.cpp.o.d"
  "libnmad_capi.a"
  "libnmad_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
