# Empty compiler generated dependencies file for nmad_baseline.
# This may be replaced when dependencies are built.
