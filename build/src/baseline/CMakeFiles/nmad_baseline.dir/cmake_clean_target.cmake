file(REMOVE_RECURSE
  "libnmad_baseline.a"
)
