file(REMOVE_RECURSE
  "CMakeFiles/nmad_baseline.dir/baseline_mpi.cpp.o"
  "CMakeFiles/nmad_baseline.dir/baseline_mpi.cpp.o.d"
  "CMakeFiles/nmad_baseline.dir/stack.cpp.o"
  "CMakeFiles/nmad_baseline.dir/stack.cpp.o.d"
  "libnmad_baseline.a"
  "libnmad_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
