file(REMOVE_RECURSE
  "CMakeFiles/nmad_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/nmad_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/nmad_util.dir/assert.cpp.o"
  "CMakeFiles/nmad_util.dir/assert.cpp.o.d"
  "CMakeFiles/nmad_util.dir/buffer.cpp.o"
  "CMakeFiles/nmad_util.dir/buffer.cpp.o.d"
  "CMakeFiles/nmad_util.dir/cli.cpp.o"
  "CMakeFiles/nmad_util.dir/cli.cpp.o.d"
  "CMakeFiles/nmad_util.dir/logging.cpp.o"
  "CMakeFiles/nmad_util.dir/logging.cpp.o.d"
  "CMakeFiles/nmad_util.dir/rng.cpp.o"
  "CMakeFiles/nmad_util.dir/rng.cpp.o.d"
  "CMakeFiles/nmad_util.dir/stats.cpp.o"
  "CMakeFiles/nmad_util.dir/stats.cpp.o.d"
  "CMakeFiles/nmad_util.dir/status.cpp.o"
  "CMakeFiles/nmad_util.dir/status.cpp.o.d"
  "CMakeFiles/nmad_util.dir/table.cpp.o"
  "CMakeFiles/nmad_util.dir/table.cpp.o.d"
  "CMakeFiles/nmad_util.dir/units.cpp.o"
  "CMakeFiles/nmad_util.dir/units.cpp.o.d"
  "libnmad_util.a"
  "libnmad_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
