file(REMOVE_RECURSE
  "libnmad_util.a"
)
