# Empty dependencies file for nmad_util.
# This may be replaced when dependencies are built.
