
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_plot.cpp" "src/util/CMakeFiles/nmad_util.dir/ascii_plot.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/util/assert.cpp" "src/util/CMakeFiles/nmad_util.dir/assert.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/assert.cpp.o.d"
  "/root/repo/src/util/buffer.cpp" "src/util/CMakeFiles/nmad_util.dir/buffer.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/buffer.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/util/CMakeFiles/nmad_util.dir/cli.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/cli.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/util/CMakeFiles/nmad_util.dir/logging.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/nmad_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/util/CMakeFiles/nmad_util.dir/stats.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/stats.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/util/CMakeFiles/nmad_util.dir/status.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/status.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/nmad_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/util/CMakeFiles/nmad_util.dir/units.cpp.o" "gcc" "src/util/CMakeFiles/nmad_util.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
