file(REMOVE_RECURSE
  "CMakeFiles/nmad_madmpi.dir/collectives.cpp.o"
  "CMakeFiles/nmad_madmpi.dir/collectives.cpp.o.d"
  "CMakeFiles/nmad_madmpi.dir/datatype.cpp.o"
  "CMakeFiles/nmad_madmpi.dir/datatype.cpp.o.d"
  "CMakeFiles/nmad_madmpi.dir/madmpi.cpp.o"
  "CMakeFiles/nmad_madmpi.dir/madmpi.cpp.o.d"
  "CMakeFiles/nmad_madmpi.dir/mpi.cpp.o"
  "CMakeFiles/nmad_madmpi.dir/mpi.cpp.o.d"
  "libnmad_madmpi.a"
  "libnmad_madmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_madmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
