file(REMOVE_RECURSE
  "libnmad_madmpi.a"
)
