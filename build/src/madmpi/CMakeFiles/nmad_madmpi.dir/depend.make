# Empty dependencies file for nmad_madmpi.
# This may be replaced when dependencies are built.
