# Empty dependencies file for nmad_simnet.
# This may be replaced when dependencies are built.
