
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/cpu.cpp" "src/simnet/CMakeFiles/nmad_simnet.dir/cpu.cpp.o" "gcc" "src/simnet/CMakeFiles/nmad_simnet.dir/cpu.cpp.o.d"
  "/root/repo/src/simnet/event_queue.cpp" "src/simnet/CMakeFiles/nmad_simnet.dir/event_queue.cpp.o" "gcc" "src/simnet/CMakeFiles/nmad_simnet.dir/event_queue.cpp.o.d"
  "/root/repo/src/simnet/fabric.cpp" "src/simnet/CMakeFiles/nmad_simnet.dir/fabric.cpp.o" "gcc" "src/simnet/CMakeFiles/nmad_simnet.dir/fabric.cpp.o.d"
  "/root/repo/src/simnet/nic.cpp" "src/simnet/CMakeFiles/nmad_simnet.dir/nic.cpp.o" "gcc" "src/simnet/CMakeFiles/nmad_simnet.dir/nic.cpp.o.d"
  "/root/repo/src/simnet/profiles.cpp" "src/simnet/CMakeFiles/nmad_simnet.dir/profiles.cpp.o" "gcc" "src/simnet/CMakeFiles/nmad_simnet.dir/profiles.cpp.o.d"
  "/root/repo/src/simnet/trace.cpp" "src/simnet/CMakeFiles/nmad_simnet.dir/trace.cpp.o" "gcc" "src/simnet/CMakeFiles/nmad_simnet.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nmad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
