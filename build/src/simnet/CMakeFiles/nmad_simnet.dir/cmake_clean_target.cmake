file(REMOVE_RECURSE
  "libnmad_simnet.a"
)
