file(REMOVE_RECURSE
  "CMakeFiles/nmad_simnet.dir/cpu.cpp.o"
  "CMakeFiles/nmad_simnet.dir/cpu.cpp.o.d"
  "CMakeFiles/nmad_simnet.dir/event_queue.cpp.o"
  "CMakeFiles/nmad_simnet.dir/event_queue.cpp.o.d"
  "CMakeFiles/nmad_simnet.dir/fabric.cpp.o"
  "CMakeFiles/nmad_simnet.dir/fabric.cpp.o.d"
  "CMakeFiles/nmad_simnet.dir/nic.cpp.o"
  "CMakeFiles/nmad_simnet.dir/nic.cpp.o.d"
  "CMakeFiles/nmad_simnet.dir/profiles.cpp.o"
  "CMakeFiles/nmad_simnet.dir/profiles.cpp.o.d"
  "CMakeFiles/nmad_simnet.dir/trace.cpp.o"
  "CMakeFiles/nmad_simnet.dir/trace.cpp.o.d"
  "libnmad_simnet.a"
  "libnmad_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
