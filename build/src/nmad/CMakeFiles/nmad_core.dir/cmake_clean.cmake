file(REMOVE_RECURSE
  "CMakeFiles/nmad_core.dir/api/completion_queue.cpp.o"
  "CMakeFiles/nmad_core.dir/api/completion_queue.cpp.o.d"
  "CMakeFiles/nmad_core.dir/api/pack.cpp.o"
  "CMakeFiles/nmad_core.dir/api/pack.cpp.o.d"
  "CMakeFiles/nmad_core.dir/api/session.cpp.o"
  "CMakeFiles/nmad_core.dir/api/session.cpp.o.d"
  "CMakeFiles/nmad_core.dir/core/core.cpp.o"
  "CMakeFiles/nmad_core.dir/core/core.cpp.o.d"
  "CMakeFiles/nmad_core.dir/core/layout.cpp.o"
  "CMakeFiles/nmad_core.dir/core/layout.cpp.o.d"
  "CMakeFiles/nmad_core.dir/core/packet_builder.cpp.o"
  "CMakeFiles/nmad_core.dir/core/packet_builder.cpp.o.d"
  "CMakeFiles/nmad_core.dir/core/strategy.cpp.o"
  "CMakeFiles/nmad_core.dir/core/strategy.cpp.o.d"
  "CMakeFiles/nmad_core.dir/core/types.cpp.o"
  "CMakeFiles/nmad_core.dir/core/types.cpp.o.d"
  "CMakeFiles/nmad_core.dir/core/wire_format.cpp.o"
  "CMakeFiles/nmad_core.dir/core/wire_format.cpp.o.d"
  "CMakeFiles/nmad_core.dir/drivers/sim_driver.cpp.o"
  "CMakeFiles/nmad_core.dir/drivers/sim_driver.cpp.o.d"
  "CMakeFiles/nmad_core.dir/strategies/builtin.cpp.o"
  "CMakeFiles/nmad_core.dir/strategies/builtin.cpp.o.d"
  "libnmad_core.a"
  "libnmad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
