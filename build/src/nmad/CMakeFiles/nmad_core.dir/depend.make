# Empty dependencies file for nmad_core.
# This may be replaced when dependencies are built.
