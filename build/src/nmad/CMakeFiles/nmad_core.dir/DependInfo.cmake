
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nmad/api/completion_queue.cpp" "src/nmad/CMakeFiles/nmad_core.dir/api/completion_queue.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/api/completion_queue.cpp.o.d"
  "/root/repo/src/nmad/api/pack.cpp" "src/nmad/CMakeFiles/nmad_core.dir/api/pack.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/api/pack.cpp.o.d"
  "/root/repo/src/nmad/api/session.cpp" "src/nmad/CMakeFiles/nmad_core.dir/api/session.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/api/session.cpp.o.d"
  "/root/repo/src/nmad/core/core.cpp" "src/nmad/CMakeFiles/nmad_core.dir/core/core.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/core/core.cpp.o.d"
  "/root/repo/src/nmad/core/layout.cpp" "src/nmad/CMakeFiles/nmad_core.dir/core/layout.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/core/layout.cpp.o.d"
  "/root/repo/src/nmad/core/packet_builder.cpp" "src/nmad/CMakeFiles/nmad_core.dir/core/packet_builder.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/core/packet_builder.cpp.o.d"
  "/root/repo/src/nmad/core/strategy.cpp" "src/nmad/CMakeFiles/nmad_core.dir/core/strategy.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/core/strategy.cpp.o.d"
  "/root/repo/src/nmad/core/types.cpp" "src/nmad/CMakeFiles/nmad_core.dir/core/types.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/core/types.cpp.o.d"
  "/root/repo/src/nmad/core/wire_format.cpp" "src/nmad/CMakeFiles/nmad_core.dir/core/wire_format.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/core/wire_format.cpp.o.d"
  "/root/repo/src/nmad/drivers/sim_driver.cpp" "src/nmad/CMakeFiles/nmad_core.dir/drivers/sim_driver.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/drivers/sim_driver.cpp.o.d"
  "/root/repo/src/nmad/strategies/builtin.cpp" "src/nmad/CMakeFiles/nmad_core.dir/strategies/builtin.cpp.o" "gcc" "src/nmad/CMakeFiles/nmad_core.dir/strategies/builtin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnet/CMakeFiles/nmad_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nmad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
