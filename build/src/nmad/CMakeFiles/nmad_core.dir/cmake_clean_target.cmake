file(REMOVE_RECURSE
  "libnmad_core.a"
)
