# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rpc_multiflow "/root/repo/build/examples/rpc_multiflow")
set_tests_properties(example_rpc_multiflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multirail_transfer "/root/repo/build/examples/multirail_transfer")
set_tests_properties(example_multirail_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datatype_halo "/root/repo/build/examples/datatype_halo")
set_tests_properties(example_datatype_halo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stencil_jacobi "/root/repo/build/examples/stencil_jacobi")
set_tests_properties(example_stencil_jacobi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_c_quickstart "/root/repo/build/examples/c_quickstart")
set_tests_properties(example_c_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sample_sort "/root/repo/build/examples/sample_sort")
set_tests_properties(example_sample_sort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
