# Empty dependencies file for datatype_halo.
# This may be replaced when dependencies are built.
