file(REMOVE_RECURSE
  "CMakeFiles/datatype_halo.dir/datatype_halo.cpp.o"
  "CMakeFiles/datatype_halo.dir/datatype_halo.cpp.o.d"
  "datatype_halo"
  "datatype_halo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datatype_halo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
