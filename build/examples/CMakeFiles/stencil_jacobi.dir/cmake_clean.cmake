file(REMOVE_RECURSE
  "CMakeFiles/stencil_jacobi.dir/stencil_jacobi.cpp.o"
  "CMakeFiles/stencil_jacobi.dir/stencil_jacobi.cpp.o.d"
  "stencil_jacobi"
  "stencil_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
