file(REMOVE_RECURSE
  "CMakeFiles/rpc_multiflow.dir/rpc_multiflow.cpp.o"
  "CMakeFiles/rpc_multiflow.dir/rpc_multiflow.cpp.o.d"
  "rpc_multiflow"
  "rpc_multiflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_multiflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
