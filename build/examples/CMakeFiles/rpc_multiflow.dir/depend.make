# Empty dependencies file for rpc_multiflow.
# This may be replaced when dependencies are built.
