file(REMOVE_RECURSE
  "CMakeFiles/multirail_transfer.dir/multirail_transfer.cpp.o"
  "CMakeFiles/multirail_transfer.dir/multirail_transfer.cpp.o.d"
  "multirail_transfer"
  "multirail_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirail_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
