// Differential/property suite for the calendar-queue EventQueue.
//
// The scheduler was rewritten from a binary heap to a calendar queue; the
// old implementation survives as ReferenceHeapQueue. Both must be
// observationally identical — pop order (including same-timestamp
// insertion-order ties), next_time()/size() accounting, and lazy-cancel
// skip semantics — so seed-driven random workloads run against both in
// lockstep and any divergence fails with the seed plus the shortest
// failing operation prefix (found by binary search, replayable verbatim).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/event_queue.hpp"
#include "util/inline_fn.hpp"
#include "util/rng.hpp"

namespace nmad::simnet {
namespace {

struct DiffResult {
  bool ok = true;
  size_t fail_op = 0;  // index of the first diverging operation
  std::string what;
};

// Runs `nops` operations drawn deterministically from `seed` against both
// queues and cross-checks after every operation. Operations on the prefix
// are identical for any nops, so a failure shrinks by re-running with a
// smaller count.
DiffResult run_diff(uint64_t seed, size_t nops) {
  util::Rng rng(seed);
  EventQueue cal;
  ReferenceHeapQueue ref;
  SimTime now_cal = 0.0;
  SimTime now_ref = 0.0;

  struct Live {
    EventId cal_id;
    EventId ref_id;
    SimTime at;
    uint64_t label;
  };
  std::vector<Live> live;
  std::vector<uint64_t> popped_cal;
  std::vector<uint64_t> popped_ref;
  uint64_t next_label = 0;

  auto fail = [](size_t op, std::string what) {
    return DiffResult{false, op, std::move(what)};
  };

  for (size_t op = 0; op < nops; ++op) {
    const uint64_t dice = rng.next_below(100);
    if (dice < 50 || live.empty()) {
      // Schedule. Mix near-future spacings with exact ties on a pending
      // timestamp (insertion-order tie-break coverage), events at the
      // current instant, and rare far-future outliers (timer-wheel years
      // ahead — exercises the direct-search fallback and width choice).
      SimTime at;
      const uint64_t shape = rng.next_below(10);
      if (shape < 5 || live.empty()) {
        at = now_cal + static_cast<double>(rng.next_below(1000)) * 0.25;
      } else if (shape < 8) {
        at = live[rng.next_below(live.size())].at;  // exact tie
        if (at < now_cal) at = now_cal;
      } else if (shape == 8) {
        at = now_cal;  // fires this instant, behind pending peers
      } else {
        at = now_cal + 1e6 + static_cast<double>(rng.next_below(1000)) * 50.0;
      }
      const uint64_t label = next_label++;
      Live entry;
      entry.at = at;
      entry.label = label;
      entry.cal_id = cal.schedule_at(
          at, [&popped_cal, label] { popped_cal.push_back(label); });
      entry.ref_id = ref.schedule_at(
          at, [&popped_ref, label] { popped_ref.push_back(label); });
      live.push_back(entry);
    } else if (dice < 70) {
      // Cancel a random pending event in both queues.
      const size_t pick = rng.next_below(live.size());
      cal.cancel(live[pick].cal_id);
      ref.cancel(live[pick].ref_id);
      live[pick] = live.back();
      live.pop_back();
    } else {
      // Pop.
      const bool ran_cal = cal.run_one(&now_cal);
      const bool ran_ref = ref.run_one(&now_ref);
      if (ran_cal != ran_ref) return fail(op, "run_one() returned differently");
      if (ran_cal) {
        if (popped_cal.size() != popped_ref.size() ||
            popped_cal.back() != popped_ref.back()) {
          return fail(op, "pop order diverged");
        }
        if (now_cal != now_ref) return fail(op, "clock diverged");
        // Drop the popped event from the live list.
        const uint64_t done = popped_cal.back();
        for (size_t i = 0; i < live.size(); ++i) {
          if (live[i].label == done) {
            live[i] = live.back();
            live.pop_back();
            break;
          }
        }
      }
    }
    if (cal.size() != ref.size()) return fail(op, "size() diverged");
    if (cal.empty() != ref.empty()) return fail(op, "empty() diverged");
    if (cal.next_time() != ref.next_time()) {
      return fail(op, "next_time() diverged");
    }
  }

  // Drain both queues completely and compare the full pop sequences.
  while (true) {
    const bool ran_cal = cal.run_one(&now_cal);
    const bool ran_ref = ref.run_one(&now_ref);
    if (ran_cal != ran_ref) return fail(nops, "drain run_one() diverged");
    if (!ran_cal) break;
  }
  if (popped_cal != popped_ref) return fail(nops, "drain pop order diverged");
  if (now_cal != now_ref) return fail(nops, "drain clock diverged");
  return DiffResult{};
}

TEST(EventQueueProperty, DifferentialAgainstReferenceHeap) {
  for (uint64_t s = 0; s < 40; ++s) {
    const uint64_t seed = 0x9E3779B97F4A7C15ull * (s + 1);
    const size_t nops = 4000;
    const DiffResult full = run_diff(seed, nops);
    if (full.ok) continue;
    // Shrink: binary-search the shortest failing prefix so the replay in
    // the failure message is minimal.
    size_t lo = 1;
    size_t hi = full.fail_op + 1;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (run_diff(seed, mid).ok) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    FAIL() << "calendar queue diverged from reference heap: " << full.what
           << "\n  replay: run_diff(/*seed=*/" << seed << "u, /*nops=*/" << lo
           << ")";
  }
}

// The engine's dominant cancel shape: retransmit/deadline timers are
// scheduled on every packet and almost always cancelled before firing.
// The old sorted-vector cancel was O(n) per call; this workload is what
// the generation-stamped O(1) cancel exists for.
TEST(EventQueueProperty, CancelHeavyTimerWorkload) {
  EventQueue q;
  util::Rng rng(42);
  std::vector<uint64_t> fired;
  std::vector<uint64_t> expected;
  SimTime now = 0.0;
  constexpr size_t kTimers = 50000;
  std::vector<EventId> pending;
  pending.reserve(kTimers);
  for (uint64_t i = 0; i < kTimers; ++i) {
    const SimTime at = 100.0 + static_cast<double>(i) * 0.01;
    pending.push_back(q.schedule_at(at, [&fired, i] { fired.push_back(i); }));
    // 95% of timers are "acked" (cancelled) before they can fire.
    if (rng.next_bool(0.95)) {
      q.cancel(pending.back());
    } else {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(q.size(), expected.size());
  while (q.run_one(&now)) {
  }
  EXPECT_EQ(fired, expected);
  const EventQueue::Stats stats = q.stats();
  EXPECT_EQ(stats.scheduled, kTimers);
  EXPECT_EQ(stats.executed, expected.size());
  EXPECT_EQ(stats.cancelled, kTimers - expected.size());
  EXPECT_EQ(stats.pending, 0u);
}

// Generation stamps must fence every form of dead id: double cancel,
// cancel after the event fired, and a stale id whose slot was recycled by
// a newer event.
TEST(EventQueueProperty, CancelFencing) {
  EventQueue q;
  SimTime now = 0.0;
  int fired_a = 0;
  int fired_b = 0;

  // Double cancel: second call is a no-op, size stays consistent.
  const EventId dup = q.schedule_at(1.0, [] {});
  q.cancel(dup);
  EXPECT_EQ(q.size(), 0u);
  q.cancel(dup);
  EXPECT_EQ(q.size(), 0u);

  // Cancel after fire: must not disturb later events.
  const EventId fires = q.schedule_at(2.0, [&fired_a] { ++fired_a; });
  EXPECT_TRUE(q.run_one(&now));
  EXPECT_EQ(fired_a, 1);
  q.cancel(fires);  // already fired; fenced

  // Slot reuse: the slot freed by `fires` may be handed to `fresh`. The
  // stale id must not cancel the new tenant.
  const EventId fresh = q.schedule_at(3.0, [&fired_b] { ++fired_b; });
  ASSERT_NE(fresh, fires);
  q.cancel(fires);  // stale generation; fenced
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.run_one(&now));
  EXPECT_EQ(fired_b, 1);

  // Ids are never zero (0 is a safe "no event armed" sentinel).
  EXPECT_NE(q.schedule_at(4.0, [] {}), 0u);
}

// Insertion-order ties must survive bucket-array resizes: the rebuild
// re-sorts by (at, seq), so a burst big enough to force several grows
// still pops in submission order.
TEST(EventQueueProperty, TiesSurviveResize) {
  EventQueue q;
  std::vector<int> order;
  constexpr int kBurst = 1000;  // >> kMinBuckets: forces repeated grows
  for (int i = 0; i < kBurst; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_GE(q.stats().resizes, 1u);
  SimTime now = 0.0;
  while (q.run_one(&now)) {
  }
  ASSERT_EQ(order.size(), static_cast<size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(order[i], i);
}

// Widely spaced timers (idle-rail probes parked virtual-hours out) must
// still pop in order — this drives the year-scan's direct-search fallback.
TEST(EventQueueProperty, SparseFarFutureEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(0); });
  q.schedule_at(1e6, [&] { order.push_back(1); });      // one second out
  q.schedule_at(3.6e9, [&] { order.push_back(2); });    // one hour out
  q.schedule_at(7.2e9, [&] { order.push_back(3); });    // two hours out
  SimTime now = 0.0;
  while (q.run_one(&now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(now, 7.2e9);
}

// Steady state must be allocation-free: once the slab/slot/bucket
// capacities cover the working set, a pop+push loop touches no allocator.
// The queue's own capacity counters and the InlineFunction spill counter
// are the witnesses.
TEST(EventQueueProperty, SteadyStateIsAllocationFree) {
  EventQueue q;
  SimTime now = 0.0;
  util::Rng rng(7);
  // Warm up: reach a stable pending population.
  constexpr size_t kPending = 1024;
  for (size_t i = 0; i < kPending; ++i) {
    q.schedule_at(now + static_cast<double>(rng.next_below(100)), [] {});
  }
  for (int i = 0; i < 2000; ++i) {
    q.run_one(&now);
    q.schedule_at(now + static_cast<double>(rng.next_below(100)) + 0.1, [] {});
  }
  const EventQueue::Stats warm = q.stats();
  const uint64_t spills = util::inline_fn_heap_allocs();

  // Steady state: population constant, hundreds of thousands of ops.
  for (int i = 0; i < 200000; ++i) {
    ASSERT_TRUE(q.run_one(&now));
    q.schedule_at(now + static_cast<double>(rng.next_below(100)) + 0.1, [] {});
  }
  const EventQueue::Stats steady = q.stats();
  EXPECT_EQ(steady.node_slabs, warm.node_slabs);
  EXPECT_EQ(steady.node_capacity, warm.node_capacity);
  EXPECT_EQ(steady.slot_capacity, warm.slot_capacity);
  EXPECT_EQ(steady.buckets, warm.buckets);
  EXPECT_EQ(steady.resizes, warm.resizes);
  EXPECT_EQ(util::inline_fn_heap_allocs(), spills);
  EXPECT_EQ(steady.pending, kPending);
}

// InlineFunction itself: captures within capacity stay inline; oversized
// captures spill to the heap exactly once and are counted.
TEST(InlineFunction, InlineAndSpillPaths) {
  const uint64_t before = util::inline_fn_heap_allocs();
  int hits = 0;
  util::InlineFunction<64> small([&hits] { ++hits; });
  small();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(util::inline_fn_heap_allocs(), before);

  // Move transfers ownership; the source becomes empty.
  util::InlineFunction<64> moved(std::move(small));
  moved();
  EXPECT_EQ(hits, 2);
  EXPECT_FALSE(static_cast<bool>(small));  // NOLINT(bugprone-use-after-move)

  struct Big {
    char pad[96];
  };
  Big big{};
  big.pad[0] = 1;
  util::InlineFunction<64> large([big, &hits] { hits += big.pad[0]; });
  EXPECT_EQ(util::inline_fn_heap_allocs(), before + 1);
  large();
  EXPECT_EQ(hits, 3);
  util::InlineFunction<64> large2(std::move(large));  // heap move: no copy
  EXPECT_EQ(util::inline_fn_heap_allocs(), before + 1);
  large2();
  EXPECT_EQ(hits, 4);
}

}  // namespace
}  // namespace nmad::simnet
