// SimNic timing, serialization, bulk sinks, and fabric wiring.
#include <gtest/gtest.h>

#include <vector>

#include "simnet/fabric.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::simnet {
namespace {

NicProfile test_profile() {
  NicProfile p;
  p.name = "test";
  p.latency_us = 1.0;
  p.bandwidth_mbps = 100.0;  // 100 bytes/µs
  p.tx_post_us = 0.5;
  p.rx_drain_us = 0.0;
  p.gather_max_segments = 4;
  p.gather_segment_us = 0.1;
  p.rdma = true;
  p.rdma_setup_us = 0.2;
  return p;
}

struct TwoNodes {
  SimWorld world;
  Fabric fabric{world};
  TwoNodes() {
    fabric.add_node(CpuProfile{});
    fabric.add_node(CpuProfile{});
    fabric.add_rail(test_profile());
  }
  SimNic& nic(NodeId n) { return fabric.node(n).nic(0); }
};

TEST(SimNic, FrameArrivalTiming) {
  TwoNodes t;
  std::vector<std::byte> payload(100);
  util::fill_pattern({payload.data(), 100}, 1);

  double arrived_at = -1.0;
  util::ByteBuffer received;
  t.nic(1).set_rx_handler([&](RxFrame&& f) {
    arrived_at = t.world.now();
    received = std::move(f.bytes);
  });

  double tx_done_at = -1.0;
  t.nic(0).send_frame(1, {payload.data(), 100}, 1,
                      [&] { tx_done_at = t.world.now(); });
  t.world.run_to_quiescence();

  // Occupancy = tx_post (0.5) + 100 B / 100 B/µs (1.0) = 1.5 µs.
  EXPECT_DOUBLE_EQ(tx_done_at, 1.5);
  // Arrival = occupancy + latency (1.0).
  EXPECT_DOUBLE_EQ(arrived_at, 2.5);
  ASSERT_EQ(received.size(), 100u);
  EXPECT_TRUE(util::check_pattern(received.view(), 1));
}

TEST(SimNic, GatherSegmentsCostExtra) {
  TwoNodes t;
  std::vector<std::byte> payload(100);
  t.nic(1).set_rx_handler([](RxFrame&&) {});
  double tx_done_at = -1.0;
  t.nic(0).send_frame(1, {payload.data(), 100}, 3,
                      [&] { tx_done_at = t.world.now(); });
  t.world.run_to_quiescence();
  // + (3-1) * 0.1 gather setup.
  EXPECT_DOUBLE_EQ(tx_done_at, 1.7);
}

TEST(SimNic, TransmitSerializes) {
  TwoNodes t;
  std::vector<std::byte> payload(100);
  std::vector<double> arrivals;
  t.nic(1).set_rx_handler(
      [&](RxFrame&&) { arrivals.push_back(t.world.now()); });
  t.nic(0).send_frame(1, {payload.data(), 100}, 1, nullptr);
  t.nic(0).send_frame(1, {payload.data(), 100}, 1, nullptr);
  EXPECT_FALSE(t.nic(0).tx_idle());
  t.world.run_to_quiescence();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 2.5);
  EXPECT_DOUBLE_EQ(arrivals[1], 4.0);  // second frame queued behind first
  EXPECT_TRUE(t.nic(0).tx_idle());
}

TEST(SimNic, RxDrainSerializesDeliveries) {
  NicProfile p = test_profile();
  p.rx_drain_us = 2.0;  // slower than arrival spacing
  SimWorld world;
  Fabric fabric(world);
  fabric.add_node(CpuProfile{});
  fabric.add_node(CpuProfile{});
  fabric.add_rail(p);
  std::vector<double> handled;
  fabric.node(1).nic(0).set_rx_handler(
      [&](RxFrame&&) { handled.push_back(world.now()); });
  std::vector<std::byte> payload(100);
  fabric.node(0).nic(0).send_frame(1, {payload.data(), 100}, 1, nullptr);
  fabric.node(0).nic(0).send_frame(1, {payload.data(), 100}, 1, nullptr);
  world.run_to_quiescence();
  ASSERT_EQ(handled.size(), 2u);
  // First at arrival 2.5; second arrives 4.0 but the rx engine is busy
  // until 4.5.
  EXPECT_DOUBLE_EQ(handled[0], 2.5);
  EXPECT_DOUBLE_EQ(handled[1], 4.5);
}

TEST(SimNic, BulkLandsInSink) {
  TwoNodes t;
  std::vector<std::byte> src(400), dst(400, std::byte{0});
  util::fill_pattern({src.data(), 400}, 2);

  bool complete = false;
  BulkSink sink(77, {dst.data(), 400}, 400, [&] { complete = true; });
  t.nic(1).post_bulk_sink(&sink);

  t.nic(0).send_bulk(1, 77, 0, {src.data(), 400}, 1, nullptr);
  t.world.run_to_quiescence();

  EXPECT_TRUE(complete);
  EXPECT_TRUE(sink.complete());
  EXPECT_TRUE(util::check_pattern({dst.data(), 400}, 2));
  t.nic(1).remove_bulk_sink(77);
}

TEST(SimNic, BulkChunksReassembleAtOffsets) {
  TwoNodes t;
  std::vector<std::byte> src(300), dst(300, std::byte{0});
  util::fill_pattern({src.data(), 300}, 3);

  int completions = 0;
  BulkSink sink(5, {dst.data(), 300}, 300, [&] { ++completions; });
  t.nic(1).post_bulk_sink(&sink);

  // Send out of order: [200,300) then [0,200).
  t.nic(0).send_bulk(1, 5, 200, {src.data() + 200, 100}, 1, nullptr);
  t.nic(0).send_bulk(1, 5, 0, {src.data(), 200}, 1, nullptr);
  t.world.run_to_quiescence();

  EXPECT_EQ(completions, 1);
  EXPECT_TRUE(util::check_pattern({dst.data(), 300}, 3));
  t.nic(1).remove_bulk_sink(5);
}

TEST(SimNic, SharedSinkAcrossTwoRails) {
  SimWorld world;
  Fabric fabric(world);
  fabric.add_node(CpuProfile{});
  fabric.add_node(CpuProfile{});
  fabric.add_rail(test_profile());
  fabric.add_rail(test_profile());

  std::vector<std::byte> src(200), dst(200, std::byte{0});
  util::fill_pattern({src.data(), 200}, 4);

  bool complete = false;
  BulkSink sink(9, {dst.data(), 200}, 200, [&] { complete = true; });
  fabric.node(1).nic(0).post_bulk_sink(&sink);
  fabric.node(1).nic(1).post_bulk_sink(&sink);

  fabric.node(0).nic(0).send_bulk(1, 9, 0, {src.data(), 100}, 1, nullptr);
  fabric.node(0).nic(1).send_bulk(1, 9, 100, {src.data() + 100, 100}, 1,
                                  nullptr);
  world.run_to_quiescence();

  EXPECT_TRUE(complete);
  EXPECT_TRUE(util::check_pattern({dst.data(), 200}, 4));
  fabric.node(1).nic(0).remove_bulk_sink(9);
  fabric.node(1).nic(1).remove_bulk_sink(9);
}

TEST(SimNic, CountersTrackTraffic) {
  TwoNodes t;
  t.nic(1).set_rx_handler([](RxFrame&&) {});
  std::vector<std::byte> payload(64);
  t.nic(0).send_frame(1, {payload.data(), 64}, 1, nullptr);
  t.world.run_to_quiescence();
  EXPECT_EQ(t.nic(0).counters().frames_sent, 1u);
  EXPECT_EQ(t.nic(0).counters().bytes_sent, 64u);
  EXPECT_EQ(t.nic(1).counters().frames_received, 1u);
  EXPECT_EQ(t.nic(1).counters().bytes_received, 64u);
  EXPECT_GT(t.nic(0).counters().tx_busy_us, 0.0);
}

TEST(Fabric, ThreeNodeCrossbarDeliversByNodeId) {
  SimWorld world;
  Fabric fabric(world);
  for (int i = 0; i < 3; ++i) fabric.add_node(CpuProfile{});
  fabric.add_rail(test_profile());

  std::vector<int> got_from;
  fabric.node(2).nic(0).set_rx_handler([&](RxFrame&& f) {
    got_from.push_back(static_cast<int>(f.src_node));
  });
  std::vector<std::byte> payload(10);
  fabric.node(0).nic(0).send_frame(2, {payload.data(), 10}, 1, nullptr);
  fabric.node(1).nic(0).send_frame(2, {payload.data(), 10}, 1, nullptr);
  world.run_to_quiescence();
  ASSERT_EQ(got_from.size(), 2u);
  EXPECT_EQ(got_from[0], 0);
  EXPECT_EQ(got_from[1], 1);
}

TEST(Fabric, ProfilesByName) {
  NicProfile p;
  EXPECT_TRUE(nic_profile_by_name("mx", &p));
  EXPECT_EQ(p.name, "mx-myri10g");
  EXPECT_TRUE(nic_profile_by_name("quadrics", &p));
  EXPECT_EQ(p.name, "elan-quadrics");
  EXPECT_TRUE(nic_profile_by_name("sci", &p));
  EXPECT_TRUE(nic_profile_by_name("gm", &p));
  EXPECT_EQ(p.name, "gm-myrinet2000");
  EXPECT_TRUE(nic_profile_by_name("shm", &p));
  EXPECT_TRUE(p.rdma);  // shm: shared segments count as directed writes
  EXPECT_TRUE(nic_profile_by_name("tcp", &p));
  EXPECT_FALSE(p.rdma);  // tcp
  EXPECT_FALSE(nic_profile_by_name("nosuch", &p));
}

}  // namespace
}  // namespace nmad::simnet
