// Event queue ordering, virtual clock, and CPU model semantics.
#include <gtest/gtest.h>

#include <vector>

#include "simnet/cpu.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/world.hpp"

namespace nmad::simnet {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  SimTime now = 0.0;
  while (q.run_one(&now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(now, 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  SimTime now = 0.0;
  while (q.run_one(&now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(1); });
  const EventId victim = q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.cancel(victim);
  EXPECT_EQ(q.size(), 2u);
  SimTime now = 0.0;
  while (q.run_one(&now)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId first = q.schedule_at(1.0, [] {});
  q.schedule_at(5.0, [] {});
  q.cancel(first);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, EmptyBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kNever);
  SimTime now = 0.0;
  EXPECT_FALSE(q.run_one(&now));
}

TEST(SimWorld, AfterSchedulesRelative) {
  SimWorld world;
  double fired_at = -1.0;
  world.after(2.5, [&] { fired_at = world.now(); });
  world.run_to_quiescence();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
  EXPECT_DOUBLE_EQ(world.now(), 2.5);
}

TEST(SimWorld, EventsCanScheduleEvents) {
  SimWorld world;
  std::vector<double> times;
  world.after(1.0, [&] {
    times.push_back(world.now());
    world.after(1.0, [&] { times.push_back(world.now()); });
  });
  world.run_to_quiescence();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(SimWorld, RunUntilStopsAtPredicate) {
  SimWorld world;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    world.after(i, [&] { ++count; });
  }
  EXPECT_TRUE(world.run_until([&] { return count == 3; }));
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(world.now(), 3.0);
  EXPECT_EQ(world.pending_events(), 7u);
}

TEST(SimWorld, RunUntilReportsQuiescence) {
  SimWorld world;
  world.after(1.0, [] {});
  EXPECT_FALSE(world.run_until([] { return false; }));
  EXPECT_TRUE(world.idle());
}

TEST(CpuModel, ChargesSerialize) {
  SimWorld world;
  CpuModel cpu(world, CpuProfile{});
  EXPECT_DOUBLE_EQ(cpu.free_at(), 0.0);
  EXPECT_DOUBLE_EQ(cpu.charge(1.0), 1.0);
  EXPECT_DOUBLE_EQ(cpu.charge(2.0), 3.0);  // starts after the first
  EXPECT_DOUBLE_EQ(cpu.free_at(), 3.0);
  EXPECT_DOUBLE_EQ(cpu.busy_total(), 3.0);
}

TEST(CpuModel, IdleGapResetsStart) {
  SimWorld world;
  CpuModel cpu(world, CpuProfile{});
  cpu.charge(1.0);
  world.after(5.0, [] {});
  world.run_to_quiescence();  // now == 5, past busy_until
  EXPECT_DOUBLE_EQ(cpu.free_at(), 5.0);
  EXPECT_DOUBLE_EQ(cpu.charge(1.0), 6.0);
}

TEST(CpuModel, MemcpyPiecewiseBandwidth) {
  SimWorld world;
  CpuProfile profile;
  profile.memcpy_hot_mbps = 4000.0;
  profile.memcpy_cold_mbps = 1000.0;
  profile.memcpy_hot_threshold = 1024;
  profile.memcpy_call_us = 0.1;
  CpuModel cpu(world, profile);
  // Hot: 1024 bytes at 4000 MB/s = 0.256 µs + call.
  EXPECT_NEAR(cpu.memcpy_cost(1024), 0.1 + 1024.0 / 4000.0, 1e-12);
  // Cold: 1 byte over the threshold switches to the cold rate.
  EXPECT_NEAR(cpu.memcpy_cost(1025), 0.1 + 1025.0 / 1000.0, 1e-12);
  EXPECT_NEAR(cpu.memcpy_cost(0), 0.1, 1e-12);
}

TEST(CpuModel, ChargeMemcpyAdvancesClock) {
  SimWorld world;
  CpuModel cpu(world, CpuProfile{});
  const SimTime done = cpu.charge_memcpy(4096);
  EXPECT_DOUBLE_EQ(done, cpu.memcpy_cost(4096));
  EXPECT_DOUBLE_EQ(cpu.free_at(), done);
}

}  // namespace
}  // namespace nmad::simnet

namespace nmad::simnet {
namespace {

TEST(CpuModel, HeterogeneousNodesProgressIndependently) {
  // A slow node's copies must not delay the fast node's CPU.
  SimWorld world;
  CpuProfile fast;
  CpuProfile slow;
  slow.memcpy_hot_mbps = fast.memcpy_hot_mbps / 10.0;
  slow.memcpy_cold_mbps = fast.memcpy_cold_mbps / 10.0;
  CpuModel cpu_fast(world, fast);
  CpuModel cpu_slow(world, slow);

  const SimTime t_fast = cpu_fast.charge_memcpy(64 * 1024);
  const SimTime t_slow = cpu_slow.charge_memcpy(64 * 1024);
  EXPECT_GT(t_slow, t_fast * 5.0);
  // The fast CPU is free again as soon as its own work ends.
  EXPECT_DOUBLE_EQ(cpu_fast.free_at(), t_fast);
}

}  // namespace
}  // namespace nmad::simnet
