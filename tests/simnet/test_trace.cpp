// TraceLog recording and its attachment to NICs / the full engine stack.
#include <gtest/gtest.h>

#include "nmad/api/session.hpp"
#include "simnet/trace.hpp"
#include "util/buffer.hpp"

namespace nmad::simnet {
namespace {

TEST(TraceLog, RecordsAndCounts) {
  TraceLog log;
  log.record(1.0, TraceKind::kFrameTx, 0, 0, 100);
  log.record(2.0, TraceKind::kFrameRx, 1, 0, 100);
  log.record(3.0, TraceKind::kFrameTx, 0, 1, 50);
  log.record(4.0, TraceKind::kUser, 0, 0, 0, "marker");

  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.count(TraceKind::kFrameTx), 2u);
  EXPECT_EQ(log.count(TraceKind::kFrameTx, /*node=*/0), 2u);
  EXPECT_EQ(log.count(TraceKind::kFrameTx, /*node=*/1), 0u);
  EXPECT_EQ(log.count(TraceKind::kFrameRx), 1u);
  EXPECT_EQ(log.events()[3].note, "marker");

  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(TraceLog, KindNames) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kFrameTx), "frame-tx");
  EXPECT_STREQ(trace_kind_name(TraceKind::kBulkRx), "bulk-rx");
  EXPECT_STREQ(trace_kind_name(TraceKind::kUser), "user");
}

TEST(TraceLog, CapturesFullEngineExchange) {
  api::Cluster cluster;
  TraceLog log;
  cluster.fabric().node(0).nic(0).set_trace(&log);
  cluster.fabric().node(1).nic(0).set_trace(&log);

  // One eager message and one rendezvous message.
  std::vector<std::byte> small_out(256), small_in(256);
  std::vector<std::byte> big_out(256 * 1024), big_in(256 * 1024);
  util::fill_pattern({small_out.data(), 256}, 1);
  util::fill_pattern({big_out.data(), big_out.size()}, 2);

  std::vector<core::Request*> reqs = {
      cluster.core(1).irecv(cluster.gate(1, 0), 1,
                            {small_in.data(), small_in.size()}),
      cluster.core(1).irecv(cluster.gate(1, 0), 2,
                            {big_in.data(), big_in.size()}),
      cluster.core(0).isend(cluster.gate(0, 1), 1,
                            util::ConstBytes{small_out.data(), 256}),
      cluster.core(0).isend(
          cluster.gate(0, 1), 2,
          util::ConstBytes{big_out.data(), big_out.size()}),
  };
  cluster.wait_all(reqs);

  // Node 0 launched track-0 frames (data + RTS) and the bulk body; node 1
  // received them and launched the CTS frame back.
  EXPECT_GE(log.count(TraceKind::kFrameTx, 0), 1u);
  EXPECT_GE(log.count(TraceKind::kFrameTx, 1), 1u);  // the CTS
  EXPECT_GE(log.count(TraceKind::kFrameRx, 1), 1u);
  EXPECT_EQ(log.count(TraceKind::kBulkTx, 0), 1u);
  EXPECT_EQ(log.count(TraceKind::kBulkRx, 1), 1u);

  // Timestamps are monotone non-decreasing (events recorded in order).
  for (size_t i = 1; i < log.events().size(); ++i) {
    EXPECT_LE(log.events()[i - 1].at, log.events()[i].at + 1e9);
  }

  // The dump must render every event.
  char buf[8192] = {};
  FILE* mem = fmemopen(buf, sizeof(buf), "w");
  log.dump(mem);
  std::fclose(mem);
  EXPECT_NE(std::string(buf).find("bulk-tx"), std::string::npos);
  EXPECT_NE(std::string(buf).find("frame-rx"), std::string::npos);

  for (auto* r : reqs) {
    (r->kind() == core::Request::Kind::kSend ? cluster.core(0)
                                             : cluster.core(1))
        .release(r);
  }
}

}  // namespace
}  // namespace nmad::simnet
