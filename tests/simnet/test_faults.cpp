// Fault injection: drop probabilities, bit flips, blackout windows and
// seed-reproducibility of the lossy-fabric model.
#include <gtest/gtest.h>

#include <vector>

#include "simnet/fabric.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::simnet {
namespace {

NicProfile faulty_profile(FaultProfile fault) {
  NicProfile p;
  p.name = "faulty";
  p.latency_us = 1.0;
  p.bandwidth_mbps = 100.0;  // 100 bytes/µs
  p.tx_post_us = 0.1;
  p.rx_drain_us = 0.0;
  p.rdma = true;
  p.rdma_setup_us = 0.1;
  p.fault = std::move(fault);
  return p;
}

struct LossyPair {
  SimWorld world;
  Fabric fabric{world};
  explicit LossyPair(FaultProfile fault) {
    fabric.add_node(CpuProfile{});
    fabric.add_node(CpuProfile{});
    fabric.add_rail(faulty_profile(std::move(fault)));
  }
  SimNic& nic(NodeId n) { return fabric.node(n).nic(0); }
};

// Sends `count` back-to-back frames of `frame` and returns the indices
// (by payload byte 0) of the frames that were actually delivered.
std::vector<int> send_burst(LossyPair& t, int count) {
  std::vector<int> delivered;
  t.nic(1).set_rx_handler([&](RxFrame&& f) {
    delivered.push_back(static_cast<int>(f.bytes.view()[0]) & 0xFF);
  });
  std::vector<std::byte> payload(64);
  for (int i = 0; i < count; ++i) {
    payload[0] = static_cast<std::byte>(i & 0xFF);
    t.nic(0).send_frame(1, {payload.data(), payload.size()}, 1, nullptr);
    t.world.run_to_quiescence();  // serialize so payload[0] is stable
  }
  return delivered;
}

TEST(FaultInjection, DropFractionTracksProbability) {
  FaultProfile fault;
  fault.frame_drop_prob = 0.2;
  fault.seed = 42;
  LossyPair t(fault);

  constexpr int kN = 1000;
  const auto delivered = send_burst(t, kN);
  const auto& c = t.nic(0).counters();
  EXPECT_EQ(c.frames_sent, static_cast<uint64_t>(kN));
  EXPECT_EQ(c.frames_dropped + delivered.size(), static_cast<uint64_t>(kN));
  // Law of large numbers: 200 ± generous slack for a fixed seed.
  EXPECT_GT(c.frames_dropped, 130u);
  EXPECT_LT(c.frames_dropped, 270u);
}

TEST(FaultInjection, BitFlipCorruptsExactlyOneBit) {
  FaultProfile fault;
  fault.bit_flip_prob = 1.0;
  fault.seed = 7;
  LossyPair t(fault);

  std::vector<std::byte> payload(128);
  util::fill_pattern({payload.data(), payload.size()}, 3);

  int frames = 0;
  t.nic(1).set_rx_handler([&](RxFrame&& f) {
    ++frames;
    ASSERT_EQ(f.bytes.size(), payload.size());
    int bits_differing = 0;
    for (size_t i = 0; i < payload.size(); ++i) {
      uint8_t diff = static_cast<uint8_t>(f.bytes.view()[i]) ^
                     static_cast<uint8_t>(payload[i]);
      while (diff != 0) {
        bits_differing += diff & 1;
        diff >>= 1;
      }
    }
    EXPECT_EQ(bits_differing, 1);
  });
  for (int i = 0; i < 20; ++i) {
    t.nic(0).send_frame(1, {payload.data(), payload.size()}, 1, nullptr);
    t.world.run_to_quiescence();
  }
  EXPECT_EQ(frames, 20);
  EXPECT_EQ(t.nic(0).counters().frames_corrupted, 20u);
}

TEST(FaultInjection, BlackoutSilencesTheWindow) {
  FaultProfile fault;
  fault.blackouts.push_back({100.0, 200.0});
  LossyPair t(fault);

  std::vector<int> delivered;
  t.nic(1).set_rx_handler([&](RxFrame&& f) {
    delivered.push_back(static_cast<int>(f.bytes.view()[0]) & 0xFF);
  });
  // One frame before, three inside, one after the window. The payload
  // tags the launch slot.
  std::vector<std::byte> payloads[5];
  const double launch_at[5] = {10.0, 110.0, 150.0, 199.0, 250.0};
  for (int i = 0; i < 5; ++i) {
    payloads[i].resize(32);
    payloads[i][0] = static_cast<std::byte>(i);
    t.world.at(launch_at[i], [&t, &payloads, i] {
      t.nic(0).send_frame(1, {payloads[i].data(), payloads[i].size()}, 1,
                          nullptr);
    });
  }
  t.world.run_to_quiescence();

  EXPECT_EQ(delivered, (std::vector<int>{0, 4}));
  EXPECT_EQ(t.nic(0).counters().frames_dropped, 3u);
  EXPECT_TRUE(t.nic(0).in_blackout(150.0));
  EXPECT_FALSE(t.nic(0).in_blackout(200.0));  // half-open interval
}

TEST(FaultInjection, ReceiverBlackoutAlsoLosesFrames) {
  // The blackout is configured fabric-wide (both NICs share the rail
  // profile), so a frame launched clear of the window can still die if
  // it would *arrive* inside one. latency 1 µs + 32 B / 100 B/µs puts a
  // t=99 launch's arrival at ~100.4, inside [100, 200).
  FaultProfile fault;
  fault.blackouts.push_back({100.0, 200.0});
  LossyPair t(fault);

  int heard = 0;
  t.nic(1).set_rx_handler([&](RxFrame&&) { ++heard; });
  std::vector<std::byte> payload(32);
  t.world.at(99.0, [&] {
    t.nic(0).send_frame(1, {payload.data(), payload.size()}, 1, nullptr);
  });
  t.world.run_to_quiescence();
  EXPECT_EQ(heard, 0);
  EXPECT_EQ(t.nic(0).counters().frames_dropped, 1u);
}

TEST(FaultInjection, SameSeedReplaysBitIdentically) {
  const auto run = [](uint64_t seed) {
    FaultProfile fault;
    fault.frame_drop_prob = 0.5;
    fault.seed = seed;
    LossyPair t(fault);
    return send_burst(t, 128);
  };
  const auto a = run(1234);
  const auto b = run(1234);
  const auto c = run(5678);
  EXPECT_EQ(a, b);  // deterministic replay from the seed
  EXPECT_NE(a, c);  // a different seed draws a different loss pattern
}

TEST(FaultInjection, BulkSlicesDropButNeverCorrupt) {
  FaultProfile fault;
  fault.bulk_drop_prob = 0.5;
  fault.seed = 9;
  LossyPair t(fault);

  constexpr size_t kSlice = 4096;
  constexpr int kSlices = 64;
  std::vector<std::byte> dst(kSlice * kSlices);
  bool completed = false;
  BulkSink sink(0xC0FFEE, {dst.data(), dst.size()}, dst.size(),
                [&] { completed = true; });
  std::vector<size_t> landed;
  sink.set_on_deposit(
      [&](size_t offset, size_t len) {
        EXPECT_EQ(len, kSlice);
        landed.push_back(offset);
      });
  t.nic(1).post_bulk_sink(&sink);

  std::vector<std::byte> src(kSlice);
  util::fill_pattern({src.data(), src.size()}, 5);
  for (int i = 0; i < kSlices; ++i) {
    t.nic(0).send_bulk(1, 0xC0FFEE, static_cast<size_t>(i) * kSlice,
                       {src.data(), src.size()}, 1, nullptr);
    t.world.run_to_quiescence();
  }

  // Drops are charged at the sending end, deliveries at the receiving end.
  const uint64_t dropped = t.nic(0).counters().bulk_dropped;
  const uint64_t received = t.nic(1).counters().bulk_received;
  EXPECT_EQ(dropped + received, static_cast<uint64_t>(kSlices));
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, static_cast<uint64_t>(kSlices));
  EXPECT_FALSE(completed);  // some slice was lost
  // Every slice that did land is byte-exact (drop-only model: RDMA
  // checksums its payload, corruption surfaces as loss).
  EXPECT_EQ(sink.received(), received * kSlice);
  ASSERT_EQ(landed.size(), received);
  for (const size_t offset : landed) {
    EXPECT_TRUE(util::check_pattern({dst.data() + offset, kSlice}, 5))
        << "slice at " << offset;
  }
  t.nic(1).remove_bulk_sink(0xC0FFEE);
}

TEST(FaultInjection, LateBulkFrameReachesOrphanHandler) {
  LossyPair t(FaultProfile{});
  uint64_t orphan_cookie = 0;
  size_t orphan_offset = 0, orphan_len = 0;
  t.nic(1).set_bulk_orphan_handler(
      [&](NodeId src, uint64_t cookie, size_t offset, size_t len) {
        EXPECT_EQ(src, 0u);
        orphan_cookie = cookie;
        orphan_offset = offset;
        orphan_len = len;
      });
  // No sink posted under this cookie: models a retransmitted slice that
  // arrives after the receiver completed and tore the sink down.
  std::vector<std::byte> src(256);
  t.nic(0).send_bulk(1, 0xDEAD, 128, {src.data(), src.size()}, 1, nullptr);
  t.world.run_to_quiescence();
  EXPECT_EQ(orphan_cookie, 0xDEADu);
  EXPECT_EQ(orphan_offset, 128u);
  EXPECT_EQ(orphan_len, 256u);
  EXPECT_EQ(t.nic(1).counters().bulk_orphaned, 1u);
}

TEST(FaultInjection, RxPauseDelaysFramesWithoutLoss) {
  // A paused receiver (slow poller) holds frames in its queue: delivery
  // slides to the end of the pause window — and composes across adjacent
  // windows — but nothing is ever dropped.
  LossyPair t(FaultProfile{});
  std::vector<double> arrivals;
  t.nic(1).set_rx_handler(
      [&](RxFrame&&) { arrivals.push_back(t.world.now()); });
  t.nic(1).set_rx_pauses({{0.0, 500.0}, {500.0, 800.0}});

  std::vector<std::byte> payload(64);
  t.nic(0).send_frame(1, {payload.data(), payload.size()}, 1, nullptr);
  t.nic(0).send_frame(1, {payload.data(), payload.size()}, 1, nullptr);
  t.world.run_to_quiescence();
  ASSERT_EQ(arrivals.size(), 2u);
  // Without the pause these frames land ~1.8/2.5µs in; the stacked
  // windows push both past t=800.
  EXPECT_GE(arrivals[0], 800.0);
  EXPECT_GE(arrivals[1], arrivals[0]);
  EXPECT_EQ(t.nic(0).counters().frames_dropped, 0u);
  EXPECT_EQ(t.nic(1).counters().frames_received, 2u);

  // A frame sent after the windows have passed is not delayed.
  const double sent_at = t.world.now();
  t.nic(0).send_frame(1, {payload.data(), payload.size()}, 1, nullptr);
  t.world.run_to_quiescence();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_LT(arrivals[2], sent_at + 5.0);
}

}  // namespace
}  // namespace nmad::simnet
