// PacketBuilder: limits, gather-list shape, header/payload interleaving.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/core/packet_builder.hpp"
#include "nmad/core/wire_format.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

OutChunk make_data(Tag tag, SeqNum seq, util::ConstBytes payload) {
  OutChunk c;
  c.kind = ChunkKind::kData;
  c.tag = tag;
  c.seq = seq;
  c.total = static_cast<uint32_t>(payload.size());
  c.payload = payload;
  return c;
}

OutChunk make_cts(uint64_t cookie, std::vector<uint8_t> rails) {
  OutChunk c;
  c.kind = ChunkKind::kCts;
  c.tag = 1;
  c.seq = 0;
  c.cookie = cookie;
  c.cts_rails = std::move(rails);
  return c;
}

// Flattens the builder's gather list and decodes it back. The flat wire
// image travels with the chunks: their payload spans point into it.
struct DecodedPacket {
  util::ByteBuffer flat;
  std::vector<WireChunk> chunks;

  size_t size() const { return chunks.size(); }
  const WireChunk& operator[](size_t i) const { return chunks[i]; }
};

DecodedPacket build_and_decode(PacketBuilder& builder) {
  const util::SegmentVec& segs = builder.finalize();
  DecodedPacket out;
  out.flat.resize(segs.total_bytes());
  segs.gather_into(out.flat.view());
  util::Status st = decode_packet(out.flat.view(), [&](const WireChunk& c) {
    WireChunk copy = c;
    out.chunks.push_back(copy);
  });
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  return out;
}

TEST(PacketBuilder, SingleChunkPacket) {
  std::vector<std::byte> payload(32);
  util::fill_pattern({payload.data(), 32}, 1);
  OutChunk c = make_data(5, 0, {payload.data(), 32});

  PacketBuilder builder(1024, 0);
  EXPECT_TRUE(builder.fits(c));
  builder.add(&c);
  EXPECT_EQ(builder.chunk_count(), 1u);
  EXPECT_EQ(builder.wire_bytes(), kPacketHeaderBytes + kDataHeaderBytes + 32);

  auto chunks = build_and_decode(builder);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(util::check_pattern(chunks[0].payload, 1));
}

TEST(PacketBuilder, FirstChunkAlwaysFits) {
  std::vector<std::byte> payload(1000);
  OutChunk c = make_data(1, 0, {payload.data(), 1000});
  PacketBuilder builder(64, 0);  // limit smaller than the chunk
  EXPECT_TRUE(builder.fits(c));
  builder.add(&c);
  EXPECT_FALSE(builder.fits(c));  // but a second one does not
}

TEST(PacketBuilder, ByteLimitEnforced) {
  std::vector<std::byte> payload(100);
  OutChunk a = make_data(1, 0, {payload.data(), 100});
  OutChunk b = make_data(2, 0, {payload.data(), 100});
  const size_t exact =
      kPacketHeaderBytes + 2 * (kDataHeaderBytes + 100);
  PacketBuilder fits_two(exact, 0);
  fits_two.add(&a);
  EXPECT_TRUE(fits_two.fits(b));

  PacketBuilder fits_one(exact - 1, 0);
  fits_one.add(&a);
  EXPECT_FALSE(fits_one.fits(b));
}

TEST(PacketBuilder, SegmentLimitEnforced) {
  std::vector<std::byte> payload(10);
  OutChunk a = make_data(1, 0, {payload.data(), 10});
  OutChunk b = make_data(2, 0, {payload.data(), 10});
  // Each payload chunk adds 2 segments to the initial header segment, so
  // one chunk estimates 3 segments and two chunks estimate 5.
  PacketBuilder builder(1 << 20, 4);
  builder.add(&a);
  EXPECT_FALSE(builder.fits(b));

  PacketBuilder wider(1 << 20, 5);
  wider.add(&a);
  EXPECT_TRUE(wider.fits(b));
}

TEST(PacketBuilder, MultiplexPreservesAllChunks) {
  std::vector<std::byte> p1(16), p2(8);
  util::fill_pattern({p1.data(), 16}, 1);
  util::fill_pattern({p2.data(), 8}, 2);
  OutChunk a = make_data(10, 0, {p1.data(), 16});
  OutChunk cts = make_cts(0xBEEF, {0, 1});
  OutChunk b = make_data(11, 3, {p2.data(), 8});

  PacketBuilder builder(1024, 0);
  builder.add(&a);
  builder.add(&cts);
  builder.add(&b);
  auto chunks = build_and_decode(builder);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].tag, 10u);
  EXPECT_TRUE(util::check_pattern(chunks[0].payload, 1));
  EXPECT_EQ(chunks[1].cookie, 0xBEEFull);
  EXPECT_EQ(chunks[1].rails, (std::vector<uint8_t>{0, 1}));
  EXPECT_EQ(chunks[2].seq, 3u);
  EXPECT_TRUE(util::check_pattern(chunks[2].payload, 2));
}

TEST(PacketBuilder, PayloadSegmentsAreZeroCopyViews) {
  std::vector<std::byte> payload(64);
  OutChunk c = make_data(1, 0, {payload.data(), 64});
  PacketBuilder builder(1024, 0);
  builder.add(&c);
  const util::SegmentVec& segs = builder.finalize();
  // [headers][payload] — the payload segment must alias the original.
  ASSERT_EQ(segs.count(), 2u);
  EXPECT_EQ(segs[1].data, payload.data());
  EXPECT_EQ(segs[1].len, 64u);
}

TEST(PacketBuilder, ControlChunksCoalesceHeaderSegments) {
  OutChunk a = make_cts(1, {0});
  OutChunk b = make_cts(2, {1});
  std::vector<std::byte> payload(4);
  OutChunk d = make_data(3, 0, {payload.data(), 4});

  PacketBuilder builder(1024, 0);
  builder.add(&a);
  builder.add(&b);
  builder.add(&d);
  const util::SegmentVec& segs = builder.finalize();
  // cts+cts+data header merge into one leading segment, then the payload.
  EXPECT_EQ(segs.count(), 2u);

  util::ByteBuffer flat;
  flat.resize(segs.total_bytes());
  segs.gather_into(flat.view());
  int seen = 0;
  ASSERT_TRUE(decode_packet(flat.view(), [&](const WireChunk&) {
                ++seen;
              }).is_ok());
  EXPECT_EQ(seen, 3);
}

TEST(PacketBuilder, RtsUsesRdvLenNotPayload) {
  OutChunk rts;
  rts.kind = ChunkKind::kRts;
  rts.tag = 4;
  rts.seq = 2;
  rts.offset = 64;
  rts.total = 262208;
  rts.rdv_len = 262144;
  rts.cookie = 0xAA;

  PacketBuilder builder(1024, 0);
  builder.add(&rts);
  auto chunks = build_and_decode(builder);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].len, 262144u);
  EXPECT_EQ(chunks[0].total, 262208u);
  EXPECT_EQ(chunks[0].offset, 64u);
}

}  // namespace
}  // namespace nmad::core
