// Peer-crash fault tolerance: a whole-node crash silences every rail to
// the peer, the death grace expires, the peer is declared dead and every
// in-flight op unwinds deterministically with kPeerDead; the survivor
// drains clean immediately afterwards. A restarted peer announces a
// bumped incarnation through its heartbeats, previous-life stragglers
// are fenced, and the rejoin handshake re-opens the gate with fresh
// sequence/credit state so post-rejoin traffic is exactly-once. MAD-MPI
// surfaces all of it: ops to a dead rank fail fast, Finalize skips dead
// peers. Plus the drain-under-kDegraded satellite: a gray (degraded but
// alive) rail must not stop Core::drain from flushing.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "madmpi/madmpi.hpp"
#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

// Health thresholds scaled to the 200µs ack timeout, same shape the rail
// lifecycle tests use, plus the peer lifecycle on top: both rails silent
// for dead_after_us kills them, and peer_death_grace_us later the peer
// itself is declared dead.
CoreConfig lifecycle_config() {
  CoreConfig c;
  c.peer_lifecycle = true;  // implies rail_health, which implies reliability
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  c.rail_dead_after = 0;  // the health layer owns rail death here
  c.max_retries = 20;
  c.heartbeat_interval_us = 50.0;
  c.suspect_after_us = 150.0;
  c.dead_after_us = 300.0;
  c.probe_interval_us = 100.0;
  c.probation_replies = 2;
  c.peer_death_grace_us = 150.0;
  return c;
}

api::ClusterOptions two_rail_options(CoreConfig cfg,
                                     simnet::FaultProfile fault = {}) {
  api::ClusterOptions options;
  options.nodes = 2;
  simnet::NicProfile rail = simnet::mx_myri10g_profile();
  rail.fault = std::move(fault);
  options.rails = {rail, rail};
  options.core = cfg;
  return options;
}

// Pumps the shared loop until `t_us`. With rail health on the world is
// never quiescent (the monitors re-arm forever), so this always returns
// at the requested time.
void step_until(api::Cluster& cluster, double t_us) {
  while (cluster.now() < t_us && cluster.world().run_one()) {
  }
}

void settle(api::Cluster& cluster) {
  for (simnet::NodeId n = 0; n < cluster.node_count(); ++n) {
    cluster.core(n).stop_health_monitors();
  }
  while (cluster.world().run_one()) {
  }
}

constexpr double kForever = 1.0e15;

TEST(PeerLifecycle, CrashUnwindsInFlightWithPeerDead) {
  CoreConfig cfg = lifecycle_config();
  cfg.rdv_threshold_override = 4096;  // keep multi-chunk bodies in flight
  api::Cluster cluster(two_rail_options(cfg));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  size_t peer_died_events = 0;
  a.bus().subscribe(EventKind::kPeerDied,
                    [&peer_died_events](const Event&) { ++peer_died_events; });

  step_until(cluster, 500.0);

  // In-flight state of every flavour when the lights go out: an eager
  // send, a rendezvous body, an unmatched posted receive, and traffic
  // from the side that is about to crash.
  std::vector<std::byte> big(256 * 1024), small(256), in(4096);
  std::vector<std::byte> theirs(64 * 1024);
  util::fill_pattern({big.data(), big.size()}, 7);
  Request* rdv = a.isend(cluster.gate(0, 1), Tag(1),
                         util::ConstBytes{big.data(), big.size()});
  Request* eager = a.isend(cluster.gate(0, 1), Tag(2),
                           util::ConstBytes{small.data(), small.size()});
  Request* recv = a.irecv(cluster.gate(0, 1), Tag(3),
                          util::MutableBytes{in.data(), in.size()});
  Request* crashed_send = b.isend(cluster.gate(1, 0), Tag(4),
                                  util::ConstBytes{theirs.data(),
                                                   theirs.size()});

  // Node 1 crashes now and never comes back: every NIC dark atomically.
  cluster.fabric().set_node_crashes(1, {{cluster.now(), kForever}});

  // Silence -> rails dead (300µs) -> grace (150µs) -> peer declared dead.
  step_until(cluster, cluster.now() + 2000.0);
  EXPECT_EQ(a.stats().peers_died, 1u);
  EXPECT_EQ(b.stats().peers_died, 1u);  // death is symmetric: b hears nothing
  EXPECT_GE(peer_died_events, 1u);

  // The unwind completed every in-flight op with kPeerDead, no hangs.
  for (Request* req : {rdv, recv, crashed_send}) {
    ASSERT_TRUE(req->done());
    EXPECT_EQ(req->status().code(), util::StatusCode::kPeerDead)
        << req->status().to_string();
  }
  // The small eager send may have been acked before the dark hit.
  ASSERT_TRUE(eager->done());
  EXPECT_TRUE(eager->status().is_ok() ||
              eager->status().code() == util::StatusCode::kPeerDead)
      << eager->status().to_string();

  // Quiescence audit: with the dead peer fenced, the survivor flushes
  // clean immediately — nothing stranded in any layer.
  EXPECT_TRUE(a.drain(5000.0).is_ok());

  // Fail fast: new ops against the dead rank complete synchronously.
  Request* late = a.isend(cluster.gate(0, 1), Tag(9),
                          util::ConstBytes{small.data(), small.size()});
  ASSERT_TRUE(late->done());
  EXPECT_EQ(late->status().code(), util::StatusCode::kPeerDead);

  a.release(rdv);
  a.release(eager);
  a.release(recv);
  a.release(late);
  b.release(crashed_send);
  settle(cluster);
}

TEST(PeerLifecycle, CrashThenRejoinIsExactlyOnce) {
  CoreConfig cfg = lifecycle_config();
  cfg.rdv_threshold_override = 4096;
  api::Cluster cluster(two_rail_options(cfg));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  step_until(cluster, 500.0);
  const double crash_at = cluster.now() + 50.0;
  cluster.fabric().set_node_crashes(1, {{crash_at, crash_at + 1200.0}});

  // Traffic caught mid-protocol by the crash.
  std::vector<std::byte> doomed(128 * 1024);
  Request* victim = a.isend(cluster.gate(0, 1), Tag(1),
                            util::ConstBytes{doomed.data(), doomed.size()});

  // Ride through death (both sides) and the rejoin handshake: restart
  // bumps node 1's incarnation, probes revive the rails, and the fenced
  // heartbeat exchange re-opens the gates.
  step_until(cluster, crash_at + 4000.0);
  EXPECT_GE(a.stats().peers_died, 1u);
  EXPECT_GE(b.stats().peers_died, 1u);
  EXPECT_GE(a.stats().peers_rejoined, 1u);
  EXPECT_GE(b.stats().peers_rejoined, 1u);
  for (RailIndex r = 0; r < 2; ++r) {
    EXPECT_TRUE(a.rail_alive(r)) << "rail " << r;
    EXPECT_TRUE(b.rail_alive(r)) << "rail " << r;
  }
  ASSERT_TRUE(victim->done());
  EXPECT_EQ(victim->status().code(), util::StatusCode::kPeerDead);

  // Post-rejoin traffic on fresh tags: sequence and credit state
  // restarted on both sides, so delivery is exactly-once with intact
  // payloads, in both directions.
  for (int round = 0; round < 3; ++round) {
    const size_t bytes = round == 0 ? 256 : 48 * 1024;
    std::vector<std::byte> out(bytes), in(bytes, std::byte{0xEE});
    util::fill_pattern({out.data(), bytes}, 100 + round);
    auto* recv = b.irecv(cluster.gate(1, 0), Tag(100 + round),
                         util::MutableBytes{in.data(), bytes});
    auto* send = a.isend(cluster.gate(0, 1), Tag(100 + round),
                         util::ConstBytes{out.data(), bytes});
    cluster.wait(recv);
    cluster.wait(send);
    EXPECT_TRUE(send->status().is_ok()) << send->status().to_string();
    EXPECT_TRUE(recv->status().is_ok()) << recv->status().to_string();
    EXPECT_EQ(std::memcmp(in.data(), out.data(), bytes), 0)
        << "payload mismatch on post-rejoin round " << round;
    a.release(send);
    b.release(recv);
  }
  EXPECT_TRUE(a.drain(5000.0).is_ok());
  EXPECT_TRUE(b.drain(5000.0).is_ok());

  a.release(victim);
  settle(cluster);
}

TEST(PeerLifecycle, AsymmetricOutageDoesNotRejoin) {
  // One-directional silence: node 1's outbound frames are dropped while
  // node 0's keep flowing. Node 0 declares node 1 dead through the grace
  // and unwinds; node 1 never crashed and never unwound — it kept its
  // sequence floor and credit ledger. When the outage heals, node 1's
  // beacons carry the same incarnation and the same unwind generation as
  // before the death, so the rejoin fence must hold: restarting seq and
  // credit from zero against a peer with live state would dup-drop fresh
  // sends and double-apply stale in-flight traffic.
  CoreConfig cfg = lifecycle_config();
  api::Cluster cluster(two_rail_options(cfg));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  step_until(cluster, 500.0);
  for (RailIndex r = 0; r < 2; ++r) {
    cluster.fabric().node(1).nic(r).set_frame_drop_prob(1.0);
  }

  // Silence -> rails dead (300µs) -> grace (150µs) -> node 0 declares
  // node 1 dead. Node 1 keeps hearing node 0 throughout, so its side of
  // the gate stays live.
  step_until(cluster, 1500.0);
  EXPECT_EQ(a.stats().peers_died, 1u);
  EXPECT_EQ(b.stats().peers_died, 0u);

  // The outage heals: node 1's same-life beacons reach node 0 again and
  // the rails revive, but the gate must stay fenced — the beacons prove
  // the peer is alive, not that it unwound.
  for (RailIndex r = 0; r < 2; ++r) {
    cluster.fabric().node(1).nic(r).set_frame_drop_prob(0.0);
  }
  step_until(cluster, 5500.0);
  for (RailIndex r = 0; r < 2; ++r) {
    EXPECT_TRUE(a.rail_alive(r)) << "rail " << r << " never revived";
  }
  EXPECT_EQ(a.stats().peers_rejoined, 0u)
      << "rejoined against a peer that never unwound";
  EXPECT_EQ(b.stats().peers_rejoined, 0u);

  // The fenced gate keeps failing fast rather than corrupting state.
  std::vector<std::byte> out(256);
  Request* late = a.isend(cluster.gate(0, 1), Tag(5),
                          util::ConstBytes{out.data(), out.size()});
  ASSERT_TRUE(late->done());
  EXPECT_EQ(late->status().code(), util::StatusCode::kPeerDead);
  a.release(late);
  settle(cluster);
}

TEST(PeerLifecycle, ZeroGraceDeclaresImmediately) {
  // peer_death_grace_us == 0 means "declare the moment the last rail
  // dies": the peer must die with kPeerDead (heartbeats keep flowing,
  // rejoin stays possible) — not fail the gate kClosed, which would
  // strand it with no way back.
  CoreConfig cfg = lifecycle_config();
  cfg.peer_death_grace_us = 0.0;
  cfg.rdv_threshold_override = 4096;
  api::Cluster cluster(two_rail_options(cfg));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  step_until(cluster, 500.0);
  const double crash_at = cluster.now() + 50.0;
  cluster.fabric().set_node_crashes(1, {{crash_at, crash_at + 1200.0}});

  std::vector<std::byte> doomed(128 * 1024);
  Request* victim = a.isend(cluster.gate(0, 1), Tag(1),
                            util::ConstBytes{doomed.data(), doomed.size()});

  step_until(cluster, crash_at + 4000.0);
  EXPECT_GE(a.stats().peers_died, 1u);
  EXPECT_GE(b.stats().peers_died, 1u);
  ASSERT_TRUE(victim->done());
  EXPECT_EQ(victim->status().code(), util::StatusCode::kPeerDead)
      << victim->status().to_string();

  // The restarted incarnation still rejoins: immediate death must not
  // cost the gate its second life.
  EXPECT_GE(a.stats().peers_rejoined, 1u);
  EXPECT_GE(b.stats().peers_rejoined, 1u);
  const size_t bytes = 2048;
  std::vector<std::byte> out(bytes), in(bytes, std::byte{0xEE});
  util::fill_pattern({out.data(), bytes}, 42);
  auto* recv = b.irecv(cluster.gate(1, 0), Tag(300),
                       util::MutableBytes{in.data(), bytes});
  auto* send = a.isend(cluster.gate(0, 1), Tag(300),
                       util::ConstBytes{out.data(), bytes});
  cluster.wait(recv);
  cluster.wait(send);
  EXPECT_TRUE(send->status().is_ok()) << send->status().to_string();
  EXPECT_TRUE(recv->status().is_ok()) << recv->status().to_string();
  EXPECT_EQ(std::memcmp(in.data(), out.data(), bytes), 0);
  a.release(send);
  b.release(recv);
  EXPECT_TRUE(a.drain(5000.0).is_ok());
  EXPECT_TRUE(b.drain(5000.0).is_ok());
  a.release(victim);
  settle(cluster);
}

TEST(PeerLifecycle, IncarnationFenceDropsStragglers) {
  CoreConfig cfg = lifecycle_config();
  // Wider health horizons: with heavy jitter on the doomed node's frames
  // the arrival gaps alone must not kill a rail before the crash does.
  cfg.suspect_after_us = 600.0;
  cfg.dead_after_us = 1200.0;
  cfg.probe_interval_us = 200.0;
  api::Cluster cluster(two_rail_options(cfg));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  // Node 1's outbound frames — and only those — take adaptive-routing
  // detours of up to 3.5ms, longer than its own 2ms crash window: its
  // previous-life heartbeats are still on the wire when the restarted
  // node is already announcing incarnation 1. Every such straggler must
  // be fenced at node 0, never fed to the health machinery. (Per-NIC so
  // node 0's frames stay clean and node 1 still dies of clean silence.)
  for (RailIndex r = 0; r < 2; ++r) {
    cluster.fabric().node(1).nic(r).set_reorder(0.9, 3500.0);
  }

  step_until(cluster, 600.0);
  cluster.fabric().set_node_crashes(1, {{600.0, 2600.0}});
  step_until(cluster, 6600.0);

  EXPECT_GE(a.stats().peers_died, 1u);
  EXPECT_GE(b.stats().peers_died, 1u);
  EXPECT_GE(a.stats().peers_rejoined, 1u);
  EXPECT_GE(b.stats().peers_rejoined, 1u);
  EXPECT_GT(a.stats().incarnations_fenced, 0u)
      << "no previous-life heartbeat was ever fenced";

  // The fence starves only the old life: the rejoined gate still carries
  // verified traffic. Jitter off first so the exchange acks promptly.
  for (RailIndex r = 0; r < 2; ++r) {
    cluster.fabric().node(1).nic(r).set_reorder(0.0, 0.0);
  }
  const size_t bytes = 2048;
  std::vector<std::byte> out(bytes), in(bytes, std::byte{0xEE});
  util::fill_pattern({out.data(), bytes}, 77);
  auto* recv = b.irecv(cluster.gate(1, 0), Tag(200),
                       util::MutableBytes{in.data(), bytes});
  auto* send = a.isend(cluster.gate(0, 1), Tag(200),
                       util::ConstBytes{out.data(), bytes});
  cluster.wait(recv);
  cluster.wait(send);
  EXPECT_TRUE(send->status().is_ok()) << send->status().to_string();
  EXPECT_TRUE(recv->status().is_ok()) << recv->status().to_string();
  EXPECT_EQ(std::memcmp(in.data(), out.data(), bytes), 0);
  a.release(send);
  b.release(recv);
  EXPECT_TRUE(a.drain(20000.0).is_ok());
  settle(cluster);
}

TEST(PeerLifecycle, DrainSucceedsWhileRailDegraded) {
  // Satellite: Core::drain while a rail is kDegraded (gray, not dead).
  // The degraded rail keeps beaconing, adaptive scoring routes around
  // it, and a drain must still flush everything — degraded is a routing
  // hint, not a failure.
  CoreConfig cfg = lifecycle_config();
  cfg.adaptive = true;
  cfg.spray = true;
  cfg.rdv_threshold_override = 4096;
  cfg.suspect_after_us = 400.0;  // loss must degrade the rail, not silence
  cfg.dead_after_us = 2000.0;
  api::ClusterOptions options;
  options.nodes = 2;
  simnet::NicProfile rail0 = simnet::mx_myri10g_profile();
  simnet::NicProfile rail1 = rail0;
  rail1.fault.frame_drop_prob = 0.08;
  rail1.fault.seed = 0x6E47;
  options.rails = {rail0, rail1};
  options.core = cfg;
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  bool drained_degraded = false;
  for (int i = 0; i < 40; ++i) {
    const size_t bytes = 64 * 1024;
    std::vector<std::byte> out(bytes), in(bytes, std::byte{0xEE});
    util::fill_pattern({out.data(), bytes}, 30 + i);
    auto* recv = b.irecv(cluster.gate(1, 0), Tag(i),
                         util::MutableBytes{in.data(), bytes});
    auto* send = a.isend(cluster.gate(0, 1), Tag(i),
                         util::ConstBytes{out.data(), bytes});
    cluster.wait(recv);
    cluster.wait(send);
    EXPECT_EQ(std::memcmp(in.data(), out.data(), bytes), 0);
    a.release(send);
    b.release(recv);
    if (a.rail_health_state(1) == RailHealth::kDegraded) {
      // The drain runs with the rail still degraded and loss ongoing.
      EXPECT_TRUE(a.drain(50000.0).is_ok());
      drained_degraded = true;
      break;
    }
  }
  EXPECT_TRUE(drained_degraded) << "rail 1 never entered kDegraded";
  settle(cluster);
}

}  // namespace
}  // namespace nmad::core

// MAD-MPI surface: ops to a dead rank fail fast with kPeerDead and
// Finalize skips dead peers instead of waiting out the deadline on them.
namespace nmad::mpi {
namespace {

core::CoreConfig mpi_lifecycle_config() {
  core::CoreConfig c;
  c.peer_lifecycle = true;
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  c.rail_dead_after = 0;
  c.max_retries = 20;
  c.heartbeat_interval_us = 50.0;
  c.suspect_after_us = 150.0;
  c.dead_after_us = 300.0;
  c.probe_interval_us = 100.0;
  c.probation_replies = 2;
  c.peer_death_grace_us = 150.0;
  return c;
}

TEST(PeerLifecycleMpi, DeadRankFailsFastAndFinalizeSkipsIt) {
  api::ClusterOptions options;
  options.nodes = 2;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::mx_myri10g_profile()};
  options.core = mpi_lifecycle_config();
  MadMpiWorld world(std::move(options));
  Endpoint& a = world.ep(0);
  api::Cluster& cluster = world.cluster();

  while (cluster.now() < 500.0 && cluster.world().run_one()) {
  }

  // In-flight traffic to the rank that is about to crash.
  const int n = 128 * 1024;
  std::vector<char> out(n, 'x');
  Request* victim =
      a.isend(out.data(), n, Datatype::byte_type(), 1, 5, kCommWorld);

  cluster.fabric().set_node_crashes(1, {{cluster.now(), 1.0e15}});
  while (cluster.now() < 3000.0 && cluster.world().run_one()) {
  }
  EXPECT_GE(cluster.core(0).stats().peers_died, 1u);
  ASSERT_TRUE(victim->done());
  EXPECT_EQ(victim->status().code(), util::StatusCode::kPeerDead);

  // Fail fast: ops to the dead rank complete at post time.
  std::vector<char> in(64);
  Request* dead_send =
      a.isend(out.data(), 64, Datatype::byte_type(), 1, 6, kCommWorld);
  Request* dead_recv =
      a.irecv(in.data(), 64, Datatype::byte_type(), 1, 7, kCommWorld);
  ASSERT_TRUE(dead_send->done());
  ASSERT_TRUE(dead_recv->done());
  EXPECT_EQ(dead_send->status().code(), util::StatusCode::kPeerDead);
  EXPECT_EQ(dead_recv->status().code(), util::StatusCode::kPeerDead);

  // Finalize skips the dead peer: it returns ok well within the
  // deadline instead of waiting on traffic that can never flush.
  EXPECT_TRUE(a.finalize(5000.0).is_ok());

  a.free_request(victim);
  a.free_request(dead_send);
  a.free_request(dead_recv);
  for (simnet::NodeId node = 0; node < cluster.node_count(); ++node) {
    cluster.core(node).stop_health_monitors();
  }
  while (cluster.world().run_one()) {
  }
}

}  // namespace
}  // namespace nmad::mpi
