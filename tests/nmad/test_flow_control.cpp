// Receiver-driven flow control: credit-based eager admission keeps the
// unexpected store within its configured budget under overload (slow or
// late receivers), without dropping data; senders degrade to rendezvous
// past the credit window; the whole scheme is invisible when receives are
// pre-posted; and runs are seed/time deterministic.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

constexpr size_t kBudget = 128 * 1024;

CoreConfig flow_config() {
  CoreConfig c;
  c.flow_control = true;  // forces reliability on
  c.rx_budget = kBudget;
  // Three senders at 32 KiB initial credit each: Σ initial ≤ budget, so
  // the bound holds from time zero.
  c.initial_credit_bytes = 32 * 1024;
  c.initial_credit_msgs = 16;
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  return c;
}

struct OverloadResult {
  CoreStats receiver;   // node 0 (the overloaded one)
  CoreStats sender;     // node 1 (representative)
  uint64_t frames_dropped = 0;  // across every NIC
  double end_time_us = 0.0;
  bool data_ok = true;
};

// Three senders each push `msgs` eager messages of `msg_bytes` at node 0,
// whose receives are only posted `post_delay_us` into the run — the
// canonical overload: traffic arrives with nowhere to go but the
// unexpected store.
OverloadResult run_overload(CoreConfig config, size_t msgs,
                            size_t msg_bytes, double post_delay_us) {
  api::ClusterOptions options;
  options.nodes = 4;
  options.rails = {simnet::mx_myri10g_profile()};
  options.core = std::move(config);
  api::Cluster cluster(std::move(options));

  Core& rx = cluster.core(0);
  const size_t senders = 3;
  std::vector<std::vector<std::vector<std::byte>>> in(senders), out(senders);
  std::vector<std::pair<Core*, Request*>> owned;
  std::vector<Request*> sends;
  std::vector<Request*> recvs;

  for (size_t s = 0; s < senders; ++s) {
    in[s].resize(msgs);
    out[s].resize(msgs);
    Core& tx = cluster.core(static_cast<simnet::NodeId>(s + 1));
    const GateId g = cluster.gate(static_cast<simnet::NodeId>(s + 1), 0);
    for (size_t i = 0; i < msgs; ++i) {
      in[s][i].resize(msg_bytes);
      out[s][i].resize(msg_bytes);
      util::fill_pattern({out[s][i].data(), msg_bytes},
                         static_cast<int>(s * msgs + i));
      Request* r = tx.isend(g, Tag(i),
                            util::ConstBytes{out[s][i].data(), msg_bytes});
      owned.emplace_back(&tx, r);
      sends.push_back(r);
    }
  }

  // Receives arrive late, from inside the event loop.
  cluster.world().after(post_delay_us, [&]() {
    for (size_t s = 0; s < senders; ++s) {
      const GateId g = cluster.gate(0, static_cast<simnet::NodeId>(s + 1));
      for (size_t i = 0; i < msgs; ++i) {
        Request* r = rx.irecv(g, Tag(i), {in[s][i].data(), msg_bytes});
        owned.emplace_back(&rx, r);
        recvs.push_back(r);
      }
    }
  });

  cluster.wait_all(sends);
  // Without flow control every send can complete (acked into the store)
  // before the receives even exist; pump until they are posted.
  cluster.world().run_until(
      [&]() { return recvs.size() == senders * msgs; });
  cluster.wait_all(recvs);

  OverloadResult result;
  result.receiver = rx.stats();
  result.sender = cluster.core(1).stats();
  result.end_time_us = cluster.now();
  for (size_t n = 0; n < options.nodes; ++n) {
    result.frames_dropped += cluster.fabric()
                                 .node(static_cast<simnet::NodeId>(n))
                                 .nic(0)
                                 .counters()
                                 .frames_dropped;
  }
  for (size_t s = 0; s < senders && result.data_ok; ++s) {
    for (size_t i = 0; i < msgs; ++i) {
      if (!util::check_pattern({in[s][i].data(), msg_bytes},
                               static_cast<int>(s * msgs + i))) {
        result.data_ok = false;
        break;
      }
    }
  }
  for (auto& [owner, r] : owned) {
    EXPECT_TRUE(r->status().is_ok()) << r->status().to_string();
    owner->release(r);
  }
  return result;
}

TEST(FlowControl, OverloadBoundedByBudget) {
  // 3 senders × 40 × 4 KiB = 480 KiB of eager traffic vs a 128 KiB store.
  const OverloadResult r =
      run_overload(flow_config(), 40, 4 * 1024, 20000.0);
  EXPECT_TRUE(r.data_ok);
  EXPECT_EQ(r.frames_dropped, 0u);  // backpressure, never loss
  EXPECT_LE(r.receiver.rx_stored_hwm, kBudget);
  EXPECT_GT(r.receiver.rx_stored_hwm, 0u);  // the store was actually used
  EXPECT_GT(r.receiver.credit_grants, 0u);  // credits flowed
  // Senders were held back: blocks past the window demote to rendezvous
  // (≥ the demotion floor) or stall in the window (below it).
  EXPECT_GT(r.sender.credit_stalls + r.sender.credit_rdv_degrades, 0u);
  EXPECT_EQ(r.receiver.gates_failed, 0u);
  EXPECT_EQ(r.sender.gates_failed, 0u);
  // The store drained completely once every receive matched.
  EXPECT_EQ(r.receiver.rx_stored_bytes, 0u);
}

TEST(FlowControl, NoCreditBaselineOverflowsBudget) {
  // Same traffic without flow control: the store blows through the budget
  // (the budget is not enforced by storage, only by admission).
  CoreConfig c = flow_config();
  c.flow_control = false;
  c.reliability = true;
  const OverloadResult r = run_overload(std::move(c), 40, 4 * 1024, 20000.0);
  EXPECT_TRUE(r.data_ok);
  EXPECT_GT(r.receiver.rx_stored_hwm, kBudget);
  EXPECT_EQ(r.receiver.credit_grants, 0u);
  EXPECT_EQ(r.sender.credit_stalls, 0u);
}

TEST(FlowControl, PrePostedReceivesNeverTouchTheStore) {
  api::ClusterOptions options;
  options.nodes = 2;
  options.rails = {simnet::mx_myri10g_profile()};
  options.core = flow_config();
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  const GateId ab = cluster.gate(0, 1);
  const GateId ba = cluster.gate(1, 0);

  constexpr size_t kMsgs = 64;
  constexpr size_t kBytes = 4 * 1024;
  std::vector<std::vector<std::byte>> in(kMsgs), out(kMsgs);
  std::vector<Request*> reqs;
  std::vector<std::pair<Core*, Request*>> owned;
  for (size_t i = 0; i < kMsgs; ++i) {
    in[i].resize(kBytes);
    out[i].resize(kBytes);
    util::fill_pattern({out[i].data(), kBytes}, static_cast<int>(i));
    Request* r = b.irecv(ba, Tag(i), {in[i].data(), kBytes});
    owned.emplace_back(&b, r);
    reqs.push_back(r);
  }
  for (size_t i = 0; i < kMsgs; ++i) {
    Request* r = a.isend(ab, Tag(i), util::ConstBytes{out[i].data(), kBytes});
    owned.emplace_back(&a, r);
    reqs.push_back(r);
  }
  cluster.wait_all(reqs);
  for (size_t i = 0; i < kMsgs; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), kBytes},
                                    static_cast<int>(i)))
        << i;
  }
  // Receives matched on arrival: the unexpected store stayed empty and the
  // liveness valve never had to fire.
  EXPECT_EQ(b.stats().rx_stored_hwm, 0u);
  EXPECT_EQ(a.stats().credit_probes, 0u);
  for (auto& [owner, r] : owned) owner->release(r);
}

TEST(FlowControl, ChunkBudgetBoundsStore) {
  // Message-count budget: bytes unlimited, at most 9 unexpected chunks
  // may be admitted fabric-wide (3 peers × 3 initial ≤ 9 budget).
  CoreConfig c = flow_config();
  c.rx_budget = 0;
  c.initial_credit_bytes = 0;  // unlimited bytes
  c.rx_budget_msgs = 9;
  c.initial_credit_msgs = 3;
  constexpr size_t kBytes = 256;
  const OverloadResult r = run_overload(std::move(c), 30, kBytes, 20000.0);
  EXPECT_TRUE(r.data_ok);
  EXPECT_EQ(r.frames_dropped, 0u);
  EXPECT_LE(r.receiver.rx_stored_hwm, 9 * kBytes);
  EXPECT_GT(r.sender.credit_stalls, 0u);
}

TEST(FlowControl, LargeBlocksDegradeToRendezvous) {
  // A block below the NIC's rendezvous threshold but past the credit
  // window switches to rendezvous instead of queueing as eager: the body
  // then moves zero-copy once the receive exists, costing no store space.
  api::ClusterOptions options;
  options.nodes = 2;
  options.rails = {simnet::mx_myri10g_profile()};  // rdv threshold 32 KiB
  options.core = flow_config();
  options.core.initial_credit_bytes = 8 * 1024;
  options.core.rx_budget = 0;  // pure sliding window
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  // 16 KiB each: eager by threshold, but 3 of them overflow an 8 KiB
  // credit window many times over.
  constexpr size_t kBytes = 16 * 1024;
  std::vector<std::vector<std::byte>> in(3), out(3);
  std::vector<Request*> sends;
  std::vector<Request*> recvs;
  for (int i = 0; i < 3; ++i) {
    in[i].resize(kBytes);
    out[i].resize(kBytes);
    util::fill_pattern({out[i].data(), kBytes}, 90 + i);
    sends.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                            util::ConstBytes{out[i].data(), kBytes}));
  }
  cluster.world().after(500.0, [&]() {
    for (int i = 0; i < 3; ++i) {
      recvs.push_back(
          b.irecv(cluster.gate(1, 0), Tag(i), {in[i].data(), kBytes}));
    }
  });
  cluster.wait_all(sends);
  cluster.world().run_until([&]() { return recvs.size() == 3; });
  cluster.wait_all(recvs);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), kBytes}, 90 + i)) << i;
  }
  EXPECT_GT(a.stats().credit_rdv_degrades, 0u);
  EXPECT_GT(a.stats().rdv_started, 0u);
  for (Request* s : sends) a.release(s);
  for (Request* r : recvs) b.release(r);
}

TEST(FlowControl, SlowReceiverStallsSenderNotTheFabric) {
  // The receiver's NIC stops polling for 3 ms (frames queue, nothing is
  // lost). Credits stop growing while it is deaf, so the sender stalls
  // instead of flooding the queue, and the run completes after the pause.
  api::ClusterOptions options;
  options.nodes = 2;
  options.rails = {simnet::mx_myri10g_profile()};
  options.core = flow_config();
  // Three deaf milliseconds on the only rail would trip the dead-rail
  // heuristic (six consecutive timeouts); the rail is healthy, just slow.
  options.core.rail_dead_after = 0;
  api::Cluster cluster(std::move(options));
  cluster.fabric().node(1).nic(0).set_rx_pauses({{0.0, 3000.0}});

  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  constexpr size_t kMsgs = 40;
  constexpr size_t kBytes = 4 * 1024;
  std::vector<std::vector<std::byte>> in(kMsgs), out(kMsgs);
  std::vector<Request*> reqs;
  std::vector<std::pair<Core*, Request*>> owned;
  for (size_t i = 0; i < kMsgs; ++i) {
    in[i].resize(kBytes);
    out[i].resize(kBytes);
    util::fill_pattern({out[i].data(), kBytes}, static_cast<int>(i));
    Request* r = b.irecv(cluster.gate(1, 0), Tag(i), {in[i].data(), kBytes});
    owned.emplace_back(&b, r);
    reqs.push_back(r);
    Request* s = a.isend(cluster.gate(0, 1), Tag(i),
                         util::ConstBytes{out[i].data(), kBytes});
    owned.emplace_back(&a, s);
    reqs.push_back(s);
  }
  cluster.wait_all(reqs);
  for (size_t i = 0; i < kMsgs; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), kBytes},
                                    static_cast<int>(i)))
        << i;
  }
  EXPECT_GE(cluster.now(), 3000.0);  // the pause really held
  // And the sender felt it: held back in the window or demoted to
  // rendezvous while the deaf receiver granted nothing.
  EXPECT_GT(a.stats().credit_stalls + a.stats().credit_rdv_degrades, 0u);
  EXPECT_EQ(a.stats().gates_failed, 0u);
  for (auto& [owner, r] : owned) owner->release(r);
}

TEST(FlowControl, OverloadRunIsDeterministic) {
  const OverloadResult r1 =
      run_overload(flow_config(), 20, 4 * 1024, 10000.0);
  const OverloadResult r2 =
      run_overload(flow_config(), 20, 4 * 1024, 10000.0);
  EXPECT_EQ(r1.end_time_us, r2.end_time_us);
  EXPECT_EQ(r1.receiver.packets_received, r2.receiver.packets_received);
  EXPECT_EQ(r1.receiver.credit_grants, r2.receiver.credit_grants);
  EXPECT_EQ(r1.receiver.rx_stored_hwm, r2.receiver.rx_stored_hwm);
  EXPECT_EQ(r1.sender.credit_stalls, r2.sender.credit_stalls);
}

}  // namespace
}  // namespace nmad::core
