// Scale smoke tier (ctest label `scale`).
//
// The calendar-queue scheduler, O(1) peer/gate lookup, and lazy gate
// opening exist so one SimWorld can carry thousands of ranks; these tests
// prove it end to end under the delivery oracle — exactly-once
// completion, payload checksums, and the quiescence audit — at sizes the
// old heap/linear-scan core could not reach:
//
//   - a 1024-rank alltoall exchange (hypercube/recursive-doubling: every
//     rank exchanges with rank^2^r over log2(N) rounds, the standard
//     O(N log N)-pair realization of alltoall at scale);
//   - a 10k-flow incast: 64 senders funnel ~157 eager flows each onto a
//     single receiver.
//
// Both run with the default engine config (no flow control/reliability:
// the fabric is lossless here and the point is scheduler scale, not
// protocol recovery) on a lazy-mesh cluster — a 1k-rank full mesh would
// construct ~1M gates before the first event fires.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/oracle.hpp"
#include "nmad/api/session.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

using api::Cluster;
using api::ClusterOptions;
using harness::ProtocolOracle;

TEST(Scale, Alltoall1024RanksHypercube) {
  constexpr size_t kRanks = 1024;
  constexpr size_t kRounds = 10;  // log2(kRanks)
  constexpr size_t kBytes = 2048;

  ClusterOptions options;
  options.nodes = kRanks;
  options.full_mesh = false;
  Cluster cluster(std::move(options));
  ProtocolOracle oracle;

  for (size_t round = 0; round < kRounds; ++round) {
    const simnet::NodeId bit = simnet::NodeId{1} << round;
    for (simnet::NodeId r = 0; r < kRanks; ++r) {
      if (r < (r ^ bit)) cluster.ensure_gate(r, r ^ bit);
    }

    struct Exchange {
      std::vector<std::byte> out;
      std::vector<std::byte> in;
      SendRequest* send = nullptr;
      RecvRequest* recv = nullptr;
      size_t send_idx = 0;
      size_t recv_idx = 0;
    };
    std::vector<Exchange> xs(kRanks);
    std::vector<Request*> reqs;
    reqs.reserve(kRanks * 2);
    const Tag tag = round;

    for (simnet::NodeId r = 0; r < kRanks; ++r) {
      const simnet::NodeId partner = r ^ bit;
      Exchange& x = xs[r];
      x.out.resize(kBytes);
      x.in.resize(kBytes);
      util::fill_pattern({x.out.data(), kBytes}, (round << 32) | r);
      x.recv_idx = oracle.recv_posted(static_cast<int>(r),
                                      static_cast<int>(partner), tag,
                                      util::ConstBytes{x.in.data(), kBytes});
      x.recv = cluster.core(r).irecv(cluster.gate(r, partner), tag,
                                     util::MutableBytes{x.in.data(), kBytes});
      x.send_idx = oracle.send_posted(static_cast<int>(r),
                                      static_cast<int>(partner), tag,
                                      util::ConstBytes{x.out.data(), kBytes});
      x.send = cluster.core(r).isend(cluster.gate(r, partner), tag,
                                     util::ConstBytes{x.out.data(), kBytes});
      reqs.push_back(x.recv);
      reqs.push_back(x.send);
    }
    cluster.wait_all(reqs);
    for (simnet::NodeId r = 0; r < kRanks; ++r) {
      const simnet::NodeId partner = r ^ bit;
      Exchange& x = xs[r];
      oracle.send_completed(static_cast<int>(r), static_cast<int>(partner),
                            tag, x.send_idx, x.send->status());
      oracle.recv_completed(static_cast<int>(r), static_cast<int>(partner),
                            tag, x.recv_idx, x.recv->status(),
                            x.recv->received_bytes());
      EXPECT_TRUE(util::check_pattern({x.in.data(), kBytes},
                                      (Tag(round) << 32) | partner));
      cluster.core(r).release(x.send);
      cluster.core(r).release(x.recv);
    }
  }

  cluster.world().run_to_quiescence();
  oracle.finalize(cluster);
  EXPECT_TRUE(oracle.ok()) << (oracle.violations().empty()
                                   ? ""
                                   : oracle.violations().front());
  EXPECT_EQ(oracle.sends_tracked(), kRanks * kRounds);
  EXPECT_EQ(oracle.recvs_tracked(), kRanks * kRounds);
}

TEST(Scale, Incast10kFlowsOntoOneReceiver) {
  constexpr size_t kSenders = 64;
  constexpr size_t kFlowsPerSender = 157;  // 64 * 157 = 10048 flows
  constexpr size_t kBytes = 512;

  ClusterOptions options;
  options.nodes = kSenders + 1;  // node 0 is the sink
  options.full_mesh = false;
  Cluster cluster(std::move(options));
  ProtocolOracle oracle;
  for (simnet::NodeId s = 1; s <= kSenders; ++s) cluster.ensure_gate(s, 0);

  struct Flow {
    std::vector<std::byte> out;
    std::vector<std::byte> in;
    SendRequest* send = nullptr;
    RecvRequest* recv = nullptr;
    size_t send_idx = 0;
    size_t recv_idx = 0;
    simnet::NodeId src = 0;
    Tag tag = 0;
  };
  std::vector<Flow> flows;
  flows.reserve(kSenders * kFlowsPerSender);
  std::vector<Request*> reqs;
  reqs.reserve(kSenders * kFlowsPerSender * 2);

  // All receives first: the sink is ready, the pressure is pure arrival
  // rate — the incast shape.
  for (simnet::NodeId s = 1; s <= kSenders; ++s) {
    for (size_t k = 0; k < kFlowsPerSender; ++k) {
      Flow f;
      f.src = s;
      f.tag = (Tag(s) << 32) | k;
      f.out.resize(kBytes);
      f.in.resize(kBytes);
      util::fill_pattern({f.out.data(), kBytes}, f.tag);
      flows.push_back(std::move(f));
    }
  }
  for (Flow& f : flows) {
    f.recv_idx =
        oracle.recv_posted(0, static_cast<int>(f.src), f.tag,
                           util::ConstBytes{f.in.data(), kBytes});
    f.recv = cluster.core(0).irecv(cluster.gate(0, f.src), f.tag,
                                   util::MutableBytes{f.in.data(), kBytes});
    reqs.push_back(f.recv);
  }
  for (Flow& f : flows) {
    f.send_idx =
        oracle.send_posted(static_cast<int>(f.src), 0, f.tag,
                           util::ConstBytes{f.out.data(), kBytes});
    f.send = cluster.core(f.src).isend(cluster.gate(f.src, 0), f.tag,
                                       util::ConstBytes{f.out.data(), kBytes});
    reqs.push_back(f.send);
  }

  cluster.wait_all(reqs);
  for (Flow& f : flows) {
    oracle.send_completed(static_cast<int>(f.src), 0, f.tag, f.send_idx,
                          f.send->status());
    oracle.recv_completed(0, static_cast<int>(f.src), f.tag, f.recv_idx,
                          f.recv->status(), f.recv->received_bytes());
    EXPECT_TRUE(util::check_pattern({f.in.data(), kBytes}, f.tag));
    cluster.core(f.src).release(f.send);
    cluster.core(0).release(f.recv);
  }

  cluster.world().run_to_quiescence();
  oracle.finalize(cluster);
  EXPECT_TRUE(oracle.ok()) << (oracle.violations().empty()
                                   ? ""
                                   : oracle.violations().front());
  EXPECT_EQ(oracle.sends_tracked(), kSenders * kFlowsPerSender);
  // The sink heard every flow exactly once.
  EXPECT_EQ(cluster.core(0).stats().recvs_submitted,
            kSenders * kFlowsPerSender);
}

}  // namespace
}  // namespace nmad::core
