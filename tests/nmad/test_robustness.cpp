// Robustness: wire-format fuzzing, bounce-copy drivers (GM, no gather),
// and opportunistic eager load-balancing over two rails.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/api/session.hpp"
#include "nmad/core/wire_format.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace nmad::core {
namespace {

// Random byte soup must never crash the decoder: it either parses (valid
// by construction is astronomically unlikely) or reports an error.
TEST(WireFuzz, RandomBytesNeverCrashDecoder) {
  util::Rng rng(777);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t len = rng.next_below(256);
    util::ByteBuffer buf;
    buf.resize(len);
    for (size_t i = 0; i < len; ++i) {
      buf.view()[i] = static_cast<std::byte>(rng.next_below(256));
    }
    size_t chunks = 0;
    const util::Status st = decode_packet(
        buf.view(), [&](const WireChunk& c) {
          // Any surfaced chunk must have an in-bounds payload view.
          if (!c.payload.empty()) {
            EXPECT_GE(c.payload.data(),
                      buf.view().data());
            EXPECT_LE(c.payload.data() + c.payload.size(),
                      buf.view().data() + buf.size());
          }
          ++chunks;
        });
    (void)st;  // either outcome is acceptable; not crashing is the test
  }
}

// Truncating a valid packet at every byte boundary must be rejected
// cleanly (or parse a valid prefix-free packet — impossible here since
// the chunk count announces more content).
TEST(WireFuzz, EveryTruncationRejected) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 2);
  encode_data_header(w, 0, 42, 7, 16);
  std::vector<std::byte> payload(16);
  w.bytes(payload.data(), 16);
  encode_rts(w, 0, 43, 0, 65536, 0, 65536, 0xAB);

  for (size_t cut = 0; cut < buf.size(); ++cut) {
    const util::Status st = decode_packet(
        util::ConstBytes{buf.data(), cut}, [](const WireChunk&) {});
    EXPECT_FALSE(st.is_ok()) << "cut at " << cut;
  }
}

// GM has no gather DMA: every packet goes through a bounce copy; the
// engine and protocols must still be byte-correct (just slower).
TEST(GmDriver, NoGatherFabricStaysCorrect) {
  api::ClusterOptions options;
  options.rails = {simnet::gm_myrinet2000_profile()};
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  // Aggregated small messages + one rendezvous.
  std::vector<std::vector<std::byte>> in(8), out(8);
  std::vector<Request*> reqs;
  for (int i = 0; i < 8; ++i) {
    in[i].resize(200);
    out[i].resize(200);
    util::fill_pattern({out[i].data(), 200}, i);
    reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(i),
                           {in[i].data(), 200}));
  }
  const size_t big = 128 * 1024;
  std::vector<std::byte> big_in(big), big_out(big);
  util::fill_pattern({big_out.data(), big}, 99);
  reqs.push_back(b.irecv(cluster.gate(1, 0), 50, {big_in.data(), big}));

  for (int i = 0; i < 8; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                           util::ConstBytes{out[i].data(), 200}));
  }
  reqs.push_back(a.isend(cluster.gate(0, 1), 50,
                         util::ConstBytes{big_out.data(), big}));
  cluster.wait_all(reqs);

  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), 200}, i)) << i;
  }
  EXPECT_TRUE(util::check_pattern({big_in.data(), big}, 99));
  EXPECT_EQ(a.stats().rdv_started, 1u);
  for (auto* r : reqs) {
    (r->kind() == Request::Kind::kSend ? a : b).release(r);
  }
}

TEST(GmDriver, ProfileRegistered) {
  simnet::NicProfile p;
  ASSERT_TRUE(simnet::nic_profile_by_name("gm", &p));
  EXPECT_EQ(p.name, "gm-myrinet2000");
  EXPECT_FALSE(p.has_gather());
  EXPECT_TRUE(p.rdma);
}

// With two rails and a deep burst of eager messages, the common-list
// scheduling of §3.3 spreads packets over both NICs opportunistically.
TEST(EagerMultiRail, BurstUsesBothRails) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  constexpr int kN = 32;
  std::vector<std::vector<std::byte>> in(kN), out(kN);
  std::vector<Request*> reqs;
  for (int i = 0; i < kN; ++i) {
    in[i].resize(2048);
    out[i].resize(2048);
    util::fill_pattern({out[i].data(), 2048}, i);
    reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(i),
                           {in[i].data(), 2048}));
  }
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                           util::ConstBytes{out[i].data(), 2048}));
  }
  cluster.wait_all(reqs);

  const auto& mx = cluster.fabric().node(0).nic(0).counters();
  const auto& elan = cluster.fabric().node(0).nic(1).counters();
  EXPECT_GT(mx.frames_sent, 0u);
  EXPECT_GT(elan.frames_sent, 0u);
  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), 2048}, i)) << i;
  }
  for (auto* r : reqs) {
    (r->kind() == Request::Kind::kSend ? a : b).release(r);
  }
}

}  // namespace
}  // namespace nmad::core
