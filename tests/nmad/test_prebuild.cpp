// The §3.2 alternative election policies: pre-built packets triggered by
// a backlog threshold.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/api/session.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

using api::Cluster;
using api::ClusterOptions;

ClusterOptions prebuild_options(size_t backlog) {
  ClusterOptions options;
  options.core.prebuild_backlog_chunks = backlog;
  return options;
}

TEST(Prebuild, PacketsPreArmedUnderBacklog) {
  Cluster cluster(prebuild_options(3));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  constexpr int kN = 10;
  std::vector<std::vector<std::byte>> in(kN), out(kN);
  std::vector<Request*> reqs;
  for (int i = 0; i < kN; ++i) {
    in[i].resize(128);
    out[i].resize(128);
    util::fill_pattern({out[i].data(), 128}, i);
    reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(i),
                           {in[i].data(), 128}));
  }
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                           util::ConstBytes{out[i].data(), 128}));
  }
  cluster.wait_all(reqs);

  EXPECT_GT(a.stats().packets_prebuilt, 0u);
  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), 128}, i)) << i;
  }
  for (auto* r : reqs) {
    (r->kind() == Request::Kind::kSend ? a : b).release(r);
  }
}

TEST(Prebuild, DisabledByDefault) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  std::vector<std::byte> buf(64), rbuf(64);
  std::vector<Request*> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(i), {rbuf.data(), 64}));
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                           util::ConstBytes{buf.data(), 64}));
  }
  cluster.wait_all(reqs);
  EXPECT_EQ(a.stats().packets_prebuilt, 0u);
  for (auto* r : reqs) {
    (r->kind() == Request::Kind::kSend ? a : b).release(r);
  }
}

TEST(Prebuild, ReducesIdleToWireLatency) {
  // Under a steady backlog, the pre-armed engine hands the next packet to
  // the NIC with no election on the idle path, so a long burst drains at
  // least as fast as with pure just-in-time election.
  auto run = [](size_t backlog) {
    Cluster cluster(prebuild_options(backlog));
    Core& a = cluster.core(0);
    Core& b = cluster.core(1);
    constexpr int kN = 64;
    std::vector<std::vector<std::byte>> in(kN), out(kN);
    std::vector<Request*> reqs;
    for (int i = 0; i < kN; ++i) {
      in[i].resize(1024);
      out[i].resize(1024);
      reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(i),
                             {in[i].data(), 1024}));
    }
    for (int i = 0; i < kN; ++i) {
      reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                             util::ConstBytes{out[i].data(), 1024}));
    }
    cluster.wait_all(reqs);
    const double elapsed = cluster.now();
    for (auto* r : reqs) {
      (r->kind() == Request::Kind::kSend ? a : b).release(r);
    }
    return elapsed;
  };

  const double jit = run(0);
  const double prebuilt = run(2);
  EXPECT_LE(prebuilt, jit * 1.02);
}

TEST(Prebuild, MixedWithRendezvousStaysCorrect) {
  Cluster cluster(prebuild_options(2));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  const size_t big_len = 256 * 1024;
  std::vector<std::byte> big_out(big_len), big_in(big_len);
  util::fill_pattern({big_out.data(), big_len}, 7);
  std::vector<std::vector<std::byte>> small_in(6), small_out(6);

  std::vector<Request*> reqs;
  reqs.push_back(b.irecv(cluster.gate(1, 0), 100,
                         {big_in.data(), big_len}));
  for (int i = 0; i < 6; ++i) {
    small_in[i].resize(64);
    small_out[i].resize(64);
    util::fill_pattern({small_out[i].data(), 64}, 20 + i);
    reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(i),
                           {small_in[i].data(), 64}));
  }
  reqs.push_back(a.isend(cluster.gate(0, 1), 100,
                         util::ConstBytes{big_out.data(), big_len}));
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                           util::ConstBytes{small_out[i].data(), 64}));
  }
  cluster.wait_all(reqs);

  EXPECT_TRUE(util::check_pattern({big_in.data(), big_len}, 7));
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(util::check_pattern({small_in[i].data(), 64}, 20 + i));
  }
  for (auto* r : reqs) {
    (r->kind() == Request::Kind::kSend ? a : b).release(r);
  }
}

}  // namespace
}  // namespace nmad::core
