// Wall-clock shm stack: the same engine Core running on real time, real
// threads and the shared-memory rail — no simulation anywhere.
//
// The fig2 ping-pong size sweep runs under the protocol delivery oracle
// (FIFO matching, payload checksums, exactly-once completion), crossing
// the eager→rendezvous switch on the way up, and the steady-state
// allocation contract of test_alloc_churn carries over: after warm-up,
// ping-pong traffic touches neither the engine pools, nor the timer
// wheel's slabs, nor the InlineFunction heap.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "harness/oracle.hpp"
#include "nmad/api/wall_session.hpp"
#include "util/buffer.hpp"
#include "util/inline_fn.hpp"
#include "util/units.hpp"

namespace nmad::core {
namespace {

using api::WallCluster;

TEST(WallShm, Fig2SizeSweepUnderOracle) {
  WallCluster cluster(WallCluster::Options{});
  harness::ProtocolOracle oracle;

  uint64_t tag = 1;
  for (uint64_t size : util::doubling_sizes(4, 1 << 20)) {
    std::vector<std::byte> out(size), back(size), in(size), echo(size);
    util::fill_pattern({out.data(), size}, tag);
    util::fill_pattern({back.data(), size}, tag + 1);

    // A → B.
    const size_t si = oracle.send_posted(0, 1, tag, {out.data(), size});
    const size_t ri = oracle.recv_posted(1, 0, tag, {in.data(), size});
    Request* s = cluster.post_send(0, cluster.gate(0, 1), tag,
                                   util::ConstBytes{out.data(), size});
    Request* r = cluster.post_recv(1, cluster.gate(1, 0), tag,
                                   util::MutableBytes{in.data(), size});
    cluster.wait(0, s);
    cluster.wait(1, r);
    oracle.send_completed(0, 1, tag, si, s->status());
    oracle.recv_completed(1, 0, tag, ri, r->status(), size);
    cluster.release(0, s);
    cluster.release(1, r);

    // B → A (the pong).
    const size_t sj = oracle.send_posted(1, 0, tag, {back.data(), size});
    const size_t rj = oracle.recv_posted(0, 1, tag, {echo.data(), size});
    s = cluster.post_send(1, cluster.gate(1, 0), tag,
                          util::ConstBytes{back.data(), size});
    r = cluster.post_recv(0, cluster.gate(0, 1), tag,
                          util::MutableBytes{echo.data(), size});
    cluster.wait(1, s);
    cluster.wait(0, r);
    oracle.send_completed(1, 0, tag, sj, s->status());
    oracle.recv_completed(0, 1, tag, rj, r->status(), size);
    cluster.release(1, s);
    cluster.release(0, r);

    EXPECT_TRUE(util::check_pattern({in.data(), size}, tag)) << size;
    EXPECT_TRUE(util::check_pattern({echo.data(), size}, tag + 1)) << size;
    ++tag;
  }

  EXPECT_TRUE(oracle.ok()) << oracle.violations().front();
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    cluster.locked(n, [n](Core& core) {
      std::vector<std::string> failures;
      EXPECT_TRUE(core.check_invariants(&failures))
          << "node " << n << ": "
          << (failures.empty() ? std::string() : failures.front());
    });
  }
  // The big sizes went rendezvous: the wall path exercised sink posting,
  // direct-deposit slices and completion, not just eager frames.
  const uint64_t rdv = cluster.locked(
      0, [](Core& core) { return core.stats().rdv_started; });
  EXPECT_GT(rdv, 0u);
}

// Steady-state witnesses across the whole wall-clock cluster: every
// pool's capacity/grow counters, the timer wheel's slab/slot capacities
// and the global InlineFunction spill count — all monotone, so flat
// across the measured phase is exactly zero hot-path allocations.
struct WallAllocSnapshot {
  size_t pool_capacity = 0;
  size_t pool_grows = 0;
  size_t wheel_slabs = 0;
  size_t wheel_node_capacity = 0;
  size_t wheel_slot_capacity = 0;
  uint64_t wheel_resizes = 0;
  uint64_t fn_spills = 0;
};

WallAllocSnapshot snapshot(WallCluster& cluster) {
  WallAllocSnapshot s;
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    const Core::AllocStats a =
        cluster.locked(n, [](Core& core) { return core.alloc_stats(); });
    s.pool_capacity += a.chunk_pool_capacity + a.bulk_pool_capacity +
                       a.send_pool_capacity + a.recv_pool_capacity;
    s.pool_grows += a.chunk_pool_grows + a.bulk_pool_grows +
                    a.send_pool_grows + a.recv_pool_grows;
    s.wheel_slabs += a.queue.node_slabs;
    s.wheel_node_capacity += a.queue.node_capacity;
    s.wheel_slot_capacity += a.queue.slot_capacity;
    s.wheel_resizes += a.queue.resizes;
  }
  s.fn_spills = util::inline_fn_heap_allocs();
  return s;
}

void pingpong_round(WallCluster& cluster, std::vector<std::byte>& buf,
                    uint64_t round) {
  const uint64_t tag = round;
  Request* s0 = cluster.post_send(0, cluster.gate(0, 1), tag,
                                  util::ConstBytes{buf.data(), buf.size()});
  Request* r0 = cluster.post_recv(1, cluster.gate(1, 0), tag,
                                  util::MutableBytes{buf.data(), buf.size()});
  cluster.wait(0, s0);
  cluster.wait(1, r0);
  cluster.release(0, s0);
  cluster.release(1, r0);
  Request* s1 = cluster.post_send(1, cluster.gate(1, 0), tag,
                                  util::ConstBytes{buf.data(), buf.size()});
  Request* r1 = cluster.post_recv(0, cluster.gate(0, 1), tag,
                                  util::MutableBytes{buf.data(), buf.size()});
  cluster.wait(1, s1);
  cluster.wait(0, r1);
  cluster.release(1, s1);
  cluster.release(0, r1);
}

TEST(WallShm, SteadyPingPongIsAllocationFree) {
  WallCluster cluster(WallCluster::Options{});
  std::vector<std::byte> buf(4096);
  for (uint64_t r = 0; r < 50; ++r) pingpong_round(cluster, buf, r);
  const WallAllocSnapshot warm = snapshot(cluster);

  for (uint64_t r = 50; r < 350; ++r) pingpong_round(cluster, buf, r);
  const WallAllocSnapshot steady = snapshot(cluster);

  EXPECT_EQ(steady.pool_capacity, warm.pool_capacity)
      << "an engine pool grew during steady state";
  EXPECT_EQ(steady.pool_grows, warm.pool_grows);
  EXPECT_EQ(steady.wheel_slabs, warm.wheel_slabs)
      << "the timer wheel allocated a node slab during steady state";
  EXPECT_EQ(steady.wheel_node_capacity, warm.wheel_node_capacity);
  EXPECT_EQ(steady.wheel_slot_capacity, warm.wheel_slot_capacity);
  EXPECT_EQ(steady.wheel_resizes, warm.wheel_resizes);
  EXPECT_EQ(steady.fn_spills, warm.fn_spills)
      << "a callback spilled out of its inline buffer";
}

// The self-measured rail figures flow into RailInfo and debug_dump —
// a shm rail reports real, non-zero latency and bandwidth.
TEST(WallShm, SelfMeasuredCapsSurface) {
  WallCluster cluster(WallCluster::Options{});
  cluster.locked(0, [](Core& core) {
    const RailInfo& info = core.rail_info(0);
    EXPECT_GT(info.bandwidth_mbps, 0.0);
    EXPECT_GT(info.latency_us, 0.0);
    std::ostringstream dump;
    core.debug_dump(dump);
    EXPECT_NE(dump.str().find("lat="), std::string::npos);
    EXPECT_NE(dump.str().find("bw="), std::string::npos);
    return 0;
  });
}

}  // namespace
}  // namespace nmad::core
