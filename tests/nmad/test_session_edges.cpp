// Session / completion-machinery edge cases: waiting on requests that
// are already done, cancelling twice, zero-timeout waits, and
// CompletionQueue corner behavior.
#include <gtest/gtest.h>

#include <vector>

#include "madmpi/madmpi.hpp"
#include "nmad/api/completion_queue.hpp"
#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

struct Pair {
  Pair() {
    api::ClusterOptions options;
    options.core.reliability = true;
    options.core.ack_timeout_us = 200.0;
    options.core.ack_delay_us = 5.0;
    cluster = std::make_unique<api::Cluster>(std::move(options));
    ab = cluster->gate(0, 1);
    ba = cluster->gate(1, 0);
  }
  Core& a() { return cluster->core(0); }
  Core& b() { return cluster->core(1); }

  std::unique_ptr<api::Cluster> cluster;
  GateId ab{};
  GateId ba{};
};

TEST(SessionEdges, WaitOnAlreadyCompletedRequestReturnsAtOnce) {
  Pair t;
  std::vector<std::byte> out(256), in(256);
  util::fill_pattern({out.data(), 256}, 1);
  Request* r = t.b().irecv(t.ba, 0, {in.data(), 256});
  Request* s = t.a().isend(t.ab, 0, util::ConstBytes{out.data(), 256});
  t.cluster->wait(s);
  t.cluster->wait(r);
  ASSERT_TRUE(s->done());

  // Waiting again must not pump the world (virtual time frozen) and must
  // not disturb the completed status.
  const double before = t.cluster->now();
  t.cluster->wait(s);
  t.cluster->wait(r);
  EXPECT_EQ(t.cluster->now(), before);
  EXPECT_TRUE(s->status().is_ok());
  EXPECT_TRUE(r->status().is_ok());
  EXPECT_TRUE(util::check_pattern({in.data(), 256}, 1));
  t.a().release(s);
  t.b().release(r);
}

TEST(SessionEdges, DoubleCancelSecondCallRefuses) {
  Pair t;
  std::vector<std::byte> in(256);
  Request* r = t.b().irecv(t.ba, 7, {in.data(), 256});
  EXPECT_TRUE(t.b().cancel(r));
  EXPECT_TRUE(r->done());
  EXPECT_EQ(r->status().code(), util::StatusCode::kCancelled);

  // The second cancel sees a done request: refused, status untouched,
  // and the cancel counter does not double-count.
  EXPECT_FALSE(t.b().cancel(r));
  EXPECT_EQ(r->status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(t.b().stats().recvs_cancelled, 1u);
  t.b().release(r);
}

TEST(SessionEdges, WaitForZeroTimeout) {
  mpi::MadMpiWorld w;
  const mpi::Datatype byte = mpi::Datatype::byte_type();
  std::vector<std::byte> in(128), out(128);
  util::fill_pattern({out.data(), 128}, 3);

  // Pending request, zero budget: reports timeout without running a
  // single event.
  mpi::Request* r =
      w.ep(1).irecv(in.data(), 128, byte, 0, 0, mpi::kCommWorld);
  EXPECT_FALSE(w.ep(1).wait_for(r, 0.0));
  EXPECT_FALSE(r->done());

  // Once the match lands, a zero-timeout wait on the done request
  // succeeds immediately.
  mpi::Request* s =
      w.ep(0).isend(out.data(), 128, byte, 1, 0, mpi::kCommWorld);
  w.ep(1).wait(r);
  EXPECT_TRUE(w.ep(1).wait_for(r, 0.0));
  EXPECT_TRUE(w.ep(0).wait_for(s, 0.0));
  EXPECT_TRUE(util::check_pattern({in.data(), 128}, 3));
  w.ep(0).free_request(s);
  w.ep(1).free_request(r);
}

TEST(SessionEdges, CompletionQueueEdges) {
  Pair t;
  api::CompletionQueue cq(t.cluster->world());
  EXPECT_EQ(cq.pending(), 0u);
  EXPECT_EQ(cq.poll(), nullptr);  // empty queue polls null, never blocks

  // Tracking a request that is already complete enqueues it immediately.
  std::vector<std::byte> in0(64);
  Request* done_req = t.b().irecv(t.ba, 1, {in0.data(), 64});
  ASSERT_TRUE(t.b().cancel(done_req));
  cq.track(done_req);
  EXPECT_EQ(cq.ready(), 1u);
  EXPECT_EQ(cq.poll(), done_req);
  EXPECT_EQ(cq.pending(), 0u);
  t.b().release(done_req);

  // In-flight requests surface in completion order, not tracking order.
  std::vector<std::byte> out1(256), in1(256);
  std::vector<std::byte> out2(200 * 1024), in2(200 * 1024);
  util::fill_pattern({out1.data(), out1.size()}, 4);
  util::fill_pattern({out2.data(), out2.size()}, 5);
  // The rendezvous transfer (tag 3) takes far longer than the eager one
  // (tag 2), so tag 2 completes first despite being tracked second.
  Request* slow = t.b().irecv(t.ba, 3, {in2.data(), in2.size()});
  Request* fast = t.b().irecv(t.ba, 2, {in1.data(), in1.size()});
  cq.track(slow);
  cq.track(fast);
  Request* s1 =
      t.a().isend(t.ab, 3, util::ConstBytes{out2.data(), out2.size()});
  Request* s2 =
      t.a().isend(t.ab, 2, util::ConstBytes{out1.data(), out1.size()});
  EXPECT_EQ(cq.wait_next(), fast);
  EXPECT_EQ(cq.wait_next(), slow);
  EXPECT_EQ(cq.pending(), 0u);
  t.cluster->wait(s1);
  t.cluster->wait(s2);
  EXPECT_TRUE(util::check_pattern({in1.data(), in1.size()}, 4));
  EXPECT_TRUE(util::check_pattern({in2.data(), in2.size()}, 5));
  t.a().release(s1);
  t.a().release(s2);
  t.b().release(fast);
  t.b().release(slow);
}

}  // namespace
}  // namespace nmad::core
