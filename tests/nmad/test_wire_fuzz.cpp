// Checksum fuzzing: systematic single-byte corruption and truncation of
// encoded packets must never crash the decoder, and no corrupted packet
// may reach a reliable engine as verified-good data.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/core/packet_builder.hpp"
#include "nmad/core/wire_format.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

// Builds a representative checksummed + reliable packet: aggregated data,
// a fragment, an RTS, a CTS, an ack and a spray fragment — every
// non-heartbeat chunk kind on the wire.
util::ByteBuffer build_packet() {
  static std::vector<std::byte> payload0(64);
  static std::vector<std::byte> payload1(32);
  util::fill_pattern({payload0.data(), payload0.size()}, 1);
  util::fill_pattern({payload1.data(), payload1.size()}, 2);

  OutChunk data;
  data.kind = ChunkKind::kData;
  data.tag = 3;
  data.seq = 1;
  data.total = static_cast<uint32_t>(payload0.size());
  data.payload = {payload0.data(), payload0.size()};

  OutChunk frag;
  frag.kind = ChunkKind::kFrag;
  frag.tag = 4;
  frag.seq = 2;
  frag.offset = 128;
  frag.total = 4096;
  frag.payload = {payload1.data(), payload1.size()};

  OutChunk rts;
  rts.kind = ChunkKind::kRts;
  rts.tag = 5;
  rts.seq = 3;
  rts.rdv_len = 65536;
  rts.offset = 0;
  rts.total = 65536;
  rts.cookie = 0xABCDEF;

  OutChunk cts;
  cts.kind = ChunkKind::kCts;
  cts.tag = 5;
  cts.seq = 3;
  cts.cookie = 0xABCDEF;
  cts.cts_rails = {0, 1};

  OutChunk ack;
  ack.kind = ChunkKind::kAck;
  ack.seq = 17;  // cumulative ack floor
  ack.ack_sacks = {19, 23};
  ack.ack_bulk_acks = {{0xABCDEF, 0, 32768}};

  OutChunk spray;
  spray.kind = ChunkKind::kSprayFrag;
  spray.tag = 6;
  spray.seq = 4;
  spray.offset = 8192;
  spray.total = 65536;
  spray.frag_seq = 2;
  spray.epoch = 1;
  spray.payload = {payload1.data(), payload1.size()};

  PacketBuilder builder(64 * 1024, 0, /*checksum=*/true,
                        /*reserve_seq=*/true);
  builder.add(&data);
  builder.add(&frag);
  builder.add(&rts);
  builder.add(&cts);
  builder.add(&ack);
  builder.add(&spray);
  builder.mark_reliable(41);

  const util::SegmentVec& segs = builder.finalize();
  util::ByteBuffer flat;
  flat.resize(segs.total_bytes());
  segs.gather_into(flat.view());
  return flat;
}

// A reliable engine accepts a packet only when it decoded cleanly AND
// carried a verified checksum; anything else is dropped and recovered by
// retransmission. Corruption "escapes" only if both conditions hold.
bool accepted_by_reliable_engine(util::ConstBytes packet) {
  PacketMeta meta;
  const util::Status st =
      decode_packet(packet, &meta, [](const WireChunk&) {});
  return st.is_ok() && meta.checksummed;
}

TEST(WireFuzz, PristinePacketIsAccepted) {
  const util::ByteBuffer packet = build_packet();
  PacketMeta meta;
  size_t chunks = 0;
  const util::Status st =
      decode_packet(packet.view(), &meta, [&](const WireChunk&) { ++chunks; });
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(meta.checksummed);
  EXPECT_TRUE(meta.reliable);
  EXPECT_EQ(meta.seq, 41u);
  EXPECT_EQ(chunks, 6u);
}

TEST(WireFuzz, EveryByteFlipIsRejected) {
  util::ByteBuffer packet = build_packet();
  // The checksum covers the whole packet — header, sequence number,
  // chunk headers, payloads and the trailer itself — so flipping any
  // byte must be caught. The one structural exception: a flip in the
  // flags byte can clear the checksum bit, making the packet decode as
  // unchecksummed; a reliable engine refuses those outright, which is
  // what accepted_by_reliable_engine() models.
  for (const uint8_t mask : {uint8_t{0xFF}, uint8_t{0x01}, uint8_t{0x80}}) {
    for (size_t i = 0; i < packet.size(); ++i) {
      packet.view()[i] ^= static_cast<std::byte>(mask);
      EXPECT_FALSE(accepted_by_reliable_engine(packet.view()))
          << "flip mask 0x" << std::hex << static_cast<int>(mask)
          << " at offset " << std::dec << i << " escaped";
      packet.view()[i] ^= static_cast<std::byte>(mask);  // restore
    }
  }
  // The packet is intact again after the sweep.
  EXPECT_TRUE(accepted_by_reliable_engine(packet.view()));
}

TEST(WireFuzz, EveryTruncationIsRejected) {
  const util::ByteBuffer packet = build_packet();
  for (size_t cut = 0; cut < packet.size(); ++cut) {
    PacketMeta meta;
    const util::Status st = decode_packet(
        util::ConstBytes{packet.view().data(), cut}, &meta,
        [](const WireChunk&) {});
    EXPECT_FALSE(st.is_ok()) << "truncation at " << cut << " decoded";
  }
}

TEST(WireFuzz, DoubleByteCorruptionNeverCrashes) {
  // Pairs of corrupted bytes (including pairs that straddle length
  // fields) must at worst produce a clean error; acceptance is allowed
  // only if the checksum genuinely still verifies, which a pair of XORs
  // cannot achieve against FNV-1a on this packet.
  util::ByteBuffer packet = build_packet();
  const size_t n = packet.size();
  for (size_t i = 0; i < n; i += 7) {
    for (size_t j = i + 1; j < n; j += 13) {
      packet.view()[i] ^= std::byte{0x5A};
      packet.view()[j] ^= std::byte{0xA5};
      EXPECT_FALSE(accepted_by_reliable_engine(packet.view()))
          << "flips at " << i << "," << j;
      packet.view()[i] ^= std::byte{0x5A};
      packet.view()[j] ^= std::byte{0xA5};
    }
  }
}

}  // namespace
}  // namespace nmad::core
