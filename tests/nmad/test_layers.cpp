// Per-layer unit tests for the three-layer core split, plus the event
// bus that connects them: CollectLayer submission / unexpected-store
// ordering, ScheduleLayer window election determinism, TransferEngine
// health transitions, and the bus's ordering + trace-ring contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "nmad/api/session.hpp"
#include "nmad/core/core.hpp"
#include "nmad/core/events.hpp"
#include "nmad/runtime/sim_runtime.hpp"
#include "simnet/fabric.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

using api::Cluster;
using api::ClusterOptions;

// ---------------------------------------------------------------------------
// EventBus: delivery order, counters, and the trace ring.
// ---------------------------------------------------------------------------

TEST(EventBus, DeliversSynchronouslyInSubscriptionOrder) {
  simnet::SimWorld world;
  simnet::Fabric fabric(world);
  fabric.add_node(simnet::opteron_2006_profile());
  runtime::SimRuntime rt(world, fabric.node(0));
  CoreStats stats;
  EventBus bus(rt, &stats);

  std::vector<int> order;
  bus.subscribe(EventKind::kElected, [&](const Event&) { order.push_back(1); });
  bus.subscribe(EventKind::kElected, [&](const Event&) { order.push_back(2); });
  bus.subscribe(EventKind::kAcked, [&](const Event&) { order.push_back(3); });

  bus.publish({.kind = EventKind::kElected, .gate = 7, .a = 11});
  // Synchronous: both kElected subscribers already ran, in order.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  bus.publish({.kind = EventKind::kAcked});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));

  EXPECT_EQ(bus.published(), 2u);
  EXPECT_EQ(stats.ev_elected, 1u);
  EXPECT_EQ(stats.ev_acked, 1u);
  EXPECT_EQ(stats.ev_wire_tx, 0u);
}

TEST(EventBus, StampsVirtualTimeAndKeepsOperands) {
  simnet::SimWorld world;
  simnet::Fabric fabric(world);
  fabric.add_node(simnet::opteron_2006_profile());
  runtime::SimRuntime rt(world, fabric.node(0));
  CoreStats stats;
  EventBus bus(rt, &stats);
  world.at(12.5, [&] {
    bus.publish({.kind = EventKind::kWireTx, .gate = 3, .rail = 1,
                 .seq = 9, .a = 1024, .b = 2});
  });
  while (world.run_one()) {
  }
  ASSERT_EQ(bus.trace_size(), 1u);
  const Event ev = bus.trace().front();
  EXPECT_DOUBLE_EQ(ev.t, 12.5);
  EXPECT_EQ(ev.gate, 3u);
  EXPECT_EQ(ev.rail, 1);
  EXPECT_EQ(ev.seq, 9u);
  EXPECT_EQ(ev.a, 1024u);
  EXPECT_EQ(ev.b, 2u);
}

TEST(EventBus, TraceRingKeepsNewestOldestFirst) {
  simnet::SimWorld world;
  simnet::Fabric fabric(world);
  fabric.add_node(simnet::opteron_2006_profile());
  runtime::SimRuntime rt(world, fabric.node(0));
  CoreStats stats;
  EventBus bus(rt, &stats, /*trace_capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    bus.publish({.kind = EventKind::kPacketBuilt, .a = i});
  }
  EXPECT_EQ(bus.published(), 10u);
  EXPECT_EQ(bus.trace_size(), 4u);
  const std::vector<Event> kept = bus.trace();
  ASSERT_EQ(kept.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(kept[i].a, 6 + i) << i;  // the newest four, oldest first
  }

  std::ostringstream out;
  bus.dump_trace(out, 2);
  const std::string text = out.str();
  EXPECT_NE(text.find("trace (last 2 of 10 events)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("packet-built"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// CollectLayer: submission and unexpected-store ordering.
// ---------------------------------------------------------------------------

TEST(CollectLayer, UnexpectedStoreMatchesInArrivalOrder) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  // Two same-tag eager sends land before any receive is posted: both
  // park in the unexpected store, in arrival order.
  std::vector<std::byte> m0(512), m1(512);
  util::fill_pattern({m0.data(), m0.size()}, 10);
  util::fill_pattern({m1.data(), m1.size()}, 20);
  auto* s0 = a.isend(cluster.gate(0, 1), 5, util::ConstBytes{m0.data(), 512});
  auto* s1 = a.isend(cluster.gate(0, 1), 5, util::ConstBytes{m1.data(), 512});
  cluster.wait(s0);
  cluster.wait(s1);
  while (cluster.world().run_one()) {
  }

  Gate& rx_gate = b.gate(cluster.gate(1, 0));
  EXPECT_EQ(b.collector().gate_counts(rx_gate).unexpected, 2u);
  const auto [bytes, chunks] = b.collector().count_store(rx_gate);
  EXPECT_EQ(bytes, 1024u);
  EXPECT_EQ(chunks, 2u);
  // The store is the ground truth for the scheduler's gauge.
  EXPECT_EQ(b.stats().rx_stored_bytes, 1024u);

  // peek honours the next-sequence contract before anything matches.
  const Core::PeekResult peek = b.peek_unexpected(cluster.gate(1, 0), 5);
  EXPECT_TRUE(peek.matched);
  EXPECT_TRUE(peek.total_known);
  EXPECT_EQ(peek.total_bytes, 512u);

  // Receives drain the store FIFO: first posted gets the first arrival.
  std::vector<std::byte> in0(512), in1(512);
  auto* r0 = b.irecv(cluster.gate(1, 0), 5, util::MutableBytes{in0.data(), 512});
  auto* r1 = b.irecv(cluster.gate(1, 0), 5, util::MutableBytes{in1.data(), 512});
  cluster.wait(r0);
  cluster.wait(r1);
  EXPECT_TRUE(util::check_pattern({in0.data(), 512}, 10));
  EXPECT_TRUE(util::check_pattern({in1.data(), 512}, 20));
  EXPECT_EQ(b.collector().gate_counts(rx_gate).unexpected, 0u);
  EXPECT_EQ(b.stats().rx_stored_bytes, 0u);

  a.release(s0);
  a.release(s1);
  b.release(r0);
  b.release(r1);
}

TEST(CollectLayer, PostedReceivesMatchSubmissionOrder) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  // Receives posted first: the collect layer matches sends against them
  // in submission order, so payloads land in their posted buffers.
  std::vector<std::byte> in0(256), in1(256), out0(256), out1(256);
  util::fill_pattern({out0.data(), 256}, 1);
  util::fill_pattern({out1.data(), 256}, 2);
  auto* r0 = b.irecv(cluster.gate(1, 0), 9, util::MutableBytes{in0.data(), 256});
  auto* r1 = b.irecv(cluster.gate(1, 0), 9, util::MutableBytes{in1.data(), 256});
  Gate& rx_gate = b.gate(cluster.gate(1, 0));
  EXPECT_EQ(b.collector().gate_counts(rx_gate).active_recv, 2u);

  auto* s0 = a.isend(cluster.gate(0, 1), 9, util::ConstBytes{out0.data(), 256});
  auto* s1 = a.isend(cluster.gate(0, 1), 9, util::ConstBytes{out1.data(), 256});
  const std::vector<Request*> reqs = {r0, r1, s0, s1};
  cluster.wait_all(reqs);

  EXPECT_TRUE(util::check_pattern({in0.data(), 256}, 1));
  EXPECT_TRUE(util::check_pattern({in1.data(), 256}, 2));
  EXPECT_EQ(b.collector().gate_counts(rx_gate).active_recv, 0u);

  a.release(s0);
  a.release(s1);
  b.release(r0);
  b.release(r1);
}

// ---------------------------------------------------------------------------
// ScheduleLayer: window election is deterministic.
// ---------------------------------------------------------------------------

// Runs a fixed mixed-size traffic pattern and returns core 0's trace.
std::vector<Event> run_fixed_traffic() {
  ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  options.core.strategy = "aggreg";
  Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  std::vector<std::vector<std::byte>> out(6), in(6);
  std::vector<Request*> reqs;
  for (int i = 0; i < 6; ++i) {
    const size_t len = 128 << i;  // 128 B .. 4 KB
    out[i].assign(len, std::byte{static_cast<unsigned char>(i)});
    in[i].resize(len);
    reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(i),
                           util::MutableBytes{in[i].data(), len}));
  }
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                           util::ConstBytes{out[i].data(), out[i].size()}));
  }
  cluster.wait_all(reqs);
  while (cluster.world().run_one()) {
  }
  const std::vector<Event> trace = a.bus().trace();
  for (size_t i = 0; i < 6; ++i) b.release(reqs[i]);
  for (size_t i = 6; i < reqs.size(); ++i) a.release(reqs[i]);
  return trace;
}

TEST(ScheduleLayer, ElectionIsDeterministicAcrossRuns) {
  const std::vector<Event> first = run_fixed_traffic();
  const std::vector<Event> second = run_fixed_traffic();
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].kind, second[i].kind) << "event " << i;
    EXPECT_DOUBLE_EQ(first[i].t, second[i].t) << "event " << i;
    EXPECT_EQ(first[i].gate, second[i].gate) << "event " << i;
    EXPECT_EQ(first[i].rail, second[i].rail) << "event " << i;
    EXPECT_EQ(first[i].seq, second[i].seq) << "event " << i;
    EXPECT_EQ(first[i].a, second[i].a) << "event " << i;
    EXPECT_EQ(first[i].b, second[i].b) << "event " << i;
  }
}

// ---------------------------------------------------------------------------
// TransferEngine: health transitions ride the bus.
// ---------------------------------------------------------------------------

TEST(TransferEngine, KillAndReviveWalkTheHealthLifecycle) {
  ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(), simnet::mx_myri10g_profile()};
  options.core.reliability = true;
  Cluster cluster(std::move(options));
  Core& a = cluster.core(0);

  std::vector<Event> seen;
  a.bus().subscribe(EventKind::kHealthTransition,
                    [&](const Event& ev) { seen.push_back(ev); });

  EXPECT_EQ(a.rail_health_state(1), RailHealth::kAlive);
  a.fail_rail(1);
  EXPECT_EQ(a.rail_health_state(1), RailHealth::kDead);
  EXPECT_FALSE(a.rail_alive(1));
  EXPECT_EQ(a.rail_epoch(1), 1u);

  a.revive_rail(1);
  EXPECT_EQ(a.rail_health_state(1), RailHealth::kAlive);
  EXPECT_TRUE(a.rail_alive(1));

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].rail, 1);
  EXPECT_EQ(seen[0].seq, 1u);  // the death fenced a new epoch
  EXPECT_EQ(static_cast<RailHealth>(seen[0].a), RailHealth::kAlive);
  EXPECT_EQ(static_cast<RailHealth>(seen[0].b), RailHealth::kDead);
  EXPECT_EQ(seen[1].rail, 1);
  EXPECT_EQ(static_cast<RailHealth>(seen[1].a), RailHealth::kDead);
  EXPECT_EQ(static_cast<RailHealth>(seen[1].b), RailHealth::kAlive);

  EXPECT_EQ(a.stats().ev_health_transition, 2u);
  EXPECT_EQ(a.stats().rails_failed, 1u);
  EXPECT_EQ(a.stats().rails_revived, 1u);
  while (cluster.world().run_one()) {
  }
}

// ---------------------------------------------------------------------------
// The full lifecycle in one trace: elect -> build -> tx -> rx -> ack.
// ---------------------------------------------------------------------------

TEST(EventBus, TraceCapturesCompleteLifecycle) {
  ClusterOptions options;
  options.core.reliability = true;
  Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  std::vector<std::byte> out(1024), in(1024);
  util::fill_pattern({out.data(), 1024}, 3);
  auto* recv = b.irecv(cluster.gate(1, 0), 1, util::MutableBytes{in.data(), 1024});
  auto* send = a.isend(cluster.gate(0, 1), 1, util::ConstBytes{out.data(), 1024});
  cluster.wait(send);
  cluster.wait(recv);
  while (cluster.world().run_one()) {  // let the ack retire the packet
  }

  auto first_time = [](const std::vector<Event>& trace, EventKind kind) {
    for (const Event& ev : trace) {
      if (ev.kind == kind) return ev.t;
    }
    return -1.0;
  };
  const std::vector<Event> tx_trace = a.bus().trace();
  const std::vector<Event> rx_trace = b.bus().trace();
  const double elected = first_time(tx_trace, EventKind::kElected);
  const double built = first_time(tx_trace, EventKind::kPacketBuilt);
  const double tx = first_time(tx_trace, EventKind::kWireTx);
  const double rx = first_time(rx_trace, EventKind::kWireRx);
  const double acked = first_time(tx_trace, EventKind::kAcked);
  ASSERT_GE(elected, 0.0);
  ASSERT_GE(built, 0.0);
  ASSERT_GE(tx, 0.0);
  ASSERT_GE(rx, 0.0);
  ASSERT_GE(acked, 0.0);
  EXPECT_LE(elected, built);
  EXPECT_LE(built, tx);
  EXPECT_LE(tx, rx);
  EXPECT_LT(rx, acked);

  EXPECT_GE(a.stats().ev_elected, 1u);
  EXPECT_GE(a.stats().ev_packet_built, 1u);
  EXPECT_GE(a.stats().ev_wire_tx, 1u);
  EXPECT_GE(b.stats().ev_wire_rx, 1u);
  EXPECT_GE(a.stats().ev_acked, 1u);

  // The engine dump ends with the same trace, rendered.
  std::ostringstream dump;
  a.debug_dump(dump);
  EXPECT_NE(dump.str().find("events:"), std::string::npos);
  EXPECT_NE(dump.str().find("trace (last"), std::string::npos);
  EXPECT_NE(dump.str().find("wire-tx"), std::string::npos);

  a.release(send);
  b.release(recv);
}

}  // namespace
}  // namespace nmad::core
