// DestLayout / SourceLayout: scatter, contiguity queries, bounds.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/core/layout.hpp"
#include "util/rng.hpp"

namespace nmad::core {
namespace {

TEST(DestLayout, ContiguousScatter) {
  std::vector<std::byte> mem(100, std::byte{0});
  DestLayout layout = DestLayout::contiguous({mem.data(), mem.size()});
  EXPECT_EQ(layout.total(), 100u);

  std::vector<std::byte> src(10);
  util::fill_pattern({src.data(), 10}, 1);
  layout.scatter(45, {src.data(), 10});
  EXPECT_TRUE(util::check_pattern({mem.data() + 45, 10}, 1));
  EXPECT_EQ(mem[44], std::byte{0});
  EXPECT_EQ(mem[55], std::byte{0});
}

TEST(DestLayout, EmptyLayout) {
  DestLayout layout;
  EXPECT_TRUE(layout.empty());
  EXPECT_EQ(layout.total(), 0u);
  EXPECT_TRUE(layout.contiguous_region(0, 1).empty());
}

TEST(DestLayout, ScatterAcrossBlocks) {
  std::vector<std::byte> a(10, std::byte{0}), b(10, std::byte{0}),
      c(10, std::byte{0});
  DestLayout layout = DestLayout::scattered({
      {0, {a.data(), 10}},
      {10, {b.data(), 10}},
      {20, {c.data(), 10}},
  });
  EXPECT_EQ(layout.total(), 30u);

  // Write logical [5, 25): tail of a, all of b, head of c.
  std::vector<std::byte> src(20);
  util::fill_pattern({src.data(), 20}, 7);
  layout.scatter(5, {src.data(), 20});

  std::vector<std::byte> flat(30, std::byte{0});
  std::memcpy(flat.data(), a.data(), 10);
  std::memcpy(flat.data() + 10, b.data(), 10);
  std::memcpy(flat.data() + 20, c.data(), 10);
  EXPECT_TRUE(util::check_pattern({flat.data() + 5, 20}, 7));
  EXPECT_EQ(flat[4], std::byte{0});
  EXPECT_EQ(flat[25], std::byte{0});
}

TEST(DestLayout, ContiguousRegionWithinOneBlock) {
  std::vector<std::byte> a(10), b(20);
  DestLayout layout = DestLayout::scattered({
      {0, {a.data(), 10}},
      {10, {b.data(), 20}},
  });
  util::MutableBytes region = layout.contiguous_region(10, 20);
  EXPECT_EQ(region.data(), b.data());
  EXPECT_EQ(region.size(), 20u);

  region = layout.contiguous_region(12, 5);
  EXPECT_EQ(region.data(), b.data() + 2);
  EXPECT_EQ(region.size(), 5u);
}

TEST(DestLayout, CrossBlockRegionIsNotContiguous) {
  std::vector<std::byte> a(10), b(20);
  DestLayout layout = DestLayout::scattered({
      {0, {a.data(), 10}},
      {10, {b.data(), 20}},
  });
  EXPECT_TRUE(layout.contiguous_region(5, 10).empty());
  EXPECT_TRUE(layout.contiguous_region(0, 30).empty());
  EXPECT_TRUE(layout.contiguous_region(25, 10).empty());  // out of bounds
  EXPECT_TRUE(layout.contiguous_region(0, 0).empty());    // zero length
}

TEST(DestLayout, AdjacentMemoryBlocksStillSeparate) {
  // Two layout blocks that happen to be adjacent in memory: the region
  // query is per-block (conservative), so a crossing range reports
  // non-contiguous. Documented behaviour, not a bug.
  std::vector<std::byte> mem(20);
  DestLayout layout = DestLayout::scattered({
      {0, {mem.data(), 10}},
      {10, {mem.data() + 10, 10}},
  });
  EXPECT_TRUE(layout.contiguous_region(5, 10).empty());
}

TEST(DestLayout, ScatterRandomizedAgainstFlatModel) {
  util::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    // Random dense block structure over a 1 KB logical space.
    const size_t total = 1024;
    std::vector<std::byte> storage(total * 2);
    std::vector<DestLayout::Block> blocks;
    size_t logical = 0, mem_pos = 0;
    while (logical < total) {
      const size_t len =
          std::min<size_t>(rng.next_range(1, 100), total - logical);
      mem_pos += rng.next_below(16);  // random gap in memory
      blocks.push_back({logical, {storage.data() + mem_pos, len}});
      logical += len;
      mem_pos += len;
    }
    DestLayout layout = DestLayout::scattered(std::move(blocks));
    ASSERT_EQ(layout.total(), total);

    std::vector<std::byte> reference(total, std::byte{0});
    for (int write = 0; write < 20; ++write) {
      const size_t off = rng.next_below(total);
      const size_t len = rng.next_range(0, total - off);
      std::vector<std::byte> data(len);
      for (auto& byte : data) {
        byte = static_cast<std::byte>(rng.next_below(256));
      }
      layout.scatter(off, {data.data(), len});
      if (len != 0) std::memcpy(reference.data() + off, data.data(), len);
    }

    // Gather the layout back into flat form and compare.
    std::vector<std::byte> flat(total);
    for (const auto& block : layout.blocks()) {
      std::memcpy(flat.data() + block.logical_offset, block.memory.data(),
                  block.memory.size());
    }
    EXPECT_EQ(std::memcmp(flat.data(), reference.data(), total), 0)
        << "trial " << trial;
  }
}

TEST(SourceLayout, ContiguousAndScattered) {
  std::vector<std::byte> a(10), b(5);
  SourceLayout c = SourceLayout::contiguous({a.data(), 10});
  EXPECT_EQ(c.total(), 10u);
  ASSERT_EQ(c.blocks().size(), 1u);
  EXPECT_EQ(c.blocks()[0].logical_offset, 0u);

  SourceLayout s = SourceLayout::scattered({
      {0, {a.data(), 10}},
      {10, {b.data(), 5}},
  });
  EXPECT_EQ(s.total(), 15u);
  EXPECT_EQ(s.blocks().size(), 2u);
}

TEST(SourceLayout, EmptyContiguous) {
  SourceLayout s = SourceLayout::contiguous({});
  EXPECT_EQ(s.total(), 0u);
  EXPECT_TRUE(s.blocks().empty());
}

TEST(DestLayoutDeath, NonDenseBlocksRejected) {
  std::vector<std::byte> a(10);
  EXPECT_DEATH(DestLayout::scattered({{5, {a.data(), 10}}}), "dense");
}

TEST(DestLayoutDeath, OutOfBoundsScatterRejected) {
  std::vector<std::byte> a(10);
  DestLayout layout = DestLayout::contiguous({a.data(), 10});
  std::vector<std::byte> src(5);
  EXPECT_DEATH(layout.scatter(8, {src.data(), 5}), "bounds");
}

}  // namespace
}  // namespace nmad::core
