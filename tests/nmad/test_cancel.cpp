// Cancellation and deadlines: withdrawing sends and receives at every
// awkward moment of the protocol — still in the window, elected but
// unacked, mid-rendezvous — plus deadline expiry during retransmit
// backoff. A cancelled request always completes (kCancelled or
// kDeadlineExceeded), the peer never hangs, and no payload is delivered
// to a withdrawn receive.
#include <gtest/gtest.h>

#include <vector>

#include "madmpi/madmpi.hpp"
#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

CoreConfig reliable_config() {
  CoreConfig c;
  c.reliability = true;
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  return c;
}

struct Pair {
  explicit Pair(CoreConfig config = reliable_config(),
                simnet::NicProfile rail = simnet::mx_myri10g_profile()) {
    api::ClusterOptions options;
    options.rails = {std::move(rail)};
    options.core = std::move(config);
    cluster = std::make_unique<api::Cluster>(std::move(options));
    ab = cluster->gate(0, 1);
    ba = cluster->gate(1, 0);
  }
  Core& a() { return cluster->core(0); }
  Core& b() { return cluster->core(1); }
  // Pumps until virtual time `t` (events at exactly `t` may have run).
  void run_to(double t) {
    cluster->world().run_until([&]() { return cluster->now() >= t; });
  }

  std::unique_ptr<api::Cluster> cluster;
  GateId ab{};
  GateId ba{};
};

TEST(Cancel, SendStillInWindow) {
  // Two back-to-back sends: the first is elected onto the NIC at once,
  // the second is still a window chunk — the cheapest cancel there is.
  Pair t;
  std::vector<std::byte> out0(512), out1(512), in0(512), in1(512);
  util::fill_pattern({out0.data(), 512}, 1);
  util::fill_pattern({out1.data(), 512}, 2);
  Request* s0 = t.a().isend(t.ab, 0, util::ConstBytes{out0.data(), 512});
  Request* s1 = t.a().isend(t.ab, 1, util::ConstBytes{out1.data(), 512});
  EXPECT_TRUE(t.a().cancel(s1));
  EXPECT_TRUE(s1->done());
  EXPECT_EQ(s1->status().code(), util::StatusCode::kCancelled);

  // The first message is untouched; the second's receive learns of the
  // withdrawal through the cancel-RTS tombstone (its seq was consumed).
  Request* r0 = t.b().irecv(t.ba, 0, {in0.data(), 512});
  Request* r1 = t.b().irecv(t.ba, 1, {in1.data(), 512});
  t.cluster->wait(s0);
  t.cluster->wait(r0);
  t.cluster->wait(r1);
  EXPECT_TRUE(s0->status().is_ok());
  EXPECT_TRUE(r0->status().is_ok());
  EXPECT_TRUE(util::check_pattern({in0.data(), 512}, 1));
  EXPECT_EQ(r1->status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(t.a().stats().sends_cancelled, 1u);
  t.a().release(s0);
  t.a().release(s1);
  t.b().release(r0);
  t.b().release(r1);
}

TEST(Cancel, SendAfterElectedBeforeAck) {
  // The race the window can't save us from: the packet is on (or past)
  // the wire, but unacked. Cancel succeeds — the in-flight copy is
  // disowned and whatever the receiver stored is reclaimed by the
  // cancel-RTS tombstone.
  Pair t;
  std::vector<std::byte> out(512), in(512);
  util::fill_pattern({out.data(), 512}, 7);
  Request* s = t.a().isend(t.ab, 0, util::ConstBytes{out.data(), 512});
  // Payload lands ~2.5µs in; the delayed ack leaves ~5µs later. At t=3µs
  // the data sits in b's unexpected store and the ack is still pending.
  t.run_to(3.0);
  EXPECT_GT(t.b().stats().rx_stored_bytes, 0u);
  EXPECT_TRUE(t.a().cancel(s));
  EXPECT_EQ(s->status().code(), util::StatusCode::kCancelled);

  // Let the cancel-RTS land (and the late ack hit the nulled owner): the
  // stored payload is reclaimed and a tombstone left behind.
  t.cluster->world().run_to_quiescence();
  EXPECT_EQ(t.b().stats().rx_stored_bytes, 0u);  // store fully reclaimed
  Request* r = t.b().irecv(t.ba, 0, {in.data(), 512});
  t.cluster->wait(r);
  EXPECT_EQ(r->status().code(), util::StatusCode::kCancelled);
  EXPECT_EQ(t.a().stats().sends_cancelled, 1u);
  t.a().release(s);
  t.b().release(r);
}

TEST(Cancel, RecvBeforeArrivalDropsPayload) {
  Pair t;
  std::vector<std::byte> out(512), in(512);
  util::fill_pattern({out.data(), 512}, 9);
  Request* r = t.b().irecv(t.ba, 0, {in.data(), 512});
  EXPECT_TRUE(t.b().cancel(r));
  EXPECT_EQ(r->status().code(), util::StatusCode::kCancelled);

  // The sender is oblivious: its message is acked and completes ok, but
  // the payload is dropped at b against the cancelled-receive tombstone.
  Request* s = t.a().isend(t.ab, 0, util::ConstBytes{out.data(), 512});
  t.cluster->wait(s);
  EXPECT_TRUE(s->status().is_ok());
  t.cluster->world().run_to_quiescence();
  EXPECT_GE(t.b().stats().cancelled_payload_dropped, 1u);
  EXPECT_EQ(t.b().stats().recvs_cancelled, 1u);
  EXPECT_EQ(t.b().stats().rx_stored_bytes, 0u);
  t.a().release(s);
  t.b().release(r);
}

TEST(Cancel, RendezvousWithCtsInFlight) {
  // The nastiest send-side race: the receiver has already granted the
  // rendezvous (CTS on the wire) when the sender withdraws. The stale
  // CTS must be eaten, and the receiver's posted sink unwound.
  Pair t;
  const size_t big = 128 * 1024;
  std::vector<std::byte> out(big), in(big);
  util::fill_pattern({out.data(), big}, 3);
  Request* r = t.b().irecv(t.ba, 0, {in.data(), big});
  Request* s = t.a().isend(t.ab, 0, util::ConstBytes{out.data(), big});
  // RTS reaches b ~2.3µs in; the granted CTS arrives back ~4.6µs. Cancel
  // in between, while the grant is in flight.
  t.run_to(3.0);
  EXPECT_TRUE(t.a().cancel(s));
  EXPECT_EQ(s->status().code(), util::StatusCode::kCancelled);
  t.cluster->wait(r);
  EXPECT_EQ(r->status().code(), util::StatusCode::kCancelled);
  t.cluster->world().run_to_quiescence();  // the stale CTS lands quietly
  EXPECT_EQ(t.a().stats().sends_cancelled, 1u);
  EXPECT_EQ(t.a().stats().bulk_sends, 0u);  // no byte of the body moved
  t.a().release(s);
  t.b().release(r);
}

TEST(Cancel, ReceiverCancelsGrantedRendezvousMidStream) {
  // Receiver-side withdrawal after the grant, with the bulk transfer
  // already pumping: the cancel-CTS chases the grant, the sender unwinds
  // via its own cancel path, and in-flight slices die as orphans.
  Pair t;
  const size_t big = 128 * 1024;
  std::vector<std::byte> out(big), in(big);
  util::fill_pattern({out.data(), big}, 4);
  Request* r = t.b().irecv(t.ba, 0, {in.data(), big});
  Request* s = t.a().isend(t.ab, 0, util::ConstBytes{out.data(), big});
  // CTS reaches a ~4.6µs in; the ~105µs bulk transfer is mid-flight at
  // t=10µs.
  t.run_to(10.0);
  EXPECT_GT(t.a().stats().bulk_sends, 0u);
  EXPECT_TRUE(t.b().cancel(r));
  EXPECT_EQ(r->status().code(), util::StatusCode::kCancelled);
  t.cluster->wait(s);
  EXPECT_EQ(s->status().code(), util::StatusCode::kCancelled);
  t.cluster->world().run_to_quiescence();
  EXPECT_EQ(t.b().stats().recvs_cancelled, 1u);
  EXPECT_EQ(t.a().stats().gates_failed, 0u);
  EXPECT_EQ(t.b().stats().gates_failed, 0u);
  t.a().release(s);
  t.b().release(r);
}

TEST(Cancel, DeadlineDuringRetransmitBackoff) {
  // A black-hole fabric: every frame is lost, so the packet sits in
  // timeout/backoff forever. The deadline must cut through — firing
  // between retransmissions and completing the send — long before the
  // retry budget declares the gate dead.
  CoreConfig c = reliable_config();
  c.rail_dead_after = 0;  // keep the rail nominally alive throughout
  simnet::NicProfile rail = simnet::mx_myri10g_profile();
  rail.fault.frame_drop_prob = 1.0;
  rail.fault.seed = 7;
  Pair t(std::move(c), std::move(rail));
  std::vector<std::byte> out(512);
  util::fill_pattern({out.data(), 512}, 5);
  Request* s = t.a().isend(t.ab, 0, util::ConstBytes{out.data(), 512});
  // Timeouts at ~200/600/1400µs; the deadline lands in the second backoff.
  t.a().set_deadline(s, 1000.0);
  t.cluster->wait(s);
  EXPECT_EQ(s->status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_LT(t.cluster->now(), 1400.0);  // did not wait out the retries
  EXPECT_EQ(t.a().stats().deadlines_exceeded, 1u);
  EXPECT_GT(t.a().stats().packets_retransmitted, 0u);
  // The black hole eventually exhausts the retry budget and fails the
  // gate, which reclaims the still-circulating cancel-RTS.
  t.cluster->world().run_to_quiescence();
  t.a().release(s);
}

TEST(Cancel, RecvDeadlineWithNoSender) {
  // The deadline timer itself keeps the world non-quiescent, so waiting
  // on a receive that nothing will ever match still terminates.
  Pair t;
  std::vector<std::byte> in(512);
  Request* r = t.b().irecv(t.ba, 0, {in.data(), 512});
  t.b().set_deadline(r, 1000.0);
  t.cluster->wait(r);
  EXPECT_EQ(r->status().code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(t.b().stats().deadlines_exceeded, 1u);
  t.b().release(r);
}

TEST(Cancel, MadMpiCancelDeadlineAndWaitFor) {
  // The MPI face of the same machinery: MPI_Cancel analogue, wait with a
  // timeout, and a per-request deadline.
  mpi::MadMpiWorld w;
  const mpi::Datatype byte = mpi::Datatype::byte_type();
  std::vector<std::byte> in(1024);

  // wait_for on a never-matching receive times out, leaving the request
  // pending; cancel then completes it.
  mpi::Request* r0 = w.ep(1).irecv(in.data(), 1024, byte, 0, 0,
                                   mpi::kCommWorld);
  EXPECT_FALSE(w.ep(1).wait_for(r0, 500.0));
  EXPECT_FALSE(r0->done());
  EXPECT_TRUE(w.ep(1).cancel(r0));
  EXPECT_TRUE(r0->done());
  EXPECT_EQ(r0->status().code(), util::StatusCode::kCancelled);
  w.ep(1).free_request(r0);

  // A deadline'd receive completes on its own; wait_for sees it finish.
  mpi::Request* r1 = w.ep(1).irecv(in.data(), 1024, byte, 0, 1,
                                   mpi::kCommWorld);
  EXPECT_TRUE(w.ep(1).set_deadline(r1, 800.0));
  EXPECT_TRUE(w.ep(1).wait_for(r1, 10000.0));
  EXPECT_EQ(r1->status().code(), util::StatusCode::kDeadlineExceeded);
  w.ep(1).free_request(r1);
}

}  // namespace
}  // namespace nmad::core
