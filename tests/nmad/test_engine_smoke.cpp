// End-to-end smoke tests of the engine over the simulated fabric:
// eager ping-pong, aggregation, rendezvous, and multi-rail splitting.
#include <gtest/gtest.h>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad {
namespace {

using api::Cluster;
using api::ClusterOptions;

TEST(EngineSmoke, EagerPingPongDeliversBytes) {
  Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<std::byte> out(1024), in(1024);
  util::fill_pattern({out.data(), out.size()}, 7);

  auto* recv = b.irecv(cluster.gate(1, 0), /*tag=*/42,
                       util::MutableBytes{in.data(), in.size()});
  auto* send = a.isend(cluster.gate(0, 1), /*tag=*/42,
                       util::ConstBytes{out.data(), out.size()});
  cluster.wait(send);
  cluster.wait(recv);

  EXPECT_TRUE(send->status().is_ok());
  EXPECT_TRUE(recv->status().is_ok());
  EXPECT_EQ(recv->received_bytes(), 1024u);
  EXPECT_TRUE(util::check_pattern({in.data(), in.size()}, 7));
  EXPECT_GT(cluster.now(), 0.0);

  a.release(send);
  b.release(recv);
}

TEST(EngineSmoke, RendezvousLargeMessage) {
  Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  const size_t len = 1 << 20;  // 1 MB — far above the 32 KB threshold
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), out.size()}, 11);

  auto* recv = b.irecv(cluster.gate(1, 0), 5,
                       util::MutableBytes{in.data(), in.size()});
  auto* send = a.isend(cluster.gate(0, 1), 5,
                       util::ConstBytes{out.data(), out.size()});
  cluster.wait(send);
  cluster.wait(recv);

  EXPECT_TRUE(util::check_pattern({in.data(), in.size()}, 11));
  EXPECT_EQ(a.stats().rdv_started, 1u);
  EXPECT_GE(a.stats().bulk_sends, 1u);

  a.release(send);
  b.release(recv);
}

TEST(EngineSmoke, ManySmallSendsAggregate) {
  Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  constexpr int kMessages = 16;
  constexpr size_t kLen = 256;
  std::vector<std::vector<std::byte>> out(kMessages), in(kMessages);
  std::vector<core::Request*> reqs;
  for (int i = 0; i < kMessages; ++i) {
    out[i].resize(kLen);
    in[i].resize(kLen);
    util::fill_pattern({out[i].data(), kLen}, 100 + i);
    reqs.push_back(b.irecv(cluster.gate(1, 0), core::Tag(i),
                           util::MutableBytes{in[i].data(), kLen}));
  }
  for (int i = 0; i < kMessages; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), core::Tag(i),
                           util::ConstBytes{out[i].data(), kLen}));
  }
  cluster.wait_all(reqs);

  for (int i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), kLen}, 100 + i))
        << "message " << i;
  }
  // The first chunk ships alone (NIC was idle); everything submitted while
  // the NIC was busy must coalesce into far fewer packets than messages.
  EXPECT_LT(a.stats().packets_sent, kMessages / 2);
  EXPECT_GT(a.stats().chunks_aggregated, 0u);

  for (auto* r : reqs) {
    (r->kind() == core::Request::Kind::kSend ? a : b).release(r);
  }
}

TEST(EngineSmoke, MultiRailSplitsBulk) {
  ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  options.core.strategy = "split_balance";
  Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  const size_t len = 2 << 20;
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), out.size()}, 3);

  auto* recv = b.irecv(cluster.gate(1, 0), 9,
                       util::MutableBytes{in.data(), in.size()});
  auto* send = a.isend(cluster.gate(0, 1), 9,
                       util::ConstBytes{out.data(), out.size()});
  cluster.wait(send);
  cluster.wait(recv);

  EXPECT_TRUE(util::check_pattern({in.data(), in.size()}, 3));
  // Both rails must have carried bulk traffic.
  EXPECT_GT(cluster.fabric().node(0).nic(0).counters().bulk_sent, 0u);
  EXPECT_GT(cluster.fabric().node(0).nic(1).counters().bulk_sent, 0u);

  a.release(send);
  b.release(recv);
}

TEST(EngineSmoke, UnexpectedMessageMatchesLater) {
  Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<std::byte> out(512), in(512);
  util::fill_pattern({out.data(), out.size()}, 21);

  auto* send = a.isend(cluster.gate(0, 1), 7,
                       util::ConstBytes{out.data(), out.size()});
  cluster.wait(send);
  cluster.world().run_to_quiescence();  // message sits unexpected at B

  EXPECT_GT(b.stats().unexpected_chunks, 0u);

  auto* recv = b.irecv(cluster.gate(1, 0), 7,
                       util::MutableBytes{in.data(), in.size()});
  cluster.wait(recv);
  EXPECT_TRUE(util::check_pattern({in.data(), in.size()}, 21));

  a.release(send);
  b.release(recv);
}

}  // namespace
}  // namespace nmad
