// Soak tests: sustained randomized duplex traffic over long virtual
// horizons — every strategy, multiple rails, mixed sizes, interleaved
// posting orders. Verifies byte integrity for every message and that all
// engine pools drain back to zero live objects at the end (the Core
// destructor asserts this).
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace nmad::core {
namespace {

using api::Cluster;
using api::ClusterOptions;

struct StressCase {
  const char* strategy;
  bool two_rails;
  size_t prebuild;
};

class Stress : public ::testing::TestWithParam<StressCase> {};

std::string stress_name(const ::testing::TestParamInfo<StressCase>& info) {
  std::string name = info.param.strategy;
  if (info.param.two_rails) name += "_2rails";
  if (info.param.prebuild) name += "_prebuild";
  return name;
}

TEST_P(Stress, SustainedDuplexTrafficStaysCorrect) {
  const StressCase& sc = GetParam();
  ClusterOptions options;
  options.core.strategy = sc.strategy;
  options.core.prebuild_backlog_chunks = sc.prebuild;
  if (sc.two_rails) {
    options.rails = {simnet::mx_myri10g_profile(),
                     simnet::elan_quadrics_profile()};
  }
  Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  util::Rng rng(std::string_view(sc.strategy).size() * 31 +
                (sc.two_rails ? 7 : 0) + sc.prebuild);

  struct Transfer {
    std::vector<std::byte> src;
    std::vector<std::byte> dst;
    Request* send = nullptr;
    Request* recv = nullptr;
    uint64_t seed = 0;
    bool a_to_b = true;
  };

  constexpr int kWaves = 12;
  constexpr int kPerWave = 10;
  size_t total_bytes = 0;

  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<Transfer> transfers(kPerWave);
    std::vector<Request*> reqs;
    for (int i = 0; i < kPerWave; ++i) {
      Transfer& t = transfers[i];
      t.a_to_b = rng.next_bool();
      t.seed = rng.next_u64();
      // Size classes: empty, tiny, eager, threshold straddle, rendezvous.
      size_t len = 0;
      switch (rng.next_below(5)) {
        case 0: len = 0; break;
        case 1: len = rng.next_range(1, 64); break;
        case 2: len = rng.next_range(65, 8 * 1024); break;
        case 3: len = rng.next_range(30 * 1024, 40 * 1024); break;
        case 4: len = rng.next_range(64 * 1024, 300 * 1024); break;
      }
      t.src.resize(len);
      t.dst.resize(len);
      util::fill_pattern({t.src.data(), len}, t.seed);
      total_bytes += len;
    }
    // Random interleave of send/recv posting, half the messages posted
    // send-first (exercising the unexpected path).
    std::vector<int> order;
    for (int i = 0; i < kPerWave; ++i) {
      order.push_back(i);          // recv slot
      order.push_back(i + 1000);   // send slot
    }
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    for (int slot : order) {
      const int i = slot % 1000;
      Transfer& t = transfers[i];
      Core& sender = t.a_to_b ? a : b;
      Core& receiver = t.a_to_b ? b : a;
      const GateId send_gate =
          t.a_to_b ? cluster.gate(0, 1) : cluster.gate(1, 0);
      const GateId recv_gate =
          t.a_to_b ? cluster.gate(1, 0) : cluster.gate(0, 1);
      const Tag tag = Tag(wave * 100 + i) | (t.a_to_b ? 0 : (1ull << 40));
      if (slot >= 1000) {
        t.send = sender.isend(send_gate, tag,
                              util::ConstBytes{t.src.data(), t.src.size()});
        reqs.push_back(t.send);
      } else {
        t.recv = receiver.irecv(recv_gate, tag,
                                util::MutableBytes{t.dst.data(),
                                                   t.dst.size()});
        reqs.push_back(t.recv);
      }
    }
    cluster.wait_all(reqs);
    for (Transfer& t : transfers) {
      EXPECT_TRUE(util::check_pattern({t.dst.data(), t.dst.size()}, t.seed))
          << "wave " << wave << " len " << t.dst.size();
      (t.a_to_b ? a : b).release(t.send);
      (t.a_to_b ? b : a).release(t.recv);
    }
  }

  EXPECT_GT(total_bytes, 1u << 20);  // the soak moved real volume
  // Windows drained.
  EXPECT_EQ(a.window_size(cluster.gate(0, 1)), 0u);
  EXPECT_EQ(b.window_size(cluster.gate(1, 0)), 0u);
  // Core destruction now asserts all pools are empty.
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, Stress,
    ::testing::Values(StressCase{"default", false, 0},
                      StressCase{"aggreg", false, 0},
                      StressCase{"aggreg", true, 0},
                      StressCase{"aggreg_extended", false, 0},
                      StressCase{"split_balance", true, 0},
                      StressCase{"aggreg", false, 4}),
    stress_name);

}  // namespace
}  // namespace nmad::core
