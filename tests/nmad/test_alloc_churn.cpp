// Allocation-churn regression tests.
//
// The hot path — event scheduling, packet chunks, requests, bulk jobs —
// runs on pools, slabs and inline callables; after a warm-up phase that
// sizes them, steady-state traffic must not touch the heap through any of
// them. The witnesses are Core::alloc_stats(): every pool's capacity and
// grow count, the event queue's slab/slot/bucket capacities, and the
// global InlineFunction spill counter. All are monotone, so "flat across
// the measured phase" is exactly "zero hot-path allocations".
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "nmad/api/session.hpp"
#include "util/buffer.hpp"
#include "util/inline_fn.hpp"

namespace nmad::core {
namespace {

using api::Cluster;
using api::ClusterOptions;

// Snapshot of every monotone allocation counter across a whole cluster.
struct AllocSnapshot {
  size_t pool_capacity = 0;
  size_t pool_grows = 0;
  runtime::TimerStats queue;
  uint64_t fn_spills = 0;
};

AllocSnapshot snapshot(Cluster& cluster) {
  AllocSnapshot s;
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    const Core::AllocStats a =
        cluster.core(static_cast<simnet::NodeId>(n)).alloc_stats();
    s.pool_capacity += a.chunk_pool_capacity + a.bulk_pool_capacity +
                       a.send_pool_capacity + a.recv_pool_capacity;
    s.pool_grows += a.chunk_pool_grows + a.bulk_pool_grows +
                    a.send_pool_grows + a.recv_pool_grows;
  }
  s.queue = cluster.core(0).alloc_stats().queue;
  s.fn_spills = util::inline_fn_heap_allocs();
  return s;
}

void expect_flat(const AllocSnapshot& warm, const AllocSnapshot& steady) {
  EXPECT_EQ(steady.pool_capacity, warm.pool_capacity)
      << "an engine pool grew during steady state";
  EXPECT_EQ(steady.pool_grows, warm.pool_grows);
  EXPECT_EQ(steady.queue.node_slabs, warm.queue.node_slabs)
      << "the event queue allocated a node slab during steady state";
  EXPECT_EQ(steady.queue.node_capacity, warm.queue.node_capacity);
  EXPECT_EQ(steady.queue.slot_capacity, warm.queue.slot_capacity);
  EXPECT_EQ(steady.queue.buckets, warm.queue.buckets);
  EXPECT_EQ(steady.queue.resizes, warm.queue.resizes);
  EXPECT_EQ(steady.fn_spills, warm.fn_spills)
      << "an event callback spilled out of its inline buffer";
}

void pingpong_round(Cluster& cluster, std::vector<std::byte>& buf,
                    uint64_t round) {
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  const Tag tag = round;
  Request* s0 = a.isend(cluster.gate(0, 1), tag,
                        util::ConstBytes{buf.data(), buf.size()});
  Request* r0 = b.irecv(cluster.gate(1, 0), tag,
                        util::MutableBytes{buf.data(), buf.size()});
  std::vector<Request*> reqs{s0, r0};
  cluster.wait_all(reqs);
  a.release(s0);
  b.release(r0);
  Request* s1 = b.isend(cluster.gate(1, 0), tag,
                        util::ConstBytes{buf.data(), buf.size()});
  Request* r1 = a.irecv(cluster.gate(0, 1), tag,
                        util::MutableBytes{buf.data(), buf.size()});
  reqs = {s1, r1};
  cluster.wait_all(reqs);
  b.release(s1);
  a.release(r1);
}

TEST(AllocChurn, SteadyPingPongIsAllocationFree) {
  Cluster cluster{};
  std::vector<std::byte> buf(4096);
  for (uint64_t r = 0; r < 50; ++r) pingpong_round(cluster, buf, r);
  const AllocSnapshot warm = snapshot(cluster);

  for (uint64_t r = 50; r < 550; ++r) pingpong_round(cluster, buf, r);
  expect_flat(warm, snapshot(cluster));
}

// Reliability arms a retransmit timer per packet and cancels it on ack —
// the cancel-heaviest shape the engine has. Timer slots and event nodes
// must recycle, not accumulate.
TEST(AllocChurn, ReliablePingPongIsAllocationFree) {
  ClusterOptions options;
  options.core.reliability = true;
  Cluster cluster(std::move(options));
  std::vector<std::byte> buf(4096);
  for (uint64_t r = 0; r < 50; ++r) pingpong_round(cluster, buf, r);
  const AllocSnapshot warm = snapshot(cluster);

  for (uint64_t r = 50; r < 550; ++r) pingpong_round(cluster, buf, r);
  expect_flat(warm, snapshot(cluster));
}

// Tombstone GC soak: completed-rendezvous and cancelled-receive
// tombstones must be reaped once the ack floor moves past them, not
// accumulate forever — and the reaping itself must not disturb the
// allocation-free steady state.
TEST(AllocChurn, TombstoneReapUnderRendezvousAndCancelSoak) {
  ClusterOptions options;
  options.core.reliability = true;
  options.core.rdv_threshold_override = 4096;  // 8K pingpongs go rendezvous
  Cluster cluster(std::move(options));
  std::vector<std::byte> buf(8192);

  auto soak_round = [&](uint64_t round) {
    pingpong_round(cluster, buf, round);
    // A receive that never matches, cancelled: leaves a tombstone for
    // the reaper to collect once the window moves past its birth floor.
    Core& b = cluster.core(1);
    Request* orphan = b.irecv(cluster.gate(1, 0), Tag((1ull << 20) + round),
                              util::MutableBytes{buf.data(), buf.size()});
    EXPECT_TRUE(b.cancel(orphan));
    ASSERT_TRUE(orphan->done());
    b.release(orphan);
  };

  for (uint64_t r = 0; r < 64; ++r) soak_round(r);
  const AllocSnapshot warm = snapshot(cluster);
  for (uint64_t r = 64; r < 400; ++r) soak_round(r);
  expect_flat(warm, snapshot(cluster));

  uint64_t reaped = 0;
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    reaped += cluster.core(static_cast<simnet::NodeId>(n))
                  .stats()
                  .tombstones_reaped;
  }
  EXPECT_GT(reaped, 0u) << "no tombstone was ever garbage-collected";
}

// 64-rank alltoall: every rank exchanges an eager message with every other
// rank each round. After one warm-up round sizes the pools across all 64
// engines, further rounds must be allocation-free through every counter.
TEST(AllocChurn, Alltoall64RankSteadyState) {
  constexpr size_t kRanks = 64;
  ClusterOptions options;
  options.nodes = kRanks;
  Cluster cluster(std::move(options));
  std::vector<std::byte> payload(512);

  auto alltoall_round = [&](uint64_t round) {
    std::vector<Request*> reqs;
    reqs.reserve(kRanks * (kRanks - 1) * 2);
    std::vector<std::pair<simnet::NodeId, Request*>> owners;
    owners.reserve(reqs.capacity());
    for (simnet::NodeId i = 0; i < kRanks; ++i) {
      for (simnet::NodeId j = 0; j < kRanks; ++j) {
        if (i == j) continue;
        const Tag tag = (round << 16) | (Tag(i) << 8) | Tag(j);
        Request* r = cluster.core(j).irecv(
            cluster.gate(j, i), tag,
            util::MutableBytes{payload.data(), payload.size()});
        Request* s = cluster.core(i).isend(
            cluster.gate(i, j), tag,
            util::ConstBytes{payload.data(), payload.size()});
        reqs.push_back(r);
        reqs.push_back(s);
        owners.emplace_back(j, r);
        owners.emplace_back(i, s);
      }
    }
    cluster.wait_all(reqs);
    for (auto& [node, req] : owners) cluster.core(node).release(req);
  };

  alltoall_round(0);
  alltoall_round(1);
  const AllocSnapshot warm = snapshot(cluster);

  for (uint64_t r = 2; r < 6; ++r) alltoall_round(r);
  expect_flat(warm, snapshot(cluster));
}

}  // namespace
}  // namespace nmad::core
