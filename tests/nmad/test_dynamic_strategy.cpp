// Runtime strategy switching (§3.2 "dynamically ... selectable
// optimization function") and request byte-count reporting.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/stack.hpp"
#include "nmad/api/session.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

using api::Cluster;

// Sends a burst of `n` small messages A→B and returns the number of
// physical packets emitted for it.
uint64_t burst_packets(Cluster& cluster, int n, int tag_base) {
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  const uint64_t before = a.stats().packets_sent;
  std::vector<std::vector<std::byte>> in(n), out(n);
  std::vector<Request*> reqs;
  for (int i = 0; i < n; ++i) {
    in[i].resize(64);
    out[i].resize(64);
    reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(tag_base + i),
                           {in[i].data(), 64}));
  }
  for (int i = 0; i < n; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(tag_base + i),
                           util::ConstBytes{out[i].data(), 64}));
  }
  cluster.wait_all(reqs);
  for (auto* r : reqs) {
    (r->kind() == Request::Kind::kSend ? a : b).release(r);
  }
  return a.stats().packets_sent - before;
}

TEST(DynamicStrategy, SwitchTakesEffectImmediately) {
  api::ClusterOptions options;
  options.core.strategy = "default";
  Cluster cluster(std::move(options));
  Core& a = cluster.core(0);

  // Under `default`, a burst of 12 messages needs 12 packets.
  EXPECT_EQ(burst_packets(cluster, 12, 0), 12u);

  // Switch to aggregation at runtime: the very next burst coalesces.
  ASSERT_TRUE(a.set_strategy("aggreg").is_ok());
  EXPECT_EQ(a.strategy_name(), "aggreg");
  EXPECT_LT(burst_packets(cluster, 12, 100), 6u);

  // And back.
  ASSERT_TRUE(a.set_strategy("default").is_ok());
  EXPECT_EQ(burst_packets(cluster, 12, 200), 12u);
}

TEST(DynamicStrategy, UnknownNameRejectedWithoutSideEffects) {
  Cluster cluster;
  Core& a = cluster.core(0);
  const util::Status st = a.set_strategy("no-such-strategy");
  EXPECT_EQ(st.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(a.strategy_name(), "aggreg");  // unchanged
}

TEST(DynamicStrategy, SwitchWithPendingWindowIsSafe) {
  api::ClusterOptions options;
  options.core.strategy = "default";
  Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  // Fill the window while the NIC is busy, switch strategies mid-flight,
  // then let everything drain under the new policy.
  constexpr int kN = 10;
  std::vector<std::vector<std::byte>> in(kN), out(kN);
  std::vector<Request*> reqs;
  for (int i = 0; i < kN; ++i) {
    in[i].resize(256);
    out[i].resize(256);
    util::fill_pattern({out[i].data(), 256}, i);
    reqs.push_back(b.irecv(cluster.gate(1, 0), Tag(i),
                           {in[i].data(), 256}));
  }
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                           util::ConstBytes{out[i].data(), 256}));
  }
  ASSERT_GT(a.window_size(cluster.gate(0, 1)), 0u);
  ASSERT_TRUE(a.set_strategy("aggreg").is_ok());
  cluster.wait_all(reqs);
  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), 256}, i)) << i;
  }
  for (auto* r : reqs) {
    (r->kind() == Request::Kind::kSend ? a : b).release(r);
  }
}

TEST(RequestCounts, ReceivedBytesReported) {
  for (auto impl : {baseline::StackImpl::kMadMpi,
                    baseline::StackImpl::kMpich}) {
    baseline::StackOptions options;
    options.impl = impl;
    baseline::MpiStack stack(std::move(options));
    const mpi::Datatype byte = mpi::Datatype::byte_type();

    std::vector<std::byte> out(777), in(1024);
    auto* r = stack.ep(1).irecv(in.data(), 1024, byte, 0, 0,
                                mpi::kCommWorld);
    auto* s = stack.ep(0).isend(out.data(), 777, byte, 1, 0,
                                mpi::kCommWorld);
    stack.ep(1).wait(r);
    stack.ep(0).wait(s);
    EXPECT_EQ(r->received_bytes(), 777u)
        << baseline::stack_impl_name(impl);
    EXPECT_EQ(s->received_bytes(), 0u);
    stack.ep(0).free_request(s);
    stack.ep(1).free_request(r);
  }
}

}  // namespace
}  // namespace nmad::core
