// Asymmetric rail configurations: one side restricts a gate to a subset
// of rails; the CTS rail negotiation must converge on the intersection.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/core/core.hpp"
#include "nmad/drivers/sim_driver.hpp"
#include "nmad/runtime/sim_runtime.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

struct AsymWorld {
  simnet::SimWorld world;
  simnet::Fabric fabric{world};
  std::unique_ptr<runtime::SimRuntime> rt_a;
  std::unique_ptr<runtime::SimRuntime> rt_b;
  std::unique_ptr<Core> a;
  std::unique_ptr<Core> b;
  GateId a_to_b = 0;
  GateId b_to_a = 0;

  // Node A uses both rails; node B's gate is restricted to `b_rails`.
  explicit AsymWorld(std::vector<RailIndex> b_rails) {
    fabric.add_node(simnet::opteron_2006_profile());
    fabric.add_node(simnet::opteron_2006_profile());
    fabric.add_rail(simnet::mx_myri10g_profile());
    fabric.add_rail(simnet::elan_quadrics_profile());

    CoreConfig config;
    config.strategy = "split_balance";
    rt_a = std::make_unique<runtime::SimRuntime>(world, fabric.node(0));
    rt_b = std::make_unique<runtime::SimRuntime>(world, fabric.node(1));
    a = std::make_unique<Core>(*rt_a, config);
    b = std::make_unique<Core>(*rt_b, config);
    for (int r = 0; r < 2; ++r) {
      NMAD_ASSERT(
          a->add_rail(std::make_unique<drivers::SimDriver>(
                          world, fabric.node(0),
                          fabric.node(0).nic(static_cast<RailIndex>(r))))
              .is_ok());
      NMAD_ASSERT(
          b->add_rail(std::make_unique<drivers::SimDriver>(
                          world, fabric.node(1),
                          fabric.node(1).nic(static_cast<RailIndex>(r))))
              .is_ok());
    }
    auto ga = a->connect(1);
    NMAD_ASSERT(ga.has_value());
    a_to_b = ga.value();
    auto gb = b->connect(0, std::move(b_rails));
    NMAD_ASSERT(gb.has_value());
    b_to_a = gb.value();
  }

  void wait(Request* req) {
    ASSERT_TRUE(world.run_until([req]() { return req->done(); }));
  }
};

TEST(AsymmetricRails, RendezvousUsesOnlyTheReceiversRails) {
  // B only posts sinks on rail 0: A's split_balance must confine the bulk
  // to rail 0 even though its own gate spans both rails.
  AsymWorld w({0});
  const size_t len = 1 << 20;
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), len}, 5);

  auto* recv = w.b->irecv(w.b_to_a, 1, util::MutableBytes{in.data(), len});
  auto* send = w.a->isend(w.a_to_b, 1, util::ConstBytes{out.data(), len});
  w.wait(send);
  w.wait(recv);

  EXPECT_TRUE(util::check_pattern({in.data(), len}, 5));
  EXPECT_GT(w.fabric.node(0).nic(0).counters().bulk_sent, 0u);
  EXPECT_EQ(w.fabric.node(0).nic(1).counters().bulk_sent, 0u);
  w.a->release(send);
  w.b->release(recv);
}

TEST(AsymmetricRails, QuadricsOnlyReceiverStillWorks) {
  AsymWorld w({1});
  const size_t len = 256 * 1024;
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), len}, 9);

  auto* recv = w.b->irecv(w.b_to_a, 1, util::MutableBytes{in.data(), len});
  auto* send = w.a->isend(w.a_to_b, 1, util::ConstBytes{out.data(), len});
  w.wait(send);
  w.wait(recv);

  EXPECT_TRUE(util::check_pattern({in.data(), len}, 9));
  EXPECT_EQ(w.fabric.node(0).nic(0).counters().bulk_sent, 0u);
  EXPECT_GT(w.fabric.node(0).nic(1).counters().bulk_sent, 0u);
  w.a->release(send);
  w.b->release(recv);
}

}  // namespace
}  // namespace nmad::core
