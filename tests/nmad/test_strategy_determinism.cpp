// Strategy election determinism: the same window contents driven by the
// same seed must produce an identical packet sequence for every builtin
// strategy — the property that makes chaos-harness seed replay exact.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "simnet/trace.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

// The traffic mix: an aggregation burst of small messages, a rendezvous
// block, and a mid-size message, posted identically on every run.
void drive_traffic(api::Cluster& cluster) {
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  const GateId ab = cluster.gate(0, 1);
  const GateId ba = cluster.gate(1, 0);
  std::vector<std::pair<Core*, Request*>> owned;
  std::vector<Request*> reqs;
  const auto track = [&](Core& c, Request* r) {
    owned.emplace_back(&c, r);
    reqs.push_back(r);
  };

  constexpr int kSmall = 12;
  std::vector<std::vector<std::byte>> sin(kSmall), sout(kSmall);
  for (int i = 0; i < kSmall; ++i) {
    sin[i].resize(700);
    sout[i].resize(700);
    util::fill_pattern({sout[i].data(), 700}, i);
    track(b, b.irecv(ba, Tag(i), {sin[i].data(), 700}));
  }
  const size_t big = 100 * 1024;
  std::vector<std::byte> big_in(big), big_out(big);
  util::fill_pattern({big_out.data(), big}, 42);
  track(b, b.irecv(ba, 50, {big_in.data(), big}));
  std::vector<std::byte> mid_in(6000), mid_out(6000);
  util::fill_pattern({mid_out.data(), 6000}, 43);
  track(b, b.irecv(ba, 51, {mid_in.data(), 6000}));

  for (int i = 0; i < kSmall; ++i) {
    track(a, a.isend(ab, Tag(i), util::ConstBytes{sout[i].data(), 700}));
  }
  track(a, a.isend(ab, 50, util::ConstBytes{big_out.data(), big}));
  track(a, a.isend(ab, 51, util::ConstBytes{mid_out.data(), 6000}));
  cluster.wait_all(reqs);
  cluster.world().run_to_quiescence();
  for (auto& [owner, r] : owned) owner->release(r);
}

// One full run: build a cluster for (strategy, fault seed), attach a
// trace to every NIC, drive the fixed traffic, return the packet log.
simnet::TraceLog run_once(const std::string& strategy,
                          uint64_t fault_seed) {
  api::ClusterOptions options;
  simnet::NicProfile rail = simnet::mx_myri10g_profile();
  if (fault_seed != 0) {
    // A lossy fabric adds retransmissions to the schedule; those must
    // replay identically too (the NIC dice are seeded).
    rail.fault.frame_drop_prob = 0.05;
    rail.fault.seed = fault_seed;
  }
  options.rails = {std::move(rail)};
  options.core.strategy = strategy;
  options.core.reliability = true;
  options.core.ack_timeout_us = 200.0;
  options.core.ack_delay_us = 5.0;
  api::Cluster cluster(std::move(options));
  simnet::TraceLog log;
  cluster.fabric().node(0).nic(0).set_trace(&log);
  cluster.fabric().node(1).nic(0).set_trace(&log);
  drive_traffic(cluster);
  return log;
}

void expect_identical(const simnet::TraceLog& x, const simnet::TraceLog& y,
                      const std::string& label) {
  ASSERT_EQ(x.size(), y.size()) << label;
  for (size_t i = 0; i < x.size(); ++i) {
    const simnet::TraceEvent& e = x.events()[i];
    const simnet::TraceEvent& f = y.events()[i];
    ASSERT_EQ(e.at, f.at) << label << " event " << i;
    ASSERT_EQ(e.kind, f.kind) << label << " event " << i;
    ASSERT_EQ(e.node, f.node) << label << " event " << i;
    ASSERT_EQ(e.rail, f.rail) << label << " event " << i;
    ASSERT_EQ(e.bytes, f.bytes) << label << " event " << i;
  }
}

class StrategyDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyDeterminism, IdenticalPacketSequenceOnLosslessFabric) {
  const std::string strategy = GetParam();
  expect_identical(run_once(strategy, 0), run_once(strategy, 0), strategy);
}

TEST_P(StrategyDeterminism, IdenticalPacketSequenceUnderSeededLoss) {
  const std::string strategy = GetParam();
  expect_identical(run_once(strategy, 77), run_once(strategy, 77),
                   strategy);
}

TEST_P(StrategyDeterminism, DifferentFaultSeedsActuallyDiverge) {
  // Sanity check that the comparison has teeth: different dice give a
  // different retransmission schedule (identical logs here would mean
  // the trace misses the packet level entirely).
  const std::string strategy = GetParam();
  const simnet::TraceLog x = run_once(strategy, 77);
  const simnet::TraceLog y = run_once(strategy, 78);
  bool differs = x.size() != y.size();
  for (size_t i = 0; !differs && i < x.size(); ++i) {
    differs = x.events()[i].at != y.events()[i].at ||
              x.events()[i].bytes != y.events()[i].bytes;
  }
  EXPECT_TRUE(differs) << strategy;
}

INSTANTIATE_TEST_SUITE_P(AllBuiltins, StrategyDeterminism,
                         ::testing::Values("default", "aggreg",
                                           "aggreg_extended",
                                           "split_balance"));

}  // namespace
}  // namespace nmad::core
