// Track-0 wire format: encode/decode round trips, header size constants,
// and malformed-packet rejection.
#include <gtest/gtest.h>

#include <iterator>
#include <vector>

#include "nmad/core/wire_format.hpp"
#include "util/rng.hpp"

namespace nmad::core {
namespace {

std::vector<WireChunk> decode_all(util::ConstBytes packet,
                                  util::Status* status = nullptr) {
  std::vector<WireChunk> chunks;
  util::Status st = decode_packet(packet, [&](const WireChunk& c) {
    WireChunk copy = c;
    // Payload views alias the packet; copy them out for comparison.
    chunks.push_back(copy);
  });
  if (status != nullptr) *status = st;
  return chunks;
}

TEST(WireFormat, DataRoundTrip) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  encode_data_header(w, kFlagLast, /*tag=*/0xABCD000012345678ull,
                     /*seq=*/42, /*len=*/5);
  w.bytes("hello", 5);

  util::Status st;
  auto chunks = decode_all(buf.view(), &st);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].kind, ChunkKind::kData);
  EXPECT_EQ(chunks[0].flags, kFlagLast);
  EXPECT_EQ(chunks[0].tag, 0xABCD000012345678ull);
  EXPECT_EQ(chunks[0].seq, 42u);
  EXPECT_EQ(chunks[0].len, 5u);
  EXPECT_EQ(chunks[0].total, 5u);  // data chunks imply total == len
  ASSERT_EQ(chunks[0].payload.size(), 5u);
  EXPECT_EQ(std::memcmp(chunks[0].payload.data(), "hello", 5), 0);
}

TEST(WireFormat, FragCarriesOffsetAndTotal) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  encode_frag_header(w, 0, 7, 3, /*len=*/4, /*offset=*/100, /*total=*/500);
  w.bytes("frag", 4);

  auto chunks = decode_all(buf.view());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].kind, ChunkKind::kFrag);
  EXPECT_EQ(chunks[0].offset, 100u);
  EXPECT_EQ(chunks[0].total, 500u);
  EXPECT_EQ(chunks[0].len, 4u);
}

TEST(WireFormat, SprayFragRoundTrip) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  encode_spray_frag_header(w, /*flags=*/0, /*tag=*/9, /*seq=*/12,
                           /*len=*/5, /*offset=*/8192, /*total=*/65536,
                           /*frag_seq=*/3, /*epoch=*/2);
  w.bytes("spray", 5);

  auto chunks = decode_all(buf.view());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].kind, ChunkKind::kSprayFrag);
  EXPECT_EQ(chunks[0].tag, 9u);
  EXPECT_EQ(chunks[0].seq, 12u);
  EXPECT_EQ(chunks[0].offset, 8192u);
  EXPECT_EQ(chunks[0].total, 65536u);
  EXPECT_EQ(chunks[0].frag_seq, 3u);
  EXPECT_EQ(chunks[0].epoch, 2u);
  ASSERT_EQ(chunks[0].payload.size(), 5u);
  EXPECT_EQ(std::memcmp(chunks[0].payload.data(), "spray", 5), 0);
}

TEST(WireFormat, RtsRoundTrip) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  encode_rts(w, 0, 9, 1, /*len=*/262144, /*offset=*/64, /*total=*/262208,
             /*cookie=*/0xC00C1Eull);

  auto chunks = decode_all(buf.view());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].kind, ChunkKind::kRts);
  EXPECT_EQ(chunks[0].len, 262144u);
  EXPECT_EQ(chunks[0].offset, 64u);
  EXPECT_EQ(chunks[0].total, 262208u);
  EXPECT_EQ(chunks[0].cookie, 0xC00C1Eull);
  EXPECT_TRUE(chunks[0].payload.empty());
}

TEST(WireFormat, CtsCarriesRailList) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  encode_cts(w, 0, 9, 1, /*cookie=*/0xFEEDull, {0, 2, 3});

  auto chunks = decode_all(buf.view());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].kind, ChunkKind::kCts);
  EXPECT_EQ(chunks[0].cookie, 0xFEEDull);
  EXPECT_EQ(chunks[0].rails, (std::vector<uint8_t>{0, 2, 3}));
}

TEST(WireFormat, MultiplexedPacketPreservesOrder) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 3);
  encode_cts(w, 0, 1, 0, 0x1, {0});
  encode_data_header(w, 0, 2, 5, 3);
  w.bytes("abc", 3);
  encode_rts(w, 0, 3, 7, 100, 0, 100, 0x2);

  auto chunks = decode_all(buf.view());
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].kind, ChunkKind::kCts);
  EXPECT_EQ(chunks[1].kind, ChunkKind::kData);
  EXPECT_EQ(chunks[2].kind, ChunkKind::kRts);
}

TEST(WireFormat, HeaderSizeConstantsMatchEncoders) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 0);
  EXPECT_EQ(buf.size(), kPacketHeaderBytes);

  util::ByteBuffer d;
  util::WireWriter wd(d);
  encode_data_header(wd, 0, 1, 1, 0);
  EXPECT_EQ(d.size(), kDataHeaderBytes);

  util::ByteBuffer f;
  util::WireWriter wf(f);
  encode_frag_header(wf, 0, 1, 1, 0, 0, 0);
  EXPECT_EQ(f.size(), kFragHeaderBytes);

  util::ByteBuffer r;
  util::WireWriter wr(r);
  encode_rts(wr, 0, 1, 1, 0, 0, 0, 0);
  EXPECT_EQ(r.size(), kRtsHeaderBytes);

  util::ByteBuffer c;
  util::WireWriter wc(c);
  encode_cts(wc, 0, 1, 1, 0, {});
  EXPECT_EQ(c.size(), kCtsHeaderBytes);

  util::ByteBuffer cr;
  util::WireWriter wcr(cr);
  encode_credit(wcr, 0, 0);
  EXPECT_EQ(cr.size(), kCreditHeaderBytes);
}

TEST(WireFormat, CreditRoundTrip) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  encode_credit(w, /*credit_bytes=*/0x1234567890ull, /*credit_chunks=*/77);

  auto chunks = decode_all(buf.view());
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].kind, ChunkKind::kCredit);
  EXPECT_EQ(chunks[0].credit_bytes, 0x1234567890ull);
  EXPECT_EQ(chunks[0].credit_chunks, 77u);
  EXPECT_TRUE(chunks[0].payload.empty());
}

TEST(WireFormat, ChunkWireBytesMatchesEncodedSize) {
  EXPECT_EQ(chunk_wire_bytes(ChunkKind::kData, 10), kDataHeaderBytes + 10);
  EXPECT_EQ(chunk_wire_bytes(ChunkKind::kFrag, 10), kFragHeaderBytes + 10);
  EXPECT_EQ(chunk_wire_bytes(ChunkKind::kRts, 999), kRtsHeaderBytes);
  EXPECT_EQ(chunk_wire_bytes(ChunkKind::kCts, 0, 3), kCtsHeaderBytes + 3);
}

TEST(WireFormat, TruncatedPacketRejected) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  encode_data_header(w, 0, 1, 1, /*len=*/100);  // but no payload follows

  util::Status st;
  decode_all(buf.view(), &st);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), util::StatusCode::kTruncated);
}

TEST(WireFormat, TrailingGarbageRejected) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  encode_data_header(w, 0, 1, 1, 0);
  w.u32(0xDEAD);  // trailing junk

  util::Status st;
  decode_all(buf.view(), &st);
  EXPECT_FALSE(st.is_ok());
}

TEST(WireFormat, UnknownKindRejected) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 1);
  w.u8(0xEE);  // bogus kind
  w.u8(0);
  w.u64(0);
  w.u32(0);

  util::Status st;
  decode_all(buf.view(), &st);
  EXPECT_FALSE(st.is_ok());
}

TEST(WireFormat, EmptyPacketIsValid) {
  util::ByteBuffer buf;
  util::WireWriter w(buf);
  encode_packet_header(w, 0);
  util::Status st;
  auto chunks = decode_all(buf.view(), &st);
  EXPECT_TRUE(st.is_ok());
  EXPECT_TRUE(chunks.empty());
}

// Property: random packets survive encode→decode with all fields intact.
TEST(WireFormat, RandomMultiplexRoundTripProperty) {
  util::Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = static_cast<int>(rng.next_range(1, 12));
    struct Expect {
      ChunkKind kind;
      Tag tag;
      SeqNum seq;
      uint32_t len, offset, total;
      uint64_t cookie;
      std::vector<std::byte> payload;
      std::vector<uint8_t> rails;
      std::vector<uint32_t> sacks;
      std::vector<BulkAck> bulk_acks;
      uint64_t credit_bytes = 0, credit_chunks = 0;
      uint32_t frag_seq = 0, epoch = 0;
    };
    std::vector<Expect> expected;
    util::ByteBuffer buf;
    util::WireWriter w(buf);
    encode_packet_header(w, static_cast<uint16_t>(n));
    for (int i = 0; i < n; ++i) {
      Expect e;
      // Every multiplexable kind: 1..6 plus kSprayFrag (heartbeats ride
      // their own raw frames, never a multiplexed packet).
      static constexpr ChunkKind kKinds[] = {
          ChunkKind::kData, ChunkKind::kFrag,   ChunkKind::kRts,
          ChunkKind::kCts,  ChunkKind::kAck,    ChunkKind::kCredit,
          ChunkKind::kSprayFrag};
      e.kind = kKinds[rng.next_below(std::size(kKinds))];
      e.tag = rng.next_u64();
      e.seq = static_cast<SeqNum>(rng.next_u64());
      e.len = static_cast<uint32_t>(rng.next_below(64));
      e.offset = static_cast<uint32_t>(rng.next_u64());
      e.total = static_cast<uint32_t>(rng.next_u64());
      e.cookie = rng.next_u64();
      switch (e.kind) {
        case ChunkKind::kData:
          e.payload.resize(e.len);
          for (auto& b : e.payload) {
            b = static_cast<std::byte>(rng.next_below(256));
          }
          encode_data_header(w, 0, e.tag, e.seq, e.len);
          w.bytes(e.payload.data(), e.payload.size());
          break;
        case ChunkKind::kFrag:
          e.payload.resize(e.len);
          for (auto& b : e.payload) {
            b = static_cast<std::byte>(rng.next_below(256));
          }
          encode_frag_header(w, 0, e.tag, e.seq, e.len, e.offset, e.total);
          w.bytes(e.payload.data(), e.payload.size());
          break;
        case ChunkKind::kRts:
          encode_rts(w, 0, e.tag, e.seq, e.len, e.offset, e.total, e.cookie);
          break;
        case ChunkKind::kCts: {
          const size_t n_rails = rng.next_below(4);
          for (size_t k = 0; k < n_rails; ++k) {
            e.rails.push_back(static_cast<uint8_t>(rng.next_below(8)));
          }
          encode_cts(w, 0, e.tag, e.seq, e.cookie, e.rails);
          break;
        }
        case ChunkKind::kAck: {
          e.tag = 0;  // acks carry no message identity
          const size_t n_sacks = rng.next_below(6);
          for (size_t k = 0; k < n_sacks; ++k) {
            e.sacks.push_back(static_cast<uint32_t>(rng.next_u64()));
          }
          const size_t n_bulk = rng.next_below(4);
          for (size_t k = 0; k < n_bulk; ++k) {
            BulkAck a;
            a.cookie = rng.next_u64();
            a.offset = static_cast<uint32_t>(rng.next_u64());
            a.len = static_cast<uint32_t>(rng.next_u64());
            e.bulk_acks.push_back(a);
          }
          encode_ack(w, e.seq, e.sacks, e.bulk_acks);
          break;
        }
        case ChunkKind::kCredit:
          e.tag = 0;  // credits carry no message identity
          e.seq = 0;
          e.credit_bytes = rng.next_u64();
          e.credit_chunks = rng.next_u64();
          encode_credit(w, e.credit_bytes, e.credit_chunks);
          break;
        case ChunkKind::kSprayFrag:
          e.payload.resize(e.len);
          for (auto& b : e.payload) {
            b = static_cast<std::byte>(rng.next_below(256));
          }
          e.frag_seq = static_cast<uint32_t>(rng.next_u64());
          e.epoch = static_cast<uint32_t>(rng.next_below(8));
          encode_spray_frag_header(w, 0, e.tag, e.seq, e.len, e.offset,
                                   e.total, e.frag_seq, e.epoch);
          w.bytes(e.payload.data(), e.payload.size());
          break;
        default:
          FAIL() << "unreachable kind";
      }
      expected.push_back(std::move(e));
    }

    size_t i = 0;
    util::Status st = decode_packet(buf.view(), [&](const WireChunk& c) {
      ASSERT_LT(i, expected.size());
      const Expect& e = expected[i];
      EXPECT_EQ(c.kind, e.kind);
      EXPECT_EQ(c.tag, e.tag);
      EXPECT_EQ(c.seq, e.seq);
      if (e.kind == ChunkKind::kData || e.kind == ChunkKind::kFrag ||
          e.kind == ChunkKind::kSprayFrag) {
        ASSERT_EQ(c.payload.size(), e.payload.size());
        if (!e.payload.empty()) {
          EXPECT_EQ(std::memcmp(c.payload.data(), e.payload.data(),
                                e.payload.size()),
                    0);
        }
      }
      if (e.kind == ChunkKind::kFrag || e.kind == ChunkKind::kRts ||
          e.kind == ChunkKind::kSprayFrag) {
        EXPECT_EQ(c.offset, e.offset);
        EXPECT_EQ(c.total, e.total);
      }
      if (e.kind == ChunkKind::kSprayFrag) {
        EXPECT_EQ(c.frag_seq, e.frag_seq);
        EXPECT_EQ(c.epoch, e.epoch);
      }
      if (e.kind == ChunkKind::kRts || e.kind == ChunkKind::kCts) {
        EXPECT_EQ(c.cookie, e.cookie);
      }
      if (e.kind == ChunkKind::kCts) {
        EXPECT_EQ(c.rails, e.rails);
      }
      if (e.kind == ChunkKind::kCredit) {
        EXPECT_EQ(c.credit_bytes, e.credit_bytes);
        EXPECT_EQ(c.credit_chunks, e.credit_chunks);
      }
      if (e.kind == ChunkKind::kAck) {
        EXPECT_EQ(c.sacks, e.sacks);
        ASSERT_EQ(c.bulk_acks.size(), e.bulk_acks.size());
        for (size_t k = 0; k < e.bulk_acks.size(); ++k) {
          EXPECT_EQ(c.bulk_acks[k].cookie, e.bulk_acks[k].cookie);
          EXPECT_EQ(c.bulk_acks[k].offset, e.bulk_acks[k].offset);
          EXPECT_EQ(c.bulk_acks[k].len, e.bulk_acks[k].len);
        }
      }
      ++i;
    });
    ASSERT_TRUE(st.is_ok());
    EXPECT_EQ(i, expected.size());
  }
}

}  // namespace
}  // namespace nmad::core
