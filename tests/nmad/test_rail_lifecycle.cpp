// Rail lifecycle: heartbeat liveness keeps idle rails warm, silence
// drives alive -> suspect -> dead, dead rails are probed and revived
// through the epoch-fenced probation handshake, rendezvous bulk survives
// a rail dying and reviving mid-flight exactly once, and Core::drain /
// close_gate give the engine a graceful shutdown path.
#include <gtest/gtest.h>

#include <sstream>
#include <cstring>
#include <string>
#include <vector>

#include "harness/oracle.hpp"
#include "madmpi/madmpi.hpp"
#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

// Health thresholds scaled to the 200µs ack timeout the reliability
// tests use: suspect after 3 missed beacon intervals, dead after 6.
CoreConfig health_config() {
  CoreConfig c;
  c.rail_health = true;  // implies reliability
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  c.rail_dead_after = 0;  // the health layer owns rail death here
  c.max_retries = 20;
  c.heartbeat_interval_us = 50.0;
  c.suspect_after_us = 150.0;
  c.dead_after_us = 300.0;
  c.probe_interval_us = 100.0;
  c.probation_replies = 2;
  return c;
}

simnet::NicProfile rail_with_blackout(double begin_us, double end_us) {
  simnet::NicProfile p = simnet::mx_myri10g_profile();
  p.fault.blackouts = {{begin_us, end_us}};
  return p;
}

// Pumps the shared loop until `t_us`. With rail health on the world is
// never quiescent (the monitors re-arm forever), so this always returns
// at the requested time.
void step_until(api::Cluster& cluster, double t_us) {
  while (cluster.now() < t_us && cluster.world().run_one()) {
  }
}

// Disarms every node's health monitors and pumps the world dry. A beacon
// packet in flight at teardown would otherwise hold its pool chunk past
// the engine's destructor (the tx-done callback never fires).
void settle(api::Cluster& cluster) {
  for (simnet::NodeId n = 0; n < cluster.node_count(); ++n) {
    cluster.core(n).stop_health_monitors();
  }
  while (cluster.world().run_one()) {
  }
}

std::string dump_core(Core& core) {
  std::ostringstream mem;
  core.debug_dump(mem);
  return mem.str();
}

TEST(RailLifecycle, HeartbeatsKeepIdleRailsAlive) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(), simnet::mx_myri10g_profile()};
  options.core = health_config();
  api::Cluster cluster(std::move(options));

  // No application traffic at all: only the standalone beacons keep the
  // peers convinced both rails are up.
  step_until(cluster, 5000.0);
  for (simnet::NodeId n = 0; n < 2; ++n) {
    Core& core = cluster.core(n);
    for (RailIndex r = 0; r < 2; ++r) {
      EXPECT_TRUE(core.rail_alive(r)) << "node " << n << " rail " << r;
      EXPECT_EQ(core.rail_health_state(r), RailHealth::kAlive);
      EXPECT_EQ(core.rail_epoch(r), 0u);
    }
    EXPECT_GT(core.stats().heartbeats_sent, 0u);
    EXPECT_GT(core.stats().heartbeats_received, 0u);
    EXPECT_EQ(core.stats().rails_suspected, 0u);
    EXPECT_EQ(core.stats().rails_failed, 0u);
  }

  const std::string dump = dump_core(cluster.core(0));
  EXPECT_NE(dump.find("health=alive"), std::string::npos) << dump;
  EXPECT_NE(dump.find("beacons="), std::string::npos) << dump;

  // Disarming the monitors lets the world go quiescent again.
  cluster.core(0).stop_health_monitors();
  cluster.core(1).stop_health_monitors();
  while (cluster.world().run_one()) {
  }
  EXPECT_TRUE(cluster.world().idle());
}

TEST(RailLifecycle, BlackoutWalksSuspectDeadProbationAlive) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   rail_with_blackout(1000.0, 1700.0)};
  options.core = health_config();
  api::Cluster cluster(std::move(options));

  step_until(cluster, 1250.0);  // ~250µs of silence: suspect, not yet dead
  EXPECT_EQ(cluster.core(0).rail_health_state(1), RailHealth::kSuspect);
  EXPECT_TRUE(cluster.core(0).rail_alive(1));

  step_until(cluster, 1500.0);  // past dead_after_us
  for (simnet::NodeId n = 0; n < 2; ++n) {
    EXPECT_FALSE(cluster.core(n).rail_alive(1)) << "node " << n;
    EXPECT_GE(cluster.core(n).rail_epoch(1), 1u);
    EXPECT_GE(cluster.core(n).stats().rails_suspected, 1u);
    EXPECT_GE(cluster.core(n).stats().rails_failed, 1u);
    EXPECT_TRUE(cluster.core(n).rail_alive(0));  // the clean rail is fine
  }
  // The dead rail shows up in the operator dump with its epoch.
  const std::string dump = dump_core(cluster.core(0));
  EXPECT_NE(dump.find("health="), std::string::npos) << dump;

  step_until(cluster, 2800.0);  // blackout over; probes revive the rail
  for (simnet::NodeId n = 0; n < 2; ++n) {
    EXPECT_TRUE(cluster.core(n).rail_alive(1)) << "node " << n;
    EXPECT_EQ(cluster.core(n).rail_health_state(1), RailHealth::kAlive);
    EXPECT_GE(cluster.core(n).stats().probes_sent, 1u);
    EXPECT_GE(cluster.core(n).stats().rails_revived, 1u);
  }
  settle(cluster);
}

// The satellite regression: a rail dies while a rendezvous bulk transfer
// is mid-flight, its slices are re-elected onto the surviving rail, the
// rail revives afterwards, and the oracle confirms exactly-once delivery.
TEST(RailLifecycle, RendezvousBulkSurvivesRailFlapExactlyOnce) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   rail_with_blackout(50.0, 700.0)};
  options.core = health_config();
  api::Cluster cluster(std::move(options));
  harness::ProtocolOracle oracle;

  const size_t big = 256 * 1024;
  std::vector<std::byte> out(big), in(big, std::byte{0xEE});
  util::fill_pattern({out.data(), big}, 42);

  const size_t ri = oracle.recv_posted(1, 0, 7, {in.data(), big});
  Request* recv = cluster.core(1).irecv(cluster.gate(1, 0), Tag(7),
                                        util::MutableBytes{in.data(), big});
  recv->set_on_complete([&] {
    oracle.recv_completed(
        1, 0, 7, ri, recv->status(),
        static_cast<RecvRequest*>(recv)->received_bytes());
  });
  const size_t si = oracle.send_posted(0, 1, 7, {out.data(), big});
  Request* send = cluster.core(0).isend(cluster.gate(0, 1), Tag(7),
                                        util::ConstBytes{out.data(), big});
  send->set_on_complete(
      [&] { oracle.send_completed(0, 1, 7, si, send->status()); });

  // The blackout darkens rail 1 almost immediately, so part of the bulk
  // is granted to a rail that dies under it. Pump well past the window
  // so the probation handshake also completes.
  step_until(cluster, 8000.0);
  ASSERT_TRUE(send->done());
  ASSERT_TRUE(recv->done());
  EXPECT_TRUE(send->status().is_ok()) << send->status().to_string();
  EXPECT_TRUE(recv->status().is_ok()) << recv->status().to_string();
  EXPECT_TRUE(util::check_pattern({in.data(), big}, 42));

  // Both engines saw the death and the revival.
  for (simnet::NodeId n = 0; n < 2; ++n) {
    EXPECT_GE(cluster.core(n).stats().rails_failed, 1u) << "node " << n;
    EXPECT_GE(cluster.core(n).stats().rails_revived, 1u) << "node " << n;
    EXPECT_TRUE(cluster.core(n).rail_alive(1)) << "node " << n;
  }

  cluster.core(0).release(send);
  cluster.core(1).release(recv);
  oracle.finalize(cluster, /*allow_gate_failures=*/false);
  EXPECT_TRUE(oracle.ok()) << (oracle.violations().empty()
                                   ? ""
                                   : oracle.violations().front());
  settle(cluster);
}

TEST(RailLifecycle, OperationalKillSelfHealsThroughProbation) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(), simnet::mx_myri10g_profile()};
  options.core = health_config();
  api::Cluster cluster(std::move(options));

  step_until(cluster, 500.0);
  cluster.core(0).fail_rail(1);
  EXPECT_FALSE(cluster.core(0).rail_alive(1));
  EXPECT_EQ(cluster.core(0).rail_epoch(1), 1u);

  // The link itself is healthy, so the probe/probation handshake brings
  // the operationally-killed rail straight back.
  step_until(cluster, 2000.0);
  EXPECT_TRUE(cluster.core(0).rail_alive(1));
  EXPECT_EQ(cluster.core(0).rail_health_state(1), RailHealth::kAlive);
  EXPECT_GE(cluster.core(0).stats().rails_revived, 1u);

  // revive_rail is the manual mirror of the same transition.
  cluster.core(0).fail_rail(1);
  EXPECT_EQ(cluster.core(0).rail_epoch(1), 2u);
  cluster.core(0).revive_rail(1);
  EXPECT_TRUE(cluster.core(0).rail_alive(1));
  settle(cluster);
}

TEST(RailLifecycle, DrainFlushesLoadedFourRankCluster) {
  api::ClusterOptions options;
  options.nodes = 4;
  options.rails = {simnet::mx_myri10g_profile(), simnet::mx_myri10g_profile()};
  options.core = health_config();
  api::Cluster cluster(std::move(options));

  // Full mesh: every ordered pair exchanges one rendezvous block and a
  // couple of eager messages, all posted before anything drains.
  struct Xfer {
    std::vector<std::byte> out, in;
    Request* send = nullptr;
    Request* recv = nullptr;
    int src = 0, dst = 0;
  };
  std::vector<Xfer> xfers;
  const size_t sizes[] = {1024, 3000, 96 * 1024};
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      if (src == dst) continue;
      for (size_t s = 0; s < 3; ++s) {
        Xfer x;
        x.src = src;
        x.dst = dst;
        x.out.resize(sizes[s]);
        x.in.assign(sizes[s], std::byte{0});
        util::fill_pattern({x.out.data(), x.out.size()},
                           static_cast<uint64_t>(src * 16 + dst * 4 + s));
        x.recv = cluster.core(dst).irecv(
            cluster.gate(dst, src), Tag(s),
            util::MutableBytes{x.in.data(), x.in.size()});
        xfers.push_back(std::move(x));
      }
    }
  }
  for (Xfer& x : xfers) {
    const size_t s = x.out.size() == 1024 ? 0 : x.out.size() == 3000 ? 1 : 2;
    x.send = cluster.core(x.src).isend(
        cluster.gate(x.src, x.dst), Tag(s),
        util::ConstBytes{x.out.data(), x.out.size()});
  }

  // Drain every engine under load; each drain pumps the shared loop, so
  // later drains find progressively less left to flush.
  for (simnet::NodeId n = 0; n < 4; ++n) {
    const util::Status st = cluster.core(n).drain(1.0e6);
    EXPECT_TRUE(st.is_ok()) << "node " << n << ": " << st.to_string();
    EXPECT_TRUE(cluster.core(n).drained());
    EXPECT_GE(cluster.core(n).stats().drains_completed, 1u);
  }
  for (Xfer& x : xfers) {
    ASSERT_TRUE(x.send->done() && x.recv->done());
    EXPECT_TRUE(x.send->status().is_ok());
    EXPECT_TRUE(x.recv->status().is_ok());
    EXPECT_TRUE(util::check_pattern(
        {x.in.data(), x.in.size()},
        static_cast<uint64_t>(x.src * 16 + x.dst * 4 +
                              (x.in.size() == 1024       ? 0
                               : x.in.size() == 3000 ? 1
                                                     : 2))));
    cluster.core(x.src).release(x.send);
    cluster.core(x.dst).release(x.recv);
  }
  settle(cluster);
}

TEST(RailLifecycle, DrainDeadlineExceedsInsteadOfHanging) {
  api::ClusterOptions options;
  options.nodes = 2;
  CoreConfig cfg;
  cfg.reliability = true;
  cfg.ack_timeout_us = 200.0;
  cfg.ack_delay_us = 5.0;
  options.core = cfg;
  api::Cluster cluster(std::move(options));

  // A rendezvous send whose receive is never posted cannot flush: the
  // RTS waits for a CTS that will not come.
  const size_t big = 128 * 1024;
  std::vector<std::byte> out(big);
  util::fill_pattern({out.data(), big}, 9);
  Request* send = cluster.core(0).isend(cluster.gate(0, 1), Tag(3),
                                        util::ConstBytes{out.data(), big});

  util::Status st = cluster.core(0).drain(5000.0);
  EXPECT_EQ(st.code(), util::StatusCode::kDeadlineExceeded)
      << st.to_string();
  EXPECT_FALSE(cluster.core(0).drained());

  // The engine stays fully usable: post the receive, and the next drain
  // flushes clean.
  std::vector<std::byte> in(big, std::byte{0});
  Request* recv = cluster.core(1).irecv(cluster.gate(1, 0), Tag(3),
                                        util::MutableBytes{in.data(), big});
  st = cluster.core(0).drain(1.0e6);
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_TRUE(send->done());
  EXPECT_TRUE(recv->done());
  EXPECT_TRUE(util::check_pattern({in.data(), big}, 9));
  cluster.core(0).release(send);
  cluster.core(1).release(recv);
}

TEST(RailLifecycle, CloseGateCancelsReceivesWithoutFailingStats) {
  api::Cluster cluster;
  std::vector<std::byte> in(512, std::byte{0});
  Request* recv = cluster.core(1).irecv(cluster.gate(1, 0), Tag(1),
                                        util::MutableBytes{in.data(), 512});
  cluster.core(1).close_gate(cluster.gate(1, 0));
  ASSERT_TRUE(recv->done());
  EXPECT_EQ(recv->status().code(), util::StatusCode::kClosed);
  EXPECT_EQ(cluster.core(1).stats().gates_closed, 1u);
  EXPECT_EQ(cluster.core(1).stats().gates_failed, 0u);

  // The closed gate refuses new traffic immediately.
  std::vector<std::byte> out(64);
  Request* send = cluster.core(1).isend(cluster.gate(1, 0), Tag(2),
                                        util::ConstBytes{out.data(), 64});
  ASSERT_TRUE(send->done());
  EXPECT_FALSE(send->status().is_ok());
  cluster.core(1).release(recv);
  cluster.core(1).release(send);
}

}  // namespace
}  // namespace nmad::core

namespace nmad::mpi {
namespace {

TEST(RailLifecycle, FinalizeDrainsInsteadOfAbandoning) {
  // Reliability gives finalize an ack floor to wait on: drain returning
  // ok then implies the peer heard every packet, not just that the local
  // DMA engines went quiet.
  api::ClusterOptions options;
  options.core.reliability = true;
  options.core.ack_timeout_us = 200.0;
  options.core.ack_delay_us = 5.0;
  MadMpiWorld world(std::move(options));
  Endpoint& a = world.ep(0);
  Endpoint& b = world.ep(1);

  const int n = 16 * 1024;
  std::vector<char> out(n, 'x'), in(n, 0);
  Request* recv = b.irecv(in.data(), n, Datatype::byte_type(), 0, 5, kCommWorld);
  Request* send = a.isend(out.data(), n, Datatype::byte_type(), 1, 5, kCommWorld);

  // Finalize flushes the in-flight traffic instead of abandoning it.
  EXPECT_TRUE(a.finalize(1.0e6).is_ok());
  EXPECT_TRUE(send->done());
  EXPECT_TRUE(recv->done());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), n), 0);
  a.free_request(send);
  b.free_request(recv);

  // Nothing left in flight: finalize is idempotent and cheap.
  EXPECT_TRUE(a.finalize().is_ok());
  EXPECT_TRUE(b.finalize().is_ok());
}

}  // namespace
}  // namespace nmad::mpi
