// CompletionQueue (event-driven reaping) and the optional wire checksum.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/api/completion_queue.hpp"
#include "nmad/api/session.hpp"
#include "nmad/core/wire_format.hpp"
#include "util/buffer.hpp"

namespace nmad {
namespace {

using api::Cluster;
using api::ClusterOptions;
using api::CompletionQueue;

TEST(CompletionQueue, DeliversInCompletionOrder) {
  Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  // A big rendezvous recv (slow) tracked before a tiny eager recv (fast):
  // the queue must surface the tiny one first.
  const size_t big = 512 * 1024;
  std::vector<std::byte> big_in(big), big_out(big), tiny_in(32),
      tiny_out(32);
  util::fill_pattern({big_out.data(), big}, 1);
  util::fill_pattern({tiny_out.data(), 32}, 2);

  CompletionQueue cq(cluster.world());
  auto* slow = b.irecv(cluster.gate(1, 0), 1, {big_in.data(), big});
  auto* fast = b.irecv(cluster.gate(1, 0), 2, {tiny_in.data(), 32});
  cq.track(slow);
  cq.track(fast);
  EXPECT_EQ(cq.pending(), 2u);
  EXPECT_EQ(cq.ready(), 0u);
  EXPECT_EQ(cq.poll(), nullptr);

  auto* s1 = a.isend(cluster.gate(0, 1), 1,
                     util::ConstBytes{big_out.data(), big});
  auto* s2 = a.isend(cluster.gate(0, 1), 2,
                     util::ConstBytes{tiny_out.data(), 32});

  core::Request* first = cq.wait_next();
  EXPECT_EQ(first, fast);
  core::Request* second = cq.wait_next();
  EXPECT_EQ(second, slow);
  EXPECT_EQ(cq.pending(), 0u);

  EXPECT_TRUE(util::check_pattern({tiny_in.data(), 32}, 2));
  EXPECT_TRUE(util::check_pattern({big_in.data(), big}, 1));

  cluster.wait(s1);
  cluster.wait(s2);
  a.release(s1);
  a.release(s2);
  b.release(slow);
  b.release(fast);
}

TEST(CompletionQueue, AlreadyDoneRequestIsImmediatelyReady) {
  Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);
  std::vector<std::byte> in(16), out(16);
  auto* r = b.irecv(cluster.gate(1, 0), 1, {in.data(), 16});
  auto* s = a.isend(cluster.gate(0, 1), 1, util::ConstBytes{out.data(), 16});
  cluster.wait(r);
  cluster.wait(s);

  CompletionQueue cq(cluster.world());
  cq.track(r);
  EXPECT_EQ(cq.ready(), 1u);
  EXPECT_EQ(cq.poll(), r);
  a.release(s);
  b.release(r);
}

TEST(WireChecksum, EndToEndWithChecksumsEnabled) {
  ClusterOptions options;
  options.core.wire_checksum = true;
  Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  // Mixed workload: aggregated smalls + rendezvous; every track-0 packet
  // carries and passes a checksum.
  std::vector<std::vector<std::byte>> in(6), out(6);
  std::vector<core::Request*> reqs;
  for (int i = 0; i < 6; ++i) {
    in[i].resize(512);
    out[i].resize(512);
    util::fill_pattern({out[i].data(), 512}, i);
    reqs.push_back(b.irecv(cluster.gate(1, 0), core::Tag(i),
                           {in[i].data(), 512}));
  }
  const size_t big = 128 * 1024;
  std::vector<std::byte> big_in(big), big_out(big);
  util::fill_pattern({big_out.data(), big}, 50);
  reqs.push_back(b.irecv(cluster.gate(1, 0), 99, {big_in.data(), big}));

  for (int i = 0; i < 6; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), core::Tag(i),
                           util::ConstBytes{out[i].data(), 512}));
  }
  reqs.push_back(a.isend(cluster.gate(0, 1), 99,
                         util::ConstBytes{big_out.data(), big}));
  cluster.wait_all(reqs);

  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), 512}, i)) << i;
  }
  EXPECT_TRUE(util::check_pattern({big_in.data(), big}, 50));
  for (auto* r : reqs) {
    (r->kind() == core::Request::Kind::kSend ? a : b).release(r);
  }
}

TEST(WireChecksum, BuilderEmitsVerifiableTrailer) {
  std::vector<std::byte> payload(64);
  util::fill_pattern({payload.data(), 64}, 3);
  core::OutChunk chunk;
  chunk.kind = core::ChunkKind::kData;
  chunk.tag = 5;
  chunk.total = 64;
  chunk.payload = {payload.data(), 64};

  core::PacketBuilder builder(1024, 0, /*checksum=*/true);
  builder.add(&chunk);
  const util::SegmentVec& segs = builder.finalize();

  util::ByteBuffer flat;
  flat.resize(segs.total_bytes());
  segs.gather_into(flat.view());

  int seen = 0;
  EXPECT_TRUE(core::decode_packet(flat.view(), [&](const core::WireChunk&) {
                ++seen;
              }).is_ok());
  EXPECT_EQ(seen, 1);
}

TEST(WireChecksum, CorruptionDetected) {
  std::vector<std::byte> payload(64);
  util::fill_pattern({payload.data(), 64}, 3);
  core::OutChunk chunk;
  chunk.kind = core::ChunkKind::kData;
  chunk.tag = 5;
  chunk.total = 64;
  chunk.payload = {payload.data(), 64};

  core::PacketBuilder builder(1024, 0, /*checksum=*/true);
  builder.add(&chunk);
  const util::SegmentVec& segs = builder.finalize();
  util::ByteBuffer flat;
  flat.resize(segs.total_bytes());
  segs.gather_into(flat.view());

  // Flip one payload bit: the decode must fail with a checksum error.
  flat.view()[core::kPacketHeaderBytes + core::kDataHeaderBytes + 10] ^=
      std::byte{0x01};
  const util::Status st =
      core::decode_packet(flat.view(), [](const core::WireChunk&) {});
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.to_string().find("checksum"), std::string::npos);
}

TEST(WireChecksum, UncheckedPacketsUnaffected) {
  // Without the flag, no trailer exists and parsing succeeds as before.
  std::vector<std::byte> payload(16);
  core::OutChunk chunk;
  chunk.kind = core::ChunkKind::kData;
  chunk.tag = 1;
  chunk.total = 16;
  chunk.payload = {payload.data(), 16};
  core::PacketBuilder builder(1024, 0);
  builder.add(&chunk);
  const util::SegmentVec& segs = builder.finalize();
  EXPECT_EQ(segs.total_bytes(), core::kPacketHeaderBytes +
                                    core::kDataHeaderBytes + 16);
}

TEST(Fnv32, KnownVectorsAndIncremental) {
  // FNV-1a("") = offset basis; FNV-1a("a") = 0xE40C292C.
  EXPECT_EQ(util::Fnv32::of({}), 2166136261u);
  const char a = 'a';
  EXPECT_EQ(util::Fnv32::of(util::as_bytes_view(&a, 1)), 0xE40C292Cu);

  // Incremental == one-shot.
  std::vector<std::byte> data(100);
  util::fill_pattern({data.data(), 100}, 9);
  util::Fnv32 h;
  h.update({data.data(), 40});
  h.update({data.data() + 40, 60});
  EXPECT_EQ(h.digest(), util::Fnv32::of({data.data(), 100}));
}

}  // namespace
}  // namespace nmad
