// Per-packet multipath spray: reorder-tolerant reassembly (out-of-order
// fragments, duplicate suppression, gap-fill after loss), microsecond
// failover when a rail turns suspect mid-spray, exactly-once delivery
// under the protocol oracle through repeated rail death/revival, and the
// tail claim itself — spraying beats the per-segment split strategy at
// p999 when a rail is flapping.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "harness/oracle.hpp"
#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/stats.hpp"

namespace nmad::core {
namespace {

// The rail-flap health tuning the lifecycle tests use, plus the spray
// path: rendezvous-class bodies cut into 8K fragments striped over every
// alive rail.
CoreConfig spray_config() {
  CoreConfig c;
  c.rail_health = true;  // implies reliability
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  c.rail_dead_after = 0;
  c.max_retries = 20;
  c.heartbeat_interval_us = 50.0;
  c.suspect_after_us = 150.0;
  c.dead_after_us = 300.0;
  c.probe_interval_us = 100.0;
  c.probation_replies = 2;
  c.spray = true;
  c.rdv_threshold_override = 4096;
  return c;
}

api::ClusterOptions two_rail_options(CoreConfig cfg,
                                     simnet::FaultProfile rail0_fault = {},
                                     simnet::FaultProfile rail1_fault = {}) {
  api::ClusterOptions options;
  options.nodes = 2;
  simnet::NicProfile rail0 = simnet::mx_myri10g_profile();
  simnet::NicProfile rail1 = rail0;
  rail0.fault = std::move(rail0_fault);
  rail1.fault = std::move(rail1_fault);
  options.rails = {rail0, rail1};
  options.core = cfg;
  return options;
}

// Disarms the health monitors and pumps the world dry so no beacon or
// in-flight packet outlives its pool at teardown.
void settle(api::Cluster& cluster) {
  for (simnet::NodeId n = 0; n < cluster.node_count(); ++n) {
    cluster.core(n).stop_health_monitors();
  }
  while (cluster.world().run_one()) {
  }
}

// Sends `count` messages of `bytes` node 0 -> node 1 one at a time, every
// payload verified byte-for-byte and every operation shadowed by the
// delivery oracle. Finalizes the oracle (exactly-once + invariants) after
// settling.
void exchange_under_oracle(api::Cluster& cluster, int count, size_t bytes) {
  harness::ProtocolOracle oracle;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  for (int i = 0; i < count; ++i) {
    std::vector<std::byte> out(bytes), in(bytes, std::byte{0xEE});
    util::fill_pattern({out.data(), bytes}, 30 + i);
    const uint64_t tag = static_cast<uint64_t>(i);
    const size_t ri =
        oracle.recv_posted(1, 0, tag, util::ConstBytes{in.data(), bytes});
    const size_t si =
        oracle.send_posted(0, 1, tag, util::ConstBytes{out.data(), bytes});
    auto* recv = b.irecv(cluster.gate(1, 0), Tag(tag),
                         util::MutableBytes{in.data(), bytes});
    auto* send =
        a.isend(cluster.gate(0, 1), Tag(tag), util::ConstBytes{out.data(), bytes});
    cluster.wait(recv);
    cluster.wait(send);
    oracle.recv_completed(1, 0, tag, ri, recv->status(),
                          recv->received_bytes());
    oracle.send_completed(0, 1, tag, si, send->status());
    EXPECT_TRUE(recv->status().is_ok()) << recv->status().to_string();
    EXPECT_EQ(std::memcmp(in.data(), out.data(), bytes), 0)
        << "payload mismatch on message " << i;
    a.release(send);
    b.release(recv);
  }
  settle(cluster);
  oracle.finalize(cluster);
  EXPECT_TRUE(oracle.ok());
  for (const std::string& v : oracle.violations()) ADD_FAILURE() << v;
}

TEST(Spray, ReassemblesOutOfOrderFragments) {
  // Heavy per-frame jitter on both rails: fragments routinely overtake
  // each other inside a rail on top of the cross-rail interleaving, so
  // the coverage map sees arbitrary arrival order.
  simnet::FaultProfile reorder;
  reorder.reorder_prob = 0.6;
  reorder.jitter_max_us = 60.0;
  reorder.seed = 11;
  api::Cluster cluster(two_rail_options(spray_config(), reorder, reorder));
  exchange_under_oracle(cluster, 6, 64 * 1024);

  const CoreStats& rx = cluster.core(1).stats();
  EXPECT_EQ(rx.spray_reassembled, 6u);
  EXPECT_GE(rx.spray_frags_rx, 6u * 8u);  // 64K in 8K fragments
  EXPECT_EQ(cluster.core(0).stats().spray_sends, 6u);
}

TEST(Spray, SuppressesDuplicateFragments) {
  // A duplicate the reliability layer cannot catch: a fragment crosses
  // rail 1 and is applied, a blackout then silences the rail before its
  // ack (jitter-delayed on rail 0) retires it, the sender turns the rail
  // suspect and re-issues the fragment on rail 0 under a fresh packet
  // seq — so the copy sails past packet-level dedup and the reassembly
  // coverage map is the only thing standing between it and double-write.
  simnet::FaultProfile ack_jitter;
  ack_jitter.reorder_prob = 0.5;
  ack_jitter.jitter_max_us = 400.0;
  ack_jitter.seed = 7;
  simnet::FaultProfile winking;
  for (int i = 0; i < 100; ++i) {
    const double begin = 150.0 + 600.0 * i;
    winking.blackouts.push_back({begin, begin + 180.0});
  }
  api::Cluster cluster(
      two_rail_options(spray_config(), ack_jitter, winking));
  exchange_under_oracle(cluster, 6, 256 * 1024);

  const CoreStats& rx = cluster.core(1).stats();
  EXPECT_EQ(rx.spray_reassembled, 6u);
  EXPECT_GT(rx.spray_frag_dups, 0u)
      << "fault schedule produced no in-flight duplicates (late="
      << rx.spray_frags_late << " fenced=" << rx.spray_frags_fenced
      << "); the test lost its bite";
}

TEST(Spray, FailoverReissuesFragmentsFromSuspectRail) {
  // Rail 1 is dark from the start: the fragments sprayed onto it vanish,
  // the heartbeat monitor turns the rail suspect at 150us, and the
  // scheduler re-issues the in-flight fragments on rail 0 — gap-fill,
  // without waiting for full death or per-packet retry exhaustion.
  simnet::FaultProfile dark;
  dark.blackouts = {{0.0, 2000.0}};
  api::Cluster cluster(two_rail_options(spray_config(), {}, dark));
  exchange_under_oracle(cluster, 1, 256 * 1024);

  const CoreStats& tx = cluster.core(0).stats();
  const CoreStats& rx = cluster.core(1).stats();
  EXPECT_GT(tx.spray_reissues, 0u);
  EXPECT_EQ(rx.spray_reassembled, 1u);
  // The failover latency digest saw every re-issue, at microsecond scale.
  EXPECT_EQ(tx.spray_reissue_latency_us.count(), tx.spray_reissues);
  EXPECT_LT(tx.spray_reissue_latency_us.max(), 1000.0);
}

TEST(Spray, ExactlyOnceThroughRepeatedRailFlap) {
  // Twenty rendezvous messages across a rail that dies and revives every
  // millisecond: sprayed fragments keep landing on a rail that is alive,
  // suspect, dead, or in probation depending on the instant, and every
  // message must still reassemble exactly once.
  simnet::FaultProfile flappy;
  for (int i = 0; i < 40; ++i) {
    const double begin = 200.0 + 1000.0 * i;
    flappy.blackouts.push_back({begin, begin + 400.0});
  }
  api::Cluster cluster(two_rail_options(spray_config(), {}, flappy));
  exchange_under_oracle(cluster, 20, 64 * 1024);

  const CoreStats& rx = cluster.core(1).stats();
  EXPECT_EQ(rx.spray_reassembled, 20u);
  EXPECT_EQ(cluster.core(0).stats().spray_sends, 20u);
}

// The tail claim: per-packet spraying beats the per-segment split
// strategy at p999 under a flapping rail. Spray re-issues in-flight
// fragments the moment the rail turns *suspect* (150us of silence);
// split waits for rail *death* (300us) or the ack-timeout retry ladder
// before its half of the body moves — so every blackout-hit round costs
// split the difference. Both sides run identical traffic, faults and
// health tuning; only the body scheduling differs.
TEST(Spray, BeatsSplitAtP999UnderRailFlap) {
  const size_t bytes = 64 * 1024;
  const int rounds = 150;
  auto run = [&](bool spray) {
    CoreConfig cfg = spray_config();
    // Conservative retry timer on both sides: recovery must come from
    // the health machinery, not from hammering retransmissions.
    cfg.ack_timeout_us = 500.0;
    if (!spray) {
      cfg.spray = false;
      cfg.strategy = "split_balance";
    }
    simnet::FaultProfile flappy;
    for (int i = 0; i < 400; ++i) {
      const double begin = 1000.0 + 1500.0 * i;
      flappy.blackouts.push_back({begin, begin + 400.0});
    }
    api::Cluster cluster(two_rail_options(cfg, {}, flappy));
    Core& a = cluster.core(0);
    Core& b = cluster.core(1);
    std::vector<std::byte> out(bytes), in(bytes), echo(bytes);
    util::fill_pattern({out.data(), bytes}, 3);
    util::QuantileDigest digest;
    for (int i = 0; i < rounds; ++i) {
      const double t0 = cluster.now();
      auto* rb = b.irecv(cluster.gate(1, 0), Tag(i),
                         util::MutableBytes{in.data(), bytes});
      auto* sa = a.isend(cluster.gate(0, 1), Tag(i),
                         util::ConstBytes{out.data(), bytes});
      cluster.wait(rb);
      auto* ra = a.irecv(cluster.gate(0, 1), Tag(1000 + i),
                         util::MutableBytes{echo.data(), bytes});
      auto* sb = b.isend(cluster.gate(1, 0), Tag(1000 + i),
                         util::ConstBytes{in.data(), bytes});
      cluster.wait(ra);
      cluster.wait(sa);
      cluster.wait(sb);
      a.release(sa);
      a.release(ra);
      b.release(rb);
      b.release(sb);
      digest.add(cluster.now() - t0);
    }
    settle(cluster);
    return digest;
  };

  const util::QuantileDigest spray = run(true);
  const util::QuantileDigest split = run(false);
  EXPECT_LT(spray.p999(), split.p999())
      << "spray p999 " << spray.p999() << "us vs split p999 "
      << split.p999() << "us";
  EXPECT_LT(spray.max(), split.max());
}

}  // namespace
}  // namespace nmad::core
