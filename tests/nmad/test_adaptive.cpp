// Gray-failure detection and closed-loop adaptive rail election: a rail
// that keeps beaconing while silently dropping frames must be caught by
// the score pipeline (not the silence monitor), the degraded state
// machine must not flap while the loss EWMA oscillates around its
// threshold, mid-transfer re-election must stay exactly-once under the
// protocol oracle, idle rails must accumulate latency samples from RTT
// probes, and the tail claim itself — adaptive election beats static
// spray at p999 when one rail degrades but never goes silent.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "harness/oracle.hpp"
#include "nmad/api/session.hpp"
#include "nmad/core/transfer_engine.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/stats.hpp"

namespace nmad::core {
namespace {

// The gray-failure tuning: silence thresholds far beyond anything the
// fault shapes produce (the rail must stay officially "alive" — only the
// score pipeline may catch it), spray on so election has stripes to
// re-home, rendezvous at 4K so 64K bodies fragment.
CoreConfig adaptive_config() {
  CoreConfig c;
  c.adaptive = true;  // implies rail_health, which implies reliability
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  c.rail_dead_after = 0;
  c.max_retries = 20;
  c.heartbeat_interval_us = 50.0;
  c.suspect_after_us = 400.0;
  c.dead_after_us = 2000.0;
  c.probe_interval_us = 100.0;
  c.probation_replies = 2;
  c.spray = true;
  c.rdv_threshold_override = 4096;
  return c;
}

api::ClusterOptions two_rail_options(CoreConfig cfg,
                                     simnet::FaultProfile rail0_fault = {},
                                     simnet::FaultProfile rail1_fault = {}) {
  api::ClusterOptions options;
  options.nodes = 2;
  simnet::NicProfile rail0 = simnet::mx_myri10g_profile();
  simnet::NicProfile rail1 = rail0;
  rail0.fault = std::move(rail0_fault);
  rail1.fault = std::move(rail1_fault);
  options.rails = {rail0, rail1};
  options.core = cfg;
  return options;
}

void settle(api::Cluster& cluster) {
  for (simnet::NodeId n = 0; n < cluster.node_count(); ++n) {
    cluster.core(n).stop_health_monitors();
  }
  while (cluster.world().run_one()) {
  }
}

// One verified 64K pingpong round, node 0 <-> node 1.
void pingpong_round(api::Cluster& cluster, int i, size_t bytes) {
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  std::vector<std::byte> out(bytes), in(bytes, std::byte{0xEE});
  util::fill_pattern({out.data(), bytes}, 30 + i);
  auto* recv = b.irecv(cluster.gate(1, 0), Tag(i),
                       util::MutableBytes{in.data(), bytes});
  auto* send =
      a.isend(cluster.gate(0, 1), Tag(i), util::ConstBytes{out.data(), bytes});
  cluster.wait(recv);
  cluster.wait(send);
  EXPECT_TRUE(recv->status().is_ok()) << recv->status().to_string();
  EXPECT_EQ(std::memcmp(in.data(), out.data(), bytes), 0)
      << "payload mismatch on round " << i;
  a.release(send);
  b.release(recv);
}

TEST(Adaptive, DetectsGrayRailWhileBeaconing) {
  // Rail 1 silently drops 8% of frames but beacons on time, so the
  // silence monitor never fires: the loss EWMA alone must push the rail
  // into kDegraded, and quickly — within a handful of ack timeouts.
  simnet::FaultProfile gray;
  gray.frame_drop_prob = 0.08;
  gray.seed = 0x6E47;
  api::Cluster cluster(two_rail_options(adaptive_config(), {}, gray));
  Core& a = cluster.core(0);

  double degraded_at = -1.0;
  for (int i = 0; i < 40; ++i) {
    pingpong_round(cluster, i, 64 * 1024);
    if (degraded_at < 0.0 &&
        a.rail_health_state(1) == RailHealth::kDegraded) {
      degraded_at = cluster.now();
    }
  }
  settle(cluster);

  EXPECT_GE(degraded_at, 0.0) << "gray rail was never marked degraded";
  EXPECT_LT(degraded_at, 20000.0)
      << "detection took " << degraded_at << "us of traffic";
  EXPECT_GE(a.stats().rails_degraded, 1u);
  // Detection came from the score pipeline, not from beacon silence:
  // the rail never looked suspect, let alone dead.
  EXPECT_EQ(a.stats().rails_suspected, 0u);
  EXPECT_EQ(a.stats().rails_failed, 0u);
  EXPECT_GT(a.transfer_rail(1).score_loss(), 0.0);
}

TEST(Adaptive, HysteresisPreventsDegradedFlapping) {
  // Under persistent loss the EWMA oscillates around the enter threshold
  // with every delivery/timeout sample; the sustain window, exit band and
  // minimum dwell must fold that into one (rarely two) clean entries
  // instead of a flap per sample.
  simnet::FaultProfile gray;
  gray.frame_drop_prob = 0.08;
  gray.seed = 0x1234;
  api::Cluster cluster(two_rail_options(adaptive_config(), {}, gray));

  for (int i = 0; i < 40; ++i) {
    pingpong_round(cluster, i, 64 * 1024);
  }
  const auto& rail1 =
      static_cast<const TransferEngine&>(cluster.core(0).transfer_rail(1));
  const uint32_t entries = rail1.degraded_entries();
  settle(cluster);

  EXPECT_GE(entries, 1u) << "gray rail was never marked degraded";
  EXPECT_LE(entries, 2u) << "degraded state flapped " << entries
                         << " times under steady loss";
}

TEST(Adaptive, MidTransferReElectionStaysExactlyOnce) {
  // Large sprayed bodies are in flight when the degraded transition
  // lands, so stripes get re-elected onto the healthy rail mid-transfer;
  // the oracle audits that every message still delivers exactly once and
  // every payload survives byte-for-byte.
  simnet::FaultProfile gray;
  gray.frame_drop_prob = 0.08;
  gray.seed = 0x6E47;
  api::Cluster cluster(two_rail_options(adaptive_config(), {}, gray));
  harness::ProtocolOracle oracle;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  const size_t bytes = 256 * 1024;
  for (int i = 0; i < 8; ++i) {
    std::vector<std::byte> out(bytes), in(bytes, std::byte{0xEE});
    util::fill_pattern({out.data(), bytes}, 60 + i);
    const uint64_t tag = static_cast<uint64_t>(i);
    const size_t ri =
        oracle.recv_posted(1, 0, tag, util::ConstBytes{in.data(), bytes});
    const size_t si =
        oracle.send_posted(0, 1, tag, util::ConstBytes{out.data(), bytes});
    auto* recv = b.irecv(cluster.gate(1, 0), Tag(tag),
                         util::MutableBytes{in.data(), bytes});
    auto* send =
        a.isend(cluster.gate(0, 1), Tag(tag), util::ConstBytes{out.data(), bytes});
    cluster.wait(recv);
    cluster.wait(send);
    oracle.recv_completed(1, 0, tag, ri, recv->status(),
                          recv->received_bytes());
    oracle.send_completed(0, 1, tag, si, send->status());
    EXPECT_EQ(std::memcmp(in.data(), out.data(), bytes), 0)
        << "payload mismatch on message " << i;
    a.release(send);
    b.release(recv);
  }
  settle(cluster);
  oracle.finalize(cluster);
  EXPECT_TRUE(oracle.ok());
  for (const std::string& v : oracle.violations()) ADD_FAILURE() << v;

  const CoreStats& tx = a.stats();
  EXPECT_GE(tx.rails_degraded, 1u);
  // The closed loop actually acted: in-flight stripes were re-issued off
  // the degraded rail and/or new stripe sets evicted it.
  EXPECT_GT(tx.degraded_reissues + tx.degraded_evictions, 0u);
  EXPECT_EQ(cluster.core(1).stats().spray_reassembled, 8u);
}

TEST(Adaptive, IdleRailAccumulatesRttProbeSamples) {
  // With no faults and all traffic eager on a quiet cluster, the rails
  // sit idle — yet election needs latency data for them. The alive-rail
  // RTT probes must keep the per-rail digest fed.
  CoreConfig cfg = adaptive_config();
  api::Cluster cluster(two_rail_options(cfg));
  // Establish gates with a little traffic, then let the world idle on
  // heartbeats and probes alone for a few milliseconds of virtual time.
  pingpong_round(cluster, 0, 1024);
  const double until = cluster.now() + 3000.0;
  cluster.world().run_until([&] { return cluster.now() >= until; });
  const CoreStats& st = cluster.core(0).stats();
  const auto& rail1 =
      static_cast<const TransferEngine&>(cluster.core(0).transfer_rail(1));
  const uint64_t samples = st.probe_rtt_samples;
  const size_t digest_count = rail1.latency_digest().count();
  settle(cluster);

  EXPECT_GT(samples, 0u) << "no probe RTTs were harvested on idle rails";
  EXPECT_GT(digest_count, 0u)
      << "idle rail 1 accumulated no latency samples";
}

// The tail claim: closed-loop adaptive election beats static spray at
// p999 when one rail degrades to 5% persistent frame loss but keeps
// beaconing. Static spray keeps striping onto the lossy rail and eats
// the ack-timeout retry ladder on every dropped fragment; adaptive
// election marks the rail degraded from its loss score, re-homes the
// in-flight stripes and elects healthy-only stripe sets until the rail
// recovers. Identical traffic, faults and health tuning on both sides —
// only CoreConfig::adaptive differs.
TEST(Adaptive, BeatsStaticSprayAtP999UnderGrayLoss) {
  const size_t bytes = 64 * 1024;
  const int rounds = 120;
  auto run = [&](bool adaptive) {
    CoreConfig cfg = adaptive_config();
    cfg.adaptive = adaptive;
    cfg.rail_health = true;  // static side keeps the silence monitor
    simnet::FaultProfile gray;
    gray.frame_drop_prob = 0.05;
    gray.seed = 0x6E47;
    api::Cluster cluster(two_rail_options(cfg, {}, gray));
    Core& a = cluster.core(0);
    Core& b = cluster.core(1);
    std::vector<std::byte> out(bytes), in(bytes), echo(bytes);
    util::fill_pattern({out.data(), bytes}, 3);
    util::QuantileDigest digest;
    for (int i = 0; i < rounds; ++i) {
      const double t0 = cluster.now();
      auto* rb = b.irecv(cluster.gate(1, 0), Tag(i),
                         util::MutableBytes{in.data(), bytes});
      auto* sa = a.isend(cluster.gate(0, 1), Tag(i),
                         util::ConstBytes{out.data(), bytes});
      cluster.wait(rb);
      auto* ra = a.irecv(cluster.gate(0, 1), Tag(1000 + i),
                         util::MutableBytes{echo.data(), bytes});
      auto* sb = b.isend(cluster.gate(1, 0), Tag(1000 + i),
                         util::ConstBytes{in.data(), bytes});
      cluster.wait(ra);
      cluster.wait(sa);
      cluster.wait(sb);
      a.release(sa);
      a.release(ra);
      b.release(rb);
      b.release(sb);
      digest.add(cluster.now() - t0);
    }
    settle(cluster);
    return digest;
  };

  const util::QuantileDigest adaptive = run(true);
  const util::QuantileDigest fixed = run(false);
  EXPECT_LT(adaptive.p999(), fixed.p999())
      << "adaptive p999 " << adaptive.p999() << "us vs static p999 "
      << fixed.p999() << "us";
  EXPECT_LT(adaptive.mean(), fixed.mean())
      << "adaptive mean " << adaptive.mean() << "us vs static mean "
      << fixed.mean() << "us";
}

}  // namespace
}  // namespace nmad::core
