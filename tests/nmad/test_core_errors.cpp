// Engine configuration/API error paths and introspection.
#include <gtest/gtest.h>

#include "nmad/api/session.hpp"
#include "nmad/drivers/sim_driver.hpp"
#include "nmad/runtime/sim_runtime.hpp"
#include "simnet/profiles.hpp"

namespace nmad::core {
namespace {

TEST(CoreErrors, ConnectTwiceToSamePeerRejected) {
  simnet::SimWorld world;
  simnet::Fabric fabric(world);
  fabric.add_node(simnet::opteron_2006_profile());
  fabric.add_node(simnet::opteron_2006_profile());
  fabric.add_rail(simnet::mx_myri10g_profile());

  runtime::SimRuntime rt(world, fabric.node(0));
  Core core(rt, CoreConfig{});
  ASSERT_TRUE(core.add_rail(std::make_unique<drivers::SimDriver>(
                                world, fabric.node(0),
                                fabric.node(0).nic(0)))
                  .is_ok());
  auto first = core.connect(1);
  ASSERT_TRUE(first.has_value());
  auto second = core.connect(1);
  EXPECT_FALSE(second.has_value());
  EXPECT_EQ(second.status().code(), util::StatusCode::kAlreadyExists);
}

TEST(CoreErrors, ConnectWithBadRailRejected) {
  simnet::SimWorld world;
  simnet::Fabric fabric(world);
  fabric.add_node(simnet::opteron_2006_profile());
  fabric.add_node(simnet::opteron_2006_profile());
  fabric.add_rail(simnet::mx_myri10g_profile());

  runtime::SimRuntime rt(world, fabric.node(0));
  Core core(rt, CoreConfig{});
  ASSERT_TRUE(core.add_rail(std::make_unique<drivers::SimDriver>(
                                world, fabric.node(0),
                                fabric.node(0).nic(0)))
                  .is_ok());
  auto bad = core.connect(1, {5});
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kOutOfRange);

  auto empty = core.connect(1, {});
  EXPECT_FALSE(empty.has_value());
  EXPECT_EQ(empty.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(CoreErrors, AddRailAfterConnectRejected) {
  simnet::SimWorld world;
  simnet::Fabric fabric(world);
  fabric.add_node(simnet::opteron_2006_profile());
  fabric.add_node(simnet::opteron_2006_profile());
  fabric.add_rail(simnet::mx_myri10g_profile());
  fabric.add_rail(simnet::elan_quadrics_profile());

  runtime::SimRuntime rt(world, fabric.node(0));
  Core core(rt, CoreConfig{});
  ASSERT_TRUE(core.add_rail(std::make_unique<drivers::SimDriver>(
                                world, fabric.node(0),
                                fabric.node(0).nic(0)))
                  .is_ok());
  ASSERT_TRUE(core.connect(1).has_value());
  const util::Status st = core.add_rail(
      std::make_unique<drivers::SimDriver>(world, fabric.node(0),
                                           fabric.node(0).nic(1)));
  EXPECT_EQ(st.code(), util::StatusCode::kFailedPrecondition);
}

TEST(CoreErrors, UnknownStrategyAborts) {
  simnet::SimWorld world;
  simnet::Fabric fabric(world);
  fabric.add_node(simnet::opteron_2006_profile());
  CoreConfig config;
  config.strategy = "definitely-not-a-strategy";
  runtime::SimRuntime rt(world, fabric.node(0));
  EXPECT_DEATH(Core(rt, config), "unknown strategy");
}

TEST(CoreErrors, ThresholdOverrideRespected) {
  api::ClusterOptions options;
  options.core.rdv_threshold_override = 4 * 1024;
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  // 8 KB is above the overridden 4 KB threshold → rendezvous.
  std::vector<std::byte> out(8 * 1024), in(8 * 1024);
  util::fill_pattern({out.data(), out.size()}, 1);
  auto* r = b.irecv(cluster.gate(1, 0), 1, {in.data(), in.size()});
  auto* s = a.isend(cluster.gate(0, 1), 1,
                    util::ConstBytes{out.data(), out.size()});
  cluster.wait(s);
  cluster.wait(r);
  EXPECT_EQ(a.stats().rdv_started, 1u);
  EXPECT_TRUE(util::check_pattern({in.data(), in.size()}, 1));
  a.release(s);
  b.release(r);
}

TEST(CoreErrors, IntrospectionSurfaces) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);

  EXPECT_EQ(a.rail_count(), 2u);
  EXPECT_EQ(a.gate_count(), 1u);
  EXPECT_EQ(a.strategy_name(), "aggreg");
  EXPECT_TRUE(a.rail_info(0).rdma);
  EXPECT_GT(a.rail_info(0).bandwidth_mbps, a.rail_info(1).bandwidth_mbps);

  // debug_dump renders without crashing and mentions the strategy.
  std::ostringstream mem;
  a.debug_dump(mem);
  const std::string text = mem.str();
  EXPECT_NE(text.find("aggreg"), std::string::npos);
  EXPECT_NE(text.find("gate 0"), std::string::npos);
}

}  // namespace
}  // namespace nmad::core
