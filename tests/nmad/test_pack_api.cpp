// The Madeleine-style incremental pack/unpack interface (§3.4).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nmad/api/pack.hpp"
#include "nmad/api/session.hpp"
#include "util/buffer.hpp"

namespace nmad::api {
namespace {

TEST(PackApi, MultiPieceMessageRoundTrips) {
  Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  struct Header {
    uint32_t service = 0;
    uint32_t arg_len = 0;
  };
  Header send_hdr{42, 1000};
  std::vector<std::byte> send_args(1000);
  util::fill_pattern({send_args.data(), 1000}, 3);

  Header recv_hdr;
  std::vector<std::byte> recv_args(1000);

  UnpackHandle u(b, cluster.gate(1, 0), 7);
  u.unpack(&recv_hdr, sizeof recv_hdr);
  u.unpack(recv_args.data(), recv_args.size());
  auto* recv = u.end();

  PackHandle p(a, cluster.gate(0, 1), 7);
  p.pack(&send_hdr, sizeof send_hdr);
  p.pack(send_args.data(), send_args.size());
  auto* send = p.end();

  cluster.wait(send);
  cluster.wait(recv);
  EXPECT_EQ(recv_hdr.service, 42u);
  EXPECT_EQ(recv_hdr.arg_len, 1000u);
  EXPECT_TRUE(util::check_pattern({recv_args.data(), 1000}, 3));
  a.release(send);
  b.release(recv);
}

TEST(PackApi, EmptyMessage) {
  Cluster cluster;
  UnpackHandle u(cluster.core(1), cluster.gate(1, 0), 1);
  auto* recv = u.end();
  PackHandle p(cluster.core(0), cluster.gate(0, 1), 1);
  auto* send = p.end();
  cluster.wait(send);
  cluster.wait(recv);
  EXPECT_TRUE(recv->status().is_ok());
  cluster.core(0).release(send);
  cluster.core(1).release(recv);
}

TEST(PackApi, ZeroLengthPiecesIgnored) {
  Cluster cluster;
  std::vector<std::byte> data(16), out(16);
  util::fill_pattern({data.data(), 16}, 5);

  UnpackHandle u(cluster.core(1), cluster.gate(1, 0), 2);
  u.unpack(out.data(), 0);
  u.unpack(out.data(), 16);
  auto* recv = u.end();

  PackHandle p(cluster.core(0), cluster.gate(0, 1), 2);
  p.pack(data.data(), 0);
  p.pack(data.data(), 16);
  auto* send = p.end();

  cluster.wait(send);
  cluster.wait(recv);
  EXPECT_TRUE(util::check_pattern({out.data(), 16}, 5));
  cluster.core(0).release(send);
  cluster.core(1).release(recv);
}

TEST(PackApi, LargePieceGoesRendezvous) {
  Cluster cluster;
  const size_t big = 512 * 1024;
  std::vector<std::byte> hdr(64), body(big), rhdr(64), rbody(big);
  util::fill_pattern({hdr.data(), 64}, 1);
  util::fill_pattern({body.data(), big}, 2);

  UnpackHandle u(cluster.core(1), cluster.gate(1, 0), 3);
  u.unpack(rhdr.data(), 64);
  u.unpack(rbody.data(), big);
  auto* recv = u.end();

  PackHandle p(cluster.core(0), cluster.gate(0, 1), 3);
  p.pack(hdr.data(), 64);
  p.pack(body.data(), big);
  auto* send = p.end();

  cluster.wait(send);
  cluster.wait(recv);
  EXPECT_EQ(cluster.core(0).stats().rdv_started, 1u);
  EXPECT_TRUE(util::check_pattern({rhdr.data(), 64}, 1));
  EXPECT_TRUE(util::check_pattern({rbody.data(), big}, 2));
  cluster.core(0).release(send);
  cluster.core(1).release(recv);
}

TEST(PackApi, PriorityHintTravelsFirst) {
  // Two messages: a low-priority bulk-ish one submitted first, then a
  // high-priority one. With the aggregation strategy, the high-priority
  // chunk must be packed ahead of the earlier normal chunk.
  Cluster cluster;
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<std::byte> bulk(8 * 1024), urgent(64);
  std::vector<std::byte> rbulk(8 * 1024), rurgent(64);
  util::fill_pattern({bulk.data(), bulk.size()}, 1);
  util::fill_pattern({urgent.data(), 64}, 2);

  std::vector<core::Request*> reqs;
  reqs.push_back(b.irecv(cluster.gate(1, 0), 10,
                         util::MutableBytes{rbulk.data(), rbulk.size()}));
  reqs.push_back(b.irecv(cluster.gate(1, 0), 11,
                         util::MutableBytes{rurgent.data(), 64}));

  // Fill the NIC with an initial message so both of the interesting
  // messages land in the window together.
  std::vector<std::byte> plug(64), rplug(64);
  reqs.push_back(b.irecv(cluster.gate(1, 0), 9,
                         util::MutableBytes{rplug.data(), 64}));
  reqs.push_back(a.isend(cluster.gate(0, 1), 9,
                         util::ConstBytes{plug.data(), 64}));

  PackHandle low(a, cluster.gate(0, 1), 10);
  low.pack(bulk.data(), bulk.size());
  reqs.push_back(low.end());

  PackHandle high(a, cluster.gate(0, 1), 11);
  high.set_priority(core::Priority::kHigh);
  high.pack(urgent.data(), 64);
  reqs.push_back(high.end());

  int order = 0, urgent_order = -1, bulk_order = -1;
  reqs[0]->set_on_complete([&] { bulk_order = order++; });
  reqs[1]->set_on_complete([&] { urgent_order = order++; });

  cluster.wait_all(reqs);
  EXPECT_TRUE(util::check_pattern({rurgent.data(), 64}, 2));
  EXPECT_TRUE(util::check_pattern({rbulk.data(), rbulk.size()}, 1));
  // High priority completes first even though it was submitted second.
  EXPECT_LT(urgent_order, bulk_order);

  for (auto* r : reqs) {
    (r->kind() == core::Request::Kind::kSend ? a : b).release(r);
  }
}

TEST(PackApi, RailPinningRestrictsTraffic) {
  ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<std::byte> data(256), out(256);
  util::fill_pattern({data.data(), 256}, 7);

  UnpackHandle u(b, cluster.gate(1, 0), 4);
  u.unpack(out.data(), 256);
  auto* recv = u.end();

  PackHandle p(a, cluster.gate(0, 1), 4);
  p.set_rail(1);  // force the Quadrics rail
  p.pack(data.data(), 256);
  auto* send = p.end();

  cluster.wait(send);
  cluster.wait(recv);
  EXPECT_TRUE(util::check_pattern({out.data(), 256}, 7));
  EXPECT_EQ(cluster.fabric().node(0).nic(0).counters().frames_sent, 0u);
  EXPECT_GT(cluster.fabric().node(0).nic(1).counters().frames_sent, 0u);
  a.release(send);
  b.release(recv);
}

}  // namespace
}  // namespace nmad::api
