// Strategy unit tests: election behaviour on hand-built windows.
//
// The window is intrusive and non-owning, so tests stack-allocate chunks,
// link them into a real gate, run the strategy, and unlink leftovers.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/api/session.hpp"
#include "nmad/core/core.hpp"
#include "nmad/core/strategy.hpp"
#include "nmad/strategies/builtin.hpp"
#include "simnet/profiles.hpp"

namespace nmad::core {
namespace {

class StrategyTest : public ::testing::Test {
 protected:
  StrategyTest() : cluster_(options()) {}

  static api::ClusterOptions options() {
    api::ClusterOptions o;
    o.rails = {simnet::mx_myri10g_profile(),
               simnet::elan_quadrics_profile()};
    return o;
  }

  Core& core() { return cluster_.core(0); }
  Gate& gate() { return core().gate(cluster_.gate(0, 1)); }
  const RailInfo& rail(RailIndex r) { return core().rail_info(r); }

  OutChunk data_chunk(Tag tag, util::ConstBytes payload,
                      Priority prio = Priority::kNormal,
                      RailIndex pinned = kAnyRail) {
    OutChunk c;
    c.kind = ChunkKind::kData;
    c.tag = tag;
    c.seq = 0;
    c.total = static_cast<uint32_t>(payload.size());
    c.payload = payload;
    c.prio = prio;
    if (prio == Priority::kHigh) c.flags |= kFlagPriority;
    c.pinned_rail = pinned;
    return c;
  }

  void TearDown() override {
    gate().sched.window.clear();      // chunks are test-owned
    gate().sched.ready_bulk.clear();  // jobs are test-owned
  }

  api::Cluster cluster_;
  std::vector<std::byte> buf_ = std::vector<std::byte>(64 * 1024);
};

TEST_F(StrategyTest, RegistryKnowsBuiltins) {
  ensure_builtin_strategies();
  const auto names = strategy_names();
  for (const char* expected :
       {"default", "aggreg", "aggreg_extended", "split_balance"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(make_strategy("nope"), nullptr);
  auto s = make_strategy("aggreg");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "aggreg");
}

TEST_F(StrategyTest, DefaultPacksExactlyOneChunk) {
  auto strategy = make_strategy("default");
  OutChunk a = data_chunk(1, {buf_.data(), 100});
  OutChunk b = data_chunk(2, {buf_.data(), 100});
  gate().sched.window.push_back(a);
  gate().sched.window.push_back(b);

  PacketBuilder builder(32 * 1024, 0);
  EXPECT_EQ(strategy->pack(core().scheduler(), gate(), rail(0), builder), 1u);
  EXPECT_EQ(builder.chunk_count(), 1u);
  EXPECT_EQ(builder.chunks()[0], &a);
  EXPECT_EQ(gate().sched.window.size(), 1u);
}

TEST_F(StrategyTest, AggregTakesEverythingThatFits) {
  auto strategy = make_strategy("aggreg");
  OutChunk a = data_chunk(1, {buf_.data(), 100});
  OutChunk b = data_chunk(2, {buf_.data(), 200});
  OutChunk c = data_chunk(3, {buf_.data(), 300});
  gate().sched.window.push_back(a);
  gate().sched.window.push_back(b);
  gate().sched.window.push_back(c);

  PacketBuilder builder(32 * 1024, 0);
  EXPECT_EQ(strategy->pack(core().scheduler(), gate(), rail(0), builder), 3u);
  EXPECT_TRUE(gate().sched.window.empty());
}

TEST_F(StrategyTest, AggregPutsControlFirst) {
  auto strategy = make_strategy("aggreg");
  OutChunk a = data_chunk(1, {buf_.data(), 100});
  OutChunk cts;
  cts.kind = ChunkKind::kCts;
  cts.tag = 9;
  cts.cookie = 7;
  cts.cts_rails = {0};
  gate().sched.window.push_back(a);
  gate().sched.window.push_back(cts);  // submitted after the data

  PacketBuilder builder(32 * 1024, 0);
  EXPECT_EQ(strategy->pack(core().scheduler(), gate(), rail(0), builder), 2u);
  // Control is reordered ahead of data (early delivery of control info).
  EXPECT_EQ(builder.chunks()[0], &cts);
  EXPECT_EQ(builder.chunks()[1], &a);
}

TEST_F(StrategyTest, AggregHonoursHighPriorityData) {
  auto strategy = make_strategy("aggreg");
  OutChunk normal = data_chunk(1, {buf_.data(), 64});
  OutChunk urgent = data_chunk(2, {buf_.data(), 64}, Priority::kHigh);
  gate().sched.window.push_back(normal);
  gate().sched.window.push_back(urgent);

  PacketBuilder builder(32 * 1024, 0);
  strategy->pack(core().scheduler(), gate(), rail(0), builder);
  EXPECT_EQ(builder.chunks()[0], &urgent);
}

TEST_F(StrategyTest, AggregReordersAroundNonFittingChunk) {
  auto strategy = make_strategy("aggreg");
  // The two-rail gate's aggregation limit is 16K (elan threshold). big
  // almost fills it; mid does not fit after it, but small does: the
  // strategy must skip mid and still take small.
  OutChunk big = data_chunk(1, {buf_.data(), 14 * 1024});
  OutChunk mid = data_chunk(2, {buf_.data(), 4 * 1024});
  OutChunk small = data_chunk(3, {buf_.data(), 512});
  gate().sched.window.push_back(big);
  gate().sched.window.push_back(mid);
  gate().sched.window.push_back(small);

  PacketBuilder builder(32 * 1024, 0);
  EXPECT_EQ(strategy->pack(core().scheduler(), gate(), rail(0), builder), 2u);
  EXPECT_EQ(builder.chunks()[0], &big);
  EXPECT_EQ(builder.chunks()[1], &small);
  EXPECT_EQ(gate().sched.window.size(), 1u);
  EXPECT_EQ(&gate().sched.window.front(), &mid);  // left for the next packet
}

TEST_F(StrategyTest, AggregRespectsRailPinning) {
  auto strategy = make_strategy("aggreg");
  OutChunk for_rail1 = data_chunk(1, {buf_.data(), 64}, Priority::kNormal,
                                  /*pinned=*/1);
  OutChunk any = data_chunk(2, {buf_.data(), 64});
  gate().sched.window.push_back(for_rail1);
  gate().sched.window.push_back(any);

  PacketBuilder builder(32 * 1024, 0);
  EXPECT_EQ(strategy->pack(core().scheduler(), gate(), rail(0), builder), 1u);
  EXPECT_EQ(builder.chunks()[0], &any);

  PacketBuilder builder1(32 * 1024, 0);
  EXPECT_EQ(strategy->pack(core().scheduler(), gate(), rail(1), builder1), 1u);
  EXPECT_EQ(builder1.chunks()[0], &for_rail1);
}

TEST_F(StrategyTest, AggregStopsAtRendezvousThreshold) {
  auto strategy = make_strategy("aggreg");
  // Gate threshold is min(mx 32K, elan 16K) = 16K: chunks beyond the
  // cumulated 16K stay in the window.
  ASSERT_EQ(gate().rdv_threshold, 16u * 1024);
  std::vector<OutChunk> chunks;
  chunks.reserve(8);
  for (int i = 0; i < 8; ++i) {
    chunks.push_back(data_chunk(Tag(i), {buf_.data(), 4 * 1024}));
  }
  for (auto& c : chunks) gate().sched.window.push_back(c);

  PacketBuilder builder(32 * 1024, 0);
  const size_t taken = strategy->pack(core().scheduler(), gate(), rail(0), builder);
  EXPECT_LT(taken, 8u);
  EXPECT_LE(builder.wire_bytes(), 16u * 1024);
  EXPECT_EQ(gate().sched.window.size(), 8u - taken);
  gate().sched.window.clear();  // leftovers die with `chunks` before TearDown
}

TEST_F(StrategyTest, AggregExtendedUsesFullPacketLimit) {
  auto strategy = make_strategy("aggreg_extended");
  std::vector<OutChunk> chunks;
  chunks.reserve(3);
  for (int i = 0; i < 3; ++i) {
    chunks.push_back(data_chunk(Tag(i), {buf_.data(), 5 * 1024}));
  }
  for (auto& c : chunks) gate().sched.window.push_back(c);

  // gate.max_packet = min(mx 32K, elan 16K) = 16K; 3×5K+headers just fits
  // under the packet limit but exceeds the 16K-3 rendezvous-bounded
  // aggregation of plain aggreg... use a tighter check: extended takes all
  // three, aggreg takes fewer under a reduced builder budget.
  PacketBuilder builder(16 * 1024, 0);
  EXPECT_EQ(strategy->pack(core().scheduler(), gate(), rail(0), builder), 3u);
}

TEST_F(StrategyTest, DefaultBulkTakesWholeRemaining) {
  auto strategy = make_strategy("default");
  BulkJob job;
  job.cookie = 1;
  job.gate = gate().id;
  job.body = {buf_.data(), 48 * 1024};
  job.rails = {0, 1};
  gate().sched.ready_bulk.push_back(job);

  auto decision = strategy->next_bulk(core().scheduler(), gate(), rail(0));
  EXPECT_EQ(decision.job, &job);
  EXPECT_EQ(decision.bytes, 48u * 1024);
}

TEST_F(StrategyTest, BulkDeclinedOnDisallowedRail) {
  auto strategy = make_strategy("default");
  BulkJob job;
  job.body = {buf_.data(), 1024};
  job.rails = {1};  // only rail 1 granted
  gate().sched.ready_bulk.push_back(job);

  EXPECT_EQ(strategy->next_bulk(core().scheduler(), gate(), rail(0)).job, nullptr);
  EXPECT_EQ(strategy->next_bulk(core().scheduler(), gate(), rail(1)).job, &job);
}

TEST_F(StrategyTest, SplitBalanceSharesByBandwidth) {
  auto strategy = make_strategy("split_balance");
  BulkJob job;
  job.body = {buf_.data(), 64 * 1024};
  job.rails = {0, 1};
  gate().sched.ready_bulk.push_back(job);

  // mx ≈ 1205 MB/s, elan ≈ 880 MB/s: rail 0's share ≈ 64K * 0.578.
  auto d0 = strategy->next_bulk(core().scheduler(), gate(), rail(0));
  ASSERT_EQ(d0.job, &job);
  const double frac =
      rail(0).bandwidth_mbps /
      (rail(0).bandwidth_mbps + rail(1).bandwidth_mbps);
  EXPECT_NEAR(static_cast<double>(d0.bytes), 64.0 * 1024 * frac,
              64.0 * 1024 * 0.02);
  // Consume it and let rail 1 take the rest.
  job.sent += d0.bytes;
  auto d1 = strategy->next_bulk(core().scheduler(), gate(), rail(1));
  ASSERT_EQ(d1.job, &job);
  EXPECT_EQ(d1.bytes, job.remaining());
}

TEST_F(StrategyTest, SplitBalanceDoesNotSplitSmallBodies) {
  auto strategy = make_strategy("split_balance");
  BulkJob job;
  job.body = {buf_.data(), 20 * 1024};  // below 2 * kMinSliceBytes
  job.rails = {0, 1};
  gate().sched.ready_bulk.push_back(job);

  auto d = strategy->next_bulk(core().scheduler(), gate(), rail(0));
  EXPECT_EQ(d.bytes, 20u * 1024);
}

TEST_F(StrategyTest, EmptyWindowPacksNothing) {
  for (const char* name :
       {"default", "aggreg", "aggreg_extended", "split_balance"}) {
    auto strategy = make_strategy(name);
    PacketBuilder builder(32 * 1024, 0);
    EXPECT_EQ(strategy->pack(core().scheduler(), gate(), rail(0), builder), 0u) << name;
    EXPECT_EQ(strategy->next_bulk(core().scheduler(), gate(), rail(0)).job, nullptr)
        << name;
  }
}

}  // namespace
}  // namespace nmad::core
