// Property suite for the wall-clock timer wheel — the same contract the
// simulation's calendar queue is held to in test_event_queue_property:
// pop in (deadline, insertion-order) order, O(1) generation-fenced
// cancel, allocation-free steady state. The wheel is single-threaded by
// itself, so a seeded differential run against a sorted reference model
// pins the ordering exactly; WallClockRuntime is then driven in
// threadless mode (background_thread = false, poll_timers pumped by the
// test) so its schedule/cancel/defer surface is deterministic too.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "nmad/runtime/timer_wheel.hpp"
#include "nmad/runtime/wallclock_runtime.hpp"
#include "util/inline_fn.hpp"
#include "util/rng.hpp"

namespace nmad::runtime {
namespace {

// Reference model: a plain vector ordered on demand by (at, seq).
struct ModelTimer {
  double at = 0.0;
  uint64_t seq = 0;
  uint64_t label = 0;
};

struct DiffResult {
  bool ok = true;
  size_t fail_op = 0;
  std::string what;
};

DiffResult run_diff(uint64_t seed, size_t nops, double tick_us) {
  util::Rng rng(seed);
  TimerWheel wheel(tick_us);
  std::vector<ModelTimer> model;
  std::vector<uint64_t> popped;
  std::vector<TimerId> ids;  // parallel to `model`
  double now = 0.0;
  uint64_t next_label = 0;
  uint64_t next_seq = 1;

  auto fail = [](size_t op, std::string what) {
    return DiffResult{false, op, std::move(what)};
  };
  auto model_min = [&model]() {
    return std::min_element(model.begin(), model.end(),
                            [](const ModelTimer& a, const ModelTimer& b) {
                              if (a.at != b.at) return a.at < b.at;
                              return a.seq < b.seq;
                            });
  };

  for (size_t op = 0; op < nops; ++op) {
    const uint64_t dice = rng.next_below(100);
    if (dice < 50 || model.empty()) {
      // Deadline shapes: near future, an exact tie with a pending timer,
      // already-due (at or before `now` — the wheel clamps these to the
      // cursor bucket), and rare far-future outliers many buckets out.
      double at;
      const uint64_t shape = rng.next_below(10);
      if (shape < 5 || model.empty()) {
        at = now + static_cast<double>(rng.next_below(1000)) * 0.25;
      } else if (shape < 7) {
        at = model[rng.next_below(model.size())].at;  // exact tie
        if (at < now) at = now;
      } else if (shape == 7) {
        at = now;  // due immediately, behind already-pending peers
      } else if (shape == 8) {
        at = now * 0.5;  // in the past: must still fire, clamped forward
      } else {
        at = now + 1e6 + static_cast<double>(rng.next_below(1000)) * 50.0;
      }
      const uint64_t label = next_label++;
      const TimerId id = wheel.schedule_at(
          at, [&popped, label] { popped.push_back(label); });
      if (id == 0) return fail(op, "schedule_at returned the 0 sentinel");
      ids.push_back(id);
      // The wheel keeps the raw deadline: clamping only moves the node
      // onto the cursor bucket, ordering stays (at, seq) over raw `at`.
      model.push_back(ModelTimer{at, next_seq++, label});
    } else if (dice < 70) {
      // Cancel a random pending timer.
      const size_t pick = rng.next_below(model.size());
      if (!wheel.cancel(ids[pick])) {
        return fail(op, "cancel of a live timer reported fenced");
      }
      ids[pick] = ids.back();
      ids.pop_back();
      model[pick] = model.back();
      model.pop_back();
    } else {
      // Pop one due timer, advancing the clock to the earliest deadline.
      const double deadline = wheel.next_deadline();
      if (model.empty()) {
        if (deadline != std::numeric_limits<double>::infinity()) {
          return fail(op, "next_deadline() finite on an empty wheel");
        }
      } else {
        const auto expect = model_min();
        if (deadline != expect->at) return fail(op, "next_deadline diverged");
        now = std::max(now, deadline);
        TimerFn fn;
        if (!wheel.pop_due(now, &fn)) {
          return fail(op, "pop_due refused a due timer");
        }
        fn();
        if (popped.empty() || popped.back() != expect->label) {
          return fail(op, "pop order diverged");
        }
        const size_t pick = static_cast<size_t>(expect - model.begin());
        ids[pick] = ids.back();
        ids.pop_back();
        model[pick] = model.back();
        model.pop_back();
      }
    }
    if (wheel.size() != model.size()) return fail(op, "size() diverged");
    if (wheel.empty() != model.empty()) return fail(op, "empty() diverged");
  }

  // Drain completely in deadline order.
  while (!model.empty()) {
    const auto expect = model_min();
    const double deadline = wheel.next_deadline();
    if (deadline != expect->at) return fail(nops, "drain deadline diverged");
    now = std::max(now, deadline);
    TimerFn fn;
    if (!wheel.pop_due(now, &fn)) return fail(nops, "drain pop_due refused");
    fn();
    if (popped.back() != expect->label) {
      return fail(nops, "drain pop order diverged");
    }
    model.erase(expect);
  }
  TimerFn leftover;
  if (wheel.pop_due(std::numeric_limits<double>::max(), &leftover)) {
    return fail(nops, "wheel still had timers after the model drained");
  }
  return DiffResult{};
}

TEST(TimerWheelProperty, DifferentialAgainstSortedModel) {
  for (uint64_t s = 0; s < 20; ++s) {
    const uint64_t seed = 0x9E3779B97F4A7C15ull * (s + 1);
    for (const double tick : {1.0, 50.0}) {
      const DiffResult full = run_diff(seed, 3000, tick);
      if (full.ok) continue;
      // Shrink to the shortest failing prefix for a minimal replay.
      size_t lo = 1;
      size_t hi = full.fail_op + 1;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (run_diff(seed, mid, tick).ok) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      FAIL() << "timer wheel diverged from the model: " << full.what
             << "\n  replay: run_diff(/*seed=*/" << seed << "u, /*nops=*/"
             << lo << ", /*tick_us=*/" << tick << ")";
    }
  }
}

// The engine's dominant shape: retransmit/deadline timers armed on every
// packet and almost always cancelled before firing.
TEST(TimerWheelProperty, CancelHeavyWorkload) {
  TimerWheel wheel(50.0);
  util::Rng rng(42);
  std::vector<uint64_t> fired;
  std::vector<uint64_t> expected;
  constexpr size_t kTimers = 50000;
  for (uint64_t i = 0; i < kTimers; ++i) {
    const double at = 100.0 + static_cast<double>(i) * 0.01;
    const TimerId id =
        wheel.schedule_at(at, [&fired, i] { fired.push_back(i); });
    if (rng.next_bool(0.95)) {
      EXPECT_TRUE(wheel.cancel(id));
    } else {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(wheel.size(), expected.size());
  TimerFn fn;
  while (wheel.pop_due(std::numeric_limits<double>::max(), &fn)) fn();
  EXPECT_EQ(fired, expected);
  const TimerStats stats = wheel.stats();
  EXPECT_EQ(stats.scheduled, kTimers);
  EXPECT_EQ(stats.executed, expected.size());
  EXPECT_EQ(stats.cancelled, kTimers - expected.size());
  EXPECT_EQ(stats.pending, 0u);
}

// Generation stamps fence every form of dead id: double cancel, cancel
// after fire, and a stale id whose slot was recycled by a newer timer.
TEST(TimerWheelProperty, CancelFencing) {
  TimerWheel wheel(50.0);
  int fired_a = 0;
  int fired_b = 0;

  const TimerId dup = wheel.schedule_at(1.0, [] {});
  EXPECT_TRUE(wheel.cancel(dup));
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_FALSE(wheel.cancel(dup));  // double cancel: fenced

  const TimerId fires = wheel.schedule_at(2.0, [&fired_a] { ++fired_a; });
  TimerFn fn;
  ASSERT_TRUE(wheel.pop_due(2.0, &fn));
  fn();
  EXPECT_EQ(fired_a, 1);
  EXPECT_FALSE(wheel.cancel(fires));  // already fired: fenced

  const TimerId fresh = wheel.schedule_at(3.0, [&fired_b] { ++fired_b; });
  ASSERT_NE(fresh, fires);
  EXPECT_FALSE(wheel.cancel(fires));  // stale generation: fenced
  EXPECT_EQ(wheel.size(), 1u);
  ASSERT_TRUE(wheel.pop_due(3.0, &fn));
  fn();
  EXPECT_EQ(fired_b, 1);

  EXPECT_NE(wheel.schedule_at(4.0, [] {}), 0u);  // ids are never zero
}

// Same-deadline bursts pop in submission order even when the burst
// forces bucket-array rebuilds.
TEST(TimerWheelProperty, TiesSurviveResize) {
  TimerWheel wheel(50.0);
  std::vector<int> order;
  constexpr int kBurst = 1000;
  for (int i = 0; i < kBurst; ++i) {
    wheel.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  EXPECT_GE(wheel.stats().resizes, 1u);
  TimerFn fn;
  while (wheel.pop_due(5.0, &fn)) fn();
  ASSERT_EQ(order.size(), static_cast<size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(order[i], i);
}

// Steady state is allocation-free once the slabs cover the population.
TEST(TimerWheelProperty, SteadyStateIsAllocationFree) {
  TimerWheel wheel(50.0);
  util::Rng rng(7);
  double now = 0.0;
  constexpr size_t kPending = 1024;
  for (size_t i = 0; i < kPending; ++i) {
    wheel.schedule_at(now + static_cast<double>(rng.next_below(5000)), [] {});
  }
  auto churn = [&](int rounds) {
    TimerFn fn;
    for (int i = 0; i < rounds; ++i) {
      now = wheel.next_deadline();
      ASSERT_TRUE(wheel.pop_due(now, &fn));
      fn();
      wheel.schedule_at(
          now + static_cast<double>(rng.next_below(5000)) + 0.1, [] {});
    }
  };
  churn(2000);
  const TimerStats warm = wheel.stats();
  const uint64_t spills = util::inline_fn_heap_allocs();
  churn(100000);
  const TimerStats steady = wheel.stats();
  EXPECT_EQ(steady.node_slabs, warm.node_slabs);
  EXPECT_EQ(steady.node_capacity, warm.node_capacity);
  EXPECT_EQ(steady.slot_capacity, warm.slot_capacity);
  EXPECT_EQ(steady.buckets, warm.buckets);
  EXPECT_EQ(steady.resizes, warm.resizes);
  EXPECT_EQ(util::inline_fn_heap_allocs(), spills);
  EXPECT_EQ(steady.pending, kPending);
}

// ---------------------------------------------------------------------
// WallClockRuntime in threadless mode: the IRuntime surface over the
// wheel, pumped deterministically by the test.
// ---------------------------------------------------------------------

WallClockRuntime::Options threadless() {
  WallClockRuntime::Options options;
  options.background_thread = false;
  return options;
}

TEST(WallClockRuntime, ThreadlessScheduleCancelDefer) {
  WallClockRuntime rt(threadless());
  std::vector<int> order;

  // defer() is a timer dated now_us(); a timer dated 0.0 (the epoch,
  // i.e. further in the past) is due ahead of it despite being
  // submitted later — ordering is (deadline, submission).
  rt.defer([&order] { order.push_back(0); });
  rt.defer([&order] { order.push_back(1); });
  rt.schedule_at(0.0, [&order] { order.push_back(2); });
  const TimerId victim = rt.schedule_at(0.0, [&order] { order.push_back(99); });
  rt.cancel(victim);
  rt.cancel(victim);  // double cancel: fenced, no effect

  size_t fired = rt.poll_timers();
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(order, (std::vector<int>{2, 0, 1}));

  // A far-future timer does not fire until real time reaches it.
  const TimerId far = rt.schedule_after(60e6, [&order] { order.push_back(3); });
  EXPECT_EQ(rt.poll_timers(), 0u);
  rt.cancel(far);
  EXPECT_EQ(rt.poll_timers(), 0u);

  const TimerStats stats = rt.timer_stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.cancelled, 2u);
}

TEST(WallClockRuntime, ThreadlessNowIsMonotone) {
  WallClockRuntime rt(threadless());
  double last = rt.now_us();
  EXPECT_GE(last, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = rt.now_us();
    EXPECT_GE(now, last);
    last = now;
  }
}

// A timer scheduled slightly ahead fires once real time passes it; the
// callback runs under the exec lock (checked by taking it ourselves).
TEST(WallClockRuntime, ThreadlessTimerFiresWhenDue) {
  WallClockRuntime rt(threadless());
  bool fired = false;
  rt.schedule_after(200.0, [&fired] { fired = true; });
  const double deadline = rt.now_us() + 5e6;
  while (!fired) {
    ASSERT_LT(rt.now_us(), deadline) << "timer never became due";
    rt.poll_timers();
  }
  EXPECT_TRUE(fired);
}

// Background-thread mode: the pump thread fires the timer on its own;
// the waiter only watches the flag under the exec lock.
TEST(WallClockRuntime, BackgroundThreadFiresTimers) {
  WallClockRuntime rt;  // background thread on by default
  std::atomic<int> fired{0};
  {
    ExecGuard guard(rt);
    rt.schedule_after(100.0, [&fired] { fired.fetch_add(1); });
    rt.schedule_after(300.0, [&fired] { fired.fetch_add(1); });
    const TimerId victim = rt.schedule_after(200.0, [&fired] {
      fired.fetch_add(100);  // must never run
    });
    rt.cancel(victim);
  }
  const double deadline = rt.now_us() + 5e6;
  while (fired.load() < 2) {
    ASSERT_LT(rt.now_us(), deadline) << "pump thread never fired the timers";
    rt.advance();
  }
  EXPECT_EQ(fired.load(), 2);
}

}  // namespace
}  // namespace nmad::runtime
