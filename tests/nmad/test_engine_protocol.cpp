// Engine protocol behaviour: window accumulation, request lifecycle,
// rendezvous state machine, scattered layouts, and randomized end-to-end
// data-integrity property sweeps.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace nmad::core {
namespace {

using api::Cluster;
using api::ClusterOptions;

TEST(EngineProtocol, ZeroLengthMessageCompletesBothSides) {
  Cluster cluster;
  auto* recv = cluster.core(1).irecv(cluster.gate(1, 0), 1,
                                     util::MutableBytes{});
  auto* send = cluster.core(0).isend(cluster.gate(0, 1), 1,
                                     util::ConstBytes{});
  cluster.wait(send);
  cluster.wait(recv);
  EXPECT_TRUE(send->status().is_ok());
  EXPECT_TRUE(recv->status().is_ok());
  EXPECT_EQ(recv->received_bytes(), 0u);
  cluster.core(0).release(send);
  cluster.core(1).release(recv);
}

TEST(EngineProtocol, WindowAccumulatesWhileNicBusy) {
  Cluster cluster;
  Core& a = cluster.core(0);
  const GateId g = cluster.gate(0, 1);

  std::vector<std::byte> buf(4096);
  std::vector<Request*> reqs;
  std::vector<std::vector<std::byte>> rbufs(6);
  for (int i = 0; i < 6; ++i) {
    rbufs[i].resize(64);
    reqs.push_back(cluster.core(1).irecv(cluster.gate(1, 0), Tag(i),
                                         {rbufs[i].data(), 64}));
  }
  // First send grabs the idle NIC; the rest accumulate in the window.
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(a.isend(g, Tag(i), util::ConstBytes{buf.data(), 64}));
  }
  EXPECT_EQ(a.window_size(g), 5u);
  cluster.wait_all(reqs);
  EXPECT_EQ(a.window_size(g), 0u);
  EXPECT_EQ(a.stats().packets_sent, 2u);  // 1 alone + 5 aggregated
  for (auto* r : reqs) {
    (r->kind() == Request::Kind::kSend ? a : cluster.core(1)).release(r);
  }
}

TEST(EngineProtocol, SequencedMessagesMatchInOrderPerTag) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  std::vector<std::byte> m1(32), m2(32), r1(32), r2(32);
  util::fill_pattern({m1.data(), 32}, 1);
  util::fill_pattern({m2.data(), 32}, 2);

  // Same tag twice: first send matches first recv (seq discipline).
  auto* recv1 = b.irecv(cluster.gate(1, 0), 5, {r1.data(), 32});
  auto* recv2 = b.irecv(cluster.gate(1, 0), 5, {r2.data(), 32});
  auto* send1 = a.isend(cluster.gate(0, 1), 5, {m1.data(), 32});
  auto* send2 = a.isend(cluster.gate(0, 1), 5, {m2.data(), 32});
  cluster.wait_all(std::vector<Request*>{recv1, recv2, send1, send2});

  EXPECT_TRUE(util::check_pattern({r1.data(), 32}, 1));
  EXPECT_TRUE(util::check_pattern({r2.data(), 32}, 2));
  a.release(send1);
  a.release(send2);
  b.release(recv1);
  b.release(recv2);
}

// Pins the peek_unexpected sequence contract documented in core.hpp: the
// probe consults exactly the (tag, seq) the next irecv will be assigned,
// so iprobe/irecv pairs are race-free and later-seq arrivals stay hidden
// until the preceding receives consume the counter.
TEST(EngineProtocol, PeekMatchesNextIrecvOnly) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  const GateId ab = cluster.gate(0, 1);
  const GateId ba = cluster.gate(1, 0);

  // Two unexpected messages on one tag: both land in the store, but only
  // the first (the one the next irecv will match) is visible to peek.
  std::vector<std::byte> m1(512), m2(1024), r1(512), r2(1024);
  util::fill_pattern({m1.data(), 512}, 1);
  util::fill_pattern({m2.data(), 1024}, 2);
  auto* send1 = a.isend(ab, 5, util::ConstBytes{m1.data(), 512});
  auto* send2 = a.isend(ab, 5, util::ConstBytes{m2.data(), 1024});
  cluster.wait(send1);
  cluster.wait(send2);
  // Sends complete on tx; drain the fabric so both messages are parked.
  cluster.world().run_to_quiescence();

  Core::PeekResult peek = b.peek_unexpected(ba, 5);
  EXPECT_TRUE(peek.matched);
  EXPECT_TRUE(peek.total_known);
  EXPECT_EQ(peek.total_bytes, 512u);  // the first message, never the second

  // Draining the first receive advances the counter: the second message
  // becomes visible, with its own size.
  auto* recv1 = b.irecv(ba, 5, {r1.data(), 512});
  cluster.wait(recv1);
  peek = b.peek_unexpected(ba, 5);
  EXPECT_TRUE(peek.matched);
  EXPECT_EQ(peek.total_bytes, 1024u);

  auto* recv2 = b.irecv(ba, 5, {r2.data(), 1024});
  cluster.wait(recv2);
  EXPECT_TRUE(util::check_pattern({r1.data(), 512}, 1));
  EXPECT_TRUE(util::check_pattern({r2.data(), 1024}, 2));

  // Nothing left: the probe reports unmatched.
  peek = b.peek_unexpected(ba, 5);
  EXPECT_FALSE(peek.matched);

  a.release(send1);
  a.release(send2);
  b.release(recv1);
  b.release(recv2);
}

TEST(EngineProtocol, ScatteredSendIntoScatteredRecv) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  std::vector<std::byte> s1(100), s2(50), s3(150);
  util::fill_pattern({s1.data(), 100}, 1);
  util::fill_pattern({s2.data(), 50}, 2);
  util::fill_pattern({s3.data(), 150}, 3);
  SourceLayout src = SourceLayout::scattered({
      {0, {s1.data(), 100}},
      {100, {s2.data(), 50}},
      {150, {s3.data(), 150}},
  });

  std::vector<std::byte> d1(120), d2(180);
  DestLayout dst = DestLayout::scattered({
      {0, {d1.data(), 120}},
      {120, {d2.data(), 180}},
  });

  auto* recv = b.irecv(cluster.gate(1, 0), 3, std::move(dst));
  auto* send = a.isend(cluster.gate(0, 1), 3, src);
  cluster.wait(send);
  cluster.wait(recv);

  // Flatten and compare to the logical concatenation s1|s2|s3.
  std::vector<std::byte> flat(300);
  std::memcpy(flat.data(), d1.data(), 120);
  std::memcpy(flat.data() + 120, d2.data(), 180);
  EXPECT_TRUE(util::check_pattern({flat.data(), 100}, 1));
  EXPECT_TRUE(util::check_pattern({flat.data() + 100, 50}, 2));
  EXPECT_TRUE(util::check_pattern({flat.data() + 150, 150}, 3));
  a.release(send);
  b.release(recv);
}

TEST(EngineProtocol, TruncatedMessageFailsRecvRequest) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  std::vector<std::byte> big(256), small(64);
  auto* recv = b.irecv(cluster.gate(1, 0), 1, {small.data(), 64});
  auto* send = a.isend(cluster.gate(0, 1), 1, {big.data(), 256});
  cluster.wait(send);
  cluster.wait(recv);
  EXPECT_FALSE(recv->status().is_ok());
  EXPECT_EQ(recv->status().code(), util::StatusCode::kTruncated);
  a.release(send);
  b.release(recv);
}

TEST(EngineProtocol, RendezvousIntoScatteredDestUsesBounce) {
  // A >threshold block whose destination spans two memory blocks cannot
  // land zero-copy; the engine must bounce and scatter, preserving bytes.
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  const size_t len = 128 * 1024;
  std::vector<std::byte> src(len);
  util::fill_pattern({src.data(), len}, 6);

  std::vector<std::byte> d1(len / 2), d2(len / 2);
  DestLayout dst = DestLayout::scattered({
      {0, {d1.data(), len / 2}},
      {len / 2, {d2.data(), len / 2}},
  });
  auto* recv = b.irecv(cluster.gate(1, 0), 1, std::move(dst));
  auto* send = a.isend(cluster.gate(0, 1), 1, {src.data(), len});
  cluster.wait(send);
  cluster.wait(recv);

  EXPECT_EQ(a.stats().rdv_started, 1u);
  std::vector<std::byte> flat(len);
  std::memcpy(flat.data(), d1.data(), len / 2);
  std::memcpy(flat.data() + len / 2, d2.data(), len / 2);
  EXPECT_TRUE(util::check_pattern({flat.data(), len}, 6));
  a.release(send);
  b.release(recv);
}

TEST(EngineProtocol, UnexpectedRendezvousMatchesLater) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  const size_t len = 256 * 1024;
  std::vector<std::byte> src(len), dst(len);
  util::fill_pattern({src.data(), len}, 8);

  auto* send = a.isend(cluster.gate(0, 1), 4, {src.data(), len});
  cluster.world().run_to_quiescence();  // RTS parked unexpected at B
  EXPECT_FALSE(send->done());           // no CTS yet

  auto* recv = b.irecv(cluster.gate(1, 0), 4, {dst.data(), len});
  cluster.wait(recv);
  cluster.wait(send);
  EXPECT_TRUE(util::check_pattern({dst.data(), len}, 8));
  a.release(send);
  b.release(recv);
}

TEST(EngineProtocol, BidirectionalTrafficConcurrently) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  const size_t len = 100 * 1024;  // rendezvous both ways
  std::vector<std::byte> sa(len), sb(len), ra(len), rb(len);
  util::fill_pattern({sa.data(), len}, 1);
  util::fill_pattern({sb.data(), len}, 2);

  std::vector<Request*> reqs = {
      a.irecv(cluster.gate(0, 1), 9, {ra.data(), len}),
      b.irecv(cluster.gate(1, 0), 9, {rb.data(), len}),
      a.isend(cluster.gate(0, 1), 9, {sa.data(), len}),
      b.isend(cluster.gate(1, 0), 9, {sb.data(), len}),
  };
  cluster.wait_all(reqs);
  EXPECT_TRUE(util::check_pattern({rb.data(), len}, 1));
  EXPECT_TRUE(util::check_pattern({ra.data(), len}, 2));
  a.release(reqs[0]);
  b.release(reqs[1]);
  a.release(reqs[2]);
  b.release(reqs[3]);
}

TEST(EngineProtocol, CompletionCallbackFires) {
  Cluster cluster;
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  std::vector<std::byte> buf(64), rbuf(64);

  int fired = 0;
  auto* recv = b.irecv(cluster.gate(1, 0), 2, {rbuf.data(), 64});
  recv->set_on_complete([&] { ++fired; });
  auto* send = a.isend(cluster.gate(0, 1), 2, {buf.data(), 64});
  cluster.wait(recv);
  cluster.wait(send);
  EXPECT_EQ(fired, 1);
  a.release(send);
  b.release(recv);
}

TEST(EngineProtocol, ThreeNodeAllToAll) {
  ClusterOptions options;
  options.nodes = 3;
  Cluster cluster(std::move(options));

  std::vector<std::vector<std::byte>> rbuf(9, std::vector<std::byte>(128));
  std::vector<std::vector<std::byte>> sbuf(9, std::vector<std::byte>(128));
  std::vector<Request*> reqs;
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from == to) continue;
      const int idx = from * 3 + to;
      util::fill_pattern({sbuf[idx].data(), 128}, 10 + idx);
      reqs.push_back(cluster.core(to).irecv(
          cluster.gate(to, from), Tag(idx), {rbuf[idx].data(), 128}));
    }
  }
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from == to) continue;
      const int idx = from * 3 + to;
      reqs.push_back(cluster.core(from).isend(
          cluster.gate(from, to), Tag(idx),
          util::ConstBytes{sbuf[idx].data(), 128}));
    }
  }
  cluster.wait_all(reqs);
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from == to) continue;
      const int idx = from * 3 + to;
      EXPECT_TRUE(util::check_pattern({rbuf[idx].data(), 128}, 10 + idx))
          << from << "->" << to;
    }
  }
  // Release: recvs were created first (6), sends after (6), in loop order.
  size_t i = 0;
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from == to) continue;
      cluster.core(to).release(reqs[i++]);
    }
  }
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 3; ++to) {
      if (from == to) continue;
      cluster.core(from).release(reqs[i++]);
    }
  }
}

// Property sweep: random sizes, random scatter on both sides, random
// strategies — bytes must always survive, pools must drain.
class EngineProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineProperty, RandomizedTransfersPreserveBytes) {
  util::Rng rng(std::string_view(GetParam()).size() * 7919 + 13);
  ClusterOptions options;
  options.core.strategy = GetParam();
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  for (int round = 0; round < 30; ++round) {
    const int messages = static_cast<int>(rng.next_range(1, 6));
    struct Msg {
      std::vector<std::byte> src;
      std::vector<std::byte> dst;
      Request* send = nullptr;
      Request* recv = nullptr;
      uint64_t seed;
    };
    std::vector<Msg> msgs(messages);
    std::vector<Request*> reqs;
    for (int m = 0; m < messages; ++m) {
      // Sizes span eager, threshold boundary, and rendezvous.
      const size_t len = rng.next_range(0, 1) == 0
                             ? rng.next_range(0, 4096)
                             : rng.next_range(8 * 1024, 200 * 1024);
      msgs[m].seed = rng.next_u64();
      msgs[m].src.resize(len);
      msgs[m].dst.resize(len);
      util::fill_pattern({msgs[m].src.data(), len}, msgs[m].seed);

      // Random scatter of the source into 1-4 blocks.
      auto split = [&](size_t total) {
        std::vector<size_t> cuts = {0, total};
        const int extra = static_cast<int>(rng.next_below(3));
        for (int c = 0; c < extra && total > 1; ++c) {
          cuts.push_back(rng.next_range(1, total - 1));
        }
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
        return cuts;
      };

      std::vector<DestLayout::Block> dblocks;
      for (auto cuts = split(len); cuts.size() >= 2;) {
        for (size_t c = 0; c + 1 < cuts.size(); ++c) {
          dblocks.push_back({cuts[c],
                             {msgs[m].dst.data() + cuts[c],
                              cuts[c + 1] - cuts[c]}});
        }
        break;
      }

      msgs[m].recv = b.irecv(cluster.gate(1, 0), Tag(m),
                             DestLayout::scattered(std::move(dblocks)));
      reqs.push_back(msgs[m].recv);
    }
    for (int m = 0; m < messages; ++m) {
      std::vector<SourceLayout::Block> sblocks;
      const size_t len = msgs[m].src.size();
      size_t pos = 0;
      while (pos < len) {
        const size_t n = std::min<size_t>(rng.next_range(1, len), len - pos);
        sblocks.push_back({pos, {msgs[m].src.data() + pos, n}});
        pos += n;
      }
      msgs[m].send = a.isend(cluster.gate(0, 1), Tag(m),
                             SourceLayout::scattered(std::move(sblocks)));
      reqs.push_back(msgs[m].send);
    }
    cluster.wait_all(reqs);
    for (int m = 0; m < messages; ++m) {
      EXPECT_TRUE(util::check_pattern(
          {msgs[m].dst.data(), msgs[m].dst.size()}, msgs[m].seed))
          << "round " << round << " msg " << m << " len "
          << msgs[m].dst.size();
      a.release(msgs[m].send);
      b.release(msgs[m].recv);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, EngineProperty,
                         ::testing::Values("default", "aggreg",
                                           "aggreg_extended",
                                           "split_balance"));

}  // namespace
}  // namespace nmad::core
