// Reliability layer: ack/retransmit with backoff over a lossy fabric,
// duplicate suppression, checksum-driven drop of corrupted packets,
// multi-rail failover through NIC blackouts, and clean error surfacing
// when every rail to a peer is gone.
#include <gtest/gtest.h>

#include <vector>

#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::core {
namespace {

simnet::NicProfile lossy_mx(simnet::FaultProfile fault) {
  simnet::NicProfile p = simnet::mx_myri10g_profile();
  p.fault = std::move(fault);
  return p;
}

CoreConfig reliable_config() {
  CoreConfig c;
  c.reliability = true;
  // Short timers keep the simulated recovery fast; backoff still kicks in
  // on repeated loss of the same packet.
  c.ack_timeout_us = 200.0;
  c.ack_delay_us = 5.0;
  return c;
}

// Exchanges a mix of traffic between nodes 0 and 1 — eager singles, an
// aggregation burst, one rendezvous block, and a scattered (multi-segment)
// receive — and verifies every byte. Returns the sender engine's stats.
CoreStats exercise_traffic(api::Cluster& cluster) {
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);
  const GateId ab = cluster.gate(0, 1);
  const GateId ba = cluster.gate(1, 0);
  // Gate ids are per-engine, so remember which core owns each request.
  std::vector<std::pair<Core*, Request*>> owned;
  std::vector<Request*> reqs;
  const auto track = [&](Core& c, Request* r) {
    owned.emplace_back(&c, r);
    reqs.push_back(r);
  };

  // Eager burst: 16 small messages.
  constexpr int kSmall = 16;
  std::vector<std::vector<std::byte>> sin(kSmall), sout(kSmall);
  for (int i = 0; i < kSmall; ++i) {
    sin[i].resize(512);
    sout[i].resize(512);
    util::fill_pattern({sout[i].data(), 512}, i);
    track(b, b.irecv(ba, Tag(i), {sin[i].data(), 512}));
  }

  // Rendezvous block (past the MX threshold).
  const size_t big = 128 * 1024;
  std::vector<std::byte> big_in(big), big_out(big);
  util::fill_pattern({big_out.data(), big}, 77);
  track(b, b.irecv(ba, 100, {big_in.data(), big}));

  // Multi-segment receive: the message scatters over three blocks.
  std::vector<std::byte> seg0(1000), seg1(3000), seg2(4000);
  std::vector<std::byte> seg_out(8000);
  util::fill_pattern({seg_out.data(), 8000}, 55);
  track(b, b.irecv(
      ba, 101,
      DestLayout::scattered({{0, {seg0.data(), 1000}},
                             {1000, {seg1.data(), 3000}},
                             {4000, {seg2.data(), 4000}}})));

  // Reverse-direction ping so acks get piggyback opportunities.
  std::vector<std::byte> pong_in(256), pong_out(256);
  util::fill_pattern({pong_out.data(), 256}, 11);
  track(a, a.irecv(ab, 200, {pong_in.data(), 256}));

  for (int i = 0; i < kSmall; ++i) {
    track(a, a.isend(ab, Tag(i), util::ConstBytes{sout[i].data(), 512}));
  }
  track(a, a.isend(ab, 100, util::ConstBytes{big_out.data(), big}));
  track(a, a.isend(ab, 101, util::ConstBytes{seg_out.data(), 8000}));
  track(b, b.isend(ba, 200, util::ConstBytes{pong_out.data(), 256}));
  cluster.wait_all(reqs);

  for (int i = 0; i < kSmall; ++i) {
    EXPECT_TRUE(util::check_pattern({sin[i].data(), 512}, i)) << i;
  }
  EXPECT_TRUE(util::check_pattern({big_in.data(), big}, 77));
  std::vector<std::byte> seg_all;
  seg_all.insert(seg_all.end(), seg0.begin(), seg0.end());
  seg_all.insert(seg_all.end(), seg1.begin(), seg1.end());
  seg_all.insert(seg_all.end(), seg2.begin(), seg2.end());
  EXPECT_TRUE(util::check_pattern({seg_all.data(), 8000}, 55));
  EXPECT_TRUE(util::check_pattern({pong_in.data(), 256}, 11));

  for (auto& [owner, r] : owned) {
    EXPECT_TRUE(r->status().is_ok()) << r->status().to_string();
    owner->release(r);
  }
  return a.stats();
}

TEST(Reliability, ZeroFaultFabricNeverRetransmits) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile()};
  options.core = reliable_config();
  api::Cluster cluster(std::move(options));
  const CoreStats stats = exercise_traffic(cluster);
  EXPECT_EQ(stats.packet_timeouts, 0u);
  EXPECT_EQ(stats.packets_retransmitted, 0u);
  EXPECT_EQ(stats.bulk_retransmitted, 0u);
  EXPECT_EQ(stats.packets_rejected, 0u);
  EXPECT_EQ(stats.rails_failed, 0u);
  // Acks did flow (standalone or piggybacked) — the window drained.
  EXPECT_GT(stats.acks_sent + stats.acks_piggybacked, 0u);
  // Flow control and cancellation are off/unused: every one of their
  // counters must stay at zero — credits, stalls, probes and the store
  // gauge cost nothing when the features are idle.
  EXPECT_EQ(stats.credit_grants, 0u);
  EXPECT_EQ(stats.credit_stalls, 0u);
  EXPECT_EQ(stats.credit_probes, 0u);
  EXPECT_EQ(stats.credit_rdv_degrades, 0u);
  EXPECT_EQ(stats.rx_stored_hwm, 0u);
  EXPECT_EQ(stats.sends_cancelled, 0u);
  EXPECT_EQ(stats.recvs_cancelled, 0u);
  EXPECT_EQ(stats.deadlines_exceeded, 0u);
  EXPECT_EQ(stats.cancelled_payload_dropped, 0u);
}

struct DropCase {
  double drop;
  size_t rails;
};

class DropSweep : public ::testing::TestWithParam<DropCase> {};

TEST_P(DropSweep, TrafficSurvivesByteExact) {
  const DropCase& dc = GetParam();
  simnet::FaultProfile fault;
  fault.frame_drop_prob = dc.drop;
  fault.bulk_drop_prob = dc.drop;
  fault.seed = 2024;

  api::ClusterOptions options;
  for (size_t r = 0; r < dc.rails; ++r) {
    options.rails.push_back(lossy_mx(fault));
  }
  options.core = reliable_config();
  api::Cluster cluster(std::move(options));
  const CoreStats stats = exercise_traffic(cluster);
  // At 10% loss with this much traffic, a lossless run is implausible;
  // at 1% the sweep only asserts correctness (loss may miss our frames).
  if (dc.drop >= 0.05) {
    EXPECT_GT(stats.packet_timeouts + stats.packets_retransmitted +
                  stats.bulk_retransmitted,
              0u);
  }
  EXPECT_EQ(stats.gates_failed, 0u);
  EXPECT_EQ(stats.rails_failed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDropRates, DropSweep,
    ::testing::Values(DropCase{0.01, 1}, DropCase{0.05, 1},
                      DropCase{0.10, 1}, DropCase{0.01, 2},
                      DropCase{0.05, 2}, DropCase{0.10, 2}),
    [](const ::testing::TestParamInfo<DropCase>& info) {
      return "drop" +
             std::to_string(static_cast<int>(info.param.drop * 100)) +
             "_rails" + std::to_string(info.param.rails);
    });

TEST(Reliability, BitFlipsAreCaughtAndRecovered) {
  simnet::FaultProfile fault;
  fault.bit_flip_prob = 0.30;
  fault.seed = 31337;

  api::ClusterOptions options;
  options.rails = {lossy_mx(fault)};
  options.core = reliable_config();
  api::Cluster cluster(std::move(options));
  const CoreStats stats = exercise_traffic(cluster);
  const CoreStats& rstats = cluster.core(1).stats();
  // The fabric did corrupt frames in this run (seed-dependent premise)…
  EXPECT_GT(cluster.fabric().node(0).nic(0).counters().frames_corrupted +
                cluster.fabric().node(1).nic(0).counters().frames_corrupted,
            0u);
  // …and every corrupt packet was detected by the wire checksum, dropped,
  // and recovered by retransmission.
  EXPECT_GT(stats.packets_rejected + rstats.packets_rejected, 0u);
  EXPECT_GT(stats.packets_retransmitted + rstats.packets_retransmitted, 0u);
  EXPECT_EQ(stats.gates_failed + rstats.gates_failed, 0u);
}

TEST(Reliability, BlackoutFailsOverToSurvivingRail) {
  // Rail 0 goes dark long enough for its in-flight traffic to time out
  // and be re-elected onto rail 1; the blackout outlasts
  // max_retries * backoff on rail 0 alone, so only failover explains a
  // completed transfer.
  simnet::FaultProfile dark;
  dark.blackouts.push_back({0.0, 1.0e6});

  api::ClusterOptions options;
  options.rails = {lossy_mx(dark), simnet::elan_quadrics_profile()};
  options.core = reliable_config();
  options.core.rail_dead_after = 3;
  api::Cluster cluster(std::move(options));
  const CoreStats stats = exercise_traffic(cluster);
  EXPECT_GT(stats.packet_timeouts, 0u);
  EXPECT_EQ(stats.gates_failed, 0u);
  EXPECT_LT(cluster.now(), 1.0e6);  // finished during the blackout
}

TEST(Reliability, DeadRailIsDeclaredAndBypassed) {
  simnet::FaultProfile dark;
  dark.blackouts.push_back({0.0, 1.0e6});

  api::ClusterOptions options;
  options.rails = {lossy_mx(dark), simnet::elan_quadrics_profile()};
  options.core = reliable_config();
  options.core.rail_dead_after = 2;
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);
  Core& b = cluster.core(1);

  // Enough distinct packets that rail 0 accumulates consecutive timeouts.
  constexpr int kN = 12;
  std::vector<std::vector<std::byte>> in(kN), out(kN);
  std::vector<Request*> reqs;
  for (int i = 0; i < kN; ++i) {
    in[i].resize(2048);
    out[i].resize(2048);
    util::fill_pattern({out[i].data(), 2048}, i);
    reqs.push_back(
        b.irecv(cluster.gate(1, 0), Tag(i), {in[i].data(), 2048}));
  }
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(a.isend(cluster.gate(0, 1), Tag(i),
                           util::ConstBytes{out[i].data(), 2048}));
  }
  cluster.wait_all(reqs);

  EXPECT_FALSE(a.rail_alive(0));
  EXPECT_TRUE(a.rail_alive(1));
  EXPECT_EQ(a.stats().rails_failed, 1u);
  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), 2048}, i)) << i;
  }
  for (Request* r : reqs) {
    EXPECT_TRUE(r->status().is_ok());
    (r->kind() == Request::Kind::kSend ? a : b).release(r);
  }
}

TEST(Reliability, AllRailsDownFailsSendsInsteadOfHanging) {
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile(),
                   simnet::elan_quadrics_profile()};
  options.core = reliable_config();
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);

  // An operational monitor declares both links dead before any traffic.
  a.fail_rail(0);
  a.fail_rail(1);
  EXPECT_FALSE(a.rail_alive(0));
  EXPECT_FALSE(a.rail_alive(1));

  std::vector<std::byte> out(4096);
  SendRequest* req =
      a.isend(cluster.gate(0, 1), 1, util::ConstBytes{out.data(), 4096});
  EXPECT_TRUE(req->done());
  EXPECT_FALSE(req->status().is_ok());
  a.release(req);

  // Large (rendezvous-sized) sends fail the same way.
  std::vector<std::byte> big(256 * 1024);
  SendRequest* rdv =
      a.isend(cluster.gate(0, 1), 2, util::ConstBytes{big.data(), big.size()});
  EXPECT_TRUE(rdv->done());
  EXPECT_FALSE(rdv->status().is_ok());
  a.release(rdv);
  EXPECT_GE(a.stats().gates_failed, 1u);
}

TEST(Reliability, NaturalTimeoutPathFailsGateCleanly) {
  // 100% loss on the only rail: retransmissions back off, exhaust
  // max_retries, the rail dies, no survivor remains, and the send
  // completes with an error instead of wedging the event loop.
  simnet::FaultProfile lossy;
  lossy.frame_drop_prob = 1.0;
  lossy.seed = 1;

  api::ClusterOptions options;
  options.rails = {lossy_mx(lossy)};
  options.core = reliable_config();
  options.core.max_retries = 4;
  options.core.rail_dead_after = 3;
  api::Cluster cluster(std::move(options));
  Core& a = cluster.core(0);

  std::vector<std::byte> out(1024);
  SendRequest* req =
      a.isend(cluster.gate(0, 1), 7, util::ConstBytes{out.data(), 1024});
  cluster.wait(req);
  EXPECT_TRUE(req->done());
  EXPECT_FALSE(req->status().is_ok());
  EXPECT_GT(a.stats().packet_timeouts, 0u);
  EXPECT_EQ(a.stats().gates_failed, 1u);
  a.release(req);

  // Follow-up sends on the failed gate complete immediately with the
  // same error.
  SendRequest* later =
      a.isend(cluster.gate(0, 1), 8, util::ConstBytes{out.data(), 1024});
  EXPECT_TRUE(later->done());
  EXPECT_FALSE(later->status().is_ok());
  a.release(later);
}

TEST(Reliability, FailureRunsReplayFromTheSeed) {
  const auto run = [](uint64_t seed) {
    simnet::FaultProfile fault;
    fault.frame_drop_prob = 0.10;
    fault.bulk_drop_prob = 0.10;
    fault.seed = seed;
    api::ClusterOptions options;
    options.rails = {lossy_mx(fault)};
    options.core = reliable_config();
    api::Cluster cluster(std::move(options));
    return exercise_traffic(cluster);
  };
  const CoreStats a = run(97);
  const CoreStats b = run(97);
  EXPECT_EQ(a.packet_timeouts, b.packet_timeouts);
  EXPECT_EQ(a.packets_retransmitted, b.packets_retransmitted);
  EXPECT_EQ(a.bulk_retransmitted, b.bulk_retransmitted);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.acks_sent, b.acks_sent);
  EXPECT_EQ(a.acks_piggybacked, b.acks_piggybacked);
}

}  // namespace
}  // namespace nmad::core
