// Units parsing/formatting, table rendering, CLI flags, logging.
#include <gtest/gtest.h>

#include <cstdio>

#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nmad::util {
namespace {

TEST(Units, ParseSizes) {
  uint64_t v = 0;
  EXPECT_TRUE(parse_size("4", &v));
  EXPECT_EQ(v, 4u);
  EXPECT_TRUE(parse_size("1K", &v));
  EXPECT_EQ(v, 1024u);
  EXPECT_TRUE(parse_size("2M", &v));
  EXPECT_EQ(v, 2097152u);
  EXPECT_TRUE(parse_size("1G", &v));
  EXPECT_EQ(v, 1073741824u);
  EXPECT_TRUE(parse_size("64k", &v));
  EXPECT_EQ(v, 65536u);
  EXPECT_TRUE(parse_size("3KB", &v));
  EXPECT_EQ(v, 3072u);
  EXPECT_TRUE(parse_size("3KiB", &v));
  EXPECT_EQ(v, 3072u);
}

TEST(Units, RejectsMalformedSizes) {
  uint64_t v = 0;
  EXPECT_FALSE(parse_size("", &v));
  EXPECT_FALSE(parse_size("K", &v));
  EXPECT_FALSE(parse_size("12X", &v));
  EXPECT_FALSE(parse_size("1K2", &v));
  EXPECT_FALSE(parse_size("12", nullptr));
}

TEST(Units, FormatSizes) {
  EXPECT_EQ(format_size(4), "4");
  EXPECT_EQ(format_size(1024), "1K");
  EXPECT_EQ(format_size(2097152), "2M");
  EXPECT_EQ(format_size(1500), "1500");  // not an exact multiple
  EXPECT_EQ(format_size(1073741824ull), "1G");
}

TEST(Units, FormatRoundTripsParse) {
  for (uint64_t v : doubling_sizes(1, 1ull << 30)) {
    uint64_t parsed = 0;
    ASSERT_TRUE(parse_size(format_size(v), &parsed));
    EXPECT_EQ(parsed, v);
  }
}

TEST(Units, DoublingSizes) {
  const auto sizes = doubling_sizes(4, 64);
  EXPECT_EQ(sizes, (std::vector<uint64_t>{4, 8, 16, 32, 64}));
  EXPECT_TRUE(doubling_sizes(8, 4).empty());
}

TEST(Units, FormatFixed) {
  EXPECT_EQ(format_fixed(12.345, 2), "12.35");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
}

TEST(Table, RowWidthEnforced) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Table, CsvOutput) {
  Table t({"size", "lat"});
  t.add_row({"4", "2.70"});
  t.add_row({"8", "2.71"});

  char buf[256] = {};
  FILE* mem = fmemopen(buf, sizeof(buf), "w");
  ASSERT_NE(mem, nullptr);
  t.print_csv(mem);
  std::fclose(mem);
  EXPECT_STREQ(buf, "size,lat\n4,2.70\n8,2.71\n");
}

TEST(Table, PrettyPrintAligns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  char buf[512] = {};
  FILE* mem = fmemopen(buf, sizeof(buf), "w");
  t.print(mem);
  std::fclose(mem);
  const std::string out(buf);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Numeric column right-aligned: " 1" under "value".
  EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(Cli, ParsesFormsAndDefaults) {
  CliFlags flags;
  flags.define("net", "mx", "network");
  flags.define("iters", "10", "iterations");
  flags.define("size", "4K", "bytes");
  flags.define_bool("csv", false, "csv output");

  const char* argv[] = {"prog", "--net=quadrics", "--iters", "25", "--csv"};
  ASSERT_TRUE(flags.parse(5, const_cast<char**>(argv)).is_ok());
  EXPECT_EQ(flags.get("net"), "quadrics");
  EXPECT_EQ(flags.get_int("iters"), 25);
  EXPECT_TRUE(flags.get_bool("csv"));
  EXPECT_EQ(flags.get_size("size"), 4096u);  // default survives
}

TEST(Cli, UnknownFlagIsError) {
  CliFlags flags;
  flags.define("net", "mx", "network");
  const char* argv[] = {"prog", "--oops=1"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)).is_ok());
}

TEST(Cli, MissingValueIsError) {
  CliFlags flags;
  flags.define("net", "mx", "network");
  const char* argv[] = {"prog", "--net"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)).is_ok());
}

TEST(Cli, PositionalArgsCollected) {
  CliFlags flags;
  flags.define("net", "mx", "network");
  const char* argv[] = {"prog", "alpha", "--net=tcp", "beta"};
  ASSERT_TRUE(flags.parse(4, const_cast<char**>(argv)).is_ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Cli, BoolExplicitValue) {
  CliFlags flags;
  flags.define_bool("csv", true, "csv output");
  const char* argv[] = {"prog", "--csv=false"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)).is_ok());
  EXPECT_FALSE(flags.get_bool("csv"));
}

TEST(Logging, SinkCapturesAtOrAboveLevel) {
  Logger logger;
  std::vector<std::string> lines;
  logger.set_sink([&](LogLevel, const std::string& s) {
    lines.push_back(s);
  });
  logger.set_level(LogLevel::kInfo);
  logger.logf(LogLevel::kDebug, "hidden %d", 1);
  logger.logf(LogLevel::kInfo, "shown %d", 2);
  logger.logf(LogLevel::kError, "also %s", "shown");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "shown 2");
  EXPECT_EQ(lines[1], "also shown");
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace nmad::util
