#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/ascii_plot.hpp"

namespace nmad::util {
namespace {

std::string render(AsciiPlot& plot) {
  char buf[16384] = {};
  FILE* mem = fmemopen(buf, sizeof(buf), "w");
  plot.render(mem);
  std::fclose(mem);
  return buf;
}

TEST(AsciiPlot, EmptyPlotSaysSo) {
  AsciiPlot plot("empty");
  EXPECT_NE(render(plot).find("(no data)"), std::string::npos);
}

TEST(AsciiPlot, RendersTitleLegendAndMarkers) {
  AsciiPlot plot("my title", 32, 8);
  plot.add_series("fast", 'f', {{4, 2.0}, {1024, 10.0}, {1 << 20, 900.0}});
  plot.add_series("slow", 's', {{4, 4.0}, {1024, 20.0}, {1 << 20, 950.0}});
  const std::string out = render(plot);
  EXPECT_NE(out.find("my title"), std::string::npos);
  EXPECT_NE(out.find("f=fast"), std::string::npos);
  EXPECT_NE(out.find("s=slow"), std::string::npos);
  EXPECT_NE(out.find('f'), std::string::npos);
  EXPECT_NE(out.find('s'), std::string::npos);
  // Axis labels include the x extremes.
  EXPECT_NE(out.find("1M"), std::string::npos);
}

TEST(AsciiPlot, OverlappingPointsBecomePlus) {
  AsciiPlot plot("overlap", 16, 6);
  plot.add_series("a", 'a', {{8, 5.0}});
  plot.add_series("b", 'b', {{8, 5.0}});
  const std::string out = render(plot);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlot, MonotoneSeriesDescendsOnScreen) {
  // Larger y must appear on an earlier (higher) line.
  AsciiPlot plot("mono", 40, 10);
  plot.add_series("up", 'u', {{4, 1.0}, {4096, 100.0}});
  const std::string out = render(plot);
  const size_t first_u = out.find('u');
  const size_t last_u = out.rfind('u');
  ASSERT_NE(first_u, std::string::npos);
  ASSERT_NE(last_u, first_u);
  // The high-y point (100) renders before the low-y point (1) in text
  // order, and its column (x=4096) is to the right.
  const size_t first_line_start = out.rfind('\n', first_u);
  const size_t last_line_start = out.rfind('\n', last_u);
  EXPECT_LT(first_u - first_line_start, last_u - last_line_start + 1000);
  EXPECT_GT(first_u - first_line_start, last_u - last_line_start);
}

TEST(AsciiPlotDeath, NonPositiveCoordinatesRejected) {
  AsciiPlot plot("bad");
  EXPECT_DEATH(plot.add_series("x", 'x', {{0.0, 1.0}}), "positive");
}

}  // namespace
}  // namespace nmad::util
