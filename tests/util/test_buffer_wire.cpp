// ByteBuffer / SegmentVec / pattern helpers and the wire encode/decode
// primitives, including a round-trip property sweep.
#include <gtest/gtest.h>

#include <vector>

#include "util/buffer.hpp"
#include "util/rng.hpp"
#include "util/wire.hpp"

namespace nmad::util {
namespace {

TEST(SegmentVec, TracksTotalsAndGathers) {
  const char a[] = "hello";
  const char b[] = "world";
  SegmentVec segs;
  segs.add(a, 5);
  segs.add(b, 5);
  EXPECT_EQ(segs.count(), 2u);
  EXPECT_EQ(segs.total_bytes(), 10u);

  std::vector<std::byte> out(10);
  EXPECT_EQ(segs.gather_into({out.data(), out.size()}), 10u);
  EXPECT_EQ(std::memcmp(out.data(), "helloworld", 10), 0);
}

TEST(SegmentVec, SkipsNullEmptySegments) {
  SegmentVec segs;
  segs.add(nullptr, 0);
  EXPECT_TRUE(segs.empty());
  EXPECT_EQ(segs.total_bytes(), 0u);
}

TEST(SegmentVec, ZeroLengthWithDataPointerKept) {
  const char a[] = "x";
  SegmentVec segs;
  segs.add(a, 0);
  EXPECT_EQ(segs.count(), 1u);
  EXPECT_EQ(segs.total_bytes(), 0u);
}

TEST(ByteBuffer, AppendGrows) {
  ByteBuffer buf;
  buf.append("ab", 2);
  buf.append("cd", 2);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(std::memcmp(buf.data(), "abcd", 4), 0);
}

TEST(Pattern, FillAndCheckAgree) {
  std::vector<std::byte> buf(1000);
  fill_pattern({buf.data(), buf.size()}, 42);
  EXPECT_TRUE(check_pattern({buf.data(), buf.size()}, 42));
  EXPECT_FALSE(check_pattern({buf.data(), buf.size()}, 43));
  buf[500] ^= std::byte{1};
  EXPECT_FALSE(check_pattern({buf.data(), buf.size()}, 42));
}

TEST(Pattern, DifferentSeedsDiffer) {
  std::vector<std::byte> a(64), b(64);
  fill_pattern({a.data(), 64}, 1);
  fill_pattern({b.data(), 64}, 2);
  EXPECT_NE(std::memcmp(a.data(), b.data(), 64), 0);
}

TEST(Wire, ScalarRoundTrip) {
  ByteBuffer buf;
  WireWriter w(buf);
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8);

  WireReader r(buf.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, LittleEndianLayout) {
  ByteBuffer buf;
  WireWriter w(buf);
  w.u32(0x01020304);
  EXPECT_EQ(std::to_integer<int>(buf.view()[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(buf.view()[3]), 0x01);
}

TEST(Wire, ReaderFailsGracefullyOnUnderflow) {
  ByteBuffer buf;
  WireWriter w(buf);
  w.u16(7);
  WireReader r(buf.view());
  EXPECT_EQ(r.u32(), 0u);  // not enough bytes
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.bytes(1).empty());  // stays failed
}

TEST(Wire, BytesViewsAlias) {
  ByteBuffer buf;
  WireWriter w(buf);
  w.bytes("abcdef", 6);
  WireReader r(buf.view());
  ConstBytes view = r.bytes(6);
  EXPECT_EQ(view.data(), buf.data());
  EXPECT_EQ(r.remaining(), 0u);
}

// Property: any sequence of scalar writes reads back identically.
TEST(Wire, RandomRoundTripProperty) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    ByteBuffer buf;
    WireWriter w(buf);
    std::vector<int> kinds;
    std::vector<uint64_t> values;
    const int n = static_cast<int>(rng.next_range(1, 20));
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.next_below(4));
      const uint64_t v = rng.next_u64();
      kinds.push_back(kind);
      values.push_back(v);
      switch (kind) {
        case 0: w.u8(static_cast<uint8_t>(v)); break;
        case 1: w.u16(static_cast<uint16_t>(v)); break;
        case 2: w.u32(static_cast<uint32_t>(v)); break;
        case 3: w.u64(v); break;
      }
    }
    WireReader r(buf.view());
    for (int i = 0; i < n; ++i) {
      switch (kinds[i]) {
        case 0: EXPECT_EQ(r.u8(), static_cast<uint8_t>(values[i])); break;
        case 1: EXPECT_EQ(r.u16(), static_cast<uint16_t>(values[i])); break;
        case 2: EXPECT_EQ(r.u32(), static_cast<uint32_t>(values[i])); break;
        case 3: EXPECT_EQ(r.u64(), values[i]); break;
      }
    }
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(CopyBytes, CopiesExactSpan) {
  std::vector<std::byte> src(16), dst(16);
  fill_pattern({src.data(), 16}, 9);
  copy_bytes({dst.data(), 16}, {src.data(), 16});
  EXPECT_TRUE(check_pattern({dst.data(), 16}, 9));
}

}  // namespace
}  // namespace nmad::util
