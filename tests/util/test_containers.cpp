// Intrusive list and object pool behaviour, including the removal-while-
// iterating pattern the optimization window relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/intrusive_list.hpp"
#include "util/pool.hpp"

namespace nmad::util {
namespace {

struct Item {
  explicit Item(int v = 0) : value(v) {}
  ListHook hook;
  int value;
};

using ItemList = IntrusiveList<Item, &Item::hook>;

TEST(IntrusiveList, StartsEmpty) {
  ItemList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_TRUE(list.begin() == list.end());
}

TEST(IntrusiveList, PushPopOrder) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_front(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front().value, 3);
  EXPECT_EQ(list.back().value, 2);
  EXPECT_EQ(list.pop_front().value, 3);
  EXPECT_EQ(list.pop_back().value, 2);
  EXPECT_EQ(list.pop_front().value, 1);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, RemoveFromMiddle) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.remove(b);
  EXPECT_FALSE(b.hook.is_linked());
  std::vector<int> seen;
  for (Item& item : list) seen.push_back(item.value);
  EXPECT_EQ(seen, (std::vector<int>{1, 3}));
}

TEST(IntrusiveList, RemoveWhileIterating) {
  // The strategy pack loop: grab next before unlinking the current node.
  // Items outlive the list: the list destructor unlinks whatever is left.
  std::vector<Item> items;
  ItemList list;
  items.reserve(10);
  for (int i = 0; i < 10; ++i) {
    items.emplace_back(i);
    list.push_back(items.back());
  }
  Item* it = &list.front();
  while (it != nullptr) {
    Item* next = list.next_of(*it);
    if (it->value % 2 == 0) list.remove(*it);
    it = next;
  }
  std::vector<int> seen;
  for (Item& item : list) seen.push_back(item.value);
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(IntrusiveList, InsertBeforePosition) {
  ItemList list;
  Item a(1), b(3), c(2);
  list.push_back(a);
  list.push_back(b);
  list.insert_before(b, c);
  std::vector<int> seen;
  for (Item& item : list) seen.push_back(item.value);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveList, MoveTransfersElements) {
  ItemList list;
  Item a(1), b(2);
  list.push_back(a);
  list.push_back(b);
  ItemList other = std::move(list);
  EXPECT_EQ(other.size(), 2u);
  EXPECT_TRUE(list.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(other.front().value, 1);
  other.clear();
}

TEST(IntrusiveList, ClearUnlinksEverything) {
  ItemList list;
  Item a(1), b(2);
  list.push_back(a);
  list.push_back(b);
  list.clear();
  EXPECT_FALSE(a.hook.is_linked());
  EXPECT_FALSE(b.hook.is_linked());
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, NextOfLastIsNull) {
  ItemList list;
  Item a(1);
  list.push_back(a);
  EXPECT_EQ(list.next_of(a), nullptr);
  list.clear();
}

TEST(ObjectPool, AcquireConstructsReleaseDestroys) {
  static int live = 0;
  struct Tracked {
    Tracked() { ++live; }
    ~Tracked() { --live; }
  };
  ObjectPool<Tracked> pool(4);
  Tracked* a = pool.acquire();
  Tracked* b = pool.acquire();
  EXPECT_EQ(live, 2);
  EXPECT_EQ(pool.live(), 2u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(live, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(ObjectPool, ReusesSlots) {
  ObjectPool<int> pool(2);
  int* a = pool.acquire(1);
  pool.release(a);
  int* b = pool.acquire(2);
  EXPECT_EQ(a, b);  // freelist reuse
  EXPECT_EQ(*b, 2);
  pool.release(b);
}

TEST(ObjectPool, GrowsBeyondOneSlab) {
  ObjectPool<int> pool(2);
  std::vector<int*> held;
  for (int i = 0; i < 7; ++i) held.push_back(pool.acquire(i));
  EXPECT_GE(pool.capacity(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(*held[i], i);
  for (int* p : held) pool.release(p);
}

TEST(ObjectPool, ForwardsConstructorArguments) {
  ObjectPool<std::string> pool;
  std::string* s = pool.acquire(5, 'x');
  EXPECT_EQ(*s, "xxxxx");
  pool.release(s);
}

}  // namespace
}  // namespace nmad::util
