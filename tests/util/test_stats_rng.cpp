// RNG determinism/uniformity and statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nmad::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.next_range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    hit_lo |= v == 10;
    hit_hi |= v == 13;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // rough uniformity
}

TEST(Rng, BoolProbability) {
  Rng rng(13);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool(0.25);
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(SampleSet, SingleSample) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
}

TEST(SampleSet, AddAfterSortStillCorrect) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // invalidates sorted cache
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.5);
}

TEST(SizeHistogram, PowerOfTwoBuckets) {
  SizeHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1024);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);   // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);   // 2 and 3
  EXPECT_EQ(h.bucket(2), 1u);   // 4
  EXPECT_EQ(h.bucket(10), 1u);  // 1024
  EXPECT_EQ(h.bucket(5), 0u);
}

TEST(QuantileDigest, EmptyReturnsZero) {
  QuantileDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 0.0);
}

TEST(QuantileDigest, ExactSummaries) {
  QuantileDigest d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  EXPECT_EQ(d.count(), 100u);
  EXPECT_DOUBLE_EQ(d.mean(), 50.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
}

// The log-linear buckets (32 per octave) bound relative quantile error
// to one sub-bucket width — about 2.2% of the value.
TEST(QuantileDigest, QuantilesWithinBucketResolution) {
  QuantileDigest d;
  for (int i = 1; i <= 1000; ++i) d.add(static_cast<double>(i));
  EXPECT_NEAR(d.p50(), 500.0, 500.0 * 0.025);
  EXPECT_NEAR(d.p99(), 990.0, 990.0 * 0.025);
  EXPECT_NEAR(d.p999(), 999.0, 999.0 * 0.025);
  EXPECT_LE(d.quantile(0.0), d.quantile(0.5));
  EXPECT_LE(d.quantile(0.5), d.quantile(1.0));
}

TEST(QuantileDigest, SkewedTailDoesNotPolluteMedian) {
  QuantileDigest d;
  for (int i = 0; i < 990; ++i) d.add(10.0);
  for (int i = 0; i < 10; ++i) d.add(10000.0);
  EXPECT_NEAR(d.p50(), 10.0, 10.0 * 0.025);
  EXPECT_NEAR(d.p999(), 10000.0, 10000.0 * 0.025);
  EXPECT_DOUBLE_EQ(d.max(), 10000.0);
}

TEST(QuantileDigest, MergeMatchesCombinedStream) {
  QuantileDigest a, b, both;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const double x = 1.0 + rng.next_double() * 100.0;
    (i % 2 == 0 ? a : b).add(x);
    both.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  // Summation order differs between the split and combined streams.
  EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), both.min());
  EXPECT_DOUBLE_EQ(a.max(), both.max());
  EXPECT_DOUBLE_EQ(a.p99(), both.p99());
}

TEST(QuantileDigest, ResetClears) {
  QuantileDigest d;
  d.add(5.0);
  d.reset();
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace nmad::util
