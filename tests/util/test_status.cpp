#include <gtest/gtest.h>

#include "util/status.hpp"

namespace nmad::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = invalid_argument("bad tag");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tag");
  EXPECT_EQ(s.to_string(), "invalid-argument: bad tag");
}

TEST(Status, EqualityComparesCodesOnly) {
  EXPECT_EQ(invalid_argument("a"), invalid_argument("b"));
  EXPECT_FALSE(invalid_argument("a") == not_found("a"));
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kClosed); ++c) {
    EXPECT_STRNE(status_code_name(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(Status, HelperConstructorsMapToCodes) {
  EXPECT_EQ(not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(already_exists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(out_of_range("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(resource_exhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
  EXPECT_EQ(truncated("x").code(), StatusCode::kTruncated);
  EXPECT_EQ(would_block().code(), StatusCode::kWouldBlock);
  EXPECT_EQ(closed("x").code(), StatusCode::kClosed);
}

TEST(Expected, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e.value(), 42);
  EXPECT_TRUE(e.status().is_ok());
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(not_found("nope"));
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(Expected, TakeMovesValueOut) {
  Expected<std::string> e(std::string("payload"));
  std::string s = std::move(e).take();
  EXPECT_EQ(s, "payload");
}

TEST(Expected, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return truncated("short"); };
  auto wrapper = [&]() -> Status {
    NMAD_RETURN_IF_ERROR(fails());
    return ok_status();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kTruncated);

  auto succeeds = [&]() -> Status {
    NMAD_RETURN_IF_ERROR(ok_status());
    return internal_error("reached");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace nmad::util
