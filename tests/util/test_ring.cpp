// Property suite for the lock-free rings under the shm driver.
//
// Single-threaded seeded differential runs pin the FIFO/boundary
// semantics against a std::deque model (tiny capacities force constant
// wraparound, and the 64-bit cursors get pushed near overflow to prove
// masked indexing really never wraps); real-thread stress runs then pin
// the concurrency contract — SPSC under producer/consumer backpressure,
// MPSC with racing producers — by checking no element is lost,
// duplicated or reordered within its producer. The threaded tests are
// also the TSan targets for the rings.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "util/ring.hpp"
#include "util/rng.hpp"

namespace nmad::util {
namespace {

// ---------------------------------------------------------------------
// SPSC: seeded differential against a deque model.
// ---------------------------------------------------------------------

void spsc_diff(uint64_t seed, size_t capacity, size_t nops) {
  SpscRing<uint64_t> ring(capacity);
  std::deque<uint64_t> model;
  Rng rng(seed);
  uint64_t next = 0;

  for (size_t op = 0; op < nops; ++op) {
    if (rng.next_bool(0.5)) {
      // Alternate the two producer APIs: value push and claim/publish.
      if (rng.next_bool(0.5)) {
        const bool pushed = ring.try_push(uint64_t{next});
        ASSERT_EQ(pushed, model.size() < capacity) << "seed " << seed;
        if (pushed) model.push_back(next++);
      } else {
        uint64_t* slot = ring.claim();
        ASSERT_EQ(slot != nullptr, model.size() < capacity) << "seed " << seed;
        if (slot != nullptr) {
          *slot = next;
          ring.publish();
          model.push_back(next++);
        }
      }
    } else {
      if (rng.next_bool(0.5)) {
        uint64_t got = 0;
        const bool popped = ring.try_pop(got);
        ASSERT_EQ(popped, !model.empty()) << "seed " << seed;
        if (popped) {
          ASSERT_EQ(got, model.front()) << "seed " << seed;
          model.pop_front();
        }
      } else {
        uint64_t* head = ring.front();
        ASSERT_EQ(head != nullptr, !model.empty()) << "seed " << seed;
        if (head != nullptr) {
          ASSERT_EQ(*head, model.front()) << "seed " << seed;
          ring.pop_front();
          model.pop_front();
        }
      }
    }
    ASSERT_EQ(ring.size_approx(), model.size()) << "seed " << seed;
  }
}

TEST(SpscRing, DifferentialAgainstDeque) {
  for (uint64_t s = 0; s < 20; ++s) {
    const uint64_t seed = 0x9E3779B97F4A7C15ull * (s + 1);
    // Capacity 2 wraps every other op; 64 mixes long runs with wraps.
    spsc_diff(seed, 2, 4000);
    spsc_diff(seed, 8, 4000);
    spsc_diff(seed, 64, 4000);
  }
}

TEST(SpscRing, BoundaryFullAndEmpty) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.front(), nullptr);  // empty
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.claim(), nullptr);  // full
  EXPECT_FALSE(ring.try_push(99));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, SingleElementPingAcrossManyLaps) {
  // Thousands of laps over a capacity-2 ring: the masked cursors must
  // keep FIFO exact no matter how far head/tail run ahead of the mask.
  SpscRing<uint64_t> ring(2);
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.try_push(uint64_t{i}));
    uint64_t got = 0;
    ASSERT_TRUE(ring.try_pop(got));
    ASSERT_EQ(got, i);
  }
}

TEST(SpscRing, ThreadedBackpressureStress) {
  // Tiny ring so the producer constantly hits full and the consumer
  // constantly hits empty: the acquire/release cursor handshake is the
  // only thing keeping the sequence intact.
  constexpr uint64_t kCount = 200000;
  SpscRing<uint64_t> ring(8);
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.try_push(uint64_t{i})) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expect = 0;
  while (expect < kCount) {
    uint64_t got = 0;
    if (ring.try_pop(got)) {
      ASSERT_EQ(got, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(ring.front(), nullptr);
}

TEST(SpscRing, ThreadedClaimPublishInPlaceFrames) {
  // The driver's actual shape: large slots written in place via
  // claim()/publish(), consumed via front()/pop_front().
  struct Frame {
    uint64_t seq = 0;
    std::array<uint64_t, 32> body{};
  };
  constexpr uint64_t kCount = 20000;
  SpscRing<Frame> ring(4);
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kCount;) {
      Frame* slot = ring.claim();
      if (slot == nullptr) {
        std::this_thread::yield();
        continue;
      }
      slot->seq = i;
      for (size_t k = 0; k < slot->body.size(); ++k) {
        slot->body[k] = i * 31 + k;
      }
      ring.publish();
      ++i;
    }
  });
  for (uint64_t i = 0; i < kCount;) {
    Frame* head = ring.front();
    if (head == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(head->seq, i);
    for (size_t k = 0; k < head->body.size(); ++k) {
      ASSERT_EQ(head->body[k], i * 31 + k);  // no torn slot
    }
    ring.pop_front();
    ++i;
  }
  producer.join();
}

// ---------------------------------------------------------------------
// MPSC (Vyukov): single-threaded boundaries, then racing producers.
// ---------------------------------------------------------------------

TEST(MpscRing, BoundaryFullEmptyAndFifo) {
  MpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // one producer ⇒ global FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));
  // Refill after a full lap: slot sequences must have recycled cleanly.
  for (int i = 10; i < 14; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  for (int i = 10; i < 14; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(MpscRing, SingleProducerDifferentialAgainstDeque) {
  MpscRing<uint64_t> ring(8);
  std::deque<uint64_t> model;
  Rng rng(1234);
  uint64_t next = 0;
  for (size_t op = 0; op < 20000; ++op) {
    if (rng.next_bool(0.5)) {
      const bool pushed = ring.try_push(uint64_t{next});
      ASSERT_EQ(pushed, model.size() < 8u);
      if (pushed) model.push_back(next++);
    } else {
      uint64_t got = 0;
      const bool popped = ring.try_pop(got);
      ASSERT_EQ(popped, !model.empty());
      if (popped) {
        ASSERT_EQ(got, model.front());
        model.pop_front();
      }
    }
  }
}

TEST(MpscRing, ManyProducersLoseNothing) {
  // Each producer pushes an independent (id, seq) stream; the consumer
  // must see every element exactly once and each stream in order —
  // Vyukov's per-slot sequences are what prevents a slow producer from
  // exposing a torn or duplicated slot.
  constexpr size_t kProducers = 4;
  constexpr uint64_t kPerProducer = 50000;
  struct Tagged {
    uint64_t producer = 0;
    uint64_t seq = 0;
  };
  MpscRing<Tagged> ring(16);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (uint64_t i = 0; i < kPerProducer;) {
        if (ring.try_push(Tagged{p, i})) {
          ++i;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  std::array<uint64_t, kProducers> next_seq{};
  uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    Tagged got;
    if (!ring.try_pop(got)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(got.producer, kProducers);
    ASSERT_EQ(got.seq, next_seq[got.producer])
        << "producer " << got.producer << " stream lost or reordered";
    ++next_seq[got.producer];
    ++received;
  }
  for (auto& t : producers) t.join();
  Tagged leftover;
  EXPECT_FALSE(ring.try_pop(leftover));
  for (size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
}

}  // namespace
}  // namespace nmad::util
