// The benchmark harness itself: runner determinism, physical sanity of
// the measurements, and the helper math EXPERIMENTS.md relies on.
#include <gtest/gtest.h>

#include "bench/common.hpp"

namespace nmad::bench {
namespace {

TEST(BenchCommon, GainPercentMath) {
  EXPECT_DOUBLE_EQ(gain_percent(5.0, 10.0), 50.0);
  EXPECT_DOUBLE_EQ(gain_percent(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(gain_percent(15.0, 10.0), -50.0);
  EXPECT_DOUBLE_EQ(gain_percent(1.0, 0.0), 0.0);  // guarded
}

TEST(BenchCommon, ImplsPerNetworkMatchThePaper) {
  EXPECT_EQ(impls_for_net("mx"),
            (std::vector<std::string>{"madmpi", "mpich", "openmpi"}));
  EXPECT_EQ(impls_for_net("quadrics"),
            (std::vector<std::string>{"madmpi", "mpich"}));
}

TEST(BenchCommon, PingPongIsDeterministic) {
  baseline::MpiStack s1 = make_stack("madmpi", "mx");
  baseline::MpiStack s2 = make_stack("madmpi", "mx");
  const double a = pingpong_latency_us(s1, 1024, 5, 1);
  const double b = pingpong_latency_us(s2, 1024, 5, 1);
  EXPECT_DOUBLE_EQ(a, b);  // virtual time: bit-identical reruns
}

TEST(BenchCommon, LatencyMonotoneInSize) {
  double prev = 0.0;
  for (size_t size : {4u, 1024u, 65536u, 1048576u}) {
    baseline::MpiStack stack = make_stack("mpich", "mx");
    const double lat = pingpong_latency_us(stack, size, 3, 1);
    EXPECT_GT(lat, prev) << size;
    prev = lat;
  }
}

TEST(BenchCommon, BandwidthBoundedByWireRate) {
  for (const char* net : {"mx", "quadrics", "sci", "tcp", "gm"}) {
    simnet::NicProfile profile;
    ASSERT_TRUE(simnet::nic_profile_by_name(net, &profile));
    baseline::MpiStack stack = make_stack("madmpi", net);
    const double bw = pingpong_bandwidth_mbps(stack, 2u << 20, 2, 1);
    EXPECT_LT(bw, profile.bandwidth_mbps * 1.001) << net;
    EXPECT_GT(bw, profile.bandwidth_mbps * 0.5) << net;
  }
}

TEST(BenchCommon, MultisegLatencyScalesWithSegments) {
  baseline::MpiStack s8 = make_stack("mpich", "mx");
  baseline::MpiStack s16 = make_stack("mpich", "mx");
  const double t8 = multiseg_latency_us(s8, 8, 64, 3, 1);
  const double t16 = multiseg_latency_us(s16, 16, 64, 3, 1);
  EXPECT_GT(t16, t8 * 1.5);  // roughly linear in segment count for MPICH
  EXPECT_LT(t16, t8 * 2.5);
}

TEST(BenchCommon, DatatypeTransferDominatedByLargeBlocks) {
  baseline::MpiStack stack = make_stack("madmpi", "mx");
  const double t1 = datatype_transfer_us(stack, 1, 64, 256 * 1024, 2, 1);
  baseline::MpiStack stack4 = make_stack("madmpi", "mx");
  const double t4 = datatype_transfer_us(stack4, 4, 64, 256 * 1024, 2, 1);
  EXPECT_GT(t4, t1 * 3.0);  // ~linear in element count
  EXPECT_LT(t4, t1 * 5.0);
}

}  // namespace
}  // namespace nmad::bench
