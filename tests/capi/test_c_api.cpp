// The C API surface: lifecycle, transfers, error handling.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nmad.h"

namespace {

TEST(CApi, CreateQueryDestroy) {
  nmad_cluster_t* cluster = nmad_cluster_create("quadrics", 3, "aggreg");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(nmad_cluster_size(cluster), 3);
  EXPECT_DOUBLE_EQ(nmad_now_us(cluster), 0.0);
  nmad_cluster_destroy(cluster);
}

TEST(CApi, BadArgumentsReturnNull) {
  EXPECT_EQ(nmad_cluster_create("nosuchnet", 2, "aggreg"), nullptr);
  EXPECT_EQ(nmad_cluster_create("mx", 2, "nosuchstrategy"), nullptr);
  EXPECT_EQ(nmad_cluster_create("mx", 1, "aggreg"), nullptr);
  EXPECT_EQ(nmad_cluster_create(nullptr, 2, "aggreg"), nullptr);
}

TEST(CApi, TransferRoundTrip) {
  nmad_cluster_t* cluster = nmad_cluster_create("mx", 2, "aggreg");
  ASSERT_NE(cluster, nullptr);

  std::vector<char> out(10000), in(10000);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<char>(i * 13 + 1);
  }
  nmad_request_t* recv = nmad_irecv(cluster, 1, nmad_gate(cluster, 1, 0),
                                    42, in.data(), in.size());
  nmad_request_t* send = nmad_isend(cluster, 0, nmad_gate(cluster, 0, 1),
                                    42, out.data(), out.size());
  ASSERT_NE(recv, nullptr);
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(nmad_wait(cluster, recv), 0);
  EXPECT_EQ(nmad_wait(cluster, send), 0);
  EXPECT_EQ(nmad_test(recv), 1);
  EXPECT_EQ(nmad_received_bytes(recv), out.size());
  EXPECT_EQ(nmad_received_bytes(send), 0u);
  EXPECT_EQ(std::memcmp(in.data(), out.data(), out.size()), 0);
  EXPECT_GT(nmad_now_us(cluster), 0.0);

  nmad_request_free(recv);
  nmad_request_free(send);
  nmad_cluster_destroy(cluster);
}

TEST(CApi, TruncationReportedThroughWait) {
  nmad_cluster_t* cluster = nmad_cluster_create("mx", 2, "aggreg");
  ASSERT_NE(cluster, nullptr);

  std::vector<char> out(256), in(64);
  nmad_request_t* recv = nmad_irecv(cluster, 1, nmad_gate(cluster, 1, 0),
                                    1, in.data(), in.size());
  nmad_request_t* send = nmad_isend(cluster, 0, nmad_gate(cluster, 0, 1),
                                    1, out.data(), out.size());
  EXPECT_EQ(nmad_wait(cluster, send), 0);
  EXPECT_NE(nmad_wait(cluster, recv), 0);  // truncated

  nmad_request_free(recv);
  nmad_request_free(send);
  nmad_cluster_destroy(cluster);
}

TEST(CApi, ZeroByteMessage) {
  nmad_cluster_t* cluster = nmad_cluster_create("tcp", 2, "default");
  ASSERT_NE(cluster, nullptr);
  nmad_request_t* recv =
      nmad_irecv(cluster, 1, nmad_gate(cluster, 1, 0), 9, nullptr, 0);
  nmad_request_t* send =
      nmad_isend(cluster, 0, nmad_gate(cluster, 0, 1), 9, nullptr, 0);
  EXPECT_EQ(nmad_wait(cluster, recv), 0);
  EXPECT_EQ(nmad_wait(cluster, send), 0);
  nmad_request_free(recv);
  nmad_request_free(send);
  nmad_cluster_destroy(cluster);
}

TEST(CApi, NullBufferWithLengthRejected) {
  nmad_cluster_t* cluster = nmad_cluster_create("mx", 2, "aggreg");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(nmad_isend(cluster, 0, nmad_gate(cluster, 0, 1), 1, nullptr,
                       16),
            nullptr);
  EXPECT_EQ(nmad_irecv(cluster, 5, 0, 1, nullptr, 0), nullptr);  // bad node
  nmad_cluster_destroy(cluster);
}

}  // namespace
