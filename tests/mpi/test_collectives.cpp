// Split-phase collectives over every stack, several cluster sizes.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "baseline/stack.hpp"
#include "madmpi/collectives.hpp"

namespace nmad::mpi {
namespace {

using baseline::MpiStack;
using baseline::StackImpl;
using baseline::StackOptions;

struct Case {
  StackImpl impl;
  size_t nodes;
};

class Collectives : public ::testing::TestWithParam<Case> {
 protected:
  MpiStack make() const {
    StackOptions options;
    options.impl = GetParam().impl;
    options.nodes = GetParam().nodes;
    return MpiStack(std::move(options));
  }
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(stack_impl_name(info.param.impl)) + "_" +
         std::to_string(info.param.nodes) + "nodes";
}

using Ops = std::vector<std::unique_ptr<CollectiveOp>>;

void wait_all_ops(Ops& ops) {
  for (auto& op : ops) op->wait();
  ops.clear();
}

TEST_P(Collectives, BarrierCompletesEverywhere) {
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  Ops ops;
  for (int r = 0; r < size; ++r) {
    ops.push_back(ibarrier(stack.ep(r), kCommWorld));
  }
  wait_all_ops(ops);
  SUCCEED();
}

TEST_P(Collectives, BarrierSynchronizesTime) {
  // No rank may leave the barrier before the slowest rank has entered it.
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  const Datatype byte = Datatype::byte_type();

  // Delay rank 0's entry by keeping it busy with a large local transfer.
  std::vector<std::byte> big(1u << 20), sink(1u << 20);
  auto* r = stack.ep(1).irecv(sink.data(), 1 << 20, byte, 0, 99,
                              kCommWorld);
  auto* s = stack.ep(0).isend(big.data(), 1 << 20, byte, 1, 99, kCommWorld);
  stack.ep(0).wait(s);
  stack.ep(1).wait(r);
  stack.ep(0).free_request(s);
  stack.ep(1).free_request(r);
  const double entered_at = stack.now_us();
  ASSERT_GT(entered_at, 100.0);

  Ops ops;
  for (int rank = 0; rank < size; ++rank) {
    ops.push_back(ibarrier(stack.ep(rank), kCommWorld));
  }
  for (auto& op : ops) {
    op->wait();
    EXPECT_GE(stack.now_us(), entered_at);
  }
  ops.clear();
}

TEST_P(Collectives, BcastFromEveryRoot) {
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  const Datatype byte = Datatype::byte_type();
  constexpr size_t kLen = 4096;

  for (int root = 0; root < size; ++root) {
    std::vector<std::vector<std::byte>> bufs(size);
    Ops ops;
    for (int r = 0; r < size; ++r) {
      bufs[r].resize(kLen);
      if (r == root) util::fill_pattern({bufs[r].data(), kLen}, 40 + root);
      ops.push_back(ibcast(stack.ep(r), bufs[r].data(),
                           static_cast<int>(kLen), byte, root, kCommWorld));
    }
    wait_all_ops(ops);
    for (int r = 0; r < size; ++r) {
      EXPECT_TRUE(util::check_pattern({bufs[r].data(), kLen}, 40 + root))
          << "root " << root << " rank " << r;
    }
  }
}

TEST_P(Collectives, ReduceSumsToRoot) {
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  const Datatype int_t = Datatype::int_type();
  constexpr int kCount = 128;

  std::vector<std::vector<int>> contrib(size);
  std::vector<int> result(kCount, -1);
  Ops ops;
  for (int r = 0; r < size; ++r) {
    contrib[r].resize(kCount);
    for (int i = 0; i < kCount; ++i) contrib[r][i] = r * 1000 + i;
    ops.push_back(ireduce(stack.ep(r), contrib[r].data(),
                          r == 0 ? result.data() : nullptr, kCount, int_t,
                          sum_int(), /*root=*/0, kCommWorld));
  }
  wait_all_ops(ops);
  for (int i = 0; i < kCount; ++i) {
    int expected = 0;
    for (int r = 0; r < size; ++r) expected += r * 1000 + i;
    EXPECT_EQ(result[i], expected) << "element " << i;
  }
}

TEST_P(Collectives, AllreduceGivesEveryRankTheSum) {
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  const Datatype dbl = Datatype::double_type();
  constexpr int kCount = 64;

  std::vector<std::vector<double>> contrib(size), result(size);
  Ops ops;
  for (int r = 0; r < size; ++r) {
    contrib[r].resize(kCount);
    result[r].resize(kCount, -1.0);
    for (int i = 0; i < kCount; ++i) contrib[r][i] = r + i * 0.5;
    ops.push_back(iallreduce(stack.ep(r), contrib[r].data(),
                             result[r].data(), kCount, dbl, sum_double(),
                             kCommWorld));
  }
  wait_all_ops(ops);
  for (int r = 0; r < size; ++r) {
    for (int i = 0; i < kCount; ++i) {
      double expected = 0;
      for (int q = 0; q < size; ++q) expected += q + i * 0.5;
      EXPECT_DOUBLE_EQ(result[r][i], expected) << "rank " << r;
    }
  }
}

TEST_P(Collectives, GatherCollectsInRankOrder) {
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  const Datatype int_t = Datatype::int_type();
  constexpr int kCount = 16;

  std::vector<std::vector<int>> contrib(size);
  std::vector<int> gathered(kCount * size, -1);
  Ops ops;
  for (int r = 0; r < size; ++r) {
    contrib[r].resize(kCount);
    for (int i = 0; i < kCount; ++i) contrib[r][i] = r * 100 + i;
    ops.push_back(igather(stack.ep(r), contrib[r].data(),
                          r == 0 ? gathered.data() : nullptr, kCount, int_t,
                          /*root=*/0, kCommWorld));
  }
  wait_all_ops(ops);
  for (int r = 0; r < size; ++r) {
    for (int i = 0; i < kCount; ++i) {
      EXPECT_EQ(gathered[r * kCount + i], r * 100 + i);
    }
  }
}

TEST_P(Collectives, ScatterDistributesSlices) {
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  const Datatype int_t = Datatype::int_type();
  constexpr int kCount = 16;

  std::vector<int> source(kCount * size);
  std::iota(source.begin(), source.end(), 0);
  std::vector<std::vector<int>> slices(size);
  Ops ops;
  for (int r = 0; r < size; ++r) {
    slices[r].resize(kCount, -1);
    ops.push_back(iscatter(stack.ep(r),
                           r == 0 ? source.data() : nullptr,
                           slices[r].data(), kCount, int_t, /*root=*/0,
                           kCommWorld));
  }
  wait_all_ops(ops);
  for (int r = 0; r < size; ++r) {
    for (int i = 0; i < kCount; ++i) {
      EXPECT_EQ(slices[r][i], r * kCount + i);
    }
  }
}

TEST_P(Collectives, AlltoallTransposes) {
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  const Datatype int_t = Datatype::int_type();
  constexpr int kCount = 8;

  std::vector<std::vector<int>> send(size), recv(size);
  Ops ops;
  for (int r = 0; r < size; ++r) {
    send[r].resize(kCount * size);
    recv[r].resize(kCount * size, -1);
    for (int p = 0; p < size; ++p) {
      for (int i = 0; i < kCount; ++i) {
        send[r][p * kCount + i] = r * 10000 + p * 100 + i;
      }
    }
    ops.push_back(ialltoall(stack.ep(r), send[r].data(), recv[r].data(),
                            kCount, int_t, kCommWorld));
  }
  wait_all_ops(ops);
  for (int r = 0; r < size; ++r) {
    for (int p = 0; p < size; ++p) {
      for (int i = 0; i < kCount; ++i) {
        // recv[r] slot p came from rank p's slice destined to r.
        EXPECT_EQ(recv[r][p * kCount + i], p * 10000 + r * 100 + i)
            << "rank " << r << " from " << p;
      }
    }
  }
}

TEST_P(Collectives, BackToBackCollectivesKeepOrder) {
  // Two different collectives in flight; reserved tag sequencing must keep
  // them separate.
  MpiStack stack = make();
  const int size = static_cast<int>(GetParam().nodes);
  const Datatype byte = Datatype::byte_type();
  constexpr size_t kLen = 256;

  std::vector<std::vector<std::byte>> b1(size), b2(size);
  Ops ops;
  for (int r = 0; r < size; ++r) {
    b1[r].resize(kLen);
    b2[r].resize(kLen);
    if (r == 0) {
      util::fill_pattern({b1[r].data(), kLen}, 1);
      util::fill_pattern({b2[r].data(), kLen}, 2);
    }
    ops.push_back(ibcast(stack.ep(r), b1[r].data(), kLen, byte, 0,
                         kCommWorld));
    ops.push_back(ibcast(stack.ep(r), b2[r].data(), kLen, byte, 0,
                         kCommWorld));
  }
  wait_all_ops(ops);
  for (int r = 0; r < size; ++r) {
    EXPECT_TRUE(util::check_pattern({b1[r].data(), kLen}, 1)) << r;
    EXPECT_TRUE(util::check_pattern({b2[r].data(), kLen}, 2)) << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, Collectives,
    ::testing::Values(Case{StackImpl::kMadMpi, 2},
                      Case{StackImpl::kMadMpi, 3},
                      Case{StackImpl::kMadMpi, 5},
                      Case{StackImpl::kMpich, 2},
                      Case{StackImpl::kMpich, 4},
                      Case{StackImpl::kOpenMpi, 3}),
    case_name);

}  // namespace
}  // namespace nmad::mpi
