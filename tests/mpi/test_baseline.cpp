// Baseline (MPICH-sim / OpenMPI-sim) protocol behaviour: per-message
// processing, pipelining timing, pack/unpack charging, rendezvous.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/stack.hpp"
#include "util/buffer.hpp"

namespace nmad::baseline {
namespace {

using mpi::Datatype;
using mpi::kCommWorld;

MpiStack mx_stack(StackImpl impl) {
  StackOptions options;
  options.impl = impl;
  return MpiStack(std::move(options));
}

TEST(Baseline, TuningsDiffer) {
  const auto nic = simnet::mx_myri10g_profile();
  const Tuning mpich = mpich_tuning(nic);
  const Tuning ompi = openmpi_tuning(nic);
  EXPECT_LT(mpich.send_overhead_us, ompi.send_overhead_us);
  EXPECT_EQ(mpich.rndv_frag_bytes, 0u);
  EXPECT_GT(ompi.rndv_frag_bytes, 0u);
  EXPECT_TRUE(ompi.pipelined_pack);
  EXPECT_FALSE(mpich.pipelined_pack);
}

TEST(Baseline, StackImplNames) {
  StackImpl impl;
  EXPECT_TRUE(stack_impl_from_name("madmpi", &impl));
  EXPECT_EQ(impl, StackImpl::kMadMpi);
  EXPECT_TRUE(stack_impl_from_name("mpich", &impl));
  EXPECT_EQ(impl, StackImpl::kMpich);
  EXPECT_TRUE(stack_impl_from_name("ompi", &impl));
  EXPECT_EQ(impl, StackImpl::kOpenMpi);
  EXPECT_FALSE(stack_impl_from_name("lam", &impl));
  EXPECT_STREQ(stack_impl_name(StackImpl::kOpenMpi), "openmpi");
}

TEST(Baseline, EagerMessageOneFrame) {
  MpiStack stack = mx_stack(StackImpl::kMpich);
  auto& a = static_cast<BaselineEndpoint&>(stack.ep(0));
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  std::vector<std::byte> out(1024), in(1024);
  util::fill_pattern({out.data(), 1024}, 1);
  auto* r = b.irecv(in.data(), 1024, byte, 0, 0, kCommWorld);
  auto* s = a.isend(out.data(), 1024, byte, 1, 0, kCommWorld);
  b.wait(r);
  a.wait(s);
  EXPECT_EQ(a.stats().frames_sent, 1u);
  EXPECT_EQ(a.stats().rdv_count, 0u);
  EXPECT_TRUE(util::check_pattern({in.data(), 1024}, 1));
  a.free_request(s);
  b.free_request(r);
}

TEST(Baseline, LargeMessageUsesRendezvous) {
  MpiStack stack = mx_stack(StackImpl::kMpich);
  auto& a = static_cast<BaselineEndpoint&>(stack.ep(0));
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  const size_t len = 256 * 1024;
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), len}, 2);
  auto* r = b.irecv(in.data(), static_cast<int>(len), byte, 0, 0,
                    kCommWorld);
  auto* s = a.isend(out.data(), static_cast<int>(len), byte, 1, 0,
                    kCommWorld);
  b.wait(r);
  a.wait(s);
  EXPECT_EQ(a.stats().rdv_count, 1u);
  EXPECT_TRUE(util::check_pattern({in.data(), len}, 2));
  a.free_request(s);
  b.free_request(r);
}

TEST(Baseline, NoAggregationAcrossMessages) {
  // N messages → N frames, always (the defining contrast with nmad).
  MpiStack stack = mx_stack(StackImpl::kMpich);
  auto& a = static_cast<BaselineEndpoint&>(stack.ep(0));
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  constexpr int kN = 12;
  std::vector<std::vector<std::byte>> out(kN), in(kN);
  std::vector<mpi::Request*> reqs;
  for (int i = 0; i < kN; ++i) {
    out[i].resize(64);
    in[i].resize(64);
    util::fill_pattern({out[i].data(), 64}, 10 + i);
    reqs.push_back(b.irecv(in[i].data(), 64, byte, 0, i, kCommWorld));
  }
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(a.isend(out[i].data(), 64, byte, 1, i, kCommWorld));
  }
  for (auto* r : reqs) a.wait(r);
  EXPECT_EQ(a.stats().frames_sent, static_cast<uint64_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), 64}, 10 + i));
  }
  for (auto* r : reqs) a.free_request(r);
}

TEST(Baseline, PipeliningBeatsSerialRoundTrips) {
  // N pipelined one-way messages must take far less than N times a single
  // message (the overlap §5.2 credits MPICH with).
  const Datatype byte = Datatype::byte_type();
  constexpr int kN = 8;

  MpiStack serial = mx_stack(StackImpl::kMpich);
  std::vector<std::byte> buf(64), rbuf(64);
  double t0 = serial.now_us();
  for (int i = 0; i < kN; ++i) {
    auto* r = serial.ep(1).irecv(rbuf.data(), 64, byte, 0, i, kCommWorld);
    auto* s = serial.ep(0).isend(buf.data(), 64, byte, 1, i, kCommWorld);
    serial.ep(1).wait(r);  // forces full latency each time
    serial.ep(0).wait(s);
    serial.ep(0).free_request(s);
    serial.ep(1).free_request(r);
  }
  const double serial_time = serial.now_us() - t0;

  MpiStack piped = mx_stack(StackImpl::kMpich);
  std::vector<mpi::Request*> reqs;
  t0 = piped.now_us();
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(piped.ep(1).irecv(rbuf.data(), 64, byte, 0, i,
                                     kCommWorld));
  }
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(piped.ep(0).isend(buf.data(), 64, byte, 1, i,
                                     kCommWorld));
  }
  for (auto* r : reqs) piped.ep(0).wait(r);
  const double piped_time = piped.now_us() - t0;

  EXPECT_LT(piped_time, 0.7 * serial_time);
  for (auto* r : reqs) piped.ep(0).free_request(r);
}

TEST(Baseline, DatatypeSendChargesPackAndUnpack) {
  MpiStack stack = mx_stack(StackImpl::kMpich);
  auto& a = static_cast<BaselineEndpoint&>(stack.ep(0));
  auto& b = static_cast<BaselineEndpoint&>(stack.ep(1));

  const std::vector<int> lens = {64, 4096};
  const std::vector<ptrdiff_t> displs = {0, 128};
  const Datatype t = Datatype::hindexed(lens, displs, Datatype::byte_type());
  const size_t footprint = static_cast<size_t>(t.extent());
  std::vector<std::byte> out(footprint), in(footprint);
  util::fill_pattern({out.data(), footprint}, 3);

  auto* r = b.irecv(in.data(), 1, t, 0, 0, kCommWorld);
  auto* s = a.isend(out.data(), 1, t, 1, 0, kCommWorld);
  b.wait(r);
  a.wait(s);

  EXPECT_EQ(a.stats().pack_bytes, t.size());
  EXPECT_EQ(b.stats().unpack_bytes, t.size());
  // Typed regions intact, gap untouched.
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 64), 0);
  EXPECT_EQ(std::memcmp(in.data() + 128, out.data() + 128, 4096), 0);
  a.free_request(s);
  b.free_request(r);
}

TEST(Baseline, OpenMpiFragmentsRendezvous) {
  MpiStack stack = mx_stack(StackImpl::kOpenMpi);
  auto& a = static_cast<BaselineEndpoint&>(stack.ep(0));
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  const size_t len = 512 * 1024;  // 4 fragments of 128K
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), len}, 4);
  auto* r = b.irecv(in.data(), static_cast<int>(len), byte, 0, 0,
                    kCommWorld);
  auto* s = a.isend(out.data(), static_cast<int>(len), byte, 1, 0,
                    kCommWorld);
  b.wait(r);
  a.wait(s);
  EXPECT_TRUE(util::check_pattern({in.data(), len}, 4));
  a.free_request(s);
  b.free_request(r);
}

TEST(Baseline, UnexpectedEagerBuffered) {
  MpiStack stack = mx_stack(StackImpl::kMpich);
  auto& a = stack.ep(0);
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  std::vector<std::byte> out(512), in(512);
  util::fill_pattern({out.data(), 512}, 5);
  auto* s = a.isend(out.data(), 512, byte, 1, 3, kCommWorld);
  a.wait(s);
  stack.world().run_to_quiescence();  // delivered, nobody listening

  auto* r = b.irecv(in.data(), 512, byte, 0, 3, kCommWorld);
  b.wait(r);
  EXPECT_TRUE(util::check_pattern({in.data(), 512}, 5));
  a.free_request(s);
  b.free_request(r);
}

TEST(Baseline, UnexpectedRendezvousBuffered) {
  MpiStack stack = mx_stack(StackImpl::kMpich);
  auto& a = stack.ep(0);
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  const size_t len = 128 * 1024;
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), len}, 6);
  auto* s = a.isend(out.data(), static_cast<int>(len), byte, 1, 3,
                    kCommWorld);
  stack.world().run_to_quiescence();
  EXPECT_FALSE(s->done());  // waiting for CTS

  auto* r = b.irecv(in.data(), static_cast<int>(len), byte, 0, 3,
                    kCommWorld);
  b.wait(r);
  a.wait(s);
  EXPECT_TRUE(util::check_pattern({in.data(), len}, 6));
  a.free_request(s);
  b.free_request(r);
}

TEST(Baseline, TruncationReported) {
  MpiStack stack = mx_stack(StackImpl::kMpich);
  auto& a = stack.ep(0);
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  std::vector<std::byte> out(256), in(64);
  auto* r = b.irecv(in.data(), 64, byte, 0, 0, kCommWorld);
  auto* s = a.isend(out.data(), 256, byte, 1, 0, kCommWorld);
  a.wait(s);
  b.wait(r);
  EXPECT_FALSE(r->status().is_ok());
  a.free_request(s);
  b.free_request(r);
}

TEST(Baseline, TcpStackWithoutRdmaStillDeliversLargeMessages) {
  StackOptions options;
  options.impl = StackImpl::kMpich;
  options.nic = simnet::tcp_gige_profile();
  MpiStack stack{std::move(options)};
  auto& a = stack.ep(0);
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  const size_t len = 300 * 1024;  // multi-frame eager path (no RDMA)
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), len}, 7);
  auto* r = b.irecv(in.data(), static_cast<int>(len), byte, 0, 0,
                    kCommWorld);
  auto* s = a.isend(out.data(), static_cast<int>(len), byte, 1, 0,
                    kCommWorld);
  b.wait(r);
  a.wait(s);
  EXPECT_TRUE(util::check_pattern({in.data(), len}, 7));
  a.free_request(s);
  b.free_request(r);
}

TEST(Baseline, ZeroByteMessage) {
  MpiStack stack = mx_stack(StackImpl::kOpenMpi);
  auto& a = stack.ep(0);
  auto& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();
  auto* r = b.irecv(nullptr, 0, byte, 0, 0, kCommWorld);
  auto* s = a.isend(nullptr, 0, byte, 1, 0, kCommWorld);
  b.wait(r);
  a.wait(s);
  EXPECT_TRUE(r->status().is_ok());
  a.free_request(s);
  b.free_request(r);
}

}  // namespace
}  // namespace nmad::baseline
