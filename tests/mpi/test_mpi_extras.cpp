// MPI-layer extras: iprobe, sendrecv, wait_any/wait_all/test_all, and
// engine behaviour on a non-RDMA (TCP) fabric.
#include <gtest/gtest.h>

#include <vector>

#include "baseline/stack.hpp"
#include "nmad/api/session.hpp"
#include "util/buffer.hpp"

namespace nmad::mpi {
namespace {

using baseline::MpiStack;
using baseline::StackImpl;
using baseline::StackOptions;

class Extras : public ::testing::TestWithParam<StackImpl> {
 protected:
  MpiStack make(size_t nodes = 2) const {
    StackOptions options;
    options.impl = GetParam();
    options.nodes = nodes;
    return MpiStack(std::move(options));
  }
};

TEST_P(Extras, IprobeSeesUnexpectedEager) {
  MpiStack stack = make();
  Endpoint& a = stack.ep(0);
  Endpoint& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  EXPECT_FALSE(b.iprobe(0, 7, kCommWorld).matched);

  std::vector<std::byte> out(300);
  auto* s = a.isend(out.data(), 300, byte, 1, 7, kCommWorld);
  a.wait(s);
  stack.world().run_to_quiescence();

  const ProbeStatus probe = b.iprobe(0, 7, kCommWorld);
  EXPECT_TRUE(probe.matched);
  EXPECT_EQ(probe.bytes, 300u);
  // Probing must not consume: a different tag still reports nothing, and
  // the receive still matches.
  EXPECT_FALSE(b.iprobe(0, 8, kCommWorld).matched);

  std::vector<std::byte> in(300);
  auto* r = b.irecv(in.data(), 300, byte, 0, 7, kCommWorld);
  b.wait(r);
  EXPECT_TRUE(r->status().is_ok());
  a.free_request(s);
  b.free_request(r);

  // Consumed now.
  EXPECT_FALSE(b.iprobe(0, 7, kCommWorld).matched);
}

TEST_P(Extras, IprobeSeesRendezvousAnnouncement) {
  MpiStack stack = make();
  Endpoint& a = stack.ep(0);
  Endpoint& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  const size_t len = 256 * 1024;
  std::vector<std::byte> out(len);
  auto* s = a.isend(out.data(), static_cast<int>(len), byte, 1, 2,
                    kCommWorld);
  stack.world().run_to_quiescence();  // RTS parked, no CTS yet

  const ProbeStatus probe = b.iprobe(0, 2, kCommWorld);
  EXPECT_TRUE(probe.matched);
  EXPECT_EQ(probe.bytes, len);

  std::vector<std::byte> in(len);
  auto* r = b.irecv(in.data(), static_cast<int>(len), byte, 0, 2,
                    kCommWorld);
  b.wait(r);
  a.wait(s);
  a.free_request(s);
  b.free_request(r);
}

TEST_P(Extras, SendrecvExchangesHeadToHead) {
  MpiStack stack = make();
  const Datatype byte = Datatype::byte_type();
  std::vector<std::byte> a_out(512), a_in(512), b_out(512), b_in(512);
  util::fill_pattern({a_out.data(), 512}, 1);
  util::fill_pattern({b_out.data(), 512}, 2);

  // Both directions posted split-phase on B, then the blocking sendrecv
  // on A drives the exchange.
  auto* rb = stack.ep(1).irecv(b_in.data(), 512, byte, 0, 1, kCommWorld);
  auto* sb = stack.ep(1).isend(b_out.data(), 512, byte, 0, 2, kCommWorld);
  stack.ep(0).sendrecv(a_out.data(), 512, byte, 1, 1, a_in.data(), 512,
                       byte, 1, 2, kCommWorld);
  stack.ep(1).wait(rb);
  stack.ep(1).wait(sb);

  EXPECT_TRUE(util::check_pattern({b_in.data(), 512}, 1));
  EXPECT_TRUE(util::check_pattern({a_in.data(), 512}, 2));
  stack.ep(1).free_request(rb);
  stack.ep(1).free_request(sb);
}

TEST_P(Extras, WaitAnyReturnsACompletedIndex) {
  MpiStack stack = make();
  Endpoint& a = stack.ep(0);
  Endpoint& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  // Recv 0 will never match; recv 1 will.
  std::vector<std::byte> in0(64), in1(64), out(64);
  util::fill_pattern({out.data(), 64}, 9);
  std::vector<Request*> reqs = {
      b.irecv(in0.data(), 64, byte, 0, 100, kCommWorld),
      b.irecv(in1.data(), 64, byte, 0, 5, kCommWorld),
  };
  auto* s = a.isend(out.data(), 64, byte, 1, 5, kCommWorld);

  const size_t idx = b.wait_any(reqs);
  EXPECT_EQ(idx, 1u);
  EXPECT_FALSE(Endpoint::test_all(reqs));
  EXPECT_TRUE(util::check_pattern({in1.data(), 64}, 9));

  a.wait(s);
  a.free_request(s);
  b.free_request(reqs[1]);
  // reqs[0] never completes; satisfy it so teardown is clean.
  auto* s2 = a.isend(out.data(), 64, byte, 1, 100, kCommWorld);
  b.wait(reqs[0]);
  a.wait(s2);
  a.free_request(s2);
  b.free_request(reqs[0]);
}

TEST_P(Extras, WaitAllCompletesEverything) {
  MpiStack stack = make();
  Endpoint& a = stack.ep(0);
  Endpoint& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  constexpr int kN = 5;
  std::vector<std::vector<std::byte>> in(kN), out(kN);
  std::vector<Request*> reqs;
  for (int i = 0; i < kN; ++i) {
    in[i].resize(128);
    out[i].resize(128);
    util::fill_pattern({out[i].data(), 128}, i);
    reqs.push_back(b.irecv(in[i].data(), 128, byte, 0, i, kCommWorld));
  }
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(a.isend(out[i].data(), 128, byte, 1, i, kCommWorld));
  }
  b.wait_all(reqs);
  EXPECT_TRUE(Endpoint::test_all(reqs));
  for (int i = 0; i < kN; ++i) {
    EXPECT_TRUE(util::check_pattern({in[i].data(), 128}, i));
  }
  for (auto* r : reqs) b.free_request(r);
}

INSTANTIATE_TEST_SUITE_P(AllStacks, Extras,
                         ::testing::Values(StackImpl::kMadMpi,
                                           StackImpl::kMpich,
                                           StackImpl::kOpenMpi),
                         [](const auto& info) {
                           return std::string(
                               baseline::stack_impl_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Engine on a non-RDMA fabric (TCP): no rendezvous possible, so large
// messages must pipeline as eager fragments and still arrive intact.
// ---------------------------------------------------------------------------

TEST(TcpEngine, LargeMessageWithoutRdmaPipelinesFragments) {
  api::ClusterOptions options;
  options.rails = {simnet::tcp_gige_profile()};
  api::Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  const size_t len = 512 * 1024;
  std::vector<std::byte> src(len), dst(len);
  util::fill_pattern({src.data(), len}, 12);

  auto* recv = b.irecv(cluster.gate(1, 0), 1, {dst.data(), len});
  auto* send = a.isend(cluster.gate(0, 1), 1, {src.data(), len});
  cluster.wait(send);
  cluster.wait(recv);

  EXPECT_TRUE(util::check_pattern({dst.data(), len}, 12));
  EXPECT_EQ(a.stats().rdv_started, 0u);     // no RDMA rail → no rendezvous
  EXPECT_GT(a.stats().packets_sent, 4u);    // fragment pipeline
  a.release(send);
  b.release(recv);
}

TEST(TcpEngine, MadMpiStackOverTcp) {
  StackOptions options;
  options.impl = StackImpl::kMadMpi;
  options.nic = simnet::tcp_gige_profile();
  MpiStack stack(std::move(options));
  const Datatype byte = Datatype::byte_type();

  const size_t len = 200 * 1024;
  std::vector<std::byte> out(len), in(len);
  util::fill_pattern({out.data(), len}, 3);
  auto* r = stack.ep(1).irecv(in.data(), static_cast<int>(len), byte, 0, 0,
                              kCommWorld);
  auto* s = stack.ep(0).isend(out.data(), static_cast<int>(len), byte, 1, 0,
                              kCommWorld);
  stack.ep(1).wait(r);
  stack.ep(0).wait(s);
  EXPECT_TRUE(util::check_pattern({in.data(), len}, 3));
  stack.ep(0).free_request(s);
  stack.ep(1).free_request(r);
}

TEST(SciEngine, RendezvousOnSciRail) {
  api::ClusterOptions options;
  options.rails = {simnet::sci_profile()};
  api::Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  const size_t len = 64 * 1024;  // above the 8K SCI threshold
  std::vector<std::byte> src(len), dst(len);
  util::fill_pattern({src.data(), len}, 4);
  auto* recv = b.irecv(cluster.gate(1, 0), 1, {dst.data(), len});
  auto* send = a.isend(cluster.gate(0, 1), 1, {src.data(), len});
  cluster.wait(send);
  cluster.wait(recv);
  EXPECT_TRUE(util::check_pattern({dst.data(), len}, 4));
  EXPECT_EQ(a.stats().rdv_started, 1u);
  a.release(send);
  b.release(recv);
}

}  // namespace
}  // namespace nmad::mpi
