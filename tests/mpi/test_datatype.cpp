// Derived datatype construction laws: size/extent, block flattening,
// coalescing, layouts, and pack/unpack as inverses.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "madmpi/datatype.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace nmad::mpi {
namespace {

TEST(Datatype, PredefinedSizes) {
  EXPECT_EQ(Datatype::byte_type().size(), 1u);
  EXPECT_EQ(Datatype::byte_type().extent(), 1);
  EXPECT_EQ(Datatype::int_type().size(), sizeof(int));
  EXPECT_EQ(Datatype::double_type().size(), sizeof(double));
  EXPECT_TRUE(Datatype::byte_type().is_contiguous());
}

TEST(Datatype, ContiguousCoalescesToOneBlock) {
  const Datatype t = Datatype::contiguous(100, Datatype::int_type());
  EXPECT_EQ(t.size(), 400u);
  EXPECT_EQ(t.extent(), 400);
  EXPECT_EQ(t.blocks().size(), 1u);
  EXPECT_TRUE(t.is_contiguous());
}

TEST(Datatype, VectorShape) {
  // 3 blocks of 2 ints, stride 4 ints.
  const Datatype t = Datatype::vector(3, 2, 4, Datatype::int_type());
  EXPECT_EQ(t.size(), 3u * 2 * sizeof(int));
  EXPECT_EQ(t.extent(),
            static_cast<ptrdiff_t>((2 * 4 + 2) * sizeof(int)));
  ASSERT_EQ(t.blocks().size(), 3u);
  EXPECT_EQ(t.blocks()[0].disp, 0);
  EXPECT_EQ(t.blocks()[0].len, 8u);
  EXPECT_EQ(t.blocks()[1].disp, 16);
  EXPECT_EQ(t.blocks()[2].disp, 32);
  EXPECT_FALSE(t.is_contiguous());
}

TEST(Datatype, VectorWithStrideEqualBlockIsContiguous) {
  const Datatype t = Datatype::vector(4, 3, 3, Datatype::int_type());
  EXPECT_EQ(t.blocks().size(), 1u);
  EXPECT_EQ(t.size(), 48u);
  EXPECT_TRUE(t.is_contiguous());
}

TEST(Datatype, HvectorByteStride) {
  const Datatype t = Datatype::hvector(2, 1, 100, Datatype::double_type());
  ASSERT_EQ(t.blocks().size(), 2u);
  EXPECT_EQ(t.blocks()[1].disp, 100);
  EXPECT_EQ(t.extent(), 108);
}

TEST(Datatype, IndexedGapsPreserved) {
  const std::vector<int> lens = {2, 3};
  const std::vector<int> displs = {0, 5};
  const Datatype t = Datatype::indexed(lens, displs, Datatype::int_type());
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.extent(), 32);
  ASSERT_EQ(t.blocks().size(), 2u);
  EXPECT_EQ(t.blocks()[1].disp, 20);
  EXPECT_EQ(t.blocks()[1].len, 12u);
}

TEST(Datatype, HindexedPaperShape) {
  // §5.3: one 64-byte block followed by one 256 KB block.
  const std::vector<int> lens = {64, 256 * 1024};
  const std::vector<ptrdiff_t> displs = {0, 64 + 512};
  const Datatype t = Datatype::hindexed(lens, displs, Datatype::byte_type());
  EXPECT_EQ(t.size(), 64u + 256 * 1024);
  EXPECT_EQ(t.extent(), 64 + 512 + 256 * 1024);
  ASSERT_EQ(t.blocks().size(), 2u);
}

TEST(Datatype, StructCombinesHeterogeneousTypes) {
  const std::vector<int> lens = {1, 4};
  const std::vector<ptrdiff_t> displs = {0, 8};
  const std::vector<Datatype> types = {Datatype::double_type(),
                                       Datatype::int_type()};
  const Datatype t = Datatype::struct_type(lens, displs, types);
  EXPECT_EQ(t.size(), 8u + 16);
  EXPECT_EQ(t.extent(), 24);
  EXPECT_EQ(t.blocks().size(), 1u);  // adjacent, coalesced
}

TEST(Datatype, NestedVectorOfVector) {
  const Datatype inner = Datatype::vector(2, 1, 2, Datatype::int_type());
  ASSERT_EQ(inner.blocks().size(), 2u);
  EXPECT_EQ(inner.extent(), 12);  // last block ends at byte 12
  const Datatype outer = Datatype::contiguous(2, inner);
  EXPECT_EQ(outer.size(), 4u * sizeof(int));
  // Element 0 ends with a block at [8,12); element 1 starts with a block
  // at [12,16): they touch in memory and coalesce, leaving three blocks.
  EXPECT_EQ(outer.blocks().size(), 3u);
}

TEST(Datatype, ZeroCountIsEmpty) {
  const Datatype t = Datatype::contiguous(0, Datatype::int_type());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.extent(), 0);
  EXPECT_TRUE(t.blocks().empty());
}

TEST(Datatype, PackUnpackInverse) {
  const std::vector<int> lens = {3, 1, 4};
  const std::vector<int> displs = {0, 5, 8};
  const Datatype t = Datatype::indexed(lens, displs, Datatype::int_type());

  const int count = 3;
  const size_t footprint =
      static_cast<size_t>(t.extent()) * static_cast<size_t>(count);
  std::vector<std::byte> src(footprint);
  util::fill_pattern({src.data(), footprint}, 77);

  std::vector<std::byte> packed(t.size() * count);
  t.pack(src.data(), count, {packed.data(), packed.size()});

  std::vector<std::byte> restored(footprint, std::byte{0});
  t.unpack({packed.data(), packed.size()}, restored.data(), count);

  // Typed regions must match the original; gaps stay zero.
  for (int e = 0; e < count; ++e) {
    const ptrdiff_t base = e * t.extent();
    for (const auto& b : t.blocks()) {
      EXPECT_EQ(std::memcmp(restored.data() + base + b.disp,
                            src.data() + base + b.disp, b.len),
                0);
    }
  }
}

TEST(Datatype, SourceLayoutMatchesPack) {
  // The engine layout must enumerate exactly the bytes pack() would copy,
  // in the same order.
  const std::vector<int> lens = {2, 5};
  const std::vector<int> displs = {1, 4};
  const Datatype t = Datatype::indexed(lens, displs, Datatype::int_type());
  const int count = 2;

  const size_t footprint =
      static_cast<size_t>(t.extent()) * static_cast<size_t>(count);
  std::vector<std::byte> buf(footprint);
  util::fill_pattern({buf.data(), footprint}, 4);

  std::vector<std::byte> packed(t.size() * count);
  t.pack(buf.data(), count, {packed.data(), packed.size()});

  core::SourceLayout layout = t.source_layout(buf.data(), count);
  ASSERT_EQ(layout.total(), packed.size());
  std::vector<std::byte> gathered;
  for (const auto& block : layout.blocks()) {
    gathered.insert(gathered.end(), block.memory.begin(),
                    block.memory.end());
  }
  ASSERT_EQ(gathered.size(), packed.size());
  EXPECT_EQ(std::memcmp(gathered.data(), packed.data(), packed.size()), 0);
}

TEST(Datatype, DestLayoutMatchesUnpack) {
  const std::vector<int> lens = {3, 2};
  const std::vector<int> displs = {0, 4};
  const Datatype t = Datatype::indexed(lens, displs, Datatype::int_type());
  const int count = 2;

  std::vector<std::byte> packed(t.size() * count);
  util::fill_pattern({packed.data(), packed.size()}, 9);

  const size_t footprint =
      static_cast<size_t>(t.extent()) * static_cast<size_t>(count);
  std::vector<std::byte> via_unpack(footprint, std::byte{0});
  t.unpack({packed.data(), packed.size()}, via_unpack.data(), count);

  std::vector<std::byte> via_layout(footprint, std::byte{0});
  core::DestLayout layout = t.dest_layout(via_layout.data(), count);
  layout.scatter(0, {packed.data(), packed.size()});

  EXPECT_EQ(std::memcmp(via_unpack.data(), via_layout.data(), footprint), 0);
}

TEST(Datatype, LayoutCoalescesAcrossElements) {
  // Contiguous type, many elements: the engine should see ONE block, so a
  // large send still qualifies for single-RTS zero-copy rendezvous.
  const Datatype t = Datatype::contiguous(1024, Datatype::byte_type());
  std::vector<std::byte> buf(1024 * 64);
  core::SourceLayout layout = t.source_layout(buf.data(), 64);
  EXPECT_EQ(layout.blocks().size(), 1u);
  EXPECT_EQ(layout.total(), 1024u * 64);
}

// Property: random indexed types — pack → unpack restores typed bytes,
// and layouts agree with pack on every trial.
TEST(Datatype, RandomizedPackLayoutAgreement) {
  util::Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    const int nblocks = static_cast<int>(rng.next_range(1, 6));
    std::vector<int> lens(nblocks);
    std::vector<ptrdiff_t> displs(nblocks);
    ptrdiff_t pos = 0;
    for (int i = 0; i < nblocks; ++i) {
      pos += static_cast<ptrdiff_t>(rng.next_below(32));  // gap
      displs[i] = pos;
      lens[i] = static_cast<int>(rng.next_range(1, 64));
      pos += lens[i];
    }
    const Datatype t =
        Datatype::hindexed(lens, displs, Datatype::byte_type());
    const int count = static_cast<int>(rng.next_range(1, 4));

    const size_t footprint =
        static_cast<size_t>(t.extent()) * static_cast<size_t>(count);
    std::vector<std::byte> buf(footprint);
    util::fill_pattern({buf.data(), footprint}, trial);

    std::vector<std::byte> packed(t.size() * count);
    t.pack(buf.data(), count, {packed.data(), packed.size()});

    core::SourceLayout layout = t.source_layout(buf.data(), count);
    std::vector<std::byte> gathered;
    for (const auto& block : layout.blocks()) {
      gathered.insert(gathered.end(), block.memory.begin(),
                      block.memory.end());
    }
    ASSERT_EQ(gathered.size(), packed.size());
    EXPECT_EQ(std::memcmp(gathered.data(), packed.data(), packed.size()), 0)
        << "trial " << trial;

    std::vector<std::byte> restored(footprint, std::byte{0});
    t.unpack({packed.data(), packed.size()}, restored.data(), count);
    for (int e = 0; e < count; ++e) {
      const ptrdiff_t base = e * t.extent();
      for (const auto& b : t.blocks()) {
        ASSERT_EQ(std::memcmp(restored.data() + base + b.disp,
                              buf.data() + base + b.disp, b.len),
                  0)
            << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace nmad::mpi
