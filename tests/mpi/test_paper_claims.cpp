// Regression tests for the paper's evaluation claims (§5).
//
// These assert the *shape* of each result — who wins, by roughly what
// factor — on reduced sweeps, so a refactor that silently breaks an
// optimization (aggregation, zero-copy rendezvous, control piggybacking)
// fails the suite even though byte-level correctness still holds.
#include <gtest/gtest.h>

#include "bench/common.hpp"

namespace nmad::bench {
namespace {

// §5.1: "MAD-MPI introduces a constant overhead of less than 0.5 µs".
TEST(PaperClaims, Sec51_OverheadSmallAndConstant) {
  for (const char* net : {"mx", "quadrics"}) {
    double min_ovh = 1e9, max_ovh = -1e9;
    for (size_t size : {4u, 64u, 1024u}) {
      baseline::MpiStack mad = make_stack("madmpi", net);
      baseline::MpiStack mpich = make_stack("mpich", net);
      const double ovh = pingpong_latency_us(mad, size, 5, 1) -
                         pingpong_latency_us(mpich, size, 5, 1);
      min_ovh = std::min(min_ovh, ovh);
      max_ovh = std::max(max_ovh, ovh);
    }
    EXPECT_GT(min_ovh, 0.0) << net;       // the optimizer is not free
    EXPECT_LT(max_ovh, 0.6) << net;       // but it is cheap
    EXPECT_LT(max_ovh - min_ovh, 0.2) << net;  // and roughly constant
  }
}

// §5.1: 1155 MB/s over Myri-10G, 835 MB/s over Quadrics.
TEST(PaperClaims, Sec51_PeakBandwidth) {
  baseline::MpiStack mx = make_stack("madmpi", "mx");
  const double bw_mx = pingpong_bandwidth_mbps(mx, 2u << 20, 5, 1);
  EXPECT_GT(bw_mx, 1000.0);
  EXPECT_LT(bw_mx, 1260.0);

  baseline::MpiStack qs = make_stack("madmpi", "quadrics");
  const double bw_qs = pingpong_bandwidth_mbps(qs, 2u << 20, 5, 1);
  EXPECT_GT(bw_qs, 750.0);
  EXPECT_LT(bw_qs, 920.0);
}

// Figure 2: on regular single-segment traffic the native MPIs win
// slightly at small sizes (no optimization opportunity), and everybody
// converges at the wire limit for large messages.
TEST(PaperClaims, Fig2_NoOptimizationOpportunityMeansSmallLoss) {
  baseline::MpiStack mad = make_stack("madmpi", "mx");
  baseline::MpiStack mpich = make_stack("mpich", "mx");
  const double lat_mad = pingpong_latency_us(mad, 4, 5, 1);
  const double lat_mpich = pingpong_latency_us(mpich, 4, 5, 1);
  EXPECT_GT(lat_mad, lat_mpich);
  EXPECT_LT(lat_mad, lat_mpich * 1.25);  // "negligible overhead"

  const double bw_mad = pingpong_bandwidth_mbps(mad, 2u << 20, 3, 1);
  const double bw_mpich = pingpong_bandwidth_mbps(mpich, 2u << 20, 3, 1);
  EXPECT_NEAR(bw_mad / bw_mpich, 1.0, 0.05);
}

// Figure 3 / §5.2: multi-segment messages — MAD-MPI "up to 70 % faster"
// over MX, "up to 50 %" over Quadrics; the advantage is largest for small
// segments and shrinks as the wire dominates.
TEST(PaperClaims, Fig3_AggregationWinsOnMx) {
  baseline::MpiStack mad = make_stack("madmpi", "mx");
  baseline::MpiStack mpich = make_stack("mpich", "mx");
  baseline::MpiStack ompi = make_stack("openmpi", "mx");
  const double mad16 = multiseg_latency_us(mad, 16, 4, 5, 1);
  const double mpich16 = multiseg_latency_us(mpich, 16, 4, 5, 1);
  const double ompi16 = multiseg_latency_us(ompi, 16, 4, 5, 1);
  const double gain = gain_percent(mad16, std::min(mpich16, ompi16));
  EXPECT_GT(gain, 50.0);  // paper: up to 70 %
  EXPECT_LT(gain, 80.0);
}

TEST(PaperClaims, Fig3_AggregationWinsOnQuadrics) {
  baseline::MpiStack mad = make_stack("madmpi", "quadrics");
  baseline::MpiStack mpich = make_stack("mpich", "quadrics");
  const double mad16 = multiseg_latency_us(mad, 16, 4, 5, 1);
  const double mpich16 = multiseg_latency_us(mpich, 16, 4, 5, 1);
  const double gain = gain_percent(mad16, mpich16);
  EXPECT_GT(gain, 35.0);  // paper: up to 50 %
  EXPECT_LT(gain, 60.0);
}

TEST(PaperClaims, Fig3_AdvantageShrinksWithSegmentSize) {
  baseline::MpiStack mad_s = make_stack("madmpi", "mx");
  baseline::MpiStack mpich_s = make_stack("mpich", "mx");
  const double gain_small =
      gain_percent(multiseg_latency_us(mad_s, 8, 4, 5, 1),
                   multiseg_latency_us(mpich_s, 8, 4, 5, 1));
  baseline::MpiStack mad_l = make_stack("madmpi", "mx");
  baseline::MpiStack mpich_l = make_stack("mpich", "mx");
  const double gain_large =
      gain_percent(multiseg_latency_us(mad_l, 8, 8 * 1024, 3, 1),
                   multiseg_latency_us(mpich_l, 8, 8 * 1024, 3, 1));
  EXPECT_GT(gain_small, gain_large + 20.0);
}

// Figure 4 / §5.3: indexed datatypes — "a gain of about 70 % in
// comparison with MPICH and about 50 % with OpenMPI over MX and until
// about 70 % versus MPICH over Quadrics".
TEST(PaperClaims, Fig4_DatatypeGainsOnMx) {
  baseline::MpiStack mad = make_stack("madmpi", "mx");
  baseline::MpiStack mpich = make_stack("mpich", "mx");
  baseline::MpiStack ompi = make_stack("openmpi", "mx");
  const double t_mad = datatype_transfer_us(mad, 4);
  const double t_mpich = datatype_transfer_us(mpich, 4);
  const double t_ompi = datatype_transfer_us(ompi, 4);

  const double gain_mpich = gain_percent(t_mad, t_mpich);
  EXPECT_GT(gain_mpich, 50.0);  // paper ≈ 70 %
  EXPECT_LT(gain_mpich, 80.0);

  const double gain_ompi = gain_percent(t_mad, t_ompi);
  EXPECT_GT(gain_ompi, 40.0);  // paper ≈ 50 %
  EXPECT_LT(gain_ompi, 65.0);

  // OpenMPI's pipelined datatype engine beats MPICH's pack-then-send.
  EXPECT_LT(t_ompi, t_mpich);
}

TEST(PaperClaims, Fig4_DatatypeGainsOnQuadrics) {
  baseline::MpiStack mad = make_stack("madmpi", "quadrics");
  baseline::MpiStack mpich = make_stack("mpich", "quadrics");
  const double gain = gain_percent(datatype_transfer_us(mad, 4),
                                   datatype_transfer_us(mpich, 4));
  EXPECT_GT(gain, 50.0);  // paper ≈ 70 %
  EXPECT_LT(gain, 80.0);
}

// §5.2 mechanism check: the win really comes from cross-flow aggregation —
// with the `default` (no-optimization) strategy the advantage disappears.
TEST(PaperClaims, Fig3_GainVanishesWithoutAggregation) {
  core::CoreConfig no_opt;
  no_opt.strategy = "default";
  baseline::MpiStack mad_off = make_stack("madmpi", "mx", no_opt);
  baseline::MpiStack mad_on = make_stack("madmpi", "mx");
  const double t_off = multiseg_latency_us(mad_off, 16, 4, 5, 1);
  const double t_on = multiseg_latency_us(mad_on, 16, 4, 5, 1);
  EXPECT_LT(t_on, 0.5 * t_off);  // aggregation is the mechanism
}

}  // namespace
}  // namespace nmad::bench
