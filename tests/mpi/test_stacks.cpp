// Cross-stack integration tests: the same MPI program must deliver
// identical bytes on MAD-MPI, MPICH-sim and OpenMPI-sim, across message
// sizes spanning eager and rendezvous, contiguous and derived datatypes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/stack.hpp"
#include "util/buffer.hpp"

namespace nmad {
namespace {

using baseline::MpiStack;
using baseline::StackImpl;
using baseline::StackOptions;
using mpi::Datatype;
using mpi::kCommWorld;

struct StackCase {
  StackImpl impl;
  std::string net;
};

class StackPingPong
    : public ::testing::TestWithParam<std::tuple<StackCase, size_t>> {};

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<StackCase, size_t>>& info) {
  const auto& [sc, size] = info.param;
  return std::string(stack_impl_name(sc.impl)) + "_" + sc.net + "_" +
         std::to_string(size);
}

MpiStack make_stack(const StackCase& sc) {
  StackOptions options;
  options.impl = sc.impl;
  simnet::NicProfile nic;
  EXPECT_TRUE(simnet::nic_profile_by_name(sc.net, &nic));
  options.nic = nic;
  return MpiStack(std::move(options));
}

TEST_P(StackPingPong, RoundTripPreservesBytes) {
  const auto& [sc, size] = GetParam();
  MpiStack stack = make_stack(sc);
  mpi::Endpoint& a = stack.ep(0);
  mpi::Endpoint& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  std::vector<std::byte> out(size), echo(size), in(size);
  util::fill_pattern({out.data(), size}, size + 1);

  // A → B, then B echoes back to A.
  auto* r0 = b.irecv(echo.data(), static_cast<int>(size), byte, 0, 1,
                     kCommWorld);
  auto* s0 = a.isend(out.data(), static_cast<int>(size), byte, 1, 1,
                     kCommWorld);
  b.wait(r0);
  a.wait(s0);
  EXPECT_TRUE(r0->status().is_ok());

  auto* r1 = a.irecv(in.data(), static_cast<int>(size), byte, 1, 2,
                     kCommWorld);
  auto* s1 = b.isend(echo.data(), static_cast<int>(size), byte, 0, 2,
                     kCommWorld);
  a.wait(r1);
  b.wait(s1);

  EXPECT_TRUE(util::check_pattern({in.data(), size}, size + 1));
  EXPECT_GT(stack.now_us(), 0.0);

  a.free_request(s0);
  a.free_request(r1);
  b.free_request(r0);
  b.free_request(s1);
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, StackPingPong,
    ::testing::Combine(
        ::testing::Values(StackCase{StackImpl::kMadMpi, "mx"},
                          StackCase{StackImpl::kMpich, "mx"},
                          StackCase{StackImpl::kOpenMpi, "mx"},
                          StackCase{StackImpl::kMadMpi, "quadrics"},
                          StackCase{StackImpl::kMpich, "quadrics"}),
        ::testing::Values(size_t{0}, size_t{1}, size_t{4}, size_t{256},
                          size_t{4096}, size_t{32768}, size_t{65536},
                          size_t{1u << 20})),
    case_name);

class StackDatatype : public ::testing::TestWithParam<StackCase> {};

TEST_P(StackDatatype, IndexedTypeRoundTrips) {
  MpiStack stack = make_stack(GetParam());
  mpi::Endpoint& a = stack.ep(0);
  mpi::Endpoint& b = stack.ep(1);

  // The paper's §5.3 shape: a small block followed by a large block.
  constexpr size_t kSmall = 64;
  constexpr size_t kLarge = 256 * 1024;
  const Datatype byte = Datatype::byte_type();
  const std::vector<int> lens = {kSmall, kLarge};
  const std::vector<ptrdiff_t> displs = {0, kSmall + 128};  // gap of 128
  const Datatype indexed = Datatype::hindexed(lens, displs, byte);
  ASSERT_EQ(indexed.size(), kSmall + kLarge);

  const size_t footprint = static_cast<size_t>(indexed.extent());
  std::vector<std::byte> src(footprint, std::byte{0});
  std::vector<std::byte> dst(footprint, std::byte{0});
  // Fill only the typed regions.
  util::fill_pattern({src.data(), kSmall}, 91);
  util::fill_pattern({src.data() + displs[1], kLarge}, 92);

  auto* recv = b.irecv(dst.data(), 1, indexed, 0, 3, kCommWorld);
  auto* send = a.isend(src.data(), 1, indexed, 1, 3, kCommWorld);
  b.wait(recv);
  a.wait(send);

  EXPECT_TRUE(util::check_pattern({dst.data(), kSmall}, 91));
  EXPECT_TRUE(util::check_pattern({dst.data() + displs[1], kLarge}, 92));
  // The gap must remain untouched.
  for (size_t i = kSmall; i < kSmall + 128; ++i) {
    EXPECT_EQ(dst[i], std::byte{0}) << "gap byte " << i;
  }

  a.free_request(send);
  b.free_request(recv);
}

INSTANTIATE_TEST_SUITE_P(
    AllStacks, StackDatatype,
    ::testing::Values(StackCase{StackImpl::kMadMpi, "mx"},
                      StackCase{StackImpl::kMpich, "mx"},
                      StackCase{StackImpl::kOpenMpi, "mx"},
                      StackCase{StackImpl::kMadMpi, "quadrics"},
                      StackCase{StackImpl::kMpich, "quadrics"}),
    [](const ::testing::TestParamInfo<StackCase>& info) {
      return std::string(stack_impl_name(info.param.impl)) + "_" +
             info.param.net;
    });

TEST(StackCommunicators, SeparateContextsDoNotCrossMatch) {
  StackOptions options;
  MpiStack stack(std::move(options));
  mpi::Endpoint& a = stack.ep(0);
  mpi::Endpoint& b = stack.ep(1);
  const Datatype byte = Datatype::byte_type();

  const mpi::Comm c1 = a.comm_dup(kCommWorld);
  const mpi::Comm c1b = b.comm_dup(kCommWorld);
  ASSERT_EQ(c1.context, c1b.context);

  std::vector<std::byte> w(64), x(64), rw(64), rx(64);
  util::fill_pattern({w.data(), w.size()}, 1);
  util::fill_pattern({x.data(), x.size()}, 2);

  // Same tag on two communicators; posting order on B is deliberately the
  // reverse of A's send order: context matching must sort it out.
  auto* r_c1 = b.irecv(rx.data(), 64, byte, 0, 7, c1b);
  auto* r_w = b.irecv(rw.data(), 64, byte, 0, 7, kCommWorld);
  auto* s_w = a.isend(w.data(), 64, byte, 1, 7, kCommWorld);
  auto* s_c1 = a.isend(x.data(), 64, byte, 1, 7, c1);
  b.wait(r_c1);
  b.wait(r_w);
  a.wait(s_w);
  a.wait(s_c1);

  EXPECT_TRUE(util::check_pattern({rw.data(), rw.size()}, 1));
  EXPECT_TRUE(util::check_pattern({rx.data(), rx.size()}, 2));

  a.free_request(s_w);
  a.free_request(s_c1);
  b.free_request(r_w);
  b.free_request(r_c1);
}

}  // namespace
}  // namespace nmad
