#include "harness/oracle.hpp"

#include <cstdio>

#include "util/wire.hpp"

namespace nmad::harness {
namespace {

constexpr size_t kMaxRecordedViolations = 200;

const char* code_name(util::StatusCode code) {
  return util::status_code_name(code);
}

}  // namespace

void ProtocolOracle::violation(std::string what) {
  if (violations_.size() < kMaxRecordedViolations) {
    violations_.push_back(std::move(what));
  }
}

size_t ProtocolOracle::send_posted(int src, int dst, uint64_t tag,
                                   util::ConstBytes data) {
  Stream& stream = streams_[StreamKey{src, dst, tag}];
  SendRec rec;
  rec.bytes = data.size();
  rec.checksum = util::Fnv32::of(data);
  stream.sends.push_back(rec);
  ++sends_tracked_;
  return stream.sends.size() - 1;
}

size_t ProtocolOracle::recv_posted(int dst, int src, uint64_t tag,
                                   util::ConstBytes buffer) {
  Stream& stream = streams_[StreamKey{src, dst, tag}];
  RecvRec rec;
  rec.buffer = buffer;
  stream.recvs.push_back(rec);
  ++recvs_tracked_;
  return stream.recvs.size() - 1;
}

void ProtocolOracle::send_completed(int src, int dst, uint64_t tag,
                                    size_t index,
                                    const util::Status& status) {
  Stream& stream = streams_[StreamKey{src, dst, tag}];
  if (index >= stream.sends.size()) {
    violation("send completion for an unposted message");
    return;
  }
  SendRec& rec = stream.sends[index];
  if (rec.completed) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "send %d->%d tag %llu #%zu completed twice", src, dst,
                  static_cast<unsigned long long>(tag), index);
    violation(buf);
    return;
  }
  rec.completed = true;
  rec.code = status.code();
}

void ProtocolOracle::recv_completed(int dst, int src, uint64_t tag,
                                    size_t index,
                                    const util::Status& status,
                                    size_t received_bytes) {
  Stream& stream = streams_[StreamKey{src, dst, tag}];
  if (index >= stream.recvs.size()) {
    violation("recv completion for an unposted receive");
    return;
  }
  RecvRec& rec = stream.recvs[index];
  char buf[200];
  if (rec.completed) {
    std::snprintf(buf, sizeof(buf),
                  "recv %d<-%d tag %llu #%zu completed twice", dst, src,
                  static_cast<unsigned long long>(tag), index);
    violation(buf);
    return;
  }
  rec.completed = true;
  rec.code = status.code();

  if (status.is_ok()) {
    // FIFO matching: the k-th receive on this stream must carry the k-th
    // send's payload — any legal reordering/aggregation/splitting inside
    // the engine still reassembles to exactly these bytes.
    if (index >= stream.sends.size()) {
      std::snprintf(buf, sizeof(buf),
                    "recv %d<-%d tag %llu #%zu delivered with no matching "
                    "send posted",
                    dst, src, static_cast<unsigned long long>(tag), index);
      violation(buf);
      return;
    }
    const SendRec& sent = stream.sends[index];
    if (received_bytes != sent.bytes) {
      std::snprintf(buf, sizeof(buf),
                    "recv %d<-%d tag %llu #%zu got %zu bytes, send #%zu "
                    "submitted %zu",
                    dst, src, static_cast<unsigned long long>(tag), index,
                    received_bytes, index, sent.bytes);
      violation(buf);
      return;
    }
    const uint32_t got =
        util::Fnv32::of(rec.buffer.subspan(0, received_bytes));
    if (got != sent.checksum) {
      std::snprintf(buf, sizeof(buf),
                    "recv %d<-%d tag %llu #%zu payload checksum %08x != "
                    "submitted %08x (misordered or torn delivery)",
                    dst, src, static_cast<unsigned long long>(tag), index,
                    got, sent.checksum);
      violation(buf);
    }
    return;
  }
  if (status.code() == util::StatusCode::kCancelled ||
      status.code() == util::StatusCode::kDeadlineExceeded) {
    return;  // a withdrawal on either end is a legal outcome
  }
  if (allow_failures_ && (status.code() == util::StatusCode::kClosed ||
                          status.code() == util::StatusCode::kPeerDead ||
                          status.code() ==
                              util::StatusCode::kResourceExhausted)) {
    return;  // gate failure / peer death under a harsh fault schedule
  }
  std::snprintf(buf, sizeof(buf),
                "recv %d<-%d tag %llu #%zu completed with unexpected "
                "status %s",
                dst, src, static_cast<unsigned long long>(tag), index,
                code_name(status.code()));
  violation(buf);
}

void ProtocolOracle::finalize(api::Cluster& cluster,
                              bool allow_gate_failures) {
  char buf[240];
  // Completion audit: nothing posted may be left pending or lost.
  for (const auto& [key, stream] : streams_) {
    const auto [src, dst, tag] = key;
    for (size_t i = 0; i < stream.sends.size(); ++i) {
      if (!stream.sends[i].completed) {
        std::snprintf(buf, sizeof(buf),
                      "send %d->%d tag %llu #%zu never completed", src,
                      dst, static_cast<unsigned long long>(tag), i);
        violation(buf);
      }
    }
    for (size_t i = 0; i < stream.recvs.size(); ++i) {
      if (!stream.recvs[i].completed) {
        std::snprintf(buf, sizeof(buf),
                      "recv %d<-%d tag %llu #%zu never completed", dst,
                      src, static_cast<unsigned long long>(tag), i);
        violation(buf);
      }
    }
    if (stream.sends.size() != stream.recvs.size()) {
      std::snprintf(buf, sizeof(buf),
                    "stream %d->%d tag %llu unbalanced: %zu sends, %zu "
                    "recvs (harness bug)",
                    src, dst, static_cast<unsigned long long>(tag),
                    stream.sends.size(), stream.recvs.size());
      violation(buf);
    }
  }

  // Engine-side audit at quiescence.
  for (simnet::NodeId n = 0; n < cluster.node_count(); ++n) {
    core::Core& core = cluster.core(n);
    std::vector<std::string> internal;
    if (!core.check_invariants(&internal)) {
      for (const std::string& f : internal) {
        std::snprintf(buf, sizeof(buf), "node %u invariant: %s",
                      static_cast<unsigned>(n), f.c_str());
        violation(buf);
      }
    }
    if (core.stats().rx_stored_bytes != 0) {
      std::snprintf(buf, sizeof(buf),
                    "node %u: %llu bytes stranded in the unexpected store "
                    "at quiescence",
                    static_cast<unsigned>(n),
                    static_cast<unsigned long long>(
                        core.stats().rx_stored_bytes));
      violation(buf);
    }
  }

  // Credit conservation: what each receiver heard is exactly what its
  // peer charged. A skipped charge (or a double delivery that slipped
  // past seq dedup) breaks the balance even when no limit ever bound.
  for (simnet::NodeId a = 0; a < cluster.node_count(); ++a) {
    for (simnet::NodeId b = 0; b < cluster.node_count(); ++b) {
      if (a == b) continue;
      core::Core& sender = cluster.core(a);
      core::Core& receiver = cluster.core(b);
      if (!sender.config().flow_control) continue;
      // Lazy-mesh runs only wire the pairs that talked; an unopened pair
      // has no gates to balance.
      if (!cluster.has_gate(a, b) || !cluster.has_gate(b, a)) continue;
      core::Gate& tx = sender.gate(cluster.gate(a, b));
      core::Gate& rx = receiver.gate(cluster.gate(b, a));
      if (tx.failed || rx.failed) {
        if (!allow_gate_failures) {
          std::snprintf(buf, sizeof(buf),
                        "gate pair %u<->%u failed under a schedule that "
                        "promised recoverable faults",
                        static_cast<unsigned>(a), static_cast<unsigned>(b));
          violation(buf);
        }
        continue;
      }
      if (tx.sched.eager_sent_bytes != rx.sched.eager_heard_bytes ||
          tx.sched.eager_sent_chunks != rx.sched.eager_heard_chunks) {
        std::snprintf(
            buf, sizeof(buf),
            "credit imbalance %u->%u: sender charged %llu bytes / %llu "
            "chunks, receiver heard %llu/%llu",
            static_cast<unsigned>(a), static_cast<unsigned>(b),
            static_cast<unsigned long long>(tx.sched.eager_sent_bytes),
            static_cast<unsigned long long>(tx.sched.eager_sent_chunks),
            static_cast<unsigned long long>(rx.sched.eager_heard_bytes),
            static_cast<unsigned long long>(rx.sched.eager_heard_chunks));
        violation(buf);
      }
    }
  }
}

}  // namespace nmad::harness
