// Protocol delivery oracle: an in-memory shadow of every message the
// harness pushes through the engine, asserting the observable contract
// the optimizing layer must preserve no matter how it reorders,
// aggregates, or splits traffic (paper §3; docs/ARCHITECTURE.md §12):
//
//   - per-(gate, tag) FIFO matching: the k-th receive posted on a (peer,
//     tag) stream gets the k-th send's payload, verified by checksum;
//   - payload integrity: the delivered bytes hash to what was submitted;
//   - exactly-once completion: no request completes twice, none is lost;
//   - cancellation soundness: a cancelled send may only produce a
//     kCancelled receive or a fully-delivered one (the cancel raced the
//     delivery) — never torn payload;
//   - credit conservation at quiescence: every eager byte the receiver
//     heard was charged by the sender, the unexpected store drained to
//     zero, and Core::check_invariants holds on every node.
//
// The oracle never inspects engine internals during the run — it shadows
// the API boundary (submit/complete), which is exactly what stays
// invariant across strategies and fault schedules.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "nmad/api/session.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace nmad::harness {

class ProtocolOracle {
 public:
  // Posting. Returns the message's position in its (src, dst, tag) FIFO
  // stream; pass the same index to the matching *_completed call.
  size_t send_posted(int src, int dst, uint64_t tag, util::ConstBytes data);
  size_t recv_posted(int dst, int src, uint64_t tag,
                     util::ConstBytes buffer);

  // Completion (call from the request's on_complete hook, or when the
  // harness observes done()). `buffer` of the receive is re-hashed here —
  // at completion time, after the engine wrote it.
  void send_completed(int src, int dst, uint64_t tag, size_t index,
                      const util::Status& status);
  void recv_completed(int dst, int src, uint64_t tag, size_t index,
                      const util::Status& status, size_t received_bytes);

  // End-of-run audit once the simulation is quiescent: every posted
  // operation completed, per-pair eager accounting balances, stores
  // drained, and each core's compiled-in invariants hold. `cluster` is
  // walked pairwise over its gates. With `allow_gate_failures`, pairs
  // whose gate failed (harsh fault schedules) skip the balance checks.
  void finalize(api::Cluster& cluster, bool allow_gate_failures = false);

  // Harsh fault schedules may legitimately fail gates; completions then
  // surface kClosed/kResourceExhausted instead of kOk. Off by default.
  void set_allow_failures(bool v) { allow_failures_ = v; }

  // Records a harness-level failure (e.g. the world never went
  // quiescent) alongside the protocol violations.
  void note_violation(std::string what) { violation(std::move(what)); }

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] size_t sends_tracked() const { return sends_tracked_; }
  [[nodiscard]] size_t recvs_tracked() const { return recvs_tracked_; }

 private:
  struct SendRec {
    size_t bytes = 0;
    uint32_t checksum = 0;
    bool completed = false;
    util::StatusCode code = util::StatusCode::kOk;
  };
  struct RecvRec {
    util::ConstBytes buffer;  // owned by the harness, outlives the run
    bool completed = false;
    util::StatusCode code = util::StatusCode::kOk;
  };
  // One FIFO stream of messages between an ordered node pair on one tag.
  struct Stream {
    std::vector<SendRec> sends;
    std::vector<RecvRec> recvs;
  };
  using StreamKey = std::tuple<int, int, uint64_t>;  // (src, dst, tag)

  void violation(std::string what);

  std::map<StreamKey, Stream> streams_;
  std::vector<std::string> violations_;
  bool allow_failures_ = false;
  size_t sends_tracked_ = 0;
  size_t recvs_tracked_ = 0;
};

}  // namespace nmad::harness
