// Deterministic chaos explorer: drives randomized N-rank schedules
// through the full engine stack under fault injection and audits every
// run with the ProtocolOracle.
//
// Everything about a run — cluster shape, strategy, fault schedule, op
// sequence, payload contents — derives from one 64-bit seed, so a
// failure replays bit-identically from `explorer --seed=S --ops=L`. The
// op sequence supports prefix truncation (`max_ops`), which is what the
// minimizer exploits: binary-search the shortest failing prefix, then
// hand the user a replay command line.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nmad::harness {

struct ExplorerOptions {
  uint64_t seed = 1;
  // Execute only the first `max_ops` ops of the generated schedule (the
  // harness then posts the matching halves of half-posted messages so
  // every prefix is a complete, balanced schedule). SIZE_MAX = all.
  size_t max_ops = static_cast<size_t>(-1);
  // Injected protocol bug (Core::test_skip_next_credit_charge on rank 0):
  // the self-test proving the oracle catches a sender that elects eager
  // traffic without charging credit. Forces a flow-control plan.
  bool inject_skip_credit = false;
  // Overrides the seed-drawn fault kind (empty = keep the draw). The
  // "rail-flap" kind is only reachable this way: it reshapes the plan —
  // two rails, rail health on, blackouts on rail 1 only — and the run
  // additionally audits that every darkened rail died AND revived.
  std::string force_fault;
  // Overrides the seed-drawn rank count (0 = keep the 2..3 draw). Large
  // topologies run on a lazy mesh — only the gates the drawn messages
  // need are opened — and the schedule draws proportionally more
  // messages so the extra ranks actually talk.
  size_t ranks = 0;
  bool verbose = false;  // narrate the plan and each op to stdout
};

struct ExplorerResult {
  bool ok = false;
  std::vector<std::string> violations;
  size_t ops_total = 0;     // full plan length (for the replay line)
  size_t ops_executed = 0;  // after prefix truncation
  size_t messages = 0;      // messages actually posted (either half)
  // Plan metadata, for coverage accounting across a sweep.
  std::string strategy;
  // none|drops|flips|blackout|rx-pause|mixed|reorder|rail-flap|
  // spray-reorder|gray-rail|peer-crash (the last four are force-only)
  std::string fault_kind;
  size_t nodes = 0;
  size_t rails = 0;
  bool flow_control = false;
  double virtual_us = 0.0;  // virtual time consumed by the run
  // Event-bus lifecycle accounting, summed over every node's engine.
  // A reliable run that moved data must have walked the complete
  // elect -> build -> tx -> rx -> ack chain through the packet tracer.
  uint64_t ev_elected = 0;
  uint64_t ev_packet_built = 0;
  uint64_t ev_wire_tx = 0;
  uint64_t ev_wire_rx = 0;
  uint64_t ev_acked = 0;
  // Per-node trace-ring audit: rings are chronological, and at least one
  // node retained sender-side elect/build/tx events (ack too when the
  // run was reliable).
  bool trace_lifecycle_ok = false;
  // Spray accounting (non-zero only under CoreConfig::spray plans, i.e.
  // --fault=spray-reorder), summed over every node's engine.
  uint64_t spray_sends = 0;
  uint64_t spray_frags_tx = 0;
  uint64_t spray_frags_rx = 0;
  uint64_t spray_reissues = 0;
  uint64_t spray_reassembled = 0;
  // Adaptive accounting (non-zero only under CoreConfig::adaptive plans,
  // i.e. --fault=gray-rail), summed over every node's engine.
  uint64_t rails_degraded = 0;
  uint64_t degraded_reissues = 0;
  uint64_t adaptive_elections = 0;
};

// Generates the schedule for `opts.seed`, executes it, and audits it.
ExplorerResult run_schedule(const ExplorerOptions& opts);

// Shrinks a failing run to the shortest op prefix that still fails
// (binary search over prefix length, verified by a final re-run).
// `opts.max_ops` bounds the search from above. Returns the minimal
// failing prefix length, or 0 if the failure did not reproduce.
size_t minimize(ExplorerOptions opts);

// The exact command line that replays a failing run.
std::string replay_command(const ExplorerOptions& opts, size_t ops);

// True when `name` is a valid --fault= override (CLI validation).
bool known_fault_kind(const std::string& name);

}  // namespace nmad::harness
