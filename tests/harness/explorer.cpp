// Schedule explorer CLI.
//
//   explorer --seed=S [--ops=L] [--inject=skip-credit-charge] [--verbose]
//       run (or replay) one schedule; prints PASS/FAIL and, on failure,
//       the minimized replay command line.
//   explorer --sweep=N [--seed=S0] [--inject=...]
//       run N schedules for seeds S0..S0+N-1; prints a coverage tally of
//       strategies x fault kinds and fails on the first violation.
//
// Exit status: 0 all green, 1 violations found, 2 bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "harness/explorer_lib.hpp"

namespace {

bool parse_u64(const char* arg, const char* key, uint64_t* out) {
  const size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) != 0) return false;
  *out = std::strtoull(arg + n, nullptr, 10);
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: explorer --seed=S [--ops=L] [--sweep=N] [--ranks=R]\n"
      "                [--fault=none|drops|flips|blackout|rx-pause|mixed|"
      "reorder|rail-flap|spray-reorder|gray-rail|peer-crash]\n"
      "                [--inject=skip-credit-charge] [--verbose]\n"
      "  --ranks=R   override the seed-drawn 2..3-rank topology (R >= 2);\n"
      "              large R runs on a lazy gate mesh\n");
  return 2;
}

int run_single(nmad::harness::ExplorerOptions opts) {
  const nmad::harness::ExplorerResult r =
      nmad::harness::run_schedule(opts);
  if (r.ok) {
    std::printf(
        "PASS seed=%llu ops=%zu/%zu msgs=%zu ranks=%zu strategy=%s "
        "fault=%s flow=%d vt=%.0fus\n",
        static_cast<unsigned long long>(opts.seed), r.ops_executed,
        r.ops_total, r.messages, r.nodes, r.strategy.c_str(),
        r.fault_kind.c_str(), r.flow_control ? 1 : 0, r.virtual_us);
    return 0;
  }
  std::printf("FAIL seed=%llu strategy=%s fault=%s: %zu violation(s)\n",
              static_cast<unsigned long long>(opts.seed),
              r.strategy.c_str(), r.fault_kind.c_str(),
              r.violations.size());
  for (const std::string& v : r.violations) {
    std::printf("  - %s\n", v.c_str());
  }
  const size_t shrunk = nmad::harness::minimize(opts);
  std::printf("minimized to %zu op(s); replay with:\n  %s\n", shrunk,
              nmad::harness::replay_command(opts, shrunk).c_str());
  return 1;
}

int run_sweep(nmad::harness::ExplorerOptions opts, uint64_t sweep) {
  std::map<std::string, size_t> coverage;
  for (uint64_t i = 0; i < sweep; ++i) {
    nmad::harness::ExplorerOptions one = opts;
    one.seed = opts.seed + i;
    one.verbose = false;
    const nmad::harness::ExplorerResult r =
        nmad::harness::run_schedule(one);
    ++coverage[r.strategy + " / " + r.fault_kind];
    if (!r.ok) {
      std::printf("FAIL at seed=%llu (%zu violations)\n",
                  static_cast<unsigned long long>(one.seed),
                  r.violations.size());
      for (const std::string& v : r.violations) {
        std::printf("  - %s\n", v.c_str());
      }
      const size_t shrunk = nmad::harness::minimize(one);
      std::printf("minimized to %zu op(s); replay with:\n  %s\n", shrunk,
                  nmad::harness::replay_command(one, shrunk).c_str());
      return 1;
    }
  }
  std::printf("PASS %llu schedules, coverage:\n",
              static_cast<unsigned long long>(sweep));
  for (const auto& [key, count] : coverage) {
    std::printf("  %-28s %zu\n", key.c_str(), count);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  nmad::harness::ExplorerOptions opts;
  uint64_t sweep = 0;
  uint64_t ops = 0;
  bool have_ops = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t v = 0;
    if (parse_u64(arg, "--seed=", &v)) {
      opts.seed = v;
    } else if (parse_u64(arg, "--ops=", &ops)) {
      have_ops = true;
    } else if (parse_u64(arg, "--sweep=", &sweep)) {
    } else if (parse_u64(arg, "--ranks=", &v)) {
      if (v < 2) {
        std::fprintf(stderr, "--ranks needs at least 2 ranks\n");
        return usage();
      }
      opts.ranks = static_cast<size_t>(v);
    } else if (std::strncmp(arg, "--fault=", 8) == 0) {
      opts.force_fault = arg + 8;
      if (!nmad::harness::known_fault_kind(opts.force_fault)) {
        std::fprintf(stderr, "unknown fault kind: %s\n",
                     opts.force_fault.c_str());
        return usage();
      }
    } else if (std::strcmp(arg, "--inject=skip-credit-charge") == 0) {
      opts.inject_skip_credit = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      opts.verbose = true;
    } else {
      return usage();
    }
  }
  if (have_ops) opts.max_ops = ops;
  if (sweep > 0) return run_sweep(opts, sweep);
  return run_single(opts);
}
