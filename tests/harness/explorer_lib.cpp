#include "harness/explorer_lib.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "harness/oracle.hpp"
#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace nmad::harness {
namespace {

// ---------------------------------------------------------------------------
// Plan: everything derived deterministically from the seed.
// ---------------------------------------------------------------------------

const char* const kStrategies[] = {"default", "aggreg", "aggreg_extended",
                                   "split_balance"};

// kRailFlap, kSprayReorder, kGrayRail and kPeerCrash are never drawn
// from the seed (they reshape the whole plan); they are selected with
// ExplorerOptions::force_fault only.
enum class FaultKind {
  kNone, kDrops, kFlips, kBlackout, kRxPause, kMixed, kReorder,
  kRailFlap, kSprayReorder, kGrayRail, kPeerCrash
};
constexpr size_t kDrawnFaultKinds = 7;  // kNone..kReorder

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrops: return "drops";
    case FaultKind::kFlips: return "flips";
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kRxPause: return "rx-pause";
    case FaultKind::kMixed: return "mixed";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kRailFlap: return "rail-flap";
    case FaultKind::kSprayReorder: return "spray-reorder";
    case FaultKind::kGrayRail: return "gray-rail";
    case FaultKind::kPeerCrash: return "peer-crash";
  }
  return "?";
}

bool fault_kind_from_name(const std::string& name, FaultKind* out) {
  for (int k = 0; k <= static_cast<int>(FaultKind::kPeerCrash); ++k) {
    if (name == fault_kind_name(static_cast<FaultKind>(k))) {
      *out = static_cast<FaultKind>(k);
      return true;
    }
  }
  return false;
}

struct Message {
  int src = 0;
  int dst = 0;
  uint64_t tag = 0;
  size_t bytes = 0;
  uint64_t pattern = 0;  // fill_pattern seed for the payload
};

struct Op {
  enum class Kind {
    kSendPost,   // isend message `msg`
    kRecvPost,   // irecv message `msg`
    kCancel,     // cancel the send (end=0) or recv (end=1) of `msg`
    kDeadline,   // arm a deadline on the send/recv of `msg`
    kWaitFor,    // pump until `msg`'s recv completes or `us` elapses
    kStep,       // pump the world for `us` of virtual time
    kDrain,      // Core::drain on node `msg` with deadline `us`
  };
  Kind kind = Kind::kStep;
  size_t msg = 0;
  int end = 0;  // 0 = send side, 1 = recv side
  double us = 0.0;
};

struct Plan {
  size_t nodes = 2;
  size_t rails = 1;
  std::string strategy;
  FaultKind fault = FaultKind::kNone;
  core::CoreConfig config;
  std::vector<simnet::NicProfile> rail_profiles;
  std::vector<Message> messages;
  std::vector<Op> ops;
  // kPeerCrash only: the whole-node crash is injected at run time, after
  // the seed-drawn schedule has quiesced, so the dark window always lands
  // on live crash-phase traffic whatever virtual time the prefix took.
  bool crash_rejoins = false;   // window ends (rejoin) vs never ends
  double crash_delay_us = 0.0;  // dark starts this long after injection
  double crash_len_us = 0.0;    // dark length for the rejoin variant
};

// Eager/rendezvous straddle: MX threshold is 32 KiB, the override (when
// the plan picks it) is 4 KiB. Small sizes dominate so windows aggregate.
constexpr size_t kSizes[] = {0,    1,     7,     64,        256,
                             1024, 3000,  4095,  4096,      8192,
                             31744, 32768, 49152, 150 * 1024};

std::vector<simnet::FaultWindow> random_windows(util::Rng& rng, int count,
                                                double max_len_us) {
  std::vector<simnet::FaultWindow> out;
  double at = 100.0;
  for (int i = 0; i < count; ++i) {
    at += static_cast<double>(rng.next_range(200, 2000));
    const double len =
        10.0 + rng.next_double() * (max_len_us - 10.0);
    out.push_back({at, at + len});
    at += len;
  }
  return out;
}

Plan make_plan(const ExplorerOptions& opts) {
  // Decorrelate nearby seeds before drawing structure from them.
  util::Rng rng(opts.seed * 0x9E3779B97F4A7C15ull + 0x2545F4914F6CDD1Dull);
  Plan plan;

  plan.nodes = opts.ranks >= 2 ? opts.ranks
                               : 2 + rng.next_below(2);  // 2..3 ranks
  plan.rails = 1 + rng.next_below(2);
  plan.strategy = kStrategies[rng.next_below(std::size(kStrategies))];
  plan.fault = static_cast<FaultKind>(rng.next_below(kDrawnFaultKinds));
  if (!opts.force_fault.empty()) {
    // The draw above still happens, so the rest of the plan keeps the
    // same seed-derived shape whichever kind ends up forced.
    FaultKind forced = plan.fault;
    if (fault_kind_from_name(opts.force_fault, &forced)) {
      plan.fault = forced;
    }
  }

  core::CoreConfig& cfg = plan.config;
  cfg.strategy = plan.strategy;
  cfg.reliability = true;
  cfg.ack_timeout_us = 200.0;
  cfg.ack_delay_us = 5.0;
  // Strict mode: every fault schedule below is recoverable, so gates must
  // never fail. Rail death is disabled (a single lossy rail would
  // otherwise fail the gate) and the retry budget outlasts the longest
  // blackout by orders of magnitude (200µs · 2^19 cumulative backoff).
  cfg.rail_dead_after = 0;
  cfg.max_retries = 20;
  if (rng.next_bool(0.4)) cfg.rdv_threshold_override = 4096;
  if (rng.next_bool(0.3)) cfg.prebuild_backlog_chunks = 4;

  bool flow = rng.next_bool(0.5);
  if (opts.inject_skip_credit) flow = true;  // the bug is a credit bug
  if (flow) {
    cfg.flow_control = true;
    // Σ initial grants across peers must fit the rx budget for the
    // budget invariant to hold from time zero (core.hpp contract).
    cfg.initial_credit_bytes = 48 * 1024;
    cfg.initial_credit_msgs = 24;
    if (rng.next_bool(0.5)) {
      cfg.rx_budget = cfg.initial_credit_bytes * (plan.nodes - 1) +
                      128 * 1024;
      cfg.rx_budget_msgs = cfg.initial_credit_msgs * (plan.nodes - 1) + 64;
    }
    cfg.credit_probe_us = 500.0;
  }

  simnet::FaultProfile fault;
  fault.seed = opts.seed ^ 0xFA017EEDull;
  switch (plan.fault) {
    case FaultKind::kNone:
      break;
    case FaultKind::kDrops:
      fault.frame_drop_prob = 0.02 + rng.next_double() * 0.10;
      fault.bulk_drop_prob = 0.02 + rng.next_double() * 0.06;
      break;
    case FaultKind::kFlips:
      fault.bit_flip_prob = 0.02 + rng.next_double() * 0.08;
      break;
    case FaultKind::kBlackout:
      fault.blackouts = random_windows(rng, 3, 400.0);
      break;
    case FaultKind::kRxPause:
      fault.rx_pauses = random_windows(rng, 3, 800.0);
      break;
    case FaultKind::kMixed:
      fault.frame_drop_prob = 0.01 + rng.next_double() * 0.05;
      fault.bit_flip_prob = rng.next_double() * 0.03;
      fault.bulk_drop_prob = rng.next_double() * 0.04;
      fault.blackouts = random_windows(rng, 1, 300.0);
      fault.rx_pauses = random_windows(rng, 1, 500.0);
      break;
    case FaultKind::kReorder:
      // Adaptive-routing jitter: frames delayed, never lost. The jitter
      // ceiling comfortably exceeds the per-frame rx spacing, so frames
      // genuinely overtake each other.
      fault.reorder_prob = 0.15 + rng.next_double() * 0.45;
      fault.jitter_max_us = 20.0 + rng.next_double() * 80.0;
      break;
    case FaultKind::kRailFlap:
    case FaultKind::kSprayReorder:
      break;  // shaped below: the blackouts land on rail 1 only
    case FaultKind::kGrayRail:
      break;  // shaped below: the gray shape lands on rail 1 only
    case FaultKind::kPeerCrash:
      break;  // shaped below: the wire stays clean, the crash IS the fault
  }
  // Health thresholds below are tuned for the seed-drawn 2..3-rank
  // shapes. Under --ranks=N the schedule posts thousands of messages and
  // a single 150KB body is >100µs of wire time, so silence gaps on a
  // busy-but-healthy rail stretch far past the small-cluster windows —
  // without this scale factor the clean rail gets declared dead and an
  // unrecoverable gate failure follows. The blackout shape stretches by
  // the same factor so darkened rails still outlast dead_after_us.
  const double hs =
      plan.nodes > 64 ? static_cast<double>(plan.nodes) / 64.0 : 1.0;
  std::vector<simnet::FaultWindow> flap_windows;
  if (plan.fault == FaultKind::kRailFlap ||
      plan.fault == FaultKind::kSprayReorder) {
    // Two rails; rail 0 stays clean so kill_rail never has to fail a
    // gate and every schedule remains recoverable. Health thresholds are
    // scaled to the plan's 200µs ack timeout: suspect after 150µs of
    // silence, dead after 300µs, probed every 100µs, revived after two
    // fresh probe replies.
    plan.rails = 2;
    cfg.rail_health = true;
    cfg.heartbeat_interval_us = 50.0;
    cfg.suspect_after_us = 150.0 * hs;
    cfg.dead_after_us = 300.0 * hs;
    cfg.probe_interval_us = 100.0 * hs;
    cfg.probation_replies = 2;
    // Each blackout outlasts dead_after_us (the rail really dies) and the
    // bright gaps leave room for the probe/probation handshake to revive
    // it before the next window.
    double at = 300.0 * hs;
    for (int i = 0; i < 3; ++i) {
      at += static_cast<double>(rng.next_range(500, 3000)) * hs;
      const double len = (350.0 + rng.next_double() * 450.0) * hs;
      flap_windows.push_back({at, at + len});
      at += len + 800.0 * hs;
    }
    if (plan.fault == FaultKind::kSprayReorder) {
      // The tail-resilience profile: rendezvous bodies are sprayed
      // packet-by-packet over both rails, every frame may take a jittered
      // path, and rail 1 flaps underneath — out-of-order fragments,
      // duplicates from suspect-rail re-issues and gap-fill after death
      // all hit the reassembly buffer in one run. The fragment audits
      // below prove exactly-once delivery survived it.
      cfg.spray = true;
      cfg.rdv_threshold_override = 4096;
      fault.reorder_prob = 0.15 + rng.next_double() * 0.35;
      fault.jitter_max_us = 30.0 + rng.next_double() * 70.0;
    }
  }
  if (plan.fault == FaultKind::kGrayRail) {
    // Gray failure: rail 1 degrades — still alive, still beaconing —
    // while rail 0 stays clean. Adaptive scoring is forced on and the
    // silence thresholds leave death far out of reach (the rail must
    // NOT die: beacons keep flowing through the gray shape), so only
    // the continuous score can detect it and route around it.
    plan.rails = 2;
    cfg.rail_health = true;
    cfg.adaptive = true;
    cfg.spray = true;
    cfg.rdv_threshold_override = 4096;
    cfg.heartbeat_interval_us = 50.0;
    cfg.suspect_after_us = 250.0 * hs;
    cfg.dead_after_us = 1000.0 * hs;
    cfg.probe_interval_us = 100.0 * hs;
    cfg.probation_replies = 2;
    // Loss-based detection uses the defaults; the latency criterion is
    // armed too so throttle/jitter shapes (which lose nothing) can still
    // breach. Latency thresholds scale too: queueing on a busy healthy
    // rail inflates RTT at large rank counts.
    cfg.degraded_latency_enter_us = 400.0 * hs;
    cfg.degraded_latency_exit_us = 200.0 * hs;
  }
  if (plan.fault == FaultKind::kPeerCrash) {
    // Whole-node crash: every NIC on node 1 goes dark atomically (the
    // runner injects the window after the seed-drawn prefix quiesces).
    // Rail health is per-NIC silence, so peer death — "no alive rail to
    // the peer remains" — is only unambiguous with a single peer: force
    // two ranks. Both rails to the peer must die for the grace timer to
    // declare death, which is exactly what the node-wide blackout does.
    plan.nodes = 2;
    plan.rails = 2;
    cfg.peer_lifecycle = true;
    cfg.rail_health = true;
    cfg.heartbeat_interval_us = 50.0;
    cfg.suspect_after_us = 150.0;
    cfg.dead_after_us = 300.0;
    cfg.probe_interval_us = 100.0;
    cfg.probation_replies = 2;
    cfg.peer_death_grace_us = 150.0;
    // Rendezvous bodies (and, on half the seeds, per-packet spray) keep
    // multi-chunk transfers in flight when the node goes dark, so the
    // unwind covers mid-rendezvous and mid-spray state, not just eager.
    cfg.rdv_threshold_override = 4096;
    if (rng.next_bool(0.5)) cfg.spray = true;
    plan.crash_rejoins = rng.next_bool(0.6);
    plan.crash_delay_us = 30.0 + static_cast<double>(rng.next_below(120));
    // The dark window must outlast dead_after + peer_death_grace by a
    // wide margin so death is always declared before the restart.
    plan.crash_len_us = 900.0 + rng.next_double() * 900.0;
  }
  for (size_t r = 0; r < plan.rails; ++r) {
    simnet::NicProfile p = simnet::mx_myri10g_profile();
    p.fault = fault;
    p.fault.seed = fault.seed + r;  // decorrelate the rails' dice
    if ((plan.fault == FaultKind::kRailFlap ||
         plan.fault == FaultKind::kSprayReorder) &&
        r == 1) {
      p.fault.blackouts = flap_windows;
    }
    if (plan.fault == FaultKind::kGrayRail && r == 1) {
      // One seed-drawn degraded-but-beaconing shape per schedule.
      switch (rng.next_below(4)) {
        case 0:  // persistent elevated drop
          p.fault.frame_drop_prob = 0.03 + rng.next_double() * 0.05;
          p.fault.bulk_drop_prob = 0.02 + rng.next_double() * 0.04;
          break;
        case 1:  // intermittent flaky windows
          p.fault.flaky_drop_prob = 0.25 + rng.next_double() * 0.35;
          p.fault.flaky = random_windows(rng, 4, 600.0);
          break;
        case 2:  // bandwidth throttle
          p.fault.bandwidth_throttle = 0.10 + rng.next_double() * 0.30;
          break;
        case 3:  // latency jitter
          p.fault.reorder_prob = 0.30 + rng.next_double() * 0.40;
          p.fault.jitter_max_us = 40.0 + rng.next_double() * 80.0;
          break;
      }
    }
    plan.rail_profiles.push_back(std::move(p));
  }

  // Messages: ordered (src, dst) pairs over a handful of tags. The k-th
  // send posted on a (src, dst, tag) stream matches the k-th recv posted
  // on it, whatever the interleaving — that is the FIFO contract.
  // On the seed-drawn 2..3-rank shapes a handful of messages saturates
  // every pair; under --ranks=N draw ~2 per rank so a big topology is
  // actually exercised rather than mostly idle.
  const size_t message_count =
      plan.nodes <= 4 ? 6 + rng.next_below(10)
                      : plan.nodes * 2 + rng.next_below(plan.nodes);
  for (size_t i = 0; i < message_count; ++i) {
    Message m;
    m.src = static_cast<int>(rng.next_below(plan.nodes));
    m.dst = static_cast<int>(rng.next_below(plan.nodes - 1));
    if (m.dst >= m.src) ++m.dst;
    m.tag = rng.next_below(3);
    m.bytes = kSizes[rng.next_below(std::size(kSizes))];
    m.pattern = opts.seed ^ (i * 0x9E3779B9ull + 1);
    plan.messages.push_back(m);
  }

  // Two post ops per message, shuffled; then per-stream order is
  // restored (sends of a stream post in message order, recvs likewise),
  // which keeps the k-th-matches-k-th bookkeeping trivial while leaving
  // the cross-stream interleaving — pre-posted vs unexpected, recv-first
  // vs send-first — fully random.
  std::vector<Op> posts;
  for (size_t i = 0; i < plan.messages.size(); ++i) {
    posts.push_back({Op::Kind::kSendPost, i, 0, 0.0});
    posts.push_back({Op::Kind::kRecvPost, i, 1, 0.0});
  }
  for (size_t i = posts.size(); i > 1; --i) {
    std::swap(posts[i - 1], posts[rng.next_below(i)]);
  }
  const auto stream_of = [&](const Op& op) {
    const Message& m = plan.messages[op.msg];
    return std::tuple<int, int, uint64_t, int>{m.src, m.dst, m.tag, op.end};
  };
  {
    // Stable per-(stream, side) sort of the message indices in place.
    std::map<std::tuple<int, int, uint64_t, int>, std::vector<size_t>>
        positions;
    for (size_t i = 0; i < posts.size(); ++i) {
      positions[stream_of(posts[i])].push_back(i);
    }
    for (auto& [key, where] : positions) {
      std::vector<size_t> msgs;
      msgs.reserve(where.size());
      for (size_t i : where) msgs.push_back(posts[i].msg);
      std::sort(msgs.begin(), msgs.end());
      for (size_t k = 0; k < where.size(); ++k) {
        posts[where[k]].msg = msgs[k];
      }
    }
  }

  // Interleave chaos ops: time steps, cancels, deadlines, waits. Targets
  // are always messages whose relevant half is already posted.
  std::vector<char> send_posted(plan.messages.size(), 0);
  std::vector<char> recv_posted(plan.messages.size(), 0);
  std::vector<size_t> posted;  // message indices with either half posted
  for (const Op& post : posts) {
    plan.ops.push_back(post);
    if (post.kind == Op::Kind::kSendPost) send_posted[post.msg] = 1;
    if (post.kind == Op::Kind::kRecvPost) recv_posted[post.msg] = 1;
    posted.push_back(post.msg);
    if (rng.next_bool(0.35)) {
      plan.ops.push_back({Op::Kind::kStep, 0, 0,
                          1.0 + static_cast<double>(rng.next_below(300))});
    }
    if (rng.next_bool(0.12)) {
      const size_t target = posted[rng.next_below(posted.size())];
      const int end = rng.next_bool(0.5) ? 0 : 1;
      if ((end == 0 && send_posted[target]) ||
          (end == 1 && recv_posted[target])) {
        plan.ops.push_back({Op::Kind::kCancel, target, end, 0.0});
      }
    }
    if (rng.next_bool(0.08)) {
      const size_t target = posted[rng.next_below(posted.size())];
      const int end = rng.next_bool(0.5) ? 0 : 1;
      if ((end == 0 && send_posted[target]) ||
          (end == 1 && recv_posted[target])) {
        plan.ops.push_back(
            {Op::Kind::kDeadline, target, end,
             50.0 + static_cast<double>(rng.next_below(2000))});
      }
    }
    if (rng.next_bool(0.10)) {
      const size_t target = posted[rng.next_below(posted.size())];
      if (recv_posted[target]) {
        plan.ops.push_back(
            {Op::Kind::kWaitFor, target, 1,
             static_cast<double>(rng.next_range(100, 5000))});
      }
    }
    if (rng.next_bool(0.05)) {
      // Mid-schedule drain: flush one node's engine under load. Legal
      // outcomes are ok (everything it sent beforehand completed) or
      // kDeadlineExceeded (it could not flush in time) — never a hang,
      // never a completion left dangling after an ok.
      plan.ops.push_back(
          {Op::Kind::kDrain, static_cast<size_t>(rng.next_below(plan.nodes)),
           0, 2000.0 + static_cast<double>(rng.next_below(20000))});
    }
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

struct LiveMessage {
  std::vector<std::byte> out;
  std::vector<std::byte> in;
  core::Request* send = nullptr;  // owned by the src core
  core::Request* recv = nullptr;  // owned by the dst core
  size_t send_index = 0;          // position in the oracle's FIFO stream
  size_t recv_index = 0;
};

class Runner {
 public:
  Runner(const ExplorerOptions& opts, Plan plan)
      : opts_(opts), plan_(std::move(plan)) {
    api::ClusterOptions cluster_opts;
    cluster_opts.nodes = plan_.nodes;
    cluster_opts.rails = plan_.rail_profiles;
    cluster_opts.core = plan_.config;
    // Past a handful of ranks the N² full mesh dominates setup; open only
    // the gates the drawn messages will use (ensure_gate wires both
    // directions, which acks/credits need).
    cluster_opts.full_mesh = plan_.nodes <= 8;
    const bool lazy_mesh = !cluster_opts.full_mesh;
    cluster_ = std::make_unique<api::Cluster>(std::move(cluster_opts));
    if (lazy_mesh) {
      for (const Message& m : plan_.messages) {
        cluster_->ensure_gate(static_cast<simnet::NodeId>(m.src),
                              static_cast<simnet::NodeId>(m.dst));
      }
    }
    // In a -DNMAD_VALIDATE build the per-tick checker would abort the
    // process on the first violation; route it into the oracle instead
    // so the sweep reports a replayable seed (no-op otherwise).
    for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
      const int node = static_cast<int>(n);
      cluster_->core(n).set_validate_failure_handler(
          [this, node](const std::vector<std::string>& failures) {
            for (const std::string& f : failures) {
              oracle_.note_violation("validate: node " +
                                     std::to_string(node) + ": " + f);
            }
          });
    }
    live_.resize(plan_.messages.size());
    // Shadow the event-bus spine: record the first time each node saw
    // each lifecycle stage, so the run can prove the complete
    // elect -> build -> tx -> rx -> ack chain went over the bus even
    // after the bounded trace ring has recycled the early events.
    chain_.resize(plan_.nodes);
    for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
      ChainTimes& times = chain_[n];
      core::EventBus& bus = cluster_->core(n).bus();
      bus.subscribe(core::EventKind::kElected, [&times](const core::Event& e) {
        if (times.elected < 0.0) times.elected = e.t;
      });
      bus.subscribe(core::EventKind::kPacketBuilt,
                    [&times](const core::Event& e) {
                      if (times.built < 0.0) times.built = e.t;
                    });
      bus.subscribe(core::EventKind::kWireTx, [&times](const core::Event& e) {
        if (times.tx < 0.0) times.tx = e.t;
      });
      bus.subscribe(core::EventKind::kAcked, [&times](const core::Event& e) {
        if (times.acked < 0.0) times.acked = e.t;
      });
    }
    // Fragment-granularity delivery audits (CoreConfig::spray): shadow
    // every node's reassembly buffer through the bus and flag what the
    // engine should never have let through — two *applied* fragments
    // covering overlapping byte ranges of one message, or a fragment
    // applied after that message already reported reassembly complete.
    // Rejected fragments (duplicate / epoch-fenced / late outcomes) are
    // the fault model at work, not violations.
    spray_audit_.resize(plan_.nodes);
    for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
      auto& audit = spray_audit_[n];
      const int node = static_cast<int>(n);
      core::EventBus& bus = cluster_->core(n).bus();
      bus.subscribe(
          core::EventKind::kSprayFragRx,
          [this, node, &audit](const core::Event& e) {
            if ((e.b >> 32) != 0) return;  // rejected, nothing applied
            const uint64_t tag = e.a >> 40;
            const size_t off = e.a & ((uint64_t{1} << 40) - 1);
            const size_t len = e.b & 0xFFFFFFFFull;
            SprayState& st = audit[{e.gate, tag, e.seq}];
            const std::string who = "node " + std::to_string(node) +
                                    " gate " + std::to_string(e.gate) +
                                    " tag " + std::to_string(tag) + " seq " +
                                    std::to_string(e.seq);
            if (st.completed) {
              oracle_.note_violation(
                  who + ": spray fragment [" + std::to_string(off) + ", " +
                  std::to_string(off + len) +
                  ") applied after reassembly completed");
            }
            auto it = st.covered.upper_bound(off);
            const bool overlap =
                (it != st.covered.begin() && std::prev(it)->second > off) ||
                (it != st.covered.end() && it->first < off + len);
            if (overlap) {
              oracle_.note_violation(
                  who + ": spray fragment [" + std::to_string(off) + ", " +
                  std::to_string(off + len) +
                  ") overlaps an already-applied fragment");
            }
            st.applied += len;
            st.covered[off] = std::max(st.covered[off], off + len);
          });
      bus.subscribe(
          core::EventKind::kReassembled,
          [this, node, &audit](const core::Event& e) {
            SprayState& st = audit[{e.gate, e.a >> 40, e.seq}];
            st.completed = true;
            if (st.applied != e.b) {
              oracle_.note_violation(
                  "node " + std::to_string(node) + " gate " +
                  std::to_string(e.gate) + " seq " + std::to_string(e.seq) +
                  ": reassembly completed at " + std::to_string(e.b) +
                  " bytes but the applied fragments sum to " +
                  std::to_string(st.applied));
            }
          });
    }
    if (opts_.inject_skip_credit) {
      cluster_->core(0).test_skip_next_credit_charge(3);
    }
  }

  ExplorerResult run() {
    ExplorerResult result;
    result.ops_total = plan_.ops.size();
    result.strategy = plan_.strategy;
    result.fault_kind = fault_kind_name(plan_.fault);
    result.nodes = plan_.nodes;
    result.rails = plan_.rails;
    result.flow_control = plan_.config.flow_control;

    const size_t limit = std::min(opts_.max_ops, plan_.ops.size());
    for (size_t i = 0; i < limit; ++i) {
      execute(plan_.ops[i]);
    }
    result.ops_executed = limit;

    // Balance the prefix: a message with only one half posted would hang
    // (send with no recv) or leave the oracle unbalanced, and neither is
    // an engine bug. Messages with neither half posted are skipped.
    for (size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].send && !live_[i].recv) post_recv(i);
      if (live_[i].recv && !live_[i].send) post_send(i);
    }

    // Drain to quiescence, bounded: a live-locked protocol (e.g. a credit
    // probe re-arming forever) must terminate the run as a violation, not
    // hang the harness.
    size_t events = 0;
    constexpr size_t kEventCap = 4'000'000;
    if (!plan_.config.rail_health) {
      while (events < kEventCap && cluster_->world().run_one()) ++events;
    } else if (plan_.fault == FaultKind::kPeerCrash) {
      run_peer_crash(events, kEventCap);
    } else {
      // The heartbeat timers re-arm forever, so the world never goes
      // quiescent on its own. Pump until the workload is done and the
      // last blackout is well past (room for the probe/probation
      // handshake), audit that every darkened rail died AND came back,
      // then disarm the monitors and drain the remainder normally.
      double settle = 0.0;
      for (const simnet::NicProfile& p : plan_.rail_profiles) {
        for (const simnet::FaultWindow& w : p.fault.blackouts) {
          settle = std::max(settle, w.end_us);
        }
      }
      settle += 3000.0;
      while (events < kEventCap && cluster_->world().run_one()) {
        ++events;
        if (cluster_->now() >= settle && workload_done()) break;
      }
      for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
        core::Core& core = cluster_->core(n);
        // A rank with no gates (possible on a --ranks lazy mesh) runs no
        // heartbeats, so it has no rail lifecycle to audit.
        bool has_peer = false;
        for (simnet::NodeId p = 0; p < cluster_->node_count() && !has_peer;
             ++p) {
          has_peer = p != n && cluster_->has_gate(n, p);
        }
        if (has_peer && (plan_.fault == FaultKind::kRailFlap ||
                         plan_.fault == FaultKind::kSprayReorder)) {
          if (core.stats().rails_failed == 0) {
            oracle_.note_violation(
                "node " + std::to_string(n) +
                ": rail-flap plan but no rail ever died");
          }
          if (core.stats().rails_revived == 0) {
            oracle_.note_violation(
                "node " + std::to_string(n) +
                ": rail-flap plan but no rail was ever revived");
          }
        }
        for (simnet::RailIndex r = 0;
             r < static_cast<simnet::RailIndex>(core.rail_count()); ++r) {
          if (!core.rail_alive(r)) {
            oracle_.note_violation(
                "node " + std::to_string(n) + " rail " + std::to_string(r) +
                " still dead after the last blackout — revival failed");
          }
        }
        core.stop_health_monitors();
      }
      while (events < kEventCap && cluster_->world().run_one()) ++events;
    }
    if (events >= kEventCap) {
      oracle_.note_violation(
          "world still busy after 4M events — live-locked protocol");
    }
    result.virtual_us = cluster_->now();

    // Every request the harness still holds must be done at quiescence.
    for (size_t i = 0; i < live_.size(); ++i) {
      LiveMessage& m = live_[i];
      const Message& spec = plan_.messages[i];
      if (m.send || m.recv) ++result.messages;
      if (m.send && m.send->done()) {
        cluster_->core(spec.src).release(m.send);
        m.send = nullptr;
      }
      if (m.recv && m.recv->done()) {
        cluster_->core(spec.dst).release(m.recv);
        m.recv = nullptr;
      }
    }
    // A terminal crash leaves the gate pair dead on purpose; every other
    // plan (including crash-then-rejoin, whose gates re-opened) must end
    // with healthy gates.
    oracle_.finalize(*cluster_, /*allow_gate_failures=*/plan_.fault ==
                                    FaultKind::kPeerCrash &&
                                !plan_.crash_rejoins);
    if (!oracle_.ok()) {
      // Oracle violations always come with the engine dumps: the event-bus
      // trace at the end of each dump is the schedule's last moves in order.
      for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
        cluster_->core(n).debug_dump(std::cerr);
      }
    }

    // Fold the per-node event-bus accounting into the result and audit
    // the trace rings: chronological order always, and at least one node
    // must have retained the sender-side elect/build/tx chain (plus an
    // ack when the plan was reliable) so a failing seed's dump shows the
    // schedule's actual moves.
    bool any_chain = false;
    bool rings_ordered = true;
    for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
      const core::Core& c = cluster_->core(n);
      const core::CoreStats& s = c.stats();
      result.ev_elected += s.ev_elected;
      result.ev_packet_built += s.ev_packet_built;
      result.ev_wire_tx += s.ev_wire_tx;
      result.ev_wire_rx += s.ev_wire_rx;
      result.ev_acked += s.ev_acked;
      result.spray_sends += s.spray_sends;
      result.spray_frags_tx += s.spray_frags_tx;
      result.spray_frags_rx += s.spray_frags_rx;
      result.spray_reissues += s.spray_reissues;
      result.spray_reassembled += s.spray_reassembled;
      result.rails_degraded += s.rails_degraded;
      result.degraded_reissues += s.degraded_reissues;
      result.adaptive_elections += s.adaptive_elections;
      double last_t = 0.0;
      for (const core::Event& ev : c.bus().trace()) {
        if (ev.t < last_t) rings_ordered = false;
        last_t = ev.t;
      }
      // The shadow subscription saw the stages as they happened; a
      // complete sender-side chain is causally ordered first times.
      const ChainTimes& times = chain_[n];
      if (times.elected >= 0.0 && times.elected <= times.built &&
          times.built <= times.tx &&
          (!plan_.config.reliability || times.tx <= times.acked)) {
        any_chain = true;
      }
    }
    result.trace_lifecycle_ok =
        rings_ordered && (any_chain || result.messages == 0);

    result.violations = oracle_.violations();
    result.ok = result.violations.empty();
    return result;
  }

 private:
  void execute(const Op& op) {
    switch (op.kind) {
      case Op::Kind::kSendPost:
        post_send(op.msg);
        break;
      case Op::Kind::kRecvPost:
        post_recv(op.msg);
        break;
      case Op::Kind::kCancel: {
        LiveMessage& m = live_[op.msg];
        const Message& spec = plan_.messages[op.msg];
        if (op.end == 0 && m.send && !m.send->done()) {
          cluster_->core(spec.src).cancel(m.send);  // may refuse; fine
        } else if (op.end == 1 && m.recv && !m.recv->done()) {
          cluster_->core(spec.dst).cancel(m.recv);
        }
        break;
      }
      case Op::Kind::kDeadline: {
        LiveMessage& m = live_[op.msg];
        const Message& spec = plan_.messages[op.msg];
        if (op.end == 0 && m.send && !m.send->done()) {
          cluster_->core(spec.src).set_deadline(m.send, op.us);
        } else if (op.end == 1 && m.recv && !m.recv->done()) {
          cluster_->core(spec.dst).set_deadline(m.recv, op.us);
        }
        break;
      }
      case Op::Kind::kWaitFor: {
        core::Request* req = live_[op.msg].recv;
        const double until = cluster_->now() + op.us;
        while (req && !req->done() && cluster_->now() < until) {
          if (!cluster_->world().run_one()) break;
        }
        break;
      }
      case Op::Kind::kStep: {
        const double until = cluster_->now() + op.us;
        while (cluster_->now() < until) {
          if (!cluster_->world().run_one()) break;
        }
        break;
      }
      case Op::Kind::kDrain: {
        const int node = static_cast<int>(op.msg);
        const util::Status st =
            cluster_->core(static_cast<simnet::NodeId>(op.msg))
                .drain(op.us);
        if (!st.is_ok() &&
            st.code() != util::StatusCode::kDeadlineExceeded) {
          oracle_.note_violation("drain on node " + std::to_string(node) +
                                 " returned " + st.to_string());
        }
        if (st.is_ok()) {
          // Drain legality: ok means this node flushed everything, so no
          // send it posted before the drain may still be pending (a later
          // completion would be a completion after a successful drain).
          for (size_t i = 0; i < live_.size(); ++i) {
            if (plan_.messages[i].src != node) continue;
            if (live_[i].send && !live_[i].send->done()) {
              oracle_.note_violation(
                  "drain ok on node " + std::to_string(node) +
                  " but its send of message " + std::to_string(i) +
                  " is still pending");
            }
          }
        }
        if (opts_.verbose) {
          std::printf("  [%8.1fus] drain node %d (deadline %.0fus): %s\n",
                      cluster_->now(), node, op.us, st.to_string().c_str());
        }
        break;
      }
    }
  }

  [[nodiscard]] bool workload_done() const {
    for (const LiveMessage& m : live_) {
      if (m.send && !m.send->done()) return false;
      if (m.recv && !m.recv->done()) return false;
    }
    return true;
  }

  // Appends a message to the plan at run time (kPeerCrash phases post
  // traffic the seed-drawn prefix never saw). Fresh tags keep the new
  // streams disjoint from the prefix's, so the oracle's k-th-matches-k-th
  // bookkeeping is untouched by the engine's post-rejoin sequence reset.
  size_t add_message(int src, int dst, uint64_t tag, size_t bytes) {
    Message m;
    m.src = src;
    m.dst = dst;
    m.tag = tag;
    m.bytes = bytes;
    m.pattern =
        opts_.seed ^ (plan_.messages.size() * 0x9E3779B9ull + 0xC4A5Bull);
    plan_.messages.push_back(m);
    live_.emplace_back();
    return plan_.messages.size() - 1;
  }

  // kPeerCrash driver. The seed-drawn prefix has already executed and
  // been balanced on a healthy fabric; from here the run is phased:
  //   1. pump the prefix to completion;
  //   2. install the node-1 dark window, post crash-phase traffic (fresh
  //      tags, both halves, eager through rendezvous/spray sizes) so the
  //      blackout lands mid-transfer, and drain the survivor through the
  //      death — the quiescence audit runs against the unwind itself;
  //   3. audit that both sides declared the peer dead;
  //   4. rejoin variant: wait for the incarnation handshake to re-open
  //      the gates, then prove post-rejoin traffic is exactly-once.
  void run_peer_crash(size_t& events, size_t cap) {
    // Phase 1: heartbeat timers re-arm forever, so pump until the
    // workload is done rather than to world quiescence.
    while (events < cap && cluster_->world().run_one()) {
      ++events;
      if (workload_done()) break;
    }
    // Phase 2: every NIC on node 1 goes dark at once. From here on a
    // completion may be ok (finished before the dark) or kPeerDead.
    const double start = cluster_->now() + plan_.crash_delay_us;
    const double end =
        plan_.crash_rejoins ? start + plan_.crash_len_us : 1e15;
    cluster_->fabric().set_node_crashes(1, {{start, end}});
    oracle_.set_allow_failures(true);
    static constexpr size_t kCrashSizes[] = {48,    256,   4096,
                                             8192,  32768, 150 * 1024};
    std::vector<size_t> crash_msgs;
    for (size_t i = 0; i < std::size(kCrashSizes); ++i) {
      const int src = static_cast<int>(i % 2);
      crash_msgs.push_back(add_message(src, 1 - src, 10 + i, kCrashSizes[i]));
    }
    for (size_t m : crash_msgs) {
      post_send(m);
      post_recv(m);
    }
    // Crash-mid-drain: the survivor starts flushing before the dark hits
    // and must come back ok once the unwind fences the dead peer. A
    // deadline-exceeded here means in-flight state survived the unwind.
    const util::Status mid = cluster_->core(0).drain(
        plan_.crash_delay_us + 30000.0);
    if (!mid.is_ok()) {
      oracle_.note_violation(
          "survivor drain through the peer's death returned " +
          mid.to_string() + " — the unwind left in-flight state behind");
    }
    // Phase 3: both sides must declare the peer dead (the dark node's own
    // rails hear nothing either, so death is symmetric) and complete
    // every crash-phase request.
    while (events < cap && cluster_->world().run_one()) {
      ++events;
      if (cluster_->core(0).stats().peers_died >= 1 &&
          cluster_->core(1).stats().peers_died >= 1 && workload_done()) {
        break;
      }
    }
    for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
      if (cluster_->core(n).stats().peers_died == 0) {
        oracle_.note_violation(
            "node " + std::to_string(n) +
            ": peer-crash plan but no peer death was ever declared");
      }
    }
    // Quiescence audit after the unwind settled: nothing stranded.
    const util::Status post = cluster_->core(0).drain(5000.0);
    if (!post.is_ok()) {
      oracle_.note_violation("survivor drain after peer death returned " +
                             post.to_string());
    }
    if (plan_.crash_rejoins) {
      // Phase 4: the restart bumped node 1's incarnation; probes revive
      // the rails and the fenced handshake re-opens the gates.
      while (events < cap && cluster_->world().run_one()) {
        ++events;
        if (cluster_->core(0).stats().peers_rejoined >= 1 &&
            cluster_->core(1).stats().peers_rejoined >= 1) {
          break;
        }
      }
      for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
        if (cluster_->core(n).stats().peers_rejoined == 0) {
          oracle_.note_violation(
              "node " + std::to_string(n) +
              ": crash window ended but the gate never rejoined");
        }
      }
      // Post-rejoin traffic on fresh tags: sequence and credit state
      // restarted with the new incarnation, so these must complete ok
      // with intact payloads (the oracle checks the checksums).
      std::vector<size_t> rejoin_msgs;
      for (size_t i = 0; i < std::size(kCrashSizes); ++i) {
        const int src = static_cast<int>(i % 2);
        rejoin_msgs.push_back(
            add_message(src, 1 - src, 100 + i, kCrashSizes[i]));
      }
      for (size_t m : rejoin_msgs) {
        post_send(m);
        post_recv(m);
      }
      while (events < cap && cluster_->world().run_one()) {
        ++events;
        if (workload_done()) break;
      }
      for (size_t m : rejoin_msgs) {
        const LiveMessage& lm = live_[m];
        const bool send_ok =
            lm.send && lm.send->done() && lm.send->status().is_ok();
        const bool recv_ok =
            lm.recv && lm.recv->done() && lm.recv->status().is_ok();
        if (!send_ok || !recv_ok) {
          oracle_.note_violation(
              "post-rejoin message " + std::to_string(m) +
              " did not complete ok — rejoin traffic is not exactly-once");
        }
      }
      for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
        core::Core& core = cluster_->core(n);
        for (simnet::RailIndex r = 0;
             r < static_cast<simnet::RailIndex>(core.rail_count()); ++r) {
          if (!core.rail_alive(r)) {
            oracle_.note_violation(
                "node " + std::to_string(n) + " rail " + std::to_string(r) +
                " still dead after the rejoin settled");
          }
        }
      }
    }
    for (simnet::NodeId n = 0; n < cluster_->node_count(); ++n) {
      cluster_->core(n).stop_health_monitors();
    }
    while (events < cap && cluster_->world().run_one()) ++events;
  }

  void post_send(size_t msg) {
    LiveMessage& m = live_[msg];
    if (m.send) return;
    const Message& spec = plan_.messages[msg];
    m.out.resize(spec.bytes);
    util::fill_pattern({m.out.data(), m.out.size()}, spec.pattern);
    const util::ConstBytes payload{m.out.data(), m.out.size()};
    m.send_index =
        oracle_.send_posted(spec.src, spec.dst, spec.tag, payload);
    core::Core& src = cluster_->core(spec.src);
    core::Request* req = src.isend(
        cluster_->gate(static_cast<simnet::NodeId>(spec.src),
                       static_cast<simnet::NodeId>(spec.dst)),
        core::Tag(spec.tag), payload);
    m.send = req;
    // A request can complete inside isend itself (failed gate); the
    // callback must not be armed after the fact.
    if (req->done()) {
      oracle_.send_completed(spec.src, spec.dst, spec.tag, m.send_index,
                             req->status());
    } else {
      req->set_on_complete([this, msg, req] {
        const Message& s = plan_.messages[msg];
        oracle_.send_completed(s.src, s.dst, s.tag, live_[msg].send_index,
                               req->status());
      });
    }
    if (opts_.verbose) {
      std::printf("  [%8.1fus] isend %d->%d tag %llu %zuB (#%zu)\n",
                  cluster_->now(), spec.src, spec.dst,
                  static_cast<unsigned long long>(spec.tag), spec.bytes,
                  m.send_index);
    }
  }

  void post_recv(size_t msg) {
    LiveMessage& m = live_[msg];
    if (m.recv) return;
    const Message& spec = plan_.messages[msg];
    m.in.assign(spec.bytes, std::byte{0xEE});
    m.recv_index = oracle_.recv_posted(
        spec.dst, spec.src, spec.tag,
        util::ConstBytes{m.in.data(), m.in.size()});
    core::Core& dst = cluster_->core(spec.dst);
    auto* req = dst.irecv(
        cluster_->gate(static_cast<simnet::NodeId>(spec.dst),
                       static_cast<simnet::NodeId>(spec.src)),
        core::Tag(spec.tag), util::MutableBytes{m.in.data(), m.in.size()});
    m.recv = req;
    // irecv can complete synchronously (unexpected-store replay of a
    // fully-arrived message, peer-cancelled tombstone, failed gate) —
    // in that case the completion already happened and a late callback
    // would never fire.
    if (req->done()) {
      oracle_.recv_completed(spec.dst, spec.src, spec.tag, m.recv_index,
                             req->status(), req->received_bytes());
    } else {
      req->set_on_complete([this, msg, req] {
        const Message& s = plan_.messages[msg];
        oracle_.recv_completed(s.dst, s.src, s.tag, live_[msg].recv_index,
                               req->status(), req->received_bytes());
      });
    }
    if (opts_.verbose) {
      std::printf("  [%8.1fus] irecv %d<-%d tag %llu %zuB (#%zu)\n",
                  cluster_->now(), spec.dst, spec.src,
                  static_cast<unsigned long long>(spec.tag), spec.bytes,
                  m.recv_index);
    }
  }

  ExplorerOptions opts_;
  Plan plan_;
  std::unique_ptr<api::Cluster> cluster_;
  // First time each node's bus reported each lifecycle stage (-1 =
  // never). Filled by the shadow subscriptions wired in the ctor.
  struct ChainTimes {
    double elected = -1.0;
    double built = -1.0;
    double tx = -1.0;
    double acked = -1.0;
  };

  // Shadow reassembly state of one sprayed message on one node, keyed
  // by (gate, tag, seq): the byte ranges the engine *applied* (accepted
  // into the destination), and whether it declared reassembly done.
  struct SprayState {
    std::map<size_t, size_t> covered;  // offset → end, as applied
    uint64_t applied = 0;              // Σ applied fragment lengths
    bool completed = false;
  };
  using SprayKey = std::tuple<core::GateId, uint64_t, uint32_t>;

  std::vector<LiveMessage> live_;
  std::vector<ChainTimes> chain_;
  std::vector<std::map<SprayKey, SprayState>> spray_audit_;
  ProtocolOracle oracle_;
};

}  // namespace

ExplorerResult run_schedule(const ExplorerOptions& opts) {
  Plan plan = make_plan(opts);
  if (opts.verbose) {
    std::printf(
        "seed=%llu nodes=%zu rails=%zu strategy=%s fault=%s flow=%d "
        "ops=%zu msgs=%zu\n",
        static_cast<unsigned long long>(opts.seed), plan.nodes, plan.rails,
        plan.strategy.c_str(), fault_kind_name(plan.fault),
        plan.config.flow_control ? 1 : 0, plan.ops.size(),
        plan.messages.size());
  }
  Runner runner(opts, std::move(plan));
  return runner.run();
}

size_t minimize(ExplorerOptions opts) {
  const ExplorerResult full = run_schedule(opts);
  if (full.ok) return 0;
  size_t lo = 1;
  size_t hi = std::min(opts.max_ops, full.ops_total);
  // Binary search assuming prefix-monotone failure; the final re-run
  // verifies the assumption and falls back to the known-failing length.
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    ExplorerOptions probe = opts;
    probe.max_ops = mid;
    probe.verbose = false;
    if (!run_schedule(probe).ok) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ExplorerOptions check = opts;
  check.max_ops = lo;
  check.verbose = false;
  if (run_schedule(check).ok) {
    return std::min(opts.max_ops, full.ops_total);  // non-monotone; keep all
  }
  return lo;
}

std::string replay_command(const ExplorerOptions& opts, size_t ops) {
  std::string cmd = "explorer --seed=" + std::to_string(opts.seed) +
                    " --ops=" + std::to_string(ops);
  if (opts.ranks != 0) cmd += " --ranks=" + std::to_string(opts.ranks);
  if (!opts.force_fault.empty()) cmd += " --fault=" + opts.force_fault;
  if (opts.inject_skip_credit) cmd += " --inject=skip-credit-charge";
  return cmd;
}

bool known_fault_kind(const std::string& name) {
  FaultKind ignored = FaultKind::kNone;
  return fault_kind_from_name(name, &ignored);
}

}  // namespace nmad::harness
