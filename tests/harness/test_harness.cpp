// The chaos harness testing itself: the oracle flags misuse, a sweep of
// randomized schedules runs green with real strategy/fault coverage,
// replays are bit-deterministic, and an intentionally injected protocol
// bug (a skipped credit charge) is caught and shrunk to a replayable
// seed.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "harness/explorer_lib.hpp"
#include "harness/oracle.hpp"
#include "nmad/api/session.hpp"
#include "simnet/profiles.hpp"
#include "util/buffer.hpp"

namespace nmad::harness {
namespace {

TEST(Oracle, FlagsDoubleCompletionAndLostOps) {
  ProtocolOracle oracle;
  std::vector<std::byte> payload(64);
  util::fill_pattern({payload.data(), payload.size()}, 9);
  const util::ConstBytes bytes{payload.data(), payload.size()};

  const size_t s = oracle.send_posted(0, 1, 5, bytes);
  const size_t r = oracle.recv_posted(1, 0, 5, bytes);
  oracle.send_completed(0, 1, 5, s, util::ok_status());
  oracle.send_completed(0, 1, 5, s, util::ok_status());  // duplicate
  EXPECT_FALSE(oracle.ok());
  EXPECT_NE(oracle.violations()[0].find("completed twice"),
            std::string::npos);

  // The receive never completes: finalize must flag it as lost.
  (void)r;
  api::Cluster cluster;  // any cluster works for the engine-side walk
  oracle.finalize(cluster);
  bool lost = false;
  for (const std::string& v : oracle.violations()) {
    if (v.find("never completed") != std::string::npos) lost = true;
  }
  EXPECT_TRUE(lost);
}

TEST(Oracle, FlagsCorruptPayload) {
  ProtocolOracle oracle;
  std::vector<std::byte> sent(128), got(128);
  util::fill_pattern({sent.data(), sent.size()}, 3);
  util::fill_pattern({got.data(), got.size()}, 4);  // different contents

  const size_t s = oracle.send_posted(0, 1, 0,
                                      {sent.data(), sent.size()});
  const size_t r =
      oracle.recv_posted(1, 0, 0, {got.data(), got.size()});
  oracle.send_completed(0, 1, 0, s, util::ok_status());
  oracle.recv_completed(1, 0, 0, r, util::ok_status(), got.size());
  ASSERT_FALSE(oracle.ok());
  EXPECT_NE(oracle.violations()[0].find("checksum"), std::string::npos);
}

TEST(Explorer, SweepRunsGreenWithCoverage) {
  std::set<std::string> strategies;
  std::set<std::string> faults;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    ExplorerOptions opts;
    opts.seed = seed;
    const ExplorerResult r = run_schedule(opts);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": "
                      << (r.violations.empty() ? "?" : r.violations[0]);
    EXPECT_GT(r.messages, 0u) << "seed " << seed;
    strategies.insert(r.strategy);
    faults.insert(r.fault_kind);
  }
  // The acceptance bar: at least 3 strategies x 4 fault kinds exercised.
  EXPECT_GE(strategies.size(), 3u);
  EXPECT_GE(faults.size(), 4u);
}

TEST(Explorer, SeededScheduleTraceCapturesLifecycle) {
  // A reliable (rail-flap forces rail health, hence acks) seeded
  // schedule must walk the complete elect -> build -> tx -> rx -> ack
  // chain through the event bus, and the per-node trace rings must have
  // retained it in chronological order.
  ExplorerOptions opts;
  opts.seed = 3;
  opts.force_fault = "rail-flap";
  const ExplorerResult r = run_schedule(opts);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "?" : r.violations[0]);
  ASSERT_GT(r.messages, 0u);
  EXPECT_GT(r.ev_elected, 0u);
  EXPECT_GT(r.ev_packet_built, 0u);
  EXPECT_GT(r.ev_wire_tx, 0u);
  EXPECT_GT(r.ev_wire_rx, 0u);
  EXPECT_GT(r.ev_acked, 0u);
  EXPECT_TRUE(r.trace_lifecycle_ok);
}

TEST(Explorer, ReplayIsDeterministic) {
  ExplorerOptions opts;
  opts.seed = 42;
  const ExplorerResult a = run_schedule(opts);
  const ExplorerResult b = run_schedule(opts);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ops_total, b.ops_total);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.fault_kind, b.fault_kind);
  EXPECT_EQ(a.virtual_us, b.virtual_us);  // bit-identical virtual time
}

TEST(Explorer, InjectedCreditBugIsCaughtAndShrunk) {
  // Plant the bug (rank 0 skips its next credit charges) and let the
  // harness find it: some seed in a small range must produce eager
  // flow-controlled traffic that trips the oracle's conservation checks.
  ExplorerOptions failing;
  bool found = false;
  for (uint64_t seed = 1; seed <= 30 && !found; ++seed) {
    ExplorerOptions opts;
    opts.seed = seed;
    opts.inject_skip_credit = true;
    const ExplorerResult r = run_schedule(opts);
    if (!r.ok) {
      failing = opts;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed tripped on the injected bug";

  const size_t shrunk = minimize(failing);
  ASSERT_GT(shrunk, 0u);
  const ExplorerResult full = run_schedule(failing);
  EXPECT_LE(shrunk, full.ops_total);

  // The minimized prefix still reproduces, and the replay line carries
  // everything needed to do it again from a shell.
  ExplorerOptions replay = failing;
  replay.max_ops = shrunk;
  EXPECT_FALSE(run_schedule(replay).ok);
  const std::string cmd = replay_command(failing, shrunk);
  EXPECT_NE(cmd.find("--seed="), std::string::npos);
  EXPECT_NE(cmd.find("--ops="), std::string::npos);
  EXPECT_NE(cmd.find("--inject=skip-credit-charge"), std::string::npos);
}

TEST(Invariants, CheckInvariantsCatchesSkippedCharge) {
  // The same bug, seen from the compiled-in checker instead of the
  // oracle: once an uncharged chunk leaves the window, the gate's
  // window-byte gauge no longer matches the window contents.
  api::ClusterOptions options;
  options.rails = {simnet::mx_myri10g_profile()};
  options.core.reliability = true;
  options.core.flow_control = true;
  options.core.ack_timeout_us = 200.0;
  options.core.ack_delay_us = 5.0;
  api::Cluster cluster(std::move(options));
  core::Core& a = cluster.core(0);
  core::Core& b = cluster.core(1);

  std::vector<std::string> clean;
  EXPECT_TRUE(a.check_invariants(&clean)) << clean[0];

#ifdef NMAD_VALIDATE
  // Under -DNMAD_VALIDATE the per-tick hook would abort the process the
  // moment the bug fires; install a collector so the test observes it.
  std::vector<std::string> seen;
  a.set_validate_failure_handler(
      [&seen](const std::vector<std::string>& f) {
        seen.insert(seen.end(), f.begin(), f.end());
      });
#endif

  a.test_skip_next_credit_charge(1);
  std::vector<std::byte> out(512), in(512);
  util::fill_pattern({out.data(), out.size()}, 1);
  core::Request* r =
      b.irecv(cluster.gate(1, 0), 0, util::MutableBytes{in.data(), 512});
  core::Request* s =
      a.isend(cluster.gate(0, 1), 0, util::ConstBytes{out.data(), 512});
  cluster.wait(s);
  cluster.wait(r);
  cluster.world().run_to_quiescence();

  std::vector<std::string> failures;
  EXPECT_FALSE(a.check_invariants(&failures));
  ASSERT_FALSE(failures.empty());
#ifdef NMAD_VALIDATE
  EXPECT_FALSE(seen.empty());
  EXPECT_GT(a.stats().validate_violations, 0u);
#endif
  a.release(s);
  b.release(r);
}

}  // namespace
}  // namespace nmad::harness
