// MpiStack: one-call construction of a complete simulated MPI world for
// any of the three implementations the paper compares.
//
// Every bench builds the same program against the same NIC profile and
// only varies the stack, exactly as the paper varies MAD-MPI vs MPICH vs
// OpenMPI on one testbed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baseline/baseline_mpi.hpp"
#include "madmpi/madmpi.hpp"
#include "simnet/profiles.hpp"

namespace nmad::baseline {

enum class StackImpl {
  kMadMpi,
  kMpich,
  kOpenMpi,
};

const char* stack_impl_name(StackImpl impl);
// "madmpi" / "mpich" / "openmpi"; false for unknown names.
bool stack_impl_from_name(const std::string& name, StackImpl* out);

struct StackOptions {
  StackImpl impl = StackImpl::kMadMpi;
  simnet::NicProfile nic = simnet::mx_myri10g_profile();
  simnet::CpuProfile cpu = simnet::opteron_2006_profile();
  size_t nodes = 2;
  // MAD-MPI only: engine configuration (strategy, overhead knobs).
  core::CoreConfig core;
  // MAD-MPI only: additional rails beyond `nic` (multi-rail benches,
  // e.g. the flapping-rail scenario). The baseline MPIs are single-rail.
  std::vector<simnet::NicProfile> extra_rails;
};

class MpiStack {
 public:
  explicit MpiStack(StackOptions options);

  [[nodiscard]] mpi::Endpoint& ep(int rank);
  [[nodiscard]] simnet::SimWorld& world();
  [[nodiscard]] double now_us() { return world().now(); }
  [[nodiscard]] const char* impl_name() const {
    return stack_impl_name(options_.impl);
  }
  [[nodiscard]] const StackOptions& options() const { return options_; }

 private:
  StackOptions options_;

  // MAD-MPI flavour.
  std::unique_ptr<mpi::MadMpiWorld> mad_;

  // Baseline flavour.
  std::unique_ptr<simnet::SimWorld> base_world_;
  std::unique_ptr<simnet::Fabric> base_fabric_;
  std::vector<std::unique_ptr<BaselineEndpoint>> base_eps_;
};

}  // namespace nmad::baseline
