#include "baseline/baseline_mpi.hpp"

#include <algorithm>

#include "util/wire.hpp"

namespace nmad::baseline {
namespace {

enum FrameType : uint8_t {
  kEager = 1,      // single-frame message (len == total)
  kEagerFrag = 2,  // one frame of a multi-frame eager message
  kRts = 3,
  kCts = 4,
};

// Compact MPICH-style envelope: type, context, tag, seq, len.
constexpr size_t kEagerHeaderBytes = 1 + 2 + 4 + 4 + 4;
constexpr size_t kFragHeaderBytes = kEagerHeaderBytes + 8;  // + offset,total
constexpr double kFrameSoftwareUs = 0.10;  // per extra pipelined frame

}  // namespace

Tuning mpich_tuning(const simnet::NicProfile& nic) {
  Tuning t;
  t.name = "mpich";
  t.send_overhead_us = 0.30;
  t.recv_overhead_us = 0.20;
  t.match_overhead_us = 0.10;
  t.eager_threshold = nic.rdv_threshold;
  t.rndv_frag_bytes = 0;  // single zero-copy bulk transfer
  return t;
}

Tuning openmpi_tuning(const simnet::NicProfile& nic) {
  Tuning t;
  t.name = "openmpi";
  t.send_overhead_us = 0.55;
  t.recv_overhead_us = 0.35;
  t.match_overhead_us = 0.15;
  t.eager_threshold = nic.rdv_threshold;
  t.rndv_frag_bytes = 128 * 1024;  // BTL-style pipelined rendezvous
  t.rndv_frag_overhead_us = 0.40;
  t.pipelined_pack = true;
  return t;
}

// ---------------------------------------------------------------------------
// Request state
// ---------------------------------------------------------------------------

struct BaselineEndpoint::BaseRequest : mpi::Request {
  bool complete = false;
  util::Status st;

  [[nodiscard]] bool done() const override { return complete; }
  [[nodiscard]] util::Status status() const override { return st; }

  void finish(util::Status s = util::ok_status()) {
    if (complete) return;
    st = std::move(s);
    complete = true;
  }
};

struct BaselineEndpoint::SendState : BaselineEndpoint::BaseRequest {
  int dest = 0;
  uint16_t ctx = 0;
  int tag = 0;
  uint32_t seq = 0;
  util::ByteBuffer pack_buf;   // datatype bounce (owned)
  util::ConstBytes view;       // contiguous body
  uint64_t cookie = 0;
  size_t sent = 0;             // bulk/frame progress
  size_t frames_pending = 0;   // in-flight eager frames
  bool all_frames_queued = false;
  bool charge_pack_per_frag = false;  // OpenMPI pipelined datatype pack
};

struct BaselineEndpoint::RecvState : BaselineEndpoint::BaseRequest {
  int src = 0;
  uint16_t ctx = 0;
  int tag = 0;
  uint32_t seq = 0;
  void* user_buf = nullptr;
  size_t user_bytes = 0;       // type.size * count
  bool contiguous = true;
  mpi::Datatype type = mpi::Datatype::byte_type();
  int count = 0;
  util::ByteBuffer bounce;     // packed stream for noncontiguous receives
  size_t received = 0;   // accounted after the modelled copy finishes
  size_t delivered = 0;  // accounted synchronously at frame arrival
  size_t expected = 0;
  bool expected_known = false;
  bool unpack_issued = false;

  [[nodiscard]] size_t received_bytes() const override { return received; }
};

struct BaselineEndpoint::UnexpectedEntry {
  bool is_rdv = false;
  uint64_t cookie = 0;
  uint32_t total = 0;
  util::ByteBuffer data;   // in-order prefix of the packed stream
  size_t received = 0;
};

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

BaselineEndpoint::BaselineEndpoint(simnet::SimWorld& world,
                                   simnet::SimNode& node, int rank, int size,
                                   Tuning tuning)
    : Endpoint(world, rank, size),
      node_(node),
      nic_(node.nic(0)),
      tuning_(tuning),
      next_cookie_((static_cast<uint64_t>(rank) + 1) << 48) {
  nic_.set_rx_handler(
      [this](simnet::RxFrame&& frame) { on_frame(std::move(frame)); });
}

BaselineEndpoint::~BaselineEndpoint() {
  for (auto& [cookie, sink] : rdv_sinks_) {
    nic_.remove_bulk_sink(cookie);
  }
}

void BaselineEndpoint::when_cpu_free(std::function<void()> fn) {
  const simnet::SimTime free_at = node_.cpu().free_at();
  if (free_at <= world_.now()) {
    fn();
  } else {
    world_.at(free_at, std::move(fn));
  }
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

mpi::Request* BaselineEndpoint::isend(const void* buf, int count,
                                      const mpi::Datatype& type, int dest,
                                      int tag, mpi::Comm comm) {
  NMAD_ASSERT(dest >= 0 && dest < size_ && dest != rank_);
  auto* state = new SendState;
  state->dest = dest;
  state->ctx = static_cast<uint16_t>(comm.context);
  state->tag = tag;
  state->seq = send_seq_[FlowKey{dest, comm.context, tag}]++;

  node_.cpu().charge(tuning_.send_overhead_us);

  const size_t total = type.size() * static_cast<size_t>(count);
  if (type.is_contiguous() || total == 0) {
    state->view = util::as_bytes_view(buf, total);
  } else {
    // Derived datatype: pack everything into a contiguous bounce buffer —
    // the documented MPICH/OpenMPI behaviour (§5.3).
    state->pack_buf.resize(total);
    type.pack(buf, count, state->pack_buf.view());
    stats_.pack_bytes += total;
    if (tuning_.pipelined_pack && tuning_.rndv_frag_bytes != 0 &&
        total > tuning_.eager_threshold && nic_.profile().rdma) {
      // Pack cost is charged fragment-by-fragment as the rendezvous
      // pipeline drains (content is staged now; that is sim bookkeeping).
      state->charge_pack_per_frag = true;
    } else {
      node_.cpu().charge_memcpy(total);
    }
    state->view = state->pack_buf.view();
  }

  if (total <= tuning_.eager_threshold || !nic_.profile().rdma) {
    emit_eager_frames(state);
  } else {
    // Rendezvous: RTS now, bulk after the CTS.
    state->cookie = next_cookie_++;
    rdv_send_[state->cookie] = state;
    ++stats_.rdv_count;
    util::ByteBuffer frame;
    util::WireWriter w(frame);
    w.u8(kRts);
    w.u16(state->ctx);
    w.u32(static_cast<uint32_t>(state->tag));
    w.u32(state->seq);
    w.u32(static_cast<uint32_t>(total));
    w.u64(state->cookie);
    ++stats_.frames_sent;
    when_cpu_free([this, state, frame = std::move(frame)]() {
      nic_.send_frame(state->dest, frame.view(), 1, nullptr);
    });
  }
  return state;
}

void BaselineEndpoint::emit_eager_frames(SendState* state) {
  const size_t total = state->view.size();
  const size_t max_payload =
      nic_.profile().max_eager_frame - kFragHeaderBytes;
  const bool single = total <= max_payload;

  size_t offset = 0;
  do {
    const size_t n = std::min(total - offset, max_payload);
    if (offset > 0) node_.cpu().charge(kFrameSoftwareUs);
    util::ByteBuffer frame;
    util::WireWriter w(frame);
    w.u8(single ? kEager : kEagerFrag);
    w.u16(state->ctx);
    w.u32(static_cast<uint32_t>(state->tag));
    w.u32(state->seq);
    w.u32(static_cast<uint32_t>(n));
    if (!single) {
      w.u32(static_cast<uint32_t>(offset));
      w.u32(static_cast<uint32_t>(total));
    }
    w.bytes(state->view.subspan(offset, n));
    ++state->frames_pending;
    ++stats_.frames_sent;
    // Header + payload go out as a two-segment gather when the NIC can,
    // otherwise the copy cost is charged.
    const size_t segs = nic_.profile().has_gather() ? 2 : 1;
    if (!nic_.profile().has_gather()) node_.cpu().charge_memcpy(n);
    when_cpu_free([this, state, segs, frame = std::move(frame)]() {
      nic_.send_frame(state->dest, frame.view(), segs, [state]() {
        NMAD_ASSERT(state->frames_pending > 0);
        if (--state->frames_pending == 0 && state->all_frames_queued) {
          state->finish();
        }
      });
    });
    offset += n;
  } while (offset < total);
  state->all_frames_queued = true;
  if (state->frames_pending == 0) state->finish();  // possible for 0 bytes?
}

void BaselineEndpoint::start_bulk_send(SendState* state) {
  if (tuning_.rndv_frag_bytes == 0) {
    // Single zero-copy transfer (MPICH over MX/Elan).
    when_cpu_free([this, state]() {
      nic_.send_bulk(state->dest, state->cookie, 0, state->view, 1,
                     [state]() { state->finish(); });
    });
    return;
  }
  continue_bulk_send(state);
}

void BaselineEndpoint::continue_bulk_send(SendState* state) {
  const size_t n =
      std::min(tuning_.rndv_frag_bytes, state->view.size() - state->sent);
  node_.cpu().charge(tuning_.rndv_frag_overhead_us);
  if (state->charge_pack_per_frag) node_.cpu().charge_memcpy(n);
  const size_t offset = state->sent;
  state->sent += n;
  when_cpu_free([this, state, offset, n]() {
    nic_.send_bulk(state->dest, state->cookie, offset,
                   state->view.subspan(offset, n), 1, [this, state]() {
                     if (state->sent < state->view.size()) {
                       continue_bulk_send(state);
                     } else {
                       state->finish();
                     }
                   });
  });
}

void BaselineEndpoint::send_cts(int dest, uint64_t cookie) {
  util::ByteBuffer frame;
  util::WireWriter w(frame);
  w.u8(kCts);
  w.u16(0);
  w.u32(0);
  w.u32(0);
  w.u32(0);
  w.u64(cookie);
  ++stats_.frames_sent;
  when_cpu_free([this, dest, frame = std::move(frame)]() {
    nic_.send_frame(dest, frame.view(), 1, nullptr);
  });
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

mpi::Request* BaselineEndpoint::irecv(void* buf, int count,
                                      const mpi::Datatype& type, int source,
                                      int tag, mpi::Comm comm) {
  NMAD_ASSERT(source >= 0 && source < size_ && source != rank_);
  auto* state = new RecvState;
  state->src = source;
  state->ctx = static_cast<uint16_t>(comm.context);
  state->tag = tag;
  state->seq = recv_seq_[FlowKey{source, comm.context, tag}]++;
  state->user_buf = buf;
  state->user_bytes = type.size() * static_cast<size_t>(count);
  state->contiguous = type.is_contiguous();
  state->type = type;
  state->count = count;

  node_.cpu().charge(tuning_.recv_overhead_us);

  const MsgKey key{source, comm.context, tag, state->seq};
  auto it = unexpected_.find(key);
  if (it == unexpected_.end()) {
    active_recv_[key] = state;
    return state;
  }

  UnexpectedEntry entry = std::move(it->second);
  unexpected_.erase(it);
  if (entry.is_rdv) {
    begin_rdv_recv(state, source, entry.total, entry.cookie);
    return state;
  }
  // Replay the buffered in-order prefix; later frames (if any) keep
  // flowing through the active path.
  state->expected = entry.total;
  state->expected_known = true;
  if (state->expected > state->user_bytes) {
    state->finish(util::truncated("message longer than receive buffer"));
    return state;
  }
  if (entry.received < entry.total) {
    active_recv_[key] = state;
  }
  if (entry.received > 0) {
    deliver_to_user(state, 0,
                    util::ConstBytes{entry.data.data(), entry.received});
  } else if (entry.total == 0) {
    recv_account(state, 0, world_.now());
  }
  return state;
}

mpi::ProbeStatus BaselineEndpoint::iprobe(int source, int tag,
                                          mpi::Comm comm) {
  NMAD_ASSERT(source >= 0 && source < size_ && source != rank_);
  uint32_t next_seq = 0;
  if (auto it = recv_seq_.find(FlowKey{source, comm.context, tag});
      it != recv_seq_.end()) {
    next_seq = it->second;
  }
  auto it = unexpected_.find(MsgKey{source, comm.context, tag, next_seq});
  if (it == unexpected_.end()) return {};
  return mpi::ProbeStatus{true, it->second.total};
}

void BaselineEndpoint::on_frame(simnet::RxFrame&& frame) {
  node_.cpu().charge(tuning_.match_overhead_us);
  util::WireReader r(frame.bytes.view());
  const auto type = static_cast<FrameType>(r.u8());
  const uint16_t ctx = r.u16();
  const auto tag = static_cast<int>(r.u32());
  const uint32_t seq = r.u32();
  const int src = static_cast<int>(frame.src_node);

  switch (type) {
    case kEager: {
      const uint32_t len = r.u32();
      const MsgKey key{src, ctx, tag, seq};
      on_eager(src, key, 0, len, r.bytes(len));
      break;
    }
    case kEagerFrag: {
      const uint32_t len = r.u32();
      const uint32_t offset = r.u32();
      const uint32_t total = r.u32();
      const MsgKey key{src, ctx, tag, seq};
      on_eager(src, key, offset, total, r.bytes(len));
      break;
    }
    case kRts: {
      const uint32_t total = r.u32();
      const uint64_t cookie = r.u64();
      const MsgKey key{src, ctx, tag, seq};
      on_rts(src, key, total, cookie);
      break;
    }
    case kCts: {
      r.u32();  // unused len slot
      on_cts(r.u64());
      break;
    }
  }
  NMAD_ASSERT_MSG(r.ok(), "malformed baseline frame");
}

void BaselineEndpoint::on_eager(int src, const MsgKey& key, uint32_t offset,
                                uint32_t total, util::ConstBytes payload) {
  (void)src;  // the key already encodes the source
  auto it = active_recv_.find(key);
  if (it == active_recv_.end()) {
    UnexpectedEntry& entry = unexpected_[key];
    entry.total = total;
    if (entry.data.size() < total) entry.data.resize(total);
    NMAD_ASSERT_MSG(offset == entry.received,
                    "out-of-order frame on an in-order link");
    util::copy_bytes(
        util::MutableBytes{entry.data.data() + offset, payload.size()},
        payload);
    node_.cpu().charge_memcpy(payload.size());
    entry.received += payload.size();
    return;
  }

  RecvState* state = it->second;
  if (!state->expected_known) {
    state->expected = total;
    state->expected_known = true;
    if (state->expected > state->user_bytes) {
      state->finish(util::truncated("message longer than receive buffer"));
      active_recv_.erase(it);
      return;
    }
  }
  if (payload.empty() && total == 0) {
    active_recv_.erase(it);
    recv_account(state, 0, world_.now());
    return;
  }
  deliver_to_user(state, offset, payload);
  if (state->delivered == state->expected) {
    active_recv_.erase(MsgKey{state->src, state->ctx, state->tag,
                              state->seq});
  }
}

void BaselineEndpoint::deliver_to_user(RecvState* state, uint32_t offset,
                                       util::ConstBytes payload) {
  if (state->contiguous) {
    // One copy: NIC buffer → user buffer.
    util::copy_bytes(
        util::MutableBytes{
            static_cast<std::byte*>(state->user_buf) + offset,
            payload.size()},
        payload);
  } else {
    // Temporary area first; dispatch happens in finish_recv (second copy).
    if (state->bounce.size() < state->expected) {
      state->bounce.resize(state->expected);
    }
    util::copy_bytes(
        util::MutableBytes{state->bounce.data() + offset, payload.size()},
        payload);
  }
  state->delivered += payload.size();
  const simnet::SimTime done_at =
      node_.cpu().charge_memcpy(payload.size());
  recv_account(state, payload.size(), done_at);
}

void BaselineEndpoint::recv_account(RecvState* state, size_t bytes,
                                    simnet::SimTime done_at) {
  world_.at(done_at, [this, state, bytes]() {
    state->received += bytes;
    NMAD_ASSERT(state->expected_known);
    if (state->received < state->expected) return;
    finish_recv(state);
  });
}

void BaselineEndpoint::finish_recv(RecvState* state) {
  if (!state->contiguous && !state->unpack_issued &&
      state->expected > 0) {
    // Dispatch from the temporary area to the real destination.
    state->unpack_issued = true;
    state->type.unpack(state->bounce.view(), state->user_buf, state->count);
    stats_.unpack_bytes += state->expected;
    const simnet::SimTime t = node_.cpu().charge_memcpy(state->expected);
    world_.at(t, [state]() { state->finish(); });
    return;
  }
  state->finish();
}

void BaselineEndpoint::on_rts(int src, const MsgKey& key, uint32_t total,
                              uint64_t cookie) {
  auto it = active_recv_.find(key);
  if (it == active_recv_.end()) {
    UnexpectedEntry& entry = unexpected_[key];
    entry.is_rdv = true;
    entry.total = total;
    entry.cookie = cookie;
    return;
  }
  RecvState* state = it->second;
  active_recv_.erase(it);
  begin_rdv_recv(state, src, total, cookie);
}

void BaselineEndpoint::begin_rdv_recv(RecvState* state, int src,
                                      uint32_t total, uint64_t cookie) {
  state->expected = total;
  state->expected_known = true;
  if (total > state->user_bytes) {
    state->finish(util::truncated("message longer than receive buffer"));
    return;
  }
  util::MutableBytes region;
  if (state->contiguous) {
    region = util::MutableBytes{static_cast<std::byte*>(state->user_buf),
                                total};
  } else {
    state->bounce.resize(total);
    region = state->bounce.view();
  }
  auto sink = std::make_unique<simnet::BulkSink>(
      cookie, region, total, [this, state, cookie, total]() {
        world_.after(0.0, [this, state, cookie, total]() {
          nic_.remove_bulk_sink(cookie);
          rdv_sinks_.erase(cookie);
          state->received = total;
          finish_recv(state);
        });
      });
  nic_.post_bulk_sink(sink.get());
  rdv_sinks_.emplace(cookie, std::move(sink));
  send_cts(src, cookie);
}

void BaselineEndpoint::on_cts(uint64_t cookie) {
  auto it = rdv_send_.find(cookie);
  NMAD_ASSERT_MSG(it != rdv_send_.end(), "CTS for unknown cookie");
  SendState* state = it->second;
  rdv_send_.erase(it);
  start_bulk_send(state);
}

void BaselineEndpoint::free_request(mpi::Request* req) {
  delete static_cast<BaseRequest*>(req);
}

}  // namespace nmad::baseline
