#include "baseline/stack.hpp"

namespace nmad::baseline {

const char* stack_impl_name(StackImpl impl) {
  switch (impl) {
    case StackImpl::kMadMpi: return "madmpi";
    case StackImpl::kMpich: return "mpich";
    case StackImpl::kOpenMpi: return "openmpi";
  }
  return "?";
}

bool stack_impl_from_name(const std::string& name, StackImpl* out) {
  if (out == nullptr) return false;
  if (name == "madmpi" || name == "mad-mpi" || name == "nmad") {
    *out = StackImpl::kMadMpi;
  } else if (name == "mpich") {
    *out = StackImpl::kMpich;
  } else if (name == "openmpi" || name == "ompi") {
    *out = StackImpl::kOpenMpi;
  } else {
    return false;
  }
  return true;
}

MpiStack::MpiStack(StackOptions options) : options_(std::move(options)) {
  if (options_.impl == StackImpl::kMadMpi) {
    api::ClusterOptions cluster;
    cluster.nodes = options_.nodes;
    cluster.rails = {options_.nic};
    for (const simnet::NicProfile& rail : options_.extra_rails) {
      cluster.rails.push_back(rail);
    }
    cluster.cpu = options_.cpu;
    cluster.core = options_.core;
    mad_ = std::make_unique<mpi::MadMpiWorld>(std::move(cluster));
    return;
  }

  base_world_ = std::make_unique<simnet::SimWorld>();
  base_fabric_ = std::make_unique<simnet::Fabric>(*base_world_);
  for (size_t n = 0; n < options_.nodes; ++n) {
    base_fabric_->add_node(options_.cpu);
  }
  base_fabric_->add_rail(options_.nic);
  const Tuning tuning = options_.impl == StackImpl::kMpich
                            ? mpich_tuning(options_.nic)
                            : openmpi_tuning(options_.nic);
  for (size_t n = 0; n < options_.nodes; ++n) {
    base_eps_.push_back(std::make_unique<BaselineEndpoint>(
        *base_world_, base_fabric_->node(static_cast<simnet::NodeId>(n)),
        static_cast<int>(n), static_cast<int>(options_.nodes), tuning));
  }
}

mpi::Endpoint& MpiStack::ep(int rank) {
  if (mad_) return mad_->ep(rank);
  NMAD_ASSERT(rank >= 0 && static_cast<size_t>(rank) < base_eps_.size());
  return *base_eps_[rank];
}

simnet::SimWorld& MpiStack::world() {
  if (mad_) return mad_->world();
  return *base_world_;
}

}  // namespace nmad::baseline
