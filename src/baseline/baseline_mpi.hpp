// Baseline MPI implementations: the comparators of the paper's evaluation.
//
// Both model the documented behaviour of 2006-era native MPIs over MX and
// Elan, running on the very same simulated NICs as MAD-MPI so that every
// difference in results comes from protocol behaviour, not cost models:
//
//   - per-message processing: each isend maps to its own wire transaction
//     immediately ("neither MPICH nor OpenMPI try to aggregate individual
//     messages submitted in a short time interval", §5.2); a series of
//     sends pipelines on the NIC's transmit queue, which the paper calls
//     "very efficient" pipelining;
//   - eager protocol under the threshold (one receiver-side copy),
//     rendezvous (RTS/CTS, zero-copy bulk) above it;
//   - derived datatypes are packed into a contiguous bounce buffer on
//     send and unpacked on receive ("MPICH copies all the data fragments
//     into a new contiguous buffer ... received in a temporary memory area
//     before being dispatched", §5.3) — both memcpy passes are charged;
//   - no cross-flow optimization, no reordering, no multi-rail.
//
// The two implementations differ only in tuning: OpenMPI 1.1 carries a
// higher per-message software overhead and fragments rendezvous bodies
// into a pipelined stream, which matches its slightly lower measured
// curves in Figures 2-4.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "madmpi/mpi.hpp"
#include "simnet/fabric.hpp"
#include "simnet/nic.hpp"
#include "simnet/world.hpp"
#include "util/buffer.hpp"

namespace nmad::baseline {

struct Tuning {
  const char* name = "baseline";
  double send_overhead_us = 0.30;   // software cost per isend
  double recv_overhead_us = 0.20;   // software cost per irecv
  double match_overhead_us = 0.10;  // per incoming frame
  size_t eager_threshold = 32 * 1024;
  // 0 = rendezvous body in one bulk transfer; otherwise pipeline in
  // fragments of this many bytes (OpenMPI-style).
  size_t rndv_frag_bytes = 0;
  double rndv_frag_overhead_us = 0.0;  // software cost per fragment
  // OpenMPI's datatype engine packs per fragment, overlapping the pack
  // with the wire; MPICH packs the whole message up front.
  bool pipelined_pack = false;
};

// MPICH (ch3:mx / quadrics) tuning over the given NIC.
Tuning mpich_tuning(const simnet::NicProfile& nic);
// OpenMPI 1.1 tuning over the given NIC.
Tuning openmpi_tuning(const simnet::NicProfile& nic);

class BaselineEndpoint final : public mpi::Endpoint {
 public:
  BaselineEndpoint(simnet::SimWorld& world, simnet::SimNode& node, int rank,
                   int size, Tuning tuning);
  ~BaselineEndpoint() override;

  mpi::Request* isend(const void* buf, int count, const mpi::Datatype& type,
                      int dest, int tag, mpi::Comm comm) override;
  mpi::Request* irecv(void* buf, int count, const mpi::Datatype& type,
                      int source, int tag, mpi::Comm comm) override;
  mpi::ProbeStatus iprobe(int source, int tag, mpi::Comm comm) override;
  void free_request(mpi::Request* req) override;

  [[nodiscard]] const Tuning& tuning() const { return tuning_; }

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t rdv_count = 0;
    uint64_t pack_bytes = 0;    // bytes memcpy'd for datatype packing
    uint64_t unpack_bytes = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct BaseRequest;
  struct SendState;
  struct RecvState;
  struct UnexpectedEntry;

  using FlowKey = std::tuple<int, uint32_t, int>;          // src/dst,ctx,tag
  using MsgKey = std::tuple<int, uint32_t, int, uint32_t>;  // + seq

  // Wire helpers -----------------------------------------------------------
  void emit_eager_frames(SendState* state);
  void send_cts(int dest, uint64_t cookie);
  void start_bulk_send(SendState* state);
  void continue_bulk_send(SendState* state);

  // Receive path ------------------------------------------------------------
  void on_frame(simnet::RxFrame&& frame);
  void on_eager(int src, const MsgKey& key, uint32_t offset, uint32_t total,
                util::ConstBytes payload);
  void on_rts(int src, const MsgKey& key, uint32_t total, uint64_t cookie);
  void on_cts(uint64_t cookie);
  void begin_rdv_recv(RecvState* state, int src, uint32_t total,
                      uint64_t cookie);
  void deliver_to_user(RecvState* state, uint32_t offset,
                       util::ConstBytes payload);
  void finish_recv(RecvState* state);
  void recv_account(RecvState* state, size_t bytes,
                    simnet::SimTime done_at);

  // Runs `fn` once the host CPU is free.
  void when_cpu_free(std::function<void()> fn);

  simnet::SimNode& node_;
  simnet::SimNic& nic_;
  Tuning tuning_;
  uint64_t next_cookie_;

  std::map<FlowKey, uint32_t> send_seq_;
  std::map<FlowKey, uint32_t> recv_seq_;
  std::map<MsgKey, RecvState*> active_recv_;
  std::map<MsgKey, UnexpectedEntry> unexpected_;
  std::map<uint64_t, SendState*> rdv_send_;   // cookie → waiting for CTS
  std::map<uint64_t, std::unique_ptr<simnet::BulkSink>> rdv_sinks_;

  Stats stats_;
};

}  // namespace nmad::baseline
