#include "nmad/runtime/wallclock_runtime.hpp"

#include <algorithm>

namespace nmad::runtime {

WallClockRuntime::WallClockRuntime(Options options)
    : epoch_(std::chrono::steady_clock::now()),
      local_id_(options.local_id),
      incarnation_(options.incarnation),
      cpu_(*this),
      wheel_(options.tick_us) {
  if (options.background_thread) {
    pump_thread_ = std::thread([this] { pump(); });
  }
}

WallClockRuntime::~WallClockRuntime() {
  stop_.store(true, std::memory_order_release);
  {
    // The pump waits on the cv with the wheel lock held; taking it here
    // orders the stop flag before the notify, so the wakeup is not lost.
    std::lock_guard<std::mutex> wl(wheel_mu_);
    wheel_cv_.notify_all();
  }
  if (pump_thread_.joinable()) pump_thread_.join();
}

double WallClockRuntime::now_us() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

TimerId WallClockRuntime::schedule_at(double at_us, TimerFn fn) {
  TimerId id;
  {
    std::lock_guard<std::mutex> wl(wheel_mu_);
    id = wheel_.schedule_at(std::max(at_us, 0.0), std::move(fn));
    wheel_cv_.notify_all();  // a new deadline may be the earliest
  }
  return id;
}

TimerId WallClockRuntime::schedule_after(double delay_us, TimerFn fn) {
  return schedule_at(now_us() + std::max(delay_us, 0.0), std::move(fn));
}

void WallClockRuntime::defer(TimerFn fn) {
  // A zero-delay timer: fires on the pump thread, off the caller's stack.
  schedule_at(now_us(), std::move(fn));
}

void WallClockRuntime::cancel(TimerId id) {
  std::lock_guard<std::mutex> wl(wheel_mu_);
  wheel_.cancel(id);
}

TimerStats WallClockRuntime::timer_stats() const {
  std::lock_guard<std::mutex> wl(wheel_mu_);
  return wheel_.stats();
}

size_t WallClockRuntime::poll_timers() {
  size_t fired = 0;
  // Exec first, wheel second — the lock order every thread uses. Holding
  // exec across the whole batch gives sim-equivalent cancel semantics: a
  // callback cancelling a not-yet-fired due timer really stops it.
  std::lock_guard<std::mutex> eg(exec_mu_);
  for (;;) {
    TimerFn fn;
    {
      std::lock_guard<std::mutex> wl(wheel_mu_);
      if (!wheel_.pop_due(now_us(), &fn)) break;
    }
    fn();
    ++fired;
  }
  return fired;
}

bool WallClockRuntime::advance() {
  if (pump_thread_.joinable()) {
    // Progress happens on the pump and driver threads; just yield.
    std::this_thread::sleep_for(std::chrono::microseconds(20));
  } else {
    poll_timers();
  }
  return true;
}

void WallClockRuntime::pump() {
  std::unique_lock<std::mutex> wl(wheel_mu_);
  while (!stop_.load(std::memory_order_acquire)) {
    const double next = wheel_.next_deadline();
    const double now = now_us();
    if (next > now) {
      // Sleep until the earliest deadline (capped so shutdown and
      // far-future timers stay responsive) or a new timer arrives.
      const double wait_us = std::min(next - now, 1000.0);
      wheel_cv_.wait_for(
          wl, std::chrono::duration<double, std::micro>(wait_us));
      continue;
    }
    wl.unlock();
    poll_timers();
    wl.lock();
  }
}

}  // namespace nmad::runtime
