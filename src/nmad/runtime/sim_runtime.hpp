// SimRuntime: the IRuntime adapter over the discrete-event simulation.
//
// Strictly pass-through: every schedule/cancel call forwards to the
// SimWorld calendar queue in the same order the engine used to issue
// them directly, and the returned TimerIds ARE the queue's generation-
// stamped EventIds — so a seed replayed through the seam produces the
// byte-identical event sequence (and BENCH artifacts) it produced before
// the seam existed. Any behavioral divergence here is a bug.
#pragma once

#include <cstdint>

#include "nmad/runtime/runtime.hpp"
#include "simnet/fabric.hpp"
#include "simnet/world.hpp"

namespace nmad::runtime {

class SimRuntime final : public IRuntime, public IExecLock {
 public:
  SimRuntime(simnet::SimWorld& world, simnet::SimNode& node)
      : world_(world), node_(node), cpu_(node) {}

  SimRuntime(const SimRuntime&) = delete;
  SimRuntime& operator=(const SimRuntime&) = delete;

  [[nodiscard]] double now_us() const override { return world_.now(); }

  TimerId schedule_at(double at_us, TimerFn fn) override {
    return world_.at(at_us, std::move(fn));
  }
  TimerId schedule_after(double delay_us, TimerFn fn) override {
    return world_.after(delay_us, std::move(fn));
  }
  void defer(TimerFn fn) override { world_.after(0.0, std::move(fn)); }
  void cancel(TimerId id) override { world_.cancel(id); }

  [[nodiscard]] uint32_t local_id() const override { return node_.id(); }
  [[nodiscard]] uint32_t incarnation() const override {
    return node_.incarnation();
  }

  [[nodiscard]] ICpuCharge& cpu() override { return cpu_; }

  [[nodiscard]] TimerStats timer_stats() const override {
    const simnet::EventQueue::Stats qs = world_.queue_stats();
    TimerStats ts;
    ts.scheduled = qs.scheduled;
    ts.executed = qs.executed;
    ts.cancelled = qs.cancelled;
    ts.resizes = qs.resizes;
    ts.direct_searches = qs.direct_searches;
    ts.buckets = qs.buckets;
    ts.pending = qs.pending;
    ts.node_capacity = qs.node_capacity;
    ts.node_slabs = qs.node_slabs;
    ts.slot_capacity = qs.slot_capacity;
    return ts;
  }

  bool advance() override { return world_.run_one(); }

  // IExecLock: the simulation is single-threaded; nothing to serialize.
  void lock() override {}
  void unlock() override {}

  [[nodiscard]] simnet::SimWorld& world() { return world_; }
  [[nodiscard]] simnet::SimNode& node() { return node_; }

 private:
  // Forwards host-cost charges to the node's CpuModel (virtual time).
  class CpuAdapter final : public ICpuCharge {
   public:
    explicit CpuAdapter(simnet::SimNode& node) : node_(node) {}
    double charge(double us) override { return node_.cpu().charge(us); }
    double charge_memcpy(size_t bytes) override {
      return node_.cpu().charge_memcpy(bytes);
    }

   private:
    simnet::SimNode& node_;
  };

  simnet::SimWorld& world_;
  simnet::SimNode& node_;
  CpuAdapter cpu_;
};

}  // namespace nmad::runtime
