#include "nmad/runtime/timer_wheel.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/assert.hpp"

namespace nmad::runtime {

TimerWheel::TimerWheel(double tick_us) : tick_us_(tick_us) {
  NMAD_ASSERT_MSG(tick_us_ > 0.0, "timer wheel tick must be positive");
  buckets_.assign(kMinBuckets, nullptr);
  mask_ = kMinBuckets - 1;
}

TimerWheel::~TimerWheel() = default;

TimerWheel::Node* TimerWheel::acquire_node() {
  if (free_nodes_ == nullptr) {
    auto slab = std::make_unique<Node[]>(kSlabNodes);
    for (size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].next = free_nodes_;
      free_nodes_ = &slab[i];
    }
    slabs_.push_back(std::move(slab));
  }
  Node* node = free_nodes_;
  free_nodes_ = node->next;
  node->next = nullptr;
  node->cancelled = false;
  node->slot = kNoSlot;
  return node;
}

void TimerWheel::release_node(Node* node) {
  node->fn.reset();
  node->next = free_nodes_;
  free_nodes_ = node;
}

void TimerWheel::retire_slot(uint32_t slot) {
  if (slot == kNoSlot) return;
  // Bumping the generation fences every outstanding id for this slot.
  ++slots_[slot].gen;
  if (slots_[slot].gen == 0) slots_[slot].gen = 1;  // keep ids nonzero
  slots_[slot].node = nullptr;
  free_slots_.push_back(slot);
}

void TimerWheel::insert_node(Node* node) {
  Node** link = &buckets_[node->vb & mask_];
  while (*link != nullptr && before(**link, *node)) {
    link = &(*link)->next;
  }
  node->next = *link;
  *link = node;
}

TimerId TimerWheel::schedule_at(double at, TimerFn fn) {
  NMAD_ASSERT_MSG(at >= 0.0, "timer scheduled before time zero");
  Node* node = acquire_node();
  node->at = at;
  node->seq = next_seq_++;
  // Clamp behind-the-cursor deadlines (already-due timers) onto the
  // cursor bucket so the scan still finds them; ordering stays (at, seq).
  const uint64_t vb = static_cast<uint64_t>(at / tick_us_);
  node->vb = vb < cur_vb_ ? cur_vb_ : vb;
  node->fn = std::move(fn);

  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(SlotRec{});
  }
  slots_[slot].node = node;
  node->slot = slot;

  insert_node(node);
  ++live_;
  ++scheduled_;
  if (live_ > buckets_.size()) resize(buckets_.size() * 2);
  return (static_cast<uint64_t>(slot) << 32) | slots_[slot].gen;
}

bool TimerWheel::cancel(TimerId id) {
  const uint32_t slot = static_cast<uint32_t>(id >> 32);
  const uint32_t gen = static_cast<uint32_t>(id & 0xFFFFFFFFu);
  if (slot >= slots_.size() || slots_[slot].gen != gen ||
      slots_[slot].node == nullptr) {
    return false;  // stale: fired, cancelled, or recycled
  }
  Node* node = slots_[slot].node;
  node->cancelled = true;  // reaped lazily when it surfaces at a head
  node->fn.reset();
  retire_slot(slot);
  node->slot = kNoSlot;
  NMAD_ASSERT(live_ > 0);
  --live_;
  ++cancelled_count_;
  return true;
}

TimerWheel::Node* TimerWheel::clean_head(size_t bucket) {
  Node* head = buckets_[bucket];
  while (head != nullptr && head->cancelled) {
    buckets_[bucket] = head->next;
    release_node(head);
    head = buckets_[bucket];
  }
  return head;
}

TimerWheel::Node* TimerWheel::find_min() {
  if (live_ == 0) return nullptr;
  // One lap from the cursor: the common case pops within a few ticks.
  const size_t nbuckets = buckets_.size();
  for (size_t step = 0; step < nbuckets; ++step) {
    const uint64_t vb = cur_vb_ + step;
    Node* head = clean_head(vb & mask_);
    if (head != nullptr && head->vb == vb) {
      cur_vb_ = vb;
      return head;
    }
    // head == nullptr or head->vb > vb: nothing pending in this virtual
    // bucket (sorted lists make the lap's entries a prefix), keep going.
  }
  // Everything pending is at least a lap away: direct search over the
  // bucket heads (each head is its bucket's (at, seq) minimum).
  ++direct_searches_;
  Node* min = nullptr;
  for (size_t b = 0; b < nbuckets; ++b) {
    Node* head = clean_head(b);
    if (head != nullptr && (min == nullptr || before(*head, *min))) {
      min = head;
    }
  }
  NMAD_ASSERT_MSG(min != nullptr, "live timers but none found");
  cur_vb_ = min->vb;
  return min;
}

double TimerWheel::next_deadline() {
  Node* min = find_min();
  return min == nullptr ? std::numeric_limits<double>::infinity() : min->at;
}

bool TimerWheel::pop_due(double now, TimerFn* out) {
  Node* min = find_min();
  if (min == nullptr || min->at > now) return false;
  // find_min left the cursor on min's virtual bucket; min is that
  // bucket's clean head.
  const size_t bucket = cur_vb_ & mask_;
  NMAD_ASSERT(buckets_[bucket] == min);
  buckets_[bucket] = min->next;
  retire_slot(min->slot);
  *out = std::move(min->fn);
  release_node(min);
  NMAD_ASSERT(live_ > 0);
  --live_;
  ++executed_;
  return true;
}

void TimerWheel::resize(size_t want_buckets) {
  std::vector<Node*> nodes;
  nodes.reserve(live_);
  for (Node*& head : buckets_) {
    while (head != nullptr) {
      Node* node = head;
      head = node->next;
      if (node->cancelled) {
        release_node(node);
      } else {
        nodes.push_back(node);
      }
    }
  }
  buckets_.assign(want_buckets, nullptr);
  mask_ = want_buckets - 1;
  ++resizes_;
  // Reinsert in reverse (at, seq) order so each insert lands at its
  // bucket head — O(n) instead of O(n²) list walks.
  std::sort(nodes.begin(), nodes.end(),
            [](const Node* a, const Node* b) { return before(*b, *a); });
  for (Node* node : nodes) {
    node->next = nullptr;
    insert_node(node);
  }
}

TimerStats TimerWheel::stats() const {
  TimerStats s;
  s.scheduled = scheduled_;
  s.executed = executed_;
  s.cancelled = cancelled_count_;
  s.resizes = resizes_;
  s.direct_searches = direct_searches_;
  s.buckets = buckets_.size();
  s.pending = live_;
  s.node_capacity = slabs_.size() * kSlabNodes;
  s.node_slabs = slabs_.size();
  s.slot_capacity = slots_.size();
  return s;
}

}  // namespace nmad::runtime
