// WallClockRuntime: real time for real transports.
//
// now_us() is steady_clock microseconds since construction; timers live
// in a hashed TimerWheel pumped by a background progress thread. Because
// real drivers deliver from their own pump threads, the runtime also
// provides the exec lock (IExecLock) that serializes every entry into
// the engine: the timer thread fires callbacks under it, driver rx
// threads deliver under it, and the application thread wraps its
// isend/irecv/poll calls in it. The engine itself stays single-threaded
// by contract — exactly one thread is ever inside a Core.
//
// Host cost modelling is a no-op here: the host really performs the
// memcpys, so charge()/charge_memcpy() just return the current time.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "nmad/runtime/runtime.hpp"
#include "nmad/runtime/timer_wheel.hpp"

namespace nmad::runtime {

class WallClockRuntime final : public IRuntime, public IExecLock {
 public:
  struct Options {
    double tick_us = 50.0;  // timer-wheel bucket width
    // Without the thread the owner pumps poll_timers() itself —
    // deterministic single-threaded mode for tests.
    bool background_thread = true;
    uint32_t local_id = 0;
    uint32_t incarnation = 0;
  };

  WallClockRuntime() : WallClockRuntime(Options{}) {}
  explicit WallClockRuntime(Options options);
  ~WallClockRuntime() override;

  WallClockRuntime(const WallClockRuntime&) = delete;
  WallClockRuntime& operator=(const WallClockRuntime&) = delete;

  // IRuntime ----------------------------------------------------------
  [[nodiscard]] double now_us() const override;
  TimerId schedule_at(double at_us, TimerFn fn) override;
  TimerId schedule_after(double delay_us, TimerFn fn) override;
  void defer(TimerFn fn) override;
  void cancel(TimerId id) override;
  [[nodiscard]] uint32_t local_id() const override { return local_id_; }
  [[nodiscard]] uint32_t incarnation() const override {
    return incarnation_;
  }
  [[nodiscard]] ICpuCharge& cpu() override { return cpu_; }
  [[nodiscard]] TimerStats timer_stats() const override;
  // Real time passes on its own: briefly yield (or pump the wheel in
  // threadless mode) and report "maybe more progress". Callers bound
  // their waits with deadlines, not with this return value.
  bool advance() override;

  // IExecLock ---------------------------------------------------------
  void lock() override { exec_mu_.lock(); }
  void unlock() override { exec_mu_.unlock(); }

  // Fires every timer due at the current time (takes the exec lock).
  // The pump thread does this continuously; threadless mode calls it
  // explicitly. Returns the number of timers fired.
  size_t poll_timers();

 private:
  void pump();

  class NullCpu final : public ICpuCharge {
   public:
    explicit NullCpu(WallClockRuntime& rt) : rt_(rt) {}
    double charge(double) override { return rt_.now_us(); }
    double charge_memcpy(size_t) override { return rt_.now_us(); }

   private:
    WallClockRuntime& rt_;
  };

  const std::chrono::steady_clock::time_point epoch_;
  const uint32_t local_id_;
  const uint32_t incarnation_;
  NullCpu cpu_;

  mutable std::mutex wheel_mu_;  // guards wheel_ (and the cv below)
  TimerWheel wheel_;
  std::condition_variable wheel_cv_;

  std::mutex exec_mu_;  // serializes all engine entry (see header)

  std::atomic<bool> stop_{false};
  std::thread pump_thread_;
};

}  // namespace nmad::runtime
