// The runtime seam: time, timers and host-cost modelling behind one
// interface (ROADMAP "threaded runtime + a real transport backend").
//
// The engine core (collect / schedule / transfer layers and the Core
// façade) is generic over *when things happen*: it asks the runtime for
// the current time, arms cancellable timers, defers work off the current
// stack, and charges modelled host CPU cost. Two implementations exist:
//
//  - SimRuntime: a pass-through adapter over the simnet calendar queue.
//    Byte-identical to the engine calling SimWorld directly — same
//    schedule-call sequence, same generation-stamped ids, same replay of
//    every seed and BENCH artifact.
//  - WallClockRuntime: steady_clock time plus a timer wheel pumped by a
//    progress thread, for real transports (the shm driver).
//
// Nothing in this header may depend on simnet: this is the line that
// keeps `src/nmad/core/` simulation-free (lint-enforced in check.sh).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/inline_fn.hpp"

namespace nmad::runtime {

// Cancellable-timer handle. Generation-stamped by both implementations
// (slot index + generation), so a stale cancel — the timer already fired,
// was cancelled, or its slot was recycled — is fenced instead of hitting
// a neighbour. 0 is never a valid id.
using TimerId = uint64_t;

// 64 inline bytes cover every engine timer lambda (the sim event queue
// uses the same bound); larger captures spill to the heap and bump
// util::inline_fn_heap_allocs() for the allocation-regression tests.
using TimerFn = util::InlineFunction<64>;

// Timer-subsystem counters surfaced through Core::AllocStats. The
// capacity fields only grow while the implementation warms up; a flat
// snapshot across a steady-state phase proves the timer hot path
// allocated nothing. Field-for-field the sim event queue's Stats, so the
// existing regression tests carry over unchanged.
struct TimerStats {
  uint64_t scheduled = 0;
  uint64_t executed = 0;
  uint64_t cancelled = 0;
  uint64_t resizes = 0;          // bucket-array rebuilds
  uint64_t direct_searches = 0;  // scans that fell through to a search
  size_t buckets = 0;            // current bucket-array size
  size_t pending = 0;            // live (non-cancelled) timers
  size_t node_capacity = 0;      // slab-backed timer nodes
  size_t node_slabs = 0;
  size_t slot_capacity = 0;      // generation-stamped cancel slots
};

// Modelled host CPU cost. The simulation charges virtual time against the
// node's CpuModel (submit overheads, eager-copy memcpys); wall-clock
// runtimes charge nothing — the host really does the work. `charge*`
// returns the completion time of the charged work in runtime time, so
// callers can schedule continuations "when the memcpy finishes".
class ICpuCharge {
 public:
  virtual ~ICpuCharge() = default;
  virtual double charge(double us) = 0;
  virtual double charge_memcpy(size_t bytes) = 0;
};

class IRuntime {
 public:
  virtual ~IRuntime() = default;

  // Current time, µs. Virtual time for the simulation, steady-clock
  // microseconds since runtime construction for wall-clock runs.
  [[nodiscard]] virtual double now_us() const = 0;

  // Arms `fn` at absolute time `at_us` / after `delay_us`. Returns a
  // generation-stamped id for cancel(); never 0.
  virtual TimerId schedule_at(double at_us, TimerFn fn) = 0;
  virtual TimerId schedule_after(double delay_us, TimerFn fn) = 0;

  // Runs `fn` as soon as possible *off the current stack* — the engine's
  // "the sink is still on the delivery stack right now" idiom.
  virtual void defer(TimerFn fn) = 0;

  // Cancels a pending timer; a stale id (fired / cancelled / recycled)
  // is fenced and ignored.
  virtual void cancel(TimerId id) = 0;

  // Identity of the local endpoint: the node id and its incarnation
  // number (bumped on every restart, fencing packets from earlier
  // lives — the peer-lifecycle machinery).
  [[nodiscard]] virtual uint32_t local_id() const = 0;
  [[nodiscard]] virtual uint32_t incarnation() const = 0;

  [[nodiscard]] virtual ICpuCharge& cpu() = 0;

  [[nodiscard]] virtual TimerStats timer_stats() const = 0;

  // Makes progress for blocking helpers (Core::drain): runs one pending
  // event for the simulation, or briefly yields for wall-clock runtimes
  // whose progress lives on pump threads. Returns false when no further
  // progress is possible without external input.
  virtual bool advance() = 0;
};

// Serializes every engine entry point when driver/pump threads exist.
// The engine itself is single-threaded by contract: the wall-clock
// runtime's timer thread, the shm driver's rx pump threads and the
// application thread all take this lock around any call into the Core.
// The simulation implements it as a no-op (one thread, one world).
class IExecLock {
 public:
  virtual ~IExecLock() = default;
  virtual void lock() = 0;
  virtual void unlock() = 0;
};

// RAII guard over IExecLock.
class ExecGuard {
 public:
  explicit ExecGuard(IExecLock& lock) : lock_(lock) { lock_.lock(); }
  ~ExecGuard() { lock_.unlock(); }
  ExecGuard(const ExecGuard&) = delete;
  ExecGuard& operator=(const ExecGuard&) = delete;

 private:
  IExecLock& lock_;
};

}  // namespace nmad::runtime
