// Hashed timer wheel for the wall-clock runtime.
//
// The same contract as the simulation's calendar queue — timers pop in
// (deadline, insertion-order) order, cancel is O(1) through generation-
// stamped slots, nodes come from grow-only slabs so the steady-state hot
// path never allocates — but tuned for wall-clock use: fixed-width time
// buckets (`tick_us`), a cursor that walks virtual buckets, and a
// pop-based API (`pop_due`) so the caller can drop the wheel lock before
// running the callback. Single-threaded by itself; WallClockRuntime
// wraps it in a mutex and pumps it from a progress thread.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nmad/runtime/runtime.hpp"

namespace nmad::runtime {

class TimerWheel {
 public:
  explicit TimerWheel(double tick_us = 50.0);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms `fn` at absolute time `at` (µs, same clock the caller pops
  // with). Returns a generation-stamped id; never 0.
  TimerId schedule_at(double at, TimerFn fn);

  // O(1) lazy cancel; a stale id (fired / cancelled / recycled slot) is
  // fenced. Returns whether a live timer was cancelled.
  bool cancel(TimerId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] size_t size() const { return live_; }

  // Deadline of the earliest pending timer; +infinity when empty.
  // Non-const: lazily reaps cancelled nodes and advances the cursor.
  [[nodiscard]] double next_deadline();

  // Extracts the earliest timer with deadline <= now into `out` without
  // running it. False when nothing is due.
  bool pop_due(double now, TimerFn* out);

  [[nodiscard]] TimerStats stats() const;

 private:
  static constexpr uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr size_t kMinBuckets = 64;
  static constexpr size_t kSlabNodes = 128;

  struct Node {
    double at = 0.0;
    uint64_t seq = 0;
    uint64_t vb = 0;  // virtual bucket: floor(at / tick), cursor-clamped
    Node* next = nullptr;
    uint32_t slot = kNoSlot;
    bool cancelled = false;
    TimerFn fn;
  };
  struct SlotRec {
    uint32_t gen = 1;  // starts at 1 so a TimerId is never zero
    Node* node = nullptr;
  };

  static bool before(const Node& a, const Node& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  Node* acquire_node();
  void release_node(Node* node);
  void retire_slot(uint32_t slot);
  void insert_node(Node* node);
  // Drops leading cancelled nodes of `bucket`, returning the live head.
  Node* clean_head(size_t bucket);
  // Walks the wheel from the cursor to the earliest live node; advances
  // the cursor over exhausted virtual buckets. nullptr when empty.
  Node* find_min();
  void resize(size_t want_buckets);

  std::vector<Node*> buckets_;
  size_t mask_ = 0;
  double tick_us_;
  uint64_t cur_vb_ = 0;  // next virtual bucket to scan

  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* free_nodes_ = nullptr;

  std::vector<SlotRec> slots_;
  std::vector<uint32_t> free_slots_;

  size_t live_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t scheduled_ = 0;
  uint64_t executed_ = 0;
  uint64_t cancelled_count_ = 0;
  uint64_t resizes_ = 0;
  uint64_t direct_searches_ = 0;
};

}  // namespace nmad::runtime
