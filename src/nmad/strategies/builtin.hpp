// Built-in scheduling strategies.
//
//   default           — FIFO, one chunk per packet, no optimization. The
//                       behaviour of a classical synchronous library;
//                       baseline for ablations.
//   aggreg            — the paper's aggregation strategy: coalesces window
//                       chunks (control first, reordering allowed) into one
//                       physical packet as long as the cumulated length
//                       stays under the rendezvous threshold.
//   aggreg_extended   — like aggreg but aggregates up to the full physical
//                       packet limit even beyond the rendezvous threshold.
//   split_balance     — the paper's multi-rail strategy: aggregates like
//                       aggreg on track 0 and splits rendezvous bodies
//                       over every granted rail proportionally to rail
//                       bandwidth ("possibly ... in a heterogeneous
//                       manner").
#pragma once

namespace nmad::core {

// Registers the built-in strategies (idempotent). Called by the Core
// constructor so that linking the strategies library is sufficient.
void ensure_builtin_strategies();

}  // namespace nmad::core
