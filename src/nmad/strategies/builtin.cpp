#include "nmad/strategies/builtin.hpp"

#include <algorithm>
#include <cmath>

#include "nmad/core/schedule_layer.hpp"
#include "nmad/core/strategy.hpp"

namespace nmad::core {
namespace {

// ---------------------------------------------------------------------------
// default: strict FIFO, no aggregation, no splitting.
// ---------------------------------------------------------------------------
class DefaultStrategy : public Strategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "default"; }

  size_t pack(ScheduleLayer& sched, Gate& gate, const RailInfo& rail,
              PacketBuilder& builder) override {
    OutChunk* chunk = first_eligible(sched, gate, rail);
    if (chunk == nullptr) return 0;
    gate.sched.window.remove(*chunk);
    sched.charge_credit(gate, *chunk);
    builder.add(chunk);
    return 1;
  }

  BulkDecision next_bulk(ScheduleLayer& sched, Gate& gate,
                         const RailInfo& rail) override {
    (void)sched;
    for (BulkJob& job : gate.sched.ready_bulk) {
      if (job.allows_rail(rail.index)) return {&job, job.remaining()};
    }
    return {};
  }

 protected:
  static OutChunk* first_eligible(ScheduleLayer& sched, Gate& gate,
                                  const RailInfo& rail) {
    for (OutChunk& chunk : gate.sched.window) {
      if ((chunk.pinned_rail == kAnyRail ||
           chunk.pinned_rail == rail.index) &&
          sched.credit_admits(gate, chunk)) {
        return &chunk;
      }
    }
    return nullptr;
  }
};

// ---------------------------------------------------------------------------
// aggreg: greedy aggregation with reordering, control chunks first.
// ---------------------------------------------------------------------------
class AggregStrategy : public DefaultStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "aggreg"; }

  size_t pack(ScheduleLayer& sched, Gate& gate, const RailInfo& rail,
              PacketBuilder& builder) override {
    const size_t limit = aggregate_limit(gate, rail);
    size_t taken = 0;
    // Pass 0 elects control/high-priority chunks (RTS/CTS and tagged
    // data); pass 1 takes ordinary data FIFO. Chunks that do not fit are
    // skipped but scanning continues: this is the paper's reordering
    // "to maximize the number of aggregation operations".
    for (int pass = 0; pass < 2; ++pass) {
      OutChunk* it =
          gate.sched.window.empty() ? nullptr : &gate.sched.window.front();
      while (it != nullptr) {
        OutChunk* next = gate.sched.window.next_of(*it);
        const bool urgent =
            it->is_control() || (it->flags & kFlagPriority) != 0;
        const bool wanted = (pass == 0) ? urgent : !urgent;
        const bool rail_ok =
            it->pinned_rail == kAnyRail || it->pinned_rail == rail.index;
        if (wanted && rail_ok && builder.fits(*it) &&
            (builder.wire_bytes() + it->wire_bytes() <= limit ||
             builder.empty()) &&
            sched.credit_admits(gate, *it)) {
          gate.sched.window.remove(*it);
          sched.charge_credit(gate, *it);
          builder.add(it);
          ++taken;
        }
        it = next;
      }
    }
    return taken;
  }

 protected:
  // Aggregate "as long as the cumulated length does not require to switch
  // to the rendez-vous protocol".
  [[nodiscard]] virtual size_t aggregate_limit(const Gate& gate,
                                               const RailInfo& rail) const {
    return std::min({gate.rdv_threshold, gate.max_packet,
                     rail.max_packet_bytes});
  }
};

// ---------------------------------------------------------------------------
// aggreg_extended: aggregation bounded by the physical packet limit only.
// ---------------------------------------------------------------------------
class AggregExtendedStrategy final : public AggregStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "aggreg_extended";
  }

 protected:
  [[nodiscard]] size_t aggregate_limit(const Gate& gate,
                                       const RailInfo& rail) const override {
    return std::min(gate.max_packet, rail.max_packet_bytes);
  }
};

// ---------------------------------------------------------------------------
// split_balance: multi-rail bandwidth-proportional rendezvous splitting.
// ---------------------------------------------------------------------------
class SplitBalanceStrategy final : public AggregStrategy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "split_balance";
  }

  BulkDecision next_bulk(ScheduleLayer& sched, Gate& gate,
                         const RailInfo& rail) override {
    for (BulkJob& job : gate.sched.ready_bulk) {
      if (!job.allows_rail(rail.index)) continue;
      const size_t remaining = job.remaining();
      if (remaining == 0) continue;
      // Small bodies are not worth splitting: per-transfer setup would
      // dominate the parallel wire time.
      if (job.body.size() < 2 * kMinSliceBytes || job.rails.size() < 2) {
        return {&job, remaining};
      }
      // This rail's share of the original body, by nominal bandwidth.
      double bw_sum = 0.0;
      for (uint8_t r : job.rails) {
        bw_sum += sched.rail_info(r).bandwidth_mbps;
      }
      const double fraction = rail.bandwidth_mbps / bw_sum;
      auto share = static_cast<size_t>(
          std::ceil(static_cast<double>(job.body.size()) * fraction));
      share = std::max(share, kMinSliceBytes);
      return {&job, std::min(share, remaining)};
    }
    return {};
  }

 private:
  static constexpr size_t kMinSliceBytes = 16 * 1024;
};

}  // namespace

void ensure_builtin_strategies() {
  static const bool registered = [] {
    register_strategy("default",
                      [] { return std::make_unique<DefaultStrategy>(); });
    register_strategy("aggreg",
                      [] { return std::make_unique<AggregStrategy>(); });
    register_strategy("aggreg_extended", [] {
      return std::make_unique<AggregExtendedStrategy>();
    });
    register_strategy("split_balance", [] {
      return std::make_unique<SplitBalanceStrategy>();
    });
    return true;
  }();
  (void)registered;
}

}  // namespace nmad::core
