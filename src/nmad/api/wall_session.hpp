// Wall-clock session helper: the same engine Core, real time, real
// threads — no simulation anywhere in the stack.
//
// WallCluster is the wall-clock twin of Cluster: it owns one
// WallClockRuntime and one Core per endpoint, wires them over a shared
// ShmHub rail, and opens gates between every pair. Because the shm pump
// threads and each runtime's timer thread enter the engine concurrently
// with the application, every engine call must hold that endpoint's exec
// lock — the locked() helper and the post/wait wrappers below do exactly
// that, so callers never touch a Core bare.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "nmad/core/core.hpp"
#include "nmad/drivers/shm_driver.hpp"
#include "nmad/runtime/wallclock_runtime.hpp"

namespace nmad::api {

class WallCluster {
 public:
  struct Options {
    size_t nodes = 2;
    core::CoreConfig core;
    drivers::ShmHub::Options hub;
    // wait() aborts after this much real time without completion: a
    // wedged wall-clock protocol hangs forever otherwise.
    double wait_timeout_us = 30e6;
  };

  explicit WallCluster(Options options);
  ~WallCluster();

  WallCluster(const WallCluster&) = delete;
  WallCluster& operator=(const WallCluster&) = delete;

  [[nodiscard]] size_t node_count() const { return cores_.size(); }
  [[nodiscard]] core::GateId gate(size_t from, size_t to) const;
  [[nodiscard]] runtime::WallClockRuntime& rt(size_t node) {
    return *runtimes_[node];
  }
  // Bare engine access — callers must hold rt(node)'s exec lock; prefer
  // locked() / the wrappers.
  [[nodiscard]] core::Core& core_unlocked(size_t node) {
    return *cores_[node];
  }

  // Runs `fn(core)` under the endpoint's exec lock.
  template <typename Fn>
  auto locked(size_t node, Fn&& fn) {
    runtime::ExecGuard guard(*runtimes_[node]);
    return fn(*cores_[node]);
  }

  core::Request* post_send(size_t node, core::GateId gate, core::Tag tag,
                           util::ConstBytes bytes);
  core::Request* post_recv(size_t node, core::GateId gate, core::Tag tag,
                           util::MutableBytes bytes);
  // Blocks (sleep-polling under the lock) until the request completes.
  void wait(size_t node, core::Request* req);
  void release(size_t node, core::Request* req);

 private:
  double wait_timeout_us_;
  std::unique_ptr<drivers::ShmHub> hub_;
  std::vector<std::unique_ptr<runtime::WallClockRuntime>> runtimes_;
  std::vector<std::unique_ptr<core::Core>> cores_;
  std::vector<std::vector<core::GateId>> gates_;  // [from][to]
};

}  // namespace nmad::api
