#include "nmad/api/pack.hpp"

namespace nmad::api {

void PackHandle::pack(const void* data, size_t len) {
  NMAD_ASSERT_MSG(!ended_, "pack() after end()");
  if (len == 0) return;
  blocks_.push_back(core::SourceLayout::Block{
      offset_, util::as_bytes_view(data, len)});
  offset_ += len;
}

core::SendRequest* PackHandle::end() {
  NMAD_ASSERT_MSG(!ended_, "end() called twice");
  ended_ = true;
  return core_.isend(gate_, tag_,
                     core::SourceLayout::scattered(std::move(blocks_)),
                     hints_);
}

void UnpackHandle::unpack(void* data, size_t len) {
  NMAD_ASSERT_MSG(!ended_, "unpack() after end()");
  if (len == 0) return;
  blocks_.push_back(core::DestLayout::Block{
      offset_, util::as_writable_bytes(data, len)});
  offset_ += len;
}

core::RecvRequest* UnpackHandle::end() {
  NMAD_ASSERT_MSG(!ended_, "end() called twice");
  ended_ = true;
  return core_.irecv(gate_, tag_,
                     core::DestLayout::scattered(std::move(blocks_)));
}

}  // namespace nmad::api
