#include "nmad/api/wall_session.hpp"

#include <chrono>
#include <thread>

#include "util/assert.hpp"

namespace nmad::api {

WallCluster::WallCluster(Options options)
    : wait_timeout_us_(options.wait_timeout_us) {
  NMAD_ASSERT_MSG(options.nodes >= 2, "cluster needs at least two nodes");
  hub_ = std::make_unique<drivers::ShmHub>(options.nodes, options.hub);

  for (size_t n = 0; n < options.nodes; ++n) {
    runtime::WallClockRuntime::Options rt_options;
    rt_options.local_id = static_cast<uint32_t>(n);
    runtimes_.push_back(
        std::make_unique<runtime::WallClockRuntime>(rt_options));
    auto core =
        std::make_unique<core::Core>(*runtimes_.back(), options.core);
    auto driver = std::make_unique<drivers::ShmDriver>(
        *hub_, static_cast<drivers::PeerAddr>(n), *runtimes_.back());
    const util::Status st = core->add_rail(std::move(driver));
    NMAD_ASSERT_MSG(st.is_ok(), "shm rail setup failed");
    cores_.push_back(std::move(core));
  }

  gates_.resize(options.nodes,
                std::vector<core::GateId>(options.nodes, core::kNoGate));
  for (size_t from = 0; from < options.nodes; ++from) {
    runtime::ExecGuard guard(*runtimes_[from]);
    for (size_t to = 0; to < options.nodes; ++to) {
      if (from == to) continue;
      auto gate = cores_[from]->connect(static_cast<drivers::PeerAddr>(to));
      NMAD_ASSERT_MSG(gate.has_value(), "gate open failed");
      gates_[from][to] = gate.value();
    }
  }
}

WallCluster::~WallCluster() {
  // Engines first (their dtors cancel timers into the runtimes and shut
  // the drivers' pump threads down), runtimes and hub after.
  cores_.clear();
  runtimes_.clear();
}

core::GateId WallCluster::gate(size_t from, size_t to) const {
  NMAD_ASSERT(from < gates_.size() && to < gates_.size() && from != to);
  return gates_[from][to];
}

core::Request* WallCluster::post_send(size_t node, core::GateId gate,
                                      core::Tag tag,
                                      util::ConstBytes bytes) {
  return locked(node, [&](core::Core& core) -> core::Request* {
    return core.isend(gate, tag, bytes);
  });
}

core::Request* WallCluster::post_recv(size_t node, core::GateId gate,
                                      core::Tag tag,
                                      util::MutableBytes bytes) {
  return locked(node, [&](core::Core& core) -> core::Request* {
    return core.irecv(gate, tag, bytes);
  });
}

void WallCluster::wait(size_t node, core::Request* req) {
  NMAD_ASSERT(req != nullptr);
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    {
      runtime::ExecGuard guard(*runtimes_[node]);
      if (req->done()) return;
    }
    const double waited_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    NMAD_ASSERT_MSG(waited_us < wait_timeout_us_,
                    "wall-clock request made no progress (protocol wedge)");
    std::this_thread::sleep_for(std::chrono::microseconds(5));
  }
}

void WallCluster::release(size_t node, core::Request* req) {
  locked(node, [&](core::Core& core) { core.release(req); });
}

}  // namespace nmad::api
