#include "nmad/api/completion_queue.hpp"

#include "util/assert.hpp"

namespace nmad::api {

void CompletionQueue::track(core::Request* req) {
  NMAD_ASSERT(req != nullptr);
  if (req->done()) {
    ready_.push_back(req);
    return;
  }
  ++in_flight_;
  req->set_on_complete([this, req]() {
    NMAD_ASSERT(in_flight_ > 0);
    --in_flight_;
    ready_.push_back(req);
  });
}

core::Request* CompletionQueue::poll() {
  if (ready_.empty()) return nullptr;
  core::Request* req = ready_.front();
  ready_.pop_front();
  return req;
}

core::Request* CompletionQueue::wait_next() {
  const bool ok =
      world_.run_until([this]() { return !ready_.empty(); });
  NMAD_ASSERT_MSG(ok, "completion queue drained the simulation while "
                      "requests were still in flight");
  return poll();
}

}  // namespace nmad::api
