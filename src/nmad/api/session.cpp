#include "nmad/api/session.hpp"

#include <cstdio>
#include <utility>

#include "nmad/drivers/sim_driver.hpp"

namespace nmad::api {

Cluster::Cluster(ClusterOptions options)
    : fabric_(world_),
      stall_report_interval_us_(options.stall_report_interval_us),
      stall_report_limit_(options.stall_report_limit) {
  if (options.rails.empty()) {
    options.rails.push_back(simnet::mx_myri10g_profile());
  }
  NMAD_ASSERT_MSG(options.nodes >= 2, "cluster needs at least two nodes");

  for (size_t n = 0; n < options.nodes; ++n) {
    fabric_.add_node(options.cpu);
  }
  for (const simnet::NicProfile& profile : options.rails) {
    fabric_.add_rail(profile);
  }

  for (size_t n = 0; n < options.nodes; ++n) {
    simnet::SimNode& node = fabric_.node(static_cast<simnet::NodeId>(n));
    runtimes_.push_back(std::make_unique<runtime::SimRuntime>(world_, node));
    auto core =
        std::make_unique<core::Core>(*runtimes_.back(), options.core);
    for (size_t r = 0; r < options.rails.size(); ++r) {
      auto driver = std::make_unique<drivers::SimDriver>(
          world_, node, node.nic(static_cast<simnet::RailIndex>(r)));
      const util::Status st = core->add_rail(std::move(driver));
      NMAD_ASSERT_MSG(st.is_ok(), "rail setup failed");
    }
    cores_.push_back(std::move(core));
  }

  gates_.resize(options.nodes,
                std::vector<core::GateId>(options.nodes, core::kNoGate));
  if (options.full_mesh) {
    for (size_t from = 0; from < options.nodes; ++from) {
      for (size_t to = 0; to < options.nodes; ++to) {
        if (from == to) continue;
        auto gate =
            cores_[from]->connect(static_cast<drivers::PeerAddr>(to));
        NMAD_ASSERT_MSG(gate.has_value(), "gate open failed");
        gates_[from][to] = gate.value();
      }
    }
  }
}

core::GateId Cluster::gate(simnet::NodeId from, simnet::NodeId to) const {
  NMAD_ASSERT(from < gates_.size() && to < gates_.size() && from != to);
  NMAD_ASSERT_MSG(gates_[from][to] != core::kNoGate,
                  "gate not open (lazy mesh: call ensure_gate first)");
  return gates_[from][to];
}

bool Cluster::has_gate(simnet::NodeId from, simnet::NodeId to) const {
  NMAD_ASSERT(from < gates_.size() && to < gates_.size() && from != to);
  return gates_[from][to] != core::kNoGate;
}

void Cluster::ensure_gate(simnet::NodeId from, simnet::NodeId to) {
  NMAD_ASSERT(from < gates_.size() && to < gates_.size() && from != to);
  // Both directions: a one-way opening would leave the peer unable to
  // route the return traffic (acks, credits, CTS) this gate generates.
  for (const auto [a, b] : {std::pair{from, to}, std::pair{to, from}}) {
    if (gates_[a][b] != core::kNoGate) continue;
    auto gate = cores_[a]->connect(static_cast<drivers::PeerAddr>(b));
    NMAD_ASSERT_MSG(gate.has_value(), "gate open failed");
    gates_[a][b] = gate.value();
  }
}

void Cluster::stall_report(const core::Request* req, int n) const {
  std::fprintf(stderr,
               "cluster: %s request (gate %u tag %llu seq %llu) still "
               "pending at t=%.1fus (stall report %d/%d)\n",
               req->kind() == core::Request::Kind::kSend ? "send" : "recv",
               req->gate(), static_cast<unsigned long long>(req->tag()),
               static_cast<unsigned long long>(req->seq()), world_.now(), n,
               stall_report_limit_);
  for (const auto& core : cores_) core->debug_dump(std::cerr);
}

void Cluster::wait(core::Request* req) {
  NMAD_ASSERT(req != nullptr);
  int reports = 0;
  double next_report = stall_report_interval_us_ > 0.0
                           ? world_.now() + stall_report_interval_us_
                           : 0.0;
  while (!req->done()) {
    if (!world_.run_one()) {
      // Protocol deadlock: dump every engine's state before aborting so
      // the failure is diagnosable.
      for (auto& core : cores_) core->debug_dump(std::cerr);
      NMAD_ASSERT_MSG(false,
                      "simulation went quiescent with a pending request");
    }
    if (stall_report_interval_us_ > 0.0 && world_.now() >= next_report &&
        !req->done()) {
      stall_report(req, ++reports);
      NMAD_ASSERT_MSG(reports < stall_report_limit_,
                      "request made no progress; giving up after repeated "
                      "stall reports");
      next_report = world_.now() + stall_report_interval_us_;
    }
  }
}

void Cluster::wait_all(std::span<core::Request* const> reqs) {
  for (core::Request* req : reqs) wait(req);
}

}  // namespace nmad::api
