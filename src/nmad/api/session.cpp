#include "nmad/api/session.hpp"

#include "nmad/drivers/sim_driver.hpp"

namespace nmad::api {

Cluster::Cluster(ClusterOptions options) : fabric_(world_) {
  if (options.rails.empty()) {
    options.rails.push_back(simnet::mx_myri10g_profile());
  }
  NMAD_ASSERT_MSG(options.nodes >= 2, "cluster needs at least two nodes");

  for (size_t n = 0; n < options.nodes; ++n) {
    fabric_.add_node(options.cpu);
  }
  for (const simnet::NicProfile& profile : options.rails) {
    fabric_.add_rail(profile);
  }

  for (size_t n = 0; n < options.nodes; ++n) {
    simnet::SimNode& node = fabric_.node(static_cast<simnet::NodeId>(n));
    auto core = std::make_unique<core::Core>(world_, node, options.core);
    for (size_t r = 0; r < options.rails.size(); ++r) {
      auto driver = std::make_unique<drivers::SimDriver>(
          world_, node, node.nic(static_cast<simnet::RailIndex>(r)));
      const util::Status st = core->add_rail(std::move(driver));
      NMAD_ASSERT_MSG(st.is_ok(), "rail setup failed");
    }
    cores_.push_back(std::move(core));
  }

  gates_.resize(options.nodes, std::vector<core::GateId>(options.nodes, 0));
  for (size_t from = 0; from < options.nodes; ++from) {
    for (size_t to = 0; to < options.nodes; ++to) {
      if (from == to) continue;
      auto gate =
          cores_[from]->connect(static_cast<drivers::PeerAddr>(to));
      NMAD_ASSERT_MSG(gate.has_value(), "gate open failed");
      gates_[from][to] = gate.value();
    }
  }
}

core::GateId Cluster::gate(simnet::NodeId from, simnet::NodeId to) const {
  NMAD_ASSERT(from < gates_.size() && to < gates_.size() && from != to);
  return gates_[from][to];
}

void Cluster::wait(core::Request* req) {
  NMAD_ASSERT(req != nullptr);
  const bool ok = world_.run_until([req]() { return req->done(); });
  if (!ok) {
    // Protocol deadlock: dump every engine's state before aborting so the
    // failure is diagnosable.
    for (auto& core : cores_) core->debug_dump(stderr);
    NMAD_ASSERT_MSG(ok, "simulation went quiescent with a pending request");
  }
}

void Cluster::wait_all(std::span<core::Request* const> reqs) {
  for (core::Request* req : reqs) wait(req);
}

}  // namespace nmad::api
