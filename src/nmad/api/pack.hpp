// Incremental message building — the historical Madeleine interface.
//
// "The first interface is similar to the interface of the former MADELEINE
// library, it allows to incrementally build messages. ... a NewMadeleine
// message is made of several pieces of data, located anywhere in
// user-space. The message is initiated and finalized with a
// synchronization barrier call." (§3.4)
//
// Usage, sender:                        receiver:
//   PackHandle p(core, gate, tag);        UnpackHandle u(core, gate, tag);
//   p.pack(&hdr, sizeof hdr);             u.unpack(&hdr, sizeof hdr);
//   p.pack(body, body_len);               u.unpack(body, body_len);
//   auto* req = p.end();                  auto* req = u.end();
//   ... wait(req); core.release(req);
#pragma once

#include <vector>

#include "nmad/core/core.hpp"

namespace nmad::api {

class PackHandle {
 public:
  PackHandle(core::Core& core, core::GateId gate, core::Tag tag)
      : core_(core), gate_(gate), tag_(tag) {}

  PackHandle(const PackHandle&) = delete;
  PackHandle& operator=(const PackHandle&) = delete;

  // Registers one piece of data; the memory must stay valid until the
  // request returned by end() completes.
  void pack(const void* data, size_t len);

  // Optional per-message scheduling hints (apply to the whole message).
  void set_priority(core::Priority prio) { hints_.prio = prio; }
  void set_rail(core::RailIndex rail) { hints_.pinned_rail = rail; }

  // Finalizes and submits the message. May be called exactly once.
  [[nodiscard]] core::SendRequest* end();

 private:
  core::Core& core_;
  core::GateId gate_;
  core::Tag tag_;
  core::SendHints hints_;
  std::vector<core::SourceLayout::Block> blocks_;
  size_t offset_ = 0;
  bool ended_ = false;
};

class UnpackHandle {
 public:
  UnpackHandle(core::Core& core, core::GateId gate, core::Tag tag)
      : core_(core), gate_(gate), tag_(tag) {}

  UnpackHandle(const UnpackHandle&) = delete;
  UnpackHandle& operator=(const UnpackHandle&) = delete;

  // Registers a destination for the next `len` incoming bytes.
  void unpack(void* data, size_t len);

  // Finalizes and posts the receive. May be called exactly once.
  [[nodiscard]] core::RecvRequest* end();

 private:
  core::Core& core_;
  core::GateId gate_;
  core::Tag tag_;
  std::vector<core::DestLayout::Block> blocks_;
  size_t offset_ = 0;
  bool ended_ = false;
};

}  // namespace nmad::api
