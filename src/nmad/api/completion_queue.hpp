// Completion queue: event-driven request reaping.
//
// The production NewMadeleine "sendrecv" interface delivers completion
// *events* rather than making applications poll individual requests; this
// is the equivalent here. Track any number of requests and consume them
// in completion order — the natural shape for servers that handle
// whichever client message lands first (see examples/rpc_multiflow.cpp
// for the polling alternative).
//
//   CompletionQueue cq(world);
//   cq.track(core.irecv(...));
//   cq.track(core.irecv(...));
//   while (cq.pending() > 0) {
//     core::Request* done = cq.wait_next();
//     ...handle, then core.release(done)...
//   }
#pragma once

#include <deque>

#include "nmad/core/request.hpp"
#include "simnet/world.hpp"

namespace nmad::api {

class CompletionQueue {
 public:
  explicit CompletionQueue(simnet::SimWorld& world) : world_(world) {}

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  // Registers a request; it appears in the queue once complete (requests
  // that are already complete are enqueued immediately). The tracked
  // request must not have another on_complete callback.
  void track(core::Request* req);

  // Requests tracked but not yet consumed (ready or in flight).
  [[nodiscard]] size_t pending() const { return in_flight_ + ready_.size(); }
  // Completed requests waiting to be consumed.
  [[nodiscard]] size_t ready() const { return ready_.size(); }

  // Next completed request, or nullptr if none is ready right now.
  core::Request* poll();

  // Pumps the event loop until a completion is available and returns it.
  // Aborts if the simulation goes quiescent first.
  core::Request* wait_next();

 private:
  simnet::SimWorld& world_;
  std::deque<core::Request*> ready_;
  size_t in_flight_ = 0;
};

}  // namespace nmad::api
