// Session helpers: build a simulated cluster with one engine per node.
//
// Cluster is the entry point used by examples, tests and benchmarks: it
// owns the virtual world, the fabric, and one Core per node, opens gates
// between every node pair, and provides MPI-style wait helpers that pump
// the event loop.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nmad/core/core.hpp"
#include "nmad/runtime/sim_runtime.hpp"
#include "simnet/fabric.hpp"
#include "simnet/profiles.hpp"
#include "simnet/world.hpp"

namespace nmad::api {

struct ClusterOptions {
  size_t nodes = 2;
  // One entry per rail; defaults to a single MX/Myri-10G rail.
  std::vector<simnet::NicProfile> rails;
  simnet::CpuProfile cpu = simnet::opteron_2006_profile();
  core::CoreConfig core;
  // Progress watchdog for wait(): when a request is still pending after
  // this much virtual time, print a stall report (request identity plus
  // every engine's debug dump) and keep going; after `stall_report_limit`
  // reports the wait aborts — a live-locked protocol is as much a bug as
  // a quiescent one, but the trail of reports shows what it was doing.
  // 0 disables the watchdog (wait only aborts on quiescence).
  double stall_report_interval_us = 1e6;
  int stall_report_limit = 16;
  // Open a gate between every node pair at construction (the historical
  // behaviour, right for small clusters). At 1k+ ranks the N² gates and
  // their windows dominate memory and setup time, while real communication
  // patterns (alltoall exchanges, incast) touch O(N·log N) pairs — set
  // false and open pairs on demand with ensure_gate().
  bool full_mesh = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] simnet::SimWorld& world() { return world_; }
  [[nodiscard]] simnet::Fabric& fabric() { return fabric_; }
  [[nodiscard]] size_t node_count() const { return cores_.size(); }
  [[nodiscard]] core::Core& core(simnet::NodeId node) {
    NMAD_ASSERT(node < cores_.size());
    return *cores_[node];
  }

  // Gate on `from` leading to `to`.
  [[nodiscard]] core::GateId gate(simnet::NodeId from,
                                  simnet::NodeId to) const;

  // Whether the from→to gate has been opened (always true under a full
  // mesh; lazy-mesh audits use this to skip pairs that never talked).
  [[nodiscard]] bool has_gate(simnet::NodeId from, simnet::NodeId to) const;

  // Lazy-mesh mode: opens the from→to gate (and its to→from return path —
  // receiving a packet from an unconnected peer is a protocol error) if
  // not yet open. Idempotent; no-op for pairs the full mesh already wired.
  void ensure_gate(simnet::NodeId from, simnet::NodeId to);

  // Virtual time now, µs.
  [[nodiscard]] double now() const { return world_.now(); }

  // Pumps the event loop until the request completes. Aborts if the
  // simulation goes quiescent first (protocol deadlock — always a bug).
  void wait(core::Request* req);
  void wait_all(std::span<core::Request* const> reqs);

 private:
  void stall_report(const core::Request* req, int n) const;

  simnet::SimWorld world_;
  simnet::Fabric fabric_;
  // One pass-through runtime per node: each Core sees only the
  // runtime::IRuntime seam, never the SimWorld/SimNode underneath.
  std::vector<std::unique_ptr<runtime::SimRuntime>> runtimes_;
  std::vector<std::unique_ptr<core::Core>> cores_;
  std::vector<std::vector<core::GateId>> gates_;  // [from][to]
  double stall_report_interval_us_;
  int stall_report_limit_;
};

}  // namespace nmad::api
