// The internal event bus: the spine connecting the three layers.
//
// Layers publish typed events instead of calling across each other for
// anything that is a *notification* (a packet went on the wire, a rail
// changed health, an ack retired a packet). Interested layers subscribe;
// the façade wires the subscriptions at construction. Delivery is
// synchronous and in subscription order, so the bus adds no scheduling
// nondeterminism — it is a structured function call, not a queue.
//
// The bus doubles as the observability spine: every published event lands
// in a fixed-capacity ring (the packet tracer) that debug_dump and the
// invariant-failure path render, and bumps a per-kind counter folded into
// CoreStats, so "what just happened" survives into any failure report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "nmad/core/config.hpp"
#include "nmad/core/types.hpp"
#include "nmad/runtime/runtime.hpp"

namespace nmad::core {

enum class EventKind : uint8_t {
  kPacketBuilt = 0,    // a track-0 packet was finalized for the wire
  kElected,            // the strategy elected chunks / a bulk slice
  kWireTx,             // a transfer engine handed bytes to its driver
  kWireRx,             // a packet was decoded off the wire
  kAcked,              // an ack retired a pending packet / bulk slice
  kRetransmit,         // a timed-out entry was re-sent
  kHealthTransition,   // a rail moved in the health lifecycle
  kDrainMilestone,     // drain started / completed, or a gate closed
  // Per-packet multipath spray. Operand encoding (consumed by the
  // fragment-granularity delivery audits in the explorer harness):
  //   kSprayReissued:  a = (tag << 40) | offset, b = payload len
  //   kSprayFragRx:    a = (tag << 40) | offset,
  //                    b = (outcome << 32) | len with outcome
  //                    0 = applied, 1 = duplicate, 2 = epoch-fenced,
  //                    3 = after-completion straggler
  //   kReassembled:    a = (tag << 40), b = total bytes
  // Tags above 2^24 alias in `a`; the harness workloads keep tags small.
  kSprayReissued,      // suspect-rail failover re-issued an in-flight frag
  kSprayFragRx,        // a spray fragment reached the reassembly buffer
  kReassembled,        // a sprayed message completed reassembly
  // Peer lifecycle. Operand encoding: a = peer incarnation known at the
  // transition, b = in-flight ops unwound (kPeerDied only).
  kPeerDied,           // every rail to the peer stayed dead past the grace
  kPeerRejoined,       // a fresh-incarnation beacon re-opened the gate
};

inline constexpr size_t kEventKindCount = 13;

const char* event_kind_name(EventKind kind);

// One bus event. `a` and `b` are kind-specific operands (bytes, cookie,
// old/new health, ...); unused fields stay at their defaults.
struct Event {
  EventKind kind = EventKind::kPacketBuilt;
  double t = 0.0;  // stamped by publish() from the runtime clock
  GateId gate = 0;
  RailIndex rail = kAnyRail;
  uint32_t seq = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

class EventBus {
 public:
  using Subscriber = std::function<void(const Event&)>;

  static constexpr size_t kDefaultTraceCapacity = 256;

  EventBus(runtime::IRuntime& rt, CoreStats* stats,
           size_t trace_capacity = kDefaultTraceCapacity);

  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  // Stamps the event with the runtime's current time, records it in the
  // trace ring, bumps the per-kind stats counter, and synchronously
  // notifies every subscriber of that kind (in subscription order).
  void publish(Event ev);

  void subscribe(EventKind kind, Subscriber fn);

  [[nodiscard]] uint64_t published() const { return published_; }
  [[nodiscard]] size_t trace_size() const;
  // Oldest-first snapshot of the retained ring.
  [[nodiscard]] std::vector<Event> trace() const;
  // Renders the newest `max_events` trace entries, oldest first.
  void dump_trace(std::ostream& out, size_t max_events = 32) const;

 private:
  runtime::IRuntime& rt_;
  CoreStats* stats_;
  std::vector<Event> ring_;
  size_t capacity_;
  size_t next_ = 0;  // ring write position once full
  uint64_t published_ = 0;
  std::vector<Subscriber> subscribers_[kEventKindCount];
};

}  // namespace nmad::core
