// Fundamental identifiers and enums of the nmad engine.
#pragma once

#include <cstdint>

namespace nmad::core {

// Index of a connection to one peer process.
using GateId = uint16_t;

// Sentinel for "no gate" in dense peer→gate index tables.
inline constexpr GateId kNoGate = 0xFFFF;

// Full 64-bit message tag. Upper layers multiplex logical channels into it
// (MAD-MPI folds the communicator id into the high bits), which is exactly
// what lets the optimizer aggregate across MPI communicators.
using Tag = uint64_t;

// Per-(gate, tag) message sequence number; sender and receiver counters
// advance in posting order, so chunks can be reordered or split across
// rails on the wire and still be matched unambiguously.
using SeqNum = uint32_t;

// Index of a rail (one NIC / driver instance) within a Core.
using RailIndex = uint32_t;

inline constexpr RailIndex kAnyRail = ~RailIndex{0};

// Kinds of chunk travelling in track-0 packets.
enum class ChunkKind : uint8_t {
  kData = 1,  // complete small message body
  kFrag = 2,  // fragment of a multi-segment message
  kRts = 3,   // rendezvous request-to-send (control)
  kCts = 4,   // rendezvous clear-to-send (control)
  kAck = 5,   // reliability: cumulative + selective acknowledgement
  kCredit = 6,  // flow control: receiver's cumulative eager-credit limits
  kHeartbeat = 7,  // rail health: liveness beacon / revival probe+reply
  // Per-packet multipath spray: one fragment of a rendezvous-class body
  // striped packet-by-packet across every alive rail. Carries its own
  // fragment sequence and a re-issue epoch so the receiver's reassembly
  // buffer can fence stale duplicates after a failover re-issue.
  kSprayFrag = 8,
};

const char* chunk_kind_name(ChunkKind kind);

// Scheduling priority hint, e.g. an RPC service id that must be delivered
// before its arguments (paper §2).
enum class Priority : uint8_t {
  kNormal = 0,
  kHigh = 1,
};

// Flags carried in chunk headers.
enum ChunkFlags : uint8_t {
  kFlagNone = 0,
  kFlagLast = 1u << 0,      // final fragment of its message
  kFlagPriority = 1u << 1,  // was submitted with Priority::kHigh
  // On kRts: the sender withdraws the rendezvous (cancellation); on kCts:
  // the receiver refuses the grant (its receive was cancelled).
  kFlagCancel = 1u << 2,
  // kHeartbeat only. A plain heartbeat (neither flag) is a one-way "this
  // rail carried a packet" beacon. kFlagProbe asks a dead rail's peer to
  // answer; kFlagReply is that answer, echoing the probe's epoch so the
  // prober can tell a fresh response from one delayed across a revival.
  kFlagProbe = 1u << 3,
  kFlagReply = 1u << 4,
  // On kRts: the sender proposes per-packet multipath spray for the body
  // (no RDMA sinks; kSprayFrag packets instead). On kCts: the receiver
  // accepts and has armed a reorder-tolerant reassembly buffer.
  kFlagSpray = 1u << 5,
};

}  // namespace nmad::core
