// Send/receive request objects.
//
// Requests follow MPI-like nonblocking semantics: isend/irecv return a
// request, completion is observed with test()/wait(), and the owner
// releases the request back to the engine pool afterwards. A send request
// completes when every chunk of the message has left the NIC (the user
// buffer is reusable); a receive request completes when every expected
// byte has landed in the destination layout.
//
// The methods under "engine-internal protocol entry points" are the
// mutation surface the collect/schedule layers drive; applications must
// not call them (they are public only so the layer TUs need no friend
// access — the layers themselves are linted against private reach-ins).
#pragma once

#include <cstdint>
#include <functional>

#include "nmad/core/layout.hpp"
#include "nmad/core/types.hpp"
#include "util/pool.hpp"
#include "util/status.hpp"

namespace nmad::core {

class Core;

class Request {
 public:
  enum class Kind : uint8_t { kSend, kRecv };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const util::Status& status() const { return status_; }

  [[nodiscard]] GateId gate() const { return gate_; }
  [[nodiscard]] Tag tag() const { return tag_; }
  [[nodiscard]] SeqNum seq() const { return seq_; }

  // Optional completion callback (runs once, at completion time).
  void set_on_complete(std::function<void()> fn) {
    on_complete_ = std::move(fn);
  }

  // Engine-internal protocol entry point — applications must not call it.
  void complete(util::Status status) {
    if (done_) return;
    status_ = std::move(status);
    done_ = true;
    if (on_complete_) {
      auto fn = std::move(on_complete_);
      on_complete_ = nullptr;
      fn();
    }
  }

 protected:
  friend class Core;

  Request(Kind kind, GateId gate, Tag tag, SeqNum seq)
      : kind_(kind), gate_(gate), tag_(tag), seq_(seq) {}

  Kind kind_;
  GateId gate_;
  Tag tag_;
  SeqNum seq_;
  bool done_ = false;
  util::Status status_;
  std::function<void()> on_complete_;
  // Deadline support (Core::set_deadline): the armed timer is cancelled
  // when the request completes or is released, so a pooled object reused
  // for a new request never inherits a stale deadline.
  uint64_t deadline_timer_ = 0;  // runtime::TimerId
  bool deadline_armed_ = false;
};

class SendRequest final : public Request {
 public:
  [[nodiscard]] size_t total_bytes() const { return total_bytes_; }

  // Engine-internal protocol entry points — applications must not call
  // these. One "part" per data/frag chunk and per rendezvous job; the
  // request completes when all parts have been transmitted.
  void add_part() { ++pending_parts_; }
  void part_done() {
    NMAD_ASSERT(pending_parts_ > 0);
    if (--pending_parts_ == 0) complete(util::ok_status());
  }
  [[nodiscard]] size_t pending_parts() const { return pending_parts_; }
  void reset_parts() { pending_parts_ = 0; }

 private:
  friend class Core;
  friend class util::ObjectPool<SendRequest>;

  SendRequest(GateId gate, Tag tag, SeqNum seq, size_t total_bytes)
      : Request(Kind::kSend, gate, tag, seq), total_bytes_(total_bytes) {}

  size_t total_bytes_;
  size_t pending_parts_ = 0;
};

class RecvRequest final : public Request {
 public:
  // Bytes received so far / expected in total (valid once known).
  [[nodiscard]] size_t received_bytes() const { return received_; }
  [[nodiscard]] bool total_known() const { return total_known_; }
  [[nodiscard]] size_t expected_bytes() const { return expected_; }

  // Engine-internal protocol entry points — applications must not call
  // these.
  // Learns the message total from an incoming chunk header. Returns false
  // (and fails the request) when the destination is too small.
  bool set_total(size_t total) {
    if (total_known_) {
      NMAD_ASSERT_MSG(expected_ == total, "inconsistent totals on wire");
      return status_.is_ok();
    }
    total_known_ = true;
    expected_ = total;
    if (total > layout_.total()) {
      complete(util::truncated("message longer than receive layout"));
      return false;
    }
    return true;
  }

  void add_received(size_t n) {
    received_ += n;
    NMAD_ASSERT_MSG(!total_known_ || received_ <= expected_,
                    "received more bytes than expected");
    if (total_known_ && received_ == expected_) {
      complete(util::ok_status());
    }
  }

  [[nodiscard]] DestLayout& layout() { return layout_; }

 private:
  friend class Core;
  friend class util::ObjectPool<RecvRequest>;

  RecvRequest(GateId gate, Tag tag, SeqNum seq, DestLayout layout)
      : Request(Kind::kRecv, gate, tag, seq), layout_(std::move(layout)) {}

  DestLayout layout_;
  size_t received_ = 0;
  size_t expected_ = 0;
  bool total_known_ = false;
};

}  // namespace nmad::core
