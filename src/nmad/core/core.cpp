#include "nmad/core/core.hpp"

#include <algorithm>

#include "nmad/core/format_util.hpp"
#include "nmad/strategies/builtin.hpp"
#include "util/inline_fn.hpp"
#include "util/logging.hpp"

namespace nmad::core {

namespace {
// An expired deadline whose request is momentarily un-cancellable (a part
// is inside a transmitting builder) retries at this interval.
constexpr double kDeadlineRetryUs = 50.0;
}  // namespace

Core::Core(runtime::IRuntime& rt, CoreConfig config)
    : rt_(rt),
      config_(std::move(config)),
      bus_(rt_, &stats_),
      ctx_{rt_,        config_,    stats_,     bus_,
           chunk_pool_, bulk_pool_, send_pool_, recv_pool_, gates_},
      sched_(ctx_, *this, *this,
             (ensure_builtin_strategies(), make_strategy(config_.strategy))),
      collect_(ctx_, sched_, *this, *this) {
  NMAD_ASSERT_MSG(sched_.has_strategy(), "unknown strategy name");
  // Flow control rides the ack machinery (credits piggyback on acks and
  // must survive loss), so it forces reliability on; reliability in turn
  // needs checksums: corruption detection is what turns a flipped bit
  // into a clean drop + retransmit.
  // Rail health needs the same machinery one layer up: a rail declared
  // dead only recovers its in-flight traffic through retransmission.
  // Adaptive scoring refines the health lifecycle (the degraded state
  // lives inside it), so it forces rail_health on. Peer liveness is
  // derived from rail liveness, so peer_lifecycle forces rail_health too.
  if (config_.peer_lifecycle) config_.rail_health = true;
  if (config_.adaptive) config_.rail_health = true;
  if (config_.rail_health) config_.reliability = true;
  if (config_.flow_control) config_.reliability = true;
  // Sprayed fragments ride track-0 packets under the ack machinery: the
  // receiver's exactly-once reassembly leans on packet dedup and the
  // re-issue path leans on retransmittable pending packets.
  if (config_.spray) config_.reliability = true;
  if (config_.reliability) config_.wire_checksum = true;

  // The transfer layer announces every health transition on the bus; the
  // scheduling layer reacts by re-homing in-flight traffic off a dead
  // rail or handing a revived one back to its rendezvous jobs. The
  // suspect state is a warning, not a death: only crossing the
  // alive/dead boundary moves traffic.
  bus_.subscribe(EventKind::kHealthTransition, [this](const Event& ev) {
    const auto prev = static_cast<RailHealth>(ev.a);
    const auto next = static_cast<RailHealth>(ev.b);
    const auto counts_alive = [](RailHealth h) {
      // Degraded rails still carry traffic — they are alive, just
      // deprioritized by election.
      return h == RailHealth::kAlive || h == RailHealth::kSuspect ||
             h == RailHealth::kDegraded;
    };
    const bool was_alive = counts_alive(prev);
    const bool now_alive = counts_alive(next);
    if (was_alive && !now_alive) {
      sched_.on_rail_dead(ev.rail);
    } else if (!was_alive && now_alive) {
      sched_.on_rail_revived(ev.rail);
    } else if (next == RailHealth::kSuspect &&
               (prev == RailHealth::kAlive || prev == RailHealth::kDegraded)) {
      // The spray failover acts on suspicion, not death: in-flight
      // sprayed fragments on the suspect rail are re-issued on the
      // survivors within the same microsecond-scale tick.
      sched_.on_rail_suspect(ev.rail);
    } else if (next == RailHealth::kDegraded) {
      // Gray failure detected by score: re-elect in-flight sprayed
      // fragments off the degraded rail while it keeps beaconing.
      sched_.on_rail_degraded(ev.rail);
    }
  });
}

Core::~Core() {
  for (auto& g : gates_) {
    if (g->peer_grace_armed) {
      rt_.cancel(g->peer_grace_timer);
      g->peer_grace_armed = false;
    }
  }
  for (auto& rail : rails_) rail->stop_monitor();
  sched_.release_prebuilt_chunks();
  for (auto& rail : rails_) rail->shutdown();
}

// ---------------------------------------------------------------------------
// Setup
// ---------------------------------------------------------------------------

util::Status Core::add_rail(std::unique_ptr<drivers::Driver> driver) {
  if (connected_) {
    return util::failed_precondition("add rails before connecting gates");
  }
  NMAD_RETURN_IF_ERROR(driver->init());
  const auto index = static_cast<RailIndex>(rails_.size());
  const drivers::DriverCaps& caps = driver->caps();

  RailInfo info;
  info.index = index;
  info.rdma = caps.supports_rdma;
  info.gather = caps.supports_gather;
  info.max_gather_segments = caps.max_gather_segments;
  info.rdv_threshold = caps.rdv_threshold;
  info.max_packet_bytes = caps.max_packet_bytes;
  info.latency_us = caps.latency_us;
  info.bandwidth_mbps = caps.bandwidth_mbps;

  auto rail =
      std::make_unique<TransferEngine>(ctx_, index, std::move(driver), info);
  // Standalone heartbeats flow back through the scheduler's issue path so
  // they pick up piggybacked acks/credits like any other packet.
  rail->bind(&sched_);
  rail->install_rx([this](RailIndex r, drivers::RxPacket&& packet) {
    on_packet(r, std::move(packet));
  });
  if (config_.reliability) {
    // Late retransmissions may land after their sink completed; the
    // orphan handler re-acks them instead of treating them as protocol
    // errors.
    rail->install_orphan([this](drivers::PeerAddr from, uint64_t cookie,
                                size_t offset, size_t len) {
      on_bulk_orphan(from, cookie, offset, len);
    });
  }
  rails_.push_back(std::move(rail));
  sched_.add_rail_slot();
  return util::ok_status();
}

util::Expected<GateId> Core::connect(drivers::PeerAddr peer) {
  std::vector<RailIndex> all;
  for (RailIndex r = 0; r < rails_.size(); ++r) all.push_back(r);
  return connect(peer, std::move(all));
}

util::Expected<GateId> Core::connect(drivers::PeerAddr peer,
                                     std::vector<RailIndex> rails) {
  if (rails.empty()) return util::invalid_argument("gate needs >= 1 rail");
  if (peer < peer_gate_.size() && peer_gate_[peer] != kNoGate) {
    return util::already_exists("gate to this peer already open");
  }
  for (RailIndex r : rails) {
    if (r >= rails_.size()) return util::out_of_range("bad rail index");
  }
  connected_ = true;
  if (config_.rail_health && !health_monitors_started_) {
    start_health_monitors();
  }

  auto gate = std::make_unique<Gate>();
  gate->id = static_cast<GateId>(gates_.size());
  gate->peer = peer;
  gate->rails = std::move(rails);
  gate->rdv_threshold = SIZE_MAX;
  gate->max_packet = SIZE_MAX;
  for (RailIndex r : gate->rails) {
    const RailInfo& info = rails_[r]->info();
    gate->max_packet = std::min(gate->max_packet, info.max_packet_bytes);
    if (info.rdma) {
      gate->has_rdma = true;
      gate->rdv_threshold = std::min(gate->rdv_threshold, info.rdv_threshold);
    }
  }
  if (config_.rdv_threshold_override != 0 && gate->has_rdma) {
    gate->rdv_threshold = config_.rdv_threshold_override;
  }
  sched_.init_gate(*gate);

  const GateId id = gate->id;
  NMAD_ASSERT_MSG(gates_.size() < kNoGate, "GateId space exhausted");
  if (peer >= peer_gate_.size()) {
    peer_gate_.resize(peer + 1, kNoGate);
  }
  peer_gate_[peer] = id;
  gates_.push_back(std::move(gate));
  return id;
}

Gate& Core::gate(GateId id) {
  NMAD_ASSERT(id < gates_.size());
  return *gates_[id];
}

ITransferRail& Core::transfer_rail(RailIndex rail) {
  NMAD_ASSERT(rail < rails_.size());
  return *rails_[rail];
}

const ITransferRail& Core::transfer_rail(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return *rails_[rail];
}

const RailInfo& Core::rail_info(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail]->info();
}

bool Core::rail_alive(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail]->alive();
}

void Core::fail_rail(RailIndex rail) {
  NMAD_ASSERT(rail < rails_.size());
  rails_[rail]->kill();
}

RailHealth Core::rail_health_state(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail]->health();
}

uint32_t Core::rail_epoch(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail]->epoch();
}

void Core::revive_rail(RailIndex rail) {
  NMAD_ASSERT(rail < rails_.size());
  rails_[rail]->revive();
}

void Core::start_health_monitors() {
  NMAD_ASSERT_MSG(config_.heartbeat_interval_us > 0.0 &&
                      config_.probe_interval_us > 0.0,
                  "rail_health needs positive intervals");
  health_monitors_started_ = true;
  const double now = rt_.now_us();
  for (auto& rail : rails_) rail->start_monitor(now);
}

void Core::stop_health_monitors() {
  for (auto& rail : rails_) rail->stop_monitor();
  health_monitors_started_ = false;
}

size_t Core::window_size(GateId id) { return gate(id).sched.window.size(); }

util::Status Core::set_strategy(const std::string& name) {
  std::unique_ptr<Strategy> next = make_strategy(name);
  if (next == nullptr) {
    return util::not_found("no strategy registered as '" + name + "'");
  }
  sched_.set_strategy(std::move(next));
  config_.strategy = name;
  return util::ok_status();
}

void Core::poll() {
  for (auto& rail : rails_) rail->poll();
}

// ---------------------------------------------------------------------------
// Collect-layer forwarders
// ---------------------------------------------------------------------------

SendRequest* Core::isend(GateId gate_id, Tag tag, const SourceLayout& src,
                         const SendHints& hints) {
  return collect_.isend(gate(gate_id), tag, src, hints);
}

SendRequest* Core::isend(GateId gate_id, Tag tag, util::ConstBytes data,
                         const SendHints& hints) {
  return isend(gate_id, tag, SourceLayout::contiguous(data), hints);
}

RecvRequest* Core::irecv(GateId gate_id, Tag tag, DestLayout dest) {
  return collect_.irecv(gate(gate_id), tag, std::move(dest));
}

RecvRequest* Core::irecv(GateId gate_id, Tag tag, util::MutableBytes buffer) {
  return irecv(gate_id, tag, DestLayout::contiguous(buffer));
}

Core::PeekResult Core::peek_unexpected(GateId gate_id, Tag tag) {
  return collect_.peek_unexpected(gate(gate_id), tag);
}

void Core::release(Request* req) {
  NMAD_ASSERT(req != nullptr);
  NMAD_ASSERT_MSG(req->done(), "release of an incomplete request");
  // A deadline still ticking on a released request would fire on pooled
  // memory reused by a future request.
  cancel_deadline(req);
  if (req->kind() == Request::Kind::kSend) {
    send_pool_.release(static_cast<SendRequest*>(req));
  } else {
    recv_pool_.release(static_cast<RecvRequest*>(req));
  }
}

// ---------------------------------------------------------------------------
// The packet hub: every arrival is decoded once here, then each chunk is
// dispatched to the layer that owns its state.
// ---------------------------------------------------------------------------

void Core::on_packet(RailIndex rail, drivers::RxPacket&& packet) {
  NMAD_ASSERT_MSG(
      packet.from < peer_gate_.size() && peer_gate_[packet.from] != kNoGate,
      "packet from unknown peer");
  Gate& g = *gates_[peer_gate_[packet.from]];
  // A failed gate normally refuses all traffic — except a peer-dead gate
  // under the lifecycle, which keeps listening for heartbeats so a
  // restarted peer can announce its new incarnation and rejoin. Every
  // other chunk kind on such a gate is previous-life traffic and is
  // fenced (dropped, never applied) below.
  if (g.failed && !(config_.peer_lifecycle && g.peer_dead)) return;
  if (!g.failed) {
    sched_.note_heard(g, rail);  // a delivering rail: best ack return path
  }
  ++stats_.packets_received;
  rt_.cpu().charge(config_.parse_packet_us);

  PacketMeta meta;
  bool classified = false;  // packet-level framing inspected
  bool drop = false;        // duplicate or unverifiable: skip every chunk
  bool processed = false;   // at least one chunk acted on
  bool fenced = false;      // gate was peer-dead when the packet arrived
  const util::Status st = decode_packet(
      packet.bytes.view(), &meta,
      [this, &g, rail, &meta, &classified, &drop, &processed,
       &fenced](const WireChunk& chunk) {
        if (!classified) {
          classified = true;
          // The fence decision latches per packet: even if a heartbeat
          // chunk rejoins the gate mid-decode, the packet's other chunks
          // stay fenced — the gate never registered its seq, so applying
          // them would double-deliver against the retransmission.
          fenced = g.failed;
          if (config_.reliability) {
            if (!meta.checksummed) {
              // A flipped checksum-flag bit would disable verification;
              // reliable-mode peers always checksum, so refuse the
              // packet and let the retransmit timer recover it.
              drop = true;
              ++stats_.packets_rejected;
            } else if (fenced) {
              // Peer-dead gate: no seq registration on a fenced gate (a
              // rejoin restarts the sequence space from zero).
            } else if (meta.reliable && sched_.rx_register(g, meta.seq)) {
              drop = true;  // duplicate: already delivered, just re-ack
              ++stats_.packets_duplicate;
            }
          }
        }
        if (drop) return;
        if (fenced && chunk.kind != ChunkKind::kHeartbeat) {
          // Previous-life traffic against a dead-peer gate (stale acks,
          // spray fragments, credit grants): fenced, not applied.
          ++stats_.incarnations_fenced;
          return;
        }
        processed = true;
        rt_.cpu().charge(config_.parse_chunk_us);
        ++stats_.chunks_received;
        switch (chunk.kind) {
          case ChunkKind::kData:
          case ChunkKind::kFrag:
            collect_.on_payload(g, chunk);
            break;
          case ChunkKind::kRts:
            collect_.on_rts(g, chunk);
            break;
          case ChunkKind::kCts:
            sched_.on_cts(g, chunk);
            break;
          case ChunkKind::kAck:
            sched_.on_ack(g, chunk);
            break;
          case ChunkKind::kCredit:
            sched_.on_credit(g, chunk);
            break;
          case ChunkKind::kHeartbeat:
            // The incarnation fence runs before the rail health machinery
            // sees the beacon; a previous-life beacon never refreshes
            // liveness or answers probes.
            if (config_.peer_lifecycle && !on_peer_heartbeat(g, rail, chunk)) {
              break;
            }
            rails_[rail]->handle_heartbeat(g, chunk);
            break;
          case ChunkKind::kSprayFrag:
            collect_.on_spray_frag(g, rail, chunk);
            break;
        }
      });
  if (!st.is_ok()) {
    // Under reliability a corrupt packet fails checksum verification
    // before any chunk reaches the sink; drop it and let the sender
    // retransmit. Decode errors on verified content — or any error
    // without the reliability layer — remain hard protocol bugs.
    NMAD_ASSERT_MSG(config_.reliability && !processed,
                    "malformed packet on wire");
    ++stats_.packets_rejected;
    return;
  }
  if (processed) {
    bus_.publish({.kind = EventKind::kWireRx,
                  .gate = g.id,
                  .rail = rail,
                  .seq = meta.reliable ? meta.seq : 0,
                  .a = packet.bytes.view().size()});
  }
  if (g.failed) return;  // a chunk handler may have torn the gate down
  if (fenced) return;    // fenced packet: nothing to acknowledge
  if (config_.reliability && meta.reliable && meta.checksummed) {
    sched_.schedule_ack(g);
  }
#ifdef NMAD_VALIDATE
  validate_invariants();
#endif
}

// ---------------------------------------------------------------------------
// Gate failure / teardown
// ---------------------------------------------------------------------------

void Core::fail_gate(Gate& gate, const util::Status& status) {
  if (gate.failed) return;
  ++stats_.gates_failed;
  NMAD_LOG_WARN("nmad: node %u fails gate %u (peer %u): %s", rt_.local_id(),
                gate.id, gate.peer, status.to_string().c_str());
  teardown_gate(gate, status);
}

void Core::close_gate(GateId id) {
  Gate& g = gate(id);
  if (g.failed) return;
  ++stats_.gates_closed;
  bus_.publish({.kind = EventKind::kDrainMilestone, .gate = id, .a = 2});
  teardown_gate(g, util::closed("gate closed by the local endpoint"));
}

void Core::teardown_gate(Gate& gate, const util::Status& status) {
  // A pending death-grace verdict is moot once the gate is down.
  if (gate.peer_grace_armed) {
    rt_.cancel(gate.peer_grace_timer);
    gate.peer_grace_armed = false;
  }
  // `failed` is set before any layer runs so re-entrant paths (a
  // completion callback submitting more traffic, a discharge trying to
  // re-advertise credit) see the gate as already gone.
  gate.failed = true;
  gate.fail_status = status;
  // Send side first (window, prebuilt packets, reliability windows,
  // rendezvous jobs), then the receive side (sinks, matched receives,
  // the unexpected store), then the scheduling residue the receive-side
  // teardown may have touched (dedup set, deferred bulk acks).
  sched_.teardown_send(gate, status);
  collect_.teardown(gate, status);
  sched_.teardown_finish(gate);
}

// ---------------------------------------------------------------------------
// Peer lifecycle: death grace, incarnation fencing, rejoin
// ---------------------------------------------------------------------------

void Core::peer_unreachable(Gate& gate) {
  if (gate.failed) return;
  if (!config_.peer_lifecycle) {
    fail_gate(gate, util::closed("all rails to peer unreachable"));
    return;
  }
  if (config_.peer_death_grace_us <= 0.0) {
    // Grace zero declares immediately on losing the last rail — still a
    // peer death (kPeerDead unwind, heartbeats kept flowing for rejoin),
    // not a plain gate closure.
    declare_peer_dead(gate, "peer declared dead: last rail lost (no grace)");
    return;
  }
  if (gate.peer_grace_armed) return;
  gate.peer_grace_armed = true;
  gate.peer_grace_timer = rt_.schedule_after(
      config_.peer_death_grace_us, [this, &gate]() { on_peer_grace(gate); });
}

void Core::on_peer_grace(Gate& gate) {
  gate.peer_grace_armed = false;
  if (gate.failed) return;
  // A rail may have revived during the grace: the peer is dead only if
  // every rail to it is still down.
  for (RailIndex r : gate.rails) {
    if (rails_[r]->alive()) return;
  }
  declare_peer_dead(gate,
                    "peer declared dead: no rail revived within the grace");
}

void Core::declare_peer_dead(Gate& gate, const char* why) {
  NMAD_ASSERT(!gate.failed);
  ++stats_.peers_died;
  // The unwind fence: bump our generation (announced in every outgoing
  // heartbeat) and record what we last heard from the peer. The rejoin
  // test is strict inequality against these — only a peer that restarted
  // or unwound *after* this moment can re-open the gate.
  ++gate.gate_gen;
  gate.death_incarnation = gate.peer_incarnation;
  gate.death_peer_gen = gate.peer_gen;
  const ScheduleLayer::GateCounts sc = sched_.gate_counts(gate);
  const CollectLayer::GateCounts cc = collect_.gate_counts(gate);
  const uint64_t inflight = sc.window + sc.ready_bulk + sc.rdv_wait_cts +
                            sc.pending_pkts + sc.pending_bulk +
                            cc.active_recv + cc.rdv_recv + cc.spray_recv;
  bus_.publish({.kind = EventKind::kPeerDied,
                .gate = gate.id,
                .a = gate.peer_incarnation,
                .b = inflight});
  fail_gate(gate, util::peer_dead(why));
  // Set after the teardown so re-entrant paths saw a plainly-failed gate;
  // from here on heartbeats keep flowing so a restart can announce itself.
  gate.peer_dead = true;
}

bool Core::on_peer_heartbeat(Gate& g, RailIndex rail, const WireChunk& chunk) {
  const uint32_t inc = chunk.epoch;  // node incarnation rides this field
  const auto gen = static_cast<uint32_t>(chunk.tag);  // peer's unwind gen
  if (inc < g.peer_incarnation) {
    ++stats_.incarnations_fenced;  // beacon from a previous life
    return false;
  }
  if (inc > g.peer_incarnation) {
    // The peer restarted. Everything its old life left in flight is
    // void: unwind as a peer death, then admit the new incarnation.
    if (!g.failed) {
      declare_peer_dead(g, "peer restarted with a new incarnation");
    }
    if (!g.peer_dead) return !g.failed;  // locally-closed gate stays closed
    g.peer_incarnation = inc;
    g.peer_gen = gen;  // a new life restarts the peer's unwind counter
  } else if (gen > g.peer_gen) {
    g.peer_gen = gen;  // max-merge: a delayed beacon never rolls it back
  }
  if (g.failed && g.peer_dead && rails_[rail]->alive() &&
      (g.peer_incarnation > g.death_incarnation ||
       g.peer_gen > g.death_peer_gen)) {
    // A live rail is delivering beacons that prove the peer's state is
    // fresh relative to our death — it restarted (newer incarnation) or
    // it unwound this gate itself (newer generation). Re-open with fresh
    // state. A same-incarnation, same-generation beacon proves only
    // reachability: the peer may never have noticed the outage, and its
    // live pre-death receive floor would swallow our restarted sequence
    // space (sends acked-but-never-delivered, stale traffic applied).
    rejoin_gate(g);
  }
  // A still-dead gate keeps feeding current-incarnation heartbeats to the
  // rail health machinery: probe replies are what revive the rail, and a
  // revived rail is the precondition for the rejoin above — swallowing
  // them here would deadlock the handshake.
  return !g.failed || g.peer_dead;
}

void Core::rejoin_gate(Gate& g) {
  NMAD_ASSERT(g.failed && g.peer_dead);
  // The old life's state was fully unwound at death; re-open with fresh
  // collect/sched state — sequence numbers, ack windows and credit
  // ledgers restart from gate-open values, which the restarted peer
  // (whose own gate went through the same death) agrees on.
  g.collect = GateCollect{};
  g.sched = GateSched{};
  sched_.init_gate(g);
  g.failed = false;
  g.peer_dead = false;
  g.fail_status = util::ok_status();
  ++stats_.peers_rejoined;
  NMAD_LOG_WARN("nmad: node %u rejoins gate %u (peer %u, incarnation %u)",
                rt_.local_id(), g.id, g.peer, g.peer_incarnation);
  bus_.publish({.kind = EventKind::kPeerRejoined,
                .gate = g.id,
                .a = g.peer_incarnation});
}

void Core::on_bulk_orphan(drivers::PeerAddr from, uint64_t cookie,
                          size_t offset, size_t len) {
  if (from >= peer_gate_.size() || peer_gate_[from] == kNoGate) return;
  Gate& g = *gates_[peer_gate_[from]];
  if (g.failed) return;
  sched_.on_bulk_orphan(g, cookie, offset, len);
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

bool Core::drained() const {
  for (const auto& gate_ptr : gates_) {
    const Gate& g = *gate_ptr;
    if (g.failed) continue;
    if (!sched_.flushed(g) || !collect_.flushed(g)) return false;
  }
  // Without reliability no engine structure tracks a packet after its
  // election, so "flushed" must also mean the transmit engines are
  // quiet: a frame mid-DMA completes its sends only at tx-done.
  return sched_.rails_flushed();
}

util::Status Core::drain(double deadline_us) {
  ++stats_.drains_started;
  bus_.publish({.kind = EventKind::kDrainMilestone,
                .a = 0,
                .b = static_cast<uint64_t>(deadline_us)});
  const double deadline = rt_.now_us() + deadline_us;
  while (!drained()) {
    if (rt_.now_us() >= deadline) {
      return util::deadline_exceeded("drain deadline expired");
    }
    if (!rt_.advance()) {
      // The runtime went quiescent with this engine still holding
      // undelivered state (e.g. a rendezvous whose receive was never
      // posted): no amount of waiting flushes it.
      return util::deadline_exceeded("drain stalled: engine cannot flush");
    }
  }
  // Quiescence audit: a clean flush must also be a consistent one.
  std::vector<std::string> failures;
  if (!check_invariants(&failures)) {
    return util::internal_error("drain audit: " + failures.front());
  }
  ++stats_.drains_completed;
  bus_.publish({.kind = EventKind::kDrainMilestone, .a = 1});
  return util::ok_status();
}

// ---------------------------------------------------------------------------
// Cancellation / deadlines
// ---------------------------------------------------------------------------

bool Core::cancel(Request* req) {
  return cancel_with(req, util::cancelled("cancelled by the application"));
}

bool Core::cancel_with(Request* req, util::Status status) {
  if (req->done()) return false;
  Gate& g = gate(req->gate());
  if (req->kind() == Request::Kind::kSend) {
    return sched_.cancel_send(g, static_cast<SendRequest*>(req),
                              std::move(status));
  }
  return collect_.cancel_recv(g, static_cast<RecvRequest*>(req),
                              std::move(status));
}

void Core::set_deadline(Request* req, double timeout_us) {
  if (req->done()) return;
  cancel_deadline(req);  // last call wins
  req->deadline_armed_ = true;
  req->deadline_timer_ =
      rt_.schedule_after(timeout_us, [this, req]() { on_deadline(req); });
}

void Core::cancel_deadline(Request* req) {
  if (!req->deadline_armed_) return;
  rt_.cancel(req->deadline_timer_);
  req->deadline_armed_ = false;
}

void Core::on_deadline(Request* req) {
  req->deadline_armed_ = false;
  if (req->done()) return;
  if (cancel_with(req, util::deadline_exceeded("request deadline expired"))) {
    ++stats_.deadlines_exceeded;
    return;
  }
  // Uncancellable right now (bytes in flight): retry shortly. The request
  // either becomes cancellable or completes, whichever comes first.
  req->deadline_armed_ = true;
  req->deadline_timer_ =
      rt_.schedule_after(kDeadlineRetryUs, [this, req]() { on_deadline(req); });
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

void Core::debug_dump(std::ostream& out) const {
  using ULL = unsigned long long;
  dumpf(out, "=== nmad core on node %u (strategy %s) ===\n", rt_.local_id(),
        std::string(sched_.strategy_name()).c_str());
  for (size_t r = 0; r < rails_.size(); ++r) {
    const TransferEngine& te = *rails_[r];
    dumpf(out,
          "rail %zu: %s tx_idle=%d prebuilt=%d alive=%d lat=%.2fus "
          "bw=%.0fMB/s",
          r, te.name().c_str(), te.tx_idle() ? 1 : 0,
          sched_.has_prebuilt(static_cast<RailIndex>(r)) ? 1 : 0,
          te.alive() ? 1 : 0, te.info().latency_us, te.info().bandwidth_mbps);
    te.dump_health(out);
    dumpf(out, "\n");
  }
  for (const auto& gate : gates_) {
    const ScheduleLayer::GateCounts sc = sched_.gate_counts(*gate);
    const CollectLayer::GateCounts cc = collect_.gate_counts(*gate);
    dumpf(out,
          "gate %u → peer %u: window=%zu ready_bulk=%zu "
          "rdv_wait_cts=%zu active_recv=%zu unexpected=%zu "
          "rdv_recv=%zu spray_recv=%zu pending_pkts=%zu pending_bulk=%zu "
          "failed=%d peer_dead=%d inc=%u gen=%u/%u\n",
          gate->id, gate->peer, sc.window, sc.ready_bulk, sc.rdv_wait_cts,
          cc.active_recv, cc.unexpected, cc.rdv_recv, cc.spray_recv,
          sc.pending_pkts, sc.pending_bulk, gate->failed ? 1 : 0,
          gate->peer_dead ? 1 : 0,
          static_cast<unsigned>(gate->peer_incarnation),
          static_cast<unsigned>(gate->gate_gen),
          static_cast<unsigned>(gate->peer_gen));
    sched_.dump_gate_detail(*gate, out);
  }
  dumpf(out,
        "stats: sends=%llu recvs=%llu packets=%llu/%llu "
        "chunks=%llu agg=%llu rdv=%llu bulk=%llu prebuilt=%llu "
        "unexpected=%llu\n",
        static_cast<ULL>(stats_.sends_submitted),
        static_cast<ULL>(stats_.recvs_submitted),
        static_cast<ULL>(stats_.packets_sent),
        static_cast<ULL>(stats_.packets_received),
        static_cast<ULL>(stats_.chunks_sent),
        static_cast<ULL>(stats_.chunks_aggregated),
        static_cast<ULL>(stats_.rdv_started),
        static_cast<ULL>(stats_.bulk_sends),
        static_cast<ULL>(stats_.packets_prebuilt),
        static_cast<ULL>(stats_.unexpected_chunks));
  if (config_.reliability) {
    dumpf(out,
          "reliability: timeouts=%llu retx=%llu rejected=%llu dup=%llu "
          "acks=%llu piggy=%llu bulk_to=%llu bulk_retx=%llu "
          "rails_failed=%llu gates_failed=%llu\n",
          static_cast<ULL>(stats_.packet_timeouts),
          static_cast<ULL>(stats_.packets_retransmitted),
          static_cast<ULL>(stats_.packets_rejected),
          static_cast<ULL>(stats_.packets_duplicate),
          static_cast<ULL>(stats_.acks_sent),
          static_cast<ULL>(stats_.acks_piggybacked),
          static_cast<ULL>(stats_.bulk_timeouts),
          static_cast<ULL>(stats_.bulk_retransmitted),
          static_cast<ULL>(stats_.rails_failed),
          static_cast<ULL>(stats_.gates_failed));
  }
  if (config_.rail_health) {
    dumpf(out,
          "health: beacons=%llu/%llu probes=%llu replies=%llu fenced=%llu "
          "suspected=%llu revived=%llu demoted=%llu\n",
          static_cast<ULL>(stats_.heartbeats_sent),
          static_cast<ULL>(stats_.heartbeats_received),
          static_cast<ULL>(stats_.probes_sent),
          static_cast<ULL>(stats_.probe_replies_sent),
          static_cast<ULL>(stats_.heartbeats_fenced),
          static_cast<ULL>(stats_.rails_suspected),
          static_cast<ULL>(stats_.rails_revived),
          static_cast<ULL>(stats_.probation_demotions));
  }
  if (config_.spray) {
    dumpf(out,
          "spray: sends=%llu frags_tx=%llu frags_rx=%llu dups=%llu "
          "fenced=%llu late=%llu reissues=%llu reassembled=%llu\n",
          static_cast<ULL>(stats_.spray_sends),
          static_cast<ULL>(stats_.spray_frags_tx),
          static_cast<ULL>(stats_.spray_frags_rx),
          static_cast<ULL>(stats_.spray_frag_dups),
          static_cast<ULL>(stats_.spray_frags_fenced),
          static_cast<ULL>(stats_.spray_frags_late),
          static_cast<ULL>(stats_.spray_reissues),
          static_cast<ULL>(stats_.spray_reassembled));
    if (stats_.spray_reissue_latency_us.count() > 0) {
      const util::QuantileDigest& d = stats_.spray_reissue_latency_us;
      dumpf(out,
            "spray reissue latency: n=%llu mean=%.2fus p99=%.2fus "
            "p999=%.2fus max=%.2fus\n",
            static_cast<ULL>(d.count()), d.mean(), d.quantile(0.99),
            d.quantile(0.999), d.max());
    }
  }
  if (config_.peer_lifecycle || stats_.tombstones_reaped != 0) {
    dumpf(out,
          "peer: died=%llu rejoined=%llu fenced=%llu tombstones_reaped=%llu\n",
          static_cast<ULL>(stats_.peers_died),
          static_cast<ULL>(stats_.peers_rejoined),
          static_cast<ULL>(stats_.incarnations_fenced),
          static_cast<ULL>(stats_.tombstones_reaped));
  }
  if (config_.adaptive) {
    dumpf(out,
          "adaptive: degraded=%llu recovered=%llu reissues=%llu "
          "elections=%llu evictions=%llu rtt_samples=%llu\n",
          static_cast<ULL>(stats_.rails_degraded),
          static_cast<ULL>(stats_.rails_recovered),
          static_cast<ULL>(stats_.degraded_reissues),
          static_cast<ULL>(stats_.adaptive_elections),
          static_cast<ULL>(stats_.degraded_evictions),
          static_cast<ULL>(stats_.probe_rtt_samples));
  }
  if (stats_.drains_started != 0 || stats_.gates_closed != 0) {
    dumpf(out, "drain: started=%llu completed=%llu gates_closed=%llu\n",
          static_cast<ULL>(stats_.drains_started),
          static_cast<ULL>(stats_.drains_completed),
          static_cast<ULL>(stats_.gates_closed));
  }
  if (config_.flow_control) {
    dumpf(out,
          "flow: grants=%llu stalls=%llu probes=%llu rdv_degrades=%llu "
          "rx_stored=%llu rx_hwm=%llu\n",
          static_cast<ULL>(stats_.credit_grants),
          static_cast<ULL>(stats_.credit_stalls),
          static_cast<ULL>(stats_.credit_probes),
          static_cast<ULL>(stats_.credit_rdv_degrades),
          static_cast<ULL>(stats_.rx_stored_bytes),
          static_cast<ULL>(stats_.rx_stored_hwm));
  }
  if (stats_.sends_cancelled != 0 || stats_.recvs_cancelled != 0 ||
      stats_.deadlines_exceeded != 0 ||
      stats_.cancelled_payload_dropped != 0) {
    dumpf(out, "cancel: sends=%llu recvs=%llu deadlines=%llu dropped=%llu\n",
          static_cast<ULL>(stats_.sends_cancelled),
          static_cast<ULL>(stats_.recvs_cancelled),
          static_cast<ULL>(stats_.deadlines_exceeded),
          static_cast<ULL>(stats_.cancelled_payload_dropped));
  }
  dumpf(out,
        "events: built=%llu elected=%llu tx=%llu rx=%llu acked=%llu "
        "retx=%llu health=%llu drain=%llu\n",
        static_cast<ULL>(stats_.ev_packet_built),
        static_cast<ULL>(stats_.ev_elected),
        static_cast<ULL>(stats_.ev_wire_tx),
        static_cast<ULL>(stats_.ev_wire_rx),
        static_cast<ULL>(stats_.ev_acked),
        static_cast<ULL>(stats_.ev_retransmit),
        static_cast<ULL>(stats_.ev_health_transition),
        static_cast<ULL>(stats_.ev_drain_milestone));
  const AllocStats alloc = alloc_stats();
  dumpf(out,
        "alloc: chunk=%zu/%zu(%zu) bulk=%zu/%zu(%zu) send=%zu/%zu(%zu) "
        "recv=%zu/%zu(%zu) fn_spills=%llu\n",
        alloc.chunk_pool_live, alloc.chunk_pool_capacity,
        alloc.chunk_pool_grows, alloc.bulk_pool_live, alloc.bulk_pool_capacity,
        alloc.bulk_pool_grows, alloc.send_pool_live, alloc.send_pool_capacity,
        alloc.send_pool_grows, alloc.recv_pool_live, alloc.recv_pool_capacity,
        alloc.recv_pool_grows, static_cast<ULL>(alloc.inline_fn_heap_allocs));
  dumpf(out,
        "queue: sched=%llu exec=%llu cancel=%llu buckets=%zu pending=%zu "
        "nodes=%zu slots=%zu resizes=%llu direct=%llu\n",
        static_cast<ULL>(alloc.queue.scheduled),
        static_cast<ULL>(alloc.queue.executed),
        static_cast<ULL>(alloc.queue.cancelled), alloc.queue.buckets,
        alloc.queue.pending, alloc.queue.node_capacity,
        alloc.queue.slot_capacity, static_cast<ULL>(alloc.queue.resizes),
        static_cast<ULL>(alloc.queue.direct_searches));
  bus_.dump_trace(out, 32);
}

Core::AllocStats Core::alloc_stats() const {
  AllocStats s;
  s.chunk_pool_live = chunk_pool_.live();
  s.chunk_pool_capacity = chunk_pool_.capacity();
  s.chunk_pool_grows = chunk_pool_.grows();
  s.bulk_pool_live = bulk_pool_.live();
  s.bulk_pool_capacity = bulk_pool_.capacity();
  s.bulk_pool_grows = bulk_pool_.grows();
  s.send_pool_live = send_pool_.live();
  s.send_pool_capacity = send_pool_.capacity();
  s.send_pool_grows = send_pool_.grows();
  s.recv_pool_live = recv_pool_.live();
  s.recv_pool_capacity = recv_pool_.capacity();
  s.recv_pool_grows = recv_pool_.grows();
  s.queue = rt_.timer_stats();
  s.inline_fn_heap_allocs = util::inline_fn_heap_allocs();
  return s;
}

}  // namespace nmad::core
