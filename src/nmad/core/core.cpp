#include "nmad/core/core.hpp"

#include <algorithm>
#include <set>

#include "nmad/strategies/builtin.hpp"
#include "simnet/time.hpp"
#include "util/logging.hpp"

namespace nmad::core {

namespace {
// Bounds on one ack chunk's contents, keeping it well under any rail's
// packet limit. Sacks are re-advertised on every ack until the floor
// passes them, so the cap only delays retirement; bulk-slice acks are
// consumed when the chunk ships and re-queued if it overflows.
constexpr size_t kMaxSacksPerAck = 32;
constexpr size_t kMaxBulkAcksPerAck = 16;
// A block at least this large that does not fit the remaining credit is
// demoted to rendezvous instead of waiting for the window to open: the
// RTS costs a round-trip but moves no payload until the receiver agrees.
constexpr size_t kCreditRdvFloor = 1024;
// An expired deadline whose request is momentarily un-cancellable (a part
// is inside a transmitting builder) retries at this interval.
constexpr double kDeadlineRetryUs = 50.0;
}  // namespace

Core::Core(simnet::SimWorld& world, simnet::SimNode& node, CoreConfig config)
    : world_(world),
      node_(node),
      config_(std::move(config)),
      strategy_((ensure_builtin_strategies(), make_strategy(config_.strategy))),
      // Rendezvous cookies embed the node id so sinks posted on a shared
      // receiver NIC never collide across senders.
      next_cookie_((static_cast<uint64_t>(node.id()) + 1) << 48) {
  NMAD_ASSERT_MSG(strategy_ != nullptr, "unknown strategy name");
  // Flow control rides the ack machinery (credits piggyback on acks and
  // must survive loss), so it forces reliability on; reliability in turn
  // needs checksums: corruption detection is what turns a flipped bit
  // into a clean drop + retransmit.
  // Rail health needs the same machinery one layer up: a rail declared
  // dead only recovers its in-flight traffic through retransmission.
  if (config_.rail_health) config_.reliability = true;
  if (config_.flow_control) config_.reliability = true;
  if (config_.reliability) config_.wire_checksum = true;
}

Core::~Core() {
  for (auto& rail : rails_) {
    if (rail.health_timer_armed) {
      world_.cancel(rail.health_timer);
      rail.health_timer_armed = false;
    }
  }
  for (auto& rail : rails_) {
    // A packet elected early but never transmitted returns its chunks to
    // the pool (reaching here with one is already a usage error that the
    // request pools will flag; this keeps the diagnostics readable).
    if (rail.prebuilt) {
      for (OutChunk* chunk : rail.prebuilt->chunks()) {
        chunk_pool_.release(chunk);
      }
      rail.prebuilt.reset();
    }
    rail.driver->shutdown();
  }
}

util::Status Core::add_rail(std::unique_ptr<drivers::Driver> driver) {
  if (connected_) {
    return util::failed_precondition("add rails before connecting gates");
  }
  NMAD_RETURN_IF_ERROR(driver->init());
  const auto index = static_cast<RailIndex>(rails_.size());
  const drivers::DriverCaps& caps = driver->caps();

  RailInfo info;
  info.index = index;
  info.rdma = caps.supports_rdma;
  info.gather = caps.supports_gather;
  info.max_gather_segments = caps.max_gather_segments;
  info.rdv_threshold = caps.rdv_threshold;
  info.max_packet_bytes = caps.max_packet_bytes;
  info.latency_us = caps.latency_us;
  info.bandwidth_mbps = caps.bandwidth_mbps;

  driver->set_rx_handler([this, index](drivers::RxPacket&& packet) {
    on_packet(index, std::move(packet));
  });
  // Track-1 deposits bypass on_packet, yet a rail streaming one long
  // rendezvous body is the opposite of dead: count every bulk arrival as
  // liveness so the monitor does not kill a saturated rail mid-transfer.
  driver->set_bulk_rx_handler([this, index](drivers::PeerAddr) {
    if (!rail_health_on() || index >= rails_.size()) return;
    RailState& rs = rails_[index];
    rs.last_rx_us = world_.now();
    if (rs.health == RailHealth::kSuspect) rs.health = RailHealth::kAlive;
  });
  if (config_.reliability) {
    // Late retransmissions may land after their sink completed; the
    // orphan handler re-acks them instead of treating them as protocol
    // errors.
    driver->set_bulk_orphan_handler(
        [this](drivers::PeerAddr from, uint64_t cookie, size_t offset,
               size_t len) { on_bulk_orphan(from, cookie, offset, len); });
  }

  RailState state;
  state.driver = std::move(driver);
  state.info = info;
  rails_.push_back(std::move(state));
  return util::ok_status();
}

util::Expected<GateId> Core::connect(drivers::PeerAddr peer) {
  std::vector<RailIndex> all;
  for (RailIndex r = 0; r < rails_.size(); ++r) all.push_back(r);
  return connect(peer, std::move(all));
}

util::Expected<GateId> Core::connect(drivers::PeerAddr peer,
                                     std::vector<RailIndex> rails) {
  if (rails.empty()) return util::invalid_argument("gate needs >= 1 rail");
  if (peer_gate_.count(peer) != 0) {
    return util::already_exists("gate to this peer already open");
  }
  for (RailIndex r : rails) {
    if (r >= rails_.size()) return util::out_of_range("bad rail index");
  }
  connected_ = true;
  if (config_.rail_health && !health_monitors_started_) {
    start_health_monitors();
  }

  auto gate = std::make_unique<Gate>();
  gate->id = static_cast<GateId>(gates_.size());
  gate->peer = peer;
  gate->rails = std::move(rails);
  gate->rdv_threshold = SIZE_MAX;
  gate->max_packet = SIZE_MAX;
  for (RailIndex r : gate->rails) {
    const RailInfo& info = rails_[r].info;
    gate->max_packet = std::min(gate->max_packet, info.max_packet_bytes);
    if (info.rdma) {
      gate->has_rdma = true;
      gate->rdv_threshold =
          std::min(gate->rdv_threshold, info.rdv_threshold);
    }
  }
  if (config_.rdv_threshold_override != 0 && gate->has_rdma) {
    gate->rdv_threshold = config_.rdv_threshold_override;
  }
  if (config_.flow_control) {
    // Both endpoints start from the configured initial grant; everything
    // after that is negotiated through kCredit advertisements.
    gate->credit_limit_bytes = config_.initial_credit_bytes == 0
                                   ? UINT64_MAX
                                   : config_.initial_credit_bytes;
    gate->credit_limit_chunks = config_.initial_credit_msgs == 0
                                    ? UINT64_MAX
                                    : config_.initial_credit_msgs;
    gate->advertised_limit_bytes = gate->credit_limit_bytes;
    gate->advertised_limit_chunks = gate->credit_limit_chunks;
    gate->last_sent_limit_bytes = gate->advertised_limit_bytes;
    gate->last_sent_limit_chunks = gate->advertised_limit_chunks;
  }

  const GateId id = gate->id;
  peer_gate_[peer] = id;
  gates_.push_back(std::move(gate));
  return id;
}

Gate& Core::gate(GateId id) {
  NMAD_ASSERT(id < gates_.size());
  return *gates_[id];
}

const RailInfo& Core::rail_info(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail].info;
}

bool Core::rail_alive(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail].alive;
}

void Core::fail_rail(RailIndex rail) {
  NMAD_ASSERT(rail < rails_.size());
  kill_rail(rail);
}

RailHealth Core::rail_health_state(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail].health;
}

uint32_t Core::rail_epoch(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail].epoch;
}

const char* rail_health_name(RailHealth health) {
  switch (health) {
    case RailHealth::kAlive: return "alive";
    case RailHealth::kSuspect: return "suspect";
    case RailHealth::kDead: return "dead";
    case RailHealth::kProbation: return "probation";
  }
  return "?";
}

size_t Core::window_size(GateId id) { return gate(id).window.size(); }

util::Status Core::set_strategy(const std::string& name) {
  std::unique_ptr<Strategy> next = make_strategy(name);
  if (next == nullptr) {
    return util::not_found("no strategy registered as '" + name + "'");
  }
  strategy_ = std::move(next);
  config_.strategy = name;
  return util::ok_status();
}

void Core::poll() {
  for (auto& rail : rails_) rail.driver->poll();
}

// ---------------------------------------------------------------------------
// Collect layer: submission
// ---------------------------------------------------------------------------

size_t Core::max_eager_payload(const Gate& gate) const {
  NMAD_ASSERT(gate.max_packet > kPacketHeaderBytes + kFragHeaderBytes);
  return gate.max_packet - kPacketHeaderBytes - kFragHeaderBytes;
}

OutChunk* Core::new_chunk() { return chunk_pool_.acquire(); }

void Core::submit_chunk(Gate& gate, OutChunk* chunk) {
  node_.cpu().charge(config_.submit_chunk_us);
  if (chunk->prio == Priority::kHigh) chunk->flags |= kFlagPriority;
  if (flow_control() && !chunk->is_control() && !chunk->credit_charged) {
    gate.window_eager_bytes += chunk->payload.size();
  }
  gate.window.push_back(*chunk);
}

void Core::submit_rdv_block(Gate& gate, SendRequest* req, Tag tag,
                            SeqNum seq, size_t logical_offset,
                            util::ConstBytes block, size_t total,
                            const SendHints& hints) {
  BulkJob* job = bulk_pool_.acquire();
  job->cookie = next_cookie_++;
  job->gate = gate.id;
  job->body = block;
  job->sent = 0;
  job->acked = 0;
  job->rails.clear();
  job->pinned_rail = hints.pinned_rail;
  job->owner = req;
  req->add_part();
  gate.rdv_wait_cts[job->cookie] = job;
  ++stats_.rdv_started;

  OutChunk* rts = new_chunk();
  rts->kind = ChunkKind::kRts;
  rts->flags = 0;
  rts->tag = tag;
  rts->seq = seq;
  rts->offset = static_cast<uint32_t>(logical_offset);
  rts->total = static_cast<uint32_t>(total);
  rts->rdv_len = static_cast<uint32_t>(block.size());
  rts->cookie = job->cookie;
  rts->prio = Priority::kHigh;  // control data ships first
  rts->pinned_rail = hints.pinned_rail;
  rts->owner = nullptr;
  submit_chunk(gate, rts);
}

void Core::submit_eager_block(Gate& gate, SendRequest* req, Tag tag,
                              SeqNum seq, size_t logical_offset,
                              util::ConstBytes block, size_t total,
                              bool simple, const SendHints& hints) {
  const size_t max_payload = max_eager_payload(gate);
  size_t offset = 0;
  do {
    const size_t n = std::min(block.size() - offset, max_payload);
    OutChunk* chunk = new_chunk();
    chunk->kind = simple ? ChunkKind::kData : ChunkKind::kFrag;
    chunk->flags = 0;
    chunk->tag = tag;
    chunk->seq = seq;
    chunk->offset = static_cast<uint32_t>(logical_offset + offset);
    chunk->total = static_cast<uint32_t>(total);
    chunk->payload = block.subspan(offset, n);
    chunk->prio = hints.prio;
    chunk->pinned_rail = hints.pinned_rail;
    chunk->owner = req;
    req->add_part();
    if (logical_offset + offset + n == total) chunk->flags |= kFlagLast;
    submit_chunk(gate, chunk);
    offset += n;
  } while (offset < block.size());
}

SendRequest* Core::isend(GateId gate_id, Tag tag, const SourceLayout& src,
                         const SendHints& hints) {
  Gate& g = gate(gate_id);
  const SeqNum seq = g.send_seq[tag]++;
  SendRequest* req = send_pool_.acquire(gate_id, tag, seq, src.total());
  ++stats_.sends_submitted;
  if (g.failed) {
    // The peer is unreachable; fail fast instead of queueing forever.
    req->complete(g.fail_status);
    return req;
  }
  node_.cpu().charge(config_.submit_overhead_us);

  const size_t total = src.total();
  if (total == 0) {
    // Zero-length message: a bare data chunk carries the completion.
    OutChunk* chunk = new_chunk();
    chunk->kind = ChunkKind::kData;
    chunk->flags = kFlagLast;
    chunk->tag = tag;
    chunk->seq = seq;
    chunk->offset = 0;
    chunk->total = 0;
    chunk->payload = {};
    chunk->prio = hints.prio;
    chunk->pinned_rail = hints.pinned_rail;
    chunk->owner = req;
    req->add_part();
    submit_chunk(g, chunk);
    refill_all();
    return req;
  }

  // "Simple" messages (single block, fits one eager chunk) use the compact
  // data header; everything else uses offset-addressed fragments.
  const bool want_rdv =
      g.has_rdma && src.blocks().size() == 1 &&
      src.blocks()[0].memory.size() >= g.rdv_threshold;
  const bool simple = src.blocks().size() == 1 && !want_rdv &&
                      src.blocks()[0].memory.size() <= max_eager_payload(g);

  for (const SourceLayout::Block& block : src.blocks()) {
    if (block.memory.empty()) continue;
    bool rdv = g.has_rdma && block.memory.size() >= g.rdv_threshold;
    if (!rdv && flow_control() && g.has_rdma &&
        block.memory.size() >= kCreditRdvFloor &&
        g.eager_sent_bytes + g.window_eager_bytes + block.memory.size() >
            g.credit_limit_bytes) {
      // Graceful degradation: the eager path would exhaust the peer's
      // credit, so negotiate the block instead — the RTS is always
      // admissible and the body bypasses the receiver's eager budget.
      rdv = true;
      ++stats_.credit_rdv_degrades;
    }
    if (rdv) {
      submit_rdv_block(g, req, tag, seq, block.logical_offset, block.memory,
                       total, hints);
    } else {
      submit_eager_block(g, req, tag, seq, block.logical_offset,
                         block.memory, total, simple, hints);
    }
  }
  refill_all();
  return req;
}

SendRequest* Core::isend(GateId gate_id, Tag tag, util::ConstBytes data,
                         const SendHints& hints) {
  return isend(gate_id, tag, SourceLayout::contiguous(data), hints);
}

RecvRequest* Core::irecv(GateId gate_id, Tag tag, DestLayout dest) {
  Gate& g = gate(gate_id);
  const SeqNum seq = g.recv_seq[tag]++;
  RecvRequest* req = recv_pool_.acquire(gate_id, tag, seq, std::move(dest));
  ++stats_.recvs_submitted;
  if (g.failed) {
    req->complete(g.fail_status);
    return req;
  }
  node_.cpu().charge(config_.submit_overhead_us);

  const MsgKey key{tag, seq};
  g.active_recv[key] = req;

  // Replay anything that arrived before this receive was posted.
  auto it = g.unexpected.find(key);
  if (it != g.unexpected.end()) {
    UnexpectedMsg msg = std::move(it->second);
    g.unexpected.erase(it);
    if (msg.peer_cancelled) {
      // The sender withdrew this message before we matched it.
      g.active_recv.erase(key);
      req->complete(util::cancelled("sender withdrew the message"));
      return req;
    }
    size_t drained_bytes = 0;
    size_t drained_chunks = 0;
    for (const StoredFrag& frag : msg.frags) {
      if (!frag.data.view().empty()) {
        drained_bytes += frag.data.view().size();
        ++drained_chunks;
      }
      deliver_eager(g, req, frag.offset, frag.total, frag.data.view());
    }
    if (drained_bytes > 0) rx_store_discharge(g, drained_bytes, drained_chunks);
    for (const StoredRts& rts : msg.rts) {
      start_rdv_recv(g, req, rts.len, rts.offset, rts.total, rts.cookie);
    }
    refill_all();  // replay may have queued CTS chunks
  }
  return req;
}

RecvRequest* Core::irecv(GateId gate_id, Tag tag,
                         util::MutableBytes buffer) {
  return irecv(gate_id, tag, DestLayout::contiguous(buffer));
}

Core::PeekResult Core::peek_unexpected(GateId gate_id, Tag tag) {
  Gate& g = gate(gate_id);
  // The next irecv on this tag will be assigned the current counter value.
  SeqNum next_seq = 0;
  if (auto it = g.recv_seq.find(tag); it != g.recv_seq.end()) {
    next_seq = it->second;
  }
  auto it = g.unexpected.find(MsgKey{tag, next_seq});
  if (it == g.unexpected.end()) return {};
  PeekResult result;
  result.matched = true;
  for (const StoredFrag& frag : it->second.frags) {
    result.total_known = true;
    result.total_bytes = frag.total;
  }
  for (const StoredRts& rts : it->second.rts) {
    result.total_known = true;
    result.total_bytes = rts.total;
  }
  return result;
}

void Core::release(Request* req) {
  NMAD_ASSERT(req != nullptr);
  NMAD_ASSERT_MSG(req->done(), "release of an incomplete request");
  // A deadline still ticking on a released request would fire on pooled
  // memory reused by a future request.
  cancel_deadline(req);
  if (req->kind() == Request::Kind::kSend) {
    send_pool_.release(static_cast<SendRequest*>(req));
  } else {
    recv_pool_.release(static_cast<RecvRequest*>(req));
  }
}

// ---------------------------------------------------------------------------
// Scheduling layer: just-in-time election
// ---------------------------------------------------------------------------

void Core::refill_all() {
  for (RailIndex r = 0; r < rails_.size(); ++r) {
    refill_rail(r);
    if (!rails_[r].driver->tx_idle()) maybe_prebuild(r);
  }
#ifdef NMAD_VALIDATE
  validate_invariants();
#endif
}

// §3.2 alternative policy: while the NIC is busy and the backlog is deep
// enough, run the optimizer early and park the resulting packet.
void Core::maybe_prebuild(RailIndex rail) {
  if (config_.prebuild_backlog_chunks == 0) return;
  RailState& rs = rails_[rail];
  if (!rs.alive || rs.prebuilt) return;
  const size_t n = gates_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t gi = (rs.rr_cursor + k) % n;
    Gate& g = *gates_[gi];
    if (!g.has_rail(rail) || g.failed) continue;
    if (g.window.size() < config_.prebuild_backlog_chunks) continue;
    if (reliable() && g.pending_pkts.size() >= config_.reliability_window) {
      continue;
    }
    const size_t max_bytes = std::min(g.max_packet, rs.info.max_packet_bytes);
    const size_t max_segments =
        rs.info.gather ? rs.info.max_gather_segments : 0;
    auto builder = std::make_shared<PacketBuilder>(
        max_bytes, max_segments, config_.wire_checksum,
        /*reserve_seq=*/reliable());
    const size_t taken = strategy_->pack(*this, g, rs.info, *builder);
    if (taken == 0) continue;
    // The election cost is paid now, overlapped with the NIC's current
    // transmission instead of delaying the next one.
    node_.cpu().charge(config_.elect_overhead_us);
    ++stats_.packets_prebuilt;
    rs.prebuilt = std::move(builder);
    rs.prebuilt_gate = g.id;
    rs.rr_cursor = (gi + 1) % n;
    return;
  }
}

void Core::refill_rail(RailIndex rail) {
  RailState& rs = rails_[rail];
  if (!rs.alive) return;
  if (!rs.driver->tx_idle()) return;

  // A pre-armed packet goes out instantly, no election on the idle path.
  if (rs.prebuilt) {
    std::shared_ptr<PacketBuilder> builder = std::move(rs.prebuilt);
    rs.prebuilt.reset();
    issue_packet(gate(rs.prebuilt_gate), rail, std::move(builder),
                 /*charge_election=*/false);
    return;
  }
  const size_t n = gates_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t gi = (rs.rr_cursor + k) % n;
    Gate& g = *gates_[gi];
    if (!g.has_rail(rail) || g.failed) continue;

    if (reliable()) {
      // Lost traffic first: the receiver is stalled on it. A packet
      // retransmit may ride any alive rail of the gate (track-0 packets
      // fit every rail's frame limit by construction); bulk slices only
      // ride rails their CTS granted.
      while (!g.retx_queue.empty()) {
        const uint32_t seq = g.retx_queue.front();
        auto it = g.pending_pkts.find(seq);
        if (it == g.pending_pkts.end() || !it->second.queued_retx) {
          g.retx_queue.pop_front();  // retired while queued
          continue;
        }
        g.retx_queue.pop_front();
        rs.rr_cursor = (gi + 1) % n;
        retransmit_packet(g, rail, seq);
        return;
      }
      for (size_t b = 0; b < g.bulk_retx.size(); ++b) {
        const BulkKey key = g.bulk_retx[b];
        auto it = g.pending_bulk.find(key);
        if (it == g.pending_bulk.end() || !it->second.queued_retx) {
          g.bulk_retx.erase(g.bulk_retx.begin() +
                            static_cast<ptrdiff_t>(b));
          --b;
          continue;
        }
        if (!rs.info.rdma || !it->second.job->allows_rail(rail)) continue;
        g.bulk_retx.erase(g.bulk_retx.begin() + static_cast<ptrdiff_t>(b));
        rs.rr_cursor = (gi + 1) % n;
        retransmit_bulk(g, rail, key);
        return;
      }
    }

    // Granted rendezvous bodies take precedence: the receiver is waiting.
    Strategy::BulkDecision decision = strategy_->next_bulk(*this, g, rs.info);
    if (decision.job != nullptr && decision.bytes > 0) {
      rs.rr_cursor = (gi + 1) % n;
      issue_bulk(g, rail, decision.job, decision.bytes);
      return;
    }

    if (!g.window.empty()) {
      if (reliable() &&
          g.pending_pkts.size() >= config_.reliability_window) {
        continue;  // sliding window full: wait for acks
      }
      const size_t max_bytes =
          std::min(g.max_packet, rs.info.max_packet_bytes);
      const size_t max_segments =
          rs.info.gather ? rs.info.max_gather_segments : 0;
      auto builder = std::make_shared<PacketBuilder>(
          max_bytes, max_segments, config_.wire_checksum,
          /*reserve_seq=*/reliable());
      const size_t taken = strategy_->pack(*this, g, rs.info, *builder);
      if (taken > 0) {
        rs.rr_cursor = (gi + 1) % n;
        issue_packet(g, rail, std::move(builder));
        return;
      }
    }
  }
}

void Core::issue_packet(Gate& gate, RailIndex rail,
                        std::shared_ptr<PacketBuilder> builder,
                        bool charge_election) {
  // Piggyback any pending acknowledgement on this packet — a free ride,
  // where a standalone ack packet would cost a header and an election.
  if (reliable()) maybe_inject_ack(gate, *builder);
  // Likewise a credit advertisement, whenever the limits grew.
  if (flow_control()) maybe_inject_credit(gate, *builder);
  // And a liveness beacon when this rail's heartbeat to the peer is due.
  if (rail_health_on()) maybe_inject_heartbeat(gate, rail, *builder);

  // The optimizer just inspected the window and synthesized a packet;
  // charge its cost (§5.1: "extra operations on the critical path") —
  // unless it was already paid at prebuild time.
  if (charge_election) node_.cpu().charge(config_.elect_overhead_us);
  ++stats_.packets_sent;
  stats_.chunks_sent += builder->chunk_count();
  if (builder->chunk_count() > 1) {
    stats_.chunks_aggregated += builder->chunk_count();
  }

  // Payload-bearing packets get a sequence number and enter the unacked
  // window; pure ack/credit/heartbeat packets are fire-and-forget
  // (acknowledging an ack would ping-pong forever, credits are
  // self-healing — the next advertisement supersedes a lost one — and a
  // lost heartbeat is just silence the next beacon or probe fills in).
  bool track = false;
  if (reliable()) {
    for (const OutChunk* chunk : builder->chunks()) {
      if (chunk->kind != ChunkKind::kAck &&
          chunk->kind != ChunkKind::kCredit &&
          chunk->kind != ChunkKind::kHeartbeat) {
        track = true;
        break;
      }
    }
  }
  uint32_t pkt_seq = 0;
  if (track) {
    pkt_seq = gate.next_pkt_seq++;
    builder->mark_reliable(pkt_seq);
  }

  const util::SegmentVec& segments = builder->finalize();

  if (track) {
    // Flatten the wire image now: retransmission must not depend on the
    // application buffers or the builder staying untouched.
    PendingPacket& p = gate.pending_pkts[pkt_seq];
    p.wire = std::make_shared<util::ByteBuffer>();
    p.wire->resize(segments.total_bytes());
    segments.gather_into(p.wire->view());
    for (OutChunk* chunk : builder->chunks()) {
      if (chunk->owner != nullptr && !chunk->is_control()) {
        p.owners.push_back(chunk->owner);
      }
    }
    p.last_rail = rail;
    p.timeout_us = config_.ack_timeout_us;
    arm_packet_timer(gate, pkt_seq);
  }

  const bool defer_completion = reliable();
  const util::Status st = rails_[rail].driver->send_packet(
      gate.peer, segments, [this, builder, defer_completion]() {
        for (OutChunk* chunk : builder->chunks()) {
          // Under reliability, part_done waits for the ack, not tx-done.
          if (!defer_completion && chunk->owner != nullptr &&
              !chunk->is_control()) {
            chunk->owner->part_done();
          }
          chunk_pool_.release(chunk);
        }
        refill_all();
      });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected packet send");
}

void Core::issue_bulk(Gate& gate, RailIndex rail, BulkJob* job,
                      size_t bytes) {
  NMAD_ASSERT(bytes > 0 && bytes <= job->remaining());
  node_.cpu().charge(config_.elect_overhead_us);
  ++stats_.bulk_sends;
  stats_.bulk_bytes += bytes;

  const size_t offset = job->sent;
  job->sent += bytes;
  if (job->all_sent()) {
    gate.ready_bulk.remove(*job);  // nothing left to elect
  }

  if (reliable()) {
    const BulkKey key{job->cookie, offset};
    PendingBulk& p = gate.pending_bulk[key];
    p.job = job;
    p.offset = offset;
    p.len = bytes;
    p.last_rail = rail;
    // Large slices hold the wire longer; budget their transfer time on
    // top of the base deadline so they don't time out spuriously.
    p.timeout_us =
        config_.ack_timeout_us +
        2.0 * simnet::wire_time(static_cast<double>(bytes),
                                rails_[rail].info.bandwidth_mbps);
    arm_bulk_timer(gate, key);
  }

  const bool defer_completion = reliable();
  util::SegmentVec segments;
  segments.add(job->body.subspan(offset, bytes));
  const util::Status st = rails_[rail].driver->send_bulk(
      gate.peer, job->cookie, offset, segments,
      [this, job, bytes, defer_completion]() {
        if (!defer_completion) {
          job->acked += bytes;
          if (job->all_sent() && job->all_acked()) {
            SendRequest* owner = job->owner;
            bulk_pool_.release(job);
            owner->part_done();
          }
        }
        refill_all();
      });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected bulk send");
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Core::on_packet(RailIndex rail, drivers::RxPacket&& packet) {
  auto it = peer_gate_.find(packet.from);
  NMAD_ASSERT_MSG(it != peer_gate_.end(), "packet from unknown peer");
  if (rail_health_on()) {
    // Anything heard on the rail — from any peer, even a packet that will
    // be dropped as corrupt — is physical proof the link carries traffic.
    RailState& rs = rails_[rail];
    rs.last_rx_us = world_.now();
    if (rs.health == RailHealth::kSuspect) rs.health = RailHealth::kAlive;
  }
  Gate& g = *gates_[it->second];
  if (g.failed) return;  // peer already declared unreachable
  g.last_heard_rail = rail;  // a delivering rail: best ack return path
  ++stats_.packets_received;
  node_.cpu().charge(config_.parse_packet_us);

  PacketMeta meta;
  bool classified = false;  // packet-level framing inspected
  bool drop = false;        // duplicate or unverifiable: skip every chunk
  bool processed = false;   // at least one chunk acted on
  const util::Status st = decode_packet(
      packet.bytes.view(), &meta,
      [this, &g, rail, &meta, &classified, &drop,
       &processed](const WireChunk& chunk) {
        if (!classified) {
          classified = true;
          if (reliable()) {
            if (!meta.checksummed) {
              // A flipped checksum-flag bit would disable verification;
              // reliable-mode peers always checksum, so refuse the
              // packet and let the retransmit timer recover it.
              drop = true;
              ++stats_.packets_rejected;
            } else if (meta.reliable && reliable_rx_register(g, meta.seq)) {
              drop = true;  // duplicate: already delivered, just re-ack
              ++stats_.packets_duplicate;
            }
          }
        }
        if (drop) return;
        processed = true;
        node_.cpu().charge(config_.parse_chunk_us);
        ++stats_.chunks_received;
        switch (chunk.kind) {
          case ChunkKind::kData:
          case ChunkKind::kFrag:
            handle_payload_chunk(g, chunk);
            break;
          case ChunkKind::kRts:
            handle_rts(g, chunk);
            break;
          case ChunkKind::kCts:
            handle_cts(g, chunk);
            break;
          case ChunkKind::kAck:
            handle_ack(g, chunk);
            break;
          case ChunkKind::kCredit:
            handle_credit(g, chunk);
            break;
          case ChunkKind::kHeartbeat:
            handle_heartbeat(g, rail, chunk);
            break;
        }
      });
  if (!st.is_ok()) {
    // Under reliability a corrupt packet fails checksum verification
    // before any chunk reaches the sink; drop it and let the sender
    // retransmit. Decode errors on verified content — or any error
    // without the reliability layer — remain hard protocol bugs.
    NMAD_ASSERT_MSG(reliable() && !processed, "malformed packet on wire");
    ++stats_.packets_rejected;
    return;
  }
  if (g.failed) return;  // a chunk handler may have torn the gate down
  if (reliable() && meta.reliable && meta.checksummed) schedule_ack(g);
#ifdef NMAD_VALIDATE
  validate_invariants();
#endif
}

void Core::handle_payload_chunk(Gate& gate, const WireChunk& chunk) {
  if (flow_control() && !chunk.payload.empty()) {
    // Heard-side credit accounting, the mirror of the sender's charge.
    // Runs before any tombstone check so the two ends stay in step even
    // for payload that is about to be dropped.
    gate.eager_heard_bytes += chunk.payload.size();
    gate.eager_heard_chunks += 1;
  }
  const MsgKey key{chunk.tag, chunk.seq};
  if (gate.cancelled_recv.count(key) != 0) {
    // The receive was cancelled; its data has nowhere to go.
    ++stats_.cancelled_payload_dropped;
    return;
  }
  auto it = gate.active_recv.find(key);
  if (it == gate.active_recv.end()) {
    auto ue = gate.unexpected.find(key);
    if (ue != gate.unexpected.end() && ue->second.peer_cancelled) {
      // The sender withdrew the message; this is a straggler.
      ++stats_.cancelled_payload_dropped;
      return;
    }
    // Unexpected: copy the payload aside (real host work) until a
    // matching receive is posted.
    ++stats_.unexpected_chunks;
    node_.cpu().charge_memcpy(chunk.payload.size());
    StoredFrag frag;
    frag.kind = chunk.kind;
    frag.flags = chunk.flags;
    frag.offset = chunk.offset;
    frag.total = chunk.total;
    frag.data.append(chunk.payload);
    gate.unexpected[key].frags.push_back(std::move(frag));
    if (!chunk.payload.empty()) {
      rx_store_charge(gate, chunk.payload.size(), 1);
    }
    return;
  }
  deliver_eager(gate, it->second, chunk.offset, chunk.total, chunk.payload);
}

void Core::deliver_eager(Gate& gate, RecvRequest* req, uint32_t offset,
                         uint32_t total, util::ConstBytes payload) {
  if (!req->set_total(total)) {
    finish_recv_if_done(gate, req);
    return;
  }
  if (payload.empty()) {
    recv_add_bytes(gate, req, 0);
    return;
  }
  // Eager data is copied from the NIC buffer into the destination layout:
  // the one unavoidable copy of eager protocols. Content moves now (the
  // source view dies with the packet); completion is accounted when the
  // modelled memcpy finishes. The deferred event re-looks the receive up
  // by key — it may be cancelled (and even released) while the modelled
  // memcpy is in flight.
  req->layout_.scatter(offset, payload);
  const simnet::SimTime done_at = node_.cpu().charge_memcpy(payload.size());
  const size_t n = payload.size();
  const GateId gid = gate.id;
  const MsgKey key{req->tag(), req->seq()};
  world_.at(done_at, [this, gid, key, n]() {
    Gate& g = this->gate(gid);
    auto it = g.active_recv.find(key);
    if (it == g.active_recv.end()) return;
    recv_add_bytes(g, it->second, n);
  });
}

void Core::handle_rts(Gate& gate, const WireChunk& chunk) {
  const MsgKey key{chunk.tag, chunk.seq};
  if ((chunk.flags & kFlagCancel) != 0) {
    // The sender withdrew the whole message (tag, seq).
    auto ar = gate.active_recv.find(key);
    if (ar != gate.active_recv.end()) {
      RecvRequest* req = ar->second;
      for (auto rv = gate.rdv_recv.begin(); rv != gate.rdv_recv.end();) {
        if (rv->second.request != req) {
          ++rv;
          continue;
        }
        for (uint8_t r : rv->second.rails) {
          rails_[r].driver->cancel_bulk_recv(rv->first);
        }
        rv = gate.rdv_recv.erase(rv);
      }
      gate.active_recv.erase(ar);
      // The payload may still be behind the cancel notice (another rail,
      // or a retransmission): tombstone the key so a late arrival is
      // dropped instead of parked forever in the unexpected store.
      gate.cancelled_recv.insert(key);
      req->complete(util::cancelled("sender withdrew the message"));
      return;
    }
    if (gate.cancelled_recv.count(key) != 0) return;  // cancelled here too
    // Not matched yet: drop whatever is parked and leave a tombstone so
    // the future irecv learns of the withdrawal.
    UnexpectedMsg& msg = gate.unexpected[key];
    size_t bytes = 0;
    size_t chunks = 0;
    for (const StoredFrag& frag : msg.frags) {
      if (!frag.data.view().empty()) {
        bytes += frag.data.view().size();
        ++chunks;
      }
    }
    if (bytes > 0) rx_store_discharge(gate, bytes, chunks);
    msg.frags.clear();
    msg.rts.clear();
    msg.peer_cancelled = true;
    return;
  }
  if (gate.cancelled_recv.count(key) != 0) {
    // The receive was cancelled: refuse the grant so the sender unwinds.
    send_cancel_cts(gate, chunk.tag, chunk.seq, chunk.cookie);
    refill_all();
    return;
  }
  auto it = gate.active_recv.find(key);
  if (it == gate.active_recv.end()) {
    auto ue = gate.unexpected.find(key);
    if (ue != gate.unexpected.end() && ue->second.peer_cancelled) {
      // The sender withdrew the message and this RTS straggled in behind
      // the cancel notice (another rail, or a retransmission): drop it
      // rather than park it in the tombstoned entry.
      ++stats_.cancelled_payload_dropped;
      return;
    }
    ++stats_.unexpected_chunks;
    StoredRts rts;
    rts.len = chunk.len;
    rts.offset = chunk.offset;
    rts.total = chunk.total;
    rts.cookie = chunk.cookie;
    gate.unexpected[key].rts.push_back(rts);
    return;
  }
  start_rdv_recv(gate, it->second, chunk.len, chunk.offset, chunk.total,
                 chunk.cookie);
}

void Core::start_rdv_recv(Gate& gate, RecvRequest* req, uint32_t len,
                          uint32_t offset, uint32_t total, uint64_t cookie) {
  if (gate.failed) return;  // unexpected-replay after a gate failure
  if (!req->set_total(total)) {
    // Truncation: no CTS is ever sent; the request carries the error.
    finish_recv_if_done(gate, req);
    return;
  }

  RdvRecv rec;
  rec.request = req;
  rec.len = len;
  rec.offset = offset;
  util::MutableBytes region = req->layout_.contiguous_region(offset, len);
  if (region.empty() && len > 0) {
    // Destination is scattered: receive through a bounce buffer, scatter
    // on completion (costs a modelled memcpy — zero-copy only when the
    // block lands contiguously, exactly the Figure 4 distinction).
    rec.bounce.resize(len);
    region = rec.bounce.view();
  }
  const GateId gate_id = gate.id;
  rec.sink = std::make_unique<simnet::BulkSink>(
      cookie, region, len, [this, gate_id, cookie]() {
        // Defer: the sink is still on the delivery stack right now.
        world_.after(0.0, [this, gate_id, cookie]() {
          on_bulk_recv_complete(gate_id, cookie);
        });
      });
  if (reliable()) {
    // Every deposited slice is acknowledged back to the sender, which
    // holds its copy until then.
    rec.sink->set_on_deposit([this, gate_id, cookie](size_t dep_offset,
                                                     size_t dep_len) {
      Gate& g2 = this->gate(gate_id);
      if (g2.failed) return;
      BulkAck ack;
      ack.cookie = cookie;
      ack.offset = static_cast<uint32_t>(dep_offset);
      ack.len = static_cast<uint32_t>(dep_len);
      g2.pending_bulk_acks.push_back(ack);
      schedule_ack(g2);
    });
  }

  std::vector<uint8_t> posted_rails;
  for (RailIndex r : gate.rails) {
    if (!rails_[r].info.rdma || !rails_[r].alive) continue;
    const util::Status st = rails_[r].driver->post_bulk_recv(rec.sink.get());
    NMAD_ASSERT_MSG(st.is_ok(), "bulk post failed on RDMA rail");
    posted_rails.push_back(static_cast<uint8_t>(r));
  }
  if (posted_rails.empty()) {
    NMAD_ASSERT_MSG(reliable(), "RTS received but no RDMA rail available");
    fail_gate(gate, util::closed("no alive RDMA rail for rendezvous"));
    return;
  }
  rec.rails = posted_rails;
  gate.rdv_recv.emplace(cookie, std::move(rec));

  // Grant: the CTS is an ordinary control chunk — it rides the window and
  // may be aggregated with outgoing data (key to the §5.3 strategy).
  OutChunk* cts = new_chunk();
  cts->kind = ChunkKind::kCts;
  cts->flags = 0;
  cts->tag = req->tag();
  cts->seq = req->seq();
  cts->cookie = cookie;
  cts->cts_rails = std::move(posted_rails);
  cts->prio = Priority::kHigh;
  cts->owner = nullptr;
  submit_chunk(gate, cts);
  refill_all();
}

void Core::on_bulk_recv_complete(GateId gate_id, uint64_t cookie) {
  Gate& g = gate(gate_id);
  auto it = g.rdv_recv.find(cookie);
  if (it == g.rdv_recv.end()) {
    // The gate failed between the sink completing and this deferred
    // event; the sink was already cancelled.
    NMAD_ASSERT(g.failed);
    return;
  }
  RdvRecv rec = std::move(it->second);
  g.rdv_recv.erase(it);
  // Late duplicate slices must be re-acked even though the sink is gone.
  if (reliable()) g.completed_bulk.insert(cookie);

  for (uint8_t r : rec.rails) {
    rails_[r].driver->cancel_bulk_recv(cookie);
  }

  RecvRequest* req = rec.request;
  const size_t len = rec.len;
  if (!rec.bounce.empty()) {
    // Bounce path: scatter into the real destination at memcpy cost. The
    // deferred completion re-looks the receive up by key (see
    // deliver_eager for why).
    req->layout_.scatter(rec.offset, rec.bounce.view());
    const simnet::SimTime done_at = node_.cpu().charge_memcpy(len);
    const MsgKey key{req->tag(), req->seq()};
    world_.at(done_at, [this, gate_id, key, len]() {
      Gate& g2 = this->gate(gate_id);
      auto ar = g2.active_recv.find(key);
      if (ar == g2.active_recv.end()) return;
      recv_add_bytes(g2, ar->second, len);
    });
  } else {
    recv_add_bytes(g, req, len);
  }
}

void Core::recv_add_bytes(Gate& gate, RecvRequest* req, size_t n) {
  req->add_received(n);
  finish_recv_if_done(gate, req);
}

void Core::finish_recv_if_done(Gate& gate, RecvRequest* req) {
  if (!req->done()) return;
  gate.active_recv.erase(MsgKey{req->tag(), req->seq()});
}

void Core::debug_dump(std::FILE* out) const {
  std::fprintf(out, "=== nmad core on node %u (strategy %s) ===\n",
               node_.id(), std::string(strategy_->name()).c_str());
  for (size_t r = 0; r < rails_.size(); ++r) {
    std::fprintf(out, "rail %zu: %s tx_idle=%d prebuilt=%d alive=%d", r,
                 rails_[r].driver->caps().name.c_str(),
                 rails_[r].driver->tx_idle() ? 1 : 0,
                 rails_[r].prebuilt ? 1 : 0, rails_[r].alive ? 1 : 0);
    if (config_.rail_health) {
      const RailState& rs = rails_[r];
      std::fprintf(out,
                   " health=%s epoch=%u peer_epoch=%u heard=%.0fus_ago",
                   rail_health_name(rs.health), rs.epoch, rs.peer_epoch,
                   world_.now() - rs.last_rx_us);
      if (rs.health == RailHealth::kProbation) {
        std::fprintf(out, " probation=%u/%u", rs.probation_hits,
                     config_.probation_replies);
      }
    }
    std::fprintf(out, "\n");
  }
  for (const auto& gate : gates_) {
    std::fprintf(out,
                 "gate %u → peer %u: window=%zu ready_bulk=%zu "
                 "rdv_wait_cts=%zu active_recv=%zu unexpected=%zu "
                 "rdv_recv=%zu pending_pkts=%zu pending_bulk=%zu "
                 "failed=%d\n",
                 gate->id, gate->peer, gate->window.size(),
                 gate->ready_bulk.size(), gate->rdv_wait_cts.size(),
                 gate->active_recv.size(), gate->unexpected.size(),
                 gate->rdv_recv.size(), gate->pending_pkts.size(),
                 gate->pending_bulk.size(), gate->failed ? 1 : 0);
    if (config_.flow_control) {
      std::fprintf(
          out,
          "  credit: sent=%llu/%llu limit=%llu/%llu heard=%llu/%llu "
          "advertised=%llu/%llu stored=%zu stalled=%d\n",
          static_cast<unsigned long long>(gate->eager_sent_bytes),
          static_cast<unsigned long long>(gate->eager_sent_chunks),
          static_cast<unsigned long long>(gate->credit_limit_bytes),
          static_cast<unsigned long long>(gate->credit_limit_chunks),
          static_cast<unsigned long long>(gate->eager_heard_bytes),
          static_cast<unsigned long long>(gate->eager_heard_chunks),
          static_cast<unsigned long long>(gate->advertised_limit_bytes),
          static_cast<unsigned long long>(gate->advertised_limit_chunks),
          gate->stored_bytes, gate->credit_stalled ? 1 : 0);
      // Outstanding grant: what the peer may still send against the last
      // advertisement — the receiver-side exposure this gate represents.
      const uint64_t grant_bytes =
          gate->advertised_limit_bytes > gate->eager_heard_bytes
              ? gate->advertised_limit_bytes - gate->eager_heard_bytes
              : 0;
      const uint64_t grant_chunks =
          gate->advertised_limit_chunks > gate->eager_heard_chunks
              ? gate->advertised_limit_chunks - gate->eager_heard_chunks
              : 0;
      std::fprintf(out,
                   "  grants: outstanding=%llu bytes / %llu chunks "
                   "window_eager=%zu probe_armed=%d update_needed=%d\n",
                   static_cast<unsigned long long>(grant_bytes),
                   static_cast<unsigned long long>(grant_chunks),
                   gate->window_eager_bytes,
                   gate->credit_probe_armed ? 1 : 0,
                   gate->credit_update_needed ? 1 : 0);
    }
    if (config_.reliability &&
        (!gate->pending_pkts.empty() || !gate->pending_bulk.empty())) {
      // Retransmit state: how deep into backoff each kind of in-flight
      // traffic is, and how much of it is queued waiting for a rail.
      uint32_t pkt_retries = 0;
      double pkt_timeout = 0.0;
      size_t pkt_queued = 0;
      for (const auto& [seq, p] : gate->pending_pkts) {
        pkt_retries = std::max(pkt_retries, p.retries);
        pkt_timeout = std::max(pkt_timeout, p.timeout_us);
        if (p.queued_retx) ++pkt_queued;
      }
      uint32_t bulk_retries = 0;
      double bulk_timeout = 0.0;
      size_t bulk_queued = 0;
      for (const auto& [key, p] : gate->pending_bulk) {
        bulk_retries = std::max(bulk_retries, p.retries);
        bulk_timeout = std::max(bulk_timeout, p.timeout_us);
        if (p.queued_retx) ++bulk_queued;
      }
      std::fprintf(out,
                   "  retx: pkts=%zu (queued=%zu retries<=%u "
                   "timeout<=%.0fus) bulk=%zu (queued=%zu retries<=%u "
                   "timeout<=%.0fus) floor=%u seen=%zu\n",
                   gate->pending_pkts.size(), pkt_queued, pkt_retries,
                   pkt_timeout, gate->pending_bulk.size(), bulk_queued,
                   bulk_retries, bulk_timeout, gate->recv_floor,
                   gate->recv_seen.size());
    }
  }
  std::fprintf(out,
               "stats: sends=%llu recvs=%llu packets=%llu/%llu "
               "chunks=%llu agg=%llu rdv=%llu bulk=%llu prebuilt=%llu "
               "unexpected=%llu\n",
               static_cast<unsigned long long>(stats_.sends_submitted),
               static_cast<unsigned long long>(stats_.recvs_submitted),
               static_cast<unsigned long long>(stats_.packets_sent),
               static_cast<unsigned long long>(stats_.packets_received),
               static_cast<unsigned long long>(stats_.chunks_sent),
               static_cast<unsigned long long>(stats_.chunks_aggregated),
               static_cast<unsigned long long>(stats_.rdv_started),
               static_cast<unsigned long long>(stats_.bulk_sends),
               static_cast<unsigned long long>(stats_.packets_prebuilt),
               static_cast<unsigned long long>(stats_.unexpected_chunks));
  if (config_.reliability) {
    std::fprintf(
        out,
        "reliability: timeouts=%llu retx=%llu rejected=%llu dup=%llu "
        "acks=%llu piggy=%llu bulk_to=%llu bulk_retx=%llu "
        "rails_failed=%llu gates_failed=%llu\n",
        static_cast<unsigned long long>(stats_.packet_timeouts),
        static_cast<unsigned long long>(stats_.packets_retransmitted),
        static_cast<unsigned long long>(stats_.packets_rejected),
        static_cast<unsigned long long>(stats_.packets_duplicate),
        static_cast<unsigned long long>(stats_.acks_sent),
        static_cast<unsigned long long>(stats_.acks_piggybacked),
        static_cast<unsigned long long>(stats_.bulk_timeouts),
        static_cast<unsigned long long>(stats_.bulk_retransmitted),
        static_cast<unsigned long long>(stats_.rails_failed),
        static_cast<unsigned long long>(stats_.gates_failed));
  }
  if (config_.rail_health) {
    std::fprintf(
        out,
        "health: beacons=%llu/%llu probes=%llu replies=%llu fenced=%llu "
        "suspected=%llu revived=%llu demoted=%llu\n",
        static_cast<unsigned long long>(stats_.heartbeats_sent),
        static_cast<unsigned long long>(stats_.heartbeats_received),
        static_cast<unsigned long long>(stats_.probes_sent),
        static_cast<unsigned long long>(stats_.probe_replies_sent),
        static_cast<unsigned long long>(stats_.heartbeats_fenced),
        static_cast<unsigned long long>(stats_.rails_suspected),
        static_cast<unsigned long long>(stats_.rails_revived),
        static_cast<unsigned long long>(stats_.probation_demotions));
  }
  if (stats_.drains_started != 0 || stats_.gates_closed != 0) {
    std::fprintf(out, "drain: started=%llu completed=%llu gates_closed=%llu\n",
                 static_cast<unsigned long long>(stats_.drains_started),
                 static_cast<unsigned long long>(stats_.drains_completed),
                 static_cast<unsigned long long>(stats_.gates_closed));
  }
  if (config_.flow_control) {
    std::fprintf(
        out,
        "flow: grants=%llu stalls=%llu probes=%llu rdv_degrades=%llu "
        "rx_stored=%llu rx_hwm=%llu\n",
        static_cast<unsigned long long>(stats_.credit_grants),
        static_cast<unsigned long long>(stats_.credit_stalls),
        static_cast<unsigned long long>(stats_.credit_probes),
        static_cast<unsigned long long>(stats_.credit_rdv_degrades),
        static_cast<unsigned long long>(stats_.rx_stored_bytes),
        static_cast<unsigned long long>(stats_.rx_stored_hwm));
  }
  if (stats_.sends_cancelled != 0 || stats_.recvs_cancelled != 0 ||
      stats_.deadlines_exceeded != 0 || stats_.cancelled_payload_dropped != 0) {
    std::fprintf(
        out,
        "cancel: sends=%llu recvs=%llu deadlines=%llu dropped=%llu\n",
        static_cast<unsigned long long>(stats_.sends_cancelled),
        static_cast<unsigned long long>(stats_.recvs_cancelled),
        static_cast<unsigned long long>(stats_.deadlines_exceeded),
        static_cast<unsigned long long>(stats_.cancelled_payload_dropped));
  }
}

void Core::handle_cts(Gate& gate, const WireChunk& chunk) {
  if ((chunk.flags & kFlagCancel) != 0) {
    handle_cancel_cts(gate, chunk);
    return;
  }
  auto it = gate.rdv_wait_cts.find(chunk.cookie);
  if (it == gate.rdv_wait_cts.end()) {
    // A grant racing our own withdrawal: consume the tombstone.
    if (gate.cancelled_rdv.erase(chunk.cookie) > 0) return;
    NMAD_ASSERT_MSG(false, "CTS for unknown cookie");
    return;
  }
  BulkJob* job = it->second;
  gate.rdv_wait_cts.erase(it);

  // Keep only rails this side can actually drive (and the pinned rail, if
  // the application constrained the message to one). The grant itself is
  // recorded before the aliveness filter: the receiver's sinks stay
  // posted through a blackout, so a granted rail that dies and later
  // revives can be restored to the job (revive_rail).
  job->rails.clear();
  job->granted_rails.clear();
  for (uint8_t r : chunk.rails) {
    if (r >= rails_.size() || !rails_[r].info.rdma || !gate.has_rail(r)) {
      continue;
    }
    if (job->pinned_rail != kAnyRail && job->pinned_rail != r) continue;
    job->granted_rails.push_back(r);
    if (!rails_[r].alive) continue;
    job->rails.push_back(r);
  }
  if (job->rails.empty()) {
    NMAD_ASSERT_MSG(reliable(), "CTS grants no usable rail");
    const util::Status status =
        util::closed("no usable rail for granted rendezvous");
    job->owner->complete(status);
    bulk_pool_.release(job);
    fail_gate(gate, status);
    return;
  }
  gate.ready_bulk.push_back(*job);
  refill_all();
}

// ---------------------------------------------------------------------------
// Reliability layer: acknowledgements, retransmission, rail failover
// ---------------------------------------------------------------------------

bool Core::reliable_rx_register(Gate& gate, uint32_t seq) {
  if (seq < gate.recv_floor || gate.recv_seen.count(seq) != 0) return true;
  gate.recv_seen.insert(seq);
  while (gate.recv_seen.count(gate.recv_floor) != 0) {
    gate.recv_seen.erase(gate.recv_floor);
    ++gate.recv_floor;
  }
  return false;
}

OutChunk* Core::make_ack_chunk(Gate& gate) {
  OutChunk* ack = new_chunk();
  ack->kind = ChunkKind::kAck;
  ack->flags = 0;
  ack->tag = 0;
  ack->seq = gate.recv_floor;  // cumulative floor rides the seq field
  ack->offset = 0;
  ack->total = 0;
  ack->payload = {};
  const size_t n_sacks = std::min(gate.recv_seen.size(), kMaxSacksPerAck);
  ack->ack_sacks.assign(
      gate.recv_seen.begin(),
      std::next(gate.recv_seen.begin(), static_cast<ptrdiff_t>(n_sacks)));
  const size_t n_bulk =
      std::min(gate.pending_bulk_acks.size(), kMaxBulkAcksPerAck);
  ack->ack_bulk_acks.assign(
      gate.pending_bulk_acks.begin(),
      gate.pending_bulk_acks.begin() + static_cast<ptrdiff_t>(n_bulk));
  ack->prio = Priority::kHigh;
  ack->pinned_rail = kAnyRail;
  ack->owner = nullptr;
  return ack;
}

void Core::commit_ack_chunk(Gate& gate, OutChunk* ack) {
  // The chunk is definitely shipping: consume the bulk-slice acks it
  // carries (the sender's timer re-sends the slice if this ack is lost).
  // Packet acks are idempotent and re-advertised until the floor passes.
  gate.pending_bulk_acks.erase(
      gate.pending_bulk_acks.begin(),
      gate.pending_bulk_acks.begin() +
          static_cast<ptrdiff_t>(ack->ack_bulk_acks.size()));
  gate.ack_needed = !gate.pending_bulk_acks.empty();
  if (gate.ack_needed) {
    if (!gate.ack_timer_armed) schedule_ack(gate);
  } else if (gate.ack_timer_armed) {
    world_.cancel(gate.ack_timer);
    gate.ack_timer_armed = false;
  }
}

void Core::maybe_inject_ack(Gate& gate, PacketBuilder& builder) {
  if (!gate.ack_needed || gate.failed) return;
  OutChunk* ack = make_ack_chunk(gate);
  if (!builder.empty() && !builder.fits(*ack)) {
    chunk_pool_.release(ack);
    return;  // packet is full; the delayed-ack timer still covers us
  }
  builder.add(ack);
  ++stats_.acks_piggybacked;
  commit_ack_chunk(gate, ack);
}

void Core::schedule_ack(Gate& gate) {
  gate.ack_needed = true;
  if (gate.ack_timer_armed) return;
  gate.ack_timer_armed = true;
  const GateId gid = gate.id;
  gate.ack_timer = world_.after(config_.ack_delay_us,
                                [this, gid]() { on_ack_timer(gid); });
}

void Core::on_ack_timer(GateId gate_id) {
  Gate& g = gate(gate_id);
  g.ack_timer_armed = false;
  if (g.failed || !g.ack_needed) return;
  // No outgoing packet picked the ack up in time: send it standalone on
  // an idle rail, bypassing the window (which may be at its cap). Prefer
  // the rail the peer's traffic was last heard on — a rail that delivers
  // inbound is the best guess for the return path when another rail of
  // the gate has gone dark.
  RailIndex chosen = kAnyRail;
  bool any_alive = false;
  if (g.has_rail(g.last_heard_rail) && rails_[g.last_heard_rail].alive) {
    any_alive = true;
    if (rails_[g.last_heard_rail].driver->tx_idle()) {
      chosen = g.last_heard_rail;
    }
  }
  for (RailIndex r : g.rails) {
    if (chosen != kAnyRail) break;
    if (!rails_[r].alive) continue;
    any_alive = true;
    if (rails_[r].driver->tx_idle()) {
      chosen = r;
      break;
    }
  }
  if (!any_alive) return;  // nothing to ack over; the peer fails too
  if (chosen == kAnyRail) {
    schedule_ack(g);  // all rails busy: piggybacking will beat us anyway
    return;
  }
  OutChunk* ack = make_ack_chunk(g);
  commit_ack_chunk(g, ack);
  ++stats_.acks_sent;
  const RailInfo& info = rails_[chosen].info;
  auto builder = std::make_shared<PacketBuilder>(
      std::min(g.max_packet, info.max_packet_bytes),
      info.gather ? info.max_gather_segments : 0, config_.wire_checksum,
      /*reserve_seq=*/true);
  builder->add(ack);
  issue_packet(g, chosen, std::move(builder), /*charge_election=*/false);
}

void Core::handle_ack(Gate& gate, const WireChunk& chunk) {
  if (!reliable()) return;  // stray ack without the layer enabled
  while (!gate.pending_pkts.empty() &&
         gate.pending_pkts.begin()->first < chunk.seq) {
    retire_packet(gate, gate.pending_pkts.begin());
  }
  for (const uint32_t seq : chunk.sacks) {
    auto it = gate.pending_pkts.find(seq);
    if (it != gate.pending_pkts.end()) retire_packet(gate, it);
  }
  for (const BulkAck& ack : chunk.bulk_acks) retire_bulk(gate, ack);
}

void Core::retire_packet(Gate& gate,
                         std::map<uint32_t, PendingPacket>::iterator it) {
  PendingPacket& p = it->second;
  if (p.timer_armed) world_.cancel(p.timer);
  rails_[p.last_rail].consec_timeouts = 0;  // the rail delivered
  std::vector<SendRequest*> owners = std::move(p.owners);
  gate.pending_pkts.erase(it);
  for (SendRequest* owner : owners) {
    if (owner != nullptr) owner->part_done();  // null: cancelled mid-flight
  }
}

void Core::retire_bulk(Gate& gate, const BulkAck& ack) {
  auto it = gate.pending_bulk.find(BulkKey{ack.cookie, ack.offset});
  if (it == gate.pending_bulk.end()) return;  // duplicate ack
  PendingBulk& p = it->second;
  if (p.len != ack.len) return;  // not this slice
  if (p.timer_armed) world_.cancel(p.timer);
  rails_[p.last_rail].consec_timeouts = 0;
  BulkJob* job = p.job;
  gate.pending_bulk.erase(it);
  job->acked += ack.len;
  if (job->all_sent() && job->all_acked()) {
    SendRequest* owner = job->owner;
    bulk_pool_.release(job);
    owner->part_done();
  }
}

void Core::arm_packet_timer(Gate& gate, uint32_t seq) {
  auto it = gate.pending_pkts.find(seq);
  NMAD_ASSERT(it != gate.pending_pkts.end());
  PendingPacket& p = it->second;
  NMAD_ASSERT(!p.timer_armed);
  p.timer_armed = true;
  const GateId gid = gate.id;
  p.timer = world_.after(
      p.timeout_us, [this, gid, seq]() { on_packet_timeout(gid, seq); });
}

void Core::arm_bulk_timer(Gate& gate, const BulkKey& key) {
  auto it = gate.pending_bulk.find(key);
  NMAD_ASSERT(it != gate.pending_bulk.end());
  PendingBulk& p = it->second;
  NMAD_ASSERT(!p.timer_armed);
  p.timer_armed = true;
  const GateId gid = gate.id;
  p.timer = world_.after(
      p.timeout_us, [this, gid, key]() { on_bulk_timeout(gid, key); });
}

void Core::on_packet_timeout(GateId gate_id, uint32_t seq) {
  Gate& g = gate(gate_id);
  if (g.failed) return;
  auto it = g.pending_pkts.find(seq);
  if (it == g.pending_pkts.end()) return;  // retired; stale timer
  it->second.timer_armed = false;
  ++stats_.packet_timeouts;
  note_rail_timeout(it->second.last_rail);
  // Rail death may have failed the gate or requeued this packet already.
  if (g.failed) return;
  it = g.pending_pkts.find(seq);
  if (it == g.pending_pkts.end() || it->second.queued_retx) {
    refill_all();
    return;
  }
  PendingPacket& p = it->second;
  if (p.retries >= config_.max_retries) {
    fail_gate(g, util::resource_exhausted(
                     "packet retransmission limit reached"));
    return;
  }
  ++p.retries;
  p.timeout_us *= config_.retry_backoff;
  p.queued_retx = true;
  g.retx_queue.push_back(seq);
  refill_all();
}

void Core::on_bulk_timeout(GateId gate_id, BulkKey key) {
  Gate& g = gate(gate_id);
  if (g.failed) return;
  auto it = g.pending_bulk.find(key);
  if (it == g.pending_bulk.end()) return;  // retired; stale timer
  it->second.timer_armed = false;
  ++stats_.bulk_timeouts;
  note_rail_timeout(it->second.last_rail);
  if (g.failed) return;
  it = g.pending_bulk.find(key);
  if (it == g.pending_bulk.end() || it->second.queued_retx) {
    refill_all();
    return;
  }
  PendingBulk& p = it->second;
  if (p.retries >= config_.max_retries) {
    fail_gate(g, util::resource_exhausted(
                     "rendezvous retransmission limit reached"));
    return;
  }
  ++p.retries;
  p.timeout_us *= config_.retry_backoff;
  p.queued_retx = true;
  g.bulk_retx.push_back(key);
  refill_all();
}

void Core::retransmit_packet(Gate& gate, RailIndex rail, uint32_t seq) {
  auto it = gate.pending_pkts.find(seq);
  NMAD_ASSERT(it != gate.pending_pkts.end());
  PendingPacket& p = it->second;
  p.queued_retx = false;
  if (p.timer_armed) {
    world_.cancel(p.timer);
    p.timer_armed = false;
  }
  p.last_rail = rail;
  ++stats_.packets_retransmitted;
  // Re-issuing is an election of sorts: the engine walked its queues.
  node_.cpu().charge(config_.elect_overhead_us);
  std::shared_ptr<util::ByteBuffer> wire = p.wire;
  util::SegmentVec segments;
  segments.add(wire->view());
  const util::Status st = rails_[rail].driver->send_packet(
      gate.peer, segments, [this, wire]() { refill_all(); });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected packet retransmit");
  arm_packet_timer(gate, seq);
}

void Core::retransmit_bulk(Gate& gate, RailIndex rail, const BulkKey& key) {
  auto it = gate.pending_bulk.find(key);
  NMAD_ASSERT(it != gate.pending_bulk.end());
  PendingBulk& p = it->second;
  p.queued_retx = false;
  if (p.timer_armed) {
    world_.cancel(p.timer);
    p.timer_armed = false;
  }
  p.last_rail = rail;
  ++stats_.bulk_retransmitted;
  node_.cpu().charge(config_.elect_overhead_us);
  util::SegmentVec segments;
  segments.add(p.job->body.subspan(p.offset, p.len));
  const util::Status st = rails_[rail].driver->send_bulk(
      gate.peer, key.first, p.offset, segments,
      [this]() { refill_all(); });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected bulk retransmit");
  arm_bulk_timer(gate, key);
}

void Core::note_rail_timeout(RailIndex rail) {
  if (config_.rail_dead_after == 0) return;
  RailState& rs = rails_[rail];
  if (!rs.alive) return;
  if (++rs.consec_timeouts >= config_.rail_dead_after) kill_rail(rail);
}

void Core::kill_rail(RailIndex rail) {
  NMAD_ASSERT(rail < rails_.size());
  RailState& rs = rails_[rail];
  if (!rs.alive) return;
  rs.alive = false;
  rs.health = RailHealth::kDead;
  // A new epoch fences this rail's earlier life: probe replies and
  // beacons carrying the old value no longer count toward revival.
  ++rs.epoch;
  rs.probation_hits = 0;
  rs.last_probe_us = -1.0e18;  // probe at the very next health tick
  ++stats_.rails_failed;
  NMAD_LOG_WARN("nmad: node %u declares rail %u (%s) dead (epoch %u)",
                node_.id(), static_cast<unsigned>(rail),
                rs.driver->caps().name.c_str(), rs.epoch);

  // A packet elected early for this rail goes back to its gate's window
  // for re-election elsewhere.
  if (rs.prebuilt) {
    Gate& pg = gate(rs.prebuilt_gate);
    for (OutChunk* chunk : rs.prebuilt->chunks()) {
      pg.window.push_back(*chunk);
    }
    rs.prebuilt.reset();
  }

  for (auto& gate_ptr : gates_) {
    Gate& g = *gate_ptr;
    if (g.failed || !g.has_rail(rail)) continue;
    bool any_alive = false;
    for (RailIndex r : g.rails) {
      if (rails_[r].alive) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) {
      fail_gate(g, util::closed("all rails to peer unreachable"));
      continue;
    }

    // Unpin traffic the application pinned to the dead rail: delivery
    // beats placement once the rail is gone.
    for (OutChunk& chunk : g.window) {
      if (chunk.pinned_rail == rail) chunk.pinned_rail = kAnyRail;
    }
    for (auto& [cookie, job] : g.rdv_wait_cts) {
      if (job->pinned_rail == rail) job->pinned_rail = kAnyRail;
    }

    // Re-elect in-flight traffic that last rode the dead rail.
    for (auto& [seq, p] : g.pending_pkts) {
      if (p.last_rail != rail || p.queued_retx) continue;
      if (p.timer_armed) {
        world_.cancel(p.timer);
        p.timer_armed = false;
      }
      p.queued_retx = true;
      g.retx_queue.push_back(seq);
    }
    for (auto& [key, p] : g.pending_bulk) {
      if (p.last_rail != rail || p.queued_retx) continue;
      if (p.timer_armed) {
        world_.cancel(p.timer);
        p.timer_armed = false;
      }
      p.queued_retx = true;
      g.bulk_retx.push_back(key);
    }

    // Rendezvous jobs lose the rail from their grant; a job with no
    // usable rail left can never move its body, so the gate fails (the
    // receive side is stuck waiting on a posted sink otherwise).
    std::set<BulkJob*> jobs;
    for (BulkJob& job : g.ready_bulk) jobs.insert(&job);
    for (auto& [key, p] : g.pending_bulk) jobs.insert(p.job);
    bool gate_dead = false;
    for (BulkJob* job : jobs) {
      if (job->pinned_rail == rail) job->pinned_rail = kAnyRail;
      auto& jr = job->rails;
      jr.erase(
          std::remove(jr.begin(), jr.end(), static_cast<uint8_t>(rail)),
          jr.end());
      if (jr.empty()) {
        gate_dead = true;
        break;
      }
    }
    if (gate_dead) {
      fail_gate(g, util::closed("no surviving rail for rendezvous body"));
    }
  }
  refill_all();
}

void Core::fail_gate(Gate& gate, const util::Status& status) {
  if (gate.failed) return;
  ++stats_.gates_failed;
  NMAD_LOG_WARN("nmad: node %u fails gate %u (peer %u): %s", node_.id(),
                gate.id, gate.peer, status.to_string().c_str());
  teardown_gate(gate, status);
}

void Core::close_gate(GateId id) {
  Gate& g = gate(id);
  if (g.failed) return;
  ++stats_.gates_closed;
  teardown_gate(g, util::closed("gate closed by the local endpoint"));
}

void Core::teardown_gate(Gate& gate, const util::Status& status) {
  gate.failed = true;
  gate.fail_status = status;

  if (gate.ack_timer_armed) {
    world_.cancel(gate.ack_timer);
    gate.ack_timer_armed = false;
  }
  if (gate.credit_probe_armed) {
    world_.cancel(gate.credit_probe_timer);
    gate.credit_probe_armed = false;
  }

  // Window chunks: owners learn the error; control chunks just vanish.
  while (!gate.window.empty()) {
    OutChunk& chunk = gate.window.pop_front();
    if (chunk.owner != nullptr) chunk.owner->complete(status);
    chunk_pool_.release(&chunk);
  }

  // Packets elected early for this gate on any rail.
  for (auto& rs : rails_) {
    if (rs.prebuilt && rs.prebuilt_gate == gate.id) {
      for (OutChunk* chunk : rs.prebuilt->chunks()) {
        if (chunk->owner != nullptr) chunk->owner->complete(status);
        chunk_pool_.release(chunk);
      }
      rs.prebuilt.reset();
    }
  }

  // In-flight reliable packets (null owners: chunks cancelled mid-flight).
  for (auto& [seq, p] : gate.pending_pkts) {
    if (p.timer_armed) world_.cancel(p.timer);
    for (SendRequest* owner : p.owners) {
      if (owner != nullptr) owner->complete(status);
    }
  }
  gate.pending_pkts.clear();
  gate.retx_queue.clear();

  // Rendezvous jobs in every stage of the protocol.
  std::set<BulkJob*> jobs;
  for (auto& [key, p] : gate.pending_bulk) {
    if (p.timer_armed) world_.cancel(p.timer);
    jobs.insert(p.job);
  }
  gate.pending_bulk.clear();
  gate.bulk_retx.clear();
  while (!gate.ready_bulk.empty()) jobs.insert(&gate.ready_bulk.pop_front());
  for (auto& [cookie, job] : gate.rdv_wait_cts) jobs.insert(job);
  gate.rdv_wait_cts.clear();
  for (BulkJob* job : jobs) {
    if (job->owner != nullptr) job->owner->complete(status);
    bulk_pool_.release(job);
  }

  // Receive side: posted receives learn the error; posted sinks go away.
  for (auto& [cookie, rec] : gate.rdv_recv) {
    for (uint8_t r : rec.rails) rails_[r].driver->cancel_bulk_recv(cookie);
  }
  gate.rdv_recv.clear();
  for (auto& [key, req] : gate.active_recv) req->complete(status);
  gate.active_recv.clear();
  // Release the rx budget held by this peer's parked fragments. `failed`
  // is already set, so the discharge does not try to re-advertise credit.
  if (gate.stored_bytes > 0 || gate.stored_chunks > 0) {
    rx_store_discharge(gate, gate.stored_bytes, gate.stored_chunks);
  }
  gate.unexpected.clear();
  gate.recv_seen.clear();
  gate.pending_bulk_acks.clear();
}

void Core::on_bulk_orphan(drivers::PeerAddr from, uint64_t cookie,
                          size_t offset, size_t len) {
  auto it = peer_gate_.find(from);
  if (it == peer_gate_.end()) return;
  Gate& g = *gates_[it->second];
  if (g.failed) return;
  if (g.completed_bulk.count(cookie) == 0) return;  // truly unknown: drop
  // A retransmitted slice landed after its sink completed: the bytes are
  // already in place, but the sender still waits for the ack.
  BulkAck ack;
  ack.cookie = cookie;
  ack.offset = static_cast<uint32_t>(offset);
  ack.len = static_cast<uint32_t>(len);
  g.pending_bulk_acks.push_back(ack);
  schedule_ack(g);
}

// ---------------------------------------------------------------------------
// Rail health lifecycle (CoreConfig::rail_health)
//
// Liveness is active and symmetric: every engine beacons on every rail (at
// most one kHeartbeat per interval per peer, piggybacked when traffic
// flows), and anything *heard* on a rail refreshes it — so a healthy but
// idle fabric stays quiet-but-alive, and detection of a dead link no
// longer depends on in-flight data timing out. Revival is epoch-fenced: a
// dead rail is probed, the peer echoes the probe's epoch, and only replies
// carrying the rail's current epoch advance probation. Any straggler from
// an earlier life — a delayed reply, a beacon inside a retransmitted wire
// image — is fenced and dropped.
// ---------------------------------------------------------------------------

void Core::start_health_monitors() {
  NMAD_ASSERT_MSG(config_.heartbeat_interval_us > 0.0 &&
                      config_.probe_interval_us > 0.0,
                  "rail_health needs positive intervals");
  health_monitors_started_ = true;
  const double now = world_.now();
  for (RailIndex r = 0; r < static_cast<RailIndex>(rails_.size()); ++r) {
    RailState& rs = rails_[r];
    rs.last_rx_us = now;  // silence is counted from connect, not time zero
    rs.health_timer_armed = true;
    rs.health_timer = world_.after(config_.heartbeat_interval_us,
                                   [this, r]() { on_health_tick(r); });
  }
}

void Core::stop_health_monitors() {
  for (RailState& rs : rails_) {
    if (rs.health_timer_armed) {
      world_.cancel(rs.health_timer);
      rs.health_timer_armed = false;
    }
  }
  health_monitors_started_ = false;
}

double& Core::hb_tx_slot(RailState& rs, GateId id) {
  if (rs.hb_tx_us.size() <= id) {
    rs.hb_tx_us.resize(std::max(gates_.size(), size_t{id} + 1), -1.0e18);
  }
  return rs.hb_tx_us[id];
}

OutChunk* Core::make_heartbeat_chunk(uint8_t flags, uint32_t epoch) {
  OutChunk* hb = new_chunk();
  hb->kind = ChunkKind::kHeartbeat;
  hb->flags = flags;
  hb->tag = 0;
  hb->seq = epoch;  // the rail epoch rides the seq field
  hb->prio = Priority::kHigh;
  hb->owner = nullptr;
  return hb;
}

void Core::maybe_inject_heartbeat(Gate& gate, RailIndex rail,
                                  PacketBuilder& builder) {
  RailState& rs = rails_[rail];
  double& last = hb_tx_slot(rs, gate.id);
  if (world_.now() - last < config_.heartbeat_interval_us) return;
  OutChunk* hb = make_heartbeat_chunk(kFlagNone, rs.epoch);
  if (!builder.fits(*hb)) {
    chunk_pool_.release(hb);
    return;
  }
  builder.add(hb);
  last = world_.now();
  ++stats_.heartbeats_sent;
}

void Core::send_standalone_heartbeat(Gate& gate, RailIndex rail,
                                     uint8_t flags, uint32_t epoch) {
  RailState& rs = rails_[rail];
  const RailInfo& info = rs.info;
  auto builder = std::make_shared<PacketBuilder>(
      std::min(gate.max_packet, info.max_packet_bytes),
      info.gather ? info.max_gather_segments : 0, config_.wire_checksum,
      /*reserve_seq=*/true);
  builder->add(make_heartbeat_chunk(flags, epoch));
  // Refresh the beacon slot before issue_packet, which would otherwise
  // piggyback a second (now redundant) plain beacon onto this packet.
  hb_tx_slot(rs, gate.id) = world_.now();
  if ((flags & kFlagProbe) != 0) {
    ++stats_.probes_sent;
  } else if ((flags & kFlagReply) != 0) {
    ++stats_.probe_replies_sent;
  } else {
    ++stats_.heartbeats_sent;
  }
  issue_packet(gate, rail, std::move(builder), /*charge_election=*/false);
}

void Core::on_health_tick(RailIndex rail) {
  RailState& rs = rails_[rail];
  rs.health_timer_armed = false;
  const double now = world_.now();

  if (rs.alive) {
    if (now - rs.last_rx_us >= config_.dead_after_us) {
      // Sustained silence despite our beacons provoking acks: the link is
      // gone. kill_rail re-elects its in-flight traffic and bumps the
      // epoch; the dead branch below starts probing for revival.
      kill_rail(rail);
    } else {
      if (now - rs.last_rx_us >= config_.suspect_after_us) {
        if (rs.health == RailHealth::kAlive) {
          rs.health = RailHealth::kSuspect;
          ++stats_.rails_suspected;
        }
      }
      // Beacon duty: one standalone heartbeat per tick, to the peer that
      // has waited longest (piggybacking covers the rest when traffic
      // flows). One per tick keeps the NIC contention negligible; the
      // suspect/dead thresholds leave room for the rotation.
      if (rs.driver->tx_idle()) {
        Gate* stalest = nullptr;
        double stalest_at = 0.0;
        for (auto& gate_ptr : gates_) {
          Gate& g = *gate_ptr;
          if (g.failed || !g.has_rail(rail)) continue;
          const double at = hb_tx_slot(rs, g.id);
          if (stalest == nullptr || at < stalest_at) {
            stalest = &g;
            stalest_at = at;
          }
        }
        if (stalest != nullptr &&
            now - stalest_at >= config_.heartbeat_interval_us) {
          send_standalone_heartbeat(*stalest, rail, kFlagNone, rs.epoch);
        }
      }
    }
  } else {
    if (rs.health == RailHealth::kProbation &&
        now - rs.last_fresh_reply_us > 2.0 * config_.probe_interval_us) {
      // Replies dried up mid-probation: back to dead under a new epoch,
      // so stragglers from the aborted attempt cannot count again.
      rs.health = RailHealth::kDead;
      ++rs.epoch;
      rs.probation_hits = 0;
      ++stats_.probation_demotions;
    }
    if (now - rs.last_probe_us >= config_.probe_interval_us &&
        rs.driver->tx_idle()) {
      rs.last_probe_us = now;
      // Any peer's reply is proof the local link works; probe the first
      // live gate on the rail.
      for (auto& gate_ptr : gates_) {
        Gate& g = *gate_ptr;
        if (g.failed || !g.has_rail(rail)) continue;
        send_standalone_heartbeat(g, rail, kFlagProbe, rs.epoch);
        break;
      }
    }
  }

  rs.health_timer_armed = true;
  rs.health_timer = world_.after(config_.heartbeat_interval_us,
                                 [this, rail]() { on_health_tick(rail); });
}

void Core::handle_heartbeat(Gate& gate, RailIndex rail,
                            const WireChunk& chunk) {
  RailState& rs = rails_[rail];
  if ((chunk.flags & kFlagProbe) != 0) {
    // The probe reached us, which is itself proof the link carries
    // traffic; echo its epoch back so the prober can fence replies that
    // straddle a further death. Replying is best-effort — the prober
    // retries on its own schedule.
    if (!gate.failed && rs.driver->tx_idle()) {
      send_standalone_heartbeat(gate, rail, kFlagReply, chunk.seq);
    }
    return;
  }
  if ((chunk.flags & kFlagReply) != 0) {
    if (rs.alive || chunk.seq != rs.epoch) {
      // A reply for an epoch this rail has moved past (or a rail that
      // already revived): it proves nothing about the current life.
      ++stats_.heartbeats_fenced;
      return;
    }
    rs.health = RailHealth::kProbation;
    rs.last_fresh_reply_us = world_.now();
    if (++rs.probation_hits >= config_.probation_replies) {
      revive_rail(rail);
    }
    return;
  }
  // Plain beacon. The peer's epoch only ever grows; an older value is a
  // stale wire image (a beacon piggybacked on a packet that was flattened
  // for retransmission before the peer's rail died) — fence it.
  if (chunk.seq < rs.peer_epoch) {
    ++stats_.heartbeats_fenced;
    return;
  }
  rs.peer_epoch = chunk.seq;
  ++stats_.heartbeats_received;
}

void Core::revive_rail(RailIndex rail) {
  NMAD_ASSERT(rail < rails_.size());
  RailState& rs = rails_[rail];
  if (rs.alive) return;
  rs.alive = true;
  rs.health = RailHealth::kAlive;
  rs.consec_timeouts = 0;
  rs.probation_hits = 0;
  rs.last_rx_us = world_.now();
  ++stats_.rails_revived;
  NMAD_LOG_WARN("nmad: node %u revives rail %u (%s) at epoch %u",
                node_.id(), static_cast<unsigned>(rail),
                rs.driver->caps().name.c_str(), rs.epoch);

  // Hand the rail back to rendezvous jobs whose CTS granted it: the
  // receiver's sinks stayed posted through the blackout, so the grant is
  // still honoured. Election then rebalances onto it naturally.
  for (auto& gate_ptr : gates_) {
    Gate& g = *gate_ptr;
    if (g.failed || !g.has_rail(rail)) continue;
    std::set<BulkJob*> jobs;
    for (BulkJob& job : g.ready_bulk) jobs.insert(&job);
    for (auto& [key, p] : g.pending_bulk) jobs.insert(p.job);
    for (BulkJob* job : jobs) {
      if (job->allows_rail(rail)) continue;
      if (job->pinned_rail != kAnyRail && job->pinned_rail != rail) continue;
      const auto& granted = job->granted_rails;
      if (std::find(granted.begin(), granted.end(),
                    static_cast<uint8_t>(rail)) != granted.end()) {
        job->rails.push_back(static_cast<uint8_t>(rail));
      }
    }
  }
  refill_all();
}

// ---------------------------------------------------------------------------
// Graceful drain / shutdown
// ---------------------------------------------------------------------------

bool Core::drained() const {
  for (const auto& gate_ptr : gates_) {
    const Gate& g = *gate_ptr;
    if (g.failed) continue;
    if (!g.window.empty() || !g.ready_bulk.empty() ||
        !g.rdv_wait_cts.empty() || !g.rdv_recv.empty()) {
      return false;
    }
    if (!g.pending_pkts.empty() || !g.pending_bulk.empty() ||
        !g.retx_queue.empty() || !g.bulk_retx.empty()) {
      return false;
    }
    if (g.ack_needed || !g.pending_bulk_acks.empty()) return false;
  }
  for (const RailState& rs : rails_) {
    if (rs.prebuilt) return false;  // elected early, never transmitted
    // Without reliability no engine structure tracks a packet after its
    // election, so "flushed" must also mean the transmit engines are
    // quiet: a frame mid-DMA completes its sends only at tx-done.
    if (rs.alive && rs.driver && !rs.driver->tx_idle()) return false;
  }
  return true;
}

util::Status Core::drain(double deadline_us) {
  ++stats_.drains_started;
  const double deadline = world_.now() + deadline_us;
  while (!drained()) {
    if (world_.now() >= deadline) {
      return util::deadline_exceeded("drain deadline expired");
    }
    if (!world_.run_one()) {
      // The whole simulation went quiescent with this engine still
      // holding undelivered state (e.g. a rendezvous whose receive was
      // never posted): no amount of waiting flushes it.
      return util::deadline_exceeded("drain stalled: engine cannot flush");
    }
  }
  // Quiescence audit: a clean flush must also be a consistent one.
  std::vector<std::string> failures;
  if (!check_invariants(&failures)) {
    return util::internal_error("drain audit: " + failures.front());
  }
  ++stats_.drains_completed;
  return util::ok_status();
}

// ---------------------------------------------------------------------------
// Flow control (CoreConfig::flow_control)
//
// The receiver advertises cumulative admission limits — "you may have sent
// me at most L bytes / N chunks of eager payload since the connection
// opened". Cumulative limits (rather than deltas) make the scheme immune
// to loss and reordering: the sender keeps max(limit seen so far) and a
// stale or lost advertisement is simply superseded by the next one.
// ---------------------------------------------------------------------------

bool Core::credit_admits(Gate& gate, const OutChunk& chunk) {
  if (!flow_control() || gate.failed) return true;
  if (chunk.is_control() || chunk.payload.empty() || chunk.credit_charged) {
    return true;  // control traffic and re-homed chunks always flow
  }
  if (gate.eager_sent_bytes + chunk.payload.size() <=
          gate.credit_limit_bytes &&
      gate.eager_sent_chunks + 1 <= gate.credit_limit_chunks) {
    return true;
  }
  note_credit_stall(gate);
  return false;
}

void Core::charge_credit(Gate& gate, OutChunk& chunk) {
  if (!flow_control() || chunk.credit_charged || chunk.is_control() ||
      chunk.payload.empty()) {
    return;
  }
  if (skip_credit_charges_ > 0) [[unlikely]] {
    // Injected protocol bug (test_skip_next_credit_charge): the chunk
    // ships without being charged, so the receiver hears traffic the
    // sender never accounted for.
    --skip_credit_charges_;
    return;
  }
  chunk.credit_charged = true;
  gate.eager_sent_bytes += chunk.payload.size();
  gate.eager_sent_chunks += 1;
  gate.window_eager_bytes -=
      std::min(gate.window_eager_bytes, chunk.payload.size());
}

void Core::note_credit_stall(Gate& gate) {
  ++stats_.credit_stalls;
  gate.credit_stalled = true;
  if (gate.credit_probe_armed || config_.credit_probe_us <= 0.0) return;
  gate.credit_probe_armed = true;
  const GateId gid = gate.id;
  gate.credit_probe_timer = world_.after(
      config_.credit_probe_us, [this, gid]() { on_credit_probe(gid); });
}

void Core::on_credit_probe(GateId gate_id) {
  Gate& g = gate(gate_id);
  g.credit_probe_armed = false;
  if (g.failed || !g.credit_stalled) return;
  // While anything of ours is still unacked, a piggybacked credit update
  // can still come home on its ack: keep waiting.
  if (!g.pending_pkts.empty() || !g.pending_bulk.empty()) {
    g.credit_probe_armed = true;
    g.credit_probe_timer = world_.after(
        config_.credit_probe_us,
        [this, gate_id]() { on_credit_probe(gate_id); });
    return;
  }
  // Anything actually held back? The flag can outlive the traffic (the
  // stalled chunks may have been cancelled); if nothing in the window is
  // waiting on credit, the stall is over and the timer stays down.
  bool held = false;
  for (const OutChunk& c : g.window) {
    if (!c.is_control() && !c.payload.empty() && !c.credit_charged) {
      held = true;
      break;
    }
  }
  if (!held) {
    g.credit_stalled = false;
    return;
  }
  // Quiet gate, stalled sender: either the peer's store is full, or its
  // last credit update was lost (standalone ack/credit packets are
  // fire-and-forget). We cannot tell which from here, and force-admitting
  // would breach the receiver's budget — so ask instead: a kCredit chunk
  // with zero limits is a no-op under the monotone-max rule, which lets
  // the zero value double as "please restate your limits". A lost update
  // comes back on the answer; a genuinely full receiver restates the old
  // limits and we simply probe again.
  RailIndex chosen = kAnyRail;
  bool any_alive = false;
  if (g.has_rail(g.last_heard_rail) && rails_[g.last_heard_rail].alive) {
    any_alive = true;
    if (rails_[g.last_heard_rail].driver->tx_idle()) {
      chosen = g.last_heard_rail;
    }
  }
  for (RailIndex r : g.rails) {
    if (chosen != kAnyRail) break;
    if (!rails_[r].alive) continue;
    any_alive = true;
    if (rails_[r].driver->tx_idle()) {
      chosen = r;
      break;
    }
  }
  if (!any_alive) return;  // every rail is gone; failure detection acts
  if (chosen != kAnyRail) {
    OutChunk* req = new_chunk();
    req->kind = ChunkKind::kCredit;
    req->flags = 0;
    req->credit_bytes = 0;
    req->credit_chunks = 0;
    req->prio = Priority::kHigh;
    req->owner = nullptr;
    const RailInfo& info = rails_[chosen].info;
    auto builder = std::make_shared<PacketBuilder>(
        std::min(g.max_packet, info.max_packet_bytes),
        info.gather ? info.max_gather_segments : 0, config_.wire_checksum,
        /*reserve_seq=*/true);
    builder->add(req);
    issue_packet(g, chosen, std::move(builder), /*charge_election=*/false);
    ++stats_.credit_probes;
  }
  // Keep probing until the limits grow (handle_credit cancels the timer)
  // or the held-back traffic goes away.
  g.credit_probe_armed = true;
  g.credit_probe_timer = world_.after(
      config_.credit_probe_us, [this, gate_id]() { on_credit_probe(gate_id); });
}

void Core::refresh_advert(Gate& gate) {
  if (gate.failed) return;
  // Bytes. With a budget, grant exactly the room the store has left after
  // what is parked plus what the *other* peers may still send against
  // their outstanding grants; this gate's own outstanding grant is being
  // recomputed, so it is excluded.
  uint64_t want_bytes = gate.advertised_limit_bytes;
  if (config_.rx_budget == 0) {
    if (config_.initial_credit_bytes != 0) {
      want_bytes = gate.eager_heard_bytes + config_.initial_credit_bytes;
    }
  } else {
    const uint64_t budget =
        std::max<uint64_t>(config_.rx_budget, gate.max_packet);
    uint64_t used = 0;
    for (const auto& g : gates_) {
      used += g->stored_bytes;
      if (g.get() != &gate &&
          g->advertised_limit_bytes > g->eager_heard_bytes) {
        used += g->advertised_limit_bytes - g->eager_heard_bytes;
      }
    }
    uint64_t avail = budget > used ? budget - used : 0;
    // Cap the outstanding grant at the initial window. Adverts are
    // monotone, so an over-generous grant to a sender that then goes idle
    // is stranded forever — and a stranded grant the size of the whole
    // budget starves every other peer (deadlock). Capping bounds the
    // stranding to one initial window per idle gate, and the config rule
    // "Σ initial grants ≤ budget" then guarantees each gate can always be
    // re-granted its window: no peer can be starved out.
    if (config_.initial_credit_bytes != 0) {
      avail = std::min<uint64_t>(avail, config_.initial_credit_bytes);
    }
    want_bytes = gate.eager_heard_bytes + avail;
  }
  if (want_bytes > gate.advertised_limit_bytes) {
    gate.advertised_limit_bytes = want_bytes;  // monotone, never retreats
  }
  // Chunk count, same shape.
  uint64_t want_chunks = gate.advertised_limit_chunks;
  if (config_.rx_budget_msgs == 0) {
    if (config_.initial_credit_msgs != 0) {
      want_chunks = gate.eager_heard_chunks + config_.initial_credit_msgs;
    }
  } else {
    const uint64_t budget = std::max<uint64_t>(config_.rx_budget_msgs, 1);
    uint64_t used = 0;
    for (const auto& g : gates_) {
      used += g->stored_chunks;
      if (g.get() != &gate &&
          g->advertised_limit_chunks > g->eager_heard_chunks) {
        used += g->advertised_limit_chunks - g->eager_heard_chunks;
      }
    }
    uint64_t avail = budget > used ? budget - used : 0;
    if (config_.initial_credit_msgs != 0) {  // same stranding cap as bytes
      avail = std::min<uint64_t>(avail, config_.initial_credit_msgs);
    }
    want_chunks = gate.eager_heard_chunks + avail;
  }
  if (want_chunks > gate.advertised_limit_chunks) {
    gate.advertised_limit_chunks = want_chunks;
  }
}

OutChunk* Core::make_credit_chunk(Gate& gate) {
  refresh_advert(gate);
  if (!gate.credit_update_needed &&
      gate.advertised_limit_bytes == gate.last_sent_limit_bytes &&
      gate.advertised_limit_chunks == gate.last_sent_limit_chunks) {
    return nullptr;  // the peer already knows everything we could say
  }
  OutChunk* chunk = new_chunk();
  chunk->kind = ChunkKind::kCredit;
  chunk->flags = 0;
  chunk->credit_bytes = gate.advertised_limit_bytes;
  chunk->credit_chunks = gate.advertised_limit_chunks;
  chunk->prio = Priority::kHigh;
  chunk->owner = nullptr;
  return chunk;
}

void Core::maybe_inject_credit(Gate& gate, PacketBuilder& builder) {
  if (!flow_control() || gate.failed) return;
  OutChunk* credit = make_credit_chunk(gate);
  if (credit == nullptr) return;
  if (!builder.empty() && !builder.fits(*credit)) {
    chunk_pool_.release(credit);
    return;  // packet is full; the next one (or an ack) carries the update
  }
  builder.add(credit);
  gate.last_sent_limit_bytes = gate.advertised_limit_bytes;
  gate.last_sent_limit_chunks = gate.advertised_limit_chunks;
  gate.credit_update_needed = false;
  ++stats_.credit_grants;
}

void Core::handle_credit(Gate& gate, const WireChunk& chunk) {
  if (!flow_control()) return;
  if (chunk.credit_bytes == 0 && chunk.credit_chunks == 0) {
    // A credit *request* from a stalled sender (see on_credit_probe):
    // restate our current limits on the ack path, even if they have not
    // moved since the last advertisement.
    if (!gate.failed) {
      gate.credit_update_needed = true;
      schedule_ack(gate);
    }
    return;
  }
  bool grew = false;
  if (chunk.credit_bytes > gate.credit_limit_bytes) {
    gate.credit_limit_bytes = chunk.credit_bytes;
    grew = true;
  }
  if (chunk.credit_chunks > gate.credit_limit_chunks) {
    gate.credit_limit_chunks = chunk.credit_chunks;
    grew = true;
  }
  if (!grew) return;  // stale (reordered) advertisement
  gate.credit_stalled = false;
  if (gate.credit_probe_armed) {
    world_.cancel(gate.credit_probe_timer);
    gate.credit_probe_armed = false;
  }
  refill_all();  // stalled chunks may be admissible now
}

void Core::rx_store_charge(Gate& gate, size_t bytes, size_t chunks) {
  gate.stored_bytes += bytes;
  gate.stored_chunks += chunks;
  stats_.rx_stored_bytes += bytes;
  if (stats_.rx_stored_bytes > stats_.rx_stored_hwm) {
    stats_.rx_stored_hwm = stats_.rx_stored_bytes;
  }
}

void Core::rx_store_discharge(Gate& gate, size_t bytes, size_t chunks) {
  NMAD_ASSERT(gate.stored_bytes >= bytes);
  NMAD_ASSERT(gate.stored_chunks >= chunks);
  NMAD_ASSERT(stats_.rx_stored_bytes >= bytes);
  gate.stored_bytes -= bytes;
  gate.stored_chunks -= chunks;
  stats_.rx_stored_bytes -= bytes;
  // Freed room means fresh credit to hand out; let it ride the next ack.
  if (flow_control() && bytes > 0 && !gate.failed) {
    gate.credit_update_needed = true;
    schedule_ack(gate);
  }
}

// ---------------------------------------------------------------------------
// Cancellation & deadlines
// ---------------------------------------------------------------------------

bool Core::cancel(Request* req) {
  return cancel_with(req, util::cancelled("cancelled by the application"));
}

bool Core::cancel_with(Request* req, util::Status status) {
  if (req->done()) return false;
  Gate& g = gate(req->gate());
  if (req->kind() == Request::Kind::kSend) {
    return cancel_send(g, static_cast<SendRequest*>(req), std::move(status));
  }
  return cancel_recv(g, static_cast<RecvRequest*>(req), std::move(status));
}

bool Core::cancel_send(Gate& gate, SendRequest* req, util::Status status) {
  if (gate.failed) return false;
  // Pass 1 (no mutation): every pending part must be reachable, or the
  // cancel is refused and the send proceeds untouched. Parts inside a
  // prebuilt packet are unreachable on purpose — the builder holds live
  // views of the application buffer and is already promised to a NIC.
  size_t reachable = 0;
  for (OutChunk& c : gate.window) {
    if (c.owner == req) ++reachable;
  }
  std::set<BulkJob*> jobs;
  for (auto& [cookie, job] : gate.rdv_wait_cts) {
    if (job->owner == req) jobs.insert(job);
  }
  for (BulkJob& job : gate.ready_bulk) {
    if (job.owner == req) jobs.insert(&job);
  }
  for (auto& [key, p] : gate.pending_bulk) {
    if (p.job->owner == req) jobs.insert(p.job);
  }
  if (!reliable()) {
    // Without the reliability layer, a streaming job's driver-completion
    // callback dereferences the job: it cannot be freed mid-flight.
    for (BulkJob* job : jobs) {
      if (job->sent > job->acked) return false;
    }
  }
  reachable += jobs.size();
  if (reliable()) {
    for (auto& [seq, p] : gate.pending_pkts) {
      for (SendRequest* owner : p.owners) {
        if (owner == req) ++reachable;
      }
    }
  }
  if (reachable < req->pending_parts_) return false;
  NMAD_ASSERT(reachable == req->pending_parts_);

  // Pass 2: unwind. Window chunks are simply discarded; charged-but-lost
  // chunks (re-homed by a rail death) un-charge so the sender's view of
  // the credit window stays consistent with what the receiver heard.
  std::vector<OutChunk*> mine;
  for (OutChunk& c : gate.window) {
    if (c.owner == req) mine.push_back(&c);
  }
  for (OutChunk* c : mine) {
    gate.window.remove(*c);
    if (flow_control() && !c->payload.empty()) {
      if (c->credit_charged) {
        gate.eager_sent_bytes -= c->payload.size();
        gate.eager_sent_chunks -= 1;
      } else {
        gate.window_eager_bytes -=
            std::min(gate.window_eager_bytes, c->payload.size());
      }
    }
    chunk_pool_.release(c);
  }
  for (BulkJob* job : jobs) {
    // A CTS may already be on its way: tombstone the cookie so the grant
    // is swallowed instead of tripping the unknown-cookie assert.
    gate.cancelled_rdv.insert(job->cookie);
    gate.rdv_wait_cts.erase(job->cookie);
    remove_window_rts(gate, job->cookie);
    drop_bulk_job(gate, job);
  }
  if (reliable()) {
    // In-flight packets keep their flattened wire copy (retransmits stay
    // memory-safe); only the completion hook is detached.
    for (auto& [seq, p] : gate.pending_pkts) {
      for (SendRequest*& owner : p.owners) {
        if (owner == req) owner = nullptr;
      }
    }
  }
  // The message consumed a sequence number, so the peer's matching irecv
  // would wait forever: always tell it the message was withdrawn.
  send_cancel_rts(gate, req->tag(), req->seq(), 0);
  refill_all();
  ++stats_.sends_cancelled;
  req->pending_parts_ = 0;
  req->complete(std::move(status));
  cancel_deadline(req);
  return true;
}

bool Core::cancel_recv(Gate& gate, RecvRequest* req, util::Status status) {
  if (gate.failed) return false;
  const MsgKey key{req->tag(), req->seq()};
  std::vector<uint64_t> cookies;
  for (auto& [cookie, rec] : gate.rdv_recv) {
    if (rec.request == req) cookies.push_back(cookie);
  }
  if (!reliable()) {
    // Once the CTS left the window the sender may stream at any moment;
    // without the reliability layer a torn-down sink would strand those
    // bytes with nowhere to go. Only cancel while the grant is still ours.
    for (uint64_t cookie : cookies) {
      bool in_window = false;
      for (OutChunk& c : gate.window) {
        if (c.kind == ChunkKind::kCts && c.cookie == cookie &&
            (c.flags & kFlagCancel) == 0) {
          in_window = true;
          break;
        }
      }
      if (!in_window) return false;
    }
  }
  gate.active_recv.erase(key);
  gate.cancelled_recv.insert(key);  // late payload is dropped, RTS refused
  for (uint64_t cookie : cookies) {
    RdvRecv& rec = gate.rdv_recv.at(cookie);
    for (uint8_t r : rec.rails) rails_[r].driver->cancel_bulk_recv(cookie);
    gate.rdv_recv.erase(cookie);
    for (OutChunk& c : gate.window) {
      if (c.kind == ChunkKind::kCts && c.cookie == cookie &&
          (c.flags & kFlagCancel) == 0) {
        gate.window.remove(c);
        chunk_pool_.release(&c);
        break;
      }
    }
    // The sender may already hold the grant: revoke it so the job (and
    // its retransmits) unwind instead of streaming into the void.
    send_cancel_cts(gate, req->tag(), req->seq(), cookie);
  }
  refill_all();
  ++stats_.recvs_cancelled;
  req->complete(std::move(status));
  cancel_deadline(req);
  return true;
}

void Core::handle_cancel_cts(Gate& gate, const WireChunk& chunk) {
  // The receiver refused or revoked the grant for this cookie. Preferred
  // unwind is a full cancel of the owning send; when other parts of the
  // message are already in flight, only this job is dropped and the rest
  // of the message completes normally.
  auto it = gate.rdv_wait_cts.find(chunk.cookie);
  if (it != gate.rdv_wait_cts.end()) {
    BulkJob* job = it->second;
    SendRequest* owner = job->owner;
    if (owner != nullptr &&
        cancel_send(gate, owner,
                    util::cancelled("peer cancelled the receive"))) {
      return;  // cancel_send unwound this job (and any siblings)
    }
    gate.rdv_wait_cts.erase(chunk.cookie);
    remove_window_rts(gate, chunk.cookie);
    drop_bulk_job(gate, job);
    if (owner != nullptr) owner->part_done();
    return;
  }
  if (!reliable()) return;  // mid-stream: the slices land in the void
  BulkJob* job = nullptr;
  for (BulkJob& j : gate.ready_bulk) {
    if (j.cookie == chunk.cookie) {
      job = &j;
      break;
    }
  }
  if (job == nullptr) {
    for (auto& [key, p] : gate.pending_bulk) {
      if (key.first == chunk.cookie) {
        job = p.job;
        break;
      }
    }
  }
  if (job == nullptr) return;  // already finished (revocation raced the end)
  SendRequest* owner = job->owner;
  if (owner != nullptr &&
      cancel_send(gate, owner,
                  util::cancelled("peer cancelled the receive"))) {
    return;
  }
  drop_bulk_job(gate, job);
  if (owner != nullptr) owner->part_done();
}

void Core::send_cancel_rts(Gate& gate, Tag tag, SeqNum seq,
                           uint64_t cookie) {
  OutChunk* c = new_chunk();
  c->kind = ChunkKind::kRts;
  c->flags = kFlagCancel;
  c->tag = tag;
  c->seq = seq;
  c->offset = 0;
  c->total = 0;
  c->rdv_len = 0;
  c->cookie = cookie;
  c->prio = Priority::kHigh;
  c->owner = nullptr;
  submit_chunk(gate, c);
}

void Core::send_cancel_cts(Gate& gate, Tag tag, SeqNum seq,
                           uint64_t cookie) {
  OutChunk* c = new_chunk();
  c->kind = ChunkKind::kCts;
  c->flags = kFlagCancel;
  c->tag = tag;
  c->seq = seq;
  c->cookie = cookie;
  c->prio = Priority::kHigh;
  c->owner = nullptr;
  submit_chunk(gate, c);
}

void Core::remove_window_rts(Gate& gate, uint64_t cookie) {
  for (OutChunk& c : gate.window) {
    if (c.kind == ChunkKind::kRts && c.cookie == cookie &&
        (c.flags & kFlagCancel) == 0) {
      gate.window.remove(c);
      chunk_pool_.release(&c);
      return;
    }
  }
}

void Core::drop_bulk_job(Gate& gate, BulkJob* job) {
  if (job->hook.is_linked()) gate.ready_bulk.remove(*job);
  for (auto it = gate.pending_bulk.begin(); it != gate.pending_bulk.end();) {
    if (it->second.job == job) {
      if (it->second.timer_armed) world_.cancel(it->second.timer);
      it = gate.pending_bulk.erase(it);
    } else {
      ++it;
    }
  }
  // Stale bulk_retx keys are skipped (and dropped) by refill_rail once
  // the pending entry is gone.
  bulk_pool_.release(job);
}

void Core::set_deadline(Request* req, double timeout_us) {
  if (req->done()) return;
  cancel_deadline(req);  // last call wins
  req->deadline_armed_ = true;
  req->deadline_timer_ =
      world_.after(timeout_us, [this, req]() { on_deadline(req); });
}

void Core::cancel_deadline(Request* req) {
  if (!req->deadline_armed_) return;
  world_.cancel(req->deadline_timer_);
  req->deadline_armed_ = false;
}

void Core::on_deadline(Request* req) {
  req->deadline_armed_ = false;
  if (req->done()) return;
  if (cancel_with(req,
                  util::deadline_exceeded("request deadline expired"))) {
    ++stats_.deadlines_exceeded;
    return;
  }
  // Uncancellable right now (bytes in flight): retry shortly. The request
  // either becomes cancellable or completes, whichever comes first.
  req->deadline_armed_ = true;
  req->deadline_timer_ = world_.after(kDeadlineRetryUs,
                                      [this, req]() { on_deadline(req); });
}

}  // namespace nmad::core
