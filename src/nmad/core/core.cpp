#include "nmad/core/core.hpp"

#include <algorithm>

#include "nmad/strategies/builtin.hpp"
#include "util/logging.hpp"

namespace nmad::core {

Core::Core(simnet::SimWorld& world, simnet::SimNode& node, CoreConfig config)
    : world_(world),
      node_(node),
      config_(std::move(config)),
      strategy_((ensure_builtin_strategies(), make_strategy(config_.strategy))),
      // Rendezvous cookies embed the node id so sinks posted on a shared
      // receiver NIC never collide across senders.
      next_cookie_((static_cast<uint64_t>(node.id()) + 1) << 48) {
  NMAD_ASSERT_MSG(strategy_ != nullptr, "unknown strategy name");
}

Core::~Core() {
  for (auto& rail : rails_) {
    // A packet elected early but never transmitted returns its chunks to
    // the pool (reaching here with one is already a usage error that the
    // request pools will flag; this keeps the diagnostics readable).
    if (rail.prebuilt) {
      for (OutChunk* chunk : rail.prebuilt->chunks()) {
        chunk_pool_.release(chunk);
      }
      rail.prebuilt.reset();
    }
    rail.driver->shutdown();
  }
}

util::Status Core::add_rail(std::unique_ptr<drivers::Driver> driver) {
  if (connected_) {
    return util::failed_precondition("add rails before connecting gates");
  }
  NMAD_RETURN_IF_ERROR(driver->init());
  const auto index = static_cast<RailIndex>(rails_.size());
  const drivers::DriverCaps& caps = driver->caps();

  RailInfo info;
  info.index = index;
  info.rdma = caps.supports_rdma;
  info.gather = caps.supports_gather;
  info.max_gather_segments = caps.max_gather_segments;
  info.rdv_threshold = caps.rdv_threshold;
  info.max_packet_bytes = caps.max_packet_bytes;
  info.latency_us = caps.latency_us;
  info.bandwidth_mbps = caps.bandwidth_mbps;

  driver->set_rx_handler([this, index](drivers::RxPacket&& packet) {
    on_packet(index, std::move(packet));
  });

  RailState state;
  state.driver = std::move(driver);
  state.info = info;
  rails_.push_back(std::move(state));
  return util::ok_status();
}

util::Expected<GateId> Core::connect(drivers::PeerAddr peer) {
  std::vector<RailIndex> all;
  for (RailIndex r = 0; r < rails_.size(); ++r) all.push_back(r);
  return connect(peer, std::move(all));
}

util::Expected<GateId> Core::connect(drivers::PeerAddr peer,
                                     std::vector<RailIndex> rails) {
  if (rails.empty()) return util::invalid_argument("gate needs >= 1 rail");
  if (peer_gate_.count(peer) != 0) {
    return util::already_exists("gate to this peer already open");
  }
  for (RailIndex r : rails) {
    if (r >= rails_.size()) return util::out_of_range("bad rail index");
  }
  connected_ = true;

  auto gate = std::make_unique<Gate>();
  gate->id = static_cast<GateId>(gates_.size());
  gate->peer = peer;
  gate->rails = std::move(rails);
  gate->rdv_threshold = SIZE_MAX;
  gate->max_packet = SIZE_MAX;
  for (RailIndex r : gate->rails) {
    const RailInfo& info = rails_[r].info;
    gate->max_packet = std::min(gate->max_packet, info.max_packet_bytes);
    if (info.rdma) {
      gate->has_rdma = true;
      gate->rdv_threshold =
          std::min(gate->rdv_threshold, info.rdv_threshold);
    }
  }
  if (config_.rdv_threshold_override != 0 && gate->has_rdma) {
    gate->rdv_threshold = config_.rdv_threshold_override;
  }

  const GateId id = gate->id;
  peer_gate_[peer] = id;
  gates_.push_back(std::move(gate));
  return id;
}

Gate& Core::gate(GateId id) {
  NMAD_ASSERT(id < gates_.size());
  return *gates_[id];
}

const RailInfo& Core::rail_info(RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size());
  return rails_[rail].info;
}

size_t Core::window_size(GateId id) { return gate(id).window.size(); }

util::Status Core::set_strategy(const std::string& name) {
  std::unique_ptr<Strategy> next = make_strategy(name);
  if (next == nullptr) {
    return util::not_found("no strategy registered as '" + name + "'");
  }
  strategy_ = std::move(next);
  config_.strategy = name;
  return util::ok_status();
}

void Core::poll() {
  for (auto& rail : rails_) rail.driver->poll();
}

// ---------------------------------------------------------------------------
// Collect layer: submission
// ---------------------------------------------------------------------------

size_t Core::max_eager_payload(const Gate& gate) const {
  NMAD_ASSERT(gate.max_packet > kPacketHeaderBytes + kFragHeaderBytes);
  return gate.max_packet - kPacketHeaderBytes - kFragHeaderBytes;
}

OutChunk* Core::new_chunk() { return chunk_pool_.acquire(); }

void Core::submit_chunk(Gate& gate, OutChunk* chunk) {
  node_.cpu().charge(config_.submit_chunk_us);
  if (chunk->prio == Priority::kHigh) chunk->flags |= kFlagPriority;
  gate.window.push_back(*chunk);
}

void Core::submit_rdv_block(Gate& gate, SendRequest* req, Tag tag,
                            SeqNum seq, size_t logical_offset,
                            util::ConstBytes block, size_t total,
                            const SendHints& hints) {
  BulkJob* job = bulk_pool_.acquire();
  job->cookie = next_cookie_++;
  job->gate = gate.id;
  job->body = block;
  job->sent = 0;
  job->acked = 0;
  job->rails.clear();
  job->pinned_rail = hints.pinned_rail;
  job->owner = req;
  req->add_part();
  gate.rdv_wait_cts[job->cookie] = job;
  ++stats_.rdv_started;

  OutChunk* rts = new_chunk();
  rts->kind = ChunkKind::kRts;
  rts->flags = 0;
  rts->tag = tag;
  rts->seq = seq;
  rts->offset = static_cast<uint32_t>(logical_offset);
  rts->total = static_cast<uint32_t>(total);
  rts->rdv_len = static_cast<uint32_t>(block.size());
  rts->cookie = job->cookie;
  rts->prio = Priority::kHigh;  // control data ships first
  rts->pinned_rail = hints.pinned_rail;
  rts->owner = nullptr;
  submit_chunk(gate, rts);
}

void Core::submit_eager_block(Gate& gate, SendRequest* req, Tag tag,
                              SeqNum seq, size_t logical_offset,
                              util::ConstBytes block, size_t total,
                              bool simple, const SendHints& hints) {
  const size_t max_payload = max_eager_payload(gate);
  size_t offset = 0;
  do {
    const size_t n = std::min(block.size() - offset, max_payload);
    OutChunk* chunk = new_chunk();
    chunk->kind = simple ? ChunkKind::kData : ChunkKind::kFrag;
    chunk->flags = 0;
    chunk->tag = tag;
    chunk->seq = seq;
    chunk->offset = static_cast<uint32_t>(logical_offset + offset);
    chunk->total = static_cast<uint32_t>(total);
    chunk->payload = block.subspan(offset, n);
    chunk->prio = hints.prio;
    chunk->pinned_rail = hints.pinned_rail;
    chunk->owner = req;
    req->add_part();
    if (logical_offset + offset + n == total) chunk->flags |= kFlagLast;
    submit_chunk(gate, chunk);
    offset += n;
  } while (offset < block.size());
}

SendRequest* Core::isend(GateId gate_id, Tag tag, const SourceLayout& src,
                         const SendHints& hints) {
  Gate& g = gate(gate_id);
  const SeqNum seq = g.send_seq[tag]++;
  SendRequest* req = send_pool_.acquire(gate_id, tag, seq, src.total());
  ++stats_.sends_submitted;
  node_.cpu().charge(config_.submit_overhead_us);

  const size_t total = src.total();
  if (total == 0) {
    // Zero-length message: a bare data chunk carries the completion.
    OutChunk* chunk = new_chunk();
    chunk->kind = ChunkKind::kData;
    chunk->flags = kFlagLast;
    chunk->tag = tag;
    chunk->seq = seq;
    chunk->offset = 0;
    chunk->total = 0;
    chunk->payload = {};
    chunk->prio = hints.prio;
    chunk->pinned_rail = hints.pinned_rail;
    chunk->owner = req;
    req->add_part();
    submit_chunk(g, chunk);
    refill_all();
    return req;
  }

  // "Simple" messages (single block, fits one eager chunk) use the compact
  // data header; everything else uses offset-addressed fragments.
  const bool want_rdv =
      g.has_rdma && src.blocks().size() == 1 &&
      src.blocks()[0].memory.size() >= g.rdv_threshold;
  const bool simple = src.blocks().size() == 1 && !want_rdv &&
                      src.blocks()[0].memory.size() <= max_eager_payload(g);

  for (const SourceLayout::Block& block : src.blocks()) {
    if (block.memory.empty()) continue;
    if (g.has_rdma && block.memory.size() >= g.rdv_threshold) {
      submit_rdv_block(g, req, tag, seq, block.logical_offset, block.memory,
                       total, hints);
    } else {
      submit_eager_block(g, req, tag, seq, block.logical_offset,
                         block.memory, total, simple, hints);
    }
  }
  refill_all();
  return req;
}

SendRequest* Core::isend(GateId gate_id, Tag tag, util::ConstBytes data,
                         const SendHints& hints) {
  return isend(gate_id, tag, SourceLayout::contiguous(data), hints);
}

RecvRequest* Core::irecv(GateId gate_id, Tag tag, DestLayout dest) {
  Gate& g = gate(gate_id);
  const SeqNum seq = g.recv_seq[tag]++;
  RecvRequest* req = recv_pool_.acquire(gate_id, tag, seq, std::move(dest));
  ++stats_.recvs_submitted;
  node_.cpu().charge(config_.submit_overhead_us);

  const MsgKey key{tag, seq};
  g.active_recv[key] = req;

  // Replay anything that arrived before this receive was posted.
  auto it = g.unexpected.find(key);
  if (it != g.unexpected.end()) {
    UnexpectedMsg msg = std::move(it->second);
    g.unexpected.erase(it);
    for (const StoredFrag& frag : msg.frags) {
      deliver_eager(g, req, frag.offset, frag.total, frag.data.view());
    }
    for (const StoredRts& rts : msg.rts) {
      start_rdv_recv(g, req, rts.len, rts.offset, rts.total, rts.cookie);
    }
    refill_all();  // replay may have queued CTS chunks
  }
  return req;
}

RecvRequest* Core::irecv(GateId gate_id, Tag tag,
                         util::MutableBytes buffer) {
  return irecv(gate_id, tag, DestLayout::contiguous(buffer));
}

Core::PeekResult Core::peek_unexpected(GateId gate_id, Tag tag) {
  Gate& g = gate(gate_id);
  // The next irecv on this tag will be assigned the current counter value.
  SeqNum next_seq = 0;
  if (auto it = g.recv_seq.find(tag); it != g.recv_seq.end()) {
    next_seq = it->second;
  }
  auto it = g.unexpected.find(MsgKey{tag, next_seq});
  if (it == g.unexpected.end()) return {};
  PeekResult result;
  result.matched = true;
  for (const StoredFrag& frag : it->second.frags) {
    result.total_known = true;
    result.total_bytes = frag.total;
  }
  for (const StoredRts& rts : it->second.rts) {
    result.total_known = true;
    result.total_bytes = rts.total;
  }
  return result;
}

void Core::release(Request* req) {
  NMAD_ASSERT(req != nullptr);
  NMAD_ASSERT_MSG(req->done(), "release of an incomplete request");
  if (req->kind() == Request::Kind::kSend) {
    send_pool_.release(static_cast<SendRequest*>(req));
  } else {
    recv_pool_.release(static_cast<RecvRequest*>(req));
  }
}

// ---------------------------------------------------------------------------
// Scheduling layer: just-in-time election
// ---------------------------------------------------------------------------

void Core::refill_all() {
  for (RailIndex r = 0; r < rails_.size(); ++r) {
    refill_rail(r);
    if (!rails_[r].driver->tx_idle()) maybe_prebuild(r);
  }
}

// §3.2 alternative policy: while the NIC is busy and the backlog is deep
// enough, run the optimizer early and park the resulting packet.
void Core::maybe_prebuild(RailIndex rail) {
  if (config_.prebuild_backlog_chunks == 0) return;
  RailState& rs = rails_[rail];
  if (rs.prebuilt) return;
  const size_t n = gates_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t gi = (rs.rr_cursor + k) % n;
    Gate& g = *gates_[gi];
    if (!g.has_rail(rail)) continue;
    if (g.window.size() < config_.prebuild_backlog_chunks) continue;
    const size_t max_bytes = std::min(g.max_packet, rs.info.max_packet_bytes);
    const size_t max_segments =
        rs.info.gather ? rs.info.max_gather_segments : 0;
    auto builder = std::make_shared<PacketBuilder>(max_bytes, max_segments,
                                                   config_.wire_checksum);
    const size_t taken = strategy_->pack(*this, g, rs.info, *builder);
    if (taken == 0) continue;
    // The election cost is paid now, overlapped with the NIC's current
    // transmission instead of delaying the next one.
    node_.cpu().charge(config_.elect_overhead_us);
    ++stats_.packets_prebuilt;
    rs.prebuilt = std::move(builder);
    rs.prebuilt_gate = g.id;
    rs.rr_cursor = (gi + 1) % n;
    return;
  }
}

void Core::refill_rail(RailIndex rail) {
  RailState& rs = rails_[rail];
  if (!rs.driver->tx_idle()) return;

  // A pre-armed packet goes out instantly, no election on the idle path.
  if (rs.prebuilt) {
    std::shared_ptr<PacketBuilder> builder = std::move(rs.prebuilt);
    rs.prebuilt.reset();
    issue_packet(gate(rs.prebuilt_gate), rail, std::move(builder),
                 /*charge_election=*/false);
    return;
  }
  const size_t n = gates_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t gi = (rs.rr_cursor + k) % n;
    Gate& g = *gates_[gi];
    if (!g.has_rail(rail)) continue;

    // Granted rendezvous bodies take precedence: the receiver is waiting.
    Strategy::BulkDecision decision = strategy_->next_bulk(*this, g, rs.info);
    if (decision.job != nullptr && decision.bytes > 0) {
      rs.rr_cursor = (gi + 1) % n;
      issue_bulk(g, rail, decision.job, decision.bytes);
      return;
    }

    if (!g.window.empty()) {
      const size_t max_bytes =
          std::min(g.max_packet, rs.info.max_packet_bytes);
      const size_t max_segments =
          rs.info.gather ? rs.info.max_gather_segments : 0;
      auto builder = std::make_shared<PacketBuilder>(max_bytes, max_segments,
                                                   config_.wire_checksum);
      const size_t taken = strategy_->pack(*this, g, rs.info, *builder);
      if (taken > 0) {
        rs.rr_cursor = (gi + 1) % n;
        issue_packet(g, rail, std::move(builder));
        return;
      }
    }
  }
}

void Core::issue_packet(Gate& gate, RailIndex rail,
                        std::shared_ptr<PacketBuilder> builder,
                        bool charge_election) {
  // The optimizer just inspected the window and synthesized a packet;
  // charge its cost (§5.1: "extra operations on the critical path") —
  // unless it was already paid at prebuild time.
  if (charge_election) node_.cpu().charge(config_.elect_overhead_us);
  ++stats_.packets_sent;
  stats_.chunks_sent += builder->chunk_count();
  if (builder->chunk_count() > 1) {
    stats_.chunks_aggregated += builder->chunk_count();
  }

  const util::SegmentVec& segments = builder->finalize();
  const util::Status st = rails_[rail].driver->send_packet(
      gate.peer, segments, [this, builder]() {
        for (OutChunk* chunk : builder->chunks()) {
          if (chunk->owner != nullptr && !chunk->is_control()) {
            chunk->owner->part_done();
          }
          chunk_pool_.release(chunk);
        }
        refill_all();
      });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected packet send");
}

void Core::issue_bulk(Gate& gate, RailIndex rail, BulkJob* job,
                      size_t bytes) {
  NMAD_ASSERT(bytes > 0 && bytes <= job->remaining());
  node_.cpu().charge(config_.elect_overhead_us);
  ++stats_.bulk_sends;
  stats_.bulk_bytes += bytes;

  const size_t offset = job->sent;
  job->sent += bytes;
  if (job->all_sent()) {
    gate.ready_bulk.remove(*job);  // nothing left to elect
  }

  util::SegmentVec segments;
  segments.add(job->body.subspan(offset, bytes));
  const util::Status st = rails_[rail].driver->send_bulk(
      gate.peer, job->cookie, offset, segments, [this, job, bytes]() {
        job->acked += bytes;
        if (job->all_sent() && job->all_acked()) {
          SendRequest* owner = job->owner;
          bulk_pool_.release(job);
          owner->part_done();
        }
        refill_all();
      });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected bulk send");
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void Core::on_packet(RailIndex rail, drivers::RxPacket&& packet) {
  (void)rail;
  auto it = peer_gate_.find(packet.from);
  NMAD_ASSERT_MSG(it != peer_gate_.end(), "packet from unknown peer");
  Gate& g = *gates_[it->second];
  ++stats_.packets_received;
  node_.cpu().charge(config_.parse_packet_us);

  const util::Status st = decode_packet(
      packet.bytes.view(), [this, &g](const WireChunk& chunk) {
        node_.cpu().charge(config_.parse_chunk_us);
        ++stats_.chunks_received;
        switch (chunk.kind) {
          case ChunkKind::kData:
          case ChunkKind::kFrag:
            handle_payload_chunk(g, chunk);
            break;
          case ChunkKind::kRts:
            handle_rts(g, chunk);
            break;
          case ChunkKind::kCts:
            handle_cts(g, chunk);
            break;
        }
      });
  NMAD_ASSERT_MSG(st.is_ok(), "malformed packet on wire");
}

void Core::handle_payload_chunk(Gate& gate, const WireChunk& chunk) {
  const MsgKey key{chunk.tag, chunk.seq};
  auto it = gate.active_recv.find(key);
  if (it == gate.active_recv.end()) {
    // Unexpected: copy the payload aside (real host work) until a
    // matching receive is posted.
    ++stats_.unexpected_chunks;
    node_.cpu().charge_memcpy(chunk.payload.size());
    StoredFrag frag;
    frag.kind = chunk.kind;
    frag.flags = chunk.flags;
    frag.offset = chunk.offset;
    frag.total = chunk.total;
    frag.data.append(chunk.payload);
    gate.unexpected[key].frags.push_back(std::move(frag));
    return;
  }
  deliver_eager(gate, it->second, chunk.offset, chunk.total, chunk.payload);
}

void Core::deliver_eager(Gate& gate, RecvRequest* req, uint32_t offset,
                         uint32_t total, util::ConstBytes payload) {
  if (!req->set_total(total)) {
    finish_recv_if_done(gate, req);
    return;
  }
  if (payload.empty()) {
    recv_add_bytes(gate, req, 0);
    return;
  }
  // Eager data is copied from the NIC buffer into the destination layout:
  // the one unavoidable copy of eager protocols. Content moves now (the
  // source view dies with the packet); completion is accounted when the
  // modelled memcpy finishes.
  req->layout_.scatter(offset, payload);
  const simnet::SimTime done_at = node_.cpu().charge_memcpy(payload.size());
  const size_t n = payload.size();
  world_.at(done_at,
            [this, &gate, req, n]() { recv_add_bytes(gate, req, n); });
}

void Core::handle_rts(Gate& gate, const WireChunk& chunk) {
  const MsgKey key{chunk.tag, chunk.seq};
  auto it = gate.active_recv.find(key);
  if (it == gate.active_recv.end()) {
    ++stats_.unexpected_chunks;
    StoredRts rts;
    rts.len = chunk.len;
    rts.offset = chunk.offset;
    rts.total = chunk.total;
    rts.cookie = chunk.cookie;
    gate.unexpected[key].rts.push_back(rts);
    return;
  }
  start_rdv_recv(gate, it->second, chunk.len, chunk.offset, chunk.total,
                 chunk.cookie);
}

void Core::start_rdv_recv(Gate& gate, RecvRequest* req, uint32_t len,
                          uint32_t offset, uint32_t total, uint64_t cookie) {
  if (!req->set_total(total)) {
    // Truncation: no CTS is ever sent; the request carries the error.
    finish_recv_if_done(gate, req);
    return;
  }

  RdvRecv rec;
  rec.request = req;
  rec.len = len;
  rec.offset = offset;
  util::MutableBytes region = req->layout_.contiguous_region(offset, len);
  if (region.empty() && len > 0) {
    // Destination is scattered: receive through a bounce buffer, scatter
    // on completion (costs a modelled memcpy — zero-copy only when the
    // block lands contiguously, exactly the Figure 4 distinction).
    rec.bounce.resize(len);
    region = rec.bounce.view();
  }
  const GateId gate_id = gate.id;
  rec.sink = std::make_unique<simnet::BulkSink>(
      cookie, region, len, [this, gate_id, cookie]() {
        // Defer: the sink is still on the delivery stack right now.
        world_.after(0.0, [this, gate_id, cookie]() {
          on_bulk_recv_complete(gate_id, cookie);
        });
      });

  std::vector<uint8_t> posted_rails;
  for (RailIndex r : gate.rails) {
    if (!rails_[r].info.rdma) continue;
    const util::Status st = rails_[r].driver->post_bulk_recv(rec.sink.get());
    NMAD_ASSERT_MSG(st.is_ok(), "bulk post failed on RDMA rail");
    posted_rails.push_back(static_cast<uint8_t>(r));
  }
  NMAD_ASSERT_MSG(!posted_rails.empty(),
                  "RTS received but no RDMA rail available");
  rec.rails = posted_rails;
  gate.rdv_recv.emplace(cookie, std::move(rec));

  // Grant: the CTS is an ordinary control chunk — it rides the window and
  // may be aggregated with outgoing data (key to the §5.3 strategy).
  OutChunk* cts = new_chunk();
  cts->kind = ChunkKind::kCts;
  cts->flags = 0;
  cts->tag = req->tag();
  cts->seq = req->seq();
  cts->cookie = cookie;
  cts->cts_rails = std::move(posted_rails);
  cts->prio = Priority::kHigh;
  cts->owner = nullptr;
  submit_chunk(gate, cts);
  refill_all();
}

void Core::on_bulk_recv_complete(GateId gate_id, uint64_t cookie) {
  Gate& g = gate(gate_id);
  auto it = g.rdv_recv.find(cookie);
  NMAD_ASSERT(it != g.rdv_recv.end());
  RdvRecv rec = std::move(it->second);
  g.rdv_recv.erase(it);

  for (uint8_t r : rec.rails) {
    rails_[r].driver->cancel_bulk_recv(cookie);
  }

  RecvRequest* req = rec.request;
  const size_t len = rec.len;
  if (!rec.bounce.empty()) {
    // Bounce path: scatter into the real destination at memcpy cost.
    req->layout_.scatter(rec.offset, rec.bounce.view());
    const simnet::SimTime done_at = node_.cpu().charge_memcpy(len);
    Gate* gp = &g;
    world_.at(done_at,
              [this, gp, req, len]() { recv_add_bytes(*gp, req, len); });
  } else {
    recv_add_bytes(g, req, len);
  }
}

void Core::recv_add_bytes(Gate& gate, RecvRequest* req, size_t n) {
  req->add_received(n);
  finish_recv_if_done(gate, req);
}

void Core::finish_recv_if_done(Gate& gate, RecvRequest* req) {
  if (!req->done()) return;
  gate.active_recv.erase(MsgKey{req->tag(), req->seq()});
}

void Core::debug_dump(std::FILE* out) const {
  std::fprintf(out, "=== nmad core on node %u (strategy %s) ===\n",
               node_.id(), std::string(strategy_->name()).c_str());
  for (size_t r = 0; r < rails_.size(); ++r) {
    std::fprintf(out, "rail %zu: %s tx_idle=%d prebuilt=%d\n", r,
                 rails_[r].driver->caps().name.c_str(),
                 rails_[r].driver->tx_idle() ? 1 : 0,
                 rails_[r].prebuilt ? 1 : 0);
  }
  for (const auto& gate : gates_) {
    std::fprintf(out,
                 "gate %u → peer %u: window=%zu ready_bulk=%zu "
                 "rdv_wait_cts=%zu active_recv=%zu unexpected=%zu "
                 "rdv_recv=%zu\n",
                 gate->id, gate->peer, gate->window.size(),
                 gate->ready_bulk.size(), gate->rdv_wait_cts.size(),
                 gate->active_recv.size(), gate->unexpected.size(),
                 gate->rdv_recv.size());
  }
  std::fprintf(out,
               "stats: sends=%llu recvs=%llu packets=%llu/%llu "
               "chunks=%llu agg=%llu rdv=%llu bulk=%llu prebuilt=%llu "
               "unexpected=%llu\n",
               static_cast<unsigned long long>(stats_.sends_submitted),
               static_cast<unsigned long long>(stats_.recvs_submitted),
               static_cast<unsigned long long>(stats_.packets_sent),
               static_cast<unsigned long long>(stats_.packets_received),
               static_cast<unsigned long long>(stats_.chunks_sent),
               static_cast<unsigned long long>(stats_.chunks_aggregated),
               static_cast<unsigned long long>(stats_.rdv_started),
               static_cast<unsigned long long>(stats_.bulk_sends),
               static_cast<unsigned long long>(stats_.packets_prebuilt),
               static_cast<unsigned long long>(stats_.unexpected_chunks));
}

void Core::handle_cts(Gate& gate, const WireChunk& chunk) {
  auto it = gate.rdv_wait_cts.find(chunk.cookie);
  NMAD_ASSERT_MSG(it != gate.rdv_wait_cts.end(), "CTS for unknown cookie");
  BulkJob* job = it->second;
  gate.rdv_wait_cts.erase(it);

  // Keep only rails this side can actually drive (and the pinned rail, if
  // the application constrained the message to one).
  job->rails.clear();
  for (uint8_t r : chunk.rails) {
    if (r >= rails_.size() || !rails_[r].info.rdma || !gate.has_rail(r)) {
      continue;
    }
    if (job->pinned_rail != kAnyRail && job->pinned_rail != r) continue;
    job->rails.push_back(r);
  }
  NMAD_ASSERT_MSG(!job->rails.empty(), "CTS grants no usable rail");
  gate.ready_bulk.push_back(*job);
  refill_all();
}

}  // namespace nmad::core
