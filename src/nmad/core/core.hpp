// Core: the NewMadeleine communication engine (paper §3).
//
// One Core instance is one process's engine. It owns the three layers:
//   - collect layer: isend()/irecv() register application data and the
//     metadata needed to identify it remotely (tag, sequence number);
//   - optimizing/scheduling layer: submitted chunks accumulate in the
//     per-gate optimization window; whenever a NIC goes idle the selected
//     Strategy elects/synthesizes the next physical packet just-in-time;
//   - transfer layer: one Driver per rail moves packets and rendezvous
//     bodies, and reports idleness so the cycle continues.
//
// The engine is event-driven: driver callbacks (packet arrival, transmit
// completion, bulk completion) drive all protocol state transitions.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nmad/core/chunk.hpp"
#include "nmad/core/gate.hpp"
#include "nmad/core/layout.hpp"
#include "nmad/core/request.hpp"
#include "nmad/core/strategy.hpp"
#include "nmad/drivers/driver.hpp"
#include "simnet/fabric.hpp"
#include "simnet/world.hpp"
#include "util/pool.hpp"
#include "util/status.hpp"

namespace nmad::core {

struct CoreConfig {
  // Strategy selected at startup ("the optimization function is to be
  // selected among an extensible and programmable set of strategies").
  std::string strategy = "aggreg";

  // Modelled software costs of the engine itself. These are what §5.1
  // measures as the < 0.5 µs MAD-MPI overhead: the extra header plus the
  // scheduler "inspect[ing] the ready list of packets".
  double submit_overhead_us = 0.10;  // collect layer, per isend/irecv
  double submit_chunk_us = 0.03;     // per chunk registered
  double elect_overhead_us = 0.40;   // optimizer, per packet election
  double parse_packet_us = 0.20;     // receive path, per packet
  double parse_chunk_us = 0.05;      // receive path, per chunk

  // Overrides the per-rail rendezvous threshold when non-zero.
  size_t rdv_threshold_override = 0;

  // Appends a 4-byte checksum to every track-0 packet and verifies it on
  // receive — a debugging aid for driver/strategy development (the flag
  // is carried on the wire, so mixed settings interoperate).
  bool wire_checksum = false;

  // §3.2 lists three election policies. The default is pure just-in-time
  // (elect when a NIC idles). Setting this to N > 0 enables the
  // alternatives: once the window backlog reaches N chunks while the NIC
  // is busy, the optimizer runs early and parks one ready-to-send packet,
  // which is handed over the moment the NIC idles ("prepare a single
  // ready-to-send packet to anticipate for any upcoming completion").
  // The election cost is thus overlapped with communication, at the price
  // of freezing that packet's contents early.
  size_t prebuild_backlog_chunks = 0;

  // --- Reliability layer --------------------------------------------------
  // Enables ack/retransmit on track-0 packets and rendezvous slices:
  // every payload-bearing packet carries a sequence number, the receiver
  // acknowledges (piggybacked on reverse traffic where possible), and the
  // sender retransmits on timeout with exponential backoff, failing over
  // to surviving rails. Forces wire_checksum on; corrupt packets are
  // dropped and recovered by retransmission instead of asserting.
  bool reliability = false;
  // Base retransmit deadline for a track-0 packet. Rendezvous slices add
  // their own modelled wire time on top (large slices take longer).
  double ack_timeout_us = 1000.0;
  // Delayed-ack grace: how long the receiver waits for reverse traffic to
  // piggyback on before sending a standalone ack packet.
  double ack_delay_us = 5.0;
  // Timeout multiplier applied after each retransmission of an entry.
  double retry_backoff = 2.0;
  // A packet/slice that times out this many times fails the gate.
  uint32_t max_retries = 10;
  // Consecutive timeouts on one rail before it is declared dead and its
  // in-flight traffic re-elected onto surviving rails (0 disables).
  uint32_t rail_dead_after = 6;
  // Max unacked packets per gate; window packing pauses at the cap.
  size_t reliability_window = 64;

  // --- Receiver-driven flow control ---------------------------------------
  // Enables credit-based eager admission: the receiver advertises
  // cumulative limits on eager bytes/chunks (piggybacked on acks), the
  // strategy layer holds back eager chunks past the limit, and large
  // blocks degrade to rendezvous instead of flooding the peer. Forces
  // reliability on (credits ride the ack machinery).
  bool flow_control = false;
  // Receive-side budget for the unexpected store, in payload bytes and in
  // message-chunk count (0 = unlimited). Credit advertisements never let
  // admitted-but-unheard eager traffic exceed the free budget, so the
  // store stays bounded under overload without dropping data.
  size_t rx_budget = 0;
  size_t rx_budget_msgs = 0;
  // Credits granted to each peer at gate-open, before any advertisement
  // arrives (both endpoints must agree on these, so every core of a
  // fabric should share its flow-control config). For the rx_budget bound
  // to hold from time zero, keep the sum of initial grants across peers
  // within the budget. 0 means unlimited.
  size_t initial_credit_bytes = 64 * 1024;
  size_t initial_credit_msgs = 64;
  // Liveness valve: when the sender has been credit-stalled this long
  // with nothing in flight, it asks the receiver to restate its limits
  // (a zero-valued kCredit chunk). Recovers from a lost final credit
  // update without ever breaching the receiver's budget; never needed in
  // steady state. 0 disables the probe.
  double credit_probe_us = 2000.0;

  // --- Rail health lifecycle ----------------------------------------------
  // Active liveness and revival. Every rail carries lightweight kHeartbeat
  // beacons — piggybacked on outgoing packets when traffic flows, sent
  // standalone when the rail is idle — so silence is detected even with
  // nothing in flight: a rail unheard for suspect_after_us turns suspect,
  // and for dead_after_us is declared dead (kill_rail re-elects its
  // in-flight traffic onto surviving rails). Dead rails are probed every
  // probe_interval_us; a reply echoing the rail's current epoch proves the
  // link works again, and probation_replies fresh replies revive it —
  // rendezvous jobs regain the rail and the next election may use it.
  // Forces reliability on (a dying rail's traffic must be recoverable).
  bool rail_health = false;
  double heartbeat_interval_us = 500.0;
  // Thresholds are on receive silence, so with several peers beaconing in
  // rotation keep suspect_after_us at a few heartbeat intervals.
  double suspect_after_us = 1500.0;
  double dead_after_us = 3000.0;
  double probe_interval_us = 1000.0;
  uint32_t probation_replies = 2;
};

// One rail's position in the health lifecycle (CoreConfig::rail_health):
// alive rails carry traffic and degrade to suspect on silence; dead rails
// carry none and are probed; a probed rail answering with the current
// epoch walks through probation back to alive.
enum class RailHealth : uint8_t { kAlive, kSuspect, kDead, kProbation };

const char* rail_health_name(RailHealth health);

struct CoreStats {
  uint64_t sends_submitted = 0;
  uint64_t recvs_submitted = 0;
  uint64_t packets_sent = 0;
  uint64_t packets_received = 0;
  uint64_t chunks_sent = 0;
  uint64_t chunks_received = 0;
  // Chunks that shared a packet with at least one other chunk.
  uint64_t chunks_aggregated = 0;
  uint64_t rdv_started = 0;
  uint64_t bulk_sends = 0;
  uint64_t bulk_bytes = 0;
  uint64_t unexpected_chunks = 0;
  uint64_t packets_prebuilt = 0;  // elected early under the backlog policy

  // Reliability layer.
  uint64_t packet_timeouts = 0;
  uint64_t packets_retransmitted = 0;
  uint64_t packets_rejected = 0;    // corrupt/unverifiable, dropped
  uint64_t packets_duplicate = 0;   // suppressed by seq dedup (re-acked)
  uint64_t acks_sent = 0;           // standalone delayed-ack packets
  uint64_t acks_piggybacked = 0;    // acks injected into outgoing packets
  uint64_t bulk_timeouts = 0;
  uint64_t bulk_retransmitted = 0;
  uint64_t rails_failed = 0;
  uint64_t gates_failed = 0;

  // Rail health lifecycle.
  uint64_t heartbeats_sent = 0;      // beacons (piggybacked + standalone)
  uint64_t heartbeats_received = 0;  // plain beacons heard
  uint64_t probes_sent = 0;          // revival probes on dead rails
  uint64_t probe_replies_sent = 0;
  uint64_t heartbeats_fenced = 0;    // stale-epoch beacons/replies dropped
  uint64_t rails_suspected = 0;      // alive -> suspect transitions
  uint64_t rails_revived = 0;        // probation -> alive transitions
  uint64_t probation_demotions = 0;  // probation -> dead (replies dried up)

  // Drain / close.
  uint64_t drains_started = 0;
  uint64_t drains_completed = 0;
  uint64_t gates_closed = 0;

  // Flow control.
  uint64_t credit_grants = 0;        // credit chunks put on the wire
  uint64_t credit_stalls = 0;        // eager chunks held back by credit
  uint64_t credit_probes = 0;        // credit requests sent while stalled
  uint64_t credit_rdv_degrades = 0;  // eager blocks demoted to rendezvous
  uint64_t rx_stored_bytes = 0;      // unexpected-store payload (gauge)
  uint64_t rx_stored_hwm = 0;        // high-water mark of the above

  // Cancellation / deadlines.
  uint64_t sends_cancelled = 0;
  uint64_t recvs_cancelled = 0;
  uint64_t deadlines_exceeded = 0;
  uint64_t cancelled_payload_dropped = 0;  // chunks for a cancelled recv

  // Invariant validation (check_invariants / validate_invariants; the
  // hot-path hooks that drive these only compile under -DNMAD_VALIDATE).
  uint64_t validate_ticks = 0;
  uint64_t validate_violations = 0;
};

struct SendHints {
  Priority prio = Priority::kNormal;
  RailIndex pinned_rail = kAnyRail;
};

class Core {
 public:
  Core(simnet::SimWorld& world, simnet::SimNode& node, CoreConfig config);
  ~Core();

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  // Setup ----------------------------------------------------------------
  // Adds one rail (driver). All rails must be added before connecting.
  util::Status add_rail(std::unique_ptr<drivers::Driver> driver);

  // Opens a gate to `peer` using all rails (or an explicit subset).
  // Rail indices are assumed symmetric between the two processes, which
  // holds by construction in the simulated fabric.
  util::Expected<GateId> connect(drivers::PeerAddr peer);
  util::Expected<GateId> connect(drivers::PeerAddr peer,
                                 std::vector<RailIndex> rails);

  // Collect layer ----------------------------------------------------------
  // Submits a message gathered from `src`; each source block becomes one
  // or more window chunks (eager) or a rendezvous job (large blocks).
  SendRequest* isend(GateId gate, Tag tag, const SourceLayout& src,
                     const SendHints& hints = {});
  SendRequest* isend(GateId gate, Tag tag, util::ConstBytes data,
                     const SendHints& hints = {});

  RecvRequest* irecv(GateId gate, Tag tag, DestLayout dest);
  RecvRequest* irecv(GateId gate, Tag tag, util::MutableBytes buffer);

  // Nonblocking probe: reports whether the *next* message on (gate, tag)
  // — the one the next irecv would match — has already announced itself
  // (eager data or a rendezvous RTS), without consuming anything.
  //
  // Sequence contract (pinned by EngineProtocol.PeekMatchesNextIrecvOnly):
  // the probe consults exactly the (tag, seq) pair the next irecv on this
  // tag will be assigned — the current receive-sequence counter. Messages
  // that arrived out of order for *later* sequence numbers never match,
  // even though they are sitting in the unexpected store; they become
  // visible one at a time as preceding irecvs consume the counter. A
  // peek therefore never reorders matching and iprobe/irecv pairs are
  // race-free: if peek says matched, the next irecv matches that very
  // message.
  struct PeekResult {
    bool matched = false;
    bool total_known = false;
    size_t total_bytes = 0;
  };
  [[nodiscard]] PeekResult peek_unexpected(GateId gate, Tag tag);

  // Completion -------------------------------------------------------------
  [[nodiscard]] static bool test(const Request* req) { return req->done(); }
  // Returns the request to the engine pool; only valid once done.
  void release(Request* req);

  // Cancellation / deadlines ------------------------------------------------
  // Withdraws a pending request. Receives always cancel (the engine
  // tombstones the message key and drops late payload); sends cancel when
  // every part is still reachable — a part already on the wire whose fate
  // the engine cannot recall (non-reliable eager in flight, streamed
  // rendezvous bytes) makes cancel return false and the request proceeds.
  // On success the request completes with kCancelled (or `status`) and
  // must still be release()d by the caller. No-op (returns false) on
  // requests that are already done.
  bool cancel(Request* req);
  // Arms a deadline `timeout_us` of virtual time from now; if the request
  // is still pending when it expires, the engine cancels it with
  // kDeadlineExceeded. An uncancellable send re-arms and tries again. At
  // most one deadline per request (the last call wins).
  void set_deadline(Request* req, double timeout_us);

  // Graceful drain / shutdown ----------------------------------------------
  // Pumps the shared event loop until this engine is flushed: every
  // non-failed gate's optimization window, rendezvous pipeline and
  // retransmit windows are empty and all deferred acknowledgements have
  // shipped. Unmatched receives stay posted (the application may expect
  // traffic after the drain) and the engine remains fully usable — drain
  // is a flush, not a teardown. Returns kDeadlineExceeded when
  // `deadline_us` of virtual time elapses first, or when the whole
  // simulation goes quiescent with this engine still holding undelivered
  // state (e.g. a rendezvous whose receive was never posted): either way
  // the engine cannot flush in time. On success the quiescence audit
  // (check_invariants) runs and its first failure is surfaced.
  util::Status drain(double deadline_us);
  // True when the flush condition above already holds.
  [[nodiscard]] bool drained() const;
  // Releases every local resource of one gate: unmatched receives
  // complete with kClosed, the unexpected store is dropped and its rx
  // budget released, posted bulk sinks are withdrawn, timers disarmed.
  // The gate refuses traffic afterwards. Drain first for a graceful
  // shutdown; closing with traffic in flight abandons it.
  void close_gate(GateId id);

  // Drives driver-internal progress (no-op on the simulated fabric).
  void poll();

  // Introspection ----------------------------------------------------------
  [[nodiscard]] const CoreConfig& config() const { return config_; }
  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  [[nodiscard]] size_t rail_count() const { return rails_.size(); }
  [[nodiscard]] const RailInfo& rail_info(RailIndex rail) const;
  // Reliability: rails marked dead after repeated timeouts stop carrying
  // traffic; fail_rail() forces the transition (operational use: a health
  // monitor outside the engine noticed the link die).
  [[nodiscard]] bool rail_alive(RailIndex rail) const;
  void fail_rail(RailIndex rail);
  // Rail health lifecycle: where the rail stands, and its revival epoch
  // (bumped on every death, fencing probe replies and beacons from an
  // earlier life). revive_rail() forces the dead->alive transition the
  // probation handshake normally performs (operational use, mirroring
  // fail_rail): rendezvous jobs whose CTS granted the rail regain it and
  // the next election may schedule onto it again.
  [[nodiscard]] RailHealth rail_health_state(RailIndex rail) const;
  [[nodiscard]] uint32_t rail_epoch(RailIndex rail) const;
  void revive_rail(RailIndex rail);
  // Disarms the heartbeat/probe timers. The monitors re-arm themselves
  // forever by design (liveness has no natural end), which keeps the
  // simulation from ever going quiescent; harnesses that pump the world
  // dry call this once the workload is finished.
  void stop_health_monitors();
  [[nodiscard]] size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] Gate& gate(GateId id);
  [[nodiscard]] size_t window_size(GateId id);
  [[nodiscard]] std::string_view strategy_name() const {
    return strategy_->name();
  }

  // Switches the optimization function at runtime — the paper proposes a
  // "(dynamically in the future) selectable optimization function"
  // (§3.2). Safe at any point: strategies are stateless over the window,
  // so the next election simply uses the new policy. Returns not-found
  // for unregistered names.
  util::Status set_strategy(const std::string& name);
  [[nodiscard]] simnet::SimWorld& world() { return world_; }
  [[nodiscard]] simnet::SimNode& node() { return node_; }

  // Strategy SPI: flow control -----------------------------------------
  // Whether the credit window admits electing `chunk` onto the wire now.
  // Control chunks, already-charged chunks and empty payloads always
  // pass. Denial records a stall and arms the liveness probe.
  [[nodiscard]] bool credit_admits(Gate& gate, const OutChunk& chunk);
  // Charges an elected chunk against the gate's credit (idempotent;
  // strategies call it when they take a payload chunk off the window).
  void charge_credit(Gate& gate, OutChunk& chunk);

  // Writes a human-readable snapshot of the engine state (windows,
  // pending rendezvous, in-flight receives) — used by deadlock
  // diagnostics and debugging sessions.
  void debug_dump(std::FILE* out) const;

  // Invariant validation ---------------------------------------------------
  // Cross-checks every gate's bookkeeping against first principles:
  // window byte accounting vs. credit charges, sent/heard traffic vs. the
  // advertised limits, the unexpected store vs. its gauge and rx budget,
  // retransmit-timer liveness, and the matching-structure disjointness
  // (active vs. unexpected vs. cancelled). Returns true when clean;
  // otherwise appends one line per violation to `failures` (which may be
  // null). Always compiled — the chaos harness calls it at quiescence in
  // any build; only the per-tick hooks below are NMAD_VALIDATE-gated.
  [[nodiscard]] bool check_invariants(
      std::vector<std::string>* failures) const;

  // Per-progress-tick checker (wired into refill_all / on_packet under
  // -DNMAD_VALIDATE=1): bumps stats().validate_ticks, and on violation
  // prints every failure plus debug_dump(stderr) and aborts — unless a
  // failure handler is installed (harness self-tests observe violations
  // without dying).
  void validate_invariants();
  using ValidateFailureHandler =
      std::function<void(const std::vector<std::string>&)>;
  void set_validate_failure_handler(ValidateFailureHandler handler);

  // Fault injection for the harness self-test: the next `n` calls to
  // charge_credit become no-ops, modelling a sender that elects eager
  // traffic without charging it against the peer's credit window.
  void test_skip_next_credit_charge(uint32_t n = 1) {
    skip_credit_charges_ += n;
  }

 private:
  struct RailState {
    std::unique_ptr<drivers::Driver> driver;
    RailInfo info;
    size_t rr_cursor = 0;  // round-robin position over gates
    // Packet elected early under the prebuild policy, waiting for idle.
    std::shared_ptr<PacketBuilder> prebuilt;
    GateId prebuilt_gate = 0;
    // Reliability: dead rails carry no traffic; consecutive unanswered
    // timeouts (reset by any ack for this rail) drive the declaration.
    bool alive = true;
    uint32_t consec_timeouts = 0;
    // Rail health lifecycle (CoreConfig::rail_health). `epoch` bumps on
    // every death, so probe replies and beacons from an earlier life can
    // be told from fresh ones; `peer_epoch` is the highest epoch heard in
    // the peer's plain beacons (older ones are stale wire images from
    // retransmitted packets and are fenced).
    RailHealth health = RailHealth::kAlive;
    uint32_t epoch = 0;
    uint32_t peer_epoch = 0;
    uint32_t probation_hits = 0;      // fresh probe replies this probation
    double last_rx_us = 0.0;          // anything heard on this rail
    double last_fresh_reply_us = 0.0;
    double last_probe_us = -1.0e18;
    // Last beacon sent per gate (indexed by GateId, lazily sized): the
    // liveness thresholds are per-peer receive silence, so each peer must
    // hear its own beacons.
    std::vector<double> hb_tx_us;
    simnet::EventId health_timer = 0;
    bool health_timer_armed = false;
  };

  void maybe_prebuild(RailIndex rail);

  // Scheduling -------------------------------------------------------------
  void refill_all();
  void refill_rail(RailIndex rail);
  void issue_packet(Gate& gate, RailIndex rail,
                    std::shared_ptr<PacketBuilder> builder,
                    bool charge_election = true);
  void issue_bulk(Gate& gate, RailIndex rail, BulkJob* job, size_t bytes);

  // Submission helpers ------------------------------------------------------
  OutChunk* new_chunk();
  void submit_chunk(Gate& gate, OutChunk* chunk);
  void submit_rdv_block(Gate& gate, SendRequest* req, Tag tag, SeqNum seq,
                        size_t logical_offset, util::ConstBytes block,
                        size_t total, const SendHints& hints);
  void submit_eager_block(Gate& gate, SendRequest* req, Tag tag, SeqNum seq,
                          size_t logical_offset, util::ConstBytes block,
                          size_t total, bool simple,
                          const SendHints& hints);

  // Receive path ------------------------------------------------------------
  void on_packet(RailIndex rail, drivers::RxPacket&& packet);
  void handle_payload_chunk(Gate& gate, const WireChunk& chunk);
  void handle_rts(Gate& gate, const WireChunk& chunk);
  void handle_cts(Gate& gate, const WireChunk& chunk);
  void deliver_eager(Gate& gate, RecvRequest* req, uint32_t offset,
                     uint32_t total, util::ConstBytes payload);
  void start_rdv_recv(Gate& gate, RecvRequest* req, uint32_t len,
                      uint32_t offset, uint32_t total, uint64_t cookie);
  void on_bulk_recv_complete(GateId gate_id, uint64_t cookie);
  void recv_add_bytes(Gate& gate, RecvRequest* req, size_t n);
  void finish_recv_if_done(Gate& gate, RecvRequest* req);

  // Reliability layer -------------------------------------------------------
  [[nodiscard]] bool reliable() const { return config_.reliability; }
  // Registers an incoming reliable packet seq; true if already heard.
  bool reliable_rx_register(Gate& gate, uint32_t seq);
  // Builds an ack chunk from the gate's receive state. Bulk-slice acks
  // are only drained from the gate once the chunk is committed to a
  // packet (commit_ack_chunk); packet acks (floor + sacks) are idempotent.
  OutChunk* make_ack_chunk(Gate& gate);
  void commit_ack_chunk(Gate& gate, OutChunk* ack);
  void maybe_inject_ack(Gate& gate, PacketBuilder& builder);
  void schedule_ack(Gate& gate);
  void on_ack_timer(GateId gate_id);
  void handle_ack(Gate& gate, const WireChunk& chunk);
  void retire_packet(Gate& gate,
                     std::map<uint32_t, PendingPacket>::iterator it);
  void retire_bulk(Gate& gate, const BulkAck& ack);
  void arm_packet_timer(Gate& gate, uint32_t seq);
  void arm_bulk_timer(Gate& gate, const BulkKey& key);
  void on_packet_timeout(GateId gate_id, uint32_t seq);
  void on_bulk_timeout(GateId gate_id, BulkKey key);
  void retransmit_packet(Gate& gate, RailIndex rail, uint32_t seq);
  void retransmit_bulk(Gate& gate, RailIndex rail, const BulkKey& key);
  void note_rail_timeout(RailIndex rail);
  void kill_rail(RailIndex rail);
  void fail_gate(Gate& gate, const util::Status& status);
  // Shared teardown behind fail_gate (peer failure) and close_gate (local
  // shutdown); only the bookkeeping around it differs.
  void teardown_gate(Gate& gate, const util::Status& status);
  void on_bulk_orphan(drivers::PeerAddr from, uint64_t cookie,
                      size_t offset, size_t len);

  // Rail health lifecycle ---------------------------------------------------
  [[nodiscard]] bool rail_health_on() const { return config_.rail_health; }
  void start_health_monitors();
  void on_health_tick(RailIndex rail);
  // Appends a plain beacon to an outgoing packet when the rail's beacon
  // to this gate is due (at most one per heartbeat interval per peer).
  void maybe_inject_heartbeat(Gate& gate, RailIndex rail,
                              PacketBuilder& builder);
  // Fire-and-forget single-chunk heartbeat packet (plain beacon, probe,
  // or reply); the caller checks tx_idle first.
  void send_standalone_heartbeat(Gate& gate, RailIndex rail, uint8_t flags,
                                 uint32_t epoch);
  void handle_heartbeat(Gate& gate, RailIndex rail, const WireChunk& chunk);
  OutChunk* make_heartbeat_chunk(uint8_t flags, uint32_t epoch);
  double& hb_tx_slot(RailState& rs, GateId id);

  // Flow control ------------------------------------------------------------
  [[nodiscard]] bool flow_control() const { return config_.flow_control; }
  // Recomputes the limits this receiver can advertise to `gate`'s peer
  // without the sum of all peers' admissible-but-unheard eager traffic
  // exceeding the free rx budget. Monotone: limits never retreat.
  void refresh_advert(Gate& gate);
  OutChunk* make_credit_chunk(Gate& gate);
  void maybe_inject_credit(Gate& gate, PacketBuilder& builder);
  void handle_credit(Gate& gate, const WireChunk& chunk);
  void note_credit_stall(Gate& gate);
  void on_credit_probe(GateId gate_id);
  void rx_store_charge(Gate& gate, size_t bytes, size_t chunks);
  void rx_store_discharge(Gate& gate, size_t bytes, size_t chunks);

  // Cancellation ------------------------------------------------------------
  bool cancel_with(Request* req, util::Status status);
  bool cancel_send(Gate& gate, SendRequest* req, util::Status status);
  bool cancel_recv(Gate& gate, RecvRequest* req, util::Status status);
  void handle_cancel_cts(Gate& gate, const WireChunk& chunk);
  void send_cancel_rts(Gate& gate, Tag tag, SeqNum seq, uint64_t cookie);
  void send_cancel_cts(Gate& gate, Tag tag, SeqNum seq, uint64_t cookie);
  void remove_window_rts(Gate& gate, uint64_t cookie);
  void drop_bulk_job(Gate& gate, BulkJob* job);
  void cancel_deadline(Request* req);
  void on_deadline(Request* req);

  [[nodiscard]] size_t max_eager_payload(const Gate& gate) const;

  simnet::SimWorld& world_;
  simnet::SimNode& node_;
  CoreConfig config_;
  std::unique_ptr<Strategy> strategy_;
  std::vector<RailState> rails_;
  std::vector<std::unique_ptr<Gate>> gates_;
  std::map<drivers::PeerAddr, GateId> peer_gate_;
  uint64_t next_cookie_;
  bool connected_ = false;  // first connect freezes rail setup
  bool health_monitors_started_ = false;

  util::ObjectPool<OutChunk> chunk_pool_;
  util::ObjectPool<BulkJob> bulk_pool_;
  util::ObjectPool<SendRequest> send_pool_;
  util::ObjectPool<RecvRequest> recv_pool_;

  ValidateFailureHandler validate_failure_handler_;
  uint32_t skip_credit_charges_ = 0;  // test hook: drop upcoming charges

  CoreStats stats_;
};

}  // namespace nmad::core
