// Core: the NewMadeleine communication engine façade (paper §3).
//
// One Core instance is one process's engine. The engine proper lives in
// three collaborating layers, each a separate translation unit that never
// includes another layer's header:
//   - CollectLayer: isend()/irecv() register application data and the
//     metadata needed to identify it remotely (tag, sequence number),
//     match incoming traffic and park the unexpected;
//   - ScheduleLayer: submitted chunks accumulate in the per-gate
//     optimization window; whenever a NIC goes idle the selected Strategy
//     elects/synthesizes the next physical packet just-in-time. The
//     reliability windows and credit accounting live here too;
//   - TransferEngine (one per rail): owns the driver, pumps tx/rx, and
//     runs the rail's health lifecycle.
//
// Core wires the layers together through the seam interfaces
// (layer_ifaces.hpp) and the event bus (events.hpp), keeps the public API
// stable, and retains only the engine-level concerns no layer owns: gate
// setup/teardown, the packet hub that decodes arrivals and dispatches
// chunks to their owning layer, request deadlines, drain, and the
// cross-layer invariant audit.
//
// The engine is event-driven: driver callbacks (packet arrival, transmit
// completion, bulk completion) drive all protocol state transitions.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "nmad/core/chunk.hpp"
#include "nmad/core/collect_layer.hpp"
#include "nmad/core/config.hpp"
#include "nmad/core/events.hpp"
#include "nmad/core/gate.hpp"
#include "nmad/core/layer_ifaces.hpp"
#include "nmad/core/layout.hpp"
#include "nmad/core/request.hpp"
#include "nmad/core/schedule_layer.hpp"
#include "nmad/core/strategy.hpp"
#include "nmad/core/transfer_engine.hpp"
#include "nmad/drivers/driver.hpp"
#include "nmad/runtime/runtime.hpp"
#include "util/pool.hpp"
#include "util/status.hpp"

namespace nmad::core {

class Core final : public ITransferFleet, private IEngine {
 public:
  // The runtime supplies time, timers and host-cost accounting; it may be
  // a SimRuntime (deterministic virtual time) or a WallClockRuntime (real
  // transports). The engine itself never learns which.
  Core(runtime::IRuntime& rt, CoreConfig config);
  ~Core() override;

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  // Setup ----------------------------------------------------------------
  // Adds one rail (driver). All rails must be added before connecting.
  util::Status add_rail(std::unique_ptr<drivers::Driver> driver);

  // Opens a gate to `peer` using all rails (or an explicit subset).
  // Rail indices are assumed symmetric between the two processes, which
  // holds by construction in the simulated fabric.
  util::Expected<GateId> connect(drivers::PeerAddr peer);
  util::Expected<GateId> connect(drivers::PeerAddr peer,
                                 std::vector<RailIndex> rails);

  // Collect layer ----------------------------------------------------------
  // Submits a message gathered from `src`; each source block becomes one
  // or more window chunks (eager) or a rendezvous job (large blocks).
  SendRequest* isend(GateId gate, Tag tag, const SourceLayout& src,
                     const SendHints& hints = {});
  SendRequest* isend(GateId gate, Tag tag, util::ConstBytes data,
                     const SendHints& hints = {});

  RecvRequest* irecv(GateId gate, Tag tag, DestLayout dest);
  RecvRequest* irecv(GateId gate, Tag tag, util::MutableBytes buffer);

  // Nonblocking probe: reports whether the *next* message on (gate, tag)
  // — the one the next irecv would match — has already announced itself
  // (eager data or a rendezvous RTS), without consuming anything.
  //
  // Sequence contract (pinned by EngineProtocol.PeekMatchesNextIrecvOnly):
  // the probe consults exactly the (tag, seq) pair the next irecv on this
  // tag will be assigned — the current receive-sequence counter. Messages
  // that arrived out of order for *later* sequence numbers never match,
  // even though they are sitting in the unexpected store; they become
  // visible one at a time as preceding irecvs consume the counter. A
  // peek therefore never reorders matching and iprobe/irecv pairs are
  // race-free: if peek says matched, the next irecv matches that very
  // message.
  using PeekResult = PeekInfo;
  [[nodiscard]] PeekResult peek_unexpected(GateId gate, Tag tag);

  // Completion -------------------------------------------------------------
  [[nodiscard]] static bool test(const Request* req) { return req->done(); }
  // Returns the request to the engine pool; only valid once done.
  void release(Request* req);

  // Cancellation / deadlines ------------------------------------------------
  // Withdraws a pending request. Receives always cancel (the engine
  // tombstones the message key and drops late payload); sends cancel when
  // every part is still reachable — a part already on the wire whose fate
  // the engine cannot recall (non-reliable eager in flight, streamed
  // rendezvous bytes) makes cancel return false and the request proceeds.
  // On success the request completes with kCancelled (or `status`) and
  // must still be release()d by the caller. No-op (returns false) on
  // requests that are already done.
  bool cancel(Request* req);
  // Arms a deadline `timeout_us` of runtime time from now; if the request
  // is still pending when it expires, the engine cancels it with
  // kDeadlineExceeded. An uncancellable send re-arms and tries again. At
  // most one deadline per request (the last call wins).
  void set_deadline(Request* req, double timeout_us);

  // Graceful drain / shutdown ----------------------------------------------
  // Pumps the runtime until this engine is flushed: every non-failed
  // gate's optimization window, rendezvous pipeline and retransmit
  // windows are empty and all deferred acknowledgements have shipped.
  // Unmatched receives stay posted (the application may expect traffic
  // after the drain) and the engine remains fully usable — drain is a
  // flush, not a teardown. Returns kDeadlineExceeded when `deadline_us`
  // of runtime time elapses first, or when the runtime reports no further
  // progress is possible with this engine still holding undelivered state
  // (e.g. a rendezvous whose receive was never posted): either way the
  // engine cannot flush in time. On success the quiescence audit
  // (check_invariants) runs and its first failure is surfaced.
  util::Status drain(double deadline_us);
  // True when the flush condition above already holds.
  [[nodiscard]] bool drained() const;
  // Releases every local resource of one gate: unmatched receives
  // complete with kClosed, the unexpected store is dropped and its rx
  // budget released, posted bulk sinks are withdrawn, timers disarmed.
  // The gate refuses traffic afterwards. Drain first for a graceful
  // shutdown; closing with traffic in flight abandons it.
  void close_gate(GateId id);

  // Drives driver-internal progress (no-op on the simulated fabric).
  void poll();

  // Introspection ----------------------------------------------------------
  [[nodiscard]] const CoreConfig& config() const { return config_; }
  [[nodiscard]] const CoreStats& stats() const { return stats_; }
  // ITransferFleet (also the public rail-count accessor).
  [[nodiscard]] size_t rail_count() const override { return rails_.size(); }
  [[nodiscard]] ITransferRail& transfer_rail(RailIndex rail) override;
  [[nodiscard]] const ITransferRail& transfer_rail(
      RailIndex rail) const override;
  [[nodiscard]] const RailInfo& rail_info(RailIndex rail) const;
  // Reliability: rails marked dead after repeated timeouts stop carrying
  // traffic; fail_rail() forces the transition (operational use: a health
  // monitor outside the engine noticed the link die).
  [[nodiscard]] bool rail_alive(RailIndex rail) const;
  void fail_rail(RailIndex rail);
  // Rail health lifecycle: where the rail stands, and its revival epoch
  // (bumped on every death, fencing probe replies and beacons from an
  // earlier life). revive_rail() forces the dead->alive transition the
  // probation handshake normally performs (operational use, mirroring
  // fail_rail): rendezvous jobs whose CTS granted the rail regain it and
  // the next election may schedule onto it again.
  [[nodiscard]] RailHealth rail_health_state(RailIndex rail) const;
  [[nodiscard]] uint32_t rail_epoch(RailIndex rail) const;
  void revive_rail(RailIndex rail);
  // Disarms the heartbeat/probe timers. The monitors re-arm themselves
  // forever by design (liveness has no natural end), which keeps the
  // runtime from ever going quiescent; harnesses that pump the event
  // loop dry call this once the workload is finished.
  void stop_health_monitors();
  [[nodiscard]] size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] Gate& gate(GateId id);
  [[nodiscard]] size_t window_size(GateId id);
  [[nodiscard]] std::string_view strategy_name() const {
    return sched_.strategy_name();
  }

  // Switches the optimization function at runtime — the paper proposes a
  // "(dynamically in the future) selectable optimization function"
  // (§3.2). Safe at any point: strategies are stateless over the window,
  // so the next election simply uses the new policy. Returns not-found
  // for unregistered names.
  util::Status set_strategy(const std::string& name);
  [[nodiscard]] runtime::IRuntime& rt() { return rt_; }
  [[nodiscard]] const runtime::IRuntime& rt() const { return rt_; }

  // Layer access ------------------------------------------------------------
  // The concrete layers, for tests and benchmarks that drive one layer
  // directly (the strategy SPI hands ScheduleLayer& to pack()).
  [[nodiscard]] ScheduleLayer& scheduler() { return sched_; }
  [[nodiscard]] CollectLayer& collector() { return collect_; }
  [[nodiscard]] EventBus& bus() { return bus_; }
  [[nodiscard]] const EventBus& bus() const { return bus_; }

  // Strategy SPI: flow control -----------------------------------------
  // Forwarders kept for harness code that holds a Core; strategies
  // themselves receive the ScheduleLayer.
  [[nodiscard]] bool credit_admits(Gate& gate, const OutChunk& chunk) {
    return sched_.credit_admits(gate, chunk);
  }
  void charge_credit(Gate& gate, OutChunk& chunk) {
    sched_.charge_credit(gate, chunk);
  }

  // Allocation telemetry for the churn-regression tests: pool occupancy
  // and slab counts for every hot-path pool, the runtime timer-queue
  // slab/slot capacities, and the global InlineFunction heap-spill count.
  // Every `*_grows`/capacity field is monotone and must be flat across a
  // steady-state phase — any increase is a hot-path heap allocation.
  struct AllocStats {
    size_t chunk_pool_live = 0;
    size_t chunk_pool_capacity = 0;
    size_t chunk_pool_grows = 0;
    size_t bulk_pool_live = 0;
    size_t bulk_pool_capacity = 0;
    size_t bulk_pool_grows = 0;
    size_t send_pool_live = 0;
    size_t send_pool_capacity = 0;
    size_t send_pool_grows = 0;
    size_t recv_pool_live = 0;
    size_t recv_pool_capacity = 0;
    size_t recv_pool_grows = 0;
    runtime::TimerStats queue;
    uint64_t inline_fn_heap_allocs = 0;
  };
  [[nodiscard]] AllocStats alloc_stats() const;

  // Writes a human-readable snapshot of the engine state (windows,
  // pending rendezvous, in-flight receives, the event-bus trace) — used
  // by deadlock diagnostics and debugging sessions.
  void debug_dump(std::ostream& out = std::cerr) const;

  // Invariant validation ---------------------------------------------------
  // Cross-checks every layer's bookkeeping against first principles: each
  // layer audits its own state (CollectLayer::check_gate,
  // ScheduleLayer::check_gate, TransferEngine::check) and the façade
  // cross-checks the seams (the unexpected store vs. the scheduler's
  // gauge, the engine-wide rx budget). Returns true when clean; otherwise
  // appends one line per violation to `failures` (which may be null).
  // Always compiled — the chaos harness calls it at quiescence in any
  // build; only the per-tick hooks below are NMAD_VALIDATE-gated.
  [[nodiscard]] bool check_invariants(
      std::vector<std::string>* failures) const;

  // Per-progress-tick checker (wired into the scheduler's kick() and the
  // packet hub under -DNMAD_VALIDATE=1): bumps stats().validate_ticks,
  // and on violation prints every failure plus debug_dump() and the
  // event trace and aborts — unless a failure handler is installed
  // (harness self-tests observe violations without dying).
  void validate_invariants();
  using ValidateFailureHandler =
      std::function<void(const std::vector<std::string>&)>;
  void set_validate_failure_handler(ValidateFailureHandler handler);

  // Fault injection for the harness self-test: the next `n` calls to
  // charge_credit become no-ops, modelling a sender that elects eager
  // traffic without charging it against the peer's credit window.
  void test_skip_next_credit_charge(uint32_t n = 1) {
    sched_.skip_next_credit_charge(n);
  }

 private:
  // IEngine (the services layers call back into the façade for).
  void fail_gate(Gate& gate, const util::Status& status) override;
  void peer_unreachable(Gate& gate) override;
  void cancel_deadline(Request* req) override;
  void validate_tick() override { validate_invariants(); }

  // Peer lifecycle (CoreConfig::peer_lifecycle). The death-grace timer
  // armed by peer_unreachable lands here; a grace that expires with every
  // rail still down declares the peer dead (kPeerDead unwind + kPeerDied
  // event, heartbeats kept flowing). Heartbeat chunks pass through
  // on_peer_heartbeat before the rail health machinery: beacons from a
  // previous incarnation are fenced (return false), a bumped incarnation
  // unwinds the old life, and a beacon on a live rail re-opens a
  // peer-dead gate with fresh sequence/credit state — but only when it
  // proves the peer unwound too (a strictly newer incarnation or a
  // strictly newer unwind generation than what was recorded at death;
  // see Gate::gate_gen).
  void on_peer_grace(Gate& gate);
  void declare_peer_dead(Gate& gate, const char* why);
  bool on_peer_heartbeat(Gate& gate, RailIndex rail, const WireChunk& chunk);
  void rejoin_gate(Gate& gate);

  // The packet hub: decodes one arrived packet and dispatches each chunk
  // to the layer that owns its state.
  void on_packet(RailIndex rail, drivers::RxPacket&& packet);

  // Shared teardown behind fail_gate (peer failure) and close_gate (local
  // shutdown); only the bookkeeping around it differs. Orchestrates the
  // per-layer teardowns in wire-safe order.
  void teardown_gate(Gate& gate, const util::Status& status);
  void on_bulk_orphan(drivers::PeerAddr from, uint64_t cookie, size_t offset,
                      size_t len);

  void start_health_monitors();

  // Cancellation / deadlines.
  bool cancel_with(Request* req, util::Status status);
  void on_deadline(Request* req);

  // Per-layer violation tallies from one check_invariants() pass, so the
  // stats can attribute failures to the layer that reported them.
  struct ValidateReport {
    size_t collect = 0;
    size_t schedule = 0;
    size_t transfer = 0;
    size_t engine = 0;
  };
  bool check_invariants_report(std::vector<std::string>* failures,
                               ValidateReport* report) const;

  runtime::IRuntime& rt_;
  CoreConfig config_;
  CoreStats stats_;
  EventBus bus_;

  util::ObjectPool<OutChunk> chunk_pool_;
  util::ObjectPool<BulkJob> bulk_pool_;
  util::ObjectPool<SendRequest> send_pool_;
  util::ObjectPool<RecvRequest> recv_pool_;
  std::vector<std::unique_ptr<Gate>> gates_;

  EngineContext ctx_;
  std::vector<std::unique_ptr<TransferEngine>> rails_;
  ScheduleLayer sched_;
  CollectLayer collect_;

  // Dense peer→gate index (PeerAddrs are small node ranks): on_packet
  // resolves the owning gate with one array load instead of a tree walk,
  // keeping per-packet cost rank-count-independent.
  std::vector<GateId> peer_gate_;  // kNoGate = no gate to that peer
  bool connected_ = false;  // first connect freezes rail setup
  bool health_monitors_started_ = false;

  ValidateFailureHandler validate_failure_handler_;
};

}  // namespace nmad::core
