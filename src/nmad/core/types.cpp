#include "nmad/core/types.hpp"

namespace nmad::core {

const char* chunk_kind_name(ChunkKind kind) {
  switch (kind) {
    case ChunkKind::kData: return "data";
    case ChunkKind::kFrag: return "frag";
    case ChunkKind::kRts: return "rts";
    case ChunkKind::kCts: return "cts";
    case ChunkKind::kAck: return "ack";
    case ChunkKind::kCredit: return "credit";
    case ChunkKind::kHeartbeat: return "heartbeat";
    case ChunkKind::kSprayFrag: return "spray-frag";
  }
  return "?";
}

}  // namespace nmad::core
