// CollectLayer: the collect layer (paper §3.1).
//
// Owns message submission and matching: per-gate send/receive sequence
// counters, the posted-receive table, the unexpected store (with its
// peer-cancellation tombstones) and the rendezvous receive pipeline
// (posted sinks, bounce buffers, CTS grants). Submitted sends are cut
// into chunks or rendezvous jobs and handed to the scheduling layer
// through ISchedule; it never elects or transmits anything itself.
//
// The layer sees its neighbours only through the seam interfaces and
// never includes another layer's header.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "nmad/core/layer_ifaces.hpp"

namespace nmad::core {

class CollectLayer {
 public:
  CollectLayer(EngineContext& ctx, ISchedule& sched, ITransferFleet& fleet,
               IEngine& engine);

  CollectLayer(const CollectLayer&) = delete;
  CollectLayer& operator=(const CollectLayer&) = delete;

  // Submission --------------------------------------------------------------
  SendRequest* isend(Gate& gate, Tag tag, const SourceLayout& src,
                     const SendHints& hints);
  RecvRequest* irecv(Gate& gate, Tag tag, DestLayout dest);
  [[nodiscard]] PeekInfo peek_unexpected(Gate& gate, Tag tag);

  // Largest payload one eager chunk can carry on this gate.
  [[nodiscard]] size_t max_eager_payload(const Gate& gate) const;

  // Packet-hub dispatch (the façade decodes, this layer owns the state) ----
  void on_payload(Gate& gate, const WireChunk& chunk);
  void on_rts(Gate& gate, const WireChunk& chunk);
  // One sprayed fragment landed (any order, any rail, possibly a
  // duplicate or a fenced stale twin): reorder-tolerant reassembly.
  void on_spray_frag(Gate& gate, RailIndex rail, const WireChunk& chunk);

  // Cancellation ------------------------------------------------------------
  // Withdraws a posted receive; see Core::cancel for the full contract.
  bool cancel_recv(Gate& gate, RecvRequest* req, util::Status status);

  // Teardown (façade-orchestrated; see Core::teardown_gate) -----------------
  // Receive side: posted sinks, matched receives, the unexpected store
  // (discharging its budget through the scheduling layer's gauge).
  void teardown(Gate& gate, const util::Status& status);

  // Drain -------------------------------------------------------------------
  [[nodiscard]] bool flushed(const Gate& gate) const {
    return gate.collect.rdv_recv.empty() && gate.collect.spray_recv.empty();
  }

  // Introspection -----------------------------------------------------------
  struct GateCounts {
    size_t active_recv = 0;
    size_t unexpected = 0;
    size_t rdv_recv = 0;
    size_t spray_recv = 0;
  };
  [[nodiscard]] GateCounts gate_counts(const Gate& gate) const;
  // Bytes/chunks actually parked in the unexpected store — the ground
  // truth the scheduling layer's gauge is audited against.
  [[nodiscard]] std::pair<size_t, size_t> count_store(const Gate& gate) const;
  // Own-state invariants: the unexpected store's tombstones, and the
  // matching structures against each other.
  void check_gate(const Gate& gate, std::vector<std::string>& out) const;

 private:
  void submit_eager_block(Gate& gate, SendRequest* req, Tag tag, SeqNum seq,
                          size_t logical_offset, util::ConstBytes block,
                          size_t total, bool simple, const SendHints& hints);
  void deliver_eager(Gate& gate, RecvRequest* req, uint32_t offset,
                     uint32_t total, util::ConstBytes payload);
  void start_rdv_recv(Gate& gate, RecvRequest* req, uint32_t len,
                      uint32_t offset, uint32_t total, uint64_t cookie);
  // Arms the reassembly buffer for a spray-flagged RTS and grants it with
  // a kFlagSpray CTS (no per-rail sinks: fragments ride track-0 packets).
  void start_spray_recv(Gate& gate, RecvRequest* req, uint32_t len,
                        uint32_t offset, uint32_t total, uint64_t cookie);
  void on_bulk_recv_complete(GateId gate_id, uint64_t cookie);
  void recv_add_bytes(Gate& gate, RecvRequest* req, size_t n);
  void finish_recv_if_done(Gate& gate, RecvRequest* req);
  void send_cancel_cts(Gate& gate, Tag tag, SeqNum seq, uint64_t cookie);
  // Tombstone GC: reaps spray_done / cancelled_recv entries whose
  // creation-time floor fell a reliability window behind the watermark
  // (read through the ISchedule seam), then returns the current
  // watermark for stamping a new tombstone. Called at every insert, so
  // churny workloads stay bounded without a background sweep.
  uint32_t reap_tombstones(Gate& gate);

  [[nodiscard]] Gate& gate_ref(GateId id) { return *ctx_.gates[id]; }
  [[nodiscard]] bool reliable() const { return ctx_.config.reliability; }
  [[nodiscard]] bool flow_control() const { return ctx_.config.flow_control; }

  EngineContext& ctx_;
  ISchedule& sched_;
  ITransferFleet& fleet_;
  IEngine& engine_;
};

}  // namespace nmad::core
