// The nmad track-0 wire format.
//
// A physical packet is a multiplex of chunks, each preceded by a
// self-describing header. This is the "extra header ... added to the data
// by NewMadeleine for allowing the reordering and the multiplexing of the
// packets" of §5.1 — its byte cost is real and shows up in the overhead
// measurements.
//
// Packet layout:
//   PacketHeader { u16 chunk_count }
//   repeated chunk_count times:
//     u8  kind (ChunkKind)
//     u8  flags (ChunkFlags)
//     u64 tag
//     u32 seq
//     kind-specific fields (see encode functions), then inline payload
//     for kData / kFrag.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nmad/core/types.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"
#include "util/wire.hpp"

namespace nmad::core {

// u16 chunk count + u8 packet flags.
inline constexpr size_t kPacketHeaderBytes = 3;

enum PacketFlags : uint8_t {
  kPacketFlagNone = 0,
  // A 4-byte FNV-1a of the whole packet (header included) trails it.
  // Self-describing: receivers verify whenever the flag is present, so
  // mixed configurations interoperate.
  kPacketFlagChecksum = 1u << 0,
  // Reliability: a u32 packet sequence number follows the packet header
  // (inside the checksummed region). The receiver acks it and suppresses
  // duplicates; packets without the flag (pure acks) are fire-and-forget.
  kPacketFlagReliable = 1u << 1,
};

inline constexpr size_t kChecksumTrailerBytes = 4;
inline constexpr size_t kPacketSeqBytes = 4;

// Fixed header bytes per chunk kind (excluding payload).
inline constexpr size_t kDataHeaderBytes = 1 + 1 + 8 + 4 + 4;
inline constexpr size_t kFragHeaderBytes = 1 + 1 + 8 + 4 + 4 + 4 + 4;
inline constexpr size_t kRtsHeaderBytes = 1 + 1 + 8 + 4 + 4 + 4 + 4 + 8;
inline constexpr size_t kCtsHeaderBytes = 1 + 1 + 8 + 4 + 4 + 8 + 1;  // + rails
// Common header + n_sack count byte + n_bulk count byte; each selective
// ack adds 4 bytes, each bulk ack 16.
inline constexpr size_t kAckHeaderBytes = 1 + 1 + 8 + 4 + 1 + 1;
inline constexpr size_t kAckSackBytes = 4;
inline constexpr size_t kAckBulkBytes = 8 + 4 + 4;
// Common header + u64 cumulative byte limit + u64 cumulative chunk limit.
inline constexpr size_t kCreditHeaderBytes = 1 + 1 + 8 + 4 + 8 + 8;
// Common header + u32 node incarnation: the rail epoch rides in the seq
// field, the gate's unwind generation in the tag field, and the
// probe/reply role in the chunk flags, so a heartbeat costs 18 bytes.
// The incarnation fences whole previous lives of the sending node the
// way the epoch fences previous lives of one rail; the generation proves
// to a peer-dead gate that this side unwound too (the rejoin fence).
inline constexpr size_t kHeartbeatHeaderBytes = 1 + 1 + 8 + 4 + 4;
// Common header + u32 len + u32 offset + u32 total + u32 frag_seq +
// u32 epoch, then the inline payload.
inline constexpr size_t kSprayFragHeaderBytes = 1 + 1 + 8 + 4 + 4 + 4 + 4 + 4 + 4;

// One acknowledged rendezvous slice (cookie, offset, length).
struct BulkAck {
  uint64_t cookie = 0;
  uint32_t offset = 0;
  uint32_t len = 0;
};

// Decoded view of one chunk. Payload views alias the packet buffer.
struct WireChunk {
  ChunkKind kind = ChunkKind::kData;
  uint8_t flags = 0;
  Tag tag = 0;
  SeqNum seq = 0;
  uint32_t len = 0;      // payload length (data/frag) or body length (rts)
  uint32_t offset = 0;   // logical offset within the message (frag/rts)
  uint32_t total = 0;    // total message length (frag/rts)
  uint64_t cookie = 0;   // rendezvous identifier (rts/cts)
  std::vector<uint8_t> rails;  // cts: rails with a posted sink
  util::ConstBytes payload;    // data/frag inline payload
  // kAck only: `seq` holds the cumulative ack floor (every packet seq
  // below it is acknowledged); these list extras beyond the floor.
  std::vector<uint32_t> sacks;     // selectively acked packet seqs
  std::vector<BulkAck> bulk_acks;  // acked rendezvous slices
  // kCredit only: the receiver's cumulative eager admission limits — the
  // sender may have at most `credit_bytes` payload bytes / `credit_chunks`
  // eager chunks elected since the gate opened. Cumulative-limit (not
  // delta) semantics make lost or reordered credit chunks harmless.
  uint64_t credit_bytes = 0;
  uint64_t credit_chunks = 0;
  // kSprayFrag only: position in the spray fragment stream and the
  // failover re-issue epoch (0 = original issue; a re-issue after a rail
  // turned suspect carries the fragment's epoch + 1 so the reassembly
  // buffer can fence the stale twin when it eventually straggles in).
  uint32_t frag_seq = 0;
  uint32_t epoch = 0;
};

// Encoders append one chunk header (and know nothing of payload bytes;
// the packet builder appends payload segments separately).
void encode_packet_header(util::WireWriter& w, uint16_t chunk_count,
                          uint8_t flags = kPacketFlagNone);
void encode_data_header(util::WireWriter& w, uint8_t flags, Tag tag,
                        SeqNum seq, uint32_t len);
void encode_frag_header(util::WireWriter& w, uint8_t flags, Tag tag,
                        SeqNum seq, uint32_t len, uint32_t offset,
                        uint32_t total);
void encode_rts(util::WireWriter& w, uint8_t flags, Tag tag, SeqNum seq,
                uint32_t len, uint32_t offset, uint32_t total,
                uint64_t cookie);
void encode_cts(util::WireWriter& w, uint8_t flags, Tag tag, SeqNum seq,
                uint64_t cookie, const std::vector<uint8_t>& rails);
void encode_ack(util::WireWriter& w, uint32_t ack_floor,
                const std::vector<uint32_t>& sacks,
                const std::vector<BulkAck>& bulk_acks);
void encode_credit(util::WireWriter& w, uint64_t credit_bytes,
                   uint64_t credit_chunks);
// `epoch` is the sender's current epoch for the rail the heartbeat rides
// (or, on kFlagReply, the echoed probe epoch); it travels in `seq`.
// `incarnation` is the sending node's crash/restart count. `gen` is the
// sending gate's unwind generation (peer lifecycle); it travels in the
// otherwise-unused tag field, so the wire layout is unchanged.
void encode_heartbeat(util::WireWriter& w, uint8_t flags, uint32_t epoch,
                      uint32_t incarnation, uint64_t gen);
void encode_spray_frag_header(util::WireWriter& w, uint8_t flags, Tag tag,
                              SeqNum seq, uint32_t len, uint32_t offset,
                              uint32_t total, uint32_t frag_seq,
                              uint32_t epoch);

// Packet-level framing decoded ahead of the chunks. Filled in before the
// first sink invocation, so sinks may consult it.
struct PacketMeta {
  uint8_t flags = 0;
  bool checksummed = false;
  bool reliable = false;
  uint32_t seq = 0;  // valid when `reliable`
};

// Parses a whole packet; invokes `sink(chunk)` per chunk in order.
// Returns a non-ok status on malformed input or checksum mismatch.
template <typename Sink>
util::Status decode_packet(util::ConstBytes packet, PacketMeta* meta,
                           Sink&& sink) {
  if (packet.size() < kPacketHeaderBytes) {
    return util::truncated("packet header");
  }
  util::ConstBytes body = packet.subspan(kPacketHeaderBytes);
  {
    util::WireReader header(packet.subspan(2, 1));
    const uint8_t flags = header.u8();
    meta->flags = flags;
    meta->checksummed = (flags & kPacketFlagChecksum) != 0;
    meta->reliable = (flags & kPacketFlagReliable) != 0;
    if (flags & kPacketFlagChecksum) {
      if (body.size() < kChecksumTrailerBytes) {
        return util::truncated("checksum trailer");
      }
      util::WireReader tail(
          body.subspan(body.size() - kChecksumTrailerBytes));
      const uint32_t stored = tail.u32();
      body = body.first(body.size() - kChecksumTrailerBytes);
      // Coverage includes the packet header, so flipped chunk counts or
      // flag bits are caught too (a cleared checksum flag still escapes;
      // reliable-mode engines drop unverifiable packets outright).
      const util::ConstBytes covered =
          packet.first(packet.size() - kChecksumTrailerBytes);
      if (util::Fnv32::of(covered) != stored) {
        return util::internal_error("packet checksum mismatch");
      }
    }
  }
  util::WireReader counter(packet.first(2));
  const uint16_t count = counter.u16();
  util::WireReader r(body);
  if (meta->reliable) {
    meta->seq = r.u32();
    if (!r.ok()) return util::truncated("packet sequence number");
  }
  for (uint16_t i = 0; i < count; ++i) {
    WireChunk chunk;
    chunk.kind = static_cast<ChunkKind>(r.u8());
    chunk.flags = r.u8();
    chunk.tag = r.u64();
    chunk.seq = r.u32();
    switch (chunk.kind) {
      case ChunkKind::kData:
        chunk.len = r.u32();
        chunk.total = chunk.len;
        chunk.payload = r.bytes(chunk.len);
        break;
      case ChunkKind::kFrag:
        chunk.len = r.u32();
        chunk.offset = r.u32();
        chunk.total = r.u32();
        chunk.payload = r.bytes(chunk.len);
        break;
      case ChunkKind::kRts:
        chunk.len = r.u32();
        chunk.offset = r.u32();
        chunk.total = r.u32();
        chunk.cookie = r.u64();
        break;
      case ChunkKind::kCts: {
        chunk.len = r.u32();
        chunk.cookie = r.u64();
        const uint8_t n_rails = r.u8();
        for (uint8_t k = 0; k < n_rails; ++k) chunk.rails.push_back(r.u8());
        break;
      }
      case ChunkKind::kAck: {
        const uint8_t n_sacks = r.u8();
        const uint8_t n_bulk = r.u8();
        for (uint8_t k = 0; k < n_sacks; ++k) chunk.sacks.push_back(r.u32());
        for (uint8_t k = 0; k < n_bulk; ++k) {
          BulkAck ack;
          ack.cookie = r.u64();
          ack.offset = r.u32();
          ack.len = r.u32();
          chunk.bulk_acks.push_back(ack);
        }
        break;
      }
      case ChunkKind::kCredit:
        chunk.credit_bytes = r.u64();
        chunk.credit_chunks = r.u64();
        break;
      case ChunkKind::kHeartbeat:
        // The rail epoch is in `seq`; the node incarnation reuses the
        // `epoch` field (no other chunk kind carries both).
        chunk.epoch = r.u32();
        break;
      case ChunkKind::kSprayFrag:
        chunk.len = r.u32();
        chunk.offset = r.u32();
        chunk.total = r.u32();
        chunk.frag_seq = r.u32();
        chunk.epoch = r.u32();
        chunk.payload = r.bytes(chunk.len);
        break;

      default:
        return util::internal_error("unknown chunk kind on wire");
    }
    if (!r.ok()) return util::truncated("chunk body");
    sink(chunk);
  }
  if (r.remaining() != 0) {
    return util::internal_error("trailing bytes after last chunk");
  }
  return util::ok_status();
}

template <typename Sink>
util::Status decode_packet(util::ConstBytes packet, Sink&& sink) {
  PacketMeta meta;
  return decode_packet(packet, &meta, std::forward<Sink>(sink));
}

// Wire size of a chunk with the given kind/payload/rails count.
size_t chunk_wire_bytes(ChunkKind kind, size_t payload_len,
                        size_t cts_rail_count = 0, size_t ack_sacks = 0,
                        size_t ack_bulks = 0);

}  // namespace nmad::core
