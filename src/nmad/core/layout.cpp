#include "nmad/core/layout.hpp"

#include "util/assert.hpp"

namespace nmad::core {

DestLayout DestLayout::contiguous(util::MutableBytes memory) {
  DestLayout layout;
  if (!memory.empty()) {
    layout.blocks_.push_back(Block{0, memory});
  }
  layout.total_ = memory.size();
  return layout;
}

DestLayout DestLayout::scattered(std::vector<Block> blocks) {
  DestLayout layout;
  size_t expected_offset = 0;
  for (const Block& b : blocks) {
    NMAD_ASSERT_MSG(b.logical_offset == expected_offset,
                    "layout blocks must be dense and ordered");
    expected_offset += b.memory.size();
  }
  layout.blocks_ = std::move(blocks);
  layout.total_ = expected_offset;
  return layout;
}

void DestLayout::scatter(size_t offset, util::ConstBytes data) const {
  NMAD_ASSERT_MSG(offset + data.size() <= total_,
                  "scatter outside layout bounds");
  size_t remaining = data.size();
  size_t src_pos = 0;
  // Binary search for the block containing `offset`.
  size_t lo = 0, hi = blocks_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (blocks_[mid].logical_offset <= offset) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  for (size_t i = lo; remaining > 0; ++i) {
    NMAD_ASSERT(i < blocks_.size());
    const Block& b = blocks_[i];
    const size_t block_end = b.logical_offset + b.memory.size();
    if (offset >= block_end) continue;  // possible only for i == lo
    const size_t in_block = offset - b.logical_offset;
    const size_t n = std::min(remaining, b.memory.size() - in_block);
    util::copy_bytes(b.memory.subspan(in_block, n),
                     data.subspan(src_pos, n));
    offset += n;
    src_pos += n;
    remaining -= n;
  }
}

util::MutableBytes DestLayout::contiguous_region(size_t offset,
                                                 size_t len) const {
  if (offset + len > total_ || len == 0) return {};
  for (const Block& b : blocks_) {
    const size_t block_end = b.logical_offset + b.memory.size();
    if (offset >= b.logical_offset && offset + len <= block_end) {
      return b.memory.subspan(offset - b.logical_offset, len);
    }
  }
  return {};
}

SourceLayout SourceLayout::contiguous(util::ConstBytes memory) {
  SourceLayout layout;
  if (!memory.empty()) {
    layout.blocks_.push_back(Block{0, memory});
  }
  layout.total_ = memory.size();
  return layout;
}

SourceLayout SourceLayout::scattered(std::vector<Block> blocks) {
  SourceLayout layout;
  size_t expected_offset = 0;
  for (const Block& b : blocks) {
    NMAD_ASSERT_MSG(b.logical_offset == expected_offset,
                    "layout blocks must be dense and ordered");
    expected_offset += b.memory.size();
  }
  layout.blocks_ = std::move(blocks);
  layout.total_ = expected_offset;
  return layout;
}

}  // namespace nmad::core
