// Engine-wide configuration and counters, shared by all three layers
// (collect / schedule / transfer) through the EngineContext. Kept in a
// leaf header so the layer TUs can see the knobs without including the
// Core façade (and therefore each other).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "nmad/core/types.hpp"
#include "util/stats.hpp"

namespace nmad::core {

struct CoreConfig {
  // Strategy selected at startup ("the optimization function is to be
  // selected among an extensible and programmable set of strategies").
  std::string strategy = "aggreg";

  // Modelled software costs of the engine itself. These are what §5.1
  // measures as the < 0.5 µs MAD-MPI overhead: the extra header plus the
  // scheduler "inspect[ing] the ready list of packets".
  double submit_overhead_us = 0.10;  // collect layer, per isend/irecv
  double submit_chunk_us = 0.03;     // per chunk registered
  double elect_overhead_us = 0.40;   // optimizer, per packet election
  double parse_packet_us = 0.20;     // receive path, per packet
  double parse_chunk_us = 0.05;      // receive path, per chunk

  // Overrides the per-rail rendezvous threshold when non-zero.
  size_t rdv_threshold_override = 0;

  // Appends a 4-byte checksum to every track-0 packet and verifies it on
  // receive — a debugging aid for driver/strategy development (the flag
  // is carried on the wire, so mixed settings interoperate).
  bool wire_checksum = false;

  // §3.2 lists three election policies. The default is pure just-in-time
  // (elect when a NIC idles). Setting this to N > 0 enables the
  // alternatives: once the window backlog reaches N chunks while the NIC
  // is busy, the optimizer runs early and parks one ready-to-send packet,
  // which is handed over the moment the NIC idles ("prepare a single
  // ready-to-send packet to anticipate for any upcoming completion").
  // The election cost is thus overlapped with communication, at the price
  // of freezing that packet's contents early.
  size_t prebuild_backlog_chunks = 0;

  // --- Reliability layer --------------------------------------------------
  // Enables ack/retransmit on track-0 packets and rendezvous slices:
  // every payload-bearing packet carries a sequence number, the receiver
  // acknowledges (piggybacked on reverse traffic where possible), and the
  // sender retransmits on timeout with exponential backoff, failing over
  // to surviving rails. Forces wire_checksum on; corrupt packets are
  // dropped and recovered by retransmission instead of asserting.
  bool reliability = false;
  // Base retransmit deadline for a track-0 packet. Rendezvous slices add
  // their own modelled wire time on top (large slices take longer).
  double ack_timeout_us = 1000.0;
  // Delayed-ack grace: how long the receiver waits for reverse traffic to
  // piggyback on before sending a standalone ack packet.
  double ack_delay_us = 5.0;
  // Timeout multiplier applied after each retransmission of an entry.
  double retry_backoff = 2.0;
  // Decorrelates the exponential backoff: each retransmission's growth
  // factor is drawn seed-deterministically and symmetrically around
  // retry_backoff — from [0.5, 1.5) of it when retry_backoff >= 2, from
  // the widest sub-range that cannot shrink a timeout (half-width
  // retry_backoff - 1) otherwise — so retries synchronized by a blackout
  // or peer crash do not land on the wire in lockstep and re-congest the
  // recovering rail. The mean growth is always the configured factor;
  // retry_backoff = 1 (constant timeouts) is left exactly alone.
  bool backoff_jitter = true;
  // A packet/slice that times out this many times fails the gate.
  uint32_t max_retries = 10;
  // Consecutive timeouts on one rail before it is declared dead and its
  // in-flight traffic re-elected onto surviving rails (0 disables).
  uint32_t rail_dead_after = 6;
  // Max unacked packets per gate; window packing pauses at the cap.
  size_t reliability_window = 64;

  // --- Receiver-driven flow control ---------------------------------------
  // Enables credit-based eager admission: the receiver advertises
  // cumulative limits on eager bytes/chunks (piggybacked on acks), the
  // strategy layer holds back eager chunks past the limit, and large
  // blocks degrade to rendezvous instead of flooding the peer. Forces
  // reliability on (credits ride the ack machinery).
  bool flow_control = false;
  // Receive-side budget for the unexpected store, in payload bytes and in
  // message-chunk count (0 = unlimited). Credit advertisements never let
  // admitted-but-unheard eager traffic exceed the free budget, so the
  // store stays bounded under overload without dropping data.
  size_t rx_budget = 0;
  size_t rx_budget_msgs = 0;
  // Credits granted to each peer at gate-open, before any advertisement
  // arrives (both endpoints must agree on these, so every core of a
  // fabric should share its flow-control config). For the rx_budget bound
  // to hold from time zero, keep the sum of initial grants across peers
  // within the budget. 0 means unlimited.
  size_t initial_credit_bytes = 64 * 1024;
  size_t initial_credit_msgs = 64;
  // Liveness valve: when the sender has been credit-stalled this long
  // with nothing in flight, it asks the receiver to restate its limits
  // (a zero-valued kCredit chunk). Recovers from a lost final credit
  // update without ever breaching the receiver's budget; never needed in
  // steady state. 0 disables the probe.
  double credit_probe_us = 2000.0;

  // --- Rail health lifecycle ----------------------------------------------
  // Active liveness and revival. Every rail carries lightweight kHeartbeat
  // beacons — piggybacked on outgoing packets when traffic flows, sent
  // standalone when the rail is idle — so silence is detected even with
  // nothing in flight: a rail unheard for suspect_after_us turns suspect,
  // and for dead_after_us is declared dead (the transfer engine re-elects
  // its in-flight traffic onto surviving rails). Dead rails are probed
  // every probe_interval_us; a reply echoing the rail's current epoch
  // proves the link works again, and probation_replies fresh replies
  // revive it — rendezvous jobs regain the rail and the next election may
  // use it. Forces reliability on (a dying rail's traffic must be
  // recoverable).
  bool rail_health = false;
  double heartbeat_interval_us = 500.0;

  // --- Per-packet multipath spray -----------------------------------------
  // Sprays rendezvous-class contiguous bodies packet-by-packet across every
  // alive rail instead of negotiating per-rail RDMA sinks: the body is cut
  // into spray_frag_bytes kSprayFrag chunks that the strategy stripes over
  // the rails, and the receiver reassembles them into the posted buffer
  // through a reorder-tolerant coverage map. When the health machine marks
  // a rail *suspect* (not yet dead), in-flight sprayed fragments on that
  // rail are immediately re-issued on survivors with a bumped re-issue
  // epoch — the receiver fences the stale twins — which moves failover
  // from the dead_after_us horizon to the suspect_after_us horizon.
  // Forces reliability on (sprayed fragments ride the packet ack machinery).
  bool spray = false;
  size_t spray_frag_bytes = 8 * 1024;
  // Thresholds are on receive silence, so with several peers beaconing in
  // rotation keep suspect_after_us at a few heartbeat intervals.
  double suspect_after_us = 1500.0;
  double dead_after_us = 3000.0;
  double probe_interval_us = 1000.0;
  uint32_t probation_replies = 2;

  // --- Peer lifecycle (crash detection, unwind, rejoin) -------------------
  // Aggregates per-rail health into a per-peer liveness verdict: when no
  // rail to a peer is alive and the condition persists for
  // peer_death_grace_us, the peer is declared dead — every in-flight op
  // against it is unwound with kPeerDead, a kPeerDied event is published,
  // and the gate is fenced. A restarted peer announces a bumped node
  // incarnation in its heartbeats; packets from the previous incarnation
  // are dropped (never applied). A beacon on a live rail re-opens the
  // gate with clean sequence/credit state only when it proves the peer's
  // own state is fresh — a strictly newer incarnation (restart) or a
  // strictly newer per-gate unwind generation (the peer also declared us
  // dead and unwound, as after a mutual blackout) than what was heard at
  // death — so post-rejoin traffic is exactly-once even against a peer
  // that rode out an asymmetric outage with its state intact (no rejoin
  // happens then; the gate stays fenced). Forces rail_health on (peer
  // liveness is derived from rail liveness).
  bool peer_lifecycle = false;
  // How long every rail to the peer must stay non-alive before the peer
  // is declared dead (0 declares immediately on losing the last rail).
  double peer_death_grace_us = 1000.0;

  // --- Gray-failure scoring & adaptive election ---------------------------
  // Continuous per-rail health scoring on top of the binary lifecycle: the
  // transfer engine keeps an EWMA frame-loss rate (from ack vs. timeout
  // outcomes), a delivery-latency digest and a delivered-bytes throughput
  // estimate per rail, and flags a rail *degraded* when loss or latency
  // breaches its enter threshold for degraded_sustain_us straight — even
  // though the rail still beacons and stays "alive". The schedule layer
  // closes the loop: degraded rails are evicted from spray stripe sets and
  // skipped by election, and a rail entering degraded mid-transfer has its
  // in-flight sprayed fragments re-issued on survivors exactly as the
  // suspect path does. Exit uses the (lower) exit thresholds plus a
  // minimum dwell so a borderline rail cannot flap. Forces rail_health on
  // (scores refine the lifecycle, they do not replace it).
  bool adaptive = false;
  // EWMA smoothing factor for the per-delivery loss estimate.
  double score_loss_alpha = 0.1;
  // Loss-rate hysteresis band: enter degraded at/above `enter`, leave
  // at/below `exit`.
  double degraded_loss_enter = 0.02;
  double degraded_loss_exit = 0.005;
  // Delivery-latency hysteresis band on the recent-window p99, in µs
  // (0 disables the latency criterion).
  double degraded_latency_enter_us = 0.0;
  double degraded_latency_exit_us = 0.0;
  // How long a breach must persist before the rail turns degraded, and
  // how long a degraded rail must stay clean before it recovers.
  double degraded_sustain_us = 300.0;
  double degraded_dwell_us = 1000.0;
};

// One rail's position in the health lifecycle (CoreConfig::rail_health):
// alive rails carry traffic and degrade to suspect on silence; dead rails
// carry none and are probed; a probed rail answering with the current
// epoch walks through probation back to alive. kDegraded is the gray
// branch (CoreConfig::adaptive): the rail still beacons and still counts
// as alive for liveness purposes, but its score breached the loss/latency
// thresholds, so election routes around it until the score recovers.
enum class RailHealth : uint8_t {
  kAlive,
  kSuspect,
  kDead,
  kProbation,
  kDegraded
};

const char* rail_health_name(RailHealth health);

struct CoreStats {
  uint64_t sends_submitted = 0;
  uint64_t recvs_submitted = 0;
  uint64_t packets_sent = 0;
  uint64_t packets_received = 0;
  uint64_t chunks_sent = 0;
  uint64_t chunks_received = 0;
  // Chunks that shared a packet with at least one other chunk.
  uint64_t chunks_aggregated = 0;
  uint64_t rdv_started = 0;
  uint64_t bulk_sends = 0;
  uint64_t bulk_bytes = 0;
  uint64_t unexpected_chunks = 0;
  uint64_t packets_prebuilt = 0;  // elected early under the backlog policy

  // Reliability layer.
  uint64_t packet_timeouts = 0;
  uint64_t packets_retransmitted = 0;
  uint64_t packets_rejected = 0;    // corrupt/unverifiable, dropped
  uint64_t packets_duplicate = 0;   // suppressed by seq dedup (re-acked)
  uint64_t acks_sent = 0;           // standalone delayed-ack packets
  uint64_t acks_piggybacked = 0;    // acks injected into outgoing packets
  uint64_t bulk_timeouts = 0;
  uint64_t bulk_retransmitted = 0;
  uint64_t rails_failed = 0;
  uint64_t gates_failed = 0;

  // Rail health lifecycle.
  uint64_t heartbeats_sent = 0;      // beacons (piggybacked + standalone)
  uint64_t heartbeats_received = 0;  // plain beacons heard
  uint64_t probes_sent = 0;          // revival probes on dead rails
  uint64_t probe_replies_sent = 0;
  uint64_t heartbeats_fenced = 0;    // stale-epoch beacons/replies dropped
  uint64_t rails_suspected = 0;      // alive -> suspect transitions
  uint64_t rails_revived = 0;        // probation -> alive transitions
  uint64_t probation_demotions = 0;  // probation -> dead (replies dried up)

  // Per-packet multipath spray.
  uint64_t spray_sends = 0;          // messages sent via the spray path
  uint64_t spray_frags_tx = 0;       // fragments enqueued (incl. re-issues)
  uint64_t spray_frags_rx = 0;       // fragments applied to a reassembly buf
  uint64_t spray_frag_dups = 0;      // already-covered fragments dropped
  uint64_t spray_frags_fenced = 0;   // stale-epoch fragments dropped
  uint64_t spray_frags_late = 0;     // fragments after reassembly completed
  uint64_t spray_reissues = 0;       // suspect-rail failover re-issues
  uint64_t spray_reassembled = 0;    // messages completed via reassembly
  // Suspect-transition to wire latency of each failover re-issue, in µs.
  util::QuantileDigest spray_reissue_latency_us;

  // Peer lifecycle (CoreConfig::peer_lifecycle).
  uint64_t peers_died = 0;           // gates fenced after the death grace
  uint64_t peers_rejoined = 0;       // gates re-opened by a fresh incarnation
  uint64_t incarnations_fenced = 0;  // previous-life packets dropped
  // Tombstone GC behind the ack-floor watermark (cancel tombstones and
  // spray_done markers reaped once the receive floor passes them).
  uint64_t tombstones_reaped = 0;

  // Gray-failure scoring & adaptive election (CoreConfig::adaptive).
  uint64_t rails_degraded = 0;       // score-driven entries into kDegraded
  uint64_t rails_recovered = 0;      // kDegraded -> kAlive exits
  uint64_t degraded_reissues = 0;    // fragments re-issued off degraded rails
  uint64_t adaptive_elections = 0;   // per-message spray/split/single picks
  uint64_t degraded_evictions = 0;   // stripe slots denied to degraded rails
  uint64_t probe_rtt_samples = 0;    // probe/reply RTTs fed to the digest

  // Drain / close.
  uint64_t drains_started = 0;
  uint64_t drains_completed = 0;
  uint64_t gates_closed = 0;

  // Flow control.
  uint64_t credit_grants = 0;        // credit chunks put on the wire
  uint64_t credit_stalls = 0;        // eager chunks held back by credit
  uint64_t credit_probes = 0;        // credit requests sent while stalled
  uint64_t credit_rdv_degrades = 0;  // eager blocks demoted to rendezvous
  uint64_t rx_stored_bytes = 0;      // unexpected-store payload (gauge)
  uint64_t rx_stored_hwm = 0;        // high-water mark of the above

  // Cancellation / deadlines.
  uint64_t sends_cancelled = 0;
  uint64_t recvs_cancelled = 0;
  uint64_t deadlines_exceeded = 0;
  uint64_t cancelled_payload_dropped = 0;  // chunks for a cancelled recv

  // Event bus: one counter per EventKind published (the observability
  // spine; see events.hpp for the kinds).
  uint64_t ev_packet_built = 0;
  uint64_t ev_elected = 0;
  uint64_t ev_wire_tx = 0;
  uint64_t ev_wire_rx = 0;
  uint64_t ev_acked = 0;
  uint64_t ev_retransmit = 0;
  uint64_t ev_health_transition = 0;
  uint64_t ev_drain_milestone = 0;
  uint64_t ev_spray_reissued = 0;
  uint64_t ev_spray_frag_rx = 0;
  uint64_t ev_reassembled = 0;
  uint64_t ev_peer_died = 0;
  uint64_t ev_peer_rejoined = 0;

  // Invariant validation (check_invariants / validate_invariants; the
  // hot-path hooks that drive these only compile under -DNMAD_VALIDATE).
  uint64_t validate_ticks = 0;
  uint64_t validate_violations = 0;
  // Per-layer breakdown of validate_violations: which layer's own checks
  // flagged the state. `engine` covers the cross-layer consistency checks
  // that no single layer can make alone (store vs. gauge, global budgets).
  uint64_t validate_violations_collect = 0;
  uint64_t validate_violations_schedule = 0;
  uint64_t validate_violations_transfer = 0;
  uint64_t validate_violations_engine = 0;
};

struct SendHints {
  Priority prio = Priority::kNormal;
  RailIndex pinned_rail = kAnyRail;
};

// Nonblocking-probe result; see Core::peek_unexpected for the sequence
// contract.
struct PeekInfo {
  bool matched = false;
  bool total_known = false;
  size_t total_bytes = 0;
};

}  // namespace nmad::core
