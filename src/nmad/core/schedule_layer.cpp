#include "nmad/core/schedule_layer.hpp"

#include <algorithm>
#include <set>

#include "nmad/core/format_util.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace nmad::core {

namespace {
// Bounds on one ack chunk's contents, keeping it well under any rail's
// packet limit. Sacks are re-advertised on every ack until the floor
// passes them, so the cap only delays retirement; bulk-slice acks are
// consumed when the chunk ships and re-queued if it overflows.
constexpr size_t kMaxSacksPerAck = 32;
constexpr size_t kMaxBulkAcksPerAck = 16;
// A block at least this large that does not fit the remaining credit is
// demoted to rendezvous instead of waiting for the window to open: the
// RTS costs a round-trip but moves no payload until the receiver agrees.
constexpr size_t kCreditRdvFloor = 1024;
}  // namespace

ScheduleLayer::ScheduleLayer(EngineContext& ctx, ITransferFleet& fleet,
                             IEngine& engine,
                             std::unique_ptr<Strategy> strategy)
    : ctx_(ctx),
      fleet_(fleet),
      engine_(engine),
      strategy_(std::move(strategy)),
      // Rendezvous cookies embed the node id so sinks posted on a shared
      // receiver NIC never collide across senders.
      next_cookie_((static_cast<uint64_t>(ctx.rt.local_id()) + 1) << 48),
      // Seeded per node so the decorrelated backoff draws are replayable
      // yet distinct across peers — the whole point of the jitter.
      jitter_state_(0x9E3779B97F4A7C15ull ^
                    (static_cast<uint64_t>(ctx.rt.local_id()) + 1)) {}

void ScheduleLayer::add_rail_slot() { rails_.emplace_back(); }

void ScheduleLayer::init_gate(Gate& gate) {
  if (!flow_control()) return;
  // Both endpoints start from the configured initial grant; everything
  // after that is negotiated through kCredit advertisements.
  GateSched& s = gate.sched;
  s.credit_limit_bytes = ctx_.config.initial_credit_bytes == 0
                             ? UINT64_MAX
                             : ctx_.config.initial_credit_bytes;
  s.credit_limit_chunks = ctx_.config.initial_credit_msgs == 0
                              ? UINT64_MAX
                              : ctx_.config.initial_credit_msgs;
  s.advertised_limit_bytes = s.credit_limit_bytes;
  s.advertised_limit_chunks = s.credit_limit_chunks;
  s.last_sent_limit_bytes = s.advertised_limit_bytes;
  s.last_sent_limit_chunks = s.advertised_limit_chunks;
}

// ---------------------------------------------------------------------------
// Submission handoff (collect → schedule)
// ---------------------------------------------------------------------------

void ScheduleLayer::enqueue(Gate& gate, OutChunk* chunk) {
  ctx_.rt.cpu().charge(ctx_.config.submit_chunk_us);
  if (chunk->prio == Priority::kHigh) chunk->flags |= kFlagPriority;
  if (flow_control() && !chunk->is_control() && !chunk->credit_charged) {
    gate.sched.window_eager_bytes += chunk->payload.size();
  }
  gate.sched.window.push_back(*chunk);
}

void ScheduleLayer::submit_rdv(Gate& gate, SendRequest* req, Tag tag,
                               SeqNum seq, size_t logical_offset,
                               util::ConstBytes block, size_t total,
                               const SendHints& hints) {
  BulkJob* job = ctx_.bulk_pool.acquire();
  job->cookie = next_cookie_++;
  job->gate = gate.id;
  job->body = block;
  job->sent = 0;
  job->acked = 0;
  job->rails.clear();
  job->pinned_rail = hints.pinned_rail;
  job->owner = req;
  req->add_part();
  gate.sched.rdv_wait_cts[job->cookie] = job;
  ++ctx_.stats.rdv_started;

  // Propose the per-packet spray path for whole single-block messages:
  // spray reassembly is keyed by (tag, seq), so a multi-block message
  // (several rendezvous jobs under one key) must keep the cookie-keyed
  // bulk pipeline. The receiver accepts by echoing kFlagSpray on the CTS.
  job->spray =
      ctx_.config.spray && logical_offset == 0 && block.size() == total;

  // Closed-loop election (CoreConfig::adaptive): consult the live rail
  // scores per message. With two or more usable rails the message sprays
  // — the stripe set is the healthy subset, since refill_rail makes
  // degraded rails yield — which covers both the multi-rail stripe and
  // the effective single-healthy-rail cases. With one usable rail the
  // fragment overhead buys nothing and the message rides the plain bulk
  // pipeline instead.
  if (job->spray && adaptive()) {
    size_t usable = 0;
    for (RailIndex r : gate.rails) {
      if (fleet_.transfer_rail(r).alive()) ++usable;
    }
    ++ctx_.stats.adaptive_elections;
    if (usable <= 1) job->spray = false;
  }

  OutChunk* rts = ctx_.chunk_pool.acquire();
  rts->kind = ChunkKind::kRts;
  rts->flags = job->spray ? kFlagSpray : uint8_t{0};
  rts->tag = tag;
  rts->seq = seq;
  rts->offset = static_cast<uint32_t>(logical_offset);
  rts->total = static_cast<uint32_t>(total);
  rts->rdv_len = static_cast<uint32_t>(block.size());
  rts->cookie = job->cookie;
  rts->prio = Priority::kHigh;  // control data ships first
  rts->pinned_rail = hints.pinned_rail;
  rts->owner = nullptr;
  enqueue(gate, rts);
}

bool ScheduleLayer::credit_wants_rdv(const Gate& gate,
                                     size_t block_bytes) const {
  return flow_control() && block_bytes >= kCreditRdvFloor &&
         gate.sched.eager_sent_bytes + gate.sched.window_eager_bytes +
                 block_bytes >
             gate.sched.credit_limit_bytes;
}

// ---------------------------------------------------------------------------
// Just-in-time election
// ---------------------------------------------------------------------------

void ScheduleLayer::kick() {
  for (RailIndex r = 0; r < rails_.size(); ++r) {
    refill_rail(r);
    if (!fleet_.transfer_rail(r).tx_idle()) maybe_prebuild(r);
  }
#ifdef NMAD_VALIDATE
  engine_.validate_tick();
#endif
}

// §3.2 alternative policy: while the NIC is busy and the backlog is deep
// enough, run the optimizer early and park the resulting packet.
void ScheduleLayer::maybe_prebuild(RailIndex rail) {
  if (ctx_.config.prebuild_backlog_chunks == 0) return;
  RailSched& rs = rails_[rail];
  ITransferRail& tr = fleet_.transfer_rail(rail);
  if (!tr.alive() || rs.prebuilt) return;
  const size_t n = ctx_.gates.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t gi = (rs.rr_cursor + k) % n;
    Gate& g = *ctx_.gates[gi];
    if (!g.has_rail(rail) || g.failed) continue;
    // Degraded rails don't prebuild for gates a healthy rail serves —
    // the parked packet would ship on the gray rail the moment it idles,
    // bypassing the refill-time yield.
    if (adaptive() && tr.degraded() && gate_has_healthy_rail(g, rail)) {
      continue;
    }
    if (g.sched.window.size() < ctx_.config.prebuild_backlog_chunks) continue;
    if (reliable() &&
        g.sched.pending_pkts.size() >= ctx_.config.reliability_window) {
      continue;
    }
    const size_t max_bytes =
        std::min(g.max_packet, tr.info().max_packet_bytes);
    const size_t max_segments =
        tr.info().gather ? tr.info().max_gather_segments : 0;
    auto builder = std::make_shared<PacketBuilder>(
        max_bytes, max_segments, ctx_.config.wire_checksum,
        /*reserve_seq=*/reliable());
    const size_t taken = strategy_->pack(*this, g, tr.info(), *builder);
    if (taken == 0) continue;
    // The election cost is paid now, overlapped with the NIC's current
    // transmission instead of delaying the next one.
    ctx_.rt.cpu().charge(ctx_.config.elect_overhead_us);
    ++ctx_.stats.packets_prebuilt;
    ctx_.bus.publish({.kind = EventKind::kElected,
                      .gate = g.id,
                      .rail = rail,
                      .a = taken,
                      .b = 1});
    rs.prebuilt = std::move(builder);
    rs.prebuilt_gate = g.id;
    rs.rr_cursor = (gi + 1) % n;
    return;
  }
}

void ScheduleLayer::refill_rail(RailIndex rail) {
  RailSched& rs = rails_[rail];
  ITransferRail& tr = fleet_.transfer_rail(rail);
  if (!tr.alive()) return;
  if (!tr.tx_idle()) return;

  // A pre-armed packet goes out instantly, no election on the idle path.
  if (rs.prebuilt) {
    std::shared_ptr<PacketBuilder> builder = std::move(rs.prebuilt);
    rs.prebuilt.reset();
    issue_packet(gate_ref(rs.prebuilt_gate), rail, std::move(builder),
                 /*charge_election=*/false);
    return;
  }
  const size_t n = ctx_.gates.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t gi = (rs.rr_cursor + k) % n;
    Gate& g = *ctx_.gates[gi];
    if (!g.has_rail(rail) || g.failed) continue;

    // Degraded rails yield to healthy ones (CoreConfig::adaptive): while
    // this gate still reaches a scoreably healthy rail, a degraded rail
    // elects no packet traffic for it — new stripes and packet
    // retransmits route around the gray failure, and any kick lets the
    // healthy rail drain them. Window chunks pinned to this very rail
    // still ship (yielding them would strand the chunk), and the
    // rendezvous bulk path is untouched: its rail set was fixed by the
    // CTS grant. With no healthy alternative the rail keeps carrying
    // everything — degraded is not dead.
    const bool yield_degraded =
        adaptive() && tr.degraded() && gate_has_healthy_rail(g, rail);
    bool yield_window = yield_degraded;
    if (yield_window) {
      for (const OutChunk& c : g.sched.window) {
        if (c.pinned_rail == rail) {
          yield_window = false;
          break;
        }
      }
    }

    if (reliable()) {
      // Lost traffic first: the receiver is stalled on it. A packet
      // retransmit may ride any alive rail of the gate (track-0 packets
      // fit every rail's frame limit by construction); bulk slices only
      // ride rails their CTS granted.
      while (!yield_degraded && !g.sched.retx_queue.empty()) {
        const uint32_t seq = g.sched.retx_queue.front();
        auto it = g.sched.pending_pkts.find(seq);
        if (it == g.sched.pending_pkts.end() || !it->second.queued_retx) {
          g.sched.retx_queue.pop_front();  // retired while queued
          continue;
        }
        g.sched.retx_queue.pop_front();
        rs.rr_cursor = (gi + 1) % n;
        retransmit_packet(g, rail, seq);
        return;
      }
      for (size_t b = 0; b < g.sched.bulk_retx.size(); ++b) {
        const BulkKey key = g.sched.bulk_retx[b];
        auto it = g.sched.pending_bulk.find(key);
        if (it == g.sched.pending_bulk.end() || !it->second.queued_retx) {
          g.sched.bulk_retx.erase(g.sched.bulk_retx.begin() +
                                  static_cast<ptrdiff_t>(b));
          --b;
          continue;
        }
        if (!tr.info().rdma || !it->second.job->allows_rail(rail)) continue;
        g.sched.bulk_retx.erase(g.sched.bulk_retx.begin() +
                                static_cast<ptrdiff_t>(b));
        rs.rr_cursor = (gi + 1) % n;
        retransmit_bulk(g, rail, key);
        return;
      }
    }

    // Granted rendezvous bodies take precedence: the receiver is waiting.
    Strategy::BulkDecision decision =
        strategy_->next_bulk(*this, g, tr.info());
    if (decision.job != nullptr && decision.bytes > 0) {
      rs.rr_cursor = (gi + 1) % n;
      issue_bulk(g, rail, decision.job, decision.bytes);
      return;
    }

    if (!yield_window && !g.sched.window.empty()) {
      if (reliable() &&
          g.sched.pending_pkts.size() >= ctx_.config.reliability_window) {
        continue;  // sliding window full: wait for acks
      }
      const size_t max_bytes =
          std::min(g.max_packet, tr.info().max_packet_bytes);
      const size_t max_segments =
          tr.info().gather ? tr.info().max_gather_segments : 0;
      auto builder = std::make_shared<PacketBuilder>(
          max_bytes, max_segments, ctx_.config.wire_checksum,
          /*reserve_seq=*/reliable());
      const size_t taken = strategy_->pack(*this, g, tr.info(), *builder);
      if (taken > 0) {
        rs.rr_cursor = (gi + 1) % n;
        ctx_.bus.publish({.kind = EventKind::kElected,
                          .gate = g.id,
                          .rail = rail,
                          .a = taken});
        issue_packet(g, rail, std::move(builder));
        return;
      }
    }
  }
}

void ScheduleLayer::issue_packet(Gate& gate, RailIndex rail,
                                 std::shared_ptr<PacketBuilder> builder,
                                 bool charge_election) {
  // Piggyback any pending acknowledgement on this packet — a free ride,
  // where a standalone ack packet would cost a header and an election.
  if (reliable()) maybe_inject_ack(gate, *builder);
  // Likewise a credit advertisement, whenever the limits grew.
  if (flow_control()) maybe_inject_credit(gate, *builder);
  // And a liveness beacon when this rail's heartbeat to the peer is due
  // (the transfer engine gates itself on the health lifecycle).
  fleet_.transfer_rail(rail).maybe_inject_heartbeat(gate, *builder);

  // The optimizer just inspected the window and synthesized a packet;
  // charge its cost (§5.1: "extra operations on the critical path") —
  // unless it was already paid at prebuild time.
  if (charge_election) ctx_.rt.cpu().charge(ctx_.config.elect_overhead_us);
  ++ctx_.stats.packets_sent;
  ctx_.stats.chunks_sent += builder->chunk_count();
  if (builder->chunk_count() > 1) {
    ctx_.stats.chunks_aggregated += builder->chunk_count();
  }

  // Payload-bearing packets get a sequence number and enter the unacked
  // window; pure ack/credit/heartbeat packets are fire-and-forget
  // (acknowledging an ack would ping-pong forever, credits are
  // self-healing — the next advertisement supersedes a lost one — and a
  // lost heartbeat is just silence the next beacon or probe fills in).
  bool track = false;
  if (reliable()) {
    for (const OutChunk* chunk : builder->chunks()) {
      if (chunk->kind != ChunkKind::kAck &&
          chunk->kind != ChunkKind::kCredit &&
          chunk->kind != ChunkKind::kHeartbeat) {
        track = true;
        break;
      }
    }
  }
  uint32_t pkt_seq = 0;
  if (track) {
    pkt_seq = gate.sched.next_pkt_seq++;
    builder->mark_reliable(pkt_seq);
  }

  const util::SegmentVec& segments = builder->finalize();
  ctx_.bus.publish({.kind = EventKind::kPacketBuilt,
                    .gate = gate.id,
                    .rail = rail,
                    .seq = pkt_seq,
                    .a = segments.total_bytes(),
                    .b = builder->chunk_count()});

  if (track) {
    // Flatten the wire image now: retransmission must not depend on the
    // application buffers or the builder staying untouched.
    PendingPacket& p = gate.sched.pending_pkts[pkt_seq];
    p.wire = std::make_shared<util::ByteBuffer>();
    p.wire->resize(segments.total_bytes());
    segments.gather_into(p.wire->view());
    for (OutChunk* chunk : builder->chunks()) {
      if (chunk->kind == ChunkKind::kRts &&
          (chunk->flags & kFlagCancel) != 0) {
        // A cancel-RTS rides here: remember which withdrawn rendezvous
        // cookies it covers, so the ack can arm their tombstones for GC
        // (the receiver provably cannot grant them afterwards).
        auto ck = gate.sched.cancel_wait_ack.find(
            MsgKey{chunk->tag, chunk->seq});
        if (ck != gate.sched.cancel_wait_ack.end()) {
          p.cancel_cookies.insert(p.cancel_cookies.end(),
                                  ck->second.begin(), ck->second.end());
          gate.sched.cancel_wait_ack.erase(ck);
        }
      }
      if (chunk->owner == nullptr || chunk->is_control()) continue;
      const size_t slot = p.owners.size();
      p.owners.push_back(chunk->owner);
      if (chunk->kind == ChunkKind::kSprayFrag) {
        // Remember enough to re-create the fragment on a survivor the
        // instant this packet's rail turns suspect (see on_rail_suspect).
        p.spray_frags.push_back({.tag = chunk->tag,
                                 .seq = chunk->seq,
                                 .frag_seq = chunk->frag_seq,
                                 .epoch = chunk->epoch,
                                 .offset = chunk->offset,
                                 .total = chunk->total,
                                 .payload = chunk->payload,
                                 .owner = chunk->owner,
                                 .owner_slot = slot,
                                 .reissued = false});
        if (chunk->reissue_at >= 0.0) {
          // Suspect-transition to wire: the failover latency the spray
          // path exists to shrink.
          ctx_.stats.spray_reissue_latency_us.add(ctx_.rt.now_us() -
                                                  chunk->reissue_at);
        }
      }
    }
    p.last_rail = rail;
    p.issued_at = ctx_.rt.now_us();
    p.timeout_us = ctx_.config.ack_timeout_us;
    arm_packet_timer(gate, pkt_seq);
  }

  const bool defer_completion = reliable();
  const util::Status st = fleet_.transfer_rail(rail).send_packet(
      gate, segments, [this, builder, defer_completion]() {
        for (OutChunk* chunk : builder->chunks()) {
          // Under reliability, part_done waits for the ack, not tx-done.
          if (!defer_completion && chunk->owner != nullptr &&
              !chunk->is_control()) {
            chunk->owner->part_done();
          }
          ctx_.chunk_pool.release(chunk);
        }
        kick();
      });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected packet send");
}

void ScheduleLayer::issue_standalone(Gate& gate, RailIndex rail,
                                     std::shared_ptr<PacketBuilder> builder) {
  issue_packet(gate, rail, std::move(builder), /*charge_election=*/false);
}

void ScheduleLayer::issue_bulk(Gate& gate, RailIndex rail, BulkJob* job,
                               size_t bytes) {
  NMAD_ASSERT(bytes > 0 && bytes <= job->remaining());
  ctx_.rt.cpu().charge(ctx_.config.elect_overhead_us);
  ++ctx_.stats.bulk_sends;
  ctx_.stats.bulk_bytes += bytes;

  const size_t offset = job->sent;
  job->sent += bytes;
  if (job->all_sent()) {
    gate.sched.ready_bulk.remove(*job);  // nothing left to elect
  }
  ctx_.bus.publish({.kind = EventKind::kElected,
                    .gate = gate.id,
                    .rail = rail,
                    .a = bytes,
                    .b = job->cookie});

  if (reliable()) {
    const BulkKey key{job->cookie, offset};
    PendingBulk& p = gate.sched.pending_bulk[key];
    p.job = job;
    p.offset = offset;
    p.len = bytes;
    p.last_rail = rail;
    p.issued_at = ctx_.rt.now_us();
    // Large slices hold the wire longer; budget their transfer time on
    // top of the base deadline so they don't time out spuriously.
    p.timeout_us =
        ctx_.config.ack_timeout_us +
        2.0 * util::wire_time_us(static_cast<double>(bytes),
                                fleet_.transfer_rail(rail).info()
                                    .bandwidth_mbps);
    arm_bulk_timer(gate, key);
  }

  const bool defer_completion = reliable();
  util::SegmentVec segments;
  segments.add(job->body.subspan(offset, bytes));
  const util::Status st = fleet_.transfer_rail(rail).send_bulk(
      gate, job->cookie, offset, segments,
      [this, job, bytes, defer_completion]() {
        if (!defer_completion) {
          job->acked += bytes;
          if (job->all_sent() && job->all_acked()) {
            SendRequest* owner = job->owner;
            ctx_.bulk_pool.release(job);
            owner->part_done();
          }
        }
        kick();
      });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected bulk send");
}

// ---------------------------------------------------------------------------
// Per-packet multipath spray (CoreConfig::spray)
// ---------------------------------------------------------------------------

void ScheduleLayer::spray_job(Gate& gate, BulkJob* job) {
  // Sprayed fragments ride track-0 packets under the ack machinery, so
  // the config chain forces reliability on whenever spray is enabled.
  NMAD_ASSERT(reliable());
  SendRequest* owner = job->owner;
  const Tag tag = owner->tag();
  const SeqNum seq = owner->seq();
  const util::ConstBytes body = job->body;

  // Each fragment must fit a track-0 packet on its own: packet header +
  // seq + fragment header + payload + checksum trailer within the gate's
  // smallest rail frame.
  const size_t overhead = kPacketHeaderBytes + kPacketSeqBytes +
                          kSprayFragHeaderBytes + kChecksumTrailerBytes;
  NMAD_ASSERT(gate.max_packet > overhead);
  const size_t frag_bytes = std::max<size_t>(
      1, std::min(ctx_.config.spray_frag_bytes, gate.max_packet - overhead));

  ++ctx_.stats.spray_sends;
  uint32_t frag_seq = 0;
  for (size_t off = 0; off < body.size(); off += frag_bytes) {
    const size_t n = std::min(frag_bytes, body.size() - off);
    OutChunk* c = ctx_.chunk_pool.acquire();
    c->kind = ChunkKind::kSprayFrag;
    c->flags = 0;
    c->tag = tag;
    c->seq = seq;
    c->offset = static_cast<uint32_t>(off);
    c->total = static_cast<uint32_t>(body.size());
    c->payload = body.subspan(off, n);
    c->frag_seq = frag_seq++;
    c->epoch = 0;
    c->reissue_at = -1.0;
    // Sprayed bodies were admitted as rendezvous traffic — the receiver
    // granted the whole block up front — so they bypass the eager credit
    // window: mark them charged before enqueue.
    c->credit_charged = true;
    c->prio = Priority::kNormal;
    c->pinned_rail = job->pinned_rail;
    c->owner = owner;
    owner->add_part();
    enqueue(gate, c);
    ++ctx_.stats.spray_frags_tx;
  }
  // Every fragment holds its own part; the job's original part retires
  // with the job itself.
  ctx_.bulk_pool.release(job);
  owner->part_done();
  kick();
}

void ScheduleLayer::on_rail_suspect(RailIndex rail) {
  if (!ctx_.config.spray) return;
  if (reissue_inflight_sprays(rail, /*degraded_trigger=*/false)) kick();
}

void ScheduleLayer::on_rail_degraded(RailIndex rail) {
  if (!adaptive()) return;
  // Eviction accounting: every gate that still reaches a healthy rail
  // drops the degraded one from its stripe set (refill_rail yields it
  // from now on); gates with no healthy alternative keep using it.
  for (auto& gate_ptr : ctx_.gates) {
    Gate& g = *gate_ptr;
    if (g.failed || !g.has_rail(rail)) continue;
    if (gate_has_healthy_rail(g, rail)) ++ctx_.stats.degraded_evictions;
  }
  bool any = false;
  if (ctx_.config.spray) {
    any = reissue_inflight_sprays(rail, /*degraded_trigger=*/true);
  }
  if (any) kick();
}

bool ScheduleLayer::gate_has_healthy_rail(const Gate& gate,
                                          RailIndex except) const {
  for (RailIndex r : gate.rails) {
    if (r == except) continue;
    const ITransferRail& tr = fleet_.transfer_rail(r);
    if (tr.alive() && !tr.suspect() && !tr.degraded()) return true;
  }
  return false;
}

bool ScheduleLayer::reissue_inflight_sprays(RailIndex rail,
                                            bool degraded_trigger) {
  const double now = ctx_.rt.now_us();
  bool any = false;
  for (auto& gate_ptr : ctx_.gates) {
    Gate& g = *gate_ptr;
    if (g.failed || !g.has_rail(rail)) continue;
    // Survivors: alive, not under suspicion, preferring scoreably
    // healthy rails over degraded ones — a re-issue onto a gray rail is
    // only taken when nothing better exists. With no survivor at all,
    // the regular timeout/death machinery remains the recovery path.
    std::vector<RailIndex> healthy;
    std::vector<RailIndex> fallback;
    for (RailIndex r : g.rails) {
      if (r == rail) continue;
      const ITransferRail& tr = fleet_.transfer_rail(r);
      if (!tr.alive() || tr.suspect()) continue;
      (tr.degraded() ? fallback : healthy).push_back(r);
    }
    const std::vector<RailIndex>& survivors =
        healthy.empty() ? fallback : healthy;
    if (survivors.empty()) continue;
    size_t rr = 0;
    for (auto& [seq, p] : g.sched.pending_pkts) {
      if (p.last_rail != rail) continue;
      for (SprayFragRef& ref : p.spray_frags) {
        if (ref.reissued) continue;  // a fresher twin is already out
        SendRequest*& slot = p.owners[ref.owner_slot];
        if (slot == nullptr) continue;  // cancelled mid-flight
        ref.reissued = true;
        // Hand the part to the re-issued copy: when the *original*
        // packet is eventually acked (or the gate torn down), its nulled
        // slot is skipped — the part retires exactly once, with
        // whichever copy the receiver accepts first.
        SendRequest* owner = slot;
        slot = nullptr;
        OutChunk* c = ctx_.chunk_pool.acquire();
        c->kind = ChunkKind::kSprayFrag;
        c->flags = 0;
        c->tag = ref.tag;
        c->seq = ref.seq;
        c->offset = ref.offset;
        c->total = ref.total;
        c->payload = ref.payload;
        c->frag_seq = ref.frag_seq;
        c->epoch = ref.epoch + 1;  // fences the suspect-rail twin
        c->reissue_at = now;
        c->credit_charged = true;
        c->prio = Priority::kHigh;  // the receiver is stalled on it
        c->pinned_rail = survivors[rr++ % survivors.size()];
        // No add_part here: the copy *inherits* the part the original
        // fragment held (its slot above is now null and will never
        // retire), keeping expected-part accounting balanced.
        c->owner = owner;
        enqueue(g, c);
        ++ctx_.stats.spray_reissues;
        if (degraded_trigger) ++ctx_.stats.degraded_reissues;
        ++ctx_.stats.spray_frags_tx;
        ctx_.bus.publish(
            {.kind = EventKind::kSprayReissued,
             .gate = g.id,
             .rail = rail,
             .seq = ref.seq,
             .a = (static_cast<uint64_t>(ref.tag) << 40) | ref.offset,
             .b = ref.payload.size()});
        any = true;
      }
    }
  }
  return any;
}

// ---------------------------------------------------------------------------
// CTS handling (grant arrival on the send side)
// ---------------------------------------------------------------------------

void ScheduleLayer::on_cts(Gate& gate, const WireChunk& chunk) {
  if ((chunk.flags & kFlagCancel) != 0) {
    handle_cancel_cts(gate, chunk);
    return;
  }
  auto it = gate.sched.rdv_wait_cts.find(chunk.cookie);
  if (it == gate.sched.rdv_wait_cts.end()) {
    // A grant racing our own withdrawal: consume the tombstone.
    if (gate.sched.cancelled_rdv.erase(chunk.cookie) > 0) return;
    NMAD_ASSERT_MSG(false, "CTS for unknown cookie");
    return;
  }
  BulkJob* job = it->second;
  gate.sched.rdv_wait_cts.erase(it);

  // The receiver echoed our spray proposal: the body leaves through the
  // optimization window as kSprayFrag chunks instead of per-rail bulk
  // sinks. (A receiver that ignored the flag falls through to the bulk
  // pipeline — both sides key off the CTS flag, so they always agree.)
  if (job->spray && (chunk.flags & kFlagSpray) != 0) {
    spray_job(gate, job);
    return;
  }
  job->spray = false;

  // Keep only rails this side can actually drive (and the pinned rail, if
  // the application constrained the message to one). The grant itself is
  // recorded before the aliveness filter: the receiver's sinks stay
  // posted through a blackout, so a granted rail that dies and later
  // revives can be restored to the job (on_rail_revived).
  job->rails.clear();
  job->granted_rails.clear();
  for (uint8_t r : chunk.rails) {
    if (r >= fleet_.rail_count() || !fleet_.transfer_rail(r).info().rdma ||
        !gate.has_rail(r)) {
      continue;
    }
    if (job->pinned_rail != kAnyRail && job->pinned_rail != r) continue;
    job->granted_rails.push_back(r);
    if (!fleet_.transfer_rail(r).alive()) continue;
    job->rails.push_back(r);
  }
  if (job->rails.empty()) {
    NMAD_ASSERT_MSG(reliable(), "CTS grants no usable rail");
    const util::Status status =
        util::closed("no usable rail for granted rendezvous");
    job->owner->complete(status);
    ctx_.bulk_pool.release(job);
    engine_.fail_gate(gate, status);
    return;
  }
  gate.sched.ready_bulk.push_back(*job);
  kick();
}

// ---------------------------------------------------------------------------
// Reliability: acknowledgements, retransmission
// ---------------------------------------------------------------------------

bool ScheduleLayer::rx_register(Gate& gate, uint32_t seq) {
  GateSched& s = gate.sched;
  if (seq < s.recv_floor || s.recv_seen.count(seq) != 0) return true;
  s.recv_seen.insert(seq);
  const uint32_t old_floor = s.recv_floor;
  while (s.recv_seen.count(s.recv_floor) != 0) {
    s.recv_seen.erase(s.recv_floor);
    ++s.recv_floor;
  }
  // A floor advance is the tombstone-GC trigger: any packet that could
  // still reference a key recorded a full reliability window below the
  // new floor is a duplicate suppressed right here, before the chunks
  // that would consult the tombstone are ever decoded.
  if (s.recv_floor != old_floor) reap_sched_tombstones(gate);
  return false;
}

uint32_t ScheduleLayer::recv_watermark(const Gate& gate) const {
  return gate.sched.recv_floor;
}

void ScheduleLayer::reap_sched_tombstones(Gate& gate) {
  GateSched& s = gate.sched;
  const uint32_t floor = s.recv_floor;
  const auto win = static_cast<uint32_t>(ctx_.config.reliability_window);
  uint64_t reaped = 0;
  const auto reap = [&](auto& tombs) {
    for (auto it = tombs.begin(); it != tombs.end();) {
      // Unarmed entries (cancel-RTS not yet acked) are never reaped: the
      // receiver may still issue a fresh-seq CTS that must find them.
      if (it->second != kTombUnarmed && floor - it->second >= win &&
          it->second <= floor) {
        it = tombs.erase(it);
        ++reaped;
      } else {
        ++it;
      }
    }
  };
  reap(s.cancelled_rdv);
  reap(s.completed_bulk);
  ctx_.stats.tombstones_reaped += reaped;
}

OutChunk* ScheduleLayer::make_ack_chunk(Gate& gate) {
  OutChunk* ack = ctx_.chunk_pool.acquire();
  ack->kind = ChunkKind::kAck;
  ack->flags = 0;
  ack->tag = 0;
  ack->seq = gate.sched.recv_floor;  // cumulative floor rides the seq field
  ack->offset = 0;
  ack->total = 0;
  ack->payload = {};
  const size_t n_sacks =
      std::min(gate.sched.recv_seen.size(), kMaxSacksPerAck);
  ack->ack_sacks.assign(
      gate.sched.recv_seen.begin(),
      std::next(gate.sched.recv_seen.begin(),
                static_cast<ptrdiff_t>(n_sacks)));
  const size_t n_bulk =
      std::min(gate.sched.pending_bulk_acks.size(), kMaxBulkAcksPerAck);
  ack->ack_bulk_acks.assign(
      gate.sched.pending_bulk_acks.begin(),
      gate.sched.pending_bulk_acks.begin() + static_cast<ptrdiff_t>(n_bulk));
  ack->prio = Priority::kHigh;
  ack->pinned_rail = kAnyRail;
  ack->owner = nullptr;
  return ack;
}

void ScheduleLayer::commit_ack_chunk(Gate& gate, OutChunk* ack) {
  // The chunk is definitely shipping: consume the bulk-slice acks it
  // carries (the sender's timer re-sends the slice if this ack is lost).
  // Packet acks are idempotent and re-advertised until the floor passes.
  GateSched& s = gate.sched;
  s.pending_bulk_acks.erase(
      s.pending_bulk_acks.begin(),
      s.pending_bulk_acks.begin() +
          static_cast<ptrdiff_t>(ack->ack_bulk_acks.size()));
  s.ack_needed = !s.pending_bulk_acks.empty();
  if (s.ack_needed) {
    if (!s.ack_timer_armed) schedule_ack(gate);
  } else if (s.ack_timer_armed) {
    ctx_.rt.cancel(s.ack_timer);
    s.ack_timer_armed = false;
  }
}

void ScheduleLayer::maybe_inject_ack(Gate& gate, PacketBuilder& builder) {
  if (!gate.sched.ack_needed || gate.failed) return;
  OutChunk* ack = make_ack_chunk(gate);
  if (!builder.empty() && !builder.fits(*ack)) {
    ctx_.chunk_pool.release(ack);
    return;  // packet is full; the delayed-ack timer still covers us
  }
  builder.add(ack);
  ++ctx_.stats.acks_piggybacked;
  commit_ack_chunk(gate, ack);
}

void ScheduleLayer::schedule_ack(Gate& gate) {
  gate.sched.ack_needed = true;
  if (gate.sched.ack_timer_armed) return;
  gate.sched.ack_timer_armed = true;
  const GateId gid = gate.id;
  gate.sched.ack_timer = ctx_.rt.schedule_after(
      ctx_.config.ack_delay_us, [this, gid]() { on_ack_timer(gid); });
}

void ScheduleLayer::on_ack_timer(GateId gate_id) {
  Gate& g = gate_ref(gate_id);
  g.sched.ack_timer_armed = false;
  if (g.failed || !g.sched.ack_needed) return;
  // No outgoing packet picked the ack up in time: send it standalone on
  // an idle rail, bypassing the window (which may be at its cap). Prefer
  // the rail the peer's traffic was last heard on — a rail that delivers
  // inbound is the best guess for the return path when another rail of
  // the gate has gone dark.
  RailIndex chosen = kAnyRail;
  bool any_alive = false;
  if (g.has_rail(g.sched.last_heard_rail) &&
      fleet_.transfer_rail(g.sched.last_heard_rail).alive()) {
    any_alive = true;
    if (fleet_.transfer_rail(g.sched.last_heard_rail).tx_idle()) {
      chosen = g.sched.last_heard_rail;
    }
  }
  for (RailIndex r : g.rails) {
    if (chosen != kAnyRail) break;
    if (!fleet_.transfer_rail(r).alive()) continue;
    any_alive = true;
    if (fleet_.transfer_rail(r).tx_idle()) {
      chosen = r;
      break;
    }
  }
  if (!any_alive) return;  // nothing to ack over; the peer fails too
  if (chosen == kAnyRail) {
    schedule_ack(g);  // all rails busy: piggybacking will beat us anyway
    return;
  }
  OutChunk* ack = make_ack_chunk(g);
  commit_ack_chunk(g, ack);
  ++ctx_.stats.acks_sent;
  const RailInfo& info = fleet_.transfer_rail(chosen).info();
  auto builder = std::make_shared<PacketBuilder>(
      std::min(g.max_packet, info.max_packet_bytes),
      info.gather ? info.max_gather_segments : 0, ctx_.config.wire_checksum,
      /*reserve_seq=*/true);
  builder->add(ack);
  issue_packet(g, chosen, std::move(builder), /*charge_election=*/false);
}

void ScheduleLayer::on_ack(Gate& gate, const WireChunk& chunk) {
  if (!reliable()) return;  // stray ack without the layer enabled
  while (!gate.sched.pending_pkts.empty() &&
         gate.sched.pending_pkts.begin()->first < chunk.seq) {
    retire_packet(gate, gate.sched.pending_pkts.begin());
  }
  for (const uint32_t seq : chunk.sacks) {
    auto it = gate.sched.pending_pkts.find(seq);
    if (it != gate.sched.pending_pkts.end()) retire_packet(gate, it);
  }
  for (const BulkAck& ack : chunk.bulk_acks) retire_bulk(gate, ack);
}

void ScheduleLayer::retire_packet(
    Gate& gate, std::map<uint32_t, PendingPacket>::iterator it) {
  const uint32_t seq = it->first;
  PendingPacket& p = it->second;
  if (p.timer_armed) ctx_.rt.cancel(p.timer);
  // The rail delivered: feed its score the issue-to-ack latency of the
  // last (successful) wire handoff.
  fleet_.transfer_rail(p.last_rail)
      .note_delivery(p.issued_at >= 0.0 ? ctx_.rt.now_us() - p.issued_at
                                        : -1.0);
  ctx_.bus.publish({.kind = EventKind::kAcked,
                    .gate = gate.id,
                    .rail = p.last_rail,
                    .seq = seq});
  // The ack proves the peer consumed the cancel-RTS chunks this packet
  // carried: no fresh CTS can be granted for those cookies any more, so
  // their tombstones become eligible for the floor-watermark GC. Any CTS
  // already in flight was sent before this ack and therefore carries a seq
  // within one reliability window of the floor recorded here.
  for (const uint64_t cookie : p.cancel_cookies) {
    auto tomb = gate.sched.cancelled_rdv.find(cookie);
    if (tomb != gate.sched.cancelled_rdv.end() &&
        tomb->second == kTombUnarmed) {
      tomb->second = gate.sched.recv_floor;
    }
  }
  std::vector<SendRequest*> owners = std::move(p.owners);
  gate.sched.pending_pkts.erase(it);
  for (SendRequest* owner : owners) {
    if (owner != nullptr) owner->part_done();  // null: cancelled mid-flight
  }
}

void ScheduleLayer::retire_bulk(Gate& gate, const BulkAck& ack) {
  auto it = gate.sched.pending_bulk.find(BulkKey{ack.cookie, ack.offset});
  if (it == gate.sched.pending_bulk.end()) return;  // duplicate ack
  PendingBulk& p = it->second;
  if (p.len != ack.len) return;  // not this slice
  if (p.timer_armed) ctx_.rt.cancel(p.timer);
  fleet_.transfer_rail(p.last_rail)
      .note_delivery(p.issued_at >= 0.0 ? ctx_.rt.now_us() - p.issued_at
                                        : -1.0);
  ctx_.bus.publish({.kind = EventKind::kAcked,
                    .gate = gate.id,
                    .rail = p.last_rail,
                    .a = ack.cookie,
                    .b = ack.offset});
  BulkJob* job = p.job;
  gate.sched.pending_bulk.erase(it);
  job->acked += ack.len;
  if (job->all_sent() && job->all_acked()) {
    SendRequest* owner = job->owner;
    ctx_.bulk_pool.release(job);
    owner->part_done();
  }
}

void ScheduleLayer::arm_packet_timer(Gate& gate, uint32_t seq) {
  auto it = gate.sched.pending_pkts.find(seq);
  NMAD_ASSERT(it != gate.sched.pending_pkts.end());
  PendingPacket& p = it->second;
  NMAD_ASSERT(!p.timer_armed);
  p.timer_armed = true;
  const GateId gid = gate.id;
  p.timer = ctx_.rt.schedule_after(
      p.timeout_us, [this, gid, seq]() { on_packet_timeout(gid, seq); });
}

void ScheduleLayer::arm_bulk_timer(Gate& gate, const BulkKey& key) {
  auto it = gate.sched.pending_bulk.find(key);
  NMAD_ASSERT(it != gate.sched.pending_bulk.end());
  PendingBulk& p = it->second;
  NMAD_ASSERT(!p.timer_armed);
  p.timer_armed = true;
  const GateId gid = gate.id;
  p.timer = ctx_.rt.schedule_after(
      p.timeout_us, [this, gid, key]() { on_bulk_timeout(gid, key); });
}

double ScheduleLayer::backoff_growth() {
  const double growth = ctx_.config.retry_backoff;
  if (!ctx_.config.backoff_jitter) return growth;
  // The draw is symmetric around the configured factor so jitter never
  // changes the expected growth. The half-width is 0.5 * growth, shrunk
  // to growth - 1 whenever the full range could dip below 1.0 (a
  // jittered timeout must never shrink — backoff stays monotone per
  // entry). A one-sided clamp instead would inflate small factors:
  // retry_backoff = 1.0 (constant timeouts) would silently grow up to
  // 1.5x per retry. At growth <= 1 the width collapses to zero and the
  // configured factor is returned untouched.
  const double half = std::min(0.5 * growth, growth - 1.0);
  if (half <= 0.0) return growth;
  // xorshift64* — cheap, allocation-free, and seeded per node, so a
  // replayed schedule draws the identical jitter sequence.
  uint64_t x = jitter_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  jitter_state_ = x;
  const double u =
      static_cast<double>((x * 0x2545F4914F6CDD1Dull) >> 11) /
      9007199254740992.0;  // uniform in [0, 1)
  return growth + half * (2.0 * u - 1.0);
}

void ScheduleLayer::on_packet_timeout(GateId gate_id, uint32_t seq) {
  Gate& g = gate_ref(gate_id);
  if (g.failed) return;
  auto it = g.sched.pending_pkts.find(seq);
  if (it == g.sched.pending_pkts.end()) return;  // retired; stale timer
  it->second.timer_armed = false;
  ++ctx_.stats.packet_timeouts;
  fleet_.transfer_rail(it->second.last_rail).note_timeout();
  // Rail death may have failed the gate or requeued this packet already.
  if (g.failed) return;
  it = g.sched.pending_pkts.find(seq);
  if (it == g.sched.pending_pkts.end() || it->second.queued_retx) {
    kick();
    return;
  }
  PendingPacket& p = it->second;
  if (p.retries >= ctx_.config.max_retries) {
    engine_.fail_gate(
        g, util::resource_exhausted("packet retransmission limit reached"));
    return;
  }
  ++p.retries;
  p.timeout_us *= backoff_growth();
  p.queued_retx = true;
  g.sched.retx_queue.push_back(seq);
  kick();
}

void ScheduleLayer::on_bulk_timeout(GateId gate_id, BulkKey key) {
  Gate& g = gate_ref(gate_id);
  if (g.failed) return;
  auto it = g.sched.pending_bulk.find(key);
  if (it == g.sched.pending_bulk.end()) return;  // retired; stale timer
  it->second.timer_armed = false;
  ++ctx_.stats.bulk_timeouts;
  fleet_.transfer_rail(it->second.last_rail).note_timeout();
  if (g.failed) return;
  it = g.sched.pending_bulk.find(key);
  if (it == g.sched.pending_bulk.end() || it->second.queued_retx) {
    kick();
    return;
  }
  PendingBulk& p = it->second;
  if (p.retries >= ctx_.config.max_retries) {
    engine_.fail_gate(g, util::resource_exhausted(
                             "rendezvous retransmission limit reached"));
    return;
  }
  ++p.retries;
  p.timeout_us *= backoff_growth();
  p.queued_retx = true;
  g.sched.bulk_retx.push_back(key);
  kick();
}

void ScheduleLayer::retransmit_packet(Gate& gate, RailIndex rail,
                                      uint32_t seq) {
  auto it = gate.sched.pending_pkts.find(seq);
  NMAD_ASSERT(it != gate.sched.pending_pkts.end());
  PendingPacket& p = it->second;
  p.queued_retx = false;
  if (p.timer_armed) {
    ctx_.rt.cancel(p.timer);
    p.timer_armed = false;
  }
  p.last_rail = rail;
  p.issued_at = ctx_.rt.now_us();
  ++ctx_.stats.packets_retransmitted;
  ctx_.bus.publish({.kind = EventKind::kRetransmit,
                    .gate = gate.id,
                    .rail = rail,
                    .seq = seq});
  // Re-issuing is an election of sorts: the engine walked its queues.
  ctx_.rt.cpu().charge(ctx_.config.elect_overhead_us);
  std::shared_ptr<util::ByteBuffer> wire = p.wire;
  util::SegmentVec segments;
  segments.add(wire->view());
  const util::Status st = fleet_.transfer_rail(rail).send_packet(
      gate, segments, [this, wire]() { kick(); });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected packet retransmit");
  arm_packet_timer(gate, seq);
}

void ScheduleLayer::retransmit_bulk(Gate& gate, RailIndex rail,
                                    const BulkKey& key) {
  auto it = gate.sched.pending_bulk.find(key);
  NMAD_ASSERT(it != gate.sched.pending_bulk.end());
  PendingBulk& p = it->second;
  p.queued_retx = false;
  if (p.timer_armed) {
    ctx_.rt.cancel(p.timer);
    p.timer_armed = false;
  }
  p.last_rail = rail;
  p.issued_at = ctx_.rt.now_us();
  ++ctx_.stats.bulk_retransmitted;
  ctx_.bus.publish({.kind = EventKind::kRetransmit,
                    .gate = gate.id,
                    .rail = rail,
                    .a = key.first,
                    .b = key.second});
  ctx_.rt.cpu().charge(ctx_.config.elect_overhead_us);
  util::SegmentVec segments;
  segments.add(p.job->body.subspan(p.offset, p.len));
  const util::Status st = fleet_.transfer_rail(rail).send_bulk(
      gate, key.first, p.offset, segments, [this]() { kick(); });
  NMAD_ASSERT_MSG(st.is_ok(), "driver rejected bulk retransmit");
  arm_bulk_timer(gate, key);
}

// ---------------------------------------------------------------------------
// Receive-side services (owned here: they ride the ack machinery)
// ---------------------------------------------------------------------------

void ScheduleLayer::note_heard(Gate& gate, RailIndex rail) {
  gate.sched.last_heard_rail = rail;
}

void ScheduleLayer::note_eager_heard(Gate& gate, size_t payload_bytes) {
  if (!flow_control()) return;
  gate.sched.eager_heard_bytes += payload_bytes;
  gate.sched.eager_heard_chunks += 1;
}

void ScheduleLayer::queue_bulk_ack(Gate& gate, const BulkAck& ack) {
  gate.sched.pending_bulk_acks.push_back(ack);
  schedule_ack(gate);
}

void ScheduleLayer::note_bulk_completed(Gate& gate, uint64_t cookie) {
  gate.sched.completed_bulk.emplace(cookie, gate.sched.recv_floor);
}

void ScheduleLayer::on_bulk_orphan(Gate& gate, uint64_t cookie, size_t offset,
                                   size_t len) {
  if (gate.sched.completed_bulk.count(cookie) == 0) return;  // unknown: drop
  // A retransmitted slice landed after its sink completed: the bytes are
  // already in place, but the sender still waits for the ack.
  BulkAck ack;
  ack.cookie = cookie;
  ack.offset = static_cast<uint32_t>(offset);
  ack.len = static_cast<uint32_t>(len);
  queue_bulk_ack(gate, ack);
}

// ---------------------------------------------------------------------------
// Flow control (CoreConfig::flow_control)
//
// The receiver advertises cumulative admission limits — "you may have sent
// me at most L bytes / N chunks of eager payload since the connection
// opened". Cumulative limits (rather than deltas) make the scheme immune
// to loss and reordering: the sender keeps max(limit seen so far) and a
// stale or lost advertisement is simply superseded by the next one.
// ---------------------------------------------------------------------------

bool ScheduleLayer::credit_admits(Gate& gate, const OutChunk& chunk) {
  if (!flow_control() || gate.failed) return true;
  if (chunk.is_control() || chunk.payload.empty() || chunk.credit_charged) {
    return true;  // control traffic and re-homed chunks always flow
  }
  GateSched& s = gate.sched;
  if (s.eager_sent_bytes + chunk.payload.size() <= s.credit_limit_bytes &&
      s.eager_sent_chunks + 1 <= s.credit_limit_chunks) {
    return true;
  }
  note_credit_stall(gate);
  return false;
}

void ScheduleLayer::charge_credit(Gate& gate, OutChunk& chunk) {
  if (!flow_control() || chunk.credit_charged || chunk.is_control() ||
      chunk.payload.empty()) {
    return;
  }
  if (skip_credit_charges_ > 0) [[unlikely]] {
    // Injected protocol bug (test_skip_next_credit_charge): the chunk
    // ships without being charged, so the receiver hears traffic the
    // sender never accounted for.
    --skip_credit_charges_;
    return;
  }
  chunk.credit_charged = true;
  GateSched& s = gate.sched;
  s.eager_sent_bytes += chunk.payload.size();
  s.eager_sent_chunks += 1;
  s.window_eager_bytes -=
      std::min(s.window_eager_bytes, chunk.payload.size());
}

void ScheduleLayer::note_credit_stall(Gate& gate) {
  ++ctx_.stats.credit_stalls;
  gate.sched.credit_stalled = true;
  if (gate.sched.credit_probe_armed || ctx_.config.credit_probe_us <= 0.0) {
    return;
  }
  gate.sched.credit_probe_armed = true;
  const GateId gid = gate.id;
  gate.sched.credit_probe_timer = ctx_.rt.schedule_after(
      ctx_.config.credit_probe_us, [this, gid]() { on_credit_probe(gid); });
}

void ScheduleLayer::on_credit_probe(GateId gate_id) {
  Gate& g = gate_ref(gate_id);
  g.sched.credit_probe_armed = false;
  if (g.failed || !g.sched.credit_stalled) return;
  // While anything of ours is still unacked, a piggybacked credit update
  // can still come home on its ack: keep waiting.
  if (!g.sched.pending_pkts.empty() || !g.sched.pending_bulk.empty()) {
    g.sched.credit_probe_armed = true;
    g.sched.credit_probe_timer = ctx_.rt.schedule_after(
        ctx_.config.credit_probe_us,
        [this, gate_id]() { on_credit_probe(gate_id); });
    return;
  }
  // Anything actually held back? The flag can outlive the traffic (the
  // stalled chunks may have been cancelled); if nothing in the window is
  // waiting on credit, the stall is over and the timer stays down.
  bool held = false;
  for (const OutChunk& c : g.sched.window) {
    if (!c.is_control() && !c.payload.empty() && !c.credit_charged) {
      held = true;
      break;
    }
  }
  if (!held) {
    g.sched.credit_stalled = false;
    return;
  }
  // Quiet gate, stalled sender: either the peer's store is full, or its
  // last credit update was lost (standalone ack/credit packets are
  // fire-and-forget). We cannot tell which from here, and force-admitting
  // would breach the receiver's budget — so ask instead: a kCredit chunk
  // with zero limits is a no-op under the monotone-max rule, which lets
  // the zero value double as "please restate your limits". A lost update
  // comes back on the answer; a genuinely full receiver restates the old
  // limits and we simply probe again.
  RailIndex chosen = kAnyRail;
  bool any_alive = false;
  if (g.has_rail(g.sched.last_heard_rail) &&
      fleet_.transfer_rail(g.sched.last_heard_rail).alive()) {
    any_alive = true;
    if (fleet_.transfer_rail(g.sched.last_heard_rail).tx_idle()) {
      chosen = g.sched.last_heard_rail;
    }
  }
  for (RailIndex r : g.rails) {
    if (chosen != kAnyRail) break;
    if (!fleet_.transfer_rail(r).alive()) continue;
    any_alive = true;
    if (fleet_.transfer_rail(r).tx_idle()) {
      chosen = r;
      break;
    }
  }
  if (!any_alive) return;  // every rail is gone; failure detection acts
  if (chosen != kAnyRail) {
    OutChunk* req = ctx_.chunk_pool.acquire();
    req->kind = ChunkKind::kCredit;
    req->flags = 0;
    req->credit_bytes = 0;
    req->credit_chunks = 0;
    req->prio = Priority::kHigh;
    req->owner = nullptr;
    const RailInfo& info = fleet_.transfer_rail(chosen).info();
    auto builder = std::make_shared<PacketBuilder>(
        std::min(g.max_packet, info.max_packet_bytes),
        info.gather ? info.max_gather_segments : 0, ctx_.config.wire_checksum,
        /*reserve_seq=*/true);
    builder->add(req);
    issue_packet(g, chosen, std::move(builder), /*charge_election=*/false);
    ++ctx_.stats.credit_probes;
  }
  // Keep probing until the limits grow (on_credit cancels the timer)
  // or the held-back traffic goes away.
  g.sched.credit_probe_armed = true;
  g.sched.credit_probe_timer = ctx_.rt.schedule_after(
      ctx_.config.credit_probe_us,
      [this, gate_id]() { on_credit_probe(gate_id); });
}

void ScheduleLayer::refresh_advert(Gate& gate) {
  if (gate.failed) return;
  GateSched& s = gate.sched;
  // Bytes. With a budget, grant exactly the room the store has left after
  // what is parked plus what the *other* peers may still send against
  // their outstanding grants; this gate's own outstanding grant is being
  // recomputed, so it is excluded.
  uint64_t want_bytes = s.advertised_limit_bytes;
  if (ctx_.config.rx_budget == 0) {
    if (ctx_.config.initial_credit_bytes != 0) {
      want_bytes = s.eager_heard_bytes + ctx_.config.initial_credit_bytes;
    }
  } else {
    const uint64_t budget =
        std::max<uint64_t>(ctx_.config.rx_budget, gate.max_packet);
    uint64_t used = 0;
    for (const auto& g : ctx_.gates) {
      used += g->sched.stored_bytes;
      if (g.get() != &gate &&
          g->sched.advertised_limit_bytes > g->sched.eager_heard_bytes) {
        used += g->sched.advertised_limit_bytes - g->sched.eager_heard_bytes;
      }
    }
    uint64_t avail = budget > used ? budget - used : 0;
    // Cap the outstanding grant at the initial window. Adverts are
    // monotone, so an over-generous grant to a sender that then goes idle
    // is stranded forever — and a stranded grant the size of the whole
    // budget starves every other peer (deadlock). Capping bounds the
    // stranding to one initial window per idle gate, and the config rule
    // "Σ initial grants ≤ budget" then guarantees each gate can always be
    // re-granted its window: no peer can be starved out.
    if (ctx_.config.initial_credit_bytes != 0) {
      avail = std::min<uint64_t>(avail, ctx_.config.initial_credit_bytes);
    }
    want_bytes = s.eager_heard_bytes + avail;
  }
  if (want_bytes > s.advertised_limit_bytes) {
    s.advertised_limit_bytes = want_bytes;  // monotone, never retreats
  }
  // Chunk count, same shape.
  uint64_t want_chunks = s.advertised_limit_chunks;
  if (ctx_.config.rx_budget_msgs == 0) {
    if (ctx_.config.initial_credit_msgs != 0) {
      want_chunks = s.eager_heard_chunks + ctx_.config.initial_credit_msgs;
    }
  } else {
    const uint64_t budget = std::max<uint64_t>(ctx_.config.rx_budget_msgs, 1);
    uint64_t used = 0;
    for (const auto& g : ctx_.gates) {
      used += g->sched.stored_chunks;
      if (g.get() != &gate &&
          g->sched.advertised_limit_chunks > g->sched.eager_heard_chunks) {
        used +=
            g->sched.advertised_limit_chunks - g->sched.eager_heard_chunks;
      }
    }
    uint64_t avail = budget > used ? budget - used : 0;
    if (ctx_.config.initial_credit_msgs != 0) {  // same stranding cap
      avail = std::min<uint64_t>(avail, ctx_.config.initial_credit_msgs);
    }
    want_chunks = s.eager_heard_chunks + avail;
  }
  if (want_chunks > s.advertised_limit_chunks) {
    s.advertised_limit_chunks = want_chunks;
  }
}

OutChunk* ScheduleLayer::make_credit_chunk(Gate& gate) {
  refresh_advert(gate);
  GateSched& s = gate.sched;
  if (!s.credit_update_needed &&
      s.advertised_limit_bytes == s.last_sent_limit_bytes &&
      s.advertised_limit_chunks == s.last_sent_limit_chunks) {
    return nullptr;  // the peer already knows everything we could say
  }
  OutChunk* chunk = ctx_.chunk_pool.acquire();
  chunk->kind = ChunkKind::kCredit;
  chunk->flags = 0;
  chunk->credit_bytes = s.advertised_limit_bytes;
  chunk->credit_chunks = s.advertised_limit_chunks;
  chunk->prio = Priority::kHigh;
  chunk->owner = nullptr;
  return chunk;
}

void ScheduleLayer::maybe_inject_credit(Gate& gate, PacketBuilder& builder) {
  if (!flow_control() || gate.failed) return;
  OutChunk* credit = make_credit_chunk(gate);
  if (credit == nullptr) return;
  if (!builder.empty() && !builder.fits(*credit)) {
    ctx_.chunk_pool.release(credit);
    return;  // packet is full; the next one (or an ack) carries the update
  }
  builder.add(credit);
  gate.sched.last_sent_limit_bytes = gate.sched.advertised_limit_bytes;
  gate.sched.last_sent_limit_chunks = gate.sched.advertised_limit_chunks;
  gate.sched.credit_update_needed = false;
  ++ctx_.stats.credit_grants;
}

void ScheduleLayer::on_credit(Gate& gate, const WireChunk& chunk) {
  if (!flow_control()) return;
  if (chunk.credit_bytes == 0 && chunk.credit_chunks == 0) {
    // A credit *request* from a stalled sender (see on_credit_probe):
    // restate our current limits on the ack path, even if they have not
    // moved since the last advertisement.
    if (!gate.failed) {
      gate.sched.credit_update_needed = true;
      schedule_ack(gate);
    }
    return;
  }
  bool grew = false;
  if (chunk.credit_bytes > gate.sched.credit_limit_bytes) {
    gate.sched.credit_limit_bytes = chunk.credit_bytes;
    grew = true;
  }
  if (chunk.credit_chunks > gate.sched.credit_limit_chunks) {
    gate.sched.credit_limit_chunks = chunk.credit_chunks;
    grew = true;
  }
  if (!grew) return;  // stale (reordered) advertisement
  gate.sched.credit_stalled = false;
  if (gate.sched.credit_probe_armed) {
    ctx_.rt.cancel(gate.sched.credit_probe_timer);
    gate.sched.credit_probe_armed = false;
  }
  kick();  // stalled chunks may be admissible now
}

void ScheduleLayer::rx_store_charge(Gate& gate, size_t bytes, size_t chunks) {
  gate.sched.stored_bytes += bytes;
  gate.sched.stored_chunks += chunks;
  ctx_.stats.rx_stored_bytes += bytes;
  if (ctx_.stats.rx_stored_bytes > ctx_.stats.rx_stored_hwm) {
    ctx_.stats.rx_stored_hwm = ctx_.stats.rx_stored_bytes;
  }
}

void ScheduleLayer::rx_store_discharge(Gate& gate, size_t bytes,
                                       size_t chunks) {
  NMAD_ASSERT(gate.sched.stored_bytes >= bytes);
  NMAD_ASSERT(gate.sched.stored_chunks >= chunks);
  NMAD_ASSERT(ctx_.stats.rx_stored_bytes >= bytes);
  gate.sched.stored_bytes -= bytes;
  gate.sched.stored_chunks -= chunks;
  ctx_.stats.rx_stored_bytes -= bytes;
  // Freed room means fresh credit to hand out; let it ride the next ack.
  if (flow_control() && bytes > 0 && !gate.failed) {
    gate.sched.credit_update_needed = true;
    schedule_ack(gate);
  }
}

std::pair<size_t, size_t> ScheduleLayer::store_gauge(const Gate& gate) const {
  return {gate.sched.stored_bytes, gate.sched.stored_chunks};
}

// ---------------------------------------------------------------------------
// Cancellation (send side)
// ---------------------------------------------------------------------------

bool ScheduleLayer::cancel_send(Gate& gate, SendRequest* req,
                                util::Status status) {
  if (gate.failed) return false;
  GateSched& s = gate.sched;
  // Pass 1 (no mutation): every pending part must be reachable, or the
  // cancel is refused and the send proceeds untouched. Parts inside a
  // prebuilt packet are unreachable on purpose — the builder holds live
  // views of the application buffer and is already promised to a NIC.
  size_t reachable = 0;
  for (OutChunk& c : s.window) {
    if (c.owner == req) ++reachable;
  }
  std::set<BulkJob*> jobs;
  for (auto& [cookie, job] : s.rdv_wait_cts) {
    if (job->owner == req) jobs.insert(job);
  }
  for (BulkJob& job : s.ready_bulk) {
    if (job.owner == req) jobs.insert(&job);
  }
  for (auto& [key, p] : s.pending_bulk) {
    if (p.job->owner == req) jobs.insert(p.job);
  }
  if (!reliable()) {
    // Without the reliability layer, a streaming job's driver-completion
    // callback dereferences the job: it cannot be freed mid-flight.
    for (BulkJob* job : jobs) {
      if (job->sent > job->acked) return false;
    }
  }
  reachable += jobs.size();
  if (reliable()) {
    for (auto& [seq, p] : s.pending_pkts) {
      for (SendRequest* owner : p.owners) {
        if (owner == req) ++reachable;
      }
    }
  }
  if (reachable < req->pending_parts()) return false;
  NMAD_ASSERT(reachable == req->pending_parts());

  // Pass 2: unwind. Window chunks are simply discarded; charged-but-lost
  // chunks (re-homed by a rail death) un-charge so the sender's view of
  // the credit window stays consistent with what the receiver heard.
  std::vector<OutChunk*> mine;
  for (OutChunk& c : s.window) {
    if (c.owner == req) mine.push_back(&c);
  }
  for (OutChunk* c : mine) {
    s.window.remove(*c);
    // Spray fragments are born credit_charged without ever touching the
    // eager accounting (the receiver granted the block via CTS), so they
    // have nothing to unwind.
    if (flow_control() && !c->payload.empty() &&
        c->kind != ChunkKind::kSprayFrag) {
      if (c->credit_charged) {
        s.eager_sent_bytes -= c->payload.size();
        s.eager_sent_chunks -= 1;
      } else {
        s.window_eager_bytes -=
            std::min(s.window_eager_bytes, c->payload.size());
      }
    }
    ctx_.chunk_pool.release(c);
  }
  for (BulkJob* job : jobs) {
    // A CTS may already be on its way — or may yet be *issued*, if the
    // receiver grants before our cancel-RTS reaches it: tombstone the
    // cookie so the grant is swallowed instead of tripping the
    // unknown-cookie assert. The tombstone is born unarmed (exempt from
    // the receive-floor GC): until the cancel-RTS is acked the receiver
    // can still issue a fresh-seq CTS that no floor advance would catch.
    // retire_packet arms it once the ack proves no new grant can follow.
    s.cancelled_rdv.emplace(job->cookie, kTombUnarmed);
    if (reliable()) {
      s.cancel_wait_ack[MsgKey{req->tag(), req->seq()}].push_back(
          job->cookie);
    }
    s.rdv_wait_cts.erase(job->cookie);
    remove_window_rts(gate, job->cookie);
    drop_bulk_job(gate, job);
  }
  if (reliable()) {
    // In-flight packets keep their flattened wire copy (retransmits stay
    // memory-safe); only the completion hook is detached.
    for (auto& [seq, p] : s.pending_pkts) {
      for (SendRequest*& owner : p.owners) {
        if (owner == req) owner = nullptr;
      }
    }
  }
  // The message consumed a sequence number, so the peer's matching irecv
  // would wait forever: always tell it the message was withdrawn.
  send_cancel_rts(gate, req->tag(), req->seq(), 0);
  kick();
  ++ctx_.stats.sends_cancelled;
  req->reset_parts();
  req->complete(std::move(status));
  engine_.cancel_deadline(req);
  return true;
}

void ScheduleLayer::handle_cancel_cts(Gate& gate, const WireChunk& chunk) {
  // The receiver refused or revoked the grant for this cookie. Preferred
  // unwind is a full cancel of the owning send; when other parts of the
  // message are already in flight, only this job is dropped and the rest
  // of the message completes normally.
  auto it = gate.sched.rdv_wait_cts.find(chunk.cookie);
  if (it != gate.sched.rdv_wait_cts.end()) {
    BulkJob* job = it->second;
    SendRequest* owner = job->owner;
    if (owner != nullptr &&
        cancel_send(gate, owner,
                    util::cancelled("peer cancelled the receive"))) {
      return;  // cancel_send unwound this job (and any siblings)
    }
    gate.sched.rdv_wait_cts.erase(chunk.cookie);
    remove_window_rts(gate, chunk.cookie);
    drop_bulk_job(gate, job);
    if (owner != nullptr) owner->part_done();
    return;
  }
  if (!reliable()) return;  // mid-stream: the slices land in the void
  BulkJob* job = nullptr;
  for (BulkJob& j : gate.sched.ready_bulk) {
    if (j.cookie == chunk.cookie) {
      job = &j;
      break;
    }
  }
  if (job == nullptr) {
    for (auto& [key, p] : gate.sched.pending_bulk) {
      if (key.first == chunk.cookie) {
        job = p.job;
        break;
      }
    }
  }
  if (job == nullptr) return;  // already finished (revocation raced the end)
  SendRequest* owner = job->owner;
  if (owner != nullptr &&
      cancel_send(gate, owner,
                  util::cancelled("peer cancelled the receive"))) {
    return;
  }
  drop_bulk_job(gate, job);
  if (owner != nullptr) owner->part_done();
}

void ScheduleLayer::send_cancel_rts(Gate& gate, Tag tag, SeqNum seq,
                                    uint64_t cookie) {
  OutChunk* c = ctx_.chunk_pool.acquire();
  c->kind = ChunkKind::kRts;
  c->flags = kFlagCancel;
  c->tag = tag;
  c->seq = seq;
  c->offset = 0;
  c->total = 0;
  c->rdv_len = 0;
  c->cookie = cookie;
  c->prio = Priority::kHigh;
  c->owner = nullptr;
  enqueue(gate, c);
}

void ScheduleLayer::remove_window_rts(Gate& gate, uint64_t cookie) {
  for (OutChunk& c : gate.sched.window) {
    if (c.kind == ChunkKind::kRts && c.cookie == cookie &&
        (c.flags & kFlagCancel) == 0) {
      gate.sched.window.remove(c);
      ctx_.chunk_pool.release(&c);
      return;
    }
  }
}

bool ScheduleLayer::cts_in_window(const Gate& gate, uint64_t cookie) const {
  for (const OutChunk& c : gate.sched.window) {
    if (c.kind == ChunkKind::kCts && c.cookie == cookie &&
        (c.flags & kFlagCancel) == 0) {
      return true;
    }
  }
  return false;
}

void ScheduleLayer::remove_window_cts(Gate& gate, uint64_t cookie) {
  for (OutChunk& c : gate.sched.window) {
    if (c.kind == ChunkKind::kCts && c.cookie == cookie &&
        (c.flags & kFlagCancel) == 0) {
      gate.sched.window.remove(c);
      ctx_.chunk_pool.release(&c);
      return;
    }
  }
}

void ScheduleLayer::drop_bulk_job(Gate& gate, BulkJob* job) {
  if (job->hook.is_linked()) gate.sched.ready_bulk.remove(*job);
  for (auto it = gate.sched.pending_bulk.begin();
       it != gate.sched.pending_bulk.end();) {
    if (it->second.job == job) {
      if (it->second.timer_armed) ctx_.rt.cancel(it->second.timer);
      it = gate.sched.pending_bulk.erase(it);
    } else {
      ++it;
    }
  }
  // Stale bulk_retx keys are skipped (and dropped) by refill_rail once
  // the pending entry is gone.
  ctx_.bulk_pool.release(job);
}

// ---------------------------------------------------------------------------
// Rail lifecycle re-homing (subscribed to kHealthTransition via the façade)
// ---------------------------------------------------------------------------

void ScheduleLayer::on_rail_dead(RailIndex rail) {
  // A packet elected early for this rail goes back to its gate's window
  // for re-election elsewhere.
  RailSched& rs = rails_[rail];
  if (rs.prebuilt) {
    Gate& pg = gate_ref(rs.prebuilt_gate);
    for (OutChunk* chunk : rs.prebuilt->chunks()) {
      pg.sched.window.push_back(*chunk);
    }
    rs.prebuilt.reset();
  }

  for (auto& gate_ptr : ctx_.gates) {
    Gate& g = *gate_ptr;
    if (g.failed || !g.has_rail(rail)) continue;
    bool any_alive = false;
    for (RailIndex r : g.rails) {
      if (fleet_.transfer_rail(r).alive()) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) {
      // Park this rail's in-flight traffic in the retx queues (entries on
      // the other rails were parked when those rails died). With no rail
      // to elect onto the queues cannot drain, but crucially no retransmit
      // timer keeps ticking toward the retry limit while the fate of the
      // peer is undecided.
      for (auto& [seq, p] : g.sched.pending_pkts) {
        if (p.last_rail != rail || p.queued_retx) continue;
        if (p.timer_armed) {
          ctx_.rt.cancel(p.timer);
          p.timer_armed = false;
        }
        p.queued_retx = true;
        g.sched.retx_queue.push_back(seq);
      }
      for (auto& [key, p] : g.sched.pending_bulk) {
        if (p.last_rail != rail || p.queued_retx) continue;
        if (p.timer_armed) {
          ctx_.rt.cancel(p.timer);
          p.timer_armed = false;
        }
        p.queued_retx = true;
        g.sched.bulk_retx.push_back(key);
      }
      // The façade decides what "unreachable" means: under the peer
      // lifecycle it arms the death grace (a rail may yet revive);
      // otherwise it fails the gate immediately as before.
      engine_.peer_unreachable(g);
      continue;
    }

    // Unpin traffic the application pinned to the dead rail: delivery
    // beats placement once the rail is gone.
    for (OutChunk& chunk : g.sched.window) {
      if (chunk.pinned_rail == rail) chunk.pinned_rail = kAnyRail;
    }
    for (auto& [cookie, job] : g.sched.rdv_wait_cts) {
      if (job->pinned_rail == rail) job->pinned_rail = kAnyRail;
    }

    // Re-elect in-flight traffic that last rode the dead rail.
    for (auto& [seq, p] : g.sched.pending_pkts) {
      if (p.last_rail != rail || p.queued_retx) continue;
      if (p.timer_armed) {
        ctx_.rt.cancel(p.timer);
        p.timer_armed = false;
      }
      p.queued_retx = true;
      g.sched.retx_queue.push_back(seq);
    }
    for (auto& [key, p] : g.sched.pending_bulk) {
      if (p.last_rail != rail || p.queued_retx) continue;
      if (p.timer_armed) {
        ctx_.rt.cancel(p.timer);
        p.timer_armed = false;
      }
      p.queued_retx = true;
      g.sched.bulk_retx.push_back(key);
    }

    // Rendezvous jobs lose the rail from their grant; a job with no
    // usable rail left can never move its body, so the gate fails (the
    // receive side is stuck waiting on a posted sink otherwise).
    std::set<BulkJob*> jobs;
    for (BulkJob& job : g.sched.ready_bulk) jobs.insert(&job);
    for (auto& [key, p] : g.sched.pending_bulk) jobs.insert(p.job);
    bool gate_dead = false;
    for (BulkJob* job : jobs) {
      if (job->pinned_rail == rail) job->pinned_rail = kAnyRail;
      auto& jr = job->rails;
      jr.erase(
          std::remove(jr.begin(), jr.end(), static_cast<uint8_t>(rail)),
          jr.end());
      if (jr.empty()) {
        gate_dead = true;
        break;
      }
    }
    if (gate_dead) {
      engine_.fail_gate(g,
                        util::closed("no surviving rail for rendezvous body"));
    }
  }
  kick();
}

void ScheduleLayer::on_rail_revived(RailIndex rail) {
  // Hand the rail back to rendezvous jobs whose CTS granted it: the
  // receiver's sinks stayed posted through the blackout, so the grant is
  // still honoured. Election then rebalances onto it naturally.
  for (auto& gate_ptr : ctx_.gates) {
    Gate& g = *gate_ptr;
    if (g.failed || !g.has_rail(rail)) continue;
    std::set<BulkJob*> jobs;
    for (BulkJob& job : g.sched.ready_bulk) jobs.insert(&job);
    for (auto& [key, p] : g.sched.pending_bulk) jobs.insert(p.job);
    for (BulkJob* job : jobs) {
      if (job->allows_rail(rail)) continue;
      if (job->pinned_rail != kAnyRail && job->pinned_rail != rail) continue;
      const auto& granted = job->granted_rails;
      if (std::find(granted.begin(), granted.end(),
                    static_cast<uint8_t>(rail)) != granted.end()) {
        job->rails.push_back(static_cast<uint8_t>(rail));
      }
    }
  }
  kick();
}

// ---------------------------------------------------------------------------
// Teardown & drain
// ---------------------------------------------------------------------------

void ScheduleLayer::teardown_send(Gate& gate, const util::Status& status) {
  GateSched& s = gate.sched;
  if (s.ack_timer_armed) {
    ctx_.rt.cancel(s.ack_timer);
    s.ack_timer_armed = false;
  }
  if (s.credit_probe_armed) {
    ctx_.rt.cancel(s.credit_probe_timer);
    s.credit_probe_armed = false;
  }

  // Window chunks: owners learn the error; control chunks just vanish.
  while (!s.window.empty()) {
    OutChunk& chunk = s.window.pop_front();
    if (chunk.owner != nullptr) chunk.owner->complete(status);
    ctx_.chunk_pool.release(&chunk);
  }

  // Packets elected early for this gate on any rail.
  for (auto& rs : rails_) {
    if (rs.prebuilt && rs.prebuilt_gate == gate.id) {
      for (OutChunk* chunk : rs.prebuilt->chunks()) {
        if (chunk->owner != nullptr) chunk->owner->complete(status);
        ctx_.chunk_pool.release(chunk);
      }
      rs.prebuilt.reset();
    }
  }

  // In-flight reliable packets (null owners: chunks cancelled mid-flight).
  for (auto& [seq, p] : s.pending_pkts) {
    if (p.timer_armed) ctx_.rt.cancel(p.timer);
    for (SendRequest* owner : p.owners) {
      if (owner != nullptr) owner->complete(status);
    }
  }
  s.pending_pkts.clear();
  s.retx_queue.clear();

  // Rendezvous jobs in every stage of the protocol.
  std::set<BulkJob*> jobs;
  for (auto& [key, p] : s.pending_bulk) {
    if (p.timer_armed) ctx_.rt.cancel(p.timer);
    jobs.insert(p.job);
  }
  s.pending_bulk.clear();
  s.bulk_retx.clear();
  while (!s.ready_bulk.empty()) jobs.insert(&s.ready_bulk.pop_front());
  for (auto& [cookie, job] : s.rdv_wait_cts) jobs.insert(job);
  s.rdv_wait_cts.clear();
  for (BulkJob* job : jobs) {
    if (job->owner != nullptr) job->owner->complete(status);
    ctx_.bulk_pool.release(job);
  }
}

void ScheduleLayer::teardown_finish(Gate& gate) {
  gate.sched.recv_seen.clear();
  gate.sched.pending_bulk_acks.clear();
  gate.sched.cancel_wait_ack.clear();
}

void ScheduleLayer::release_prebuilt_chunks() {
  for (auto& rs : rails_) {
    // A packet elected early but never transmitted returns its chunks to
    // the pool (reaching here with one is already a usage error that the
    // request pools will flag; this keeps the diagnostics readable).
    if (rs.prebuilt) {
      for (OutChunk* chunk : rs.prebuilt->chunks()) {
        ctx_.chunk_pool.release(chunk);
      }
      rs.prebuilt.reset();
    }
  }
}

bool ScheduleLayer::flushed(const Gate& gate) const {
  const GateSched& s = gate.sched;
  if (!s.window.empty() || !s.ready_bulk.empty() || !s.rdv_wait_cts.empty()) {
    return false;
  }
  if (!s.pending_pkts.empty() || !s.pending_bulk.empty() ||
      !s.retx_queue.empty() || !s.bulk_retx.empty()) {
    return false;
  }
  if (s.ack_needed || !s.pending_bulk_acks.empty()) return false;
  return true;
}

bool ScheduleLayer::rails_flushed() const {
  for (const RailSched& rs : rails_) {
    if (rs.prebuilt) return false;  // elected early, never transmitted
  }
  return true;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

ScheduleLayer::GateCounts ScheduleLayer::gate_counts(const Gate& gate) const {
  return {gate.sched.window.size(), gate.sched.ready_bulk.size(),
          gate.sched.rdv_wait_cts.size(), gate.sched.pending_pkts.size(),
          gate.sched.pending_bulk.size()};
}

void ScheduleLayer::dump_gate_detail(const Gate& gate,
                                     std::ostream& out) const {
  const GateSched& s = gate.sched;
  if (ctx_.config.flow_control) {
    dumpf(out,
          "  credit: sent=%llu/%llu limit=%llu/%llu heard=%llu/%llu "
          "advertised=%llu/%llu stored=%zu stalled=%d\n",
          static_cast<unsigned long long>(s.eager_sent_bytes),
          static_cast<unsigned long long>(s.eager_sent_chunks),
          static_cast<unsigned long long>(s.credit_limit_bytes),
          static_cast<unsigned long long>(s.credit_limit_chunks),
          static_cast<unsigned long long>(s.eager_heard_bytes),
          static_cast<unsigned long long>(s.eager_heard_chunks),
          static_cast<unsigned long long>(s.advertised_limit_bytes),
          static_cast<unsigned long long>(s.advertised_limit_chunks),
          s.stored_bytes, s.credit_stalled ? 1 : 0);
    // Outstanding grant: what the peer may still send against the last
    // advertisement — the receiver-side exposure this gate represents.
    const uint64_t grant_bytes =
        s.advertised_limit_bytes > s.eager_heard_bytes
            ? s.advertised_limit_bytes - s.eager_heard_bytes
            : 0;
    const uint64_t grant_chunks =
        s.advertised_limit_chunks > s.eager_heard_chunks
            ? s.advertised_limit_chunks - s.eager_heard_chunks
            : 0;
    dumpf(out,
          "  grants: outstanding=%llu bytes / %llu chunks "
          "window_eager=%zu probe_armed=%d update_needed=%d\n",
          static_cast<unsigned long long>(grant_bytes),
          static_cast<unsigned long long>(grant_chunks), s.window_eager_bytes,
          s.credit_probe_armed ? 1 : 0, s.credit_update_needed ? 1 : 0);
  }
  if (ctx_.config.reliability &&
      (!s.pending_pkts.empty() || !s.pending_bulk.empty())) {
    // Retransmit state: how deep into backoff each kind of in-flight
    // traffic is, and how much of it is queued waiting for a rail.
    uint32_t pkt_retries = 0;
    double pkt_timeout = 0.0;
    size_t pkt_queued = 0;
    for (const auto& [seq, p] : s.pending_pkts) {
      pkt_retries = std::max(pkt_retries, p.retries);
      pkt_timeout = std::max(pkt_timeout, p.timeout_us);
      if (p.queued_retx) ++pkt_queued;
    }
    uint32_t bulk_retries = 0;
    double bulk_timeout = 0.0;
    size_t bulk_queued = 0;
    for (const auto& [key, p] : s.pending_bulk) {
      bulk_retries = std::max(bulk_retries, p.retries);
      bulk_timeout = std::max(bulk_timeout, p.timeout_us);
      if (p.queued_retx) ++bulk_queued;
    }
    dumpf(out,
          "  retx: pkts=%zu (queued=%zu retries<=%u timeout<=%.0fus) "
          "bulk=%zu (queued=%zu retries<=%u timeout<=%.0fus) floor=%u "
          "seen=%zu\n",
          s.pending_pkts.size(), pkt_queued, pkt_retries, pkt_timeout,
          s.pending_bulk.size(), bulk_queued, bulk_retries, bulk_timeout,
          s.recv_floor, s.recv_seen.size());
  }
}

void ScheduleLayer::check_gate(const Gate& gate,
                               std::vector<std::string>& out) const {
  using ULL = unsigned long long;
  const GateSched& s = gate.sched;

  // --- send window ----------------------------------------------------
  // Control chunks never carry an owner; payload chunks always do, and
  // a completed send can have nothing left in the window (its parts are
  // what completion counts down).
  uint64_t win_uncharged = 0;
  for (const OutChunk& c : s.window) {
    if (c.is_control()) {
      if (c.owner != nullptr) {
        addf(out, "gate %u: %s control chunk carries an owner", gate.id,
             chunk_kind_name(c.kind));
      }
      continue;
    }
    if (c.owner == nullptr) {
      addf(out, "gate %u: payload chunk (tag %llu seq %u) has no owner",
           gate.id, static_cast<ULL>(c.tag), c.seq);
    } else if (c.owner->done()) {
      addf(out,
           "gate %u: window chunk owned by a completed send "
           "(tag %llu seq %u)",
           gate.id, static_cast<ULL>(c.tag), c.seq);
    }
    if (!c.credit_charged) win_uncharged += c.payload.size();
  }

  // --- flow control ---------------------------------------------------
  if (ctx_.config.flow_control) {
    if (win_uncharged != s.window_eager_bytes) {
      addf(out,
           "gate %u: window_eager_bytes=%llu but the window holds %llu "
           "uncharged payload bytes (a charge was skipped or doubled)",
           gate.id, static_cast<ULL>(s.window_eager_bytes),
           static_cast<ULL>(win_uncharged));
    }
    if (s.eager_sent_bytes > s.credit_limit_bytes) {
      addf(out, "gate %u: charged %llu eager bytes past the limit %llu",
           gate.id, static_cast<ULL>(s.eager_sent_bytes),
           static_cast<ULL>(s.credit_limit_bytes));
    }
    if (s.eager_sent_chunks > s.credit_limit_chunks) {
      addf(out, "gate %u: charged %llu eager chunks past the limit %llu",
           gate.id, static_cast<ULL>(s.eager_sent_chunks),
           static_cast<ULL>(s.credit_limit_chunks));
    }
    if (s.eager_heard_bytes > s.advertised_limit_bytes) {
      addf(out,
           "gate %u: heard %llu eager bytes but only advertised %llu "
           "(peer sent uncharged traffic)",
           gate.id, static_cast<ULL>(s.eager_heard_bytes),
           static_cast<ULL>(s.advertised_limit_bytes));
    }
    if (s.eager_heard_chunks > s.advertised_limit_chunks) {
      addf(out,
           "gate %u: heard %llu eager chunks but only advertised %llu",
           gate.id, static_cast<ULL>(s.eager_heard_chunks),
           static_cast<ULL>(s.advertised_limit_chunks));
    }
    if (s.last_sent_limit_bytes > s.advertised_limit_bytes ||
        s.last_sent_limit_chunks > s.advertised_limit_chunks) {
      addf(out,
           "gate %u: a limit on the wire (%llu/%llu) exceeds the "
           "advertised limit (%llu/%llu) — adverts must be monotone",
           gate.id, static_cast<ULL>(s.last_sent_limit_bytes),
           static_cast<ULL>(s.last_sent_limit_chunks),
           static_cast<ULL>(s.advertised_limit_bytes),
           static_cast<ULL>(s.advertised_limit_chunks));
    }
  }

  // --- rendezvous send side --------------------------------------------
  for (const auto& [cookie, job] : s.rdv_wait_cts) {
    if (job == nullptr || job->cookie != cookie || job->gate != gate.id) {
      addf(out, "gate %u: corrupt parked rendezvous (cookie %llu)", gate.id,
           static_cast<ULL>(cookie));
      continue;
    }
    if (job->sent != 0 || job->acked != 0) {
      addf(out,
           "gate %u: rendezvous body (cookie %llu) moved before its CTS",
           gate.id, static_cast<ULL>(cookie));
    }
    if (job->owner == nullptr || job->owner->done()) {
      addf(out,
           "gate %u: parked rendezvous (cookie %llu) without a live "
           "owner",
           gate.id, static_cast<ULL>(cookie));
    }
  }
  for (const BulkJob& job : s.ready_bulk) {
    if (job.gate != gate.id) {
      addf(out, "gate %u: ready bulk job belongs to gate %u", gate.id,
           job.gate);
    }
    if (job.owner == nullptr || job.owner->done()) {
      addf(out, "gate %u: ready bulk job (cookie %llu) without a live "
           "owner",
           gate.id, static_cast<ULL>(job.cookie));
    }
    if (job.sent > job.body.size() || job.acked > job.sent) {
      addf(out,
           "gate %u: bulk job (cookie %llu) accounting sent=%zu "
           "acked=%zu body=%zu",
           gate.id, static_cast<ULL>(job.cookie), job.sent, job.acked,
           job.body.size());
    }
    if (job.all_sent()) {
      addf(out,
           "gate %u: fully-sent bulk job (cookie %llu) still on the "
           "ready list",
           gate.id, static_cast<ULL>(job.cookie));
    }
  }

  // --- reliability -----------------------------------------------------
  if (ctx_.config.reliability) {
    if (s.pending_pkts.size() > ctx_.config.reliability_window) {
      addf(out, "gate %u: %zu unacked packets exceed the window cap %zu",
           gate.id, s.pending_pkts.size(), ctx_.config.reliability_window);
    }
    for (const auto& [seq, p] : s.pending_pkts) {
      if (seq >= s.next_pkt_seq) {
        addf(out, "gate %u: pending packet seq %u beyond next seq %u",
             gate.id, seq, s.next_pkt_seq);
      }
      if (p.wire == nullptr || p.wire->view().empty()) {
        addf(out, "gate %u: pending packet seq %u has no wire image",
             gate.id, seq);
      }
      // Liveness: an unacked packet with neither a ticking timer nor a
      // place in the retransmit queue will never be recovered.
      if (!p.timer_armed && !p.queued_retx) {
        addf(out,
             "gate %u: pending packet seq %u neither timed nor queued "
             "for retransmit",
             gate.id, seq);
      }
      if (p.queued_retx &&
          std::find(s.retx_queue.begin(), s.retx_queue.end(), seq) ==
              s.retx_queue.end()) {
        addf(out,
             "gate %u: packet seq %u marked queued but absent from the "
             "retransmit queue",
             gate.id, seq);
      }
      for (const SendRequest* owner : p.owners) {
        if (owner != nullptr && owner->done()) {
          addf(out,
               "gate %u: pending packet seq %u owned by a completed "
               "send",
               gate.id, seq);
        }
      }
      for (const SprayFragRef& ref : p.spray_frags) {
        if (ref.owner_slot >= p.owners.size()) {
          addf(out,
               "gate %u: spray fragment (tag %llu frag %u) points past "
               "the owner table of packet seq %u",
               gate.id, static_cast<ULL>(ref.tag), ref.frag_seq, seq);
        } else if (!ref.reissued && p.owners[ref.owner_slot] != nullptr &&
                   p.owners[ref.owner_slot] != ref.owner) {
          addf(out,
               "gate %u: spray fragment (tag %llu frag %u) disagrees "
               "with owner slot %zu of packet seq %u",
               gate.id, static_cast<ULL>(ref.tag), ref.frag_seq,
               ref.owner_slot, seq);
        }
      }
    }
    for (const auto& [key, p] : s.pending_bulk) {
      if (p.job == nullptr) {
        addf(out, "gate %u: pending bulk slice (cookie %llu) has no job",
             gate.id, static_cast<ULL>(key.first));
        continue;
      }
      if (!p.timer_armed && !p.queued_retx) {
        addf(out,
             "gate %u: bulk slice (cookie %llu offset %zu) neither "
             "timed nor queued for retransmit",
             gate.id, static_cast<ULL>(key.first), key.second);
      }
      if (p.queued_retx &&
          std::find(s.bulk_retx.begin(), s.bulk_retx.end(), key) ==
              s.bulk_retx.end()) {
        addf(out,
             "gate %u: bulk slice (cookie %llu offset %zu) marked "
             "queued but absent from the retransmit queue",
             gate.id, static_cast<ULL>(key.first), key.second);
      }
      if (p.offset + p.len > p.job->body.size()) {
        addf(out,
             "gate %u: bulk slice (cookie %llu) extent %zu+%zu exceeds "
             "the body (%zu bytes)",
             gate.id, static_cast<ULL>(key.first), p.offset, p.len,
             p.job->body.size());
      }
      if (p.job->owner == nullptr || p.job->owner->done()) {
        addf(out,
             "gate %u: in-flight bulk slice (cookie %llu) without a "
             "live owner",
             gate.id, static_cast<ULL>(key.first));
      }
    }
    // The dedup set only keeps seqs the floor has not swallowed yet.
    if (!s.recv_seen.empty() && *s.recv_seen.begin() <= s.recv_floor) {
      addf(out,
           "gate %u: seq dedup set reaches down to %u at/below the "
           "floor %u",
           gate.id, *s.recv_seen.begin(), s.recv_floor);
    }
    // Tombstones stay bounded by the GC watermark: every surviving entry
    // was created less than a reliability window below the current floor
    // (rx_register reaps the rest whenever the floor advances).
    const auto check_tombs = [&](const char* what, const auto& tombs) {
      for (const auto& [key, born] : tombs) {
        // Unarmed cancel tombstones wait for the cancel-RTS ack and are
        // exempt from the watermark until then.
        if (born == kTombUnarmed) continue;
        if (born > s.recv_floor ||
            s.recv_floor - born > ctx_.config.reliability_window) {
          addf(out,
               "gate %u: %s tombstone (key %llu) born at floor %u "
               "outlived the watermark (floor now %u)",
               gate.id, what, static_cast<ULL>(key), born, s.recv_floor);
        }
      }
    };
    check_tombs("cancelled_rdv", s.cancelled_rdv);
    check_tombs("completed_bulk", s.completed_bulk);
  } else if (!s.pending_pkts.empty() || !s.pending_bulk.empty() ||
             !s.retx_queue.empty() || !s.bulk_retx.empty()) {
    addf(out, "gate %u: reliability state without the reliability layer",
         gate.id);
  }
}

}  // namespace nmad::core
