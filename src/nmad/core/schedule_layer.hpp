// ScheduleLayer: the optimizing/scheduling layer (paper §3.2).
//
// Owns everything between submission and the wire: the per-gate
// optimization window, the pluggable election Strategy, the rendezvous
// send pipeline, the reliability machinery (ack/retransmit windows,
// timers) and credit-based flow control. Whenever a transfer engine goes
// idle the layer runs a just-in-time election over the window and hands
// the synthesized packet to that engine; elections, packet builds, acks
// and retransmits are announced on the event bus.
//
// The layer sees its neighbours only through the seam interfaces: the
// transfer engines as ITransferFleet/ITransferRail, the façade as
// IEngine. It never includes another layer's header.
#pragma once

#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nmad/core/layer_ifaces.hpp"

namespace nmad::core {

class ScheduleLayer final : public ISchedule, public IPacketIssuer {
 public:
  ScheduleLayer(EngineContext& ctx, ITransferFleet& fleet, IEngine& engine,
                std::unique_ptr<Strategy> strategy);

  ScheduleLayer(const ScheduleLayer&) = delete;
  ScheduleLayer& operator=(const ScheduleLayer&) = delete;

  // Setup -------------------------------------------------------------------
  // One slot per fleet rail (round-robin cursor + prebuild parking spot);
  // called by the façade for every rail it adds.
  void add_rail_slot();
  // Connect-time credit seeding (flow control only): both endpoints start
  // from the configured initial grant.
  void init_gate(Gate& gate);

  [[nodiscard]] bool has_strategy() const { return strategy_ != nullptr; }
  [[nodiscard]] std::string_view strategy_name() const {
    return strategy_->name();
  }
  void set_strategy(std::unique_ptr<Strategy> strategy) {
    strategy_ = std::move(strategy);
  }

  // ISchedule ---------------------------------------------------------------
  void enqueue(Gate& gate, OutChunk* chunk) override;
  void submit_rdv(Gate& gate, SendRequest* req, Tag tag, SeqNum seq,
                  size_t logical_offset, util::ConstBytes block, size_t total,
                  const SendHints& hints) override;
  [[nodiscard]] bool credit_wants_rdv(const Gate& gate,
                                      size_t block_bytes) const override;
  void kick() override;
  [[nodiscard]] uint32_t recv_watermark(const Gate& gate) const override;
  void note_heard(Gate& gate, RailIndex rail) override;
  void note_eager_heard(Gate& gate, size_t payload_bytes) override;
  void queue_bulk_ack(Gate& gate, const BulkAck& ack) override;
  void note_bulk_completed(Gate& gate, uint64_t cookie) override;
  void rx_store_charge(Gate& gate, size_t bytes, size_t chunks) override;
  void rx_store_discharge(Gate& gate, size_t bytes, size_t chunks) override;
  [[nodiscard]] std::pair<size_t, size_t> store_gauge(
      const Gate& gate) const override;
  [[nodiscard]] bool cts_in_window(const Gate& gate,
                                   uint64_t cookie) const override;
  void remove_window_cts(Gate& gate, uint64_t cookie) override;

  // IPacketIssuer -----------------------------------------------------------
  void issue_standalone(Gate& gate, RailIndex rail,
                        std::shared_ptr<PacketBuilder> builder) override;

  // Packet-hub dispatch (the façade decodes, this layer owns the state) ----
  void on_cts(Gate& gate, const WireChunk& chunk);
  void on_ack(Gate& gate, const WireChunk& chunk);
  void on_credit(Gate& gate, const WireChunk& chunk);
  // Registers an incoming reliable packet seq; true if already heard.
  bool rx_register(Gate& gate, uint32_t seq);
  void schedule_ack(Gate& gate);
  // A retransmitted bulk slice landed after its sink completed: re-ack it.
  void on_bulk_orphan(Gate& gate, uint64_t cookie, size_t offset, size_t len);

  // Strategy SPI ------------------------------------------------------------
  // Whether the credit window admits electing `chunk` onto the wire now.
  // Control chunks, already-charged chunks and empty payloads always
  // pass. Denial records a stall and arms the liveness probe.
  [[nodiscard]] bool credit_admits(Gate& gate, const OutChunk& chunk);
  // Charges an elected chunk against the gate's credit (idempotent;
  // strategies call it when they take a payload chunk off the window).
  void charge_credit(Gate& gate, OutChunk& chunk);
  [[nodiscard]] const RailInfo& rail_info(RailIndex rail) const {
    return fleet_.transfer_rail(rail).info();
  }
  // Fault injection for the harness self-test: the next `n` charges no-op.
  void skip_next_credit_charge(uint32_t n) { skip_credit_charges_ += n; }

  // Cancellation ------------------------------------------------------------
  // Withdraws a pending send when every part is still reachable; see
  // Core::cancel for the full contract.
  bool cancel_send(Gate& gate, SendRequest* req, util::Status status);

  // Rail lifecycle ----------------------------------------------------------
  // Driven by the façade's subscription to kHealthTransition events:
  // re-homes prebuilt and in-flight traffic off a dead rail (failing
  // gates left with no usable rail), or hands a revived rail back to the
  // rendezvous jobs whose CTS granted it.
  void on_rail_dead(RailIndex rail);
  void on_rail_revived(RailIndex rail);
  // Microsecond failover (CoreConfig::spray): the moment a rail turns
  // *suspect*, sprayed fragments in flight on it are re-issued on the
  // surviving rails with a bumped epoch — without waiting for the rail to
  // be declared dead or any retransmit timer to fire. The original
  // packets stay in the unacked window (the receiver dedups/fences).
  void on_rail_suspect(RailIndex rail);
  // Gray-failure re-election (CoreConfig::adaptive): the moment a rail's
  // continuous score crosses into kDegraded — still alive, still
  // beaconing — its in-flight sprayed fragments are re-issued on
  // healthier rails exactly like the suspect failover, and the rail is
  // evicted from future stripe sets (refill_rail yields it) until the
  // score recovers.
  void on_rail_degraded(RailIndex rail);

  // Teardown (façade-orchestrated; see Core::teardown_gate) -----------------
  // Send side: timers, the window, prebuilt packets, the reliability
  // windows and the whole rendezvous send pipeline.
  void teardown_send(Gate& gate, const util::Status& status);
  // Receive-side scheduling residue: dedup set, deferred bulk acks.
  void teardown_finish(Gate& gate);
  // Returns every parked prebuilt packet's chunks to the pool (~Core).
  void release_prebuilt_chunks();

  // Drain -------------------------------------------------------------------
  [[nodiscard]] bool flushed(const Gate& gate) const;
  [[nodiscard]] bool rails_flushed() const;

  // Introspection -----------------------------------------------------------
  [[nodiscard]] size_t window_size(const Gate& gate) const {
    return gate.sched.window.size();
  }
  [[nodiscard]] bool has_prebuilt(RailIndex rail) const {
    return rails_[rail].prebuilt != nullptr;
  }
  struct GateCounts {
    size_t window = 0;
    size_t ready_bulk = 0;
    size_t rdv_wait_cts = 0;
    size_t pending_pkts = 0;
    size_t pending_bulk = 0;
  };
  [[nodiscard]] GateCounts gate_counts(const Gate& gate) const;
  // Credit / grants / retransmit detail lines of the engine dump.
  void dump_gate_detail(const Gate& gate, std::ostream& out) const;
  // Own-state invariants: window ownership and credit accounting, the
  // rendezvous send pipeline, reliability-window liveness.
  void check_gate(const Gate& gate, std::vector<std::string>& out) const;

 private:
  // Per-rail scheduling state (the rail itself lives in the transfer
  // layer): round-robin fairness cursor and the §3.2 prebuild parking.
  struct RailSched {
    size_t rr_cursor = 0;  // round-robin position over gates
    // Packet elected early under the prebuild policy, waiting for idle.
    std::shared_ptr<PacketBuilder> prebuilt;
    GateId prebuilt_gate = 0;
  };

  [[nodiscard]] bool reliable() const { return ctx_.config.reliability; }
  [[nodiscard]] bool flow_control() const { return ctx_.config.flow_control; }
  [[nodiscard]] bool adaptive() const { return ctx_.config.adaptive; }
  [[nodiscard]] Gate& gate_ref(GateId id) { return *ctx_.gates[id]; }

  // Whether `gate` reaches a rail other than `except` that is alive and
  // scoreably healthy (neither suspect nor degraded) — the question every
  // degraded-rail yield decision asks.
  [[nodiscard]] bool gate_has_healthy_rail(const Gate& gate,
                                           RailIndex except) const;
  // Shared body of the suspect/degraded failovers: re-issues every
  // in-flight sprayed fragment last sent on `rail` onto a surviving
  // rail, preferring scoreably healthy survivors over degraded ones.
  // Returns whether anything was re-issued.
  bool reissue_inflight_sprays(RailIndex rail, bool degraded_trigger);

  // Election ----------------------------------------------------------------
  void refill_rail(RailIndex rail);
  void maybe_prebuild(RailIndex rail);
  void issue_packet(Gate& gate, RailIndex rail,
                    std::shared_ptr<PacketBuilder> builder,
                    bool charge_election = true);
  void issue_bulk(Gate& gate, RailIndex rail, BulkJob* job, size_t bytes);
  // Spray path: cuts a CTS-granted body into kSprayFrag window chunks the
  // strategy stripes packet-by-packet across the gate's alive rails.
  void spray_job(Gate& gate, BulkJob* job);

  // Reliability -------------------------------------------------------------
  // The multiplicative retransmit-backoff growth for one timeout. With
  // CoreConfig::backoff_jitter a deterministic per-node draw spreads the
  // factor symmetrically around the configured value, as wide as
  // possible without ever dipping below 1.0 (decorrelated backoff with
  // the configured mean): peers whose timers fired in lockstep — the
  // thundering herd after a shared blackout — spread their retries
  // instead of colliding again.
  [[nodiscard]] double backoff_growth();
  // Reaps this layer's tombstones (cancelled_rdv, completed_bulk) whose
  // arming-time floor has fallen a full reliability window behind the
  // current receive floor; called when rx_register advances the floor.
  // cancelled_rdv entries are born unarmed (kTombUnarmed) and only start
  // aging once the packet carrying their cancel-RTS is acked — before
  // that the receiver may still grant a fresh-seq CTS that must find the
  // tombstone instead of tripping the unknown-cookie assert.
  void reap_sched_tombstones(Gate& gate);
  OutChunk* make_ack_chunk(Gate& gate);
  void commit_ack_chunk(Gate& gate, OutChunk* ack);
  void maybe_inject_ack(Gate& gate, PacketBuilder& builder);
  void on_ack_timer(GateId gate_id);
  void retire_packet(Gate& gate,
                     std::map<uint32_t, PendingPacket>::iterator it);
  void retire_bulk(Gate& gate, const BulkAck& ack);
  void arm_packet_timer(Gate& gate, uint32_t seq);
  void arm_bulk_timer(Gate& gate, const BulkKey& key);
  void on_packet_timeout(GateId gate_id, uint32_t seq);
  void on_bulk_timeout(GateId gate_id, BulkKey key);
  void retransmit_packet(Gate& gate, RailIndex rail, uint32_t seq);
  void retransmit_bulk(Gate& gate, RailIndex rail, const BulkKey& key);

  // Flow control ------------------------------------------------------------
  void note_credit_stall(Gate& gate);
  void on_credit_probe(GateId gate_id);
  // Recomputes the limits this receiver can advertise to `gate`'s peer
  // without the sum of all peers' admissible-but-unheard eager traffic
  // exceeding the free rx budget. Monotone: limits never retreat.
  void refresh_advert(Gate& gate);
  OutChunk* make_credit_chunk(Gate& gate);
  void maybe_inject_credit(Gate& gate, PacketBuilder& builder);

  // Cancellation ------------------------------------------------------------
  void handle_cancel_cts(Gate& gate, const WireChunk& chunk);
  void send_cancel_rts(Gate& gate, Tag tag, SeqNum seq, uint64_t cookie);
  void remove_window_rts(Gate& gate, uint64_t cookie);
  void drop_bulk_job(Gate& gate, BulkJob* job);

  EngineContext& ctx_;
  ITransferFleet& fleet_;
  IEngine& engine_;
  std::unique_ptr<Strategy> strategy_;
  std::vector<RailSched> rails_;
  uint64_t next_cookie_;
  uint64_t jitter_state_;  // xorshift state for decorrelated backoff
  uint32_t skip_credit_charges_ = 0;  // test hook: drop upcoming charges
};

}  // namespace nmad::core
