// DestLayout: maps the logical byte space of an incoming message onto
// receiver memory.
//
// A contiguous receive is the common case; derived-datatype receives
// (MAD-MPI indexed/vector types) map logical ranges onto scattered blocks.
// Large rendezvous blocks whose logical range is memory-contiguous are
// received zero-copy straight into their final destination — the mechanism
// behind Figure 4.
#pragma once

#include <cstdint>
#include <vector>

#include "util/buffer.hpp"

namespace nmad::core {

class DestLayout {
 public:
  struct Block {
    size_t logical_offset = 0;  // offset in the message byte stream
    util::MutableBytes memory;  // destination bytes
  };

  DestLayout() = default;

  static DestLayout contiguous(util::MutableBytes memory);

  // Blocks must be given in increasing logical offset with no overlap;
  // logical offsets must be dense (block i+1 starts where block i ends).
  static DestLayout scattered(std::vector<Block> blocks);

  // Total logical bytes this layout can accept.
  [[nodiscard]] size_t total() const { return total_; }

  [[nodiscard]] bool empty() const { return total_ == 0; }

  // Copies `data` into the memory backing logical range
  // [offset, offset+data.size()); the range must fit.
  void scatter(size_t offset, util::ConstBytes data) const;

  // Returns the memory span backing logical range [offset, offset+len) if
  // that range is contiguous in memory, else an empty span. Used to decide
  // whether a rendezvous block can land zero-copy.
  [[nodiscard]] util::MutableBytes contiguous_region(size_t offset,
                                                     size_t len) const;

  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

 private:
  std::vector<Block> blocks_;  // sorted by logical_offset, dense
  size_t total_ = 0;
};

// Source-side mirror: a logical byte stream gathered from scattered
// source blocks. Used by the pack API and MAD-MPI datatype sends.
class SourceLayout {
 public:
  struct Block {
    size_t logical_offset = 0;
    util::ConstBytes memory;
  };

  static SourceLayout contiguous(util::ConstBytes memory);
  static SourceLayout scattered(std::vector<Block> blocks);

  [[nodiscard]] size_t total() const { return total_; }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

 private:
  std::vector<Block> blocks_;
  size_t total_ = 0;
};

}  // namespace nmad::core
