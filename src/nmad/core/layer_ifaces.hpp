// The seams between the paper's three layers.
//
// CollectLayer, ScheduleLayer and TransferEngine compile as separate TUs
// that never include each other's headers; everything a layer needs from
// a neighbour goes through one of the small interfaces here (plus the
// event bus for notifications). The Core façade implements IEngine and
// ITransferFleet and wires the concrete layers together.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "nmad/core/config.hpp"
#include "nmad/core/events.hpp"
#include "nmad/core/gate.hpp"
#include "nmad/core/packet_builder.hpp"
#include "nmad/core/strategy.hpp"
#include "nmad/drivers/driver.hpp"
#include "nmad/runtime/runtime.hpp"
#include "util/pool.hpp"
#include "util/status.hpp"

namespace nmad::core {

// Shared plumbing every layer receives by reference at construction: the
// runtime (time, timers, cpu charges — simulated or wall-clock), the
// config and stats blocks, the event bus, the object pools, and the gate
// table. Holding these in one context keeps the layer constructors flat
// and makes the sharing explicit — no layer owns any of it.
struct EngineContext {
  runtime::IRuntime& rt;
  CoreConfig& config;
  CoreStats& stats;
  EventBus& bus;
  util::ObjectPool<OutChunk>& chunk_pool;
  util::ObjectPool<BulkJob>& bulk_pool;
  util::ObjectPool<SendRequest>& send_pool;
  util::ObjectPool<RecvRequest>& recv_pool;
  std::vector<std::unique_ptr<Gate>>& gates;
};

// Engine-level services only the façade can provide: gate failure (which
// tears down state in *every* layer), request deadline bookkeeping, and
// the per-tick invariant hook.
class IEngine {
 public:
  virtual ~IEngine() = default;
  virtual void fail_gate(Gate& gate, const util::Status& status) = 0;
  // The last alive rail to this gate's peer just died. Under
  // peer_lifecycle the façade arms the death-grace timer (declaring the
  // peer dead if no rail revives in time); otherwise it fails the gate
  // immediately, the pre-lifecycle behavior.
  virtual void peer_unreachable(Gate& gate) = 0;
  virtual void cancel_deadline(Request* req) = 0;
  virtual void validate_tick() = 0;
};

// One rail of the transfer layer, as seen by the scheduling and collect
// layers: capability info, liveness, and the tx/rx pump entry points.
class ITransferRail {
 public:
  virtual ~ITransferRail() = default;

  [[nodiscard]] virtual const RailInfo& info() const = 0;
  [[nodiscard]] virtual bool alive() const = 0;
  // Alive but under suspicion (health silence past suspect_after_us). The
  // spray failover path avoids suspect rails when picking a survivor.
  [[nodiscard]] virtual bool suspect() const = 0;
  // Alive and beaconing, but the continuous score breached the gray-
  // failure thresholds (CoreConfig::adaptive): election routes around it.
  [[nodiscard]] virtual bool degraded() const = 0;
  [[nodiscard]] virtual bool tx_idle() const = 0;

  // Continuous score components, accumulated by the transfer layer from
  // delivery/timeout outcomes and probe RTTs. The schedule layer reads
  // these to elect spray/split/single per message and to weight stripe
  // sets — the closed loop of the adaptive policy.
  [[nodiscard]] virtual double score_loss() const = 0;        // EWMA [0,1]
  [[nodiscard]] virtual double score_latency_p99() const = 0;  // µs, 0=none
  [[nodiscard]] virtual double score_throughput() const = 0;   // bytes/µs

  virtual util::Status send_packet(const Gate& gate,
                                   const util::SegmentVec& segments,
                                   drivers::Driver::CompletionFn on_tx_done) = 0;
  virtual util::Status send_bulk(const Gate& gate, uint64_t cookie,
                                 size_t offset,
                                 const util::SegmentVec& segments,
                                 drivers::Driver::CompletionFn on_tx_done) = 0;
  virtual util::Status post_bulk_recv(drivers::BulkSink* sink) = 0;
  virtual void cancel_bulk_recv(uint64_t cookie) = 0;

  // An ack for traffic last sent on this rail arrived: the rail
  // demonstrably delivers, reset its timeout streak. `latency_us` is the
  // issue-to-ack delivery latency of the retired entry (< 0 when the
  // issue time is unknown), feeding the rail's latency digest.
  virtual void note_delivery(double latency_us = -1.0) = 0;
  // A retransmit timer fired for traffic last sent on this rail; enough
  // consecutive ones declare the rail dead.
  virtual void note_timeout() = 0;
  // Appends a plain beacon to an outgoing packet when this rail's beacon
  // to `gate` is due (at most one per heartbeat interval per peer).
  virtual void maybe_inject_heartbeat(Gate& gate, PacketBuilder& builder) = 0;
};

// The set of transfer engines, as handed to the scheduling layer.
class ITransferFleet {
 public:
  virtual ~ITransferFleet() = default;
  [[nodiscard]] virtual size_t rail_count() const = 0;
  [[nodiscard]] virtual ITransferRail& transfer_rail(RailIndex rail) = 0;
  [[nodiscard]] virtual const ITransferRail& transfer_rail(
      RailIndex rail) const = 0;
};

// The scheduling layer, as seen by the collect layer: chunk submission,
// rendezvous initiation, and the receive-side services (credit gauges,
// deferred acks) that live with the ack machinery.
class ISchedule {
 public:
  virtual ~ISchedule() = default;

  // Appends `chunk` to the gate's optimization window (charging the
  // modelled submit cost) — the collect→schedule handoff of the paper.
  virtual void enqueue(Gate& gate, OutChunk* chunk) = 0;
  // Starts a rendezvous send for one large block: allocates the cookie,
  // parks the job until CTS, and windows the RTS.
  virtual void submit_rdv(Gate& gate, SendRequest* req, Tag tag, SeqNum seq,
                          size_t logical_offset, util::ConstBytes block,
                          size_t total, const SendHints& hints) = 0;
  // Whether the credit window wants an eager block of `block_bytes`
  // demoted to rendezvous (it would overshoot the peer's limit).
  [[nodiscard]] virtual bool credit_wants_rdv(const Gate& gate,
                                              size_t block_bytes) const = 0;
  // Runs a scheduling pass over every rail (election, prebuild).
  virtual void kick() = 0;

  // Receive-side services.
  // The reliability receive floor, exposed as the tombstone-GC watermark:
  // any packet seq a reliability window below it can only be a suppressed
  // duplicate, so tombstones created that long ago are reapable. The
  // collect layer reads this through the seam (it may not touch
  // Gate::sched) to GC its own cancelled_recv / spray_done maps.
  [[nodiscard]] virtual uint32_t recv_watermark(const Gate& gate) const = 0;
  virtual void note_heard(Gate& gate, RailIndex rail) = 0;
  virtual void note_eager_heard(Gate& gate, size_t payload_bytes) = 0;
  virtual void queue_bulk_ack(Gate& gate, const BulkAck& ack) = 0;
  virtual void note_bulk_completed(Gate& gate, uint64_t cookie) = 0;
  virtual void rx_store_charge(Gate& gate, size_t bytes, size_t chunks) = 0;
  virtual void rx_store_discharge(Gate& gate, size_t bytes,
                                  size_t chunks) = 0;
  [[nodiscard]] virtual std::pair<size_t, size_t> store_gauge(
      const Gate& gate) const = 0;

  // Cancellation support: whether the CTS for `cookie` is still sitting
  // unsent in the window, and its removal (a receive cancels cleanly only
  // while its grant has not left the node, unless reliability can recall
  // it).
  [[nodiscard]] virtual bool cts_in_window(const Gate& gate,
                                           uint64_t cookie) const = 0;
  virtual void remove_window_cts(Gate& gate, uint64_t cookie) = 0;
};

// Packet issue service the transfer layer needs back from the scheduler:
// standalone single-chunk control packets (heartbeats, probes, replies)
// still flow through the scheduler's issue path so they pick up
// piggybacked acks/credits and reliability bookkeeping uniformly.
class IPacketIssuer {
 public:
  virtual ~IPacketIssuer() = default;
  virtual void issue_standalone(Gate& gate, RailIndex rail,
                                std::shared_ptr<PacketBuilder> builder) = 0;
};

}  // namespace nmad::core
