// PacketBuilder: assembles one physical track-0 packet from window chunks.
//
// The builder accumulates chunks under byte/segment limits, then finalizes
// into a gather list: [packet header + chunk0 header][chunk0 payload]
// [chunk1 header][chunk1 payload]... Headers live in one stable buffer so
// payload segments stay zero-copy views of application memory.
#pragma once

#include <vector>

#include "nmad/core/chunk.hpp"
#include "util/buffer.hpp"

namespace nmad::core {

class PacketBuilder {
 public:
  // `max_bytes` bounds the total wire size; `max_segments` bounds the
  // gather list length (0 = unlimited, the driver will bounce-copy).
  // With `checksum`, a 4-byte FNV-1a of the chunk region trails the
  // packet and the header flag advertises it. With `reserve_seq`, room
  // for a reliability sequence number is budgeted up front; whether the
  // packet actually carries one is decided at issue time via
  // mark_reliable() (pure-ack packets ship unreliable).
  PacketBuilder(size_t max_bytes, size_t max_segments,
                bool checksum = false, bool reserve_seq = false)
      : max_bytes_(max_bytes),
        max_segments_(max_segments),
        checksum_(checksum) {
    if (checksum_) {
      wire_bytes_ += kChecksumTrailerBytes;
      ++segment_estimate_;
    }
    if (reserve_seq) wire_bytes_ += kPacketSeqBytes;
  }

  // True if `chunk` would still fit.
  [[nodiscard]] bool fits(const OutChunk& chunk) const;

  // Adds a chunk (caller must have checked fits(), except for the first
  // chunk which is always accepted so oversized-but-unavoidable packets
  // can't deadlock). Does not unlink the chunk from any list.
  void add(OutChunk* chunk);

  [[nodiscard]] size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] size_t wire_bytes() const { return wire_bytes_; }
  [[nodiscard]] bool empty() const { return chunks_.empty(); }
  [[nodiscard]] const std::vector<OutChunk*>& chunks() const {
    return chunks_;
  }

  // Stamps the packet with a reliability sequence number; the finalized
  // header carries kPacketFlagReliable. Must precede finalize().
  void mark_reliable(uint32_t packet_seq) {
    NMAD_ASSERT(!finalized_);
    reliable_ = true;
    packet_seq_ = packet_seq;
  }
  [[nodiscard]] bool reliable() const { return reliable_; }

  // Encodes all headers and produces the gather list. Must be called once,
  // after which the builder must stay alive until the driver's tx-done
  // (the SegmentVec references its header buffer).
  const util::SegmentVec& finalize();

 private:
  size_t max_bytes_;
  size_t max_segments_;
  bool checksum_;
  bool reliable_ = false;
  uint32_t packet_seq_ = 0;
  std::vector<OutChunk*> chunks_;
  size_t wire_bytes_ = kPacketHeaderBytes;
  size_t segment_estimate_ = 1;  // leading header segment
  util::ByteBuffer headers_;
  util::ByteBuffer trailer_;
  util::SegmentVec segments_;
  bool finalized_ = false;
};

}  // namespace nmad::core
