#include "nmad/core/transfer_engine.hpp"

#include <algorithm>
#include <ostream>

#include "nmad/core/format_util.hpp"
#include "util/logging.hpp"

// ---------------------------------------------------------------------------
// Rail health lifecycle (CoreConfig::rail_health)
//
// Liveness is active and symmetric: every engine beacons on every rail (at
// most one kHeartbeat per interval per peer, piggybacked when traffic
// flows), and anything *heard* on a rail refreshes it — so a healthy but
// idle fabric stays quiet-but-alive, and detection of a dead link no
// longer depends on in-flight data timing out. Revival is epoch-fenced: a
// dead rail is probed, the peer echoes the probe's epoch, and only replies
// carrying the rail's current epoch advance probation. Any straggler from
// an earlier life — a delayed reply, a beacon inside a retransmitted wire
// image — is fenced and dropped.
// ---------------------------------------------------------------------------

namespace nmad::core {

const char* rail_health_name(RailHealth health) {
  switch (health) {
    case RailHealth::kAlive: return "alive";
    case RailHealth::kSuspect: return "suspect";
    case RailHealth::kDead: return "dead";
    case RailHealth::kProbation: return "probation";
    case RailHealth::kDegraded: return "degraded";
  }
  return "?";
}

TransferEngine::TransferEngine(EngineContext& ctx, RailIndex index,
                               std::unique_ptr<drivers::Driver> driver,
                               RailInfo info)
    : ctx_(ctx), index_(index), driver_(std::move(driver)), info_(info) {
  // Track-1 deposits bypass the packet hub, yet a rail streaming one long
  // rendezvous body is the opposite of dead: count every bulk arrival as
  // liveness so the monitor does not kill a saturated rail mid-transfer.
  driver_->set_bulk_rx_handler([this](drivers::PeerAddr) {
    if (!health_on()) return;
    refresh_liveness();
  });
}

void TransferEngine::install_rx(RxSink sink) {
  driver_->set_rx_handler(
      [this, sink = std::move(sink)](drivers::RxPacket&& packet) {
        if (health_on()) refresh_liveness();
        sink(index_, std::move(packet));
      });
}

void TransferEngine::install_orphan(drivers::Driver::BulkOrphanHandler sink) {
  driver_->set_bulk_orphan_handler(std::move(sink));
}

void TransferEngine::refresh_liveness() {
  last_rx_us_ = ctx_.rt.now_us();
  // kDegraded is deliberately NOT cleared here: the degraded state is
  // score-driven (the rail is heard just fine — it drops or delays what
  // it carries), so only a sustained clean score in update_degraded()
  // may lift it.
  if (health_ == RailHealth::kSuspect) set_health(RailHealth::kAlive);
}

util::Status TransferEngine::send_packet(
    const Gate& gate, const util::SegmentVec& segments,
    drivers::Driver::CompletionFn on_tx_done) {
  ctx_.bus.publish({.kind = EventKind::kWireTx,
                    .gate = gate.id,
                    .rail = index_,
                    .a = segments.total_bytes(),
                    .b = 0});
  win_tx_bytes_ += segments.total_bytes();
  return driver_->send_packet(gate.peer, segments, std::move(on_tx_done));
}

util::Status TransferEngine::send_bulk(
    const Gate& gate, uint64_t cookie, size_t offset,
    const util::SegmentVec& segments,
    drivers::Driver::CompletionFn on_tx_done) {
  ctx_.bus.publish({.kind = EventKind::kWireTx,
                    .gate = gate.id,
                    .rail = index_,
                    .a = segments.total_bytes(),
                    .b = 1});
  win_tx_bytes_ += segments.total_bytes();
  return driver_->send_bulk(gate.peer, cookie, offset, segments,
                            std::move(on_tx_done));
}

util::Status TransferEngine::post_bulk_recv(drivers::BulkSink* sink) {
  return driver_->post_bulk_recv(sink);
}

void TransferEngine::cancel_bulk_recv(uint64_t cookie) {
  driver_->cancel_bulk_recv(cookie);
}

void TransferEngine::note_delivery(double latency_us) {
  consec_timeouts_ = 0;
  if (!adaptive_on()) return;
  const double a = ctx_.config.score_loss_alpha;
  loss_ewma_ *= 1.0 - a;  // a successful delivery pulls the estimate down
  if (latency_us >= 0.0) {
    delivery_latency_.add(latency_us);
    lat_ewma_us_ = lat_ewma_us_ == 0.0
                       ? latency_us
                       : (1.0 - a) * lat_ewma_us_ + a * latency_us;
  }
  update_degraded();
}

void TransferEngine::note_timeout() {
  if (adaptive_on() && alive_) {
    const double a = ctx_.config.score_loss_alpha;
    loss_ewma_ = (1.0 - a) * loss_ewma_ + a;  // a loss pulls it up
    update_degraded();
  }
  if (ctx_.config.rail_dead_after == 0) return;
  if (!alive_) return;
  if (++consec_timeouts_ >= ctx_.config.rail_dead_after) kill();
}

void TransferEngine::update_degraded() {
  if (!adaptive_on() || !health_on() || !alive_) return;
  const CoreConfig& cfg = ctx_.config;
  const double now = ctx_.rt.now_us();
  const bool lat_on = cfg.degraded_latency_enter_us > 0.0;
  const double lat_exit = cfg.degraded_latency_exit_us > 0.0
                              ? cfg.degraded_latency_exit_us
                              : cfg.degraded_latency_enter_us;
  const bool breach =
      loss_ewma_ >= cfg.degraded_loss_enter ||
      (lat_on && lat_ewma_us_ >= cfg.degraded_latency_enter_us);
  const bool clean = loss_ewma_ <= cfg.degraded_loss_exit &&
                     (!lat_on || lat_ewma_us_ <= lat_exit);

  if (health_ == RailHealth::kDegraded) {
    // Exit needs the minimum dwell (no-flap), then a sustained clean
    // reading below the *exit* thresholds — the hysteresis band.
    if (clean) {
      if (clean_since_us_ < 0.0) clean_since_us_ = now;
      if (now - degraded_at_us_ >= cfg.degraded_dwell_us &&
          now - clean_since_us_ >= cfg.degraded_sustain_us) {
        clean_since_us_ = -1.0;
        breach_since_us_ = -1.0;
        ++ctx_.stats.rails_recovered;
        NMAD_LOG_WARN("nmad: node %u clears rail %u (%s) from degraded",
                      ctx_.rt.local_id(), static_cast<unsigned>(index_),
                      driver_->caps().name.c_str());
        set_health(RailHealth::kAlive);
      }
    } else {
      clean_since_us_ = -1.0;
    }
    return;
  }
  // Suspect outranks degraded: a rail that has gone silent is handled by
  // the liveness machine; the score takes over again once it is heard.
  if (health_ != RailHealth::kAlive) return;
  if (breach) {
    if (breach_since_us_ < 0.0) breach_since_us_ = now;
    if (now - breach_since_us_ >= cfg.degraded_sustain_us) {
      breach_since_us_ = -1.0;
      clean_since_us_ = -1.0;
      degraded_at_us_ = now;
      ++degraded_entries_;
      ++ctx_.stats.rails_degraded;
      NMAD_LOG_WARN(
          "nmad: node %u marks rail %u (%s) degraded (loss=%.4f lat=%.1fus)",
          ctx_.rt.local_id(), static_cast<unsigned>(index_),
          driver_->caps().name.c_str(), loss_ewma_, lat_ewma_us_);
      // The transition is the closed loop's trigger: the schedule layer's
      // subscription re-elects in-flight sprayed fragments off this rail
      // before this returns (bus delivery is synchronous).
      set_health(RailHealth::kDegraded);
    }
  } else {
    breach_since_us_ = -1.0;
  }
}

void TransferEngine::set_health(RailHealth next) {
  if (health_ == next) return;
  const RailHealth prev = health_;
  health_ = next;
  ctx_.bus.publish({.kind = EventKind::kHealthTransition,
                    .rail = index_,
                    .seq = epoch_,
                    .a = static_cast<uint64_t>(prev),
                    .b = static_cast<uint64_t>(next)});
}

void TransferEngine::kill() {
  if (!alive_) return;
  alive_ = false;
  // A new epoch fences this rail's earlier life: probe replies and
  // beacons carrying the old value no longer count toward revival.
  ++epoch_;
  probation_hits_ = 0;
  last_probe_us_ = -1.0e18;  // probe at the very next health tick
  rtt_probe_pending_ = false;
  breach_since_us_ = -1.0;
  clean_since_us_ = -1.0;
  ++ctx_.stats.rails_failed;
  NMAD_LOG_WARN("nmad: node %u declares rail %u (%s) dead (epoch %u)",
                ctx_.rt.local_id(), static_cast<unsigned>(index_),
                driver_->caps().name.c_str(), epoch_);
  // The health-transition event is the rail's obituary on the bus: the
  // scheduling layer's subscription re-homes prebuilt packets and
  // in-flight traffic before this returns (delivery is synchronous).
  set_health(RailHealth::kDead);
}

void TransferEngine::revive() {
  if (alive_) return;
  alive_ = true;
  consec_timeouts_ = 0;
  probation_hits_ = 0;
  last_rx_us_ = ctx_.rt.now_us();
  // A revived rail starts its new life with a clean score: the losses
  // that killed it belong to the old epoch.
  loss_ewma_ = 0.0;
  lat_ewma_us_ = 0.0;
  breach_since_us_ = -1.0;
  clean_since_us_ = -1.0;
  ++ctx_.stats.rails_revived;
  NMAD_LOG_WARN("nmad: node %u revives rail %u (%s) at epoch %u",
                ctx_.rt.local_id(), static_cast<unsigned>(index_),
                driver_->caps().name.c_str(), epoch_);
  // The scheduling layer's subscription hands the rail back to rendezvous
  // jobs whose CTS granted it, then kicks an election pass.
  set_health(RailHealth::kAlive);
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

double& TransferEngine::hb_tx_slot(GateId id) {
  if (hb_tx_us_.size() <= id) {
    hb_tx_us_.resize(std::max(ctx_.gates.size(), size_t{id} + 1), -1.0e18);
  }
  return hb_tx_us_[id];
}

OutChunk* TransferEngine::make_heartbeat_chunk(const Gate& gate,
                                               uint8_t flags,
                                               uint32_t epoch) {
  OutChunk* hb = ctx_.chunk_pool.acquire();
  hb->kind = ChunkKind::kHeartbeat;
  hb->flags = flags;
  // The gate's unwind generation rides the otherwise-unused tag field:
  // together with the incarnation it lets a peer-dead gate prove to the
  // other side that this side unwound too (the rejoin fence).
  hb->tag = gate.gate_gen;
  hb->seq = epoch;  // the rail epoch rides the seq field
  // The node incarnation rides alongside: every beacon/probe/reply
  // announces which life of this node it belongs to, so a peer can fence
  // stragglers from before a crash (peer lifecycle).
  hb->epoch = ctx_.rt.incarnation();
  hb->prio = Priority::kHigh;
  hb->owner = nullptr;
  return hb;
}

void TransferEngine::maybe_inject_heartbeat(Gate& gate,
                                            PacketBuilder& builder) {
  if (!health_on()) return;
  double& last = hb_tx_slot(gate.id);
  if (ctx_.rt.now_us() - last < ctx_.config.heartbeat_interval_us) return;
  OutChunk* hb = make_heartbeat_chunk(gate, kFlagNone, epoch_);
  if (!builder.fits(*hb)) {
    ctx_.chunk_pool.release(hb);
    return;
  }
  builder.add(hb);
  last = ctx_.rt.now_us();
  ++ctx_.stats.heartbeats_sent;
}

void TransferEngine::send_standalone_heartbeat(Gate& gate, uint8_t flags,
                                               uint32_t epoch) {
  auto builder = std::make_shared<PacketBuilder>(
      std::min(gate.max_packet, info_.max_packet_bytes),
      info_.gather ? info_.max_gather_segments : 0, ctx_.config.wire_checksum,
      /*reserve_seq=*/true);
  builder->add(make_heartbeat_chunk(gate, flags, epoch));
  // Refresh the beacon slot before the issue path, which would otherwise
  // piggyback a second (now redundant) plain beacon onto this packet.
  hb_tx_slot(gate.id) = ctx_.rt.now_us();
  if ((flags & kFlagProbe) != 0) {
    ++ctx_.stats.probes_sent;
  } else if ((flags & kFlagReply) != 0) {
    ++ctx_.stats.probe_replies_sent;
  } else {
    ++ctx_.stats.heartbeats_sent;
  }
  issuer_->issue_standalone(gate, index_, std::move(builder));
}

void TransferEngine::start_monitor(double now) {
  last_rx_us_ = now;  // silence is counted from connect, not time zero
  last_tp_tick_us_ = now;
  health_timer_armed_ = true;
  health_timer_ = ctx_.rt.schedule_after(ctx_.config.heartbeat_interval_us,
                                   [this]() { on_health_tick(); });
}

void TransferEngine::stop_monitor() {
  if (health_timer_armed_) {
    ctx_.rt.cancel(health_timer_);
    health_timer_armed_ = false;
  }
}

void TransferEngine::on_health_tick() {
  health_timer_armed_ = false;
  const double now = ctx_.rt.now_us();

  if (adaptive_on()) {
    // Roll the throughput window: EWMA of per-tick wire-tx bytes over
    // elapsed virtual time, in bytes/µs.
    const double dt = now - last_tp_tick_us_;
    if (dt > 0.0) {
      const double inst = static_cast<double>(win_tx_bytes_) / dt;
      tp_est_ = tp_est_ == 0.0 ? inst : 0.7 * tp_est_ + 0.3 * inst;
    }
    win_tx_bytes_ = 0;
    last_tp_tick_us_ = now;
    // Time-driven re-evaluation: sustain/dwell horizons must pass even
    // when no new sample arrives to trigger the update.
    update_degraded();
  }

  if (alive_) {
    if (now - last_rx_us_ >= ctx_.config.dead_after_us) {
      // Sustained silence despite our beacons provoking acks: the link is
      // gone. kill() re-elects its in-flight traffic (via the bus) and
      // bumps the epoch; the dead branch below starts probing for revival.
      kill();
    } else {
      if (now - last_rx_us_ >= ctx_.config.suspect_after_us) {
        // Silence outranks the score: a degraded rail that stops being
        // heard is treated like any other suspect (its fragments are
        // re-issued); if it is heard again while still breaching, the
        // score machine re-enters degraded after the sustain window.
        if (health_ == RailHealth::kAlive ||
            health_ == RailHealth::kDegraded) {
          set_health(RailHealth::kSuspect);
          ++ctx_.stats.rails_suspected;
        }
      }
      // Alive-rail RTT probing (adaptive scoring): plain beacons refresh
      // the peer's rx-liveness but are never answered, so an idle rail
      // would accumulate no latency samples at all. A periodic probe is
      // echoed back with our epoch, and the reply's RTT feeds the
      // latency digest — see handle_heartbeat. The probe runs BEFORE
      // beacon duty and doubles as this tick's beacon (it refreshes the
      // gate's beacon slot and the peer's rx-liveness like any other
      // standalone heartbeat): on a fully idle rail a beacon is due
      // every tick, and a beacon sent first would leave tx busy and
      // starve the probe forever.
      if (adaptive_on() && driver_->tx_idle() &&
          now - last_probe_us_ >= ctx_.config.probe_interval_us) {
        for (auto& gate_ptr : ctx_.gates) {
          Gate& g = *gate_ptr;
          // Peer-dead gates keep beaconing/probing: the restarted peer's
          // fresh-incarnation heartbeat is the rejoin signal.
          if ((g.failed && !g.peer_dead) || !g.has_rail(index_)) continue;
          last_probe_us_ = now;
          rtt_probe_pending_ = true;
          send_standalone_heartbeat(g, kFlagProbe, epoch_);
          break;
        }
      }
      // Beacon duty: one standalone heartbeat per tick, to the peer that
      // has waited longest (piggybacking covers the rest when traffic
      // flows). One per tick keeps the NIC contention negligible; the
      // suspect/dead thresholds leave room for the rotation.
      if (driver_->tx_idle()) {
        Gate* stalest = nullptr;
        double stalest_at = 0.0;
        for (auto& gate_ptr : ctx_.gates) {
          Gate& g = *gate_ptr;
          if ((g.failed && !g.peer_dead) || !g.has_rail(index_)) continue;
          const double at = hb_tx_slot(g.id);
          if (stalest == nullptr || at < stalest_at) {
            stalest = &g;
            stalest_at = at;
          }
        }
        if (stalest != nullptr &&
            now - stalest_at >= ctx_.config.heartbeat_interval_us) {
          send_standalone_heartbeat(*stalest, kFlagNone, epoch_);
        }
      }
    }
  } else {
    if (health_ == RailHealth::kProbation &&
        now - last_fresh_reply_us_ > 2.0 * ctx_.config.probe_interval_us) {
      // Replies dried up mid-probation: back to dead under a new epoch,
      // so stragglers from the aborted attempt cannot count again.
      set_health(RailHealth::kDead);
      ++epoch_;
      probation_hits_ = 0;
      ++ctx_.stats.probation_demotions;
    }
    if (now - last_probe_us_ >= ctx_.config.probe_interval_us &&
        driver_->tx_idle()) {
      last_probe_us_ = now;
      // Any peer's reply is proof the local link works; probe the first
      // live gate on the rail (peer-dead gates count — reviving the rail
      // is the first leg of the rejoin handshake).
      for (auto& gate_ptr : ctx_.gates) {
        Gate& g = *gate_ptr;
        if ((g.failed && !g.peer_dead) || !g.has_rail(index_)) continue;
        send_standalone_heartbeat(g, kFlagProbe, epoch_);
        break;
      }
    }
  }

  health_timer_armed_ = true;
  health_timer_ = ctx_.rt.schedule_after(ctx_.config.heartbeat_interval_us,
                                   [this]() { on_health_tick(); });
}

void TransferEngine::handle_heartbeat(Gate& gate, const WireChunk& chunk) {
  if ((chunk.flags & kFlagProbe) != 0) {
    // The probe reached us, which is itself proof the link carries
    // traffic; echo its epoch back so the prober can fence replies that
    // straddle a further death. Replying is best-effort — the prober
    // retries on its own schedule.
    if ((!gate.failed || gate.peer_dead) && driver_->tx_idle()) {
      send_standalone_heartbeat(gate, kFlagReply, chunk.seq);
    }
    return;
  }
  if ((chunk.flags & kFlagReply) != 0) {
    if (alive_) {
      // A reply while alive is the echo of an RTT probe (or a straggler
      // from a revival that already completed). A fresh-epoch echo of an
      // outstanding probe yields the idle-rail latency sample the score
      // needs; anything else is fenced as before.
      if (rtt_probe_pending_ && chunk.seq == epoch_) {
        rtt_probe_pending_ = false;
        if (adaptive_on()) {
          const double rtt = ctx_.rt.now_us() - last_probe_us_;
          delivery_latency_.add(rtt);
          const double a = ctx_.config.score_loss_alpha;
          lat_ewma_us_ = lat_ewma_us_ == 0.0
                             ? rtt
                             : (1.0 - a) * lat_ewma_us_ + a * rtt;
          ++ctx_.stats.probe_rtt_samples;
          update_degraded();
        }
        return;
      }
      ++ctx_.stats.heartbeats_fenced;
      return;
    }
    if (chunk.seq != epoch_) {
      // A reply for an epoch this rail has moved past: it proves nothing
      // about the current life.
      ++ctx_.stats.heartbeats_fenced;
      return;
    }
    set_health(RailHealth::kProbation);
    last_fresh_reply_us_ = ctx_.rt.now_us();
    if (++probation_hits_ >= ctx_.config.probation_replies) {
      revive();
    }
    return;
  }
  // Plain beacon. The peer's epoch only ever grows; an older value is a
  // stale wire image (a beacon piggybacked on a packet that was flattened
  // for retransmission before the peer's rail died) — fence it.
  if (chunk.seq < peer_epoch_) {
    ++ctx_.stats.heartbeats_fenced;
    return;
  }
  peer_epoch_ = chunk.seq;
  ++ctx_.stats.heartbeats_received;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

void TransferEngine::dump_health(std::ostream& out) const {
  if (!health_on()) return;
  dumpf(out, " health=%s epoch=%u peer_epoch=%u heard=%.0fus_ago",
        rail_health_name(health_), epoch_, peer_epoch_,
        ctx_.rt.now_us() - last_rx_us_);
  if (health_ == RailHealth::kProbation) {
    dumpf(out, " probation=%u/%u", probation_hits_,
          ctx_.config.probation_replies);
  }
  if (adaptive_on()) {
    dumpf(out,
          "\n    score: loss=%.4f lat_p50=%.1fus lat_p99=%.1fus "
          "(%zu samples) tp=%.2fB/us degraded_entries=%u",
          loss_ewma_, delivery_latency_.p50(), delivery_latency_.p99(),
          delivery_latency_.count(), tp_est_, degraded_entries_);
  }
}

void TransferEngine::check(size_t display_index,
                           std::vector<std::string>& out) const {
  const bool health_says_alive = health_ == RailHealth::kAlive ||
                                 health_ == RailHealth::kSuspect ||
                                 health_ == RailHealth::kDegraded;
  if (alive_ != health_says_alive) {
    addf(out, "rail %zu: alive=%d but health=%s", display_index,
         alive_ ? 1 : 0, rail_health_name(health_));
  }
  if (health_ == RailHealth::kDegraded && !ctx_.config.adaptive) {
    addf(out, "rail %zu: degraded without adaptive scoring enabled",
         display_index);
  }
  if (loss_ewma_ < 0.0 || loss_ewma_ > 1.0) {
    addf(out, "rail %zu: loss EWMA %.6f outside [0,1]", display_index,
         loss_ewma_);
  }
  if (!alive_ && epoch_ == 0) {
    addf(out, "rail %zu: dead without ever bumping its epoch",
         display_index);
  }
  if (probation_hits_ != 0 && health_ != RailHealth::kProbation) {
    addf(out, "rail %zu: probation hits outside probation (health=%s)",
         display_index, rail_health_name(health_));
  }
  if (health_ == RailHealth::kProbation &&
      probation_hits_ >= ctx_.config.probation_replies) {
    addf(out,
         "rail %zu: %u probation hits reached the revival bar without "
         "reviving",
         display_index, probation_hits_);
  }
}

}  // namespace nmad::core
